// Package adjarray is a Go implementation of associative arrays and
// semiring-parameterized graph construction, reproducing "Constructing
// Adjacency Arrays from Incidence Arrays" (Jananthan, Dibert, Kepner;
// IPDPS GABB 2017, arXiv:1702.07832).
//
// # Overview
//
// Graphs arrive from raw data as incidence arrays: Eout maps (edge,
// source-vertex) pairs to non-zero values and Ein maps (edge,
// target-vertex) pairs. Analysis usually wants the adjacency array
// A(v, w), obtained by array multiplication
//
//	A = Eoutᵀ ⊕.⊗ Ein
//
// where ⊕ and ⊗ are a caller-chosen operator pair such as arithmetic
// (+, ×), tropical (max, +), or bottleneck (max, min). The paper's
// Theorem II.1 gives the exact algebraic conditions under which this
// product is guaranteed to be an adjacency array for every graph:
//
//  1. ⊕ is zero-sum-free        (a ⊕ b = 0 ⇒ a = b = 0),
//  2. ⊗ has no zero divisors     (a ⊗ b = 0 ⇒ a = 0 or b = 0),
//  3. 0 annihilates under ⊗      (a ⊗ 0 = 0 ⊗ a = 0).
//
// Notably ⊕ and ⊗ need not be associative, commutative, or
// distributive — the value set need not be a semiring at all.
//
// This package is the stable public facade. It re-exports the
// building blocks:
//
//   - associative arrays over string keys with sparse storage, D4M-style
//     sub-array selection, transpose, and ⊕.⊗ multiplication;
//   - the operator-pair algebra with a property checker for the
//     Theorem II.1 conditions;
//   - the graph layer: incidence extraction, adjacency construction and
//     validation, reverse graphs, and the constructive counterexample
//     gadgets of Lemmas II.2–II.4;
//   - the end-to-end Build pipeline with serial, parallel, streaming
//     triple-store, sharded, and dense-verification backends;
//   - incremental maintenance: AdjacencyView keeps A up to date under
//     continuous edge ingest, and Ingest accumulates arriving triples
//     into its delta batches;
//   - durability: internal/stream.Open recovers a maintained view from
//     a write-ahead incidence log plus checkpoints (internal/wal), with
//     torn-tail repair, typed corruption errors, and a kill-and-recover
//     gate in cmd/crashtest holding recovery bit-identical to the dense
//     oracle;
//   - goroutine-sharded ingest: ShardedAdjacencyView hash-partitions
//     the vertex space by source across N shards (per-shard views,
//     append locks, and — durable — WAL/checkpoint directories), with
//     snapshots pinned to a per-shard epoch vector and lazily ⊕-merged
//     at gather time, bit-identical to the single-view path because
//     shards own disjoint adjacency rows;
//   - production serving: internal/serve is cmd/adjserve's front door —
//     Prometheus-style GET /metrics (dependency-free internal/obs),
//     bounded admission pools per endpoint class shedding overload as
//     429 + Retry-After, and POST /batch answering many ops from one
//     pinned snapshot; cmd/loadgen drives it with open-model zipfian
//     load and records per-endpoint latency percentiles (BENCH_7.json);
//   - fault tolerance: internal/iofault injects deterministic disk
//     faults (EIO, ENOSPC, short and torn writes) through a VFS seam
//     under the WAL and durable views; a failed fsync or log write
//     wedges the store read-only — the durable boundary never advances
//     past a failed sync — while failed checkpoints only degrade, and
//     the front door keeps serving reads from the last good snapshot,
//     shedding ingest as 503 + Retry-After (/healthz and the
//     adjserve_storage_* metrics expose the ok → degraded → read-only
//     state machine; cmd/crashtest -faults gates the contract with
//     randomized fault schedules held bit-identical to the oracle);
//   - static analysis: internal/lint + cmd/adjlint is a go/analysis-
//     style suite that mechanically gates the invariants past PRs had
//     to find by hand — nondeterministic ⊕-folds over map iteration,
//     dropped fsync errors on the WAL path, sync.Pool scratch aliasing,
//     statically-invalid MulOptions, and in-place mutation of
//     copy-on-write snapshot slices; run standalone (adjlint ./...) or
//     as go vet -vettool, gating in CI.
//
// # Batch and incremental construction
//
// The edge dimension is the reduction dimension of the construction,
// so an appended edge batch K′ contributes exactly one partial
// product — the delta identity:
//
//	A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:]
//
// An AdjacencyView owns an append-only incidence log plus the current
// adjacency and applies batches through this identity instead of
// rebuilding; Snapshot returns immutable copy-on-write read views in
// O(1). Edge keys must arrive in ascending order, which keeps the
// per-cell ⊕ fold ORDER equal to the sequential Definition I.3 fold —
// incremental folding only re-groups it, so the maintained state equals
// the one-shot construction exactly when ⊕ is associative on the data
// (sampled by StreamOptions.CheckAssociative; see the paper's companion
// work on algebraic conditions for generating accurate adjacency
// arrays). For non-associative ⊕, Snapshot.Exact reports the possible
// divergence and Compact rebuilds the exact fold from the log. The
// offline sharded backend and the online view share one partial-product
// engine (internal/shard): one implementation, two drivers.
//
// # Multiplication engine
//
// Array multiplication runs on a two-phase symbolic/numeric SpGEMM
// engine: a stamp-only symbolic pass computes exact per-row output
// sizes, the output arrays are allocated once, and the numeric pass
// writes rows in place (no stitch step). With MulOptions.Workers > 1
// both phases run across FLOP-BALANCED row spans: the per-row flop
// counts from the symbolic model are prefix-summed and cut into
// equal-work spans by binary search, so the hub rows of a skewed
// (R-MAT-like) workload spread across workers instead of serializing
// one of them. A product whose total flop count is below
// MulOptions.FlopFloor (default sparse.DefaultParallelFlopFloor) falls
// back to the serial kernel — goroutine overhead never makes the
// parallel backend slower than serial on small inputs. Kernel scratch
// (symbolic stamps, numeric accumulators) is recycled through
// sync.Pool, so steady-state repeated multiplications allocate only
// their exact output. MulOptions.Kernel selects an engine for
// ablation: "twophase" (default), "gustavson" (append-grown single
// pass), "hash", or "merge" (the oracle). Built-in scalar operator
// pairs (e.g. "+.*") dispatch to monomorphized kernels with the
// arithmetic inlined. Every kernel folds the contributions to an
// output entry in ascending key order over the shared dimension, so
// all engines are bit-identical even for non-commutative or
// non-associative ⊕.
//
// # Key interning
//
// The string-key boundary is served by slab-backed interners
// (internal/keys.Interner): every distinct key is stored once as raw
// bytes in an append-only slab and mapped to a stable dense int32 id
// through an open-addressed hash over the key bytes — no per-key
// string-header allocations and no map[string]int on hot paths. Ids
// are stable forever; SORTED order is a lazily derived view, so the
// maintained adjacency view caches one flat id→position array per
// vertex universe and resolves an ingested edge's endpoints with two
// array reads. Universe key Sets are bound to their interner
// (keys.Set.Bind), so Set.Index delegates to the shared hash table
// instead of building a second map per Set — for huge universes that
// second map used to double the key-set memory. The facade API stays
// string-keyed; interning is purely an internal representation.
//
// # Quick start
//
//	eout := adjarray.FromTriples([]adjarray.Triple[float64]{
//		{Row: "edge1", Col: "alice", Val: 1},
//		{Row: "edge2", Col: "alice", Val: 1},
//	}, nil)
//	ein := adjarray.FromTriples([]adjarray.Triple[float64]{
//		{Row: "edge1", Col: "bob", Val: 1},
//		{Row: "edge2", Col: "carol", Val: 1},
//	}, nil)
//	a, err := adjarray.Correlate(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
//	// a("alice", "bob") = 1, a("alice", "carol") = 1
//
// See the examples directory for complete programs, including the
// reproduction of the paper's music-metadata figures.
package adjarray
