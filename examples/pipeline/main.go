// Database-resident construction — the D4M/Accumulo deployment shape.
//
// Incidence data lives in a sorted triple store (the in-process
// Accumulo stand-in). Adjacency construction runs *server-side* as a
// streaming TableMult over the stored rows, never materializing CSR
// matrices, and the result lands back in a store. The example also
// shows the pipeline refusing an unsafe algebra with a concrete
// counterexample, and the escape hatch to force construction anyway.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adjarray"
	"adjarray/internal/dataset"
	"adjarray/internal/tstore"
	"adjarray/internal/value"
)

func main() {
	// 1. Generate a power-law citation-style graph and load its
	// incidence arrays into two stores, as an ingest job would.
	g := dataset.RMAT(rand.New(rand.NewSource(7)), 7, 4) // 128 vertices, 512 edges
	one := func(adjarray.Edge) float64 { return 1 }
	eout, ein, err := adjarray.Incidence(g, adjarray.PlusTimes(), adjarray.Weights[float64]{Out: one, In: one})
	if err != nil {
		log.Fatal(err)
	}
	sOut := tstore.FromArray(eout, value.FormatFloat, tstore.Options{MemLimit: 128})
	sIn := tstore.FromArray(ein, value.FormatFloat, tstore.Options{MemLimit: 128})
	fmt.Printf("ingested: Eout %s, Ein %s (%d edges)\n", sOut, sIn, g.NumEdges())

	// 2. Server-side multiply: C = Eoutᵀ ⊕.⊗ Ein streamed over edge-key
	// rows in sorted order.
	codec := tstore.Codec[float64]{Parse: value.ParseFloat, Format: value.FormatFloat}
	a, err := tstore.AdjacencyFromTables(sOut, sIn, adjarray.PlusTimes(), codec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server-side adjacency: %d non-zero vertex pairs\n", a.NNZ())

	// 3. Cross-check against the in-memory CSR kernel: the streaming
	// result must be identical.
	want, err := adjarray.Adjacency(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	aligned, err := a.Reindex(want.RowKeys(), want.ColKeys())
	if err != nil {
		log.Fatal(err)
	}
	if !want.Equal(aligned, func(x, y float64) bool { return x == y }) {
		log.Fatal("server-side result diverges from CSR kernel")
	}
	fmt.Println("server-side result identical to CSR kernel ✓")

	// 4. Safety: the Build service refuses an algebra that cannot
	// guarantee adjacency arrays, and explains why with a gadget.
	_, err = adjarray.Build(adjarray.BuildRequest{
		Eout: eout, Ein: ein, Semiring: "max.+@0", Backend: adjarray.BackendTStore,
	})
	fmt.Printf("\nunsafe algebra refused: %v\n", err)

	// 5. The escape hatch: forcing construction is possible, and the
	// violation report still travels with the result.
	res, err := adjarray.Build(adjarray.BuildRequest{
		Eout: eout, Ein: ein, Semiring: "max.+@0", Backend: adjarray.BackendTStore,
		SkipConditionCheck: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forced construction: nnz=%d, carried violation: %s\n",
		res.Adjacency.NNZ(), res.Violation)
}
