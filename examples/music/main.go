// Music metadata pipeline — the paper's Section IV worked end to end.
//
// A database table of music tracks is exploded into a sparse incidence
// array (Figure 1), genre and writer sub-arrays are selected with
// Matlab-style key ranges (Figure 2), and writer×genre adjacency arrays
// are constructed under several operator pairs (Figures 3 and 5),
// showing how ⊕ chooses between aggregating and selecting edges.
//
// Run with: go run ./examples/music
package main

import (
	"fmt"
	"log"

	"adjarray"
	"adjarray/internal/dataset"
)

func main() {
	// 1. Raw data: a dense relational table, 22 tracks × 7 fields.
	table := dataset.MusicTable()
	fmt.Printf("source table: %d tracks × %d fields\n\n", len(table.Rows), len(table.Fields))

	// 2. Explode into the D4M sparse view: every (field, value) pair
	// becomes its own column "field|value" with entry 1 (Figure 1).
	e, err := adjarray.Explode(table, adjarray.ExplodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows, cols := e.Shape()
	fmt.Printf("exploded incidence array E: %d×%d, %d entries\n\n", rows, cols, e.NNZ())

	// 3. Select the genre and writer column families (Figure 2) with
	// the paper's range notation.
	e1, err := e.SubRefExpr(":", "Genre|A : Genre|Z")
	if err != nil {
		log.Fatal(err)
	}
	e2, err := e.SubRefExpr(":", "Writer|A : Writer|Z")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Correlate: A = E1ᵀ ⊕.⊗ E2 relates genres to writers through
	// shared tracks. Under +.× the value counts co-occurrences; under
	// max.min it only records existence.
	for _, ops := range []adjarray.Ops[float64]{adjarray.PlusTimes(), adjarray.MaxMin()} {
		a, err := adjarray.Correlate(e1, e2, ops, adjarray.MulOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("E1ᵀ %s E2 (Figure 3 panel):\n%s\n", ops.Name, adjarray.Format(a, adjarray.FormatFloat))
	}

	// 5. Re-weight E1 (Figure 4: Electronic=1, Pop=2, Rock=3) and watch
	// how each ⊗ propagates the diverse weights (Figure 5).
	e1w := e1.Map(func(row, col string, v float64) float64 {
		switch col {
		case "Genre|Pop":
			return 2
		case "Genre|Rock":
			return 3
		default:
			return 1
		}
	})
	for _, ops := range []adjarray.Ops[float64]{adjarray.PlusTimes(), adjarray.MaxPlus(), adjarray.MinMax()} {
		a, err := adjarray.Correlate(e1w, e2, ops, adjarray.MulOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weighted E1ᵀ %s E2 (Figure 5 panel):\n%s\n", ops.Name, adjarray.Format(a, adjarray.FormatFloat))
	}

	// 6. The same correlation through the end-to-end Build service,
	// which checks the Theorem II.1 conditions first.
	res, err := adjarray.Build(adjarray.BuildRequest{
		Eout: e1, Ein: e2, Semiring: "min.+", Backend: adjarray.BackendParallel,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Build(min.+, parallel backend): nnz=%d, conditions ok=%v\n",
		res.Adjacency.NNZ(), res.Report.TheoremII1())
}
