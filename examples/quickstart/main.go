// Quickstart: build a graph's adjacency array from incidence arrays.
//
// A tiny social network arrives as an edge list (who follows whom).
// We extract the incidence arrays, construct A = Eoutᵀ ⊕.⊗ Ein under
// two different operator pairs, and validate the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adjarray"
)

func main() {
	// 1. The raw data: follow events, one edge per event. Repeated
	// follows (unfollow/refollow) give parallel edges.
	g, err := adjarray.NewGraph([]adjarray.Edge{
		{Key: "evt-001", Src: "alice", Dst: "bob"},
		{Key: "evt-002", Src: "alice", Dst: "carol"},
		{Key: "evt-003", Src: "bob", Dst: "carol"},
		{Key: "evt-004", Src: "alice", Dst: "bob"}, // refollow: parallel edge
		{Key: "evt-005", Src: "carol", Dst: "alice"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Incidence arrays (Definition I.4): rows are edge keys, columns
	// are vertices, entries are 1.
	one := func(adjarray.Edge) float64 { return 1 }
	weights := adjarray.Weights[float64]{Out: one, In: one}

	// 3. Adjacency under +.× — ⊕ aggregates parallel edges, so
	// A(alice,bob) counts both follow events.
	a, eout, ein, err := adjarray.BuildAdjacency(g, adjarray.PlusTimes(), weights, adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Adjacency under +.× (counts follow events):")
	fmt.Print(adjarray.Format(a, adjarray.FormatFloat))

	// 4. The same construction under max.min selects instead of
	// aggregating: any number of parallel edges yields weight 1.
	sel, err := adjarray.Adjacency(eout, ein, adjarray.MaxMin(), adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAdjacency under max.min (selects one edge):")
	fmt.Print(adjarray.Format(sel, adjarray.FormatFloat))

	// 5. Both are valid adjacency arrays of g — Theorem II.1 guarantees
	// it, and IsAdjacencyOf verifies it concretely.
	for name, arr := range map[string]*adjarray.Array[float64]{"+.*": a, "max.min": sel} {
		if err := adjarray.IsAdjacencyOf(arr, g, func(v float64) bool { return v == 0 }); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	fmt.Println("\nboth products validated as adjacency arrays of the graph ✓")

	// 6. The reverse graph comes for free (Corollary III.1).
	rev, err := adjarray.ReverseAdjacency(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReverse-graph adjacency EinᵀEout (who is followed by whom):")
	fmt.Print(adjarray.Format(rev, adjarray.FormatFloat))
}
