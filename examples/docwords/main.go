// Set-valued arrays — the paper's Section III escape hatch.
//
// The ∪.∩ operator pair over a power set is a non-trivial Boolean
// algebra: disjoint non-empty sets are zero divisors, so Theorem II.1
// does NOT guarantee adjacency arrays for arbitrary data, and
// FindViolation produces the concrete self-loop gadget that fails.
// Yet for *structured* incidence arrays — document×document arrays
// whose entries are shared-word sets — the violating multiplication
// can never occur, and EᵀE correctly lists the words shared by every
// document pair.
//
// Run with: go run ./examples/docwords
package main

import (
	"fmt"
	"log"

	"adjarray"
)

func main() {
	// 1. A small corpus: documents with overlapping vocabularies.
	docs := map[string]adjarray.Set{
		"arrays":    adjarray.NewSet("array", "adjacency", "incidence", "graph", "semiring"),
		"graphblas": adjarray.NewSet("graph", "semiring", "sparse", "matrix", "kernel"),
		"hpc":       adjarray.NewSet("sparse", "matrix", "parallel", "kernel"),
		"databases": adjarray.NewSet("database", "table", "array", "incidence"),
	}
	names := []string{"arrays", "databases", "graphblas", "hpc"}

	var universe adjarray.Set
	for _, w := range docs {
		universe = universe.Union(w)
	}
	ops := adjarray.PowerSet(universe)

	// 2. First, the warning: on unstructured data this algebra cannot
	// guarantee adjacency arrays. The library can demonstrate why.
	sample := []adjarray.Set{nil, adjarray.NewSet("array"), adjarray.NewSet("kernel"), universe}
	if v := adjarray.FindViolation(ops, sample); v != nil {
		fmt.Printf("general warning: %s\n\n", v)
	}

	// 3. Build the structured incidence array: E(i,j) = words shared by
	// documents i and j (only non-empty intersections are stored).
	b := adjarray.NewBuilder[adjarray.Set](nil)
	for _, d1 := range names {
		for _, d2 := range names {
			shared := docs[d1].Intersect(docs[d2])
			if !shared.IsEmpty() {
				b.Set(d1, d2, shared)
			}
		}
	}
	e := b.Build()
	fmt.Println("structured incidence array E (entries = shared word sets):")
	fmt.Print(adjarray.Format(e, adjarray.Set.String))

	// 4. Correlate with ⊕ = ∪, ⊗ = ∩. The structure guarantees no
	// disjoint non-empty sets are ever intersected, so the product is
	// exactly the shared-vocabulary array.
	a, err := adjarray.Correlate(e, e, ops, adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEᵀ ∪.∩ E (words shared by each document pair):")
	fmt.Print(adjarray.Format(a, adjarray.Set.String))

	// 5. Verify the claim entry by entry.
	ok := true
	a.Iterate(func(x, y string, v adjarray.Set) {
		if !v.Equal(docs[x].Intersect(docs[y])) {
			ok = false
			fmt.Printf("MISMATCH at (%s,%s): %v\n", x, y, v)
		}
	})
	if ok {
		fmt.Println("\nevery entry equals the two documents' vocabulary intersection ✓")
	}
}
