// Streaming: maintain an adjacency array under continuous edge ingest.
//
// The paper presents A = Eoutᵀ ⊕.⊗ Ein as a batch computation, but its
// deployment setting is a streaming system where edges arrive
// continuously. Because the edge dimension is the reduction dimension,
// an appended batch K′ contributes exactly one partial product:
//
//	A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:]
//
// This example ingests a follow-event stream batch by batch, reads live
// snapshots between batches, and then demonstrates the identity's
// associativity hypothesis: a non-associative ⊕ diverges from the batch
// result across incremental folds, and Compact() recovers it.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"adjarray"
)

func main() {
	// 1. A maintained view under +.× — ⊕ counts parallel edges.
	v := adjarray.NewAdjacencyView(adjarray.PlusTimes(), adjarray.StreamOptions{})

	// 2. Edges arrive in batches (keys left empty: auto-assigned in
	// arrival order, satisfying the ascending-key log discipline).
	batches := [][]adjarray.StreamEdge[float64]{
		{{Src: "alice", Dst: "bob"}, {Src: "alice", Dst: "carol"}},
		{{Src: "bob", Dst: "carol"}, {Src: "alice", Dst: "bob"}}, // refollow: parallel edge
		{{Src: "carol", Dst: "alice"}},
	}
	for i, batch := range batches {
		if err := v.Append(batch); err != nil {
			log.Fatal(err)
		}
		snap, err := v.Snapshot() // O(1) read view; never blocks ingest
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after batch %d: %d edges, %d adjacency entries (exact=%v)\n",
			i+1, snap.Edges, snap.Adjacency.NNZ(), snap.Exact)
	}

	snap, err := v.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmaintained adjacency (+.*):")
	fmt.Print(adjarray.Format(snap.Adjacency, adjarray.FormatFloat))

	// 3. The incremental state equals the one-shot construction — the
	// delta identity is exact for associative ⊕.
	oneShot, err := adjarray.Correlate(snap.Eout, snap.Ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("incremental == one-shot Correlate:", snap.Adjacency.Equal(oneShot, func(a, b float64) bool { return a == b }))

	// 4. The hypothesis matters: averaging is NOT associative, so
	// folding a delta onto already-folded state diverges from the
	// sequential fold. Compact() rebuilds from the log and recovers it.
	avg := adjarray.Ops[float64]{
		Name: "avg.*",
		Add:  func(a, b float64) float64 { return (a + b) / 2 },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0, One: 1,
		Equal: func(a, b float64) bool { return a == b },
	}
	w := adjarray.NewAdjacencyView(avg, adjarray.StreamOptions{})
	weighted := []adjarray.StreamEdge[float64]{
		{Src: "a", Dst: "b", Out: 1, HasOut: true},
		{Src: "a", Dst: "b", Out: 3, HasOut: true},
		{Src: "a", Dst: "b", Out: 5, HasOut: true},
	}
	if err := w.Append(weighted[:1]); err != nil {
		log.Fatal(err)
	}
	if _, err := w.Snapshot(); err != nil { // materializes the first edge
		log.Fatal(err)
	}
	if err := w.Append(weighted[1:]); err != nil {
		log.Fatal(err)
	}
	div, err := w.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	got, _ := div.Adjacency.At("a", "b")
	fmt.Printf("\nnon-associative avg.*: incremental %.2f (exact=%v), sequential fold ((1⊕3)⊕5) = 3.50\n", got, div.Exact)

	if err := w.Compact(); err != nil { // full rebuild from the incidence log
		log.Fatal(err)
	}
	rec, err := w.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	got, _ = rec.Adjacency.At("a", "b")
	fmt.Printf("after Compact(): %.2f (exact=%v)\n", got, rec.Exact)
}
