// Parallel construction scaling — the HPC face of the library.
//
// Adjacency construction is row-blocked parallel SpGEMM. Because the
// paper's ⊕ is not assumed commutative or associative, the parallel
// kernel preserves the sequential per-cell fold order and produces
// bit-identical results at every worker count — verified here while
// measuring speedup on a power-law R-MAT graph.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"adjarray"
	"adjarray/internal/dataset"
)

func main() {
	g := dataset.RMAT(rand.New(rand.NewSource(11)), 13, 16) // 8192 vertices, 131072 edges
	one := func(adjarray.Edge) float64 { return 1 }
	eout, ein, err := adjarray.Incidence(g, adjarray.PlusTimes(), adjarray.Weights[float64]{Out: one, In: one})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: R-MAT scale 13, %d edges, %d cores available\n\n",
		g.NumEdges(), runtime.GOMAXPROCS(0))

	workerCounts := []int{1, 2, 4}
	if m := runtime.GOMAXPROCS(0); m != 1 && m != 2 && m != 4 {
		workerCounts = append(workerCounts, m)
	}
	var baseline time.Duration
	var reference *adjarray.Array[float64]
	for _, workers := range workerCounts {
		start := time.Now()
		a, err := adjarray.Adjacency(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if workers == 1 {
			baseline = elapsed
			reference = a
		}
		speedup := float64(baseline) / float64(elapsed)
		identical := a.Equal(reference, func(x, y float64) bool { return x == y })
		fmt.Printf("workers=%2d  build=%8s  speedup=%.2fx  nnz=%d  bit-identical=%v\n",
			workers, elapsed.Round(10*time.Microsecond), speedup, a.NNZ(), identical)
		if !identical {
			log.Fatal("parallel kernel changed the result — fold-order contract broken")
		}
	}

	// The same guarantee under a non-commutative ⊕: first.* keeps the
	// contribution of the lexicographically first edge key.
	fmt.Println("\nnon-commutative ⊕ (first.*):")
	serial, err := adjarray.Adjacency(eout, ein, adjarray.MaxMin(), adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	par, err := adjarray.Adjacency(eout, ein, adjarray.MaxMin(), adjarray.MulOptions{Workers: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial vs parallel identical: %v\n",
		serial.Equal(par, func(x, y float64) bool { return x == y }))
}
