// Algorithms on constructed adjacency arrays — the paper's opening
// motivation ("...an adjacency array of the graph, A, that can be
// processed with a variety of algorithms") carried out: build A from
// incidence arrays, then run BFS, shortest paths, widest paths,
// components, triangles, and PageRank on it, each one an ⊕.⊗ iteration
// under a different algebra.
//
// Run with: go run ./examples/algorithms
package main

import (
	"fmt"
	"log"
	"sort"

	"adjarray"
)

func main() {
	// A small road network: edges carry (capacity-like) weights.
	g, err := adjarray.NewGraph([]adjarray.Edge{
		{Key: "r01", Src: "depot", Dst: "north"},
		{Key: "r02", Src: "depot", Dst: "south"},
		{Key: "r03", Src: "north", Dst: "plant"},
		{Key: "r04", Src: "south", Dst: "plant"},
		{Key: "r05", Src: "plant", Dst: "port"},
		{Key: "r06", Src: "south", Dst: "port"},
		{Key: "r07", Src: "port", Dst: "depot"},
		{Key: "r08", Src: "north", Dst: "south"},
	})
	if err != nil {
		log.Fatal(err)
	}
	weight := map[string]float64{
		"r01": 4, "r02": 2, "r03": 3, "r04": 5, "r05": 6, "r06": 1, "r07": 2, "r08": 1,
	}

	// Construct A with edge weights as values: under +.× with the
	// weight on the Eout side and 1 on the Ein side, A(a,b) is the sum
	// of the weights of the a→b edges — i.e. the plain weighted
	// adjacency array for a simple graph. The algorithms then pick
	// their own ⊕.⊗ to *process* it (min.+ for distances, max.min for
	// widths), the construction/processing split of the paper.
	w := adjarray.Weights[float64]{
		Out: func(e adjarray.Edge) float64 { return weight[e.Key] },
		In:  func(adjarray.Edge) float64 { return 1 },
	}
	a, _, _, err := adjarray.BuildAdjacency(g, adjarray.PlusTimes(), w, adjarray.MulOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adjacency array (edge weights):")
	fmt.Print(adjarray.Format(a, adjarray.FormatFloat))

	// BFS hop counts (∨.∧ algebra, pattern only).
	levels, err := adjarray.BFSLevels(a, "depot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBFS hops from depot:", sorted(levels))

	// Shortest paths (min.+).
	dist, err := adjarray.SSSP(a, "depot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("min.+ distances from depot:", sortedF(dist))

	// Widest (max bottleneck) paths (max.min).
	width, err := adjarray.WidestPath(a, "depot")
	if err != nil {
		log.Fatal(err)
	}
	delete(width, "depot") // +Inf at the source; omit for display
	fmt.Println("max.min bottleneck widths from depot:", sortedF(width))

	// Weakly connected components (min.select1st propagation).
	comp, err := adjarray.Components(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("components:", sortedS(comp))

	// PageRank over the pattern.
	rank, iters, err := adjarray.PageRank(a, 0.85, 1e-9, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank (%d iterations): %v\n", iters, sortedF(rank))

	// Reachability closure.
	tc, err := adjarray.TransitiveClosure(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transitive closure has %d reachable pairs\n", tc.NNZ())
}

func sorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s:%d", k, v))
	}
	sort.Strings(out)
	return out
}

func sortedF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s:%s", k, adjarray.FormatFloat(v)))
	}
	sort.Strings(out)
	return out
}

func sortedS(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s→%s", k, v))
	}
	sort.Strings(out)
	return out
}
