package adjarray_test

import (
	"strings"
	"testing"

	"adjarray"
	"adjarray/internal/dataset"
)

// These tests exercise the public facade exactly as a downstream user
// would, without touching internal packages (dataset is used only to
// fetch expected values).

func TestQuickstartFlow(t *testing.T) {
	eout := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "edge1", Col: "alice", Val: 1},
		{Row: "edge2", Col: "alice", Val: 1},
	}, nil)
	ein := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "edge1", Col: "bob", Val: 1},
		{Row: "edge2", Col: "carol", Val: 1},
	}, nil)
	a, err := adjarray.Correlate(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := a.At("alice", "bob"); !ok || v != 1 {
		t.Errorf("a(alice,bob) = %v,%v", v, ok)
	}
	if v, ok := a.At("alice", "carol"); !ok || v != 1 {
		t.Errorf("a(alice,carol) = %v,%v", v, ok)
	}
}

func TestGraphRoundTripViaFacade(t *testing.T) {
	g, err := adjarray.NewGraph([]adjarray.Edge{
		{Key: "k1", Src: "a", Dst: "b"},
		{Key: "k2", Src: "b", Dst: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, eout, ein, err := adjarray.BuildAdjacency(g, adjarray.PlusTimes(), adjarray.Weights[float64]{}, adjarray.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := adjarray.IsAdjacencyOf(a, g, func(v float64) bool { return v == 0 }); err != nil {
		t.Error(err)
	}
	rev, err := adjarray.ReverseAdjacency(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := adjarray.IsAdjacencyOf(rev, g.Reverse(), func(v float64) bool { return v == 0 }); err != nil {
		t.Error(err)
	}
	if err := adjarray.VerifyConstruction(g, adjarray.MaxMin(), adjarray.Weights[float64]{}); err != nil {
		t.Error(err)
	}
}

func TestExplodeSelectorsViaFacade(t *testing.T) {
	table := adjarray.Table{
		Rows:   []string{"t1"},
		Fields: []string{"Genre", "Writer"},
		Cells:  [][]string{{"Rock", "Ann;Bob"}},
	}
	e, err := adjarray.Explode(table, adjarray.ExplodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := adjarray.ParseSelector("Writer|*")
	if err != nil {
		t.Fatal(err)
	}
	sub := e.SubRef(nil, sel)
	if sub.NNZ() != 2 {
		t.Errorf("selector picked %d entries", sub.NNZ())
	}
	back, err := adjarray.Implode(e, "|", ";")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 {
		t.Error("implode lost rows")
	}
}

func TestSemiringAnalysisViaFacade(t *testing.T) {
	entry, ok := adjarray.LookupSemiring("max.min")
	if !ok {
		t.Fatal("max.min missing")
	}
	rep := adjarray.Check(entry.Ops, entry.Sample, adjarray.FormatFloat)
	if !rep.TheoremII1() {
		t.Error("max.min should comply")
	}
	if v := adjarray.FindViolation(entry.Ops, entry.Sample); v != nil {
		t.Errorf("unexpected violation: %s", v)
	}
	bad := adjarray.MaxPlusAtZero()
	if v := adjarray.FindViolation(bad, []float64{0, 1, 2}); v == nil {
		t.Error("max.+@0 should yield a violation gadget")
	}
	rows := adjarray.ClassifyAlgebras()
	if len(rows) < 15 {
		t.Errorf("classification table too small: %d rows", len(rows))
	}
}

func TestSetAlgebraViaFacade(t *testing.T) {
	u := adjarray.NewSet("x", "y", "z")
	ops := adjarray.PowerSet(u)
	a := adjarray.FromTriples([]adjarray.Triple[adjarray.Set]{
		{Row: "d1", Col: "d2", Val: adjarray.NewSet("x", "y")},
	}, nil)
	got, err := adjarray.EWiseMul(a, a, ops)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.At("d1", "d2"); !v.Equal(adjarray.NewSet("x", "y")) {
		t.Errorf("set ⊗ = %v", v)
	}
}

func TestBuildPipelineViaFacade(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	res, err := adjarray.Build(adjarray.BuildRequest{
		Eout: e1, Ein: e2, Semiring: "+.*", Backend: adjarray.BackendParallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := adjarray.Format(res.Adjacency, adjarray.FormatFloat)
	for _, want := range []string{"Genre|Electronic", "Writer|Chloe Chaidez", "13"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted result missing %q:\n%s", want, out)
		}
	}
}

func TestFacadeFloatHelpers(t *testing.T) {
	if adjarray.FormatFloat(7) != "7" {
		t.Error("FormatFloat")
	}
	if v, err := adjarray.ParseFloat("-Inf"); err != nil || v != adjarray.MinMax().One {
		t.Error("ParseFloat(-Inf)")
	}
	if len(adjarray.Figure3Pairs()) != 7 {
		t.Error("Figure3Pairs")
	}
}
