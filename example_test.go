package adjarray_test

import (
	"fmt"
	"sort"

	"adjarray"
)

// The fundamental operation: construct an adjacency array from
// incidence arrays under a chosen ⊕.⊗ pair.
func ExampleCorrelate() {
	eout := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "e1", Col: "alice", Val: 1},
		{Row: "e2", Col: "alice", Val: 1},
		{Row: "e3", Col: "bob", Val: 1},
	}, nil)
	ein := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "e1", Col: "bob", Val: 1},
		{Row: "e2", Col: "bob", Val: 1},
		{Row: "e3", Col: "carol", Val: 1},
	}, nil)
	a, _ := adjarray.Correlate(eout, ein, adjarray.PlusTimes(), adjarray.MulOptions{})
	v, _ := a.At("alice", "bob")
	fmt.Println("alice→bob weight:", v) // two parallel edges, +.× sums
	// Output:
	// alice→bob weight: 2
}

// Exploding a database table into the Figure-1 incidence view.
func ExampleExplode() {
	table := adjarray.Table{
		Rows:   []string{"t1", "t2"},
		Fields: []string{"Genre", "Writer"},
		Cells: [][]string{
			{"Rock", "Ann;Bob"},
			{"Pop", "Ann"},
		},
	}
	e, _ := adjarray.Explode(table, adjarray.ExplodeOptions{})
	fmt.Println(e.ColKeys().Keys())
	// Output:
	// [Genre|Pop Genre|Rock Writer|Ann Writer|Bob]
}

// Checking the Theorem II.1 conditions for an operator pair, and
// getting the constructive counterexample when they fail.
func ExampleFindViolation() {
	bad := adjarray.MaxPlusAtZero() // max.+ anchored at 0: 0 fails to annihilate
	v := adjarray.FindViolation(bad, []float64{0, 1, 2, 3})
	fmt.Println("condition:", v.Condition)
	fmt.Println("gadget edges:", v.Graph.NumEdges())
	// Output:
	// condition: annihilator
	// gadget edges: 2
}

// Provenance construction: which edges produced each adjacency entry.
func ExampleCorrelateKeys() {
	eout := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "track1", Col: "Rock", Val: 1},
		{Row: "track2", Col: "Rock", Val: 1},
	}, nil)
	ein := adjarray.FromTriples([]adjarray.Triple[float64]{
		{Row: "track1", Col: "Ann", Val: 1},
		{Row: "track2", Col: "Ann", Val: 1},
	}, nil)
	prov, _ := adjarray.CorrelateKeys(eout, ein)
	s, _ := prov.At("Rock", "Ann")
	fmt.Println("connecting edges:", s)
	// Output:
	// connecting edges: {track1,track2}
}

// Algorithms downstream of construction: shortest paths on a built
// adjacency array.
func ExampleSSSP() {
	g, _ := adjarray.NewGraph([]adjarray.Edge{
		{Key: "e1", Src: "a", Dst: "b"},
		{Key: "e2", Src: "b", Dst: "c"},
		{Key: "e3", Src: "a", Dst: "c"},
	})
	w := map[string]float64{"e1": 1, "e2": 1, "e3": 5}
	a, _, _, _ := adjarray.BuildAdjacency(g, adjarray.PlusTimes(), adjarray.Weights[float64]{
		Out: func(e adjarray.Edge) float64 { return w[e.Key] },
		In:  func(adjarray.Edge) float64 { return 1 },
	}, adjarray.MulOptions{})
	dist, _ := adjarray.SSSP(a, "a")
	keys := make([]string, 0, len(dist))
	for k := range dist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s:%s ", k, adjarray.FormatFloat(dist[k]))
	}
	fmt.Println()
	// Output:
	// a:0 b:1 c:2
}

// The end-to-end pipeline refuses algebras that cannot guarantee an
// adjacency array.
func ExampleBuild() {
	eout := adjarray.FromTriples([]adjarray.Triple[float64]{{Row: "k", Col: "a", Val: 1}}, nil)
	ein := adjarray.FromTriples([]adjarray.Triple[float64]{{Row: "k", Col: "b", Val: 1}}, nil)
	_, err := adjarray.Build(adjarray.BuildRequest{
		Eout: eout, Ein: ein, Semiring: "max.+@0",
	})
	fmt.Println(err != nil)
	// Output:
	// true
}
