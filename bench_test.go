package adjarray_test

// bench_test.go — the benchmark harness regenerating every figure and
// experiment of the paper (E1–E11 in DESIGN.md), plus the ablations of
// the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The paper's evaluation is exact array contents rather than timings,
// so the Figure benches both regenerate the artifact each iteration
// and assert it still matches the paper (a mismatch fails the bench).

import (
	"fmt"
	"math/rand"
	"testing"

	"adjarray"
	"adjarray/internal/algo"
	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/sparse"
	"adjarray/internal/tstore"
	"adjarray/internal/value"
)

// E1 — Figure 1: dense table → exploded sparse incidence array.
func BenchmarkFigure1Explode(b *testing.B) {
	table := dataset.MusicTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := assoc.Explode(table, assoc.ExplodeOptions{})
		if err != nil || e.NNZ() != 186 {
			b.Fatalf("explode: %v nnz=%d", err, e.NNZ())
		}
	}
}

// E2 — Figure 2: Matlab-style sub-array selection.
func BenchmarkFigure2Subarray(b *testing.B) {
	e := dataset.MusicIncidence()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e1, err := e.SubRefExpr(":", "Genre|A : Genre|Z")
		if err != nil || e1.NNZ() != 30 {
			b.Fatal("E1 selection wrong")
		}
		e2, err := e.SubRefExpr(":", "Writer|A : Writer|Z")
		if err != nil || e2.NNZ() != 45 {
			b.Fatal("E2 selection wrong")
		}
	}
}

// E3 — Figure 3: the seven operator-pair correlations, checked against
// the paper each iteration.
func BenchmarkFigure3Semirings(b *testing.B) {
	e1, e2 := dataset.MusicE1E2()
	expected := dataset.Figure3Expected()
	for _, ops := range semiring.Figure3Pairs() {
		ops := ops
		b.Run(ops.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := assoc.Correlate(e1, e2, ops, assoc.MulOptions{})
				if err != nil || !got.Equal(expected[ops.Name], value.Float64Equal) {
					b.Fatalf("%s does not match the paper", ops.Name)
				}
			}
		})
	}
}

// E4 — Figure 4: value re-weighting of E1.
func BenchmarkFigure4Reweight(b *testing.B) {
	e1, _ := dataset.MusicE1E2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := e1.Map(func(_, col string, v float64) float64 {
			switch col {
			case dataset.GenrePop:
				return 2
			case dataset.GenreRock:
				return 3
			default:
				return 1
			}
		})
		if w.NNZ() != 30 {
			b.Fatal("reweight changed pattern")
		}
	}
}

// E5 — Figure 5: correlations with diverse weights, checked against the
// paper each iteration.
func BenchmarkFigure5Semirings(b *testing.B) {
	e1w := dataset.MusicE1Weighted()
	_, e2 := dataset.MusicE1E2()
	expected := dataset.Figure5Expected()
	for _, ops := range semiring.Figure3Pairs() {
		ops := ops
		b.Run(ops.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := assoc.Correlate(e1w, e2, ops, assoc.MulOptions{})
				if err != nil || !got.Equal(expected[ops.Name], value.Float64Equal) {
					b.Fatalf("%s does not match the paper", ops.Name)
				}
			}
		})
	}
}

// E6 — Theorem II.1 forward direction: full verification (dense oracle
// + sparse kernel + Definition I.5 check) on a random graph.
func BenchmarkTheoremForward(b *testing.B) {
	g := dataset.ErdosRenyi(rand.New(rand.NewSource(1)), 48, 0.05)
	for _, name := range []string{"+.*", "max.min"} {
		e, _ := semiring.Lookup(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := graph.VerifyConstruction(g, e.Ops, graph.Weights[float64]{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7 — Theorem II.1 converse: witness search plus gadget demonstration
// for the non-compliant algebras.
func BenchmarkTheoremGadgets(b *testing.B) {
	entries := []string{"max.+@0", "real+.real*"}
	for _, name := range entries {
		e, _ := semiring.Lookup(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := graph.FindViolation(e.Ops, e.Sample); v == nil {
					b.Fatalf("%s: no violation found", name)
				}
			}
		})
	}
}

// E8 — Corollary III.1: reverse-graph adjacency construction.
func BenchmarkReverseGraph(b *testing.B) {
	g := dataset.ErdosRenyi(rand.New(rand.NewSource(2)), 48, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := graph.VerifyReverse(g, semiring.PlusTimes(), graph.Weights[float64]{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 — Section III classification of all built-in algebras.
func BenchmarkClassifyAlgebras(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := semiring.Classify()
		if len(rows) < 15 {
			b.Fatal("classification shrank")
		}
	}
}

// E10 — Section III set-valued correlation over the document corpus.
func BenchmarkDocWordsUnionIntersect(b *testing.B) {
	corpus := dataset.DocCorpus()
	e := dataset.SharedWordIncidence(corpus)
	var universe value.Set
	for _, d := range corpus {
		universe = universe.Union(d.Words)
	}
	ops := semiring.PowerSet(universe)
	want := dataset.SharedWordsExpected(corpus)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := assoc.Correlate(e, e, ops, assoc.MulOptions{})
		if err != nil || !got.Equal(want, func(x, y value.Set) bool { return x.Equal(y) }) {
			b.Fatal("∪.∩ correlation mismatch")
		}
	}
}

// E11 — construction scaling across workload sizes and backends.
func BenchmarkConstructionScaling(b *testing.B) {
	for _, scale := range []int{8, 10, 12} {
		g := dataset.RMAT(rand.New(rand.NewSource(3)), scale, 8)
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		if err != nil {
			b.Fatal(err)
		}
		moutT := eout.Transpose().Matrix()
		min := ein.Matrix()
		b.Run(fmt.Sprintf("rmat-s%d/legacy", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.MulLegacy(moutT, min, semiring.PlusTimes()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rmat-s%d/csr", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.MulGustavson(moutT, min, semiring.PlusTimes()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rmat-s%d/twophase", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.MulTwoPhase(moutT, min, semiring.PlusTimes()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rmat-s%d/parallel", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.MulParallel(moutT, min, semiring.PlusTimes(), -1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		if scale <= 10 { // tstore is the slow path; keep the sweep bounded
			sOut := tstore.FromArray(eout, value.FormatFloat, tstore.Options{})
			sIn := tstore.FromArray(ein, value.FormatFloat, tstore.Options{})
			codec := tstore.Codec[float64]{Parse: value.ParseFloat, Format: value.FormatFloat}
			b.Run(fmt.Sprintf("rmat-s%d/tstore", scale), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tstore.AdjacencyFromTables(sOut, sIn, semiring.PlusTimes(), codec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Ablation — SpGEMM accumulator variants (DESIGN.md §5). "legacy" is
// the seed repo's kernel frozen verbatim (append + unconditional sort),
// so the two-phase engine's speedup can be read off a single run.
// Two workload shapes per scale: "rmat-sN" is the construction product
// Eoutᵀ·Ein (one flop per edge — memory-latency bound, where the win
// is allocation), and "rmat-sN-2hop" is the downstream A·Aᵀ product
// (flops ≫ nnz — where the two-phase engine's time win shows); the
// s12 cases are the large ones.
func BenchmarkSpGEMMVariants(b *testing.B) {
	for _, cfg := range []struct {
		scale int
		hop2  bool
	}{{10, false}, {10, true}, {12, false}, {12, true}} {
		g := dataset.RMAT(rand.New(rand.NewSource(4)), cfg.scale, 8)
		one := func(graph.Edge) float64 { return 1 }
		eout, ein, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
		a := eout.Transpose().Matrix()
		c := ein.Matrix()
		name := fmt.Sprintf("rmat-s%d", cfg.scale)
		if cfg.hop2 {
			adj, err := sparse.Mul(a, c, semiring.PlusTimes())
			if err != nil {
				b.Fatal(err)
			}
			a, c = adj, adj.Transpose()
			name += "-2hop"
		}
		variants := []struct {
			name string
			fn   func() error
		}{
			{"legacy", func() error { _, err := sparse.MulLegacy(a, c, semiring.PlusTimes()); return err }},
			{"gustavson", func() error { _, err := sparse.MulGustavson(a, c, semiring.PlusTimes()); return err }},
			{"hash", func() error { _, err := sparse.MulHash(a, c, semiring.PlusTimes()); return err }},
			{"merge", func() error { _, err := sparse.MulMerge(a, c, semiring.PlusTimes()); return err }},
			{"twophase", func() error { _, err := sparse.MulTwoPhase(a, c, semiring.PlusTimes()); return err }},
			{"parallel", func() error { _, err := sparse.MulParallel(a, c, semiring.PlusTimes(), -1, 0); return err }},
		}
		for _, v := range variants {
			b.Run(name+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.fn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Ablation — key alignment: pre-aligned shared dimension vs key sets
// that need intersection and extraction first.
func BenchmarkKeyAlignment(b *testing.B) {
	g := dataset.Bipartite(rand.New(rand.NewSource(5)), 256, 256, 4096)
	one := func(graph.Edge) float64 { return 1 }
	eout, ein, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	aligned := eout.Transpose()

	// Misaligned: drop one edge row from ein so the shared key sets
	// differ and Mul must intersect.
	ts := ein.Triples()[1:]
	einMis := assoc.FromTriples(ts, nil)

	b.Run("aligned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assoc.Mul(aligned, ein, semiring.PlusTimes(), assoc.MulOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("intersecting", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assoc.Mul(aligned, einMis, semiring.PlusTimes(), assoc.MulOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation — parallel grain size.
func BenchmarkParallelGrain(b *testing.B) {
	g := dataset.RMAT(rand.New(rand.NewSource(6)), 11, 8)
	one := func(graph.Edge) float64 { return 1 }
	eout, ein, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	a := eout.Transpose().Matrix()
	c := ein.Matrix()
	for _, grain := range []int{1, 16, 256, 0} {
		name := fmt.Sprintf("grain-%d", grain)
		if grain == 0 {
			name = "grain-auto"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.MulParallel(a, c, semiring.PlusTimes(), -1, grain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation — materialized CSR multiply vs streaming tstore TableMult.
func BenchmarkTableMultVsCSR(b *testing.B) {
	g := dataset.RMAT(rand.New(rand.NewSource(7)), 9, 8)
	one := func(graph.Edge) float64 { return 1 }
	eout, ein, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		a := eout.Transpose().Matrix()
		c := ein.Matrix()
		for i := 0; i < b.N; i++ {
			if _, err := sparse.MulGustavson(a, c, semiring.PlusTimes()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tstore", func(b *testing.B) {
		b.ReportAllocs()
		sOut := tstore.FromArray(eout, value.FormatFloat, tstore.Options{})
		sIn := tstore.FromArray(ein, value.FormatFloat, tstore.Options{})
		codec := tstore.Codec[float64]{Parse: value.ParseFloat, Format: value.FormatFloat}
		for i := 0; i < b.N; i++ {
			if _, err := tstore.AdjacencyFromTables(sOut, sIn, semiring.PlusTimes(), codec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation — the cost of the generic Ops[V] abstraction versus a
// hand-specialized float64 +.× kernel.
func BenchmarkGenericVsSpecialized(b *testing.B) {
	g := dataset.RMAT(rand.New(rand.NewSource(8)), 10, 8)
	one := func(graph.Edge) float64 { return 1 }
	eout, ein, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	a := eout.Transpose().Matrix()
	c := ein.Matrix()

	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sparse.MulGustavson(a, c, semiring.PlusTimes()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("specialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			specializedPlusTimes(a, c)
		}
	})
}

// specializedPlusTimes is a monomorphic float64 Gustavson kernel used
// only as the ablation baseline.
func specializedPlusTimes(a, b *sparse.CSR[float64]) int {
	acc := make([]float64, b.Cols())
	stamp := make([]int, b.Cols())
	touched := make([]int, 0, b.Cols())
	cur := 0
	nnz := 0
	for i := 0; i < a.Rows(); i++ {
		cur++
		touched = touched[:0]
		aCols, aVals := a.Row(i)
		for p, k := range aCols {
			av := aVals[p]
			bCols, bVals := b.Row(k)
			for q, j := range bCols {
				if stamp[j] != cur {
					stamp[j] = cur
					acc[j] = av * bVals[q]
					touched = append(touched, j)
				} else {
					acc[j] += av * bVals[q]
				}
			}
		}
		for _, j := range touched {
			if acc[j] != 0 {
				nnz++
			}
		}
	}
	return nnz
}

// Ablation — serial vs parallel transpose.
func BenchmarkTransposeParallel(b *testing.B) {
	g := dataset.RMAT(rand.New(rand.NewSource(9)), 12, 8)
	one := func(graph.Edge) float64 { return 1 }
	eout, _, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	m := eout.Matrix()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Transpose()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sparse.TransposeParallel(m, -1)
		}
	})
}

// Ablation — masked vs unmasked triangle counting: C⟨A⟩ = A·A versus
// materializing A² and intersecting.
func BenchmarkMaskedVsUnmaskedTriangles(b *testing.B) {
	// Symmetric power-law-ish graph: R-MAT pattern symmetrized.
	g := dataset.RMAT(rand.New(rand.NewSource(10)), 9, 8)
	bld := assoc.NewBuilder[float64](nil)
	for _, e := range g.Edges() {
		if e.Src != e.Dst {
			bld.Set(e.Src, e.Dst, 1)
			bld.Set(e.Dst, e.Src, 1)
		}
	}
	p := bld.Build()
	ops := semiring.PlusTimes()
	b.Run("masked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assoc.MulMasked(p, p, p, ops); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmasked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sq, err := assoc.Mul(p, p, ops, assoc.MulOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := assoc.ElementMul(sq, p, ops); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Algorithm-suite benchmarks on a constructed adjacency array (the
// paper's "variety of algorithms" downstream of construction).
func BenchmarkAlgorithmsOnConstructedArray(b *testing.B) {
	g := dataset.RMAT(rand.New(rand.NewSource(12)), 9, 8)
	one := func(graph.Edge) float64 { return 1 }
	a, _, _, err := graph.BuildAdjacency(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one}, assoc.MulOptions{})
	if err != nil {
		b.Fatal(err)
	}
	src := a.RowKeys().Key(0)
	b.Run("bfs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algo.BFSLevels(a, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sssp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algo.SSSP(a, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("components", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algo.Components(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pagerank", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := algo.PageRank(a, 0.85, 1e-8, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Provenance multiply vs value multiply on the music figures.
func BenchmarkProvenanceMultiply(b *testing.B) {
	e1, e2 := dataset.MusicE1E2()
	b.Run("values", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assoc.Correlate(e1, e2, semiring.PlusTimes(), assoc.MulOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("edge-keys", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assoc.CorrelateKeys(e1, e2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation — construction decomposition: output-row-blocked SpGEMM vs
// edge-sharded partial products (the D4M parallel-ingest shape).
func BenchmarkShardedVsRowBlocked(b *testing.B) {
	g := dataset.RMAT(rand.New(rand.NewSource(14)), 10, 8)
	one := func(graph.Edge) float64 { return 1 }
	eout, ein, _ := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one})
	b.Run("row-blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := assoc.Correlate(eout, ein, semiring.PlusTimes(), assoc.MulOptions{Workers: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shard.Construct(eout, ein, semiring.PlusTimes(), shard.Options{Shards: shards, Workers: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Pipeline at scale: the full Figure 1→3 flow (explode → subref →
// correlate) over synthetic music-shaped tables of growing size.
func BenchmarkPipelineScaling(b *testing.B) {
	for _, records := range []int{500, 2000, 8000} {
		tab := dataset.SyntheticTable(rand.New(rand.NewSource(15)), dataset.DefaultSyntheticSpec(records))
		b.Run(fmt.Sprintf("records-%d", records), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := assoc.Explode(tab, assoc.ExplodeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				e1, err := e.SubRefExpr(":", "Genre|*")
				if err != nil {
					b.Fatal(err)
				}
				e2, err := e.SubRefExpr(":", "Writer|*")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := assoc.Correlate(e1, e2, semiring.PlusTimes(), assoc.MulOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// End-to-end public-API benchmark: the full Build pipeline including
// condition checks, as a downstream user would call it.
func BenchmarkBuildPipeline(b *testing.B) {
	e1, e2 := dataset.MusicE1E2()
	for _, backend := range []adjarray.BuildBackend{adjarray.BackendCSR, adjarray.BackendParallel} {
		b.Run(string(backend), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := adjarray.Build(adjarray.BuildRequest{
					Eout: e1, Ein: e2, Semiring: "+.*", Backend: backend,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
