module adjarray

go 1.23
