package adjarray

import (
	"adjarray/internal/algo"
	"adjarray/internal/assoc"
	"adjarray/internal/conformance"
	"adjarray/internal/core"
	"adjarray/internal/graph"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// Associative arrays (Definition I.1).

// Array is an associative array K1×K2 → V over string keys.
type Array[V any] = assoc.Array[V]

// Triple is one stored (row, col, value) entry.
type Triple[V any] = assoc.Triple[V]

// Builder accumulates triples for an Array.
type Builder[V any] = assoc.Builder[V]

// Table is a dense relational table, the input of Explode.
type Table = assoc.Table

// ExplodeOptions configures the table → incidence transform.
type ExplodeOptions = assoc.ExplodeOptions

// MulOptions tunes array multiplication (workers, grain, kernel).
type MulOptions = assoc.MulOptions

// FromTriples builds an Array from entries; nil combine keeps the last
// duplicate (D4M overwrite semantics).
func FromTriples[V any](ts []Triple[V], combine func(V, V) V) *Array[V] {
	return assoc.FromTriples(ts, combine)
}

// NewBuilder creates a Builder with the given duplicate-combining rule.
func NewBuilder[V any](combine func(V, V) V) *Builder[V] { return assoc.NewBuilder(combine) }

// Explode converts a dense table into its sparse incidence view
// ("field|value" columns, Figure 1).
func Explode(t Table, opt ExplodeOptions) (*Array[float64], error) { return assoc.Explode(t, opt) }

// Implode reverses Explode.
func Implode(a *Array[float64], sep, multiSep string) (Table, error) {
	return assoc.Implode(a, sep, multiSep)
}

// Mul computes A ⊕.⊗ B with D4M key alignment on the shared dimension.
func Mul[V any](a, b *Array[V], ops Ops[V], opt MulOptions) (*Array[V], error) {
	return assoc.Mul(a, b, ops, opt)
}

// Correlate computes Aᵀ ⊕.⊗ B — the paper's adjacency-construction form.
func Correlate[V any](a, b *Array[V], ops Ops[V], opt MulOptions) (*Array[V], error) {
	return assoc.Correlate(a, b, ops, opt)
}

// MulDense computes the literal Definition I.3 product including
// structural zeros; the verification oracle.
func MulDense[V any](a, b *Array[V], ops Ops[V]) (*Array[V], error) {
	return assoc.MulDense(a, b, ops)
}

// EWiseAdd computes the element-wise A ⊕ B over the union key space.
func EWiseAdd[V any](a, b *Array[V], ops Ops[V]) (*Array[V], error) { return assoc.Add(a, b, ops) }

// EWiseMul computes the element-wise A ⊗ B over the union key space.
func EWiseMul[V any](a, b *Array[V], ops Ops[V]) (*Array[V], error) {
	return assoc.ElementMul(a, b, ops)
}

// Format renders an array as an aligned D4M-style grid.
func Format[V any](a *Array[V], format func(V) string) string { return assoc.Format(a, format) }

// Key selection (the paper's Matlab-style sub-array notation).

// Selector picks a subset of keys.
type Selector = keys.Selector

// KeyRange selects the inclusive lexicographic interval [Lo, Hi].
type KeyRange = keys.Range

// KeyPrefix selects keys beginning with P.
type KeyPrefix = keys.Prefix

// AllKeys selects every key.
type AllKeys = keys.All

// ParseSelector parses D4M-flavoured selector strings like
// "Genre|A : Genre|Z", "Writer|*", or ":".
func ParseSelector(expr string) (Selector, error) { return keys.Parse(expr) }

// Operator pairs (⊕.⊗) and their property analysis.

// Ops bundles an operator pair with its identities.
type Ops[V any] = semiring.Ops[V]

// Report is the Theorem II.1 condition analysis of an operator pair.
type Report = semiring.Report

// Condition is one analysed algebraic law.
type Condition = semiring.Condition

// The seven operator pairs of Figures 3 and 5.
var (
	PlusTimes = semiring.PlusTimes
	MaxTimes  = semiring.MaxTimes
	MinTimes  = semiring.MinTimes
	MaxPlus   = semiring.MaxPlus
	MinPlus   = semiring.MinPlus
	MaxMin    = semiring.MaxMin
	MinMax    = semiring.MinMax
)

// Non-examples and further algebras.
var (
	MaxPlusAtZero = semiring.MaxPlusAtZero
	StringMaxMin  = semiring.StringMaxMin
	BoolOrAnd     = semiring.BoolOrAnd
	IntRing       = semiring.IntRing
	NatPlusTimes  = semiring.NatPlusTimes
	ZMod          = semiring.ZMod
)

// PowerSet is the ∪.∩ pair over subsets of the universe (a non-trivial
// Boolean algebra — a Theorem II.1 non-example in general, usable on
// structured data per Section III).
func PowerSet(universe Set) Ops[Set] { return semiring.PowerSet(universe) }

// Check analyses an operator pair over a sample of domain values.
func Check[V any](o Ops[V], sample []V, format func(V) string) Report {
	return semiring.Check(o, sample, format)
}

// Figure3Pairs returns the seven pairs in the paper's presentation order.
func Figure3Pairs() []Ops[float64] { return semiring.Figure3Pairs() }

// LookupSemiring resolves a registered float64 pair by name ("+.*",
// "max.min", …).
func LookupSemiring(name string) (semiring.Entry, bool) { return semiring.Lookup(name) }

// ClassifyAlgebras regenerates the Section III compliance table.
func ClassifyAlgebras() []semiring.ClassRow { return semiring.Classify() }

// Graph layer.

// Graph is a finite directed multigraph.
type Graph = graph.Graph

// Edge is one directed edge (Key, Src, Dst).
type Edge = graph.Edge

// Weights chooses incidence-array entry values per edge.
type Weights[V any] = graph.Weights[V]

// Violation demonstrates a Theorem II.1 failure on a gadget graph.
type Violation[V any] = graph.Violation[V]

// NewGraph validates and builds a Graph.
func NewGraph(edges []Edge) (*Graph, error) { return graph.New(edges) }

// Incidence extracts the source/target incidence arrays of g
// (Definition I.4).
func Incidence[V any](g *Graph, ops Ops[V], w Weights[V]) (eout, ein *Array[V], err error) {
	return graph.Incidence(g, ops, w)
}

// Adjacency constructs A = Eoutᵀ ⊕.⊗ Ein with the sparse kernel.
func Adjacency[V any](eout, ein *Array[V], ops Ops[V], opt MulOptions) (*Array[V], error) {
	return graph.Adjacency(eout, ein, ops, opt)
}

// ReverseAdjacency constructs Einᵀ ⊕.⊗ Eout (Corollary III.1: the
// adjacency array of the reverse graph).
func ReverseAdjacency[V any](eout, ein *Array[V], ops Ops[V], opt MulOptions) (*Array[V], error) {
	return graph.ReverseAdjacency(eout, ein, ops, opt)
}

// BuildAdjacency runs incidence extraction plus construction in one call.
func BuildAdjacency[V any](g *Graph, ops Ops[V], w Weights[V], opt MulOptions) (a, eout, ein *Array[V], err error) {
	return graph.BuildAdjacency(g, ops, w, opt)
}

// IsAdjacencyOf validates Definition I.5: a is an adjacency array of g.
func IsAdjacencyOf[V any](a *Array[V], g *Graph, isZero func(V) bool) error {
	return graph.IsAdjacencyOf(a, g, isZero)
}

// VerifyConstruction checks the theorem's forward direction on g.
func VerifyConstruction[V any](g *Graph, ops Ops[V], w Weights[V]) error {
	return graph.VerifyConstruction(g, ops, w)
}

// FindViolation demonstrates the converse: any condition failure on the
// sample yields a gadget graph whose product is not an adjacency array.
func FindViolation[V any](ops Ops[V], sample []V) *Violation[V] {
	return graph.FindViolation(ops, sample)
}

// End-to-end pipeline.

// BuildRequest configures the construction service.
type BuildRequest = core.Request

// BuildResult is the service outcome.
type BuildResult = core.Result

// BuildBackend selects the construction engine.
type BuildBackend = core.Backend

// Construction engines.
const (
	BackendCSR      = core.BackendCSR
	BackendParallel = core.BackendParallel
	BackendTStore   = core.BackendTStore
	BackendDense    = core.BackendDense
	BackendSharded  = core.BackendSharded
)

// Build runs the end-to-end construction pipeline: semiring resolution,
// Theorem II.1 condition check (with gadget counterexample on failure),
// construction on the selected backend, optional validation.
func Build(req BuildRequest) (*BuildResult, error) { return core.Build(req) }

// Incremental maintenance (streaming ingest).

// StreamEdge is one ingested edge for a maintained adjacency view.
// Weight presence is explicit (HasOut/HasIn); an unset side ingests as
// the algebra's One — the unweighted convention.
type StreamEdge[V any] = stream.Edge[V]

// WeightedStreamEdge builds a StreamEdge with both incidence values
// explicitly present.
func WeightedStreamEdge[V any](key, src, dst string, out, in V) StreamEdge[V] {
	return stream.Weighted(key, src, dst, out, in)
}

// StreamOptions tunes a maintained adjacency view (compaction cadence,
// associativity guard, pending-fold budget).
type StreamOptions = stream.Options

// AdjacencyView maintains A = Eoutᵀ ⊕.⊗ Ein under continuous edge
// ingest: appended batches apply via the delta identity
// A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:] instead of full rebuilds.
type AdjacencyView[V any] = stream.View[V]

// AdjacencySnapshot is an immutable read view of an AdjacencyView.
type AdjacencySnapshot[V any] = stream.Snapshot[V]

// StreamStats summarizes a view's counters.
type StreamStats = stream.Stats

// NewAdjacencyView creates an empty maintained view.
func NewAdjacencyView[V any](ops Ops[V], opt StreamOptions) *AdjacencyView[V] {
	return stream.NewView(ops, opt)
}

// AdjacencyViewFromIncidence bootstraps a view from batch-built
// incidence arrays; subsequent appends apply deltas on top.
func AdjacencyViewFromIncidence[V any](eout, ein *Array[V], ops Ops[V], opt StreamOptions) (*AdjacencyView[V], error) {
	return stream.FromIncidence(eout, ein, ops, opt)
}

// Sharded ingest: route-by-hash scatter across per-shard views with
// scatter-gather snapshots (see stream.ShardedView).

// ShardedStreamOptions tunes a sharded maintained view: the shard count
// plus the per-shard StreamOptions.
type ShardedStreamOptions = stream.ShardedOptions

// ShardedAdjacencyView hash-partitions the ingested vertex space across
// goroutine-shards, each owning its own AdjacencyView, so concurrent
// appends to different shards never contend. Snapshot pins one
// consistent epoch per shard and lazily ⊕-merges the per-shard
// adjacencies — bit-identical to the single-view construction because
// shards own disjoint adjacency rows.
type ShardedAdjacencyView[V any] = stream.ShardedView[V]

// ShardedAdjacencySnapshot is an immutable scatter-gather read view
// pinned at one epoch vector.
type ShardedAdjacencySnapshot[V any] = stream.ShardedSnapshot[V]

// ShardedStreamStats aggregates per-shard view counters.
type ShardedStreamStats = stream.ShardedStats

// NewShardedAdjacencyView creates an empty in-memory sharded view.
func NewShardedAdjacencyView[V any](ops Ops[V], opt ShardedStreamOptions) *ShardedAdjacencyView[V] {
	return stream.NewShardedView(ops, opt)
}

// Ingest accumulates edge triples and feeds a maintained view — the
// ingest-side counterpart of Build.
type Ingest = core.Ingest

// IngestOptions configures an Ingest accumulator.
type IngestOptions = core.IngestOptions

// NewIngest resolves the operator pair, checks the Theorem II.1
// conditions, and returns an empty accumulator.
func NewIngest(opt IngestOptions) (*Ingest, error) { return core.NewIngest(opt) }

// Provenance multiplication (D4M CatKeyMul analogue).

// MulKeys computes the provenance product: entry (k1,k2) is the set of
// shared keys contributing to A ⊕.⊗ B at (k1,k2).
func MulKeys[V, W any](a *Array[V], b *Array[W]) (*Array[Set], error) {
	return assoc.MulKeys(a, b)
}

// CorrelateKeys computes AᵀB in provenance form: for adjacency
// construction, entry (a,b) is the set of edge keys connecting a to b.
func CorrelateKeys[V, W any](a *Array[V], b *Array[W]) (*Array[Set], error) {
	return assoc.CorrelateKeys(a, b)
}

// Graph algorithms on constructed adjacency arrays.
//
// Each algorithm has two execution forms: the package-level functions
// below iterate the map-backed assoc.Mul reference, while CSRGraph
// methods run the same iterations on integer-id CSR kernels with
// automatic push–pull switching — bit-identical results, one to two
// orders of magnitude faster (see cmd/graphbench -gen algo).

// CSRGraph is the CSR-native execution form of an adjacency array:
// integer vertex ids over the square union vertex space, with string
// keys only at the API boundary. Its methods (BFSLevels, SSSP,
// WidestPath, Components, TriangleCount, PageRank) mirror the
// package-level functions.
type CSRGraph = algo.Graph

// NewCSRGraph builds a CSRGraph from an adjacency array, keeping stored
// values as edge weights.
func NewCSRGraph(a *Array[float64]) (*CSRGraph, error) { return algo.FromArray(a) }

// NewCSRGraphPattern builds a CSRGraph from any array's pattern with
// weight 1 per stored entry.
func NewCSRGraphPattern[V any](a *Array[V]) (*CSRGraph, error) { return algo.FromPattern(a) }

// CSRGraphFromSnapshot builds a CSRGraph from a live stream snapshot's
// adjacency — the serving path: algorithm queries on a maintained view
// while ingest continues.
func CSRGraphFromSnapshot(s AdjacencySnapshot[float64]) (*CSRGraph, error) {
	return algo.FromSnapshot(s)
}

// BFSLevels computes breadth-first hop counts from source over the
// array's pattern (∨.∧ frontier expansion).
func BFSLevels[V any](a *Array[V], source string) (map[string]int, error) {
	return algo.BFSLevels(a, source)
}

// SSSP computes single-source shortest-path distances under min.+
// (Bellman–Ford relaxation to fixpoint).
func SSSP(a *Array[float64], source string) (map[string]float64, error) {
	return algo.SSSP(a, source)
}

// WidestPath computes maximum bottleneck widths from source under
// max.min.
func WidestPath(a *Array[float64], source string) (map[string]float64, error) {
	return algo.WidestPath(a, source)
}

// Components labels each vertex with the smallest key in its weakly
// connected component (min-label propagation).
func Components[V any](a *Array[V]) (map[string]string, error) {
	return algo.Components(a)
}

// TriangleCount counts triangles of a symmetric adjacency pattern via
// (A ⊕.⊗ A) ∘ A under +.×.
func TriangleCount[V any](a *Array[V]) (int, error) { return algo.TriangleCount(a) }

// TransitiveClosure computes the ≥1-hop reachability pattern by
// repeated Boolean squaring.
func TransitiveClosure[V any](a *Array[V]) (*Array[bool], error) {
	return algo.TransitiveClosure(a)
}

// PageRank computes damped PageRank over the array's pattern.
func PageRank[V any](a *Array[V], damping, tol float64, maxIter int) (map[string]float64, int, error) {
	return algo.PageRank(a, damping, tol, maxIter)
}

// OutDegrees and InDegrees fold entry counts per row/column key.
func OutDegrees[V any](a *Array[V]) map[string]float64 { return algo.OutDegrees(a) }

// InDegrees is OutDegrees of the transpose.
func InDegrees[V any](a *Array[V]) map[string]float64 { return algo.InDegrees(a) }

// Cross-backend conformance (the verification subsystem).

// ConformanceDivergence is one disagreement between construction paths,
// pinned to a shrunk reproducing instance.
type ConformanceDivergence = conformance.Divergence

// SelfCheck runs the cross-backend conformance harness: `instances`
// adversarial random instances per registry operator pair, each fed
// through every registered construction path (serial CSR, two-phase,
// parallel, sharded, incremental stream) and compared against the dense
// Definition I.3 oracle where the Theorem II.1 conditions license it.
// The first divergence is returned as a *ConformanceDivergence error
// with a minimized counterexample; nil means every path agreed on every
// instance. Deployments embedding custom backends can call this at
// startup or from their own test suites.
func SelfCheck(seed int64, instances int) error { return conformance.SelfCheck(seed, instances) }

// ConformancePaths lists the registered construction-path names the
// harness covers.
func ConformancePaths() []string { return conformance.PathNames() }

// Values.

// Set is a finite string set, the value domain of the ∪.∩ algebra.
type Set = value.Set

// NewSet builds a canonical Set.
func NewSet(words ...string) Set { return value.NewSet(words...) }

// FormatFloat renders floats the way the paper's figures do.
var FormatFloat = value.FormatFloat

// ParseFloat parses FormatFloat's output (including ±Inf).
var ParseFloat = value.ParseFloat
