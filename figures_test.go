package adjarray_test

// figures_test.go — golden reproduction tests: every figure of the
// paper is regenerated through the public pipeline and compared against
// the values printed in the paper. These are the repository's
// ground-truth claims; EXPERIMENTS.md summarizes their outcomes.

import (
	"strings"
	"testing"

	"adjarray"
	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func eqFloat(a, b float64) bool { return value.Float64Equal(a, b) }

// Figure 1: the exploded incidence array E — 22 tracks × 31 columns
// with the row-degree profile visible in the paper's raster.
func TestGoldenFigure1(t *testing.T) {
	e := dataset.MusicIncidence()
	if r, c := e.Shape(); r != 22 || c != 31 {
		t.Fatalf("E is %d×%d, want 22×31", r, c)
	}
	for row, want := range dataset.Figure1RowDegrees() {
		if got := e.RowDegrees()[row]; got != want {
			t.Errorf("row %s degree %d, want %d", row, got, want)
		}
	}
	total := 0
	for _, d := range dataset.Figure1RowDegrees() {
		total += d
	}
	if e.NNZ() != total {
		t.Errorf("E nnz = %d, want %d", e.NNZ(), total)
	}
}

// Figure 2: the E1/E2 sub-array selection with the paper's Matlab-style
// range expressions.
func TestGoldenFigure2(t *testing.T) {
	e := dataset.MusicIncidence()
	e1, err := e.SubRefExpr(":", "Genre|A : Genre|Z")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.SubRefExpr(":", "Writer|A : Writer|Z")
	if err != nil {
		t.Fatal(err)
	}
	if e1.ColKeys().Len() != 3 || e1.NNZ() != 30 {
		t.Errorf("E1: %d cols %d nnz, want 3 cols 30 nnz", e1.ColKeys().Len(), e1.NNZ())
	}
	if e2.ColKeys().Len() != 5 || e2.NNZ() != 45 {
		t.Errorf("E2: %d cols %d nnz, want 5 cols 45 nnz", e2.ColKeys().Len(), e2.NNZ())
	}
	// Selection must preserve all 22 track rows.
	if e1.RowKeys().Len() != 22 || e2.RowKeys().Len() != 22 {
		t.Error("sub-array selection dropped track rows")
	}
}

// Figures 3 and 5: the seven operator-pair correlations, compared
// value-for-value against the arrays printed in the paper.
func TestGoldenFigures3And5(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	e1w := dataset.MusicE1Weighted()
	cases := []struct {
		fig      string
		lhs      *assoc.Array[float64]
		expected map[string]*assoc.Array[float64]
	}{
		{"Figure 3", e1, dataset.Figure3Expected()},
		{"Figure 5", e1w, dataset.Figure5Expected()},
	}
	for _, c := range cases {
		for _, ops := range semiring.Figure3Pairs() {
			got, err := adjarray.Correlate(c.lhs, e2, ops, adjarray.MulOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(c.expected[ops.Name], eqFloat) {
				t.Errorf("%s %s: mismatch\ngot:\n%swant:\n%s", c.fig, ops.Name,
					assoc.Format(got, value.FormatFloat),
					assoc.Format(c.expected[ops.Name], value.FormatFloat))
			}
		}
	}
}

// Figure 4: the re-weighted E1 (Electronic=1, Pop=2, Rock=3) with the
// Figure 2 pattern preserved.
func TestGoldenFigure4(t *testing.T) {
	e1, _ := dataset.MusicE1E2()
	w := dataset.MusicE1Weighted()
	if !assoc.SamePattern(e1, w) {
		t.Fatal("Figure 4 changed the sparsity pattern")
	}
	counts := map[float64]int{}
	w.Iterate(func(_, _ string, v float64) { counts[v]++ })
	// 10 Electronic entries (1s), 14 Pop (2s), 6 Rock (3s).
	if counts[1] != 10 || counts[2] != 14 || counts[3] != 6 {
		t.Errorf("value histogram = %v, want 1:10 2:14 3:6", counts)
	}
}

// Cross-backend agreement on the headline figure: every construction
// engine computes the same Figure 3 panel.
func TestGoldenFigure3AcrossBackends(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	want := dataset.Figure3Expected()["+.*"]
	for _, backend := range []adjarray.BuildBackend{
		adjarray.BackendCSR, adjarray.BackendParallel, adjarray.BackendTStore, adjarray.BackendDense,
	} {
		res, err := adjarray.Build(adjarray.BuildRequest{
			Eout: e1, Ein: e2, Semiring: "+.*", Backend: backend,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		got := res.Adjacency
		if backend == adjarray.BackendTStore {
			if got, err = got.Reindex(want.RowKeys(), want.ColKeys()); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		}
		if !got.Equal(want, eqFloat) {
			t.Errorf("%s: Figure 3 +.* differs", backend)
		}
	}
}

// The paper's closing remark in Section III: (AB)ᵀ = BᵀAᵀ requires ⊗
// commutativity; the figure pipeline itself satisfies it because all
// seven pairs commute.
func TestGoldenTransposeIdentityOnFigures(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	for _, ops := range semiring.Figure3Pairs() {
		ab, err := adjarray.Correlate(e1, e2, ops, adjarray.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ba, err := adjarray.Correlate(e2, e1, ops, adjarray.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !ab.Transpose().Equal(ba, eqFloat) {
			t.Errorf("%s: (E1ᵀE2)ᵀ ≠ E2ᵀE1 despite commutative ⊗", ops.Name)
		}
	}
}

// Theorem II.1 executed over the whole registry (experiments E6/E7):
// compliant pairs verify on a structural zoo of graphs; non-compliant
// pairs yield concrete gadget violations.
func TestGoldenTheoremSweep(t *testing.T) {
	zoo := graph.MustNew([]graph.Edge{
		{Key: "e1", Src: "a", Dst: "b"},
		{Key: "e2", Src: "a", Dst: "b"}, // parallel
		{Key: "e3", Src: "b", Dst: "b"}, // self-loop
		{Key: "e4", Src: "b", Dst: "c"},
		{Key: "e5", Src: "d", Dst: "a"}, // d is a pure source
		{Key: "e6", Src: "c", Dst: "e"}, // e is a pure sink
	})
	for _, e := range semiring.Registry() {
		r := semiring.Check(e.Ops, e.Sample, value.FormatFloat)
		v := adjarray.FindViolation(e.Ops, e.Sample)
		if r.TheoremII1() {
			if v != nil {
				t.Errorf("%s: compliant but violation found: %s", e.Name, v)
			}
			if err := adjarray.VerifyConstruction(zoo, e.Ops, graph.Weights[float64]{}); err != nil {
				t.Errorf("%s: construction failed on zoo graph: %v", e.Name, err)
			}
		} else if v == nil {
			t.Errorf("%s: non-compliant but no violation demonstrated", e.Name)
		}
	}
}

// The grid renderer reproduces the paper's display conventions: blank
// cells for structural zeros, integral values without decimal points.
func TestGoldenFigureRendering(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	a, err := adjarray.Correlate(e1, e2, adjarray.PlusTimes(), adjarray.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := assoc.Format(a, value.FormatFloat)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 genre rows
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "Writer|Barrett Rich") {
		t.Error("header missing writer columns")
	}
	if !strings.Contains(lines[1], " 13") && !strings.Contains(lines[2], " 13") {
		t.Error("Pop row should contain 13")
	}
	if strings.Contains(out, "13.0") {
		t.Error("integral values must print without decimals")
	}
}
