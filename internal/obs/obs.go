// Package obs is a small, dependency-free metrics kit for the serving
// layer: counters, gauges, and fixed-bucket histograms collected in a
// Registry and exposed in the Prometheus text format (version 0.0.4).
//
// The package exists because the repo bakes in no third-party modules:
// it implements exactly the subset of the Prometheus client the front
// door needs — atomic instruments, label sets, pull-time callback
// metrics for values that live elsewhere (view epochs, WAL lag), and a
// text exposition handler — and nothing more. All instruments are safe
// for concurrent use; Observe/Inc/Add are lock-free.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// DefBuckets are latency histogram bounds in seconds, exponential from
// 100µs to 10s — wide enough to cover a point read and a cold PageRank.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored
// (counters are monotone by definition).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name string, labels []Label) {
	fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(labels), c.v.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name string, labels []Label) {
	fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labels), fmtFloat(g.Value()))
}

// funcMetric reads its value at exposition time — for positions owned
// by another subsystem (view epoch, WAL lag, queue depth).
type funcMetric struct{ fn func() float64 }

func (f *funcMetric) write(w io.Writer, name string, labels []Label) {
	fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labels), fmtFloat(f.fn()))
}

// Histogram counts observations into fixed buckets (cumulative `le`
// exposition) and tracks their sum and count.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) write(w io.Writer, name string, labels []Label) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := append(append([]Label(nil), labels...), Label{"le", fmtFloat(b)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(le), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	inf := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(inf), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), h.count.Load())
}

type metric interface {
	write(w io.Writer, name string, labels []Label)
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	labels []Label
	key    string
	m      metric
}

type family struct {
	name, help string
	kind       kind
	series     []*series
	byKey      map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter for name+labels, creating it on first
// use. Re-requesting the same series returns the same instrument, so
// hot paths may call this per request (one mutex + map lookup).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.metric(name, help, counterKind, labels, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: " + name + " is registered as a callback counter")
	}
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.metric(name, help, gaugeKind, labels, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: " + name + " is registered as a callback gauge")
	}
	return g
}

// Histogram returns the histogram for name+labels, creating it with
// the given ascending bucket bounds on first use (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.metric(name, help, histogramKind, labels, func() metric {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: " + name + " is not a histogram")
	}
	return h
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time. Registering the same series again replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.replaceFunc(name, help, gaugeKind, fn, labels)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotone positions maintained elsewhere
// (epochs, edge counts). Registering the same series replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.replaceFunc(name, help, counterKind, fn, labels)
}

func (r *Registry) replaceFunc(name, help string, k kind, fn func() float64, labels []Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, k)
	key := renderLabels(labels)
	if s, ok := f.byKey[key]; ok {
		if _, isFn := s.m.(*funcMetric); !isFn {
			panic("obs: " + name + key + " is registered as a direct instrument")
		}
		s.m = &funcMetric{fn: fn}
		return
	}
	s := &series{labels: labels, key: key, m: &funcMetric{fn: fn}}
	f.byKey[key] = s
	f.series = append(f.series, s)
}

func (r *Registry) metric(name, help string, k kind, labels []Label, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, k)
	key := renderLabels(labels)
	if s, ok := f.byKey[key]; ok {
		return s.m
	}
	s := &series{labels: sortLabels(labels), key: key, m: mk()}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s.m
}

func (r *Registry) familyLocked(name, help string, k kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, byKey: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: %s registered as both %s and %s", name, f.kind, k))
	}
	return f
}

// WriteText renders every family in the Prometheus text format,
// families sorted by name and series by label set, so output is
// deterministic for tests and diffable for humans.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	// Snapshot the series lists so exposition does not hold the
	// registry lock while formatting (instruments are atomic anyway).
	type famSnap struct {
		name, help string
		kind       kind
		series     []*series
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(a, b int) bool { return ss[a].key < ss[b].key })
		snaps[i] = famSnap{name: f.name, help: f.help, kind: f.kind, series: ss}
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			s.m.write(w, f.name, s.labels)
		}
	}
}

// Handler serves the registry as a text/plain exposition endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// renderLabels renders {a="x",b="y"} with names sorted, or "" when the
// set is empty. Values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortLabels(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
