package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", Label{"path", "/at"}, Label{"code", "200"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	g := r.Gauge("inflight", "In-flight requests.")
	g.Set(3)
	g.Add(-1)

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{code="200",path="/at"} 3`,
		"# TYPE inflight gauge",
		"inflight 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Label{"k", "v"})
	b := r.Counter("x_total", "", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("x_total", "", Label{"k", "w"})
	if other == a {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, Label{"path", "/bfs"})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.56) > 1e-9 {
		t.Fatalf("Sum = %v, want 5.56", h.Sum())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01",path="/bfs"} 2`,
		`latency_seconds_bucket{le="0.1",path="/bfs"} 3`,
		`latency_seconds_bucket{le="1",path="/bfs"} 4`,
		`latency_seconds_bucket{le="+Inf",path="/bfs"} 5`,
		`latency_seconds_count{path="/bfs"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2}, nil...)
	h.Observe(1) // le="1" is inclusive per the exposition format
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("observation at bound not counted in its bucket:\n%s", b.String())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("epoch", "Current epoch.", func() float64 { return v }, Label{"shard", "0"})
	r.CounterFunc("edges_total", "Edges.", func() float64 { return 42 })
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, `epoch{shard="0"} 7`) || !strings.Contains(out, "edges_total 42") {
		t.Fatalf("callback metrics missing:\n%s", out)
	}
	v = 9
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), `epoch{shard="0"} 9`) {
		t.Fatalf("GaugeFunc not re-read at exposition:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", Label{"k", "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), `c{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics handler = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

// Concurrent instrument use plus exposition — the -race gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", nil)
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total", "", Label{"w", string(rune('a' + w))}).Inc()
				h.Observe(float64(i) / 1000)
				g.Add(1)
			}
		}(w)
	}
	var exp sync.WaitGroup
	exp.Add(1)
	go func() {
		defer exp.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteText(&b)
		}
	}()
	wg.Wait()
	exp.Wait()
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
	if g.Value() != 4000 {
		t.Fatalf("gauge = %v, want 4000", g.Value())
	}
}
