package tstore

import (
	"fmt"
	"sort"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

// tablemult.go — the Graphulo-style server-side multiply: adjacency
// construction executed inside the store by streaming both incidence
// tables' rows in merged sorted order, never materializing matrices.
// This is the paper's A = Eoutᵀ ⊕.⊗ Ein as a database operation
// ("Graphulo implementation of server-side sparse matrix multiply in
// the Accumulo database", one of the paper's referenced substrates).

// Codec converts between the store's string values and the algebra's
// value type.
type Codec[V any] struct {
	Parse  func(string) (V, error)
	Format func(V) string
}

// FromArray loads an associative array into a fresh store, one triple
// per entry.
func FromArray[V any](a *assoc.Array[V], format func(V) string, opts Options) *Store {
	s := NewStore(opts)
	w := s.NewBatchWriter(0)
	a.Iterate(func(row, col string, v V) {
		w.Put(row, col, format(v))
	})
	w.Flush()
	return s
}

// ToArray reads an entire store back into an associative array.
func ToArray[V any](s *Store, parse func(string) (V, error)) (*assoc.Array[V], error) {
	var ts []assoc.Triple[V]
	it := s.Scan(ScanRange{})
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		v, err := parse(e.Val)
		if err != nil {
			return nil, fmt.Errorf("tstore: entry (%s,%s): %w", e.Row, e.Col, err)
		}
		ts = append(ts, assoc.Triple[V]{Row: e.Row, Col: e.Col, Val: v})
	}
	return assoc.FromTriples(ts, nil), nil
}

// TableMult computes C = Aᵀ ⊕.⊗ B where A and B are stored as
// (sharedKey, otherKey) → value tables — for adjacency construction,
// A = Eout and B = Ein with rows keyed by edge. The result triples
// C(a, b) = ⊕_k A(k,a) ⊗ B(k,b) are written into the out store (which
// the caller supplies, possibly pre-populated for C += semantics with
// sum handled by the caller's codec — this implementation overwrites).
//
// The scan processes shared row keys in ascending order, so the ⊕ fold
// per output cell follows Definition I.3's key order even for
// non-commutative ⊕. Entries folding to ops.Zero are suppressed.
func TableMult[V any](a, b *Store, ops semiring.Ops[V], codec Codec[V], out *Store) error {
	type cell struct{ r, c string }
	acc := make(map[cell]V)
	var order []cell // first-touch order for deterministic output writes

	itA := a.Scan(ScanRange{})
	itB := b.Scan(ScanRange{})
	ea, okA := itA.Next()
	eb, okB := itB.Next()
	for okA && okB {
		switch {
		case ea.Row < eb.Row:
			ea, okA = itA.Next()
		case ea.Row > eb.Row:
			eb, okB = itB.Next()
		default:
			row := ea.Row
			// Gather the complete row from both tables.
			var aEnts, bEnts []Entry
			for okA && ea.Row == row {
				aEnts = append(aEnts, ea)
				ea, okA = itA.Next()
			}
			for okB && eb.Row == row {
				bEnts = append(bEnts, eb)
				eb, okB = itB.Next()
			}
			for _, x := range aEnts {
				va, err := codec.Parse(x.Val)
				if err != nil {
					return fmt.Errorf("tstore: A(%s,%s): %w", x.Row, x.Col, err)
				}
				for _, y := range bEnts {
					vb, err := codec.Parse(y.Val)
					if err != nil {
						return fmt.Errorf("tstore: B(%s,%s): %w", y.Row, y.Col, err)
					}
					k := cell{r: x.Col, c: y.Col}
					prod := ops.Mul(va, vb)
					if cur, ok := acc[k]; ok {
						acc[k] = ops.Add(cur, prod)
					} else {
						acc[k] = prod
						order = append(order, k)
					}
				}
			}
		}
	}

	sort.Slice(order, func(i, j int) bool {
		if order[i].r != order[j].r {
			return order[i].r < order[j].r
		}
		return order[i].c < order[j].c
	})
	w := out.NewBatchWriter(0)
	for _, k := range order {
		v := acc[k]
		if ops.IsZero(v) {
			continue
		}
		w.Put(k.r, k.c, codec.Format(v))
	}
	w.Flush()
	return nil
}

// AdjacencyFromTables is the end-to-end pipeline: Eout and Ein live in
// the store as (edgeKey, vertex) tables; the result is the adjacency
// array read back out. This is the tstore counterpart of
// graph.Adjacency and must agree with it exactly.
func AdjacencyFromTables[V any](eout, ein *Store, ops semiring.Ops[V], codec Codec[V]) (*assoc.Array[V], error) {
	out := NewStore(Options{})
	if err := TableMult(eout, ein, ops, codec, out); err != nil {
		return nil, err
	}
	return ToArray(out, codec.Parse)
}
