// Package tstore is the storage substrate standing in for the paper's
// D4M/Accumulo backend: an in-memory sorted triple store with
// Accumulo-like semantics — entries sorted by (row, column), range
// scans, batched mutation through a memtable that flushes to immutable
// sorted runs (the LSM design of Accumulo's in-memory map + RFiles),
// newest-write-wins conflict resolution, and tombstoned deletes.
//
// On top of it, tablemult.go implements the Graphulo-style *server-side*
// multiply: C = Aᵀ ⊕.⊗ B computed by streaming the two tables' rows in
// merged sorted order, without materializing CSR matrices — the paper's
// construction pipeline as a database-resident operation.
//
// The substitution (network tablet servers → one in-process store) is
// recorded in DESIGN.md: the access pattern (sorted scans over edge-key
// ranges) and the aggregation semantics are identical; only RPC is gone.
package tstore

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one stored triple. Deleted marks a tombstone in internal
// runs; scans never emit tombstones.
type Entry struct {
	Row, Col, Val string
	Deleted       bool
}

func entryLess(a, b Entry) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// Options tunes the store.
type Options struct {
	// MemLimit is the memtable size that triggers a flush to a sorted
	// run. <= 0 selects the default (4096 entries).
	MemLimit int
	// MaxRuns is the number of immutable runs that triggers a full
	// compaction. <= 0 selects the default (8).
	MaxRuns int
}

func (o *Options) defaults() {
	if o.MemLimit <= 0 {
		o.MemLimit = 4096
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 8
	}
}

// Store is the sorted triple store. Safe for concurrent use: writers
// serialize on the mutex, scans work on an immutable snapshot.
type Store struct {
	mu   sync.RWMutex
	opts Options
	mem  map[[2]string]Entry // memtable: latest write per key
	runs [][]Entry           // immutable sorted runs, newest first
}

// NewStore creates an empty store.
func NewStore(opts Options) *Store {
	opts.defaults()
	return &Store{opts: opts, mem: make(map[[2]string]Entry)}
}

// Put writes (row, col) = val.
func (s *Store) Put(row, col, val string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[[2]string{row, col}] = Entry{Row: row, Col: col, Val: val}
	s.maybeFlushLocked()
}

// Delete removes (row, col) by writing a tombstone.
func (s *Store) Delete(row, col string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[[2]string{row, col}] = Entry{Row: row, Col: col, Deleted: true}
	s.maybeFlushLocked()
}

// Get returns the current value at (row, col).
func (s *Store) Get(row, col string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.mem[[2]string{row, col}]; ok {
		if e.Deleted {
			return "", false
		}
		return e.Val, true
	}
	for _, run := range s.runs { // newest first
		i := sort.Search(len(run), func(i int) bool {
			return !entryLess(run[i], Entry{Row: row, Col: col})
		})
		if i < len(run) && run[i].Row == row && run[i].Col == col {
			if run[i].Deleted {
				return "", false
			}
			return run[i].Val, true
		}
	}
	return "", false
}

// maybeFlushLocked flushes the memtable to a run when it exceeds the
// limit, and compacts when too many runs accumulate.
func (s *Store) maybeFlushLocked() {
	if len(s.mem) < s.opts.MemLimit {
		return
	}
	s.flushLocked()
	if len(s.runs) > s.opts.MaxRuns {
		s.compactLocked()
	}
}

func (s *Store) flushLocked() {
	if len(s.mem) == 0 {
		return
	}
	run := make([]Entry, 0, len(s.mem))
	for _, e := range s.mem {
		run = append(run, e)
	}
	sort.Slice(run, func(i, j int) bool { return entryLess(run[i], run[j]) })
	s.runs = append([][]Entry{run}, s.runs...)
	s.mem = make(map[[2]string]Entry)
}

// Flush forces the memtable into a sorted run.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// Compact merges all runs (and the memtable) into a single run,
// discarding tombstones and shadowed writes.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.compactLocked()
}

func (s *Store) compactLocked() {
	merged := mergeRuns(s.runs, "", "")
	live := merged[:0]
	for _, e := range merged {
		if !e.Deleted {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		s.runs = nil
		return
	}
	s.runs = [][]Entry{live}
}

// Len returns the number of live entries (requires a full merge; O(n)).
func (s *Store) Len() int {
	n := 0
	it := s.Scan(ScanRange{})
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// ScanRange bounds a scan to rows in [StartRow, EndRow); empty strings
// leave the corresponding side unbounded. RowPrefix, if set, overrides
// both with a prefix scan — the idiom for reading one edge-key family.
type ScanRange struct {
	StartRow, EndRow string
	RowPrefix        string
}

func (r ScanRange) bounds() (string, string) {
	if r.RowPrefix != "" {
		return r.RowPrefix, prefixEnd(r.RowPrefix)
	}
	return r.StartRow, r.EndRow
}

func prefixEnd(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Iterator walks live entries in (row, col) order over a snapshot taken
// at Scan time; concurrent writes do not affect it.
type Iterator struct {
	entries []Entry
	pos     int
}

// Next returns the next live entry.
func (it *Iterator) Next() (Entry, bool) {
	if it.pos >= len(it.entries) {
		return Entry{}, false
	}
	e := it.entries[it.pos]
	it.pos++
	return e, true
}

// Scan returns an iterator over live entries in the range, sorted by
// (row, col).
func (s *Store) Scan(r ScanRange) *Iterator {
	lo, hi := r.bounds()
	s.mu.RLock()
	snapshot := make([][]Entry, 0, len(s.runs)+1)
	if len(s.mem) > 0 {
		memRun := make([]Entry, 0, len(s.mem))
		for _, e := range s.mem {
			memRun = append(memRun, e)
		}
		sort.Slice(memRun, func(i, j int) bool { return entryLess(memRun[i], memRun[j]) })
		snapshot = append(snapshot, memRun)
	}
	snapshot = append(snapshot, s.runs...)
	s.mu.RUnlock()

	merged := mergeRuns(snapshot, lo, hi)
	live := merged[:0]
	for _, e := range merged {
		if !e.Deleted {
			live = append(live, e)
		}
	}
	return &Iterator{entries: live}
}

// mergeRuns k-way merges sorted runs, newest-first priority on equal
// keys, restricted to rows in [lo, hi) ("" = unbounded).
func mergeRuns(runs [][]Entry, lo, hi string) []Entry {
	bounded := make([][]Entry, 0, len(runs))
	for _, run := range runs {
		start := 0
		if lo != "" {
			start = sort.Search(len(run), func(i int) bool { return run[i].Row >= lo })
		}
		end := len(run)
		if hi != "" {
			end = sort.Search(len(run), func(i int) bool { return run[i].Row >= hi })
		}
		if start < end {
			bounded = append(bounded, run[start:end])
		}
	}
	switch len(bounded) {
	case 0:
		return nil
	case 1:
		out := make([]Entry, len(bounded[0]))
		copy(out, bounded[0])
		return out
	}
	// Iterative pairwise merge, keeping the newer run's entry on ties.
	acc := bounded[0]
	for _, run := range bounded[1:] {
		acc = mergeTwo(acc, run)
	}
	return acc
}

// mergeTwo merges newer before older; on key ties the newer entry wins.
func mergeTwo(newer, older []Entry) []Entry {
	out := make([]Entry, 0, len(newer)+len(older))
	i, j := 0, 0
	for i < len(newer) && j < len(older) {
		switch {
		case entryLess(newer[i], older[j]):
			out = append(out, newer[i])
			i++
		case entryLess(older[j], newer[i]):
			out = append(out, older[j])
			j++
		default:
			out = append(out, newer[i]) // newer shadows older
			i++
			j++
		}
	}
	out = append(out, newer[i:]...)
	out = append(out, older[j:]...)
	return out
}

// BatchWriter buffers Puts and applies them in one lock acquisition per
// batch — the analogue of Accumulo's BatchWriter.
type BatchWriter struct {
	store *Store
	buf   []Entry
	limit int
}

// NewBatchWriter creates a writer flushing every `limit` entries
// (<= 0 selects 1024).
func (s *Store) NewBatchWriter(limit int) *BatchWriter {
	if limit <= 0 {
		limit = 1024
	}
	return &BatchWriter{store: s, limit: limit}
}

// Put buffers one write.
func (w *BatchWriter) Put(row, col, val string) {
	w.buf = append(w.buf, Entry{Row: row, Col: col, Val: val})
	if len(w.buf) >= w.limit {
		w.Flush()
	}
}

// Flush applies buffered writes.
func (w *BatchWriter) Flush() {
	if len(w.buf) == 0 {
		return
	}
	w.store.mu.Lock()
	for _, e := range w.buf {
		w.store.mem[[2]string{e.Row, e.Col}] = e
	}
	w.store.maybeFlushLocked()
	w.store.mu.Unlock()
	w.buf = w.buf[:0]
}

// RowsWithPrefix lists the distinct row keys starting with p.
func (s *Store) RowsWithPrefix(p string) []string {
	it := s.Scan(ScanRange{RowPrefix: p})
	var rows []string
	last := ""
	for {
		e, ok := it.Next()
		if !ok {
			return rows
		}
		if e.Row != last || len(rows) == 0 {
			if len(rows) == 0 || rows[len(rows)-1] != e.Row {
				rows = append(rows, e.Row)
			}
			last = e.Row
		}
	}
}

// String summarizes the store for debugging.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fmt.Sprintf("tstore{mem=%d, runs=%d}", len(s.mem), len(s.runs))
}
