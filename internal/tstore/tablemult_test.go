package tstore

import (
	"math/rand"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func floatCodec() Codec[float64] {
	return Codec[float64]{Parse: value.ParseFloat, Format: value.FormatFloat}
}

func eqF(a, b float64) bool { return value.Float64Equal(a, b) }

func TestFromToArrayRoundTrip(t *testing.T) {
	a := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "r1", Col: "c1", Val: 1.5},
		{Row: "r2", Col: "c2", Val: -3},
	}, nil)
	s := FromArray(a, value.FormatFloat, Options{})
	back, err := ToArray(s, value.ParseFloat)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back, eqF) {
		t.Error("store round trip lost data")
	}
}

func TestToArrayParseError(t *testing.T) {
	s := NewStore(Options{})
	s.Put("r", "c", "not-a-float")
	if _, err := ToArray(s, value.ParseFloat); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestTableMultTinyKnown(t *testing.T) {
	// Eout: k1→a (2), k2→a (3); Ein: k1→b (1), k2→b (1).
	// Aᵀ·B under +.*: A(a,b) = 2·1 + 3·1 = 5.
	eout := NewStore(Options{})
	eout.Put("k1", "a", "2")
	eout.Put("k2", "a", "3")
	ein := NewStore(Options{})
	ein.Put("k1", "b", "1")
	ein.Put("k2", "b", "1")
	got, err := AdjacencyFromTables(eout, ein, semiring.PlusTimes(), floatCodec())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.At("a", "b"); !ok || v != 5 {
		t.Errorf("A(a,b) = %v,%v; want 5", v, ok)
	}
}

func TestTableMultParseErrors(t *testing.T) {
	eout := NewStore(Options{})
	eout.Put("k", "a", "bad")
	ein := NewStore(Options{})
	ein.Put("k", "b", "1")
	if _, err := AdjacencyFromTables(eout, ein, semiring.PlusTimes(), floatCodec()); err == nil {
		t.Error("bad A value accepted")
	}
	eout2 := NewStore(Options{})
	eout2.Put("k", "a", "1")
	ein2 := NewStore(Options{})
	ein2.Put("k", "b", "bad")
	if _, err := AdjacencyFromTables(eout2, ein2, semiring.PlusTimes(), floatCodec()); err == nil {
		t.Error("bad B value accepted")
	}
}

func TestTableMultSuppressesZeroFolds(t *testing.T) {
	// Signed cancellation: 5 + (-5) = 0 must be suppressed.
	eout := NewStore(Options{})
	eout.Put("k1", "a", "5")
	eout.Put("k2", "a", "-5")
	ein := NewStore(Options{})
	ein.Put("k1", "b", "1")
	ein.Put("k2", "b", "1")
	got, err := AdjacencyFromTables(eout, ein, semiring.PlusTimes(), floatCodec())
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Errorf("cancelled entry written: %v", got.Triples())
	}
}

// The tstore pipeline must agree exactly with the in-memory CSR pipeline
// on every generator family and operator pair — the server-side multiply
// is just another kernel for the same Definition I.3 product.
func TestTableMultMatchesCSRKernels(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	graphs := []*graph.Graph{
		dataset.ErdosRenyi(r, 20, 0.1),
		dataset.Bipartite(r, 10, 8, 45),
		dataset.MultiEdge(r, 6, 20, 3),
	}
	for gi, g := range graphs {
		one := func(graph.Edge) float64 { return 1 }
		for _, ops := range semiring.Figure3Pairs() {
			want, eout, ein, err := graph.BuildAdjacency(g, ops, graph.Weights[float64]{Out: one, In: one}, assoc.MulOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sOut := FromArray(eout, value.FormatFloat, Options{MemLimit: 16})
			sIn := FromArray(ein, value.FormatFloat, Options{MemLimit: 16})
			got, err := AdjacencyFromTables(sOut, sIn, ops, floatCodec())
			if err != nil {
				t.Fatal(err)
			}
			// ToArray derives key sets from stored triples; align with want.
			aligned, err := got.Reindex(want.RowKeys(), want.ColKeys())
			if err != nil {
				t.Fatalf("graph %d %s: result keys not subset: %v", gi, ops.Name, err)
			}
			if !want.Equal(aligned, eqF) {
				t.Errorf("graph %d under %s: tstore result differs from CSR", gi, ops.Name)
			}
		}
	}
}

// Non-commutative ⊕ exercises the ascending-shared-key fold order of the
// streaming multiply.
func TestTableMultNonCommutativeFoldOrder(t *testing.T) {
	eout := NewStore(Options{})
	eout.Put("k1", "a", "3")
	eout.Put("k2", "a", "4")
	ein := NewStore(Options{})
	ein.Put("k1", "b", "1")
	ein.Put("k2", "b", "1")
	got, err := AdjacencyFromTables(eout, ein, semiring.LeftmostNonzero(), floatCodec())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.At("a", "b"); v != 3 {
		t.Errorf("fold order violated: %v, want 3 (k1 first)", v)
	}
}

func TestTableMultMusicFigure3(t *testing.T) {
	// The full Figure 3 +.* panel computed server-side.
	e1, e2 := dataset.MusicE1E2()
	s1 := FromArray(e1, value.FormatFloat, Options{})
	s2 := FromArray(e2, value.FormatFloat, Options{})
	got, err := AdjacencyFromTables(s1, s2, semiring.PlusTimes(), floatCodec())
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Figure3Expected()["+.*"]
	if !got.Equal(want, eqF) {
		t.Errorf("server-side Figure 3 +.* mismatch:\n%s", assoc.Format(got, value.FormatFloat))
	}
}
