package tstore

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func collect(it *Iterator) []Entry {
	var out []Entry
	for {
		e, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestPutGet(t *testing.T) {
	s := NewStore(Options{})
	s.Put("r1", "c1", "a")
	s.Put("r1", "c2", "b")
	if v, ok := s.Get("r1", "c1"); !ok || v != "a" {
		t.Errorf("Get = %q,%v", v, ok)
	}
	if _, ok := s.Get("r1", "zz"); ok {
		t.Error("missing key found")
	}
	s.Put("r1", "c1", "a2") // overwrite
	if v, _ := s.Get("r1", "c1"); v != "a2" {
		t.Error("overwrite not visible")
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := NewStore(Options{})
	s.Put("r", "c", "v")
	s.Delete("r", "c")
	if _, ok := s.Get("r", "c"); ok {
		t.Error("deleted entry still visible")
	}
	if n := s.Len(); n != 0 {
		t.Errorf("Len after delete = %d", n)
	}
	// Delete survives flush and compaction.
	s.Put("r2", "c", "v")
	s.Flush()
	s.Delete("r2", "c")
	s.Compact()
	if _, ok := s.Get("r2", "c"); ok {
		t.Error("delete lost in compaction")
	}
}

func TestScanOrderAcrossRunsAndMem(t *testing.T) {
	s := NewStore(Options{MemLimit: 4})
	// Interleave writes so entries scatter across runs and memtable.
	keys := []string{"d", "a", "c", "e", "b", "f", "aa"}
	for i, k := range keys {
		s.Put(k, "col", fmt.Sprintf("v%d", i))
	}
	got := collect(s.Scan(ScanRange{}))
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d entries, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Row >= got[i].Row {
			t.Fatalf("scan out of order: %q then %q", got[i-1].Row, got[i].Row)
		}
	}
}

func TestScanRangeBounds(t *testing.T) {
	s := NewStore(Options{})
	for _, r := range []string{"a", "b", "c", "d"} {
		s.Put(r, "c", "v")
	}
	got := collect(s.Scan(ScanRange{StartRow: "b", EndRow: "d"}))
	if len(got) != 2 || got[0].Row != "b" || got[1].Row != "c" {
		t.Errorf("range scan = %v", got)
	}
	all := collect(s.Scan(ScanRange{}))
	if len(all) != 4 {
		t.Errorf("unbounded scan = %d entries", len(all))
	}
}

func TestScanPrefix(t *testing.T) {
	s := NewStore(Options{})
	s.Put("edge|1", "a", "1")
	s.Put("edge|2", "b", "1")
	s.Put("vert|1", "c", "1")
	got := collect(s.Scan(ScanRange{RowPrefix: "edge|"}))
	if len(got) != 2 {
		t.Errorf("prefix scan = %v", got)
	}
	rows := s.RowsWithPrefix("edge|")
	if len(rows) != 2 || rows[0] != "edge|1" || rows[1] != "edge|2" {
		t.Errorf("RowsWithPrefix = %v", rows)
	}
}

func TestNewestWriteWinsAcrossRuns(t *testing.T) {
	s := NewStore(Options{MemLimit: 2})
	s.Put("k", "c", "old")
	s.Put("x", "c", "pad") // force flush with MemLimit 2
	s.Put("k", "c", "new")
	s.Put("y", "c", "pad2")
	if v, _ := s.Get("k", "c"); v != "new" {
		t.Errorf("Get = %q, want new", v)
	}
	got := collect(s.Scan(ScanRange{StartRow: "k", EndRow: "k\x00"}))
	if len(got) != 1 || got[0].Val != "new" {
		t.Errorf("scan sees %v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore(Options{})
	s.Put("a", "c", "1")
	it := s.Scan(ScanRange{})
	s.Put("b", "c", "2") // after snapshot
	got := collect(it)
	if len(got) != 1 {
		t.Errorf("iterator saw post-snapshot write: %v", got)
	}
}

func TestCompactShrinksRuns(t *testing.T) {
	s := NewStore(Options{MemLimit: 2, MaxRuns: 2})
	for i := 0; i < 40; i++ {
		s.Put(fmt.Sprintf("r%02d", i%10), "c", fmt.Sprintf("v%d", i))
	}
	s.Compact()
	if !strings.Contains(s.String(), "runs=1") && !strings.Contains(s.String(), "runs=0") {
		t.Errorf("compaction left %s", s.String())
	}
	if n := s.Len(); n != 10 {
		t.Errorf("Len = %d, want 10 distinct keys", n)
	}
}

func TestBatchWriter(t *testing.T) {
	s := NewStore(Options{})
	w := s.NewBatchWriter(3)
	for i := 0; i < 10; i++ {
		w.Put(fmt.Sprintf("r%d", i), "c", "v")
	}
	w.Flush()
	if n := s.Len(); n != 10 {
		t.Errorf("Len = %d", n)
	}
	// Flush of empty buffer is a no-op.
	w.Flush()
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := NewStore(Options{MemLimit: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				s.Put(fmt.Sprintf("r%03d", r.Intn(100)), fmt.Sprintf("c%d", w), "v")
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				es := collect(s.Scan(ScanRange{}))
				for j := 1; j < len(es); j++ {
					if entryLess(es[j], es[j-1]) {
						t.Error("concurrent scan out of order")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := s.Len(); n > 400 {
		t.Errorf("more live entries than distinct keys: %d", n)
	}
}

func TestScanEmptyStore(t *testing.T) {
	s := NewStore(Options{})
	if got := collect(s.Scan(ScanRange{})); len(got) != 0 {
		t.Errorf("empty store scan = %v", got)
	}
	s.Compact() // compacting empty store must not panic
}

func TestPrefixEnd(t *testing.T) {
	if prefixEnd("ab") != "ac" {
		t.Error("prefixEnd(ab)")
	}
	if prefixEnd("\xff") != "" {
		t.Error("prefixEnd(0xff) should be unbounded")
	}
}
