package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"adjarray/internal/core"
)

// A saturated algorithm pool must shed with 429 + Retry-After while
// read and control endpoints keep answering; releasing the worker slot
// restores service. Deterministic: the test occupies the single worker
// slot directly.
func TestSaturatedPoolSheds429(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	seedEdges(t, ing, [2]string{"a", "b"})
	s := New(ing, Options{AlgoWorkers: -1, AlgoQueue: -1, RetryAfter: 2500 * time.Millisecond}) // 1 worker, no queue

	// Occupy the only algo worker slot, as a stuck in-flight request would.
	s.algoPool.slots <- struct{}{}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/bfs?src=a", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("/bfs under saturation = %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	if ra != 3 {
		t.Fatalf("Retry-After = %d, want 3 (2.5s rounded up)", ra)
	}
	if !strings.Contains(rec.Body.String(), "algo pool saturated") {
		t.Fatalf("shed body = %q", rec.Body.String())
	}
	if s.algoPool.shed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.algoPool.shed.Value())
	}

	// The read pool and the control plane are independent of the stuck
	// algorithm class: an operator can still see what is happening.
	if code, _ := get(t, s, "/at?src=a&dst=b"); code != 200 {
		t.Fatalf("/at while algo saturated = %d, want 200", code)
	}
	for _, path := range []string{"/stats", "/healthz", "/metrics"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s while algo saturated = %d, want 200", path, rec.Code)
		}
	}

	// Shed responses are visible in the exposition.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `adjserve_admission_shed_total{class="algo"} 1`) {
		t.Fatal("/metrics does not report the shed request")
	}

	// Release the slot: service resumes.
	<-s.algoPool.slots
	if code, _ := get(t, s, "/bfs?src=a"); code != 200 {
		t.Fatalf("/bfs after release = %d, want 200", code)
	}
}

// With a queue, requests beyond workers+queue shed and the rest drain
// once slots free up.
func TestQueueAdmitsUpToDepth(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	seedEdges(t, ing, [2]string{"a", "b"})
	s := New(ing, Options{AlgoWorkers: -1, AlgoQueue: 2})

	s.algoPool.slots <- struct{}{} // saturate the worker

	// Two requests may wait; the third over the line sheds immediately.
	started := make(chan struct{}, 2)
	finished := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			started <- struct{}{}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("GET", "/bfs?src=a", nil))
			finished <- rec.Code
		}()
	}
	<-started
	<-started
	// Wait until both goroutines are counted as queued.
	for s.algoPool.waiting.Load() != 2 {
		runtime.Gosched()
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/bfs?src=a", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request beyond queue depth = %d, want 429", rec.Code)
	}

	<-s.algoPool.slots // free the worker; the queued pair drains
	if a, b := <-finished, <-finished; a != 200 || b != 200 {
		t.Fatalf("queued requests finished %d, %d; want 200, 200", a, b)
	}
}

// Burst safety under -race: many concurrent expensive requests against
// a one-worker, no-queue pool. Every request must be answered 200 or
// 429 — never hang, never panic — and the pool must be fully released
// afterwards.
func TestBurstIsBoundedAndRecovers(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	seedEdges(t, ing, [2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"})
	s := New(ing, Options{AlgoWorkers: -1, AlgoQueue: -1})

	const burst = 32
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("GET", "/pagerank?iters=50", nil))
			codes <- rec.Code
		}()
	}
	close(start)
	wg.Wait()
	close(codes)

	ok, shed := 0, 0
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("burst request answered %d", code)
		}
	}
	if ok+shed != burst {
		t.Fatalf("answered %d+%d of %d", ok, shed, burst)
	}
	if ok == 0 {
		t.Fatal("every request shed; at least the slot holder should finish")
	}
	if len(s.algoPool.slots) != 0 || s.algoPool.waiting.Load() != 0 {
		t.Fatalf("pool not drained: %d busy, %d waiting", len(s.algoPool.slots), s.algoPool.waiting.Load())
	}
	// And the server still works.
	if code, _ := get(t, s, "/bfs?src=a"); code != 200 {
		t.Fatalf("post-burst /bfs = %d", code)
	}
}
