// Package serve is adjserve's production front door: the HTTP layer
// that answers adjacency and graph-algorithm queries from live
// snapshots of a core.Ingest. It was extracted from cmd/adjserve once
// the serving path grew the concerns a front door needs beyond routing:
//
//   - Observability: a Prometheus-style GET /metrics (internal/obs)
//     exposing ingest counters, per-shard epochs and WAL lag, snapshot
//     epoch age, graph-cache hit/rebuild counts, admission-control
//     queue depths, and per-endpoint latency histograms.
//   - Admission control: two bounded worker pools — cheap point reads
//     (/at, /row, /triples) and expensive algorithm queries (/bfs,
//     /sssp, /widest, /pagerank, /triangles, /batch) — with queue-depth
//     limits that shed excess load as 429 + Retry-After instead of
//     letting a burst pile up goroutines.
//   - Batched queries: POST /batch executes many ops against ONE
//     pinned snapshot and one cached Graph, amortizing the epoch-vector
//     gather and the id-space embedding across the whole request.
//   - Degraded-mode serving: POST /ingest appends edges over HTTP;
//     when a storage fault wedges the durable store read-only the
//     ingest path sheds 503 + Retry-After while every read endpoint
//     keeps answering from the last good snapshot. /healthz reports the
//     ok → degraded → read-only state machine and /metrics exposes it
//     as adjserve_storage_state / adjserve_storage_faults_total.
//
// Every response carries the epoch vector its snapshot was pinned at,
// so clients can order reads across shards.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"time"

	"adjarray/internal/algo"
	"adjarray/internal/assoc"
	"adjarray/internal/core"
	"adjarray/internal/keys"
	"adjarray/internal/obs"
	"adjarray/internal/value"
)

// Options tunes the front door. The zero value selects production
// defaults (see withDefaults); a negative pool size or queue depth
// selects the smallest legal value, not unlimited.
type Options struct {
	// TriplesDefault is the /triples row budget when the client sends
	// no ?limit (default 10000).
	TriplesDefault int
	// TriplesMax clamps client-supplied ?limit values (default 100000):
	// one client must not be able to ask the process to serialize an
	// arbitrarily large response.
	TriplesMax int
	// MaxIters bounds /pagerank ?iters (default 1000) so a single
	// query cannot burn an unbounded iteration budget.
	MaxIters int
	// MaxBatchOps bounds ops per POST /batch request (default 256).
	MaxBatchOps int
	// MaxIngestEdges bounds edges per POST /ingest request (default
	// 10000): one append batch is applied atomically under the view
	// lock, so its size is a latency bound on every concurrent reader.
	MaxIngestEdges int
	// ReadWorkers and ReadQueue bound the cheap-read pool: concurrent
	// /at, /row, /triples executions and how many may wait (defaults
	// 64 and 256).
	ReadWorkers, ReadQueue int
	// AlgoWorkers and AlgoQueue bound the algorithm pool: concurrent
	// /bfs, /sssp, /widest, /pagerank, /triangles, /batch executions
	// and how many may wait (defaults GOMAXPROCS and 4×workers).
	AlgoWorkers, AlgoQueue int
	// RetryAfter is the hint returned with shed (429) responses
	// (default 1s).
	RetryAfter time.Duration
	// Registry receives the server's metrics; nil creates a private
	// registry (exposed either way on GET /metrics).
	Registry *Registry
}

// Registry aliases the obs registry so callers of serve need not
// import internal/obs for the common case.
type Registry = obs.Registry

func (o Options) withDefaults() Options {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 1
		}
	}
	def(&o.TriplesDefault, 10000)
	def(&o.TriplesMax, 100000)
	def(&o.MaxIters, 1000)
	def(&o.MaxBatchOps, 256)
	def(&o.MaxIngestEdges, 10000)
	def(&o.ReadWorkers, 64)
	def(&o.AlgoWorkers, runtime.GOMAXPROCS(0))
	if o.ReadQueue == 0 {
		o.ReadQueue = 256
	} else if o.ReadQueue < 0 {
		o.ReadQueue = 0 // no waiting: shed as soon as every worker is busy
	}
	if o.AlgoQueue == 0 {
		o.AlgoQueue = 4 * o.AlgoWorkers
	} else if o.AlgoQueue < 0 {
		o.AlgoQueue = 0
	}
	if o.TriplesDefault > o.TriplesMax {
		o.TriplesDefault = o.TriplesMax
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server is the HTTP front door over one ingest. Construct with New;
// Server implements http.Handler.
type Server struct {
	ing      *core.Ingest
	opt      Options
	mux      *http.ServeMux
	cache    *graphCache
	met      *metrics
	readPool *pool
	algoPool *pool
	buffers  sync.Pool // *bytes.Buffer for single-write JSON responses
}

// New builds the front door over ing.
func New(ing *core.Ingest, opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		ing: ing,
		opt: opt,
		mux: http.NewServeMux(),
	}
	s.buffers.New = func() any { return new(bytes.Buffer) }
	s.met = newMetrics(opt.Registry, ing)
	s.cache = &graphCache{met: s.met}
	s.readPool = newPool("read", opt.ReadWorkers, opt.ReadQueue, opt.RetryAfter, s.met)
	s.algoPool = newPool("algo", opt.AlgoWorkers, opt.AlgoQueue, opt.RetryAfter, s.met)
	s.routes()
	return s
}

// ServeHTTP dispatches to the instrumented mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns the registry backing GET /metrics, for callers that
// want to add their own series (the ingest front, tests).
func (s *Server) Metrics() *Registry { return s.met.reg }

// routes wires every endpoint through the metrics middleware and, for
// snapshot/algorithm queries, the matching admission pool. /stats,
// /healthz and /metrics bypass admission: an operator must be able to
// observe an overloaded process.
func (s *Server) routes() {
	handle := func(path string, p *pool, h http.HandlerFunc) {
		var inner http.Handler = h
		if p != nil {
			inner = p.admit(inner)
		}
		s.mux.Handle(path, s.met.instrument(path, inner))
	}
	handle("/stats", nil, s.handleStats)
	handle("/healthz", nil, s.handleHealthz)
	handle("/metrics", nil, s.met.reg.Handler().ServeHTTP)
	// /ingest bypasses the read/algo pools — its backpressure is the
	// storage state machine (503 on read-only), not queue depth.
	handle("/ingest", nil, s.handleIngest)
	handle("/at", s.readPool, s.handleAt)
	handle("/row", s.readPool, s.handleRow)
	handle("/triples", s.readPool, s.handleTriples)
	handle("/bfs", s.algoPool, s.sourceQuery(func(g *algo.Graph, src string) (any, error) {
		return g.BFSLevels(src)
	}))
	handle("/sssp", s.algoPool, s.sourceQuery(func(g *algo.Graph, src string) (any, error) {
		dist, err := g.SSSP(src)
		if err != nil {
			return nil, err
		}
		return safeFloatMap(dist), nil
	}))
	handle("/widest", s.algoPool, s.sourceQuery(func(g *algo.Graph, src string) (any, error) {
		width, err := g.WidestPath(src)
		if err != nil {
			return nil, err
		}
		return safeFloatMap(width), nil
	}))
	handle("/triangles", s.algoPool, func(w http.ResponseWriter, r *http.Request) {
		s.algoQuery(w, func(g *algo.Graph) (any, error) { return g.TriangleCount() })
	})
	handle("/pagerank", s.algoPool, s.handlePageRank)
	handle("/batch", s.algoPool, s.handleBatch)
}

// writeJSON encodes v into a pooled buffer and writes the response in
// one shot with an explicit Content-Length. Encoding into the buffer
// first means an encode failure still has the full status line
// available — the old streaming encoder could fail after headers and
// half the body were on the wire, and its follow-up http.Error then
// corrupted the response with a "superfluous WriteHeader" on top of
// broken JSON. A failed network write is the client's disconnect; it
// is counted, not retried.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	buf := s.buffers.Get().(*bytes.Buffer)
	buf.Reset()
	defer s.buffers.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		s.met.encodeErrors.Inc()
		http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.met.writeErrors.Inc()
	}
}

// safeFloat renders ±Inf/NaN with the library's FormatFloat convention;
// JSON has no encoding for them but the tropical algebras store them as
// ordinary values (an unweighted max.min edge is width +Inf).
func safeFloat(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return value.FormatFloat(v)
	}
	return v
}

func safeFloatMap(m map[string]float64) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = safeFloat(v)
	}
	return out
}

// takeSnapshot pins one consistent read: the adjacency plus the epoch
// vector it was pinned at. A single view reports a one-element vector;
// a sharded view gathers the per-shard adjacencies (cached per vector,
// so repeated queries between appends share one merge).
func (s *Server) takeSnapshot() (*assoc.Array[float64], []int, bool, error) {
	adj, epochs, exact, err := takeSnapshot(s.ing)
	if err == nil {
		s.met.observeEpochs(epochs)
	}
	return adj, epochs, exact, err
}

func takeSnapshot(ing *core.Ingest) (*assoc.Array[float64], []int, bool, error) {
	if sv := ing.Sharded(); sv != nil {
		ss, err := sv.Snapshot()
		if err != nil {
			return nil, nil, false, err
		}
		adj, err := ss.Adjacency()
		if err != nil {
			return nil, nil, false, err
		}
		return adj, ss.Epochs, ss.Exact, nil
	}
	snap, err := ing.View().Snapshot()
	if err != nil {
		return nil, nil, false, err
	}
	return snap.Adjacency, []int{snap.Epoch}, snap.Exact, nil
}

// snapshot is takeSnapshot with the HTTP error path folded in.
func (s *Server) snapshot(w http.ResponseWriter) (*assoc.Array[float64], []int, bool, bool) {
	adj, epochs, exact, err := s.takeSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return nil, nil, false, false
	}
	return adj, epochs, exact, true
}

// epochFields stamps a response with its consistency token: the pinned
// epoch vector plus the scalar sum (a single scalar for clients that
// only order responses; the vector is the token queries were answered
// at — every field of one response reflects shard i at exactly
// epochs[i]).
func epochFields(m map[string]any, epochs []int) map[string]any {
	sum := 0
	for _, e := range epochs {
		sum += e
	}
	m["epoch"] = sum
	m["epochs"] = epochs
	return m
}

// ---- graph cache ----

// graphCache memoizes the CSR-native algo.Graph per snapshot epoch
// vector: algorithm queries between ingest batches reuse one id-space
// embedding (and its lazily built transpose) instead of rebuilding per
// request.
//
// Snapshots are taken OUTSIDE the cache lock, so two concurrent
// requests can pin different epochs and reach graphFor in either
// order. The cache therefore only replaces its entry when the incoming
// vector is strictly newer (element-wise ≥ with some >): a request
// that pinned an older snapshot around an ingest batch gets a Graph
// for its own epochs but must not overwrite the newer cached one —
// the stale-overwrite would thrash the cache backwards under load.
type graphCache struct {
	mu     sync.Mutex
	epochs []int
	g      *algo.Graph
	met    *metrics
}

// graphFor returns a Graph for the pinned snapshot (adj at epochs),
// cached when the vector is current or newer than the cached one.
func (c *graphCache) graphFor(adj *assoc.Array[float64], epochs []int) (*algo.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g != nil && slices.Equal(c.epochs, epochs) {
		c.met.cacheHits.Inc()
		return c.g, nil
	}
	g, err := algo.FromArray(adj)
	if err != nil {
		return nil, err
	}
	if c.g == nil || newerEpochs(epochs, c.epochs) {
		c.g, c.epochs = g, slices.Clone(epochs)
		c.met.cacheRebuilds.Inc()
	} else {
		// Pinned-but-older (or incomparable) snapshot: serve it without
		// caching; the cache keeps the newer graph.
		c.met.cacheStale.Inc()
	}
	return g, nil
}

// newerEpochs reports whether a is element-wise ≥ b with at least one
// component strictly greater. Vectors of different lengths (a shard
// count change across a restart) count as newer.
func newerEpochs(a, b []int) bool {
	if len(a) != len(b) {
		return true
	}
	some := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			some = true
		}
	}
	return some
}

// ---- handlers ----

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if sv := s.ing.Sharded(); sv != nil {
		s.writeJSON(w, sv.Stats())
		return
	}
	s.writeJSON(w, s.ing.View().Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// "ok" is liveness — the process answers — and stays true in
	// degraded and read-only modes: a read-only store still serves every
	// read endpoint, so an orchestrator must not kill the process over
	// it. The storage fields carry the ok → degraded → read-only state
	// machine for alerting.
	resp := map[string]any{"ok": true, "durable": false}
	agg, per := s.ing.StorageHealth()
	resp["storage"] = agg.State.String()
	if agg.Faults > 0 {
		resp["storage_faults"] = agg.Faults
	}
	if agg.Err != "" {
		resp["storage_error"] = agg.Err
	}
	if len(per) > 0 {
		states := make([]string, len(per))
		for i, h := range per {
			states[i] = h.State.String()
		}
		resp["storage_shards"] = states
	}
	if sv := s.ing.Sharded(); sv != nil {
		resp["shards"] = sv.Shards()
		if durs := sv.Durability(); durs != nil {
			epochs := make([]uint64, len(durs))
			durable := make([]uint64, len(durs))
			lag := uint64(0)
			for i, st := range durs {
				epochs[i] = st.Epoch
				durable[i] = st.DurableEpoch
				lag += st.WALLag
			}
			resp["durable"] = true
			resp["epochs"] = epochs
			resp["durable_epochs"] = durable
			resp["wal_lag"] = lag // batches across all shards a crash right now would lose
			resp["fsync_policy"] = durs[0].Policy
		}
	} else if d := s.ing.Durable(); d != nil {
		st := d.Durability()
		resp["durable"] = true
		resp["epoch"] = st.Epoch
		resp["durable_epoch"] = st.DurableEpoch // last batch on stable storage (fsync or checkpoint)
		resp["wal_lag"] = st.WALLag
		resp["checkpoint_seq"] = st.CheckpointSeq
		resp["fsync_policy"] = st.Policy
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleAt(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		http.Error(w, "want ?src=...&dst=...", http.StatusBadRequest)
		return
	}
	adj, epochs, _, ok := s.snapshot(w)
	if !ok {
		return
	}
	val, stored := adj.At(src, dst)
	s.writeJSON(w, epochFields(map[string]any{"src": src, "dst": dst, "value": safeFloat(val), "stored": stored}, epochs))
}

func (s *Server) handleRow(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("src")
	if src == "" {
		http.Error(w, "want ?src=...", http.StatusBadRequest)
		return
	}
	adj, epochs, _, ok := s.snapshot(w)
	if !ok {
		return
	}
	s.writeJSON(w, epochFields(map[string]any{"src": src, "row": rowEntries(adj, src)}, epochs))
}

func rowEntries(adj *assoc.Array[float64], src string) map[string]any {
	row := map[string]any{}
	adj.SubRef(keys.Range{Lo: src, Hi: src}, nil).Iterate(func(_, d string, v float64) {
		row[d] = safeFloat(v)
	})
	return row
}

func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request) {
	limit := s.opt.TriplesDefault
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
			return
		}
		// Clamp, don't reject: the server maximum is a protection
		// bound, and the response says how much was actually returned.
		limit = min(n, s.opt.TriplesMax)
	}
	adj, epochs, exact, ok := s.snapshot(w)
	if !ok {
		return
	}
	total := adj.NNZ()
	// IterateUntil stops at the limit, so ?limit=1 on a large graph is
	// O(1) per request, not an O(nnz) sweep; memory is O(limit) too.
	rows := make([]map[string]any, 0, min(limit, total))
	adj.IterateUntil(func(rk, ck string, v float64) bool {
		rows = append(rows, map[string]any{"row": rk, "col": ck, "val": safeFloat(v)})
		return len(rows) < limit
	})
	s.writeJSON(w, epochFields(map[string]any{
		"triples": rows, "total": total, "limit": limit,
		"truncated": total > len(rows), "exact": exact,
	}, epochs))
}

// algoQuery runs compute against the per-epoch-vector cached Graph. A
// source that is not a vertex is the client's error (404); an
// algorithm refusing the instance (asymmetric triangles, no fixpoint)
// is 422.
func (s *Server) algoQuery(w http.ResponseWriter, compute func(g *algo.Graph) (any, error)) {
	adj, epochs, exact, ok := s.snapshot(w)
	if !ok {
		return
	}
	g, err := s.cache.graphFor(adj, epochs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	res, err := compute(g)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, algo.ErrNotVertex) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	s.writeJSON(w, epochFields(map[string]any{"result": res, "exact": exact}, epochs))
}

func (s *Server) sourceQuery(run func(g *algo.Graph, src string) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		src := r.URL.Query().Get("src")
		if src == "" {
			http.Error(w, "want ?src=...", http.StatusBadRequest)
			return
		}
		s.algoQuery(w, func(g *algo.Graph) (any, error) { return run(g, src) })
	}
}

// pageRankParams validates the iteration's domain: damping ∈ (0, 1)
// — the algorithm's own domain — (1.5 or −0.2 parse fine but drive the
// power iteration to NaN or divergence, burning the full budget),
// tol > 0, and iters within the server bound.
func (s *Server) pageRankParams(damping, tol float64, iters int) error {
	if !(damping > 0 && damping < 1) { // the negated form also rejects NaN
		return fmt.Errorf("damping must satisfy 0 < damping < 1, got %v", damping)
	}
	if !(tol > 0) {
		return fmt.Errorf("tol must be positive, got %v", tol)
	}
	if iters <= 0 {
		return fmt.Errorf("iters must be positive, got %d", iters)
	}
	if iters > s.opt.MaxIters {
		return fmt.Errorf("iters %d exceeds the server maximum %d", iters, s.opt.MaxIters)
	}
	return nil
}

func (s *Server) handlePageRank(w http.ResponseWriter, r *http.Request) {
	damping, tol, iters := 0.85, 1e-9, 100
	q := r.URL.Query()
	var err error
	if v := q.Get("damping"); v != "" {
		if damping, err = strconv.ParseFloat(v, 64); err != nil {
			http.Error(w, "bad damping", http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("tol"); v != "" {
		if tol, err = strconv.ParseFloat(v, 64); err != nil {
			http.Error(w, "bad tol", http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("iters"); v != "" {
		if iters, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad iters", http.StatusBadRequest)
			return
		}
	}
	if err := s.pageRankParams(damping, tol, iters); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.algoQuery(w, func(g *algo.Graph) (any, error) {
		rank, used, err := g.PageRank(damping, tol, iters)
		if err != nil {
			return nil, err
		}
		return map[string]any{"rank": rank, "iterations": used}, nil
	})
}
