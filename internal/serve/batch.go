package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"adjarray/internal/algo"
	"adjarray/internal/assoc"
)

// batchOp is one operation inside a POST /batch request.
type batchOp struct {
	Op  string `json:"op"`            // at | row | bfs | sssp | widest | pagerank | triangles
	Src string `json:"src,omitempty"` // at, row, bfs, sssp, widest
	Dst string `json:"dst,omitempty"` // at

	// PageRank parameters; omitted fields take the endpoint defaults.
	Damping *float64 `json:"damping,omitempty"`
	Tol     *float64 `json:"tol,omitempty"`
	Iters   *int     `json:"iters,omitempty"`
}

type batchRequest struct {
	Ops []batchOp `json:"ops"`
}

// maxBatchBody bounds the request body; 256 ops of point reads fit in
// a few KB, so 1 MiB is generous without letting one client stage an
// arbitrarily large allocation.
const maxBatchBody = 1 << 20

// handleBatch executes many query ops against ONE pinned snapshot —
// the epoch-vector gather, the graph-cache lookup, and (for sharded
// views) the ⊕-merge are paid once per request instead of once per
// op. Per-op failures are reported inline (an unknown vertex in op 3
// must not void the other 99 answers); request-level failures (bad
// JSON, too many ops) fail the whole request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSON body: {\"ops\":[{\"op\":\"at\",...},...]}", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "batch has no ops", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > s.opt.MaxBatchOps {
		http.Error(w, fmt.Sprintf("batch of %d ops exceeds the server maximum %d", len(req.Ops), s.opt.MaxBatchOps), http.StatusBadRequest)
		return
	}

	adj, epochs, exact, ok := s.snapshot(w)
	if !ok {
		return
	}
	// The Graph is built (or fetched from the cache) at most once per
	// batch, and only when an algorithm op actually needs it.
	var g *algo.Graph
	graph := func() (*algo.Graph, error) {
		if g != nil {
			return g, nil
		}
		var err error
		g, err = s.cache.graphFor(adj, epochs)
		return g, err
	}

	results := make([]map[string]any, len(req.Ops))
	for i, op := range req.Ops {
		res, err := s.execOp(op, adj, graph)
		if err != nil {
			results[i] = map[string]any{"op": op.Op, "error": err.Error(), "status": opStatus(err)}
			continue
		}
		res["op"] = op.Op
		results[i] = res
	}
	s.writeJSON(w, epochFields(map[string]any{
		"results": results, "count": len(results), "exact": exact,
	}, epochs))
}

// errBadOp marks client-side op validation failures (400, not 422).
var errBadOp = errors.New("bad op")

func badOp(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadOp, fmt.Sprintf(format, args...))
}

func opStatus(err error) int {
	switch {
	case errors.Is(err, errBadOp):
		return http.StatusBadRequest
	case errors.Is(err, algo.ErrNotVertex):
		return http.StatusNotFound
	default:
		return http.StatusUnprocessableEntity
	}
}

// execOp answers one batch op from the shared pinned snapshot.
func (s *Server) execOp(op batchOp, adj *assoc.Array[float64], graph func() (*algo.Graph, error)) (map[string]any, error) {
	switch op.Op {
	case "at":
		if op.Src == "" || op.Dst == "" {
			return nil, badOp("at wants src and dst")
		}
		val, stored := adj.At(op.Src, op.Dst)
		return map[string]any{"src": op.Src, "dst": op.Dst, "value": safeFloat(val), "stored": stored}, nil
	case "row":
		if op.Src == "" {
			return nil, badOp("row wants src")
		}
		return map[string]any{"src": op.Src, "row": rowEntries(adj, op.Src)}, nil
	case "bfs":
		if op.Src == "" {
			return nil, badOp("bfs wants src")
		}
		g, err := graph()
		if err != nil {
			return nil, err
		}
		levels, err := g.BFSLevels(op.Src)
		if err != nil {
			return nil, err
		}
		return map[string]any{"result": levels}, nil
	case "sssp":
		if op.Src == "" {
			return nil, badOp("sssp wants src")
		}
		g, err := graph()
		if err != nil {
			return nil, err
		}
		dist, err := g.SSSP(op.Src)
		if err != nil {
			return nil, err
		}
		return map[string]any{"result": safeFloatMap(dist)}, nil
	case "widest":
		if op.Src == "" {
			return nil, badOp("widest wants src")
		}
		g, err := graph()
		if err != nil {
			return nil, err
		}
		width, err := g.WidestPath(op.Src)
		if err != nil {
			return nil, err
		}
		return map[string]any{"result": safeFloatMap(width)}, nil
	case "pagerank":
		damping, tol, iters := 0.85, 1e-9, 100
		if op.Damping != nil {
			damping = *op.Damping
		}
		if op.Tol != nil {
			tol = *op.Tol
		}
		if op.Iters != nil {
			iters = *op.Iters
		}
		if err := s.pageRankParams(damping, tol, iters); err != nil {
			return nil, badOp("%s", err)
		}
		g, err := graph()
		if err != nil {
			return nil, err
		}
		rank, used, err := g.PageRank(damping, tol, iters)
		if err != nil {
			return nil, err
		}
		return map[string]any{"result": map[string]any{"rank": rank, "iterations": used}}, nil
	case "triangles":
		g, err := graph()
		if err != nil {
			return nil, err
		}
		n, err := g.TriangleCount()
		if err != nil {
			return nil, err
		}
		return map[string]any{"result": n}, nil
	default:
		return nil, badOp("unknown op %q (want at, row, bfs, sssp, widest, pagerank, or triangles)", op.Op)
	}
}
