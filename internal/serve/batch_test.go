package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"adjarray/internal/core"
	"adjarray/internal/stream"
)

func postBatch(t *testing.T, s *Server, body string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("batch response is not JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec.Code, out
}

func TestBatchMixedOps(t *testing.T) {
	s, _ := triangleServer(t)
	code, out := postBatch(t, s, `{"ops":[
		{"op":"at","src":"a","dst":"b"},
		{"op":"row","src":"a"},
		{"op":"bfs","src":"a"},
		{"op":"pagerank","iters":50},
		{"op":"bfs","src":"nope"},
		{"op":"frobnicate"}
	]}`)
	if code != 200 {
		t.Fatalf("batch = %d", code)
	}
	results := out["results"].([]any)
	if len(results) != 6 || out["count"].(float64) != 6 {
		t.Fatalf("results = %v", out)
	}
	if r := results[0].(map[string]any); r["stored"] != true || r["value"].(float64) != 1 {
		t.Fatalf("at result = %v", r)
	}
	if r := results[1].(map[string]any); len(r["row"].(map[string]any)) != 2 {
		t.Fatalf("row result = %v", r)
	}
	if r := results[2].(map[string]any); r["result"].(map[string]any)["b"].(float64) != 1 {
		t.Fatalf("bfs result = %v", r)
	}
	if r := results[3].(map[string]any); r["result"].(map[string]any)["rank"] == nil {
		t.Fatalf("pagerank result = %v", r)
	}
	// Per-op failures are inline, tagged with the status the single-op
	// endpoint would have returned; they do not void the other answers.
	if r := results[4].(map[string]any); r["status"].(float64) != http.StatusNotFound {
		t.Fatalf("unknown-vertex op = %v, want inline 404", r)
	}
	if r := results[5].(map[string]any); r["status"].(float64) != http.StatusBadRequest ||
		!strings.Contains(r["error"].(string), "unknown op") {
		t.Fatalf("unknown op = %v, want inline 400", r)
	}
	// One pinned snapshot: the response-level epoch vector covers every op.
	if out["epochs"] == nil || out["epoch"] == nil {
		t.Fatalf("batch response missing epoch fields: %v", out)
	}
}

func TestBatchRequestValidation(t *testing.T) {
	s, _ := triangleServer(t)

	// Only POST.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "POST" {
		t.Fatalf("GET /batch = %d (Allow %q)", rec.Code, rec.Header().Get("Allow"))
	}

	for name, body := range map[string]string{
		"bad json":      `{"ops":[`,
		"unknown field": `{"ops":[],"nope":1}`,
		"no ops":        `{"ops":[]}`,
		"null ops":      `{}`,
	} {
		if code, _ := postBatch(t, s, body); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", name, code)
		}
	}

	// Over the op budget.
	small := New(s.ing, Options{MaxBatchOps: 2})
	if code, _ := postBatch(t, small, `{"ops":[{"op":"at","src":"a","dst":"b"},{"op":"at","src":"a","dst":"b"},{"op":"at","src":"a","dst":"b"}]}`); code != http.StatusBadRequest {
		t.Fatalf("over-budget batch = %d, want 400", code)
	}
	// Exactly the budget is fine.
	if code, _ := postBatch(t, small, `{"ops":[{"op":"at","src":"a","dst":"b"},{"op":"at","src":"a","dst":"b"}]}`); code != 200 {
		t.Fatalf("at-budget batch = %d, want 200", code)
	}

	// Missing required op arguments are inline 400s.
	code, out := postBatch(t, s, `{"ops":[{"op":"at","src":"a"},{"op":"row"},{"op":"bfs"}]}`)
	if code != 200 {
		t.Fatalf("batch = %d", code)
	}
	for i, r := range out["results"].([]any) {
		if r.(map[string]any)["status"].(float64) != http.StatusBadRequest {
			t.Errorf("op %d = %v, want inline 400", i, r)
		}
	}

	// PageRank overrides go through the same validation as /pagerank.
	code, out = postBatch(t, s, `{"ops":[{"op":"pagerank","damping":1.5}]}`)
	if code != 200 {
		t.Fatalf("batch = %d", code)
	}
	if r := out["results"].([]any)[0].(map[string]any); r["status"].(float64) != http.StatusBadRequest ||
		!strings.Contains(r["error"].(string), "damping") {
		t.Fatalf("bad damping op = %v, want inline 400", r)
	}
}

// The batch's reason to exist: every op in one request is answered from
// ONE pinned snapshot. While ingest keeps appending to an untouched
// part of the key space, the fixed chain v00→v01→v02 must look
// internally consistent within each response — the at/row/bfs answers
// may never mix epochs. Run under -race.
func TestBatchEpochConsistencyDuringIngest(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{BatchSize: 1})
	seedEdges(t, ing, [2]string{"v00", "v01"}, [2]string{"v01", "v02"})
	s := New(ing, Options{})

	body := `{"ops":[
		{"op":"at","src":"v00","dst":"v01"},
		{"op":"row","src":"v01"},
		{"op":"bfs","src":"v00"},
		{"op":"triangles"}
	]}`

	done := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastEpoch float64
			for {
				select {
				case <-done:
					return
				default:
				}
				code, out := postBatch(t, s, body)
				if code != 200 {
					panic(fmt.Sprintf("batch = %d", code))
				}
				results := out["results"].([]any)
				// Ops answered from the same snapshot: the chain edges are
				// immutable, so at/row/bfs must agree with each other in
				// every response regardless of the concurrent appends.
				if r := results[0].(map[string]any); r["stored"] != true {
					panic(fmt.Sprintf("at(v00,v01) lost its edge: %v", r))
				}
				if r := results[1].(map[string]any); r["row"].(map[string]any)["v02"] == nil {
					panic(fmt.Sprintf("row(v01) lost v02: %v", r))
				}
				if r := results[2].(map[string]any); r["result"].(map[string]any)["v02"].(float64) != 2 {
					panic(fmt.Sprintf("bfs(v00) level of v02 = %v, want 2", r))
				}
				// The response epoch vector only moves forward per reader.
				if e := out["epoch"].(float64); e < lastEpoch {
					panic(fmt.Sprintf("epoch went backwards: %v after %v", e, lastEpoch))
				} else {
					lastEpoch = e
				}
			}
		}()
	}

	// Concurrent ingest into w?? vertices — BatchSize 1 means every Add
	// advances the epoch, maximizing snapshot churn under the readers.
	for i := 0; i < 200; i++ {
		err := ing.Add(stream.Edge[float64]{
			Src: fmt.Sprintf("w%02d", i%13),
			Dst: fmt.Sprintf("w%02d", (i+5)%13),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	readers.Wait()
}
