package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adjarray/internal/core"
	"adjarray/internal/iofault"
	"adjarray/internal/stream"
	"adjarray/internal/wal"
)

func postIngest(t *testing.T, h http.Handler, body string) (int, http.Header, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	var resp map[string]any
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("POST /ingest: bad JSON: %v", err)
		}
	}
	return rec.Code, rec.Header(), resp
}

// TestIngestDegradedMode is the end-to-end degraded-mode contract: a
// storage fault wedges the durable store read-only, POST /ingest sheds
// 503 + Retry-After, every read endpoint keeps answering from the last
// good snapshot, and /healthz + /metrics report the state machine.
func TestIngestDegradedMode(t *testing.T) {
	inj := iofault.New()
	ing := newTestIngest(t, core.IngestOptions{
		DataDir: t.TempDir(),
		Durable: stream.DurableOptions[float64]{
			WAL: wal.Options{Policy: wal.SyncEveryAppend},
			FS:  iofault.Wrap(iofault.OS, inj),
		},
	})
	defer ing.Close() //adjlint:ignore syncerr the store is wedged by design; the shutdown error is the wedge

	s := New(ing, Options{})

	// Healthy path: append over HTTP, read it back.
	code, _, resp := postIngest(t, s, `{"edges":[{"src":"a","dst":"b"},{"src":"b","dst":"c"},{"src":"a","dst":"c","out":2,"in":3}]}`)
	if code != http.StatusOK || resp["appended"] != float64(3) {
		t.Fatalf("healthy ingest: code %d resp %v", code, resp)
	}
	if code, at := get(t, s, "/at?src=a&dst=c"); code != http.StatusOK || at["value"] != float64(6) {
		t.Fatalf("weighted read-back: code %d body %v", code, at)
	}
	if _, hz := get(t, s, "/healthz"); hz["storage"] != "ok" {
		t.Fatalf("healthy /healthz storage = %v, want ok", hz["storage"])
	}

	// One failed fsync on the WAL segment wedges the store.
	inj.Arm(iofault.Rule{Op: iofault.OpSync, Path: "wal-", Kind: iofault.EIO, Count: 1})
	code, hdr, _ := postIngest(t, s, `{"edges":[{"src":"c","dst":"d"}]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ingest over failed fsync: code %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 must carry a Retry-After hint")
	}

	// The fault budget is spent — the "disk" is healthy again — but the
	// wedge is sticky: ingest keeps shedding.
	if code, _, _ := postIngest(t, s, `{"edges":[{"src":"e","dst":"f"}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after wedge: code %d, want 503", code)
	}

	// Every read endpoint keeps serving. The wedging batch committed to
	// the in-memory view before its fsync failed (view-first append), so
	// c→d is visible; the post-wedge batch was refused outright, so e→f
	// is not.
	for _, path := range []string{"/at?src=a&dst=b", "/row?src=a", "/triples", "/bfs?src=a", "/stats"} {
		if code, _ := get(t, s, path); code != http.StatusOK {
			t.Fatalf("GET %s in read-only mode: code %d, want 200", path, code)
		}
	}
	if _, at := get(t, s, "/at?src=c&dst=d"); at["stored"] != true {
		t.Fatal("the wedging batch committed to the view; c→d must be visible")
	}
	if _, at := get(t, s, "/at?src=e&dst=f"); at["stored"] != false {
		t.Fatal("a post-wedge batch must not reach the view")
	}

	// /healthz stays ok (liveness) but reports the state machine.
	_, hz := get(t, s, "/healthz")
	if hz["ok"] != true {
		t.Fatalf("read-only mode must not fail liveness: %v", hz)
	}
	if hz["storage"] != "read-only" {
		t.Fatalf("/healthz storage = %v, want read-only", hz["storage"])
	}
	if f, ok := hz["storage_faults"].(float64); !ok || f < 1 {
		t.Fatalf("/healthz storage_faults = %v, want >= 1", hz["storage_faults"])
	}
	if hz["storage_error"] == "" {
		t.Fatal("/healthz must carry the storage error")
	}

	// /metrics exposes the gauge at 2 (read-only) and the shed counter.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	exposition := rec.Body.String()
	for _, want := range []string{
		"adjserve_storage_state 2",
		"adjserve_ingest_shed_readonly_total 2",
		"adjserve_storage_faults_total",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestIngestEndpointValidation covers the non-storage refusals: wrong
// method, empty and malformed bodies, oversized batches, missing
// endpoints — none of which may touch the view.
func TestIngestEndpointValidation(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	s := New(ing, Options{MaxIngestEdges: 2})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/ingest", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "POST" {
		t.Fatalf("GET /ingest: code %d Allow %q", rec.Code, rec.Header().Get("Allow"))
	}

	for body, want := range map[string]int{
		`{"edges":[]}`:            http.StatusBadRequest,
		`not json`:                http.StatusBadRequest,
		`{"edges":[{"src":"a"}]}`: http.StatusBadRequest,
		`{"edges":[{"src":"a","dst":"b"},{"src":"b","dst":"c"},{"src":"c","dst":"d"}]}`: http.StatusRequestEntityTooLarge,
	} {
		if code, _, _ := postIngest(t, s, body); code != want {
			t.Errorf("POST /ingest %q: code %d, want %d", body, code, want)
		}
	}
	if snap, err := ing.Snapshot(); err != nil || snap.Adjacency.NNZ() != 0 {
		t.Fatalf("refused batches must not touch the view: nnz %d err %v", snap.Adjacency.NNZ(), err)
	}

	// An explicitly weighted zero annihilates (stored=false) but is
	// still a valid append.
	if code, _, resp := postIngest(t, s, `{"edges":[{"src":"x","dst":"y","out":0,"in":1}]}`); code != http.StatusOK || resp["appended"] != float64(1) {
		t.Fatalf("weighted-zero append: code %d resp %v", code, resp)
	}
}
