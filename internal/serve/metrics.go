package serve

import (
	"net/http"
	"slices"
	"strconv"
	"sync"
	"time"

	"adjarray/internal/core"
	"adjarray/internal/keys"
	"adjarray/internal/obs"
)

// metrics is the server's observability surface. Instrument-backed
// series (latencies, shed counts) are fed on the request path; view
// positions that the ingest owns (epochs, WAL lag, edge counts) are
// exported as pull-time callbacks so scraping never duplicates state.
type metrics struct {
	reg *obs.Registry

	inflight     *obs.Gauge
	encodeErrors *obs.Counter
	writeErrors  *obs.Counter

	cacheHits     *obs.Counter
	cacheRebuilds *obs.Counter
	cacheStale    *obs.Counter

	ingestShed *obs.Counter

	// Snapshot epoch age: how long since the served epoch vector last
	// advanced — the staleness a reader observes, as distinct from WAL
	// lag (what a crash would lose).
	epochMu     sync.Mutex
	lastEpochs  []int
	lastAdvance time.Time
}

func newMetrics(reg *obs.Registry, ing *core.Ingest) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &metrics{reg: reg, lastAdvance: time.Now()}
	m.inflight = reg.Gauge("adjserve_http_inflight_requests",
		"Requests currently being served.")
	m.encodeErrors = reg.Counter("adjserve_response_encode_errors_total",
		"Responses whose JSON encoding failed before any byte was written.")
	m.writeErrors = reg.Counter("adjserve_response_write_errors_total",
		"Encoded responses the client connection refused (disconnects).")
	m.cacheHits = reg.Counter("adjserve_graph_cache_hits_total",
		"Algorithm queries answered from the per-epoch cached Graph.")
	m.cacheRebuilds = reg.Counter("adjserve_graph_cache_rebuilds_total",
		"Graph rebuilds after the snapshot epoch vector advanced.")
	m.cacheStale = reg.Counter("adjserve_graph_cache_stale_serves_total",
		"Queries that pinned an older snapshot than the cached Graph and were served uncached.")
	m.ingestShed = reg.Counter("adjserve_ingest_shed_readonly_total",
		"POST /ingest requests answered 503 because the durable store is read-only.")
	// Storage-health state machine, pulled at scrape time. State is the
	// worst shard (0 ok, 1 degraded, 2 read-only); faults sum across
	// shards over WAL appends, fsyncs, and checkpoint attempts.
	reg.GaugeFunc("adjserve_storage_state",
		"Storage health: 0 ok, 1 degraded (checkpoints failing), 2 read-only (WAL wedged; worst shard).",
		func() float64 { agg, _ := ing.StorageHealth(); return float64(agg.State) })
	reg.CounterFunc("adjserve_storage_faults_total",
		"Storage faults observed across WAL writes, fsyncs, and checkpoints (all shards).",
		func() float64 { agg, _ := ing.StorageHealth(); return float64(agg.Faults) })
	reg.GaugeFunc("adjserve_snapshot_epoch_age_seconds",
		"Seconds since the served snapshot epoch vector last advanced.",
		func() float64 {
			m.epochMu.Lock()
			defer m.epochMu.Unlock()
			return time.Since(m.lastAdvance).Seconds()
		})

	// Ingest positions, pulled from the view(s) at scrape time. The
	// per-scrape Stats() call takes the view lock briefly — the same
	// cost as one /stats request.
	registerInternerGauges(reg, ing)
	if sv := ing.Sharded(); sv != nil {
		reg.CounterFunc("adjserve_ingest_edges_total",
			"Edges ever applied to the view (rate() of this is the ingest rate).",
			func() float64 { return float64(sv.Stats().Edges) })
		reg.GaugeFunc("adjserve_adjacency_nnz",
			"Stored adjacency entries across shards.",
			func() float64 { return float64(sv.Stats().AdjNNZ) })
		reg.GaugeFunc("adjserve_pending_entries",
			"Contribution entries awaiting the backlog fold.",
			func() float64 { return float64(sv.Stats().Pending) })
		for i := 0; i < sv.Shards(); i++ {
			shard := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
			reg.CounterFunc("adjserve_shard_epoch",
				"Batches applied per shard (the consistency vector).",
				func() float64 { return float64(sv.Stats().PerShard[i].Epoch) }, shard)
			if sv.Durable() {
				reg.GaugeFunc("adjserve_wal_lag_batches",
					"Batches a crash right now would lose, per shard.",
					func() float64 { return float64(sv.Durability()[i].WALLag) }, shard)
			}
		}
	} else {
		v := ing.View()
		reg.CounterFunc("adjserve_ingest_edges_total",
			"Edges ever applied to the view (rate() of this is the ingest rate).",
			func() float64 { return float64(v.Stats().Edges) })
		reg.GaugeFunc("adjserve_adjacency_nnz",
			"Stored adjacency entries in the materialized main level.",
			func() float64 { return float64(v.Stats().AdjNNZ) })
		reg.GaugeFunc("adjserve_pending_entries",
			"Contribution entries awaiting the backlog fold.",
			func() float64 { return float64(v.Stats().PendingNNZ) })
		reg.CounterFunc("adjserve_shard_epoch",
			"Batches applied (single view).",
			func() float64 { return float64(v.Stats().Epoch) }, obs.Label{Name: "shard", Value: "0"})
		if d := ing.Durable(); d != nil {
			reg.GaugeFunc("adjserve_wal_lag_batches",
				"Batches a crash right now would lose.",
				func() float64 { return float64(d.Durability().WALLag) }, obs.Label{Name: "shard", Value: "0"})
			reg.GaugeFunc("adjserve_checkpoint_seq",
				"WAL seq covered by the newest on-disk checkpoint.",
				func() float64 { return float64(d.Durability().CheckpointSeq) })
		}
	}
	return m
}

// registerInternerGauges exports the key-interner footprint: the slab
// is the dominant steady-state memory of a long-lived ingest (key bytes
// are never evicted), so operators need its growth rate on /metrics,
// not just in heap profiles. Lock-free on the view — the interners
// synchronize internally.
func registerInternerGauges(reg *obs.Registry, ing *core.Ingest) {
	stats := func() (out, in keys.InternerStats) { return ing.View().InternerStats() }
	if sv := ing.Sharded(); sv != nil {
		stats = sv.InternerStats
	}
	for _, side := range []struct {
		label obs.Label
		pick  func(out, in keys.InternerStats) keys.InternerStats
	}{
		{obs.Label{Name: "side", Value: "out"}, func(out, _ keys.InternerStats) keys.InternerStats { return out }},
		{obs.Label{Name: "side", Value: "in"}, func(_, in keys.InternerStats) keys.InternerStats { return in }},
	} {
		pick := side.pick
		reg.GaugeFunc("adjserve_interner_slab_bytes",
			"Key bytes held by the interner slab (append-only; never shrinks).",
			func() float64 { return float64(pick(stats()).SlabBytes) }, side.label)
		reg.GaugeFunc("adjserve_interner_table_slots",
			"Open-addressed interner table capacity.",
			func() float64 { return float64(pick(stats()).TableSlot) }, side.label)
	}
	reg.GaugeFunc("adjserve_interner_keys",
		"Distinct keys interned across both sides.",
		func() float64 {
			out, in := stats()
			return float64(out.Keys + in.Keys)
		})
}

// observeEpochs records snapshot pins so the epoch-age gauge knows
// when the served vector last advanced.
func (m *metrics) observeEpochs(epochs []int) {
	m.epochMu.Lock()
	if !slices.Equal(m.lastEpochs, epochs) {
		m.lastEpochs = slices.Clone(epochs)
		m.lastAdvance = time.Now()
	}
	m.epochMu.Unlock()
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with the latency histogram, request
// counter, and in-flight gauge. The label is the registered route
// pattern, never the raw URL, so series cardinality is bounded by the
// route table.
func (m *metrics) instrument(path string, next http.Handler) http.Handler {
	hist := m.reg.Histogram("adjserve_http_request_seconds",
		"Wall time per request by endpoint.", obs.DefBuckets,
		obs.Label{Name: "path", Value: path})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		m.inflight.Add(-1)
		hist.Observe(time.Since(start).Seconds())
		// Counter() dedups on name+labels: one mutexed map lookup per
		// request, the price of not pre-declaring every status code.
		m.reg.Counter("adjserve_http_requests_total",
			"Requests served by endpoint and status code.",
			obs.Label{Name: "path", Value: path},
			obs.Label{Name: "code", Value: strconv.Itoa(sw.code)}).Inc()
	})
}
