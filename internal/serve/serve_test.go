package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"adjarray/internal/core"
	"adjarray/internal/stream"
)

func newTestIngest(t *testing.T, opt core.IngestOptions) *core.Ingest {
	t.Helper()
	if opt.Semiring == "" {
		opt.Semiring = "+.*"
	}
	if opt.BatchSize == 0 {
		opt.BatchSize = 4
	}
	ing, err := core.NewIngest(opt)
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

func seedEdges(t *testing.T, ing *core.Ingest, edges ...[2]string) {
	t.Helper()
	for _, e := range edges {
		if err := ing.Add(stream.Edge[float64]{Src: e[0], Dst: e[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ing.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, h http.Handler, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	var body map[string]any
	if rec.Code == http.StatusOK && strings.Contains(rec.Header().Get("Content-Type"), "json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return rec.Code, body
}

func triangleServer(t *testing.T) (*Server, *core.Ingest) {
	t.Helper()
	ing := newTestIngest(t, core.IngestOptions{})
	seedEdges(t, ing, [2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	return New(ing, Options{}), ing
}

func TestEndpoints(t *testing.T) {
	s, _ := triangleServer(t)
	if code, body := get(t, s, "/at?src=a&dst=b"); code != 200 || body["value"].(float64) != 1 || body["stored"] != true {
		t.Fatalf("/at = %d %v", code, body)
	}
	if code, body := get(t, s, "/row?src=a"); code != 200 {
		t.Fatalf("/row = %d", code)
	} else if row := body["row"].(map[string]any); len(row) != 2 {
		t.Fatalf("/row entries = %v", row)
	}
	if code, body := get(t, s, "/bfs?src=a"); code != 200 {
		t.Fatalf("/bfs = %d", code)
	} else {
		levels := body["result"].(map[string]any)
		if levels["a"].(float64) != 0 || levels["b"].(float64) != 1 || levels["c"].(float64) != 1 {
			t.Fatalf("/bfs levels = %v", levels)
		}
	}
	if code, _ := get(t, s, "/bfs?src=zz"); code != http.StatusNotFound {
		t.Fatalf("/bfs unknown source = %d, want 404", code)
	}
	if code, _ := get(t, s, "/triangles"); code != http.StatusUnprocessableEntity {
		t.Fatalf("/triangles on asymmetric pattern = %d, want 422", code)
	}
	if code, body := get(t, s, "/healthz"); code != 200 || body["ok"] != true {
		t.Fatalf("/healthz = %d %v", code, body)
	}
}

// GET /metrics must expose the series the issue promises: ingest
// counters, epochs, per-endpoint latency histograms, cache and
// admission counters — in valid exposition text.
func TestMetricsContent(t *testing.T) {
	s, _ := triangleServer(t)
	// Drive some traffic so instrument-backed series exist.
	get(t, s, "/at?src=a&dst=b")
	get(t, s, "/bfs?src=a")
	get(t, s, "/bfs?src=a") // second hit is a cache hit
	get(t, s, "/bfs")       // 400: no src

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE adjserve_http_request_seconds histogram",
		`adjserve_http_request_seconds_bucket{le="+Inf",path="/bfs"}`,
		`adjserve_http_request_seconds_count{path="/at"} 1`,
		`adjserve_http_requests_total{code="200",path="/bfs"} 2`,
		`adjserve_http_requests_total{code="400",path="/bfs"} 1`,
		"# TYPE adjserve_ingest_edges_total counter",
		"adjserve_ingest_edges_total 3",
		`adjserve_shard_epoch{shard="0"} 1`,
		"adjserve_graph_cache_rebuilds_total 1",
		"adjserve_graph_cache_hits_total 1",
		"adjserve_snapshot_epoch_age_seconds",
		`adjserve_admission_worker_limit{class="algo"}`,
		`adjserve_admission_shed_total{class="read"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

// scrapeMetric returns the value of the first exposition line starting
// with the given series name (including any label set).
func scrapeMetric(t *testing.T, s *Server, series string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("/metrics has no series %q", series)
	return 0
}

// The interner gauges must track ingest: interning fresh vertex keys
// grows the slab and the key count, and the gauges see it on the next
// scrape (they poll the live interners, no caching layer).
func TestInternerGauges(t *testing.T) {
	s, ing := triangleServer(t)
	slabOut := scrapeMetric(t, s, `adjserve_interner_slab_bytes{side="out"}`)
	slabIn := scrapeMetric(t, s, `adjserve_interner_slab_bytes{side="in"}`)
	keys0 := scrapeMetric(t, s, "adjserve_interner_keys")
	if slabOut <= 0 || slabIn <= 0 || keys0 <= 0 {
		t.Fatalf("gauges empty after seeding: slab out=%v in=%v keys=%v", slabOut, slabIn, keys0)
	}
	if slots := scrapeMetric(t, s, `adjserve_interner_table_slots{side="out"}`); slots <= 0 {
		t.Fatalf("table slots gauge = %v", slots)
	}
	seedEdges(t, ing,
		[2]string{"fresh-source-vertex", "fresh-destination-vertex"},
		[2]string{"another-new-source", "another-new-destination"})
	if got := scrapeMetric(t, s, `adjserve_interner_slab_bytes{side="out"}`); got <= slabOut {
		t.Errorf("out slab bytes did not grow: %v -> %v", slabOut, got)
	}
	if got := scrapeMetric(t, s, `adjserve_interner_slab_bytes{side="in"}`); got <= slabIn {
		t.Errorf("in slab bytes did not grow: %v -> %v", slabIn, got)
	}
	if got := scrapeMetric(t, s, "adjserve_interner_keys"); got != keys0+4 {
		t.Errorf("interner keys = %v after 4 fresh endpoint keys, want %v", got, keys0+4)
	}
}

// Regression (bugfix 4): /pagerank must reject out-of-domain
// parameters with 400 instead of burning the iteration budget on a
// divergent or NaN fixpoint.
func TestPageRankParamValidation(t *testing.T) {
	s, _ := triangleServer(t)
	bad := []string{
		"damping=1.5",   // diverges
		"damping=-0.2",  // negative
		"damping=0",     // no link-following at all; algo domain is (0, 1)
		"damping=1",     // domain is (0, 1)
		"damping=NaN",   // parses as NaN
		"tol=0",         // no convergence criterion
		"tol=-1e-9",     // negative
		"tol=NaN",       // NaN
		"iters=0",       // no work
		"iters=-5",      // negative
		"iters=1000000", // over the server bound
		"damping=abc",   // unparseable
		"tol=abc",       // unparseable
		"iters=1.5",     // unparseable int
	}
	for _, q := range bad {
		if code, _ := get(t, s, "/pagerank?"+q); code != http.StatusBadRequest {
			t.Errorf("/pagerank?%s = %d, want 400", q, code)
		}
	}
	good := []string{
		"",             // defaults
		"damping=0.01", // near the lower boundary
		"damping=0.99",
		"tol=1e-12",
		"iters=1000", // exactly the server bound
	}
	for _, q := range good {
		if code, _ := get(t, s, "/pagerank?"+q); code != 200 {
			t.Errorf("/pagerank?%s = %d, want 200", q, code)
		}
	}
}

// Regression (bugfix 3): /triples must clamp client limits to the
// server maximum and stop iterating at the limit.
func TestTriplesLimitAndClamp(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	var edges [][2]string
	for i := 0; i < 30; i++ {
		edges = append(edges, [2]string{fmt.Sprintf("s%02d", i), fmt.Sprintf("d%02d", i)})
	}
	seedEdges(t, ing, edges...)
	s := New(ing, Options{TriplesMax: 5})

	// A limit over the server maximum is clamped, not honored.
	code, body := get(t, s, "/triples?limit=1000000")
	if code != 200 {
		t.Fatalf("/triples = %d", code)
	}
	if n := len(body["triples"].([]any)); n != 5 {
		t.Fatalf("clamped /triples returned %d rows, want 5", n)
	}
	if body["limit"].(float64) != 5 || body["truncated"] != true || body["total"].(float64) != 30 {
		t.Fatalf("clamped /triples metadata = %v", body)
	}
	// The default is also clamped to the maximum.
	if _, body := get(t, s, "/triples"); len(body["triples"].([]any)) != 5 {
		t.Fatalf("default /triples = %v rows, want 5", len(body["triples"].([]any)))
	}
	// Small explicit limits work and report truncation.
	if _, body := get(t, s, "/triples?limit=1"); len(body["triples"].([]any)) != 1 || body["truncated"] != true {
		t.Fatalf("/triples?limit=1 = %v", body)
	}
	if code, _ := get(t, s, "/triples?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("/triples?limit=-1 = %d, want 400", code)
	}
	if code, _ := get(t, s, "/triples?limit=0"); code != http.StatusBadRequest {
		t.Fatalf("/triples?limit=0 = %d, want 400", code)
	}
}

// Regression (bugfix 2): writeJSON must never write a partial body and
// then try to send an error. Success responses carry Content-Length
// and exactly the encoded bytes; encode failures yield a clean 500.
func TestWriteJSONSingleWrite(t *testing.T) {
	s, _ := triangleServer(t)

	rec := httptest.NewRecorder()
	s.writeJSON(rec, map[string]any{"x": 1})
	if rec.Code != 200 {
		t.Fatalf("writeJSON success = %d", rec.Code)
	}
	cl, err := strconv.Atoi(rec.Header().Get("Content-Length"))
	if err != nil || cl != rec.Body.Len() {
		t.Fatalf("Content-Length %q does not match body length %d", rec.Header().Get("Content-Length"), rec.Body.Len())
	}

	// A raw +Inf float64 is unencodable JSON: the old streaming path
	// had already written 200 + partial body before failing, then
	// stacked http.Error on top. The buffered path fails before any
	// byte reaches the wire.
	rec = httptest.NewRecorder()
	s.writeJSON(rec, map[string]any{"x": math.Inf(1)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("writeJSON(Inf) = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); strings.Contains(ct, "json") {
		t.Fatalf("failed encode should not claim a JSON body, got %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "encode response") {
		t.Fatalf("error body = %q", rec.Body.String())
	}
	if s.met.encodeErrors.Value() != 1 {
		t.Fatalf("encode error counter = %d, want 1", s.met.encodeErrors.Value())
	}
}

// Regression (bugfix 1, deterministic half): a request that pinned an
// older epoch vector must not overwrite a newer cached Graph.
func TestGraphCacheRejectsStaleOverwrite(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	seedEdges(t, ing, [2]string{"a", "b"})
	s := New(ing, Options{})

	// Request A pins the epoch-1 snapshot but is "slow": it has not
	// reached the cache yet.
	adjOld, epochsOld, _, err := s.takeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// An ingest batch lands and request B pins + caches epoch 2.
	seedEdges(t, ing, [2]string{"b", "c"})
	adjNew, epochsNew, _, err := s.takeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	gNew, err := s.cache.graphFor(adjNew, epochsNew)
	if err != nil {
		t.Fatal(err)
	}

	// Request A finally reaches the cache. It must be answered from
	// its own pinned snapshot...
	gOld, err := s.cache.graphFor(adjOld, epochsOld)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gOld.BFSLevels("a"); err != nil {
		t.Fatal(err)
	}
	if gOld == gNew {
		t.Fatal("older request was served the newer graph")
	}
	// ...without evicting the newer cached entry (the old code
	// overwrote here, thrashing the cache backwards under load).
	gAgain, err := s.cache.graphFor(adjNew, epochsNew)
	if err != nil {
		t.Fatal(err)
	}
	if gAgain != gNew {
		t.Fatal("stale request evicted the newer cached graph")
	}
	if s.met.cacheStale.Value() != 1 {
		t.Fatalf("stale-serve counter = %d, want 1", s.met.cacheStale.Value())
	}
	if s.met.cacheHits.Value() != 1 {
		t.Fatalf("hit counter = %d, want 1 (the re-fetch of the newer vector)", s.met.cacheHits.Value())
	}
}

// Regression (bugfix 1, racing half): two requests racing around an
// append, under -race. The cache must end at the newest vector no
// matter the interleaving.
func TestGraphCacheRaceAroundAppend(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		ing := newTestIngest(t, core.IngestOptions{BatchSize: 1})
		seedEdges(t, ing, [2]string{"a", "b"})
		s := New(ing, Options{})

		var wg sync.WaitGroup
		start := make(chan struct{})
		request := func() {
			defer wg.Done()
			<-start
			adj, epochs, _, err := s.takeSnapshot()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.cache.graphFor(adj, epochs); err != nil {
				t.Error(err)
			}
		}
		wg.Add(3)
		go request()
		go func() {
			defer wg.Done()
			<-start
			if err := ing.Add(stream.Edge[float64]{Src: "b", Dst: "c"}); err != nil {
				t.Error(err)
			}
		}()
		go request()
		close(start)
		wg.Wait()

		// Whatever the interleaving, a request pinning the final state
		// must find or install the newest vector — and once it has, the
		// cached vector is final (nothing older can replace it).
		adj, epochs, _, err := s.takeSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.cache.graphFor(adj, epochs); err != nil {
			t.Fatal(err)
		}
		s.cache.mu.Lock()
		cached := append([]int(nil), s.cache.epochs...)
		s.cache.mu.Unlock()
		if len(cached) != len(epochs) || cached[0] != epochs[0] {
			t.Fatalf("iter %d: cache ended at %v, want newest %v", iter, cached, epochs)
		}
	}
}

// Algorithm queries against live snapshots while ingest continues —
// the serving-path -race gate, now through the full front door
// (admission pools + metrics middleware included).
func TestQueriesDuringConcurrentIngest(t *testing.T) {
	ing := newTestIngest(t, core.IngestOptions{})
	seedEdges(t, ing, [2]string{"v00", "v01"}, [2]string{"v01", "v02"})
	s := New(ing, Options{})

	var mu sync.Mutex
	done := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			paths := []string{"/bfs?src=v00", "/pagerank?iters=10", "/stats", "/triples?limit=5", "/metrics"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[(i+w)%len(paths)]
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("GET %s = %d: %s", path, rec.Code, rec.Body.String()))
				}
			}
		}(w)
	}

	for i := 0; i < 300; i++ {
		e := stream.Edge[float64]{
			Src: fmt.Sprintf("w%02d", i%17),
			Dst: fmt.Sprintf("w%02d", (i+3)%17),
		}
		mu.Lock()
		err := ing.Add(e)
		mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	readers.Wait()

	mu.Lock()
	_, err := ing.Snapshot()
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, s, "/bfs?src=v00"); code != 200 {
		t.Fatalf("final /bfs = %d", code)
	}
}
