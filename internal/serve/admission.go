package serve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"adjarray/internal/obs"
)

// pool is one endpoint class's admission gate: at most `workers`
// requests execute concurrently, at most `maxQueue` wait for a slot,
// and everything beyond that is shed immediately as 429 with a
// Retry-After hint. Shedding is the point — under a burst of expensive
// algorithm queries the process answers "come back later" in
// microseconds instead of accreting a goroutine (and a pinned
// snapshot) per queued request until memory runs out.
type pool struct {
	class    string
	slots    chan struct{} // buffered to the worker count
	maxQueue int
	waiting  atomic.Int64
	retry    time.Duration
	shed     *obs.Counter
}

func newPool(class string, workers, queue int, retry time.Duration, m *metrics) *pool {
	p := &pool{
		class:    class,
		slots:    make(chan struct{}, workers),
		maxQueue: queue,
		retry:    retry,
	}
	label := obs.Label{Name: "class", Value: class}
	p.shed = m.reg.Counter("adjserve_admission_shed_total",
		"Requests answered 429 because the class's queue was full.", label)
	m.reg.GaugeFunc("adjserve_admission_busy_workers",
		"Requests of this class currently executing.",
		func() float64 { return float64(len(p.slots)) }, label)
	m.reg.GaugeFunc("adjserve_admission_queued_requests",
		"Requests of this class waiting for a worker slot.",
		func() float64 { return float64(p.waiting.Load()) }, label)
	m.reg.GaugeFunc("adjserve_admission_worker_limit",
		"Configured worker-pool size for this class.",
		func() float64 { return float64(cap(p.slots)) }, label)
	return p
}

// admit gates next behind the pool. The fast path is one non-blocking
// channel send; the queue path blocks until a slot frees or the client
// gives up (context cancellation releases the queue position).
func (p *pool) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case p.slots <- struct{}{}:
			// A worker slot was free.
		default:
			// All workers busy: join the bounded queue or shed. The
			// counter check is optimistic — concurrent arrivals may
			// shed slightly early, never queue unboundedly.
			if int(p.waiting.Add(1)) > p.maxQueue {
				p.waiting.Add(-1)
				p.shed.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(p.retry)))
				http.Error(w, fmt.Sprintf(
					"%s pool saturated: %d workers busy and %d requests queued; retry after %s",
					p.class, cap(p.slots), p.maxQueue, p.retry),
					http.StatusTooManyRequests)
				return
			}
			select {
			case p.slots <- struct{}{}:
				p.waiting.Add(-1)
			case <-r.Context().Done():
				p.waiting.Add(-1)
				return // client gone; nothing to write
			}
		}
		defer func() { <-p.slots }()
		next.ServeHTTP(w, r)
	})
}

// retryAfterSeconds renders the hint as whole seconds, rounding up so
// a sub-second hint never becomes "Retry-After: 0".
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
