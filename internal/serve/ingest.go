package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"adjarray/internal/stream"
)

// maxIngestBody bounds the decoded request body; a batch bigger than
// this should arrive as several requests (the per-batch edge count is
// bounded separately by Options.MaxIngestEdges).
const maxIngestBody = 8 << 20

// ingestEdge is the wire form of one edge. Out/In are pointers so an
// explicitly provided weight — including the algebra's Zero — is
// distinguishable from an omitted one (which ingests as the algebra's
// One, the unweighted convention).
type ingestEdge struct {
	Key string   `json:"key"`
	Src string   `json:"src"`
	Dst string   `json:"dst"`
	Out *float64 `json:"out"`
	In  *float64 `json:"in"`
}

// handleIngest is the HTTP write path: POST /ingest appends one batch
// of edges atomically through core.Ingest.AppendBatch (bypassing the
// process's stdin accumulator, so HTTP and stream ingest compose).
//
// Degraded-mode contract: when the durable store has gone read-only
// after a storage fault (a wedged WAL — see internal/stream), the
// append is refused and the client gets 503 + Retry-After, exactly as
// admission control sheds overload with 429. Read endpoints are
// unaffected and keep serving the last good snapshot. On a sharded
// store the refusal is per shard: a batch routed entirely to healthy
// shards still succeeds while a sick shard's batches shed, which is
// why this handler maps the append error instead of pre-checking the
// aggregate health.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Edges []ingestEdge `json:"edges"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "decode request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Edges) == 0 {
		http.Error(w, `want {"edges":[{"src":"a","dst":"b"},...]}`, http.StatusBadRequest)
		return
	}
	if len(req.Edges) > s.opt.MaxIngestEdges {
		http.Error(w, fmt.Sprintf("batch of %d edges exceeds the server maximum %d",
			len(req.Edges), s.opt.MaxIngestEdges), http.StatusRequestEntityTooLarge)
		return
	}
	batch := make([]stream.Edge[float64], len(req.Edges))
	for i, e := range req.Edges {
		if e.Src == "" || e.Dst == "" {
			http.Error(w, fmt.Sprintf("edge %d: src and dst are required", i), http.StatusBadRequest)
			return
		}
		batch[i] = stream.Edge[float64]{Key: e.Key, Src: e.Src, Dst: e.Dst}
		if e.Out != nil {
			batch[i].Out, batch[i].HasOut = *e.Out, true
		}
		if e.In != nil {
			batch[i].In, batch[i].HasIn = *e.In, true
		}
	}
	if err := s.ing.AppendBatch(batch); err != nil {
		if errors.Is(err, stream.ErrReadOnly) {
			s.met.ingestShed.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opt.RetryAfter)))
			http.Error(w, "storage is read-only; ingest shed, reads still served: "+err.Error(),
				http.StatusServiceUnavailable)
			return
		}
		// Anything else is the batch's own fault (key discipline, failed
		// associativity guard) — the view rejected it atomically.
		http.Error(w, "append: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.writeJSON(w, map[string]any{"appended": len(batch)})
}
