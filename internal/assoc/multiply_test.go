package assoc

import (
	"math/rand"
	"strconv"
	"testing"

	"adjarray/internal/semiring"
)

// incidencePair builds the paper's Lemma II.2 gadget as associative
// arrays: two parallel edges k1,k2 from a to b.
func incidencePair(v, w float64) (eout, ein *Array[float64]) {
	eout = FromTriples([]Triple[float64]{
		{"k1", "a", v}, {"k2", "a", w},
	}, nil)
	ein = FromTriples([]Triple[float64]{
		{"k1", "b", 1}, {"k2", "b", 1},
	}, nil)
	return eout, ein
}

func TestMulKnownCorrelation(t *testing.T) {
	eout, ein := incidencePair(1, 1)
	// A = Eoutᵀ · Ein : a→b via two edges, +.* sums to 2.
	a, err := Correlate(eout, ein, semiring.PlusTimes(), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := a.At("a", "b"); !ok || v != 2 {
		t.Errorf("A(a,b) = %v,%v; want 2", v, ok)
	}
	if a.RowKeys().Len() != 1 || a.ColKeys().Len() != 1 {
		t.Error("result key sets should be the incidence column key sets")
	}
}

func TestMulKeyAlignmentIntersectsSharedDimension(t *testing.T) {
	// A's column keys {k1,k2,k3}; B's row keys {k2,k3,k4}: only k2,k3
	// contribute.
	a := FromTriples([]Triple[float64]{
		{"r", "k1", 5}, {"r", "k2", 1}, {"r", "k3", 2},
	}, nil)
	b := FromTriples([]Triple[float64]{
		{"k2", "c", 10}, {"k3", "c", 100}, {"k4", "c", 7},
	}, nil)
	c, err := Mul(a, b, semiring.PlusTimes(), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.At("r", "c"); !ok || v != 1*10+2*100 {
		t.Errorf("aligned product = %v,%v; want 210", v, ok)
	}
}

func TestMulDisjointSharedDimensionIsEmpty(t *testing.T) {
	a := FromTriples([]Triple[float64]{{"r", "k1", 1}}, nil)
	b := FromTriples([]Triple[float64]{{"k2", "c", 1}}, nil)
	c, err := Mul(a, b, semiring.PlusTimes(), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Errorf("disjoint inner keys should give empty product, nnz=%d", c.NNZ())
	}
	if c.RowKeys().Len() != 1 || c.ColKeys().Len() != 1 {
		t.Error("result key sets should still be rows(a)×cols(b)")
	}
}

func TestMulKernelsAndParallelAgree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b1 := NewBuilder[float64](nil)
	b2 := NewBuilder[float64](nil)
	for i := 0; i < 200; i++ {
		b1.Set("e"+strconv.Itoa(r.Intn(40)), "v"+strconv.Itoa(r.Intn(20)), float64(1+r.Intn(5)))
		b2.Set("e"+strconv.Itoa(r.Intn(40)), "w"+strconv.Itoa(r.Intn(25)), float64(1+r.Intn(5)))
	}
	eout, ein := b1.Build(), b2.Build()
	ref, err := Correlate(eout, ein, semiring.MaxPlus(), MulOptions{Kernel: "merge"})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []MulOptions{
		{}, {Kernel: "hash"}, {Kernel: "gustavson"},
		{Workers: 4}, {Workers: -1, Grain: 2},
	} {
		got, err := Correlate(eout, ein, semiring.MaxPlus(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Equal(got, eqF) {
			t.Errorf("option %+v disagrees with merge kernel", opt)
		}
	}
	if _, err := Mul(eout.Transpose(), ein, semiring.MaxPlus(), MulOptions{Kernel: "nope"}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestMulDenseMatchesSparseForCompliantAlgebra(t *testing.T) {
	eout, ein := incidencePair(2, 3)
	for _, ops := range semiring.Figure3Pairs() {
		s, err := Correlate(eout, ein, ops, MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := MulDense(eout.Transpose(), ein, ops)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(d, eqF) {
			t.Errorf("%s: sparse product differs from Definition I.3 dense product", ops.Name)
		}
	}
}

// Lemma II.2 realized end-to-end: with a non-zero-sum-free algebra
// (signed reals), two parallel edges weighted v and −v cancel, producing
// a structural zero where the graph has edges — the product is NOT an
// adjacency array.
func TestMulCancellationUnderRing(t *testing.T) {
	eout, ein := incidencePair(5, -5)
	a, err := Correlate(eout, ein, semiring.PlusTimes().Rename("ring"), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.At("a", "b"); ok {
		t.Error("cancelled entry should be pruned — that is the violation the lemma predicts")
	}
}

func TestAddUnionSemantics(t *testing.T) {
	a := FromTriples([]Triple[float64]{{"r1", "c1", 1}}, nil)
	b := FromTriples([]Triple[float64]{{"r1", "c1", 2}, {"r2", "c2", 7}}, nil)
	sum, err := Add(a, b, semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sum.At("r1", "c1"); v != 3 {
		t.Errorf("overlap sum = %v", v)
	}
	if v, ok := sum.At("r2", "c2"); !ok || v != 7 {
		t.Errorf("one-sided entry = %v,%v", v, ok)
	}
	if sum.RowKeys().Len() != 2 || sum.ColKeys().Len() != 2 {
		t.Error("Add should use union key sets")
	}
}

func TestElementMulIntersectionSemantics(t *testing.T) {
	a := FromTriples([]Triple[float64]{{"r", "c", 3}, {"r", "d", 5}}, nil)
	b := FromTriples([]Triple[float64]{{"r", "c", 4}, {"r", "e", 9}}, nil)
	prod, err := ElementMul(a, b, semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if prod.NNZ() != 1 {
		t.Fatalf("intersection nnz = %d", prod.NNZ())
	}
	if v, _ := prod.At("r", "c"); v != 12 {
		t.Errorf("product = %v", v)
	}
}

func TestAddAlignedFastPath(t *testing.T) {
	a := tiny()
	b := tiny()
	sum, err := Add(a, b, semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sum.At("r2", "c2"); v != 6 {
		t.Errorf("aligned add = %v", v)
	}
}

// Array multiplication respects Definition I.3's ordered fold: with the
// non-commutative first.* pair, the contribution of the lexicographically
// first shared key wins.
func TestMulNonCommutativeFoldOrder(t *testing.T) {
	eout := FromTriples([]Triple[float64]{
		{"k1", "a", 3}, {"k2", "a", 4},
	}, nil)
	ein := FromTriples([]Triple[float64]{
		{"k1", "b", 1}, {"k2", "b", 1},
	}, nil)
	a, err := Correlate(eout, ein, semiring.LeftmostNonzero(), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At("a", "b"); v != 3 {
		t.Errorf("fold order violated: got %v, want 3 (k1 before k2)", v)
	}
}

// (AB)ᵀ = BᵀAᵀ holds for commutative ⊗ but may fail otherwise — the
// paper's Section III remark.
func TestTransposeProductIdentityNeedsCommutativity(t *testing.T) {
	a := FromTriples([]Triple[float64]{{"x", "k", 2}}, nil)
	b := FromTriples([]Triple[float64]{{"k", "y", 5}}, nil)

	ops := semiring.PlusTimes()
	ab, _ := Mul(a, b, ops, MulOptions{})
	ba, _ := Mul(b.Transpose(), a.Transpose(), ops, MulOptions{})
	if !ab.Transpose().Equal(ba, eqF) {
		t.Error("(AB)ᵀ ≠ BᵀAᵀ under commutative ⊗")
	}

	// Non-commutative ⊗: keep the left operand. (AB)ᵀ keeps a's value,
	// BᵀAᵀ keeps b's value.
	nc := semiring.Ops[float64]{
		Name: "left", Add: ops.Add, Zero: 0, One: 1, Equal: ops.Equal,
		Mul: func(x, y float64) float64 { return x },
	}
	ab, _ = Mul(a, b, nc, MulOptions{})
	ba, _ = Mul(b.Transpose(), a.Transpose(), nc, MulOptions{})
	vAB, _ := ab.Transpose().At("y", "x")
	vBA, _ := ba.At("y", "x")
	if vAB == vBA {
		t.Error("expected (AB)ᵀ ≠ BᵀAᵀ for non-commutative ⊗")
	}
	if vAB != 2 || vBA != 5 {
		t.Errorf("got vAB=%v vBA=%v, want 2 and 5", vAB, vBA)
	}
}

func TestExplodeMusicStyle(t *testing.T) {
	table := Table{
		Rows:   []string{"t1", "t2"},
		Fields: []string{"Genre", "Writer"},
		Cells: [][]string{
			{"Rock", "Ann;Bob"},
			{"Pop", ""},
		},
	}
	e, err := Explode(table, ExplodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NNZ() != 4 {
		t.Fatalf("exploded nnz = %d", e.NNZ())
	}
	for _, k := range []string{"Genre|Rock", "Genre|Pop", "Writer|Ann", "Writer|Bob"} {
		if !e.ColKeys().Contains(k) {
			t.Errorf("missing exploded column %q", k)
		}
	}
	if v, ok := e.At("t1", "Writer|Bob"); !ok || v != 1 {
		t.Errorf("multi-value cell not exploded: %v %v", v, ok)
	}
	if _, ok := e.At("t2", "Writer|Ann"); ok {
		t.Error("empty cell produced an entry")
	}
}

func TestExplodeCustomValueAndSeparators(t *testing.T) {
	table := Table{
		Rows:   []string{"r"},
		Fields: []string{"F"},
		Cells:  [][]string{{"x, y"}},
	}
	e, err := Explode(table, ExplodeOptions{
		Sep:      ":",
		MultiSep: ",",
		Value: func(row, field, v string) float64 {
			if v == "y" {
				return 2
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.At("r", "F:y"); !ok || v != 2 {
		t.Errorf("custom Value not applied: %v %v", v, ok)
	}
	if v, ok := e.At("r", "F:x"); !ok || v != 1 {
		t.Errorf("custom separators broke explode: %v %v", v, ok)
	}
}

func TestExplodeValidates(t *testing.T) {
	bad := Table{Rows: []string{"r"}, Fields: []string{"F"}, Cells: [][]string{}}
	if _, err := Explode(bad, ExplodeOptions{}); err == nil {
		t.Error("ragged table accepted")
	}
	bad2 := Table{Rows: []string{"r"}, Fields: []string{"F"}, Cells: [][]string{{"a", "b"}}}
	if _, err := Explode(bad2, ExplodeOptions{}); err == nil {
		t.Error("wide row accepted")
	}
}

func TestImplodeRoundTrip(t *testing.T) {
	table := Table{
		Rows:   []string{"t1", "t2"},
		Fields: []string{"Genre", "Writer"},
		Cells: [][]string{
			{"Rock", "Ann;Bob"},
			{"Pop", "Cy"},
		},
	}
	e, err := Explode(table, ExplodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Implode(e, "|", ";")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || len(back.Fields) != 2 {
		t.Fatalf("imploded shape %dx%d", len(back.Rows), len(back.Fields))
	}
	// Find the Writer cell of t1 (field order follows column-key order).
	var writers string
	for j, f := range back.Fields {
		if f == "Writer" {
			writers = back.Cells[0][j]
		}
	}
	if writers != "Ann;Bob" {
		t.Errorf("imploded writers = %q", writers)
	}
	plain := FromTriples([]Triple[float64]{{"r", "nosep", 1}}, nil)
	if _, err := Implode(plain, "|", ";"); err == nil {
		t.Error("column without separator accepted")
	}
}
