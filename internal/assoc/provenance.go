package assoc

import (
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/sparse"
	"adjarray/internal/value"
)

// Provenance multiplication — D4M's "CatKeyMul" in set form. Where
// ordinary array multiplication folds the VALUES of the contributing
// terms, provenance multiplication records the shared KEYS that
// contributed: for adjacency construction, C(a, b) is the set of edge
// keys connecting a to b. The paper's Figure 3 caption describes the
// values as weights "on the edges between the vertices of the graph";
// the provenance product recovers the edges themselves — which is also
// a constructive proof of the Definition I.5 pattern, since C(a,b) ≠ ∅
// iff an edge a→b exists.

// MulKeys computes the provenance product of A : K1×K3 and B : K3×K2:
// entry (k1, k2) is the set of shared keys k ∈ K3 with A(k1,k) and
// B(k,k2) both stored. The result's entries are never empty sets.
func MulKeys[V, W any](a *Array[V], b *Array[W]) (*Array[value.Set], error) {
	am, bm := a.mat, b.mat
	sharedKeys := a.cols
	if !a.cols.Equal(b.rows) {
		sharedKeys = a.cols.Intersect(b.rows)
		_, aColIdx := a.cols.Select(keys.InSet{Set: sharedKeys})
		_, bRowIdx := b.rows.Select(keys.InSet{Set: sharedKeys})
		var err error
		am, err = am.ExtractCols(aColIdx)
		if err != nil {
			return nil, err
		}
		bm, err = bm.ExtractRows(bRowIdx)
		if err != nil {
			return nil, err
		}
	}
	// Convert both operands to singleton key sets indexed by the shared
	// dimension, then multiply under ∪.∪: every matching k contributes
	// {k}, and ⊕ = ∪ accumulates them. ⊗ must also produce {k}: both
	// operands of a product carry the same k by construction, so ∪ works
	// as "keep the key".
	ak := sparse.Convert(am, func(_, j int, _ V) value.Set {
		return value.NewSet(sharedKeys.Key(j))
	})
	bk := sparse.Convert(bm, func(i, _ int, _ W) value.Set {
		return value.NewSet(sharedKeys.Key(i))
	})
	unionOps := keyUnionOps()
	cm, err := sparse.MulGustavson(ak, bk, unionOps)
	if err != nil {
		return nil, err
	}
	return &Array[value.Set]{rows: a.rows, cols: b.cols, mat: cm}, nil
}

// CorrelateKeys computes the provenance form of the paper's adjacency
// construction: C = AᵀB with C(a, b) = the set of edge keys k with
// Eout(k,a) and Ein(k,b) non-zero.
func CorrelateKeys[V, W any](a *Array[V], b *Array[W]) (*Array[value.Set], error) {
	return MulKeys(a.Transpose(), b)
}

// keyUnionOps is the ∪.∪ pair over key sets. It satisfies all three
// Theorem II.1 conditions (∅ is the only zero; union of non-empty sets
// is non-empty; ∅ ∪ s = s makes ∅ annihilate nothing — but ⊗ = ∪ never
// produces ∅ from non-empty operands and the sparse kernel never feeds
// it ∅), so the provenance pattern always equals the adjacency pattern.
func keyUnionOps() semiring.Ops[value.Set] {
	return semiring.Ops[value.Set]{
		Name:  "union.union",
		Add:   func(a, b value.Set) value.Set { return a.Union(b) },
		Mul:   func(a, b value.Set) value.Set { return a.Union(b) },
		Zero:  nil,
		One:   nil,
		Equal: func(a, b value.Set) bool { return a.Equal(b) },
	}
}
