package assoc

import (
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func TestCorrelateKeysTiny(t *testing.T) {
	eout := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "a", Val: 1},
		{Row: "k2", Col: "a", Val: 1},
		{Row: "k3", Col: "b", Val: 1},
	}, nil)
	ein := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "x", Val: 1},
		{Row: "k2", Col: "x", Val: 1},
		{Row: "k3", Col: "x", Val: 1},
	}, nil)
	prov, err := CorrelateKeys(eout, ein)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := prov.At("a", "x"); !ok || !v.Equal(value.NewSet("k1", "k2")) {
		t.Errorf("prov(a,x) = %v, want {k1,k2}", v)
	}
	if v, ok := prov.At("b", "x"); !ok || !v.Equal(value.NewSet("k3")) {
		t.Errorf("prov(b,x) = %v, want {k3}", v)
	}
}

// The provenance pattern always equals the value-product pattern under
// a compliant algebra — same edges, different bookkeeping.
func TestCorrelateKeysPatternMatchesValueProduct(t *testing.T) {
	eout := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "a", Val: 2}, {Row: "k2", Col: "a", Val: 3},
		{Row: "k3", Col: "b", Val: 4}, {Row: "k4", Col: "c", Val: 5},
	}, nil)
	ein := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "x", Val: 1}, {Row: "k2", Col: "y", Val: 1},
		{Row: "k3", Col: "x", Val: 1}, {Row: "k4", Col: "y", Val: 1},
	}, nil)
	vals, err := Correlate(eout, ein, semiring.PlusTimes(), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prov, err := CorrelateKeys(eout, ein)
	if err != nil {
		t.Fatal(err)
	}
	if !SamePattern(vals, prov) {
		t.Error("provenance pattern differs from value-product pattern")
	}
	// Under +.* with unit Ein the value equals the provenance set size.
	vals.Iterate(func(r, c string, v float64) {
		p, _ := prov.At(r, c)
		// values here are 2..5 (weights), so compare counts instead:
		if p.Len() == 0 {
			t.Errorf("empty provenance at (%s,%s)", r, c)
		}
	})
}

func TestCorrelateKeysMisalignedKeySets(t *testing.T) {
	// Shared keys {k2} only.
	eout := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "a", Val: 1}, {Row: "k2", Col: "a", Val: 1},
	}, nil)
	ein := FromTriples([]Triple[float64]{
		{Row: "k2", Col: "x", Val: 1}, {Row: "k9", Col: "x", Val: 1},
	}, nil)
	prov, err := CorrelateKeys(eout, ein)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := prov.At("a", "x"); !ok || !v.Equal(value.NewSet("k2")) {
		t.Errorf("prov(a,x) = %v, want {k2}", v)
	}
}

func TestMulKeysCountsAgreeWithPlusTimes(t *testing.T) {
	// With all-ones incidence arrays, +.* counts edges and provenance
	// sets enumerate them: |prov| == count everywhere.
	eout := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "a", Val: 1}, {Row: "k2", Col: "a", Val: 1},
		{Row: "k3", Col: "a", Val: 1}, {Row: "k4", Col: "b", Val: 1},
	}, nil)
	ein := FromTriples([]Triple[float64]{
		{Row: "k1", Col: "x", Val: 1}, {Row: "k2", Col: "x", Val: 1},
		{Row: "k3", Col: "y", Val: 1}, {Row: "k4", Col: "y", Val: 1},
	}, nil)
	counts, err := Correlate(eout, ein, semiring.PlusTimes(), MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prov, err := CorrelateKeys(eout, ein)
	if err != nil {
		t.Fatal(err)
	}
	counts.Iterate(func(r, c string, n float64) {
		p, ok := prov.At(r, c)
		if !ok || float64(p.Len()) != n {
			t.Errorf("(%s,%s): count %v vs provenance %v", r, c, n, p)
		}
	})
}
