package assoc

import (
	"adjarray/internal/render"
)

// Format renders the array as an aligned grid in the D4M figure style:
// row keys down the left, column keys across the top, blank cells for
// structural zeros. format renders a stored value to text.
func Format[V any](a *Array[V], format func(V) string) string {
	cell := func(i, j int) string {
		v, ok := a.mat.At(i, j)
		if !ok {
			return ""
		}
		return format(v)
	}
	return render.Grid(a.rows.Keys(), a.cols.Keys(), cell)
}
