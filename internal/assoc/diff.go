package assoc

import "fmt"

// Diff describes the first difference between two arrays, or "" when
// they are Equal under eq. Key-set disagreements are reported before
// entry disagreements; entries are compared in row-major key order so
// the report is deterministic. format renders values (nil for %v).
//
// This is the divergence reporter of the conformance harness: a bare
// Equal=false tells a human nothing about WHERE five construction paths
// disagree, while the first differing triple pins the failure to one
// (row, col) cell of one instance.
func Diff[V any](a, b *Array[V], eq func(V, V) bool, format func(V) string) string {
	if format == nil {
		format = func(v V) string { return fmt.Sprintf("%v", v) }
	}
	if !a.rows.Equal(b.rows) {
		return fmt.Sprintf("row key sets differ: %v vs %v", a.rows, b.rows)
	}
	if !a.cols.Equal(b.cols) {
		return fmt.Sprintf("col key sets differ: %v vs %v", a.cols, b.cols)
	}
	at, bt := a.Triples(), b.Triples()
	for i := 0; i < len(at) && i < len(bt); i++ {
		x, y := at[i], bt[i]
		if x.Row != y.Row || x.Col != y.Col {
			return fmt.Sprintf("entry %d: stored at (%s,%s) vs (%s,%s)", i, x.Row, x.Col, y.Row, y.Col)
		}
		if !eq(x.Val, y.Val) {
			return fmt.Sprintf("value at (%s,%s): %s vs %s", x.Row, x.Col, format(x.Val), format(y.Val))
		}
	}
	if len(at) != len(bt) {
		return fmt.Sprintf("nnz differs: %d vs %d", len(at), len(bt))
	}
	return ""
}

// Validate checks an array's internal consistency: the matrix dimensions
// must match the key-set sizes and the CSR structural invariants must
// hold. Operations on well-formed arrays preserve these invariants, so a
// failure indicates a kernel bug; the conformance harness runs Validate
// on every construction path's output.
func (a *Array[V]) Validate() error {
	if a.mat.Rows() != a.rows.Len() || a.mat.Cols() != a.cols.Len() {
		return fmt.Errorf("assoc: matrix %d×%d does not match key sets %d×%d",
			a.mat.Rows(), a.mat.Cols(), a.rows.Len(), a.cols.Len())
	}
	return a.mat.Validate()
}
