package assoc

import (
	"fmt"
	"math/rand"
	"testing"

	"adjarray/internal/keys"
	"adjarray/internal/semiring"
)

func eqFloat(a, b float64) bool { return a == b }

func randomTriples(r *rand.Rand, n, rowCard, colCard int, rowPrefix string) []Triple[float64] {
	ts := make([]Triple[float64], 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple[float64]{
			Row: fmt.Sprintf("%s%04d", rowPrefix, r.Intn(rowCard)),
			Col: fmt.Sprintf("c%04d", r.Intn(colCard)),
			Val: float64(r.Intn(9) + 1),
		})
	}
	return ts
}

func TestAddIntoMatchesAdd(t *testing.T) {
	ops := semiring.PlusTimes()
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		a := FromTriples(randomTriples(r, 20, 8, 8, "r"), ops.Add)
		b := FromTriples(randomTriples(r, 10, 10, 10, "r"), ops.Add)
		want, err := Add(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		// Clone a so the in-place trials cannot poison later oracles.
		ac := FromTriples(a.Triples(), ops.Add)
		got, err := AddInto(ac, b, ops, trial%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, eqFloat) {
			t.Fatalf("trial %d: AddInto != Add", trial)
		}
	}
}

func TestAddIntoInPlaceAliasing(t *testing.T) {
	ops := semiring.PlusTimes()
	a := FromTriples([]Triple[float64]{
		{Row: "x", Col: "p", Val: 1}, {Row: "y", Col: "q", Val: 2},
	}, nil)
	// Same keys, subset pattern → the fold lands in a's own storage.
	b := FromTriples([]Triple[float64]{{Row: "y", Col: "q", Val: 5}}, nil)
	br, err := b.Reindex(a.RowKeys(), a.ColKeys())
	if err != nil {
		t.Fatal(err)
	}
	got, err := AddInto(a, br, ops, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Error("aligned subset merge should return a itself")
	}
	if v, _ := got.At("y", "q"); v != 7 {
		t.Errorf("fold = %v", v)
	}
	// Without inPlace, a must stay untouched.
	a2 := FromTriples([]Triple[float64]{{Row: "x", Col: "p", Val: 1}}, nil)
	b2 := FromTriples([]Triple[float64]{{Row: "x", Col: "p", Val: 3}}, nil)
	got2, err := AddInto(a2, b2, ops, false)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a2.At("x", "p"); v != 1 {
		t.Errorf("a mutated on copy path: %v", v)
	}
	if v, _ := got2.At("x", "p"); v != 4 {
		t.Errorf("copy-path fold = %v", v)
	}
}

func TestAddIntoGrowsKeySets(t *testing.T) {
	ops := semiring.MaxPlus()
	a := FromTriples([]Triple[float64]{{Row: "a", Col: "a", Val: 1}}, nil)
	b := FromTriples([]Triple[float64]{{Row: "b", Col: "c", Val: 2}}, nil)
	got, err := AddInto(a, b, ops, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowKeys().Len() != 2 || got.ColKeys().Len() != 2 {
		t.Fatalf("union keys wrong: %v × %v", got.RowKeys(), got.ColKeys())
	}
	if v, ok := got.At("b", "c"); !ok || v != 2 {
		t.Errorf("new-key entry lost: %v %v", v, ok)
	}
}

func TestArrayAppendRows(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	log := FromTriples([]Triple[float64]{
		{Row: "e0001", Col: "u", Val: 1},
		{Row: "e0002", Col: "v", Val: 1},
	}, nil)
	all := log.Triples()
	for step := 0; step < 6; step++ {
		var ts []Triple[float64]
		for i := 0; i < 1+r.Intn(3); i++ {
			ts = append(ts, Triple[float64]{
				Row: fmt.Sprintf("e%04d", 10+step*10+i),
				Col: fmt.Sprintf("w%d", r.Intn(6)),
				Val: float64(1 + r.Intn(5)),
			})
		}
		extra := FromTriples(ts, nil)
		grown, err := log.AppendRows(extra, true)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ts...)
		want := FromTriples(all, nil)
		if !grown.Equal(want, eqFloat) {
			t.Fatalf("step %d: append != batch rebuild", step)
		}
		log = grown
	}
	// Out-of-order keys are rejected.
	stale := FromTriples([]Triple[float64]{{Row: "e0000", Col: "u", Val: 1}}, nil)
	if _, err := log.AppendRows(stale, true); err == nil {
		t.Error("non-monotone row keys accepted")
	}
	// Empty append returns the receiver.
	if same, err := log.AppendRows(FromTriples[float64](nil, nil), true); err != nil || same != log {
		t.Errorf("empty append: %v %v", same, err)
	}
}

func TestEmbedInto(t *testing.T) {
	a := FromTriples([]Triple[float64]{{Row: "b", Col: "y", Val: 3}}, nil)
	rows := a.RowKeys().Union(FromTriples([]Triple[float64]{{Row: "a", Col: "z", Val: 1}}, nil).RowKeys())
	cols := a.ColKeys().Union(FromTriples([]Triple[float64]{{Row: "a", Col: "z", Val: 1}}, nil).ColKeys())
	e, err := a.EmbedInto(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Reindex(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equal(want, eqFloat) {
		t.Error("EmbedInto != Reindex")
	}
	// Missing keys in the target are rejected.
	if _, err := a.EmbedInto(FromTriples([]Triple[float64]{{Row: "z", Col: "y", Val: 1}}, nil).RowKeys(), cols); err == nil {
		t.Error("target missing a's rows accepted")
	}
}

func TestMulRejectsKernelWorkersConflict(t *testing.T) {
	a := FromTriples([]Triple[float64]{{Row: "r", Col: "k", Val: 1}}, nil)
	b := FromTriples([]Triple[float64]{{Row: "k", Col: "c", Val: 1}}, nil)
	ops := semiring.PlusTimes()
	for _, kernel := range []string{"gustavson", "hash", "merge"} {
		if _, err := Mul(a, b, ops, MulOptions{Workers: 4, Kernel: kernel}); err == nil {
			t.Errorf("kernel %q with Workers=4 accepted", kernel)
		}
		if _, err := Mul(a, b, ops, MulOptions{Workers: -1, Kernel: kernel}); err == nil {
			t.Errorf("kernel %q with Workers=-1 accepted", kernel)
		}
	}
	// The compatible combinations still run.
	if _, err := Mul(a, b, ops, MulOptions{Workers: 4, Kernel: "twophase"}); err != nil {
		t.Errorf("twophase parallel rejected: %v", err)
	}
	if _, err := Mul(a, b, ops, MulOptions{Workers: 1, Kernel: "hash"}); err != nil {
		t.Errorf("serial hash rejected: %v", err)
	}
}

func TestGrowColsMatchesEmbedInto(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := FromTriples(randomTriples(r, 40, 10, 8, "e"), nil)
	extra := keys.New("c0002", "c0500", "c0900", "zzz")
	grown, oldPos, extraPos, err := a.GrowCols(extra)
	if err != nil {
		t.Fatal(err)
	}
	union := a.ColKeys().Union(extra)
	if !grown.ColKeys().Equal(union) {
		t.Fatal("grown column set is not the union")
	}
	want, err := a.EmbedInto(a.RowKeys(), union)
	if err != nil {
		t.Fatal(err)
	}
	if !grown.Equal(want, eqFloat) {
		t.Fatal("GrowCols != EmbedInto over the union")
	}
	// Position maps resolve keys into the union.
	for i := 0; i < a.ColKeys().Len(); i++ {
		p := i
		if oldPos != nil {
			p = oldPos[i]
		}
		if union.Key(p) != a.ColKeys().Key(i) {
			t.Fatalf("oldPos[%d] wrong", i)
		}
	}
	for i := 0; i < extra.Len(); i++ {
		p := i
		if extraPos != nil {
			p = extraPos[i]
		}
		if union.Key(p) != extra.Key(i) {
			t.Fatalf("extraPos[%d] wrong", i)
		}
	}
	// Subset growth is a no-op share.
	same, op, ep, err := a.GrowCols(keys.New(a.ColKeys().Key(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !same.ColKeys().Equal(a.ColKeys()) || op != nil || ep == nil && a.ColKeys().Key(0) != same.ColKeys().Key(0) {
		t.Error("subset GrowCols should keep a's column set")
	}
}

func TestAppendUnitRowsAndIncidencePair(t *testing.T) {
	ops := semiring.PlusTimes()
	mk := func() (*Array[float64], *Array[float64]) {
		eout := FromTriples([]Triple[float64]{
			{Row: "e01", Col: "a", Val: 1}, {Row: "e02", Col: "b", Val: 1},
		}, nil)
		ein := FromTriples([]Triple[float64]{
			{Row: "e01", Col: "b", Val: 1}, {Row: "e02", Col: "c", Val: 1},
		}, nil)
		return eout, ein
	}
	eout, ein := mk()
	// Unit rows on one side.
	pos, ok := eout.ColKeys().Index("a")
	if !ok {
		t.Fatal("missing col")
	}
	grown, err := eout.AppendUnitRows([]string{"e03", "e04"}, []int{pos, pos}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := grown.At("e04", "a"); !ok || v != 3 {
		t.Fatalf("unit row lost: %v %v", v, ok)
	}
	if _, err := grown.AppendUnitRows([]string{"e03"}, []int{pos}, []float64{1}); err == nil {
		t.Error("stale key accepted")
	}

	// The pair append matches two independent AppendRows.
	eout, ein = mk()
	wantOut, wantIn := mk()
	bo, bi := mk2Batch()
	wo, err := wantOut.AppendRows(bo, false)
	if err != nil {
		t.Fatal(err)
	}
	wi, err := wantIn.AppendRows(bi, false)
	if err != nil {
		t.Fatal(err)
	}
	po, _ := eout.ColKeys().Index("b")
	pi, _ := ein.ColKeys().Index("c")
	go2, gi2, err := AppendIncidencePair(eout, ein, []string{"e03"}, []int{po}, []int{pi}, []float64{5}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if !go2.Equal(wo, eqFloat) || !gi2.Equal(wi, eqFloat) {
		t.Error("pair append != general append")
	}
	if !go2.RowKeys().Equal(gi2.RowKeys()) {
		t.Error("pair append broke the shared-row invariant")
	}
	// And the grown pair keeps folding correctly through the engine path.
	if _, err := Correlate(go2, gi2, ops, MulOptions{}); err != nil {
		t.Fatal(err)
	}
}

// mk2Batch is the delta for the pair-append oracle: edge e03 with
// Eout(e03,b)=5, Ein(e03,c)=7.
func mk2Batch() (*Array[float64], *Array[float64]) {
	return FromTriples([]Triple[float64]{{Row: "e03", Col: "b", Val: 5}}, nil),
		FromTriples([]Triple[float64]{{Row: "e03", Col: "c", Val: 7}}, nil)
}
