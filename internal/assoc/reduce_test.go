package assoc

import (
	"fmt"
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func TestConvertPreservesKeysAndPattern(t *testing.T) {
	a := tiny()
	s := Convert(a, func(r, c string, v float64) string { return value.FormatFloat(v) })
	if !SamePattern(a, s) {
		t.Fatal("Convert changed the pattern")
	}
	if got, ok := s.At("r2", "c2"); !ok || got != "3" {
		t.Errorf("converted value = %q,%v", got, ok)
	}
	// Key sets are shared, not rebuilt: rows with no entries would
	// survive conversion (exercised via Prune-then-Convert).
	empty := a.Prune(func(float64) bool { return true })
	ce := Convert(empty, func(_, _ string, v float64) int { return int(v) })
	if ce.RowKeys().Len() != 2 || ce.NNZ() != 0 {
		t.Error("Convert dropped keys of empty array")
	}
}

func TestReduceRows(t *testing.T) {
	a := tiny() // r1: 1,2 ; r2: 3
	sums := ReduceRows(a, func(x, y float64) float64 { return x + y })
	if sums["r1"] != 3 || sums["r2"] != 3 {
		t.Errorf("row sums = %v", sums)
	}
	// Fold order is ascending column key: with a non-commutative fold
	// the first column's value wins.
	firsts := ReduceRows(a, func(x, y float64) float64 { return x })
	if firsts["r1"] != 1 {
		t.Errorf("non-commutative row fold = %v", firsts)
	}
	// Empty rows are absent.
	pruned := a.Prune(func(v float64) bool { return v < 3 })
	sums = ReduceRows(pruned, func(x, y float64) float64 { return x + y })
	if _, ok := sums["r1"]; ok {
		t.Error("emptied row should be absent from ReduceRows")
	}
}

func TestReduceAll(t *testing.T) {
	a := tiny()
	total, any := ReduceAll(a, func(x, y float64) float64 { return x + y })
	if !any || total != 6 {
		t.Errorf("ReduceAll = %v,%v", total, any)
	}
	empty := a.Prune(func(float64) bool { return true })
	if _, any := ReduceAll(empty, func(x, y float64) float64 { return x + y }); any {
		t.Error("empty array reported entries")
	}
}

func TestMatrixAccessor(t *testing.T) {
	a := tiny()
	if a.Matrix().NNZ() != a.NNZ() {
		t.Error("Matrix() disagrees with NNZ")
	}
}

func TestMulMaskedAssocLevel(t *testing.T) {
	// Square symmetric array; mask = the array itself.
	p := FromTriples([]Triple[float64]{
		{Row: "a", Col: "b", Val: 1}, {Row: "b", Col: "a", Val: 1},
		{Row: "a", Col: "c", Val: 1}, {Row: "c", Col: "a", Val: 1},
		{Row: "b", Col: "c", Val: 1}, {Row: "c", Col: "b", Val: 1},
	}, nil)
	ops := semiring.PlusTimes()
	masked, err := MulMasked(p, p, p, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle abc: every entry of A² on the mask is 1 (one wedge).
	if masked.NNZ() != 6 {
		t.Errorf("masked nnz = %d", masked.NNZ())
	}
	total, _ := ReduceAll(masked, ops.Add)
	if total != 6 {
		t.Errorf("wedge total = %v, want 6 (one triangle ×6)", total)
	}

	// Misaligned mask keys are rejected.
	badMask := FromTriples([]Triple[float64]{{Row: "a", Col: "z", Val: 1}}, nil)
	if _, err := MulMasked(p, p, badMask, ops); err == nil {
		t.Error("misaligned mask accepted")
	}
	// Misaligned shared dimension is rejected.
	q := FromTriples([]Triple[float64]{{Row: "x", Col: "y", Val: 1}}, nil)
	if _, err := MulMasked(p, q, p, ops); err == nil {
		t.Error("misaligned operands accepted")
	}
}

func TestMulMaskedOptParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var triples, mtriples []Triple[float64]
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if r.Float64() < 0.2 {
				triples = append(triples, Triple[float64]{
					Row: fmt.Sprintf("k%02d", i), Col: fmt.Sprintf("k%02d", j),
					Val: float64(1 + r.Intn(9)),
				})
			}
			if r.Float64() < 0.3 {
				mtriples = append(mtriples, Triple[float64]{
					Row: fmt.Sprintf("k%02d", i), Col: fmt.Sprintf("k%02d", j), Val: 1,
				})
			}
		}
	}
	p := FromTriples(triples, nil)
	mask, err := FromTriples(mtriples, nil).Reindex(p.RowKeys(), p.ColKeys())
	if err != nil {
		t.Fatal(err)
	}
	ops := semiring.PlusTimes()
	serial, err := MulMasked(p, p, mask, ops)
	if err != nil {
		t.Fatal(err)
	}
	// FlopFloor -1 forces the parallel path even on this small product.
	par, err := MulMaskedOpt(p, p, mask, ops, MulOptions{Workers: 4, FlopFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(par, value.Float64Equal) {
		t.Fatal("MulMaskedOpt(Workers:4) differs from serial MulMasked")
	}
	// The masked product has no alternative kernels to ablate.
	if _, err := MulMaskedOpt(p, p, mask, ops, MulOptions{Kernel: "hash"}); err == nil {
		t.Error("kernel ablation accepted for masked multiplication")
	}
}
