// Package assoc implements the paper's central data structure: the
// associative array A : K1×K2 → V of Definition I.1, a map from pairs
// of keys drawn from finite totally-ordered string key sets to values
// in V, stored sparsely (only non-zero entries are materialized).
//
// The public surface follows D4M's Assoc semantics: arrays are built
// from (row, col, value) triples, sliced with key selectors, transposed,
// combined element-wise, and multiplied with a caller-chosen operator
// pair ⊕.⊗ (Definition I.3). Arrays are immutable after construction —
// every operation returns a new Array — and safe for concurrent use.
package assoc

import (
	"fmt"
	"sort"

	"adjarray/internal/keys"
	"adjarray/internal/sparse"
)

// Array is an associative array over string keys with values of type V.
// The zero value is not usable; construct with NewBuilder, FromTriples,
// or the operations on existing Arrays.
type Array[V any] struct {
	rows *keys.Set
	cols *keys.Set
	mat  *sparse.CSR[V]
}

// Triple is one stored (rowKey, colKey, value) entry.
type Triple[V any] struct {
	Row, Col string
	Val      V
}

// FromTriples builds an Array from entries. Duplicate (row, col) pairs
// are folded left-to-right in slice order with combine; nil combine
// keeps the last write (D4M overwrite semantics). Key sets are the sets
// of distinct keys that appear.
func FromTriples[V any](ts []Triple[V], combine func(V, V) V) *Array[V] {
	rk := make([]string, 0, len(ts))
	ck := make([]string, 0, len(ts))
	for _, t := range ts {
		rk = append(rk, t.Row)
		ck = append(ck, t.Col)
	}
	rows := keys.New(rk...)
	cols := keys.New(ck...)
	coo := sparse.NewCOO[V](rows.Len(), cols.Len())
	for _, t := range ts {
		ri, _ := rows.Index(t.Row)
		ci, _ := cols.Index(t.Col)
		coo.MustAppend(ri, ci, t.Val)
	}
	return &Array[V]{rows: rows, cols: cols, mat: coo.ToCSR(combine)}
}

// New wraps explicit key sets and a matching sparse matrix. The matrix
// dimensions must equal the key-set sizes.
func New[V any](rows, cols *keys.Set, mat *sparse.CSR[V]) (*Array[V], error) {
	if mat.Rows() != rows.Len() || mat.Cols() != cols.Len() {
		return nil, fmt.Errorf("assoc: matrix %d×%d does not match key sets %d×%d",
			mat.Rows(), mat.Cols(), rows.Len(), cols.Len())
	}
	return &Array[V]{rows: rows, cols: cols, mat: mat}, nil
}

// Builder accumulates triples for an Array.
type Builder[V any] struct {
	ts      []Triple[V]
	combine func(V, V) V
}

// NewBuilder creates a Builder. combine folds duplicate coordinates in
// insertion order; nil keeps the last write.
func NewBuilder[V any](combine func(V, V) V) *Builder[V] {
	return &Builder[V]{combine: combine}
}

// Set appends one entry.
func (b *Builder[V]) Set(row, col string, v V) *Builder[V] {
	b.ts = append(b.ts, Triple[V]{Row: row, Col: col, Val: v})
	return b
}

// Len returns the number of staged triples.
func (b *Builder[V]) Len() int { return len(b.ts) }

// Build constructs the Array.
func (b *Builder[V]) Build() *Array[V] { return FromTriples(b.ts, b.combine) }

// RowKeys returns the ordered row key set.
func (a *Array[V]) RowKeys() *keys.Set { return a.rows }

// ColKeys returns the ordered column key set.
func (a *Array[V]) ColKeys() *keys.Set { return a.cols }

// NNZ returns the number of stored entries.
func (a *Array[V]) NNZ() int { return a.mat.NNZ() }

// Shape returns (number of row keys, number of column keys).
func (a *Array[V]) Shape() (int, int) { return a.rows.Len(), a.cols.Len() }

// Matrix exposes the underlying CSR (read-only by convention).
func (a *Array[V]) Matrix() *sparse.CSR[V] { return a.mat }

// At returns the value stored at (row, col) and whether an entry exists.
func (a *Array[V]) At(row, col string) (V, bool) {
	var zero V
	ri, ok := a.rows.Index(row)
	if !ok {
		return zero, false
	}
	ci, ok := a.cols.Index(col)
	if !ok {
		return zero, false
	}
	return a.mat.At(ri, ci)
}

// Triples returns all stored entries in row-major key order.
func (a *Array[V]) Triples() []Triple[V] {
	out := make([]Triple[V], 0, a.mat.NNZ())
	a.mat.Iterate(func(i, j int, v V) {
		out = append(out, Triple[V]{Row: a.rows.Key(i), Col: a.cols.Key(j), Val: v})
	})
	return out
}

// Iterate visits stored entries in row-major key order.
func (a *Array[V]) Iterate(fn func(row, col string, v V)) {
	a.mat.Iterate(func(i, j int, v V) {
		fn(a.rows.Key(i), a.cols.Key(j), v)
	})
}

// IterateUntil visits stored entries in row-major key order until fn
// returns false, and reports whether the sweep ran to completion — the
// early-exit path for bounded reads (a server answering ?limit=1 must
// not walk every entry).
func (a *Array[V]) IterateUntil(fn func(row, col string, v V) bool) bool {
	return a.mat.IterateUntil(func(i, j int, v V) bool {
		return fn(a.rows.Key(i), a.cols.Key(j), v)
	})
}

// Equal reports whether two arrays have identical key sets and entries.
func (a *Array[V]) Equal(b *Array[V], eq func(V, V) bool) bool {
	return a.rows.Equal(b.rows) && a.cols.Equal(b.cols) && sparse.Equal(a.mat, b.mat, eq)
}

// SamePattern reports whether two arrays have identical key sets and
// non-zero structure, regardless of values — the sense in which the
// paper says different semirings "preserve the pattern of edges".
func SamePattern[V, W any](a *Array[V], b *Array[W]) bool {
	return a.rows.Equal(b.rows) && a.cols.Equal(b.cols) && sparse.SamePattern(a.mat, b.mat)
}

// Map applies fn to every stored entry, preserving the pattern.
func (a *Array[V]) Map(fn func(row, col string, v V) V) *Array[V] {
	m := a.mat.Map(func(i, j int, v V) V {
		return fn(a.rows.Key(i), a.cols.Key(j), v)
	})
	return &Array[V]{rows: a.rows, cols: a.cols, mat: m}
}

// Prune drops entries isZero reports as zero, keeping key sets intact.
func (a *Array[V]) Prune(isZero func(V) bool) *Array[V] {
	return &Array[V]{rows: a.rows, cols: a.cols, mat: a.mat.Prune(isZero)}
}

// SubRef selects the sub-array with rows matching rowSel and columns
// matching colSel (nil selectors mean "all") — the paper's
// E(:, 'Genre|A : Genre|Z') notation from Figures 1–2. Rows and columns
// with no selected key are dropped from the key sets but untouched
// entries keep their values.
func (a *Array[V]) SubRef(rowSel, colSel keys.Selector) *Array[V] {
	subRows, rowIdx := a.rows.Select(rowSel)
	subCols, colIdx := a.cols.Select(colSel)
	m, err := a.mat.ExtractRows(rowIdx)
	if err != nil {
		panic(fmt.Sprintf("assoc: internal extract rows: %v", err)) // indices come from Select
	}
	m, err = m.ExtractCols(colIdx)
	if err != nil {
		panic(fmt.Sprintf("assoc: internal extract cols: %v", err))
	}
	return &Array[V]{rows: subRows, cols: subCols, mat: m}
}

// SubRefExpr is SubRef with D4M selector strings (see keys.Parse).
func (a *Array[V]) SubRefExpr(rowExpr, colExpr string) (*Array[V], error) {
	rs, err := keys.Parse(rowExpr)
	if err != nil {
		return nil, fmt.Errorf("assoc: row selector: %w", err)
	}
	cs, err := keys.Parse(colExpr)
	if err != nil {
		return nil, fmt.Errorf("assoc: col selector: %w", err)
	}
	return a.SubRef(rs, cs), nil
}

// Transpose returns Aᵀ (Definition I.2): row and column key sets swap.
func (a *Array[V]) Transpose() *Array[V] {
	return &Array[V]{rows: a.cols, cols: a.rows, mat: a.mat.Transpose()}
}

// TransposeParallel is Transpose with the storage scatter parallelized
// across workers (< 1 selects GOMAXPROCS); identical result.
func (a *Array[V]) TransposeParallel(workers int) *Array[V] {
	return &Array[V]{rows: a.cols, cols: a.rows, mat: sparse.TransposeParallel(a.mat, workers)}
}

// RowDegrees returns the stored-entry count per row key.
func (a *Array[V]) RowDegrees() map[string]int {
	out := make(map[string]int, a.rows.Len())
	for i := 0; i < a.rows.Len(); i++ {
		out[a.rows.Key(i)] = a.mat.RowNNZ(i)
	}
	return out
}

// ColDegrees returns the stored-entry count per column key.
func (a *Array[V]) ColDegrees() map[string]int {
	out := make(map[string]int, a.cols.Len())
	t := a.mat.Transpose()
	for j := 0; j < a.cols.Len(); j++ {
		out[a.cols.Key(j)] = t.RowNNZ(j)
	}
	return out
}

// Reindex embeds the array into larger (or reordered) key sets: entries
// keep their (rowKey, colKey) coordinates, mapped into the new sets.
// Every existing key must be present in the new sets.
func (a *Array[V]) Reindex(newRows, newCols *keys.Set) (*Array[V], error) {
	coo := sparse.NewCOO[V](newRows.Len(), newCols.Len())
	var missing string
	a.mat.Iterate(func(i, j int, v V) {
		ri, ok := newRows.Index(a.rows.Key(i))
		if !ok {
			missing = "row " + a.rows.Key(i)
			return
		}
		ci, ok := newCols.Index(a.cols.Key(j))
		if !ok {
			missing = "col " + a.cols.Key(j)
			return
		}
		coo.MustAppend(ri, ci, v)
	})
	if missing != "" {
		return nil, fmt.Errorf("assoc: Reindex target sets missing %s", missing)
	}
	return &Array[V]{rows: newRows, cols: newCols, mat: coo.ToCSR(nil)}, nil
}

// Convert maps stored values through f into a new value type, keeping
// key sets and pattern. Unlike rebuilding from Triples, rows/columns
// whose entries all vanish elsewhere keep their keys.
func Convert[V, W any](a *Array[V], f func(row, col string, v V) W) *Array[W] {
	m := sparse.Convert(a.mat, func(i, j int, v V) W {
		return f(a.rows.Key(i), a.cols.Key(j), v)
	})
	return &Array[W]{rows: a.rows, cols: a.cols, mat: m}
}

// ReduceRows folds each row's entries with ⊕ in ascending column-key
// order, returning a map from row key to folded value. Rows with no
// entries are absent from the map.
func ReduceRows[V any](a *Array[V], add func(V, V) V) map[string]V {
	vals, nonEmpty := sparse.ReduceRows(a.mat, add)
	out := make(map[string]V)
	for i, ok := range nonEmpty {
		if ok {
			out[a.rows.Key(i)] = vals[i]
		}
	}
	return out
}

// ReduceAll folds every stored entry with ⊕ in row-major key order,
// returning the fold and whether any entry existed.
func ReduceAll[V any](a *Array[V], add func(V, V) V) (V, bool) {
	var acc V
	any := false
	a.mat.Iterate(func(_, _ int, v V) {
		if !any {
			acc = v
			any = true
		} else {
			acc = add(acc, v)
		}
	})
	return acc, any
}

// SortedTripleStrings renders triples as "row|col -> val" lines, sorted;
// a convenience for golden tests and debug dumps.
func SortedTripleStrings[V any](a *Array[V], format func(V) string) []string {
	ts := a.Triples()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = fmt.Sprintf("%s|%s -> %s", t.Row, t.Col, format(t.Val))
	}
	sort.Strings(out)
	return out
}
