package assoc

import (
	"fmt"

	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/sparse"
)

// MulOptions tunes array multiplication.
type MulOptions struct {
	// Workers selects the parallel two-phase kernel when > 1 (or < 0
	// for GOMAXPROCS); 0 or 1 runs serially.
	Workers int
	// Grain is the parallel row-block size; <= 0 picks automatically.
	Grain int
	// FlopFloor is the symbolic flop count below which a parallel
	// multiplication falls back to the serial two-phase kernel (the
	// result is identical; goroutine overhead is not). 0 selects
	// sparse.DefaultParallelFlopFloor; negative disables the fallback —
	// the ablation/conformance setting that forces the parallel code
	// path even on tiny products.
	FlopFloor int64
	// Kernel optionally forces a specific SpGEMM variant for ablation:
	// "twophase" (the default symbolic/numeric engine), "gustavson",
	// "hash", "merge".
	//
	// Kernel and Workers interact: the parallel path always runs the
	// two-phase engine, so requesting parallelism together with any
	// other kernel is a conflicting ablation and Mul returns an error
	// rather than silently dropping the kernel choice. "" and
	// "twophase" compose with any Workers value.
	Kernel string
}

// Mul computes C = A ⊕.⊗ B (Definition I.3): C(k1,k2) = ⊕_k A(k1,k)
// ⊗ B(k,k2), with the fold running in ascending key order over the
// shared dimension.
//
// Key alignment follows D4M semantics: the shared dimension is the
// intersection of A's column keys and B's row keys (keys present on only
// one side contribute nothing — their partner entries are zero). The
// result has A's row keys × B's column keys. Entries that fold to the
// algebra's zero are pruned.
func Mul[V any](a, b *Array[V], ops semiring.Ops[V], opt MulOptions) (*Array[V], error) {
	am, bm := a.mat, b.mat
	if !a.cols.Equal(b.rows) {
		shared := a.cols.Intersect(b.rows)
		// Extract only the side whose keys actually shrink: when the
		// shared dimension already is one side's full key set (the
		// common case — e.g. incidence arrays sharing their edge keys
		// with a few extras on one side), that side's matrix is used
		// as-is and no copy is made.
		if !shared.Equal(a.cols) {
			_, aColIdx := a.cols.Select(keys.InSet{Set: shared})
			var err error
			am, err = am.ExtractCols(aColIdx)
			if err != nil {
				return nil, fmt.Errorf("assoc: align lhs: %w", err)
			}
		}
		if !shared.Equal(b.rows) {
			_, bRowIdx := b.rows.Select(keys.InSet{Set: shared})
			var err error
			bm, err = bm.ExtractRows(bRowIdx)
			if err != nil {
				return nil, fmt.Errorf("assoc: align rhs: %w", err)
			}
		}
	}
	var cm *sparse.CSR[V]
	var err error
	switch {
	case opt.Workers > 1 || opt.Workers < 0:
		if opt.Kernel != "" && opt.Kernel != "twophase" {
			return nil, fmt.Errorf("assoc: kernel %q requires serial execution; the parallel path (Workers=%d) always runs the two-phase engine — set Workers to 0 or 1 for kernel ablation",
				opt.Kernel, opt.Workers)
		}
		cm, err = sparse.MulParallelOpt(am, bm, ops, opt.Workers, opt.Grain, opt.FlopFloor)
	case opt.Kernel == "hash":
		cm, err = sparse.MulHash(am, bm, ops)
	case opt.Kernel == "merge":
		cm, err = sparse.MulMerge(am, bm, ops)
	case opt.Kernel == "gustavson":
		cm, err = sparse.MulGustavson(am, bm, ops)
	case opt.Kernel == "" || opt.Kernel == "twophase":
		cm, err = sparse.MulTwoPhase(am, bm, ops)
	default:
		return nil, fmt.Errorf("assoc: unknown kernel %q", opt.Kernel)
	}
	if err != nil {
		return nil, err
	}
	return &Array[V]{rows: a.rows, cols: b.cols, mat: cm}, nil
}

// Correlate computes AᵀB — the paper's fundamental correlation operation
// (Figures 3 and 5 captions: "this correlation is performed using the
// transpose operation T and the array multiplication ⊕.⊗"). The result
// relates A's column keys to B's column keys through the shared row keys.
// When opt requests parallelism, the transpose runs on the parallel
// scatter kernel too.
func Correlate[V any](a, b *Array[V], ops semiring.Ops[V], opt MulOptions) (*Array[V], error) {
	var at *Array[V]
	if opt.Workers > 1 || opt.Workers < 0 {
		at = a.TransposeParallel(opt.Workers)
	} else {
		at = a.Transpose()
	}
	return Mul(at, b, ops, opt)
}

// Add computes the element-wise A ⊕ B over the union of key sets:
// entries present on one side only are kept unchanged (0 ⊕ v = v).
func Add[V any](a, b *Array[V], ops semiring.Ops[V]) (*Array[V], error) {
	ar, br, err := alignUnion(a, b)
	if err != nil {
		return nil, err
	}
	m, err := sparse.EWiseAdd(ar.mat, br.mat, ops)
	if err != nil {
		return nil, err
	}
	return &Array[V]{rows: ar.rows, cols: ar.cols, mat: m}, nil
}

// ElementMul computes the element-wise A ⊗ B over the union key space
// (the pattern intersection of entries; a missing operand annihilates).
func ElementMul[V any](a, b *Array[V], ops semiring.Ops[V]) (*Array[V], error) {
	ar, br, err := alignUnion(a, b)
	if err != nil {
		return nil, err
	}
	m, err := sparse.EWiseMul(ar.mat, br.mat, ops)
	if err != nil {
		return nil, err
	}
	return &Array[V]{rows: ar.rows, cols: ar.cols, mat: m}, nil
}

// alignUnion embeds both operands into the union key space, with a fast
// path when they are already aligned. Alignment is pure integer-index
// embedding (keys.UnionOffsets + sparse.Embed): no string hashing, no
// COO re-sort, and values are never copied.
func alignUnion[V any](a, b *Array[V]) (*Array[V], *Array[V], error) {
	if a.rows.Equal(b.rows) && a.cols.Equal(b.cols) {
		return a, b, nil
	}
	rows, aRowPos, bRowPos := a.rows.UnionOffsets(b.rows)
	cols, aColPos, bColPos := a.cols.UnionOffsets(b.cols)
	am, err := sparse.Embed(a.mat, aRowPos, aColPos, rows.Len(), cols.Len())
	if err != nil {
		return nil, nil, fmt.Errorf("assoc: align lhs: %w", err)
	}
	bm, err := sparse.Embed(b.mat, bRowPos, bColPos, rows.Len(), cols.Len())
	if err != nil {
		return nil, nil, fmt.Errorf("assoc: align rhs: %w", err)
	}
	return &Array[V]{rows: rows, cols: cols, mat: am}, &Array[V]{rows: rows, cols: cols, mat: bm}, nil
}

// MulMasked computes (A ⊕.⊗ B) ∘ pattern(M) without materializing the
// full product — GraphBLAS-style masked multiplication. The operands
// must already be key-aligned: A's column keys equal B's row keys, and
// M's key sets equal A's rows × B's columns.
func MulMasked[V, M any](a, b *Array[V], mask *Array[M], ops semiring.Ops[V]) (*Array[V], error) {
	return MulMaskedOpt(a, b, mask, ops, MulOptions{})
}

// MulMaskedOpt is MulMasked with kernel tuning: Workers > 1 (or < 0 for
// GOMAXPROCS) runs the flop-balanced parallel masked kernel, bit-identical
// to the serial one. Grain and FlopFloor behave as in Mul; Kernel is
// rejected — the masked product has exactly one serial and one parallel
// engine.
func MulMaskedOpt[V, M any](a, b *Array[V], mask *Array[M], ops semiring.Ops[V], opt MulOptions) (*Array[V], error) {
	if !a.cols.Equal(b.rows) {
		return nil, fmt.Errorf("assoc: MulMasked requires aligned shared keys")
	}
	if !mask.rows.Equal(a.rows) || !mask.cols.Equal(b.cols) {
		return nil, fmt.Errorf("assoc: MulMasked mask keys must be rows(A)×cols(B)")
	}
	if opt.Kernel != "" && opt.Kernel != "twophase" {
		return nil, fmt.Errorf("assoc: masked multiplication has no %q kernel", opt.Kernel)
	}
	var m *sparse.CSR[V]
	var err error
	if opt.Workers > 1 || opt.Workers < 0 {
		m, err = sparse.MulMaskedParallel(a.mat, b.mat, mask.mat, ops, opt.Workers, opt.Grain, opt.FlopFloor)
	} else {
		m, err = sparse.MulMasked(a.mat, b.mat, mask.mat, ops)
	}
	if err != nil {
		return nil, err
	}
	return &Array[V]{rows: a.rows, cols: b.cols, mat: m}, nil
}

// MulDense computes A ⊕.⊗ B by the literal Definition I.3, folding over
// EVERY shared key including structural zeros (materialized as ops.Zero).
// This is the mathematical ground truth used by the theorem machinery;
// see sparse.MulDense for why it differs from Mul exactly when the
// Theorem II.1 conditions fail. Key alignment: the shared dimension is
// the union in this case — absent keys contribute explicit zeros, which
// is precisely what the theorem's counterexamples need.
func MulDense[V any](a, b *Array[V], ops semiring.Ops[V]) (*Array[V], error) {
	shared := a.cols.Union(b.rows)
	am, err := a.Reindex(a.rows, shared)
	if err != nil {
		return nil, err
	}
	bm, err := b.Reindex(shared, b.cols)
	if err != nil {
		return nil, err
	}
	cm, err := sparse.MulDense(am.mat, bm.mat, ops)
	if err != nil {
		return nil, err
	}
	return &Array[V]{rows: a.rows, cols: b.cols, mat: cm}, nil
}
