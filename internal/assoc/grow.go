package assoc

import (
	"fmt"

	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/sparse"
)

// Grow/merge entry points. The batch constructors (FromTriples, New)
// build whole arrays; a maintained adjacency view instead grows an
// append-only incidence log row batch by row batch and ⊕-folds small
// delta products into a large accumulator. These paths reuse existing
// key sets and CSR backing wherever possible instead of re-sorting and
// re-allocating per batch (see internal/stream for the driver).

// AppendRows stacks extra's rows below a's. extra's row keys must all
// sort strictly after a's last row key — the append-only discipline of a
// monotone edge-key log, which keeps the combined key set sorted without
// a re-sort and keeps the row order equal to arrival order (so a later
// sequential fold over rows replays contributions in ingest order).
//
// Column key sets may differ; the result's column set is the union, with
// both sides' column indices remapped by offset (no string hashing).
// When reuse is true, a's row-key and CSR backing grow with append
// semantics: only the latest array in an append chain may be extended
// further, but earlier arrays in the chain remain valid reads.
func (a *Array[V]) AppendRows(extra *Array[V], reuse bool) (*Array[V], error) {
	if extra.rows.Len() == 0 {
		return a, nil
	}
	rows, err := a.rows.AppendSorted(extra.rows.Keys()...)
	if err != nil {
		return nil, fmt.Errorf("assoc: AppendRows: %w", err)
	}
	cols, aPos, ePos := unionFast(a.cols, extra.cols)
	am, err := sparse.Embed(a.mat, nil, aPos, a.rows.Len(), cols.Len())
	if err != nil {
		return nil, fmt.Errorf("assoc: AppendRows lhs embed: %w", err)
	}
	em, err := sparse.Embed(extra.mat, nil, ePos, extra.rows.Len(), cols.Len())
	if err != nil {
		return nil, fmt.Errorf("assoc: AppendRows rhs embed: %w", err)
	}
	// Reuse is only sound when the left embed shared a's storage: a
	// column remap already copied colIdx, so appending to it cannot
	// clobber a's backing, but it also means there is nothing to reuse.
	m, err := sparse.AppendRows(am, em, reuse && aPos == nil)
	if err != nil {
		return nil, fmt.Errorf("assoc: AppendRows: %w", err)
	}
	return &Array[V]{rows: rows, cols: cols, mat: m}, nil
}

// AppendUnitRows appends one single-entry row per element of rowKeys:
// row rowKeys[i] holds value vals[i] at column position colPos[i] of a's
// existing column key set. It is the fused fast path of AppendRows for
// incidence-log ingest where the batch's vertices are already resolved
// against the log's column set — no delta array is constructed and the
// column set is shared untouched. rowKeys must be strictly increasing
// and sort after a's last row key; backing grows with append semantics
// (only the latest array in a chain may be extended further).
func (a *Array[V]) AppendUnitRows(rowKeys []string, colPos []int, vals []V) (*Array[V], error) {
	rows, err := a.rows.AppendSorted(rowKeys...)
	if err != nil {
		return nil, fmt.Errorf("assoc: AppendUnitRows: %w", err)
	}
	m, err := sparse.AppendUnitRows(a.mat, colPos, vals, true)
	if err != nil {
		return nil, fmt.Errorf("assoc: AppendUnitRows: %w", err)
	}
	return &Array[V]{rows: rows, cols: a.cols, mat: m}, nil
}

// GrowCols returns a with its column key set grown to the union with
// extra, plus the position maps of the growth: oldPos maps a's current
// column indices into the union (nil = identity — a's columns kept
// their indices), extraPos maps extra's indices (nil = identity).
// Values are never copied; when new columns interleave with existing
// ones the stored column indices are remapped (O(nnz)). The union is a
// straight merge sweep — no hashing — so growing by a small batch
// against a large set costs O(|a.cols| + |extra|) comparisons.
func (a *Array[V]) GrowCols(extra *keys.Set) (grown *Array[V], oldPos, extraPos []int, err error) {
	cols, aPos, ePos := a.cols.UnionOffsets(extra)
	m, err := sparse.Embed(a.mat, nil, aPos, a.rows.Len(), cols.Len())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("assoc: GrowCols: %w", err)
	}
	return &Array[V]{rows: a.rows, cols: cols, mat: m}, aPos, ePos, nil
}

// AppendIncidencePair appends matched unit rows to an incidence-array
// pair: row rowKeys[i] gains value outs[i] at column position outPos[i]
// of eout and value ins[i] at inPos[i] of ein. The pair must share its
// edge-key row set (the incidence-log invariant), and after the call it
// shares one grown row chain — the edge keys are stored once, not once
// per side, and the append-only discipline is validated once.
func AppendIncidencePair[V any](eout, ein *Array[V], rowKeys []string, outPos, inPos []int, outs, ins []V) (*Array[V], *Array[V], error) {
	if !eout.rows.Equal(ein.rows) {
		return nil, nil, fmt.Errorf("assoc: AppendIncidencePair arrays disagree on edge keys")
	}
	rows, err := eout.rows.AppendSorted(rowKeys...)
	if err != nil {
		return nil, nil, fmt.Errorf("assoc: AppendIncidencePair: %w", err)
	}
	mo, err := sparse.AppendUnitRows(eout.mat, outPos, outs, true)
	if err != nil {
		return nil, nil, fmt.Errorf("assoc: AppendIncidencePair out: %w", err)
	}
	mi, err := sparse.AppendUnitRows(ein.mat, inPos, ins, true)
	if err != nil {
		return nil, nil, fmt.Errorf("assoc: AppendIncidencePair in: %w", err)
	}
	return &Array[V]{rows: rows, cols: eout.cols, mat: mo}, &Array[V]{rows: rows, cols: ein.cols, mat: mi}, nil
}

// AddInto computes a ⊕= b over the union key space, with a's entries on
// the left of every fold (a holds the earlier contributions). Key-set
// growth uses sorted union-with-offsets and integer-index embedding
// rather than the string-keyed Reindex path, and when inPlace is true
// and b's pattern is a subset of a's (after alignment), a's value buffer
// is folded in place and a itself returned — the zero-allocation
// steady-state of delta maintenance.
//
// Callers passing inPlace must own a exclusively: no snapshot handed out
// since a was last replaced may still be in use, and a must be treated as
// consumed after the call (its storage may have been folded into the
// result).
func AddInto[V any](a, b *Array[V], ops semiring.Ops[V], inPlace bool) (*Array[V], error) {
	return AddIntoScratch(a, b, ops, inPlace, nil)
}

// AddIntoScratch is AddInto with recycled output backing: when the merge
// cannot run in place, the result steals the scratch's slices instead of
// allocating (see sparse.MergeScratch), and — because inPlace marks a as
// consumed — a's superseded storage is donated back to the scratch for
// the next call. An accumulator merged into repeatedly (internal/stream's
// overlay, internal/shard's partial fold) therefore ping-pongs between
// two buffers and stops allocating in steady state.
func AddIntoScratch[V any](a, b *Array[V], ops semiring.Ops[V], inPlace bool, scratch *sparse.MergeScratch[V]) (*Array[V], error) {
	return AddIntoScratchWorkers(a, b, ops, inPlace, scratch, 1)
}

// AddIntoScratchWorkers is AddIntoScratch with the per-row union merge
// parallelized across merge-cost-balanced row spans when workers > 1
// (or < 0 for GOMAXPROCS) — bit-identical to the serial merge, see
// sparse.EWiseAddIntoParallel. This is the accumulator-side counterpart
// of MulOptions.Workers: a maintained adjacency large enough for merges
// to dominate folds its deltas span-parallel.
func AddIntoScratchWorkers[V any](a, b *Array[V], ops semiring.Ops[V], inPlace bool, scratch *sparse.MergeScratch[V], workers int) (*Array[V], error) {
	if b.NNZ() == 0 && b.rows.Len() == 0 && b.cols.Len() == 0 {
		return a, nil
	}
	rows, aRowPos, bRowPos := unionFast(a.rows, b.rows)
	cols, aColPos, bColPos := unionFast(a.cols, b.cols)
	am, err := sparse.Embed(a.mat, aRowPos, aColPos, rows.Len(), cols.Len())
	if err != nil {
		return nil, fmt.Errorf("assoc: AddInto lhs embed: %w", err)
	}
	bm, err := sparse.Embed(b.mat, bRowPos, bColPos, rows.Len(), cols.Len())
	if err != nil {
		return nil, fmt.Errorf("assoc: AddInto rhs embed: %w", err)
	}
	// In-place is only meaningful when the embed shared a's value
	// buffer unchanged — true whenever a's key sets already span the
	// union (Embed never copies values, so am.val IS a.mat's buffer).
	var m *sparse.CSR[V]
	if workers > 1 || workers < 0 {
		m, err = sparse.EWiseAddIntoParallel(am, bm, ops, inPlace, scratch, workers)
	} else {
		m, err = sparse.EWiseAddInto(am, bm, ops, inPlace, scratch)
	}
	if err != nil {
		return nil, err
	}
	if m == am && am.Rows() == a.mat.Rows() && am.Cols() == a.mat.Cols() && aRowPos == nil && aColPos == nil {
		// Nothing moved: the fold landed in a's own storage.
		return a, nil
	}
	if scratch != nil && inPlace && m != am {
		// The result is a full copy (scratch-backed), so consumed a's
		// old storage is free — donate it for the next merge. (When
		// m == am the result still aliases a's buffers: keep them.)
		scratch.Recycle(a.mat)
	}
	return &Array[V]{rows: rows, cols: cols, mat: m}, nil
}

// unionFast is UnionOffsets preceded by the delta-maintenance fast path:
// when b's keys all resolve in a's cached reverse index (the steady
// state — a delta touching only known keys against a long-lived set),
// the union IS a and only b's positions are produced, in O(len(b))
// instead of a sweep over both sets.
func unionFast(a, b *keys.Set) (u *keys.Set, aPos, bPos []int) {
	if p, ok := b.PositionsIn(a); ok {
		return a, nil, p
	}
	return a.UnionOffsets(b)
}

// EmbedInto returns a with its key sets grown to the given supersets
// (every existing key must appear in the new sets, in the same relative
// order they already have — supersets always satisfy this). It is the
// fast integer-index form of Reindex for the grow-only case: values are
// never copied, shared backing is reused where possible, and positions
// resolve through the supersets' cached reverse indexes — O(len(a's
// keys)) when the targets are long-lived sets (internal/stream embeds
// every batch partial into the log's stable vertex universe this way).
func (a *Array[V]) EmbedInto(rows, cols *keys.Set) (*Array[V], error) {
	rowPos, ok := a.rows.PositionsIn(rows)
	if !ok {
		return nil, fmt.Errorf("assoc: EmbedInto target rows missing keys of a")
	}
	colPos, ok := a.cols.PositionsIn(cols)
	if !ok {
		return nil, fmt.Errorf("assoc: EmbedInto target cols missing keys of a")
	}
	m, err := sparse.Embed(a.mat, rowPos, colPos, rows.Len(), cols.Len())
	if err != nil {
		return nil, err
	}
	return &Array[V]{rows: rows, cols: cols, mat: m}, nil
}
