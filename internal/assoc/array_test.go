package assoc

import (
	"strings"
	"testing"

	"adjarray/internal/keys"
	"adjarray/internal/sparse"
	"adjarray/internal/value"
)

func eqF(a, b float64) bool { return value.Float64Equal(a, b) }

// tiny builds the array
//
//	       c1 c2
//	r1      1  2
//	r2         3
func tiny() *Array[float64] {
	return FromTriples([]Triple[float64]{
		{"r1", "c1", 1}, {"r1", "c2", 2}, {"r2", "c2", 3},
	}, nil)
}

func TestFromTriplesBasics(t *testing.T) {
	a := tiny()
	if r, c := a.Shape(); r != 2 || c != 2 {
		t.Fatalf("shape %d×%d", r, c)
	}
	if a.NNZ() != 3 {
		t.Fatalf("nnz %d", a.NNZ())
	}
	if v, ok := a.At("r1", "c2"); !ok || v != 2 {
		t.Errorf("At(r1,c2) = %v,%v", v, ok)
	}
	if _, ok := a.At("r2", "c1"); ok {
		t.Error("missing entry reported present")
	}
	if _, ok := a.At("nope", "c1"); ok {
		t.Error("unknown row key reported present")
	}
	if _, ok := a.At("r1", "nope"); ok {
		t.Error("unknown col key reported present")
	}
}

func TestFromTriplesDuplicates(t *testing.T) {
	ts := []Triple[float64]{{"r", "c", 1}, {"r", "c", 5}}
	last := FromTriples(ts, nil)
	if v, _ := last.At("r", "c"); v != 5 {
		t.Errorf("overwrite semantics got %v", v)
	}
	sum := FromTriples(ts, func(a, b float64) float64 { return a + b })
	if v, _ := sum.At("r", "c"); v != 6 {
		t.Errorf("sum semantics got %v", v)
	}
}

func TestKeySetsAreSorted(t *testing.T) {
	a := FromTriples([]Triple[float64]{
		{"zebra", "x", 1}, {"apple", "y", 1},
	}, nil)
	if a.RowKeys().Key(0) != "apple" || a.RowKeys().Key(1) != "zebra" {
		t.Error("row keys not sorted")
	}
}

func TestNewValidatesShape(t *testing.T) {
	rows := keys.New("a", "b")
	cols := keys.New("x")
	if _, err := New(rows, cols, sparse.Empty[float64](2, 2)); err == nil {
		t.Error("mismatched matrix accepted")
	}
	if _, err := New(rows, cols, sparse.Empty[float64](2, 1)); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder[float64](nil)
	b.Set("r", "c", 1).Set("r", "d", 2)
	if b.Len() != 2 {
		t.Fatalf("builder len %d", b.Len())
	}
	a := b.Build()
	if a.NNZ() != 2 {
		t.Errorf("built nnz %d", a.NNZ())
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	a := tiny()
	b := FromTriples(a.Triples(), nil)
	if !a.Equal(b, eqF) {
		t.Error("Triples → FromTriples is not the identity")
	}
}

func TestIterateOrder(t *testing.T) {
	var seen []string
	tiny().Iterate(func(r, c string, v float64) {
		seen = append(seen, r+"/"+c)
	})
	want := []string{"r1/c1", "r1/c2", "r2/c2"}
	if strings.Join(seen, " ") != strings.Join(want, " ") {
		t.Errorf("Iterate order %v, want %v", seen, want)
	}
}

func TestIterateUntilEarlyExit(t *testing.T) {
	var seen []string
	done := tiny().IterateUntil(func(r, c string, v float64) bool {
		seen = append(seen, r+"/"+c)
		return len(seen) < 2
	})
	if done {
		t.Error("IterateUntil reported completion after an early stop")
	}
	if strings.Join(seen, " ") != "r1/c1 r1/c2" {
		t.Errorf("IterateUntil visited %v, want first two entries in key order", seen)
	}
	if !tiny().IterateUntil(func(string, string, float64) bool { return true }) {
		t.Error("full sweep reported early stop")
	}
}

func TestEqualAndPattern(t *testing.T) {
	a := tiny()
	if !a.Equal(tiny(), eqF) {
		t.Error("identical arrays unequal")
	}
	different := FromTriples([]Triple[float64]{
		{"r1", "c1", 9}, {"r1", "c2", 2}, {"r2", "c2", 3},
	}, nil)
	if a.Equal(different, eqF) {
		t.Error("different values compared equal")
	}
	if !SamePattern(a, different) {
		t.Error("same pattern not recognized")
	}
	otherKeys := FromTriples([]Triple[float64]{
		{"r1", "c1", 1}, {"r1", "c3", 2}, {"r2", "c3", 3},
	}, nil)
	if SamePattern(a, otherKeys) {
		t.Error("different key sets compared same-pattern")
	}
}

func TestMapAndPrune(t *testing.T) {
	a := tiny().Map(func(r, c string, v float64) float64 { return v * 10 })
	if v, _ := a.At("r2", "c2"); v != 30 {
		t.Errorf("Map got %v", v)
	}
	p := a.Map(func(r, c string, v float64) float64 {
		if r == "r1" {
			return 0
		}
		return v
	}).Prune(func(v float64) bool { return v == 0 })
	if p.NNZ() != 1 {
		t.Errorf("Prune kept %d", p.NNZ())
	}
	// Key sets survive pruning (pattern empties, keys remain).
	if p.RowKeys().Len() != 2 {
		t.Error("Prune should not shrink key sets")
	}
}

func TestTranspose(t *testing.T) {
	a := tiny()
	at := a.Transpose()
	if v, ok := at.At("c2", "r1"); !ok || v != 2 {
		t.Errorf("Aᵀ(c2,r1) = %v,%v", v, ok)
	}
	if !at.Transpose().Equal(a, eqF) {
		t.Error("double transpose not identity")
	}
	if !at.RowKeys().Equal(a.ColKeys()) || !at.ColKeys().Equal(a.RowKeys()) {
		t.Error("transpose did not swap key sets")
	}
}

func TestSubRef(t *testing.T) {
	a := FromTriples([]Triple[float64]{
		{"t1", "Genre|Pop", 1}, {"t1", "Writer|Ann", 1},
		{"t2", "Genre|Rock", 1}, {"t2", "Writer|Bob", 1},
	}, nil)
	genres := a.SubRef(nil, keys.Prefix{P: "Genre|"})
	if genres.ColKeys().Len() != 2 || genres.NNZ() != 2 {
		t.Errorf("genre subref: %d cols, %d nnz", genres.ColKeys().Len(), genres.NNZ())
	}
	if genres.RowKeys().Len() != 2 {
		t.Error("row keys should be untouched by nil selector")
	}
	sub, err := a.SubRefExpr("t1", "Writer|*")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NNZ() != 1 {
		t.Errorf("expr subref nnz %d", sub.NNZ())
	}
	if v, ok := sub.At("t1", "Writer|Ann"); !ok || v != 1 {
		t.Errorf("expr subref content: %v %v", v, ok)
	}
	if _, err := a.SubRefExpr("", "Writer|*"); err == nil {
		t.Error("bad row selector accepted")
	}
	if _, err := a.SubRefExpr(":", "x : "); err == nil {
		t.Error("bad col selector accepted")
	}
}

func TestDegrees(t *testing.T) {
	a := tiny()
	rd := a.RowDegrees()
	if rd["r1"] != 2 || rd["r2"] != 1 {
		t.Errorf("row degrees %v", rd)
	}
	cd := a.ColDegrees()
	if cd["c1"] != 1 || cd["c2"] != 2 {
		t.Errorf("col degrees %v", cd)
	}
}

func TestReindex(t *testing.T) {
	a := tiny()
	bigger, err := a.Reindex(keys.New("r1", "r2", "r3"), keys.New("c0", "c1", "c2"))
	if err != nil {
		t.Fatal(err)
	}
	if r, c := bigger.Shape(); r != 3 || c != 3 {
		t.Fatalf("reindexed shape %d×%d", r, c)
	}
	if v, ok := bigger.At("r1", "c2"); !ok || v != 2 {
		t.Error("entry lost in reindex")
	}
	if bigger.NNZ() != a.NNZ() {
		t.Error("reindex changed nnz")
	}
	if _, err := a.Reindex(keys.New("r1"), a.ColKeys()); err == nil {
		t.Error("reindex into smaller set should fail")
	}
	if _, err := a.Reindex(a.RowKeys(), keys.New("c1")); err == nil {
		t.Error("reindex into missing col set should fail")
	}
}

func TestSortedTripleStrings(t *testing.T) {
	got := SortedTripleStrings(tiny(), value.FormatFloat)
	want := []string{"r1|c1 -> 1", "r1|c2 -> 2", "r2|c2 -> 3"}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestFormatGrid(t *testing.T) {
	s := Format(tiny(), value.FormatFloat)
	for _, want := range []string{"c1", "c2", "r1", "r2", "3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
	// r2/c1 must render blank: the line for r2 should contain no "1".
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "r2") && strings.Contains(line, "1") {
			t.Errorf("structural zero rendered: %q", line)
		}
	}
}
