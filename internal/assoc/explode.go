package assoc

import (
	"fmt"
	"strings"
)

// Table is a dense relational view — a spreadsheet or database table —
// the raw-data shape the paper's Figure 1 starts from. Cells[i][j]
// holds the value(s) of field j for record i; multiple values are
// separated by MultiSep and "" means absent.
type Table struct {
	Rows   []string   // record keys, e.g. track identifiers
	Fields []string   // column names, e.g. Artist, Genre, Writer
	Cells  [][]string // Cells[i][j]; len(Cells) == len(Rows), len(Cells[i]) == len(Fields)
}

// Validate checks the structural invariants.
func (t Table) Validate() error {
	if len(t.Cells) != len(t.Rows) {
		return fmt.Errorf("assoc: table has %d rows but %d cell rows", len(t.Rows), len(t.Cells))
	}
	for i, row := range t.Cells {
		if len(row) != len(t.Fields) {
			return fmt.Errorf("assoc: table row %d has %d cells, want %d", i, len(row), len(t.Fields))
		}
	}
	return nil
}

// ExplodeOptions configures the table → incidence-array transform.
type ExplodeOptions struct {
	// Sep joins field name and value into an exploded column key
	// ("Genre" + Sep + "Rock" → "Genre|Rock"). Default "|".
	Sep string
	// MultiSep splits multi-valued cells. Default ";".
	MultiSep string
	// Value assigns the stored value for record row and exploded
	// column field|v. Default: constant 1 ("the new value is usually 1
	// to denote the existence of an entry", Figure 1).
	Value func(row, field, v string) float64
}

func (o *ExplodeOptions) defaults() {
	if o.Sep == "" {
		o.Sep = "|"
	}
	if o.MultiSep == "" {
		o.MultiSep = ";"
	}
	if o.Value == nil {
		o.Value = func(string, string, string) float64 { return 1 }
	}
}

// Explode converts a dense table into the D4M sparse incidence view of
// Figure 1: every distinct (field, value) pair becomes its own column
// keyed "field|value", and each record stores the Value (usually 1) in
// the columns corresponding to its cell values.
func Explode(t Table, opt ExplodeOptions) (*Array[float64], error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	opt.defaults()
	b := NewBuilder[float64](nil)
	for i, rk := range t.Rows {
		for j, field := range t.Fields {
			cell := t.Cells[i][j]
			if cell == "" {
				continue
			}
			for _, v := range strings.Split(cell, opt.MultiSep) {
				v = strings.TrimSpace(v)
				if v == "" {
					continue
				}
				b.Set(rk, field+opt.Sep+v, opt.Value(rk, field, v))
			}
		}
	}
	return b.Build(), nil
}

// Implode reverses Explode: it reconstructs a dense table from an
// exploded incidence array, concatenating multiple values per field with
// multiSep in column-key order. Columns without sep are rejected.
func Implode(a *Array[float64], sep, multiSep string) (Table, error) {
	if sep == "" {
		sep = "|"
	}
	if multiSep == "" {
		multiSep = ";"
	}
	fieldSet := map[string]bool{}
	var fields []string
	for i := 0; i < a.ColKeys().Len(); i++ {
		ck := a.ColKeys().Key(i)
		f, _, ok := strings.Cut(ck, sep)
		if !ok {
			return Table{}, fmt.Errorf("assoc: column key %q has no separator %q", ck, sep)
		}
		if !fieldSet[f] {
			fieldSet[f] = true
			fields = append(fields, f)
		}
	}
	fieldIdx := make(map[string]int, len(fields))
	for n, f := range fields {
		fieldIdx[f] = n
	}
	rows := a.RowKeys().Keys()
	rowIdx := make(map[string]int, len(rows))
	for n, r := range rows {
		rowIdx[r] = n
	}
	cells := make([][]string, len(rows))
	for i := range cells {
		cells[i] = make([]string, len(fields))
	}
	a.Iterate(func(row, col string, v float64) {
		f, val, _ := strings.Cut(col, sep)
		i, j := rowIdx[row], fieldIdx[f]
		if cells[i][j] == "" {
			cells[i][j] = val
		} else {
			cells[i][j] += multiSep + val
		}
	})
	return Table{Rows: rows, Fields: fields, Cells: cells}, nil
}
