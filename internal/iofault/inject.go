package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"strings"
	"sync"
	"syscall"
)

// Kind is the failure mode an injected fault presents.
type Kind uint8

const (
	// EIO is a generic input/output error (errors.Is(err, syscall.EIO)).
	EIO Kind = iota
	// ENOSPC is disk-full (errors.Is(err, syscall.ENOSPC)).
	ENOSPC
	// ShortWrite lands a prefix of the buffer and returns an error
	// (errors.Is(err, io.ErrShortWrite)). Only meaningful on writes;
	// on other operations it degrades to EIO.
	ShortWrite
	// TornWrite lands a prefix whose own tail is scrambled — the state
	// a sector-level tear leaves — and returns EIO. Only meaningful on
	// writes; on other operations it degrades to EIO.
	TornWrite
)

func (k Kind) String() string {
	switch k {
	case EIO:
		return "eio"
	case ENOSPC:
		return "enospc"
	case ShortWrite:
		return "short-write"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// errno is the wrapped cause a Fault of this kind unwraps to.
func (k Kind) errno() error {
	switch k {
	case ENOSPC:
		return syscall.ENOSPC
	case ShortWrite:
		return io.ErrShortWrite
	default:
		return syscall.EIO
	}
}

// ErrInjected matches every error produced by the injector, letting
// tests tell an injected fault from a real one:
// errors.Is(err, iofault.ErrInjected).
var ErrInjected = errors.New("iofault: injected fault")

// Fault is the error an injected failure surfaces. It unwraps to the
// kind's errno (syscall.EIO, syscall.ENOSPC, io.ErrShortWrite) so
// callers' errors.Is checks see what a real disk would have returned.
type Fault struct {
	Op   Op
	Path string
	Kind Kind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("iofault: injected %s on %s %s", f.Kind, f.Op, f.Path)
}

func (f *Fault) Unwrap() error { return f.Kind.errno() }

func (f *Fault) Is(target error) bool { return target == ErrInjected }

// Rule is one scripted fault: fail matching operations with Kind,
// letting After of them through first and firing at most Count times.
type Rule struct {
	// Op is the operation class to match; OpAny matches all.
	Op Op
	// Path, when non-empty, must be a substring of the operation's
	// target path.
	Path string
	// Kind is the failure mode to present.
	Kind Kind
	// After lets this many matching operations through before firing.
	After int
	// Count caps how many times the rule fires; <= 0 means unlimited.
	Count int
}

// Event records one injected fault, in injection order.
type Event struct {
	Op   Op
	Path string
	Kind Kind
}

// Injector decides which operations fail. It supports scripted rules
// (Arm) and a seed-driven random schedule (ArmRandom); both are
// deterministic for a fixed sequence of operations. Safe for
// concurrent use.
type Injector struct {
	mu       sync.Mutex
	rules    []*armedRule
	rng      *rand.Rand
	rate     float64
	budget   int // remaining random faults; <0 unlimited, 0 exhausted
	rndKinds []Kind
	torn     *rand.Rand // torn-write payload scrambler, fixed seed
	events   []Event
}

type armedRule struct {
	Rule
	seen  int
	fired int
}

// New returns a disarmed injector: every operation passes through
// until Arm or ArmRandom is called.
func New() *Injector {
	return &Injector{torn: rand.New(rand.NewSource(0x7461726e))}
}

// Arm adds a scripted rule. Rules are consulted in Arm order, before
// the random schedule.
func (in *Injector) Arm(r Rule) {
	in.mu.Lock()
	in.rules = append(in.rules, &armedRule{Rule: r})
	in.mu.Unlock()
}

// ArmRandom arms a seed-driven random schedule: each operation fails
// with probability rate until budget faults have been injected
// (budget < 0 means unlimited), choosing a kind uniformly from kinds
// (all four when empty). The same seed over the same operation
// sequence injects the same faults.
func (in *Injector) ArmRandom(seed int64, rate float64, budget int, kinds ...Kind) {
	if len(kinds) == 0 {
		kinds = []Kind{EIO, ENOSPC, ShortWrite, TornWrite}
	}
	in.mu.Lock()
	in.rng = rand.New(rand.NewSource(seed))
	in.rate, in.budget = rate, budget
	in.rndKinds = append([]Kind(nil), kinds...)
	in.mu.Unlock()
}

// Clear disarms everything — the fault condition "clears" and the
// filesystem behaves healthily again. The event log survives.
func (in *Injector) Clear() {
	in.mu.Lock()
	in.rules, in.rng, in.rate, in.budget, in.rndKinds = nil, nil, 0, 0, nil
	in.mu.Unlock()
}

// Injected reports how many faults have been injected so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// Events returns a copy of the injected-fault log in injection order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// coerce degrades write-only kinds to EIO on non-write operations.
func coerce(op Op, k Kind) Kind {
	if op != OpWrite && (k == ShortWrite || k == TornWrite) {
		return EIO
	}
	return k
}

// decide reports whether op on path should fail, and with what kind.
func (in *Injector) decide(op Op, path string) (Kind, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		return in.recordLocked(op, path, coerce(op, r.Kind)), true
	}
	if in.rng != nil && in.budget != 0 && in.rng.Float64() < in.rate {
		if in.budget > 0 {
			in.budget--
		}
		k := in.rndKinds[in.rng.Intn(len(in.rndKinds))]
		return in.recordLocked(op, path, coerce(op, k)), true
	}
	return 0, false
}

func (in *Injector) recordLocked(op Op, path string, k Kind) Kind {
	in.events = append(in.events, Event{Op: op, Path: path, Kind: k})
	return k
}

// tornLen picks how many bytes of an n-byte write a torn write lands.
func (in *Injector) tornLen(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return in.torn.Intn(n + 1)
}

// scramble overwrites p with deterministic garbage.
func (in *Injector) scramble(p []byte) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.torn.Read(p) //adjlint:ignore syncerr math/rand Read never fails
}

// FaultFS routes an inner FS through an Injector. Wrap(nil, inj) wraps
// the real filesystem.
type FaultFS struct {
	inner FS
	inj   *Injector
}

// Wrap builds a FaultFS over inner (OS when nil) driven by inj.
func Wrap(inner FS, inj *Injector) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, inj: inj}
}

// Injector exposes the driving injector (to arm/clear mid-run).
func (f *FaultFS) Injector() *Injector { return f.inj }

func (f *FaultFS) fail(op Op, path string) error {
	if k, ok := f.inj.decide(op, path); ok {
		return &Fault{Op: op, Path: path, Kind: k}
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.fail(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.fail(OpOpen, dir); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f, path: file.Name()}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.fail(OpRead, name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	k, ok := f.inj.decide(OpWrite, name)
	if !ok {
		return f.inner.WriteFile(name, data, perm)
	}
	fault := &Fault{Op: OpWrite, Path: name, Kind: k}
	switch k {
	case ShortWrite, TornWrite:
		// Land a prefix, as a real interrupted write would.
		if n := len(data) / 2; n > 0 {
			f.inner.WriteFile(name, data[:n], perm) //adjlint:ignore syncerr the injected fault is the one reported
		}
	}
	return fault
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.fail(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.fail(OpMkdir, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.fail(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.fail(OpRename, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.fail(OpTruncate, name); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.fail(OpStat, name); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.fail(OpSync, dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes per-file operations through the injector.
type faultFile struct {
	inner File
	fs    *FaultFS
	path  string
}

func (f *faultFile) Name() string { return f.path }

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.fail(OpRead, f.path); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	k, ok := f.fs.inj.decide(OpWrite, f.path)
	if !ok {
		return f.inner.Write(p)
	}
	fault := &Fault{Op: OpWrite, Path: f.path, Kind: k}
	switch k {
	case ShortWrite:
		// Half the buffer lands; the caller learns about the rest.
		n := len(p) / 2
		if n > 0 {
			n, _ = f.inner.Write(p[:n]) //adjlint:ignore syncerr the injected fault is the one reported
		}
		return n, fault
	case TornWrite:
		// A random-length prefix lands and its own tail is scrambled —
		// the on-disk state a power-cut mid-sector leaves behind.
		n := f.fs.inj.tornLen(len(p))
		if n > 0 {
			torn := make([]byte, n)
			copy(torn, p[:n])
			f.fs.inj.scramble(torn[n/2:])
			n, _ = f.inner.Write(torn) //adjlint:ignore syncerr the injected fault is the one reported
		}
		return n, fault
	default:
		return 0, fault
	}
}

func (f *faultFile) Sync() error {
	if err := f.fs.fail(OpSync, f.path); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
