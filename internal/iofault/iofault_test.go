package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestScriptedRuleMatching exercises After/Count/Path/Op selection.
func TestScriptedRuleMatching(t *testing.T) {
	inj := New()
	inj.Arm(Rule{Op: OpSync, Path: "wal-", Kind: EIO, After: 1, Count: 1})
	ffs := Wrap(OS, inj)

	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0001.seg")
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass (After=1): %v", err)
	}
	err = f.Sync()
	if err == nil {
		t.Fatal("second sync should fail")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync should pass (Count=1): %v", err)
	}
	// A non-matching path never faults.
	other, err := ffs.OpenFile(filepath.Join(dir, "ckpt-x.ckpt"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open other: %v", err)
	}
	defer other.Close()
	if err := other.Sync(); err != nil {
		t.Fatalf("other path must not match the wal- rule: %v", err)
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

// TestShortAndTornWrites checks the on-disk state the write kinds
// leave behind: a short write lands a strict prefix, a torn write
// lands at most the buffer length and never grows the file past it.
func TestShortAndTornWrites(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("0123456789abcdef0123456789abcdef")

	inj := New()
	inj.Arm(Rule{Op: OpWrite, Kind: ShortWrite, Count: 1})
	ffs := Wrap(OS, inj)
	short := filepath.Join(dir, "short.bin")
	f, err := ffs.OpenFile(short, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	n, err := f.Write(payload)
	f.Close()
	if err == nil || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want short-write error, got n=%d err=%v", n, err)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write landed %d bytes, want %d", n, len(payload)/2)
	}
	got, err := os.ReadFile(short)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != string(payload[:len(payload)/2]) {
		t.Fatalf("short write landed %q, want the prefix %q", got, payload[:len(payload)/2])
	}

	inj2 := New()
	inj2.Arm(Rule{Op: OpWrite, Kind: TornWrite, Count: 1})
	ffs2 := Wrap(OS, inj2)
	torn := filepath.Join(dir, "torn.bin")
	f2, err := ffs2.OpenFile(torn, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	n2, err := f2.Write(payload)
	f2.Close()
	if err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want torn-write EIO, got n=%d err=%v", n2, err)
	}
	fi, err := os.Stat(torn)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if fi.Size() > int64(len(payload)) || fi.Size() != int64(n2) {
		t.Fatalf("torn write landed %d bytes (reported %d), want <= %d and equal", fi.Size(), n2, len(payload))
	}
}

// TestRandomScheduleDeterminism runs the same operation sequence under
// the same seed twice and expects identical fault events, and a
// different event stream under another seed (over enough operations).
func TestRandomScheduleDeterminism(t *testing.T) {
	run := func(seed int64) []Event {
		inj := New()
		inj.ArmRandom(seed, 0.3, -1)
		ffs := Wrap(OS, inj)
		dir := t.TempDir()
		for i := 0; i < 40; i++ {
			f, err := ffs.OpenFile(filepath.Join(dir, "f.bin"), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
			if err != nil {
				continue
			}
			f.Write([]byte("x")) //adjlint:ignore syncerr fault probe; errors are the expected outcome
			f.Sync()             //adjlint:ignore syncerr fault probe; errors are the expected outcome
			f.Close()
		}
		return inj.Events()
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("expected some injected faults at rate 0.3 over 120 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Kind != b[i].Kind {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRandomBudget stops injecting once the budget is spent, and
// Clear disarms entirely.
func TestRandomBudget(t *testing.T) {
	inj := New()
	inj.ArmRandom(1, 1.0, 3, EIO)
	ffs := Wrap(OS, inj)
	dir := t.TempDir()
	fails := 0
	for i := 0; i < 10; i++ {
		if _, err := ffs.Stat(dir); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("budget 3 at rate 1.0 injected %d faults", fails)
	}
	inj.Arm(Rule{Op: OpStat, Kind: ENOSPC})
	if _, err := ffs.Stat(dir); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("scripted ENOSPC expected, got %v", err)
	}
	inj.Clear()
	if _, err := ffs.Stat(dir); err != nil {
		t.Fatalf("after Clear the filesystem must be healthy: %v", err)
	}
	if inj.Injected() != 4 {
		t.Fatalf("event log must survive Clear: %d", inj.Injected())
	}
}

// TestKindCoercion degrades write-only kinds to EIO elsewhere.
func TestKindCoercion(t *testing.T) {
	inj := New()
	inj.Arm(Rule{Op: OpSync, Kind: ShortWrite})
	ffs := Wrap(OS, inj)
	err := ffs.SyncDir(t.TempDir())
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("ShortWrite on sync must coerce to EIO, got %v", err)
	}
	if errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("coerced fault must not read as a short write: %v", err)
	}
}
