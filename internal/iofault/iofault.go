// Package iofault is the storage layer's VFS seam. Every durable byte
// the WAL writer, checkpoint store, and recovery reader move goes
// through an FS; production code uses the OS passthrough, and tests or
// the crashtest harness substitute a FaultFS whose deterministic,
// seed-driven Injector can fail any single operation — EIO, ENOSPC, a
// short write, a failed fsync, a torn write — on a scripted or random
// schedule. The point is to make "durable" a tested contract instead
// of a happy-path property: the same differential discipline the
// conformance harness applies to semiring choice, applied to I/O
// faults.
package iofault

import (
	"fmt"
	"io/fs"
	"os"
)

// Op classifies a filesystem operation for fault matching.
type Op uint8

const (
	// OpAny matches every operation in a Rule.
	OpAny Op = iota
	// OpOpen covers OpenFile and CreateTemp.
	OpOpen
	// OpRead covers File.Read and ReadFile.
	OpRead
	// OpWrite covers File.Write and WriteFile.
	OpWrite
	// OpSync covers File.Sync and SyncDir (fsync failure lives here).
	OpSync
	// OpRename covers Rename (checkpoint publication).
	OpRename
	// OpRemove covers Remove (segment/checkpoint retirement).
	OpRemove
	// OpTruncate covers Truncate (torn-tail repair).
	OpTruncate
	// OpMkdir covers MkdirAll.
	OpMkdir
	// OpReadDir covers ReadDir (segment/checkpoint discovery).
	OpReadDir
	// OpStat covers Stat (log sizing).
	OpStat
)

func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpMkdir:
		return "mkdir"
	case OpReadDir:
		return "readdir"
	case OpStat:
		return "stat"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// File is the slice of *os.File the durability layer uses.
type File interface {
	Write(p []byte) (int, error)
	Read(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface the durability layer writes through.
// Implementations must be safe for concurrent use.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so renames and creations in it are
	// durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
