// Package wal implements the durability layer under a maintained
// adjacency view: a segmented write-ahead log of opaque records plus a
// checkpoint store, with the recovery discipline a crash-safe ingest
// engine needs — the paper's incidence→adjacency pipeline treats the
// edge stream as the source of truth (Definition I.3 folds over edge
// keys in arrival order), so the durable object is exactly that stream:
// replaying it over the last checkpoint reproduces the adjacency bit
// for bit, per the delta-identity grouping argument internal/stream
// relies on.
//
// # Log format
//
// A log is a directory of segment files named wal-<firstseq>.seg
// (sixteen lowercase hex digits). A segment is a back-to-back run of
// records with consecutive sequence numbers starting at the value in
// its file name; nothing else is stored, so the framing is the format:
//
//	offset 0  uint32 LE  payload length n (< 1 GiB)
//	offset 4  uint32 LE  CRC-32C (Castagnoli) over bytes [8, 16+n)
//	offset 8  uint64 LE  sequence number
//	offset 16 [n]byte    payload (opaque to this package)
//
// Sequence numbers are assigned densely from 1 by the Writer; a gap or
// repeat on replay is corruption (a lost or re-ordered segment), not a
// recoverable condition.
//
// # Durability policies
//
// The Writer fsyncs per Options.Policy: SyncEveryAppend acknowledges a
// record as durable before Append returns; SyncInterval bounds the
// un-synced window by Options.Interval (plus whatever the caller's own
// Sync calls add); SyncNever leaves persistence to the OS. DurableSeq
// reports the highest sequence number guaranteed on stable storage —
// the "acknowledged durable" boundary recovery promises to restore.
//
// # Recovery semantics
//
// Replay validates every needed record's CRC and sequence number. An
// invalid record at the very tail of the log — an incomplete frame, or
// a checksum failure on the final frame of the last segment — is a torn
// write: the tail is truncated (the repair is written back to the file)
// and replay succeeds over the surviving prefix, which is exactly the
// prefix that was ever acknowledged durable. An invalid record anywhere
// else is mid-log corruption: replay stops with a *CorruptError
// (errors.Is(err, ErrCorrupt)) and repairs nothing, because records
// after the damage cannot be trusted to reconnect to the same history —
// returning a silently diverged view would violate the one invariant
// this package exists to keep.
//
// # Checkpoints
//
// A checkpoint is one opaque payload (internal/stream serializes the
// whole view state) written atomically: temp file, fsync, rename to
// ckpt-<seq>.ckpt, directory fsync. <seq> is the sequence number of the
// last record the checkpoint covers, so recovery is "load newest valid
// checkpoint, replay records > seq". A checkpoint that fails its CRC or
// header validation is skipped in favor of the next older one (stale
// checkpoint + longer WAL replay is the designed fallback); only when
// every checkpoint file is invalid does loading fail with the typed
// error. Segments wholly covered by a checkpoint are retired by
// RetireSegments, which bounds log growth.
package wal
