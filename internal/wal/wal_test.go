package wal

import (
	"adjarray/internal/iofault"

	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// payloadFor generates a deterministic payload for seq, with a length
// that varies so record boundaries land at irregular offsets.
func payloadFor(seq uint64) []byte {
	n := int(seq%97) + 1
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(seq*31 + uint64(i)*7)
	}
	return p
}

// writeLog appends records 1..n to a fresh log in dir and returns the
// writer (still open).
func writeLog(t *testing.T, dir string, n int, opt Options) *Writer {
	t.Helper()
	w, err := NewWriter(dir, 1, opt)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 1; i <= n; i++ {
		seq, err := w.Append(payloadFor(uint64(i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append returned seq %d, want %d", seq, i)
		}
	}
	return w
}

// replayAll collects every record at or above fromSeq.
func replayAll(t *testing.T, dir string, fromSeq uint64) (map[uint64][]byte, RecoverStats, error) {
	t.Helper()
	got := map[uint64][]byte{}
	st, err := Replay(dir, fromSeq, func(seq uint64, payload []byte) error {
		got[seq] = bytes.Clone(payload)
		return nil
	})
	return got, st, err
}

func TestWriterReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 200, Options{Policy: SyncNever, SegmentBytes: 1 << 10})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, st, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Records != 200 || st.LastSeq != 200 {
		t.Fatalf("stats = %+v, want 200 records ending at 200", st)
	}
	if st.Segments < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", st.Segments)
	}
	if st.TornBytes != 0 {
		t.Fatalf("clean log reported torn bytes: %+v", st)
	}
	for i := uint64(1); i <= 200; i++ {
		if !bytes.Equal(got[i], payloadFor(i)) {
			t.Fatalf("payload mismatch at seq %d", i)
		}
	}
}

func TestReplayFromSeqSkipsCoveredPrefix(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 50, Options{Policy: SyncNever, SegmentBytes: 512})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, st, err := replayAll(t, dir, 30)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Records != 20 {
		t.Fatalf("got %d records above seq 30, want 20", st.Records)
	}
	for seq := range got {
		if seq <= 30 {
			t.Fatalf("replay delivered covered seq %d", seq)
		}
	}
}

func TestReplayAfterRetireSegments(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 100, Options{Policy: SyncNever, SegmentBytes: 512})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (err %v)", len(segs), err)
	}
	// Retire under a checkpoint at seq 60; everything above must survive.
	if _, err := RetireSegments(dir, 60); err != nil {
		t.Fatalf("RetireSegments: %v", err)
	}
	got, _, err := replayAll(t, dir, 60)
	if err != nil {
		t.Fatalf("Replay after retire: %v", err)
	}
	for i := uint64(61); i <= 100; i++ {
		if !bytes.Equal(got[i], payloadFor(i)) {
			t.Fatalf("post-retire payload mismatch at seq %d", i)
		}
	}
	// A replay floor below what retirement removed must fail loudly,
	// not silently skip history.
	if _, _, err := replayAll(t, dir, 10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay below retired floor: err = %v, want ErrCorrupt", err)
	}
}

func TestRetireSegmentsNeverRemovesLast(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 10, Options{Policy: SyncNever, SegmentBytes: 1 << 20})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n, err := RetireSegments(dir, 10); err != nil || n != 0 {
		t.Fatalf("RetireSegments removed %d (err %v), want 0 — last segment must survive", n, err)
	}
	if _, st, err := replayAll(t, dir, 0); err != nil || st.Records != 10 {
		t.Fatalf("replay after no-op retire: %+v, %v", st, err)
	}
}

func TestNewWriterReusesDeadSegmentFile(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash that created the next segment file but never wrote
	// a valid record into it: recovery computes nextSeq=1 and must be able
	// to open wal-...0001.seg again.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte{0xde, 0xad}, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatalf("NewWriter over dead segment: %v", err)
	}
	if _, err := w.Append(payloadFor(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, st, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Records != 1 || !bytes.Equal(got[1], payloadFor(1)) {
		t.Fatalf("dead bytes leaked into replay: %+v", st)
	}
}

func TestDurableSeqPerPolicy(t *testing.T) {
	t.Run("batch", func(t *testing.T) {
		w, err := NewWriter(t.TempDir(), 1, Options{Policy: SyncEveryAppend})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		for i := 1; i <= 3; i++ {
			if _, err := w.Append(payloadFor(uint64(i))); err != nil {
				t.Fatal(err)
			}
			if w.DurableSeq() != uint64(i) {
				t.Fatalf("after append %d: DurableSeq = %d", i, w.DurableSeq())
			}
		}
	})
	t.Run("off", func(t *testing.T) {
		w, err := NewWriter(t.TempDir(), 1, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		for i := 1; i <= 3; i++ {
			if _, err := w.Append(payloadFor(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if w.DurableSeq() != 0 {
			t.Fatalf("SyncNever acknowledged seq %d durable without a sync", w.DurableSeq())
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if w.DurableSeq() != 3 {
			t.Fatalf("after explicit Sync: DurableSeq = %d, want 3", w.DurableSeq())
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"batch", SyncEveryAppend}, {"every", SyncEveryAppend}, {"always", SyncEveryAppend},
		{"interval", SyncInterval}, {"off", SyncNever}, {"never", SyncNever}, {"none", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted junk")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := payloadFor(42)
	if _, err := WriteCheckpoint(dir, 42, want); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, seq, skipped, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if seq != 42 || !bytes.Equal(got, want) || len(skipped) != 0 {
		t.Fatalf("LoadCheckpoint = seq %d, %d skipped", seq, len(skipped))
	}
}

func TestLoadCheckpointEmptyDir(t *testing.T) {
	got, seq, skipped, err := LoadCheckpoint(t.TempDir())
	if err != nil || got != nil || seq != 0 || len(skipped) != 0 {
		t.Fatalf("empty dir: payload=%v seq=%d skipped=%d err=%v", got, seq, len(skipped), err)
	}
}

func TestLoadCheckpointFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteCheckpoint(dir, 10, payloadFor(10)); err != nil {
		t.Fatal(err)
	}
	newer, err := WriteCheckpoint(dir, 20, payloadFor(20))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the newer checkpoint.
	buf, err := os.ReadFile(newer)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(newer, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, seq, skipped, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint with damaged newest: %v", err)
	}
	if seq != 10 || !bytes.Equal(got, payloadFor(10)) {
		t.Fatalf("fallback loaded seq %d, want 10", seq)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrCorrupt) {
		t.Fatalf("skipped = %v, want one ErrCorrupt", skipped)
	}
}

func TestLoadCheckpointAllInvalid(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteCheckpoint(dir, 5, payloadFor(5))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[ckptHeaderSize] ^= 0x01
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all-invalid LoadCheckpoint err = %v, want ErrCorrupt", err)
	}
}

func TestRetireCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := WriteCheckpoint(dir, seq, payloadFor(seq)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := RetireCheckpoints(dir, 2)
	if err != nil || n != 3 {
		t.Fatalf("RetireCheckpoints removed %d (err %v), want 3", n, err)
	}
	cks, err := listCheckpoints(iofault.OS, dir)
	if err != nil || len(cks) != 2 || cks[0].seq != 5 || cks[1].seq != 4 {
		t.Fatalf("surviving checkpoints = %v (err %v), want seqs 5,4", cks, err)
	}
}

func TestWriterRecoveryCycle(t *testing.T) {
	// Full cycle: write, "crash" (no Close), replay, continue in a new
	// writer, replay again — seq space must stay dense across the cycle.
	dir := t.TempDir()
	w := writeLog(t, dir, 25, Options{Policy: SyncEveryAppend, SegmentBytes: 512})
	_ = w // abandoned without Close: simulated crash

	_, st, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	if st.LastSeq != 25 {
		t.Fatalf("first replay LastSeq = %d", st.LastSeq)
	}
	w2, err := NewWriter(dir, st.LastSeq+1, Options{Policy: SyncEveryAppend, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("NewWriter after recovery: %v", err)
	}
	for i := 26; i <= 40; i++ {
		if _, err := w2.Append(payloadFor(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if st.LastSeq != 40 || st.Records != 40 {
		t.Fatalf("second replay stats = %+v", st)
	}
	for i := uint64(1); i <= 40; i++ {
		if !bytes.Equal(got[i], payloadFor(i)) {
			t.Fatalf("payload mismatch at seq %d after recovery cycle", i)
		}
	}
}

func TestReplayStaleTailGapUnderCheckpoint(t *testing.T) {
	// SyncNever scenario: records 1..8 hit disk, a checkpoint at 10 was
	// written, the un-synced records 9..10 were lost in a crash, and the
	// reopened writer started a fresh segment at 11. The gap 9..10 sits
	// entirely under the checkpoint: replay from 10 must accept it.
	dir := t.TempDir()
	w := writeLog(t, dir, 8, Options{Policy: SyncNever})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter(dir, 11, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 14; i++ {
		if _, err := w2.Append(payloadFor(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := replayAll(t, dir, 10)
	if err != nil {
		t.Fatalf("replay over checkpoint-covered gap: %v", err)
	}
	if st.Records != 4 || st.LastSeq != 14 {
		t.Fatalf("stats = %+v, want 4 records ending at 14", st)
	}
	for i := uint64(11); i <= 14; i++ {
		if !bytes.Equal(got[i], payloadFor(i)) {
			t.Fatalf("payload mismatch at seq %d", i)
		}
	}
	// The same log WITHOUT the covering checkpoint is a real gap.
	if _, _, err := replayAll(t, dir, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("uncovered gap gave err %v, want ErrCorrupt", err)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 5, Options{Policy: SyncNever})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, err := Replay(dir, 0, func(seq uint64, _ []byte) error {
		if seq == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay err = %v, want the callback's error", err)
	}
}
