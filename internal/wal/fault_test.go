package wal

import (
	"errors"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"adjarray/internal/iofault"
)

// TestWriterWedgesOnSyncFailure is the fsyncgate regression: one failed
// fsync must freeze DurableSeq at the last successful fsync forever and
// make every subsequent Append/Sync return the sticky typed error — a
// later fsync "succeeding" would not make the dropped pages durable.
func TestWriterWedgesOnSyncFailure(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.New()
	w, err := NewWriter(dir, 1, Options{Policy: SyncEveryAppend, FS: iofault.Wrap(iofault.OS, inj)})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Append(payloadFor(1)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if got := w.DurableSeq(); got != 1 {
		t.Fatalf("DurableSeq = %d, want 1", got)
	}

	inj.Arm(iofault.Rule{Op: iofault.OpSync, Path: "wal-", Kind: iofault.EIO, Count: 1})
	_, err = w.Append(payloadFor(2))
	if err == nil {
		t.Fatal("append over a failed fsync must error")
	}
	if !errors.Is(err, ErrWedged) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want wedged EIO, got %v", err)
	}
	if got := w.DurableSeq(); got != 1 {
		t.Fatalf("failed fsync advanced DurableSeq to %d; must stay 1", got)
	}

	// The fault budget is spent — the disk is "healthy" again — but the
	// writer must stay wedged anyway.
	if _, err := w.Append(payloadFor(3)); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after wedge: want ErrWedged, got %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWedged) {
		t.Fatalf("sync after wedge: want ErrWedged, got %v", err)
	}
	if got := w.DurableSeq(); got != 1 {
		t.Fatalf("DurableSeq moved to %d after wedge", got)
	}
	if w.Wedged() == nil {
		t.Fatal("Wedged() must report the sticky error")
	}
	if err := w.Close(); !errors.Is(err, ErrWedged) {
		t.Fatalf("close after wedge: want ErrWedged, got %v", err)
	}

	// No acked-durable record may be lost across reopen: seq 1 was
	// acknowledged before the fault and must replay. Seq 2's bytes hit
	// the file before its failed fsync, so replay may legitimately
	// deliver it too — recovering MORE than was acked is allowed,
	// losing acked data is not.
	seen := map[uint64]bool{}
	st, err := Replay(dir, 0, func(seq uint64, payload []byte) error {
		seen[seq] = true
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !seen[1] {
		t.Fatalf("acked seq 1 lost across reopen (stats %+v)", st)
	}
	if seen[3] {
		t.Fatal("seq 3 was refused by the wedge; it must not exist on disk")
	}
}

// TestWriterWedgesOnWriteFailure: a failed or short Write leaves torn
// bytes mid-segment; appending valid records after them would turn a
// repairable torn tail into unrecoverable mid-log corruption, so the
// writer must wedge on write failure exactly as on sync failure.
func TestWriterWedgesOnWriteFailure(t *testing.T) {
	for _, kind := range []iofault.Kind{iofault.EIO, iofault.ENOSPC, iofault.ShortWrite, iofault.TornWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			inj := iofault.New()
			w, err := NewWriter(dir, 1, Options{Policy: SyncEveryAppend, FS: iofault.Wrap(iofault.OS, inj)})
			if err != nil {
				t.Fatalf("NewWriter: %v", err)
			}
			if _, err := w.Append(payloadFor(1)); err != nil {
				t.Fatalf("append 1: %v", err)
			}
			inj.Arm(iofault.Rule{Op: iofault.OpWrite, Path: "wal-", Kind: kind, Count: 1})
			if _, err := w.Append(payloadFor(2)); !errors.Is(err, ErrWedged) {
				t.Fatalf("append through %s: want ErrWedged, got %v", kind, err)
			}
			if _, err := w.Append(payloadFor(3)); !errors.Is(err, ErrWedged) {
				t.Fatalf("append after wedge: want ErrWedged, got %v", err)
			}
			w.Close() //adjlint:ignore syncerr wedged close; the sticky error is asserted above

			// The torn bytes sit at the log tail, so recovery repairs
			// them and the acked record survives.
			var last uint64
			st, err := Replay(dir, 0, func(seq uint64, payload []byte) error {
				last = seq
				return nil
			})
			if err != nil {
				t.Fatalf("replay after %s: %v", kind, err)
			}
			if last != 1 {
				t.Fatalf("replay recovered through seq %d, want exactly the acked seq 1 (stats %+v)", last, st)
			}
		})
	}
}

// TestCheckpointTempReap fills the fault budget so both the checkpoint
// rename and its cleanup Remove fail, counts the orphaned temp file,
// and checks ReapTempCheckpoints clears it (satellite: temp files must
// be reaped on open and on failed writes).
func TestCheckpointTempReap(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.New()
	ffs := iofault.Wrap(iofault.OS, inj)
	if _, err := WriteCheckpointFS(ffs, dir, 5, []byte("payload-5")); err != nil {
		t.Fatalf("healthy checkpoint: %v", err)
	}

	inj.Arm(iofault.Rule{Op: iofault.OpRename, Kind: iofault.ENOSPC, Count: 1})
	inj.Arm(iofault.Rule{Op: iofault.OpRemove, Path: ".tmp", Kind: iofault.EIO, Count: 1})
	if _, err := WriteCheckpointFS(ffs, dir, 9, []byte("payload-9")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC from rename, got %v", err)
	}
	if n := countTemps(t, dir); n != 1 {
		t.Fatalf("rename+remove faults left %d temp files, want 1", n)
	}

	removed, err := ReapTempCheckpoints(iofault.OS, dir)
	if err != nil {
		t.Fatalf("reap: %v", err)
	}
	if removed != 1 || countTemps(t, dir) != 0 {
		t.Fatalf("reap removed %d, %d temps left; want 1 removed, 0 left", removed, countTemps(t, dir))
	}

	// The published checkpoint is untouched and still loads.
	payload, seq, _, err := LoadCheckpoint(dir)
	if err != nil || seq != 5 || string(payload) != "payload-5" {
		t.Fatalf("LoadCheckpoint after reap: payload=%q seq=%d err=%v", payload, seq, err)
	}
}

// TestWriteCheckpointCleansTempOnWriteFault: when the temp-file write
// itself faults, WriteCheckpointFS's own cleanup reaps the temp.
func TestWriteCheckpointCleansTempOnWriteFault(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.New()
	ffs := iofault.Wrap(iofault.OS, inj)
	inj.Arm(iofault.Rule{Op: iofault.OpWrite, Path: ".tmp", Kind: iofault.ShortWrite, Count: 1})
	if _, err := WriteCheckpointFS(ffs, dir, 3, []byte("p")); err == nil {
		t.Fatal("faulted checkpoint write must error")
	}
	if n := countTemps(t, dir); n != 0 {
		t.Fatalf("cleanup left %d temp files", n)
	}
}

func countTemps(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.tmp"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	n := 0
	for _, m := range matches {
		if strings.HasSuffix(m, ".tmp") {
			n++
		}
	}
	return n
}
