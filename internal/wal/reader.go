package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"adjarray/internal/iofault"
)

// RecoverStats reports what Replay found and repaired.
type RecoverStats struct {
	// Segments is how many segment files were read.
	Segments int
	// Records is how many records were delivered to the callback.
	Records int
	// LastSeq is the sequence number of the last valid record in the
	// log (0 when the log holds none at or above the replay floor).
	LastSeq uint64
	// TornPath/TornOffset/TornBytes describe a repaired torn tail: the
	// file that was truncated, the offset it was cut at, and how many
	// bytes were discarded. TornBytes == 0 means the log ended cleanly.
	TornPath   string
	TornOffset int64
	TornBytes  int64
}

// segmentInfo is one discovered segment file.
type segmentInfo struct {
	path     string
	startSeq uint64
}

// listSegments returns the log's segment files sorted by start seq.
func listSegments(fsys iofault.FS, dir string) ([]segmentInfo, error) {
	ents, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, &CorruptError{Path: filepath.Join(dir, name), Reason: "unparseable segment name"}
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), startSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].startSeq < segs[j].startSeq })
	for i := 1; i < len(segs); i++ {
		if segs[i].startSeq == segs[i-1].startSeq {
			return nil, &CorruptError{Path: segs[i].path, Reason: "duplicate segment start seq"}
		}
	}
	return segs, nil
}

// Replay scans the real filesystem. See ReplayFS.
func Replay(dir string, fromSeq uint64, fn func(seq uint64, payload []byte) error) (RecoverStats, error) {
	return ReplayFS(iofault.OS, dir, fromSeq, fn)
}

// ReplayFS scans the log and calls fn once per valid record with seq >=
// fromSeq, in sequence order. Records below fromSeq (covered by a
// checkpoint) are skipped without validation when their whole segment
// is below the floor, and validated-but-skipped when they share a
// segment with needed records.
//
// A torn tail (see the package comment) is truncated in place and
// reported through RecoverStats. Mid-log damage — a checksum failure
// that is not the final frame, a sequence gap or repeat, a segment
// whose first record does not match its file name — aborts with a
// *CorruptError. An error from fn aborts the replay unchanged.
func ReplayFS(fsys iofault.FS, dir string, fromSeq uint64, fn func(seq uint64, payload []byte) error) (RecoverStats, error) {
	var st RecoverStats
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return st, err
	}
	if len(segs) == 0 {
		return st, nil
	}
	// Drop segments wholly below the floor: segment i spans
	// [start_i, start_{i+1}-1], so it is skippable when the NEXT
	// segment starts at or below fromSeq+1 (its whole range is covered
	// by the checkpoint).
	first := 0
	for first+1 < len(segs) && segs[first+1].startSeq <= fromSeq+1 {
		first++
	}
	if segs[first].startSeq > fromSeq+1 {
		// The records in (fromSeq, start) are missing: a retired (or
		// lost) segment the checkpoint does not cover.
		return st, &CorruptError{Path: segs[first].path,
			Reason: fmt.Sprintf("log starts at seq %d but replay needs seq %d", segs[first].startSeq, fromSeq+1)}
	}
	segs = segs[first:]

	expect := segs[0].startSeq
	for si, seg := range segs {
		last := si == len(segs)-1
		buf, err := fsys.ReadFile(seg.path)
		if err != nil {
			return st, err
		}
		st.Segments++
		var off int64
		for off < int64(len(buf)) {
			seq, payload, next, ok, perr := parseRecord(seg.path, buf, off)
			if perr != nil {
				return st, perr
			}
			if !ok {
				// Torn frame. Only the log's very tail may be repaired;
				// the same bytes mid-log mean the history is cut.
				if !last {
					return st, &CorruptError{Path: seg.path, Offset: off, Reason: "torn record before the log tail"}
				}
				st.TornPath, st.TornOffset, st.TornBytes = seg.path, off, int64(len(buf))-off
				if err := fsys.Truncate(seg.path, off); err != nil {
					return st, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
				}
				return st, nil
			}
			if off == 0 && seq != seg.startSeq {
				return st, &CorruptError{Path: seg.path, Offset: off,
					Reason: fmt.Sprintf("first record seq %d does not match segment name seq %d", seq, seg.startSeq)}
			}
			if seq != expect {
				// One legitimate gap shape exists: at a segment start,
				// when every skipped seq is covered by the checkpoint
				// (expect..seq-1 all <= fromSeq). That is the designed
				// stale-WAL-tail + newer-checkpoint recovery — a writer
				// reopened at checkpointSeq+1 after un-synced records
				// below it were lost. Anywhere else a gap is corruption.
				if off == 0 && seq > expect && seq <= fromSeq+1 {
					expect = seq
				} else {
					return st, &CorruptError{Path: seg.path, Offset: off,
						Reason: fmt.Sprintf("sequence gap: record seq %d, expected %d", seq, expect)}
				}
			}
			expect++
			st.LastSeq = seq
			if seq > fromSeq {
				if err := fn(seq, payload); err != nil {
					return st, err
				}
				st.Records++
			}
			off = next
		}
	}
	return st, nil
}

// RetireSegments retires on the real filesystem. See RetireSegmentsFS.
func RetireSegments(dir string, uptoSeq uint64) (removed int, err error) {
	return RetireSegmentsFS(iofault.OS, dir, uptoSeq)
}

// RetireSegmentsFS deletes segments every record of which has seq <=
// uptoSeq (i.e. is covered by a checkpoint at uptoSeq). The last
// segment is never deleted — its end is not knowable from names alone,
// and the writer may still be appending to its successor numbering.
func RetireSegmentsFS(fsys iofault.FS, dir string, uptoSeq uint64) (removed int, err error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(segs); i++ {
		// Segment i ends at segs[i+1].startSeq - 1.
		if segs[i+1].startSeq-1 <= uptoSeq {
			if err := fsys.Remove(segs[i].path); err != nil {
				return removed, err
			}
			removed++
		}
	}
	if removed > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// LogSize sums on the real filesystem. See LogSizeFS.
func LogSize(dir string) (int64, error) { return LogSizeFS(iofault.OS, dir) }

// LogSizeFS sums the byte sizes of all segment files.
func LogSizeFS(fsys iofault.FS, dir string) (int64, error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range segs {
		fi, err := fsys.Stat(s.path)
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}
