package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt is the sentinel every unrecoverable log/checkpoint damage
// matches: errors.Is(err, wal.ErrCorrupt) distinguishes "the data is
// bad, refuse to serve" from ordinary I/O failures.
var ErrCorrupt = errors.New("wal: corrupt")

// CorruptError pins unrecoverable damage to a file and offset. It
// matches ErrCorrupt under errors.Is.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt %s @%d: %s", e.Path, e.Offset, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) hold for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// castagnoli is the CRC-32C polynomial table — the checksum with
// hardware support on every platform this runs on (SSE4.2 / ARMv8 CRC
// instructions via hash/crc32's specialized paths).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// recordHeaderSize is the fixed frame prefix: length, CRC, seq.
	recordHeaderSize = 4 + 4 + 8
	// maxRecordPayload bounds a single record; a length field above it
	// is treated as frame damage rather than an allocation request.
	maxRecordPayload = 1 << 30
)

// appendRecord appends one framed record to dst and returns it.
func appendRecord(dst []byte, seq uint64, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	crcAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // CRC patched below
	seqAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[seqAt:], castagnoli)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// parseRecord decodes the record at buf[off:]. It returns the record's
// seq, its payload (a sub-slice of buf), and the offset just past it.
//
// ok=false with err=nil means the frame is torn: buf ends before the
// record completes, or its checksum fails and the frame is the last
// thing in buf (the signature of an interrupted in-place write). A
// checksum failure with further bytes after the frame is mid-log
// damage and comes back as a *CorruptError — the caller must not
// truncate there.
func parseRecord(path string, buf []byte, off int64) (seq uint64, payload []byte, next int64, ok bool, err error) {
	rest := buf[off:]
	if len(rest) < recordHeaderSize {
		return 0, nil, off, false, nil // torn header
	}
	n := binary.LittleEndian.Uint32(rest)
	if n > maxRecordPayload {
		// An absurd length field cannot be distinguished from a torn
		// partial header by content, but it CAN be distinguished by
		// position: mid-file it means the framing is lost.
		if int64(len(rest)) > int64(recordHeaderSize) {
			return 0, nil, off, false, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("record length %d exceeds limit", n)}
		}
		return 0, nil, off, false, nil
	}
	end := int64(recordHeaderSize) + int64(n)
	if int64(len(rest)) < end {
		return 0, nil, off, false, nil // torn payload
	}
	wantCRC := binary.LittleEndian.Uint32(rest[4:])
	gotCRC := crc32.Checksum(rest[8:end], castagnoli)
	if gotCRC != wantCRC {
		if int64(len(rest)) == end {
			// The damaged frame is the final bytes of the log: a torn
			// in-place write of the last record. Recoverable.
			return 0, nil, off, false, nil
		}
		return 0, nil, off, false, &CorruptError{Path: path, Offset: off, Reason: "record checksum mismatch"}
	}
	seq = binary.LittleEndian.Uint64(rest[8:])
	return seq, rest[recordHeaderSize:end], off + end, true, nil
}
