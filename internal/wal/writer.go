package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"adjarray/internal/iofault"
)

// SyncPolicy selects when the Writer fsyncs appended records.
type SyncPolicy int

const (
	// SyncEveryAppend fsyncs before Append returns: every accepted
	// record is durable when acknowledged. The safe default.
	SyncEveryAppend SyncPolicy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed since the
	// last sync (checked on Append; callers may also Sync explicitly).
	// A crash loses at most the records of the open window.
	SyncInterval
	// SyncNever performs no fsync (Close still syncs); persistence is
	// whatever the OS page cache survives. Nothing is acknowledged
	// durable until an explicit Sync.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryAppend:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy resolves the CLI spellings of the fsync policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "every", "always":
		return SyncEveryAppend, nil
	case "interval":
		return SyncInterval, nil
	case "off", "never", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch|interval|off)", s)
}

// Options tunes a Writer.
type Options struct {
	// Policy selects the fsync discipline (default SyncEveryAppend).
	Policy SyncPolicy
	// Interval is the maximum un-synced window under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment past this size (default
	// 4 MiB). Smaller segments retire sooner after a checkpoint.
	SegmentBytes int64
	// FS routes every file operation; nil selects the real filesystem.
	// Tests and the crashtest harness install an iofault.FaultFS here.
	FS iofault.FS
}

func (o *Options) defaults() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FS == nil {
		o.FS = iofault.OS
	}
}

// ErrWedged matches the sticky error a Writer surfaces once a write or
// fsync has failed: errors.Is(err, wal.ErrWedged).
var ErrWedged = errors.New("wal: writer wedged by storage failure")

// WedgedError is the typed error state a Writer enters permanently
// after a failed write or fsync. After a failed fsync the kernel may
// have dropped the dirty pages AND cleared its error flag, so a later
// "successful" fsync would not make the earlier records durable — the
// only honest move is to refuse all further work and freeze DurableSeq
// at the last fsync that succeeded. Err is the failure that wedged the
// writer.
type WedgedError struct {
	Err error
}

func (e *WedgedError) Error() string { return "wal: writer wedged: " + e.Err.Error() }

func (e *WedgedError) Unwrap() error { return e.Err }

func (e *WedgedError) Is(target error) bool { return target == ErrWedged }

// Writer appends records to a segmented log. Not safe for concurrent
// use; the owning view serializes appends under its own lock.
type Writer struct {
	dir  string
	opt  Options
	f    iofault.File
	path string
	size int64

	nextSeq    uint64 // seq the next Append will be assigned
	durableSeq uint64 // highest seq guaranteed on stable storage
	lastSync   time.Time
	buf        []byte
	wedged     error // sticky: the write/fsync failure that stopped the writer
}

// NewWriter opens a fresh segment whose first record will carry seq
// nextSeq (1 for an empty log). Existing segments are left untouched —
// recovery always starts a new segment rather than appending to a file
// whose tail it just validated, so a half-written old tail can never
// damage new records.
func NewWriter(dir string, nextSeq uint64, opt Options) (*Writer, error) {
	opt.defaults()
	if nextSeq == 0 {
		nextSeq = 1
	}
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opt: opt, nextSeq: nextSeq, durableSeq: nextSeq - 1, lastSync: time.Now()}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// segmentName renders the canonical file name for a segment starting
// at seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

func (w *Writer) openSegment() error {
	path := filepath.Join(w.dir, segmentName(w.nextSeq))
	f, err := w.opt.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if os.IsExist(err) {
		// A file with this start seq can pre-exist only when a previous
		// process crashed before writing any valid record to it (replay
		// would otherwise have advanced nextSeq past the name). Its
		// contents are therefore dead bytes; truncate and reuse.
		f, err = w.opt.FS.OpenFile(path, os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	}
	if err != nil {
		return err
	}
	// The file must itself survive a crash: fsync its directory entry
	// once at creation, or recovery may find records in a file that is
	// not there.
	if err := w.opt.FS.SyncDir(w.dir); err != nil {
		f.Close() //adjlint:ignore syncerr error-path close; the syncDir failure is the one reported
		return err
	}
	w.f, w.path, w.size = f, path, 0
	return nil
}

// wedge records the first write/fsync failure and returns the typed
// sticky error every subsequent operation will repeat.
func (w *Writer) wedge(err error) error {
	if w.wedged == nil {
		w.wedged = err
	}
	return &WedgedError{Err: w.wedged}
}

// Wedged returns the sticky failure (nil while the writer is healthy).
func (w *Writer) Wedged() error {
	if w.wedged == nil {
		return nil
	}
	return &WedgedError{Err: w.wedged}
}

// Append frames payload as the next record, writes it, and applies the
// sync policy. It returns the record's sequence number. With
// SyncEveryAppend the record is durable on return; under the other
// policies it is durable only once DurableSeq passes it.
//
// A write or fsync failure wedges the writer permanently (see
// WedgedError): the failed bytes may sit torn at the segment tail, and
// appending valid records after them would turn a repairable torn tail
// into unrecoverable mid-log corruption on replay.
func (w *Writer) Append(payload []byte) (uint64, error) {
	if w.wedged != nil {
		return 0, &WedgedError{Err: w.wedged}
	}
	if w.f == nil {
		return 0, fmt.Errorf("wal: writer is closed")
	}
	if int64(w.size) >= w.opt.SegmentBytes && w.size > 0 {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	w.buf = appendRecord(w.buf[:0], seq, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, w.wedge(fmt.Errorf("wal: append seq %d: %w", seq, err))
	}
	w.size += int64(len(w.buf))
	w.nextSeq++
	switch w.opt.Policy {
	case SyncEveryAppend:
		if err := w.Sync(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opt.Interval {
			if err := w.Sync(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// rotate syncs and closes the active segment and opens the next one.
func (w *Writer) rotate() error {
	// Always sync a segment before abandoning it: under lazy policies
	// the caller's durability window must not silently extend to "until
	// some old rotated file happens to hit disk".
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return w.wedge(fmt.Errorf("wal: closing rotated segment: %w", err))
	}
	if err := w.openSegment(); err != nil {
		// The old segment is closed and the new one failed to open;
		// there is nowhere consistent to put the next record.
		return w.wedge(err)
	}
	return nil
}

// Sync fsyncs the active segment and advances the durable boundary. A
// failure wedges the writer: DurableSeq stays frozen at the last
// successful fsync, forever.
func (w *Writer) Sync() error {
	if w.wedged != nil {
		return &WedgedError{Err: w.wedged}
	}
	if w.f == nil {
		return fmt.Errorf("wal: writer is closed")
	}
	if err := w.f.Sync(); err != nil {
		return w.wedge(fmt.Errorf("wal: sync: %w", err))
	}
	w.durableSeq = w.nextSeq - 1
	w.lastSync = time.Now()
	return nil
}

// NextSeq returns the sequence number the next Append will use.
func (w *Writer) NextSeq() uint64 { return w.nextSeq }

// DurableSeq returns the highest sequence number guaranteed on stable
// storage.
func (w *Writer) DurableSeq() uint64 { return w.durableSeq }

// Close syncs and closes the active segment. The Writer is unusable
// afterwards. A wedged writer closes its file descriptor without
// syncing (the sync already failed once; a second "success" would be a
// lie) and reports the sticky error.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	if w.wedged != nil {
		w.f.Close() //adjlint:ignore syncerr wedged writer: the sticky storage failure is the one reported
		w.f = nil
		return &WedgedError{Err: w.wedged}
	}
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
