package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"adjarray/internal/iofault"
)

// Checkpoint file layout: a fixed header followed by the opaque payload.
//
//	offset 0  [8]byte    magic "ADJCKPT1"
//	offset 8  uint32 LE  format version (1)
//	offset 12 uint32 LE  CRC-32C over bytes [16, 32+n)
//	offset 16 uint64 LE  covered seq (last WAL record folded in)
//	offset 24 uint64 LE  payload length n
//	offset 32 [n]byte    payload
const (
	ckptMagic      = "ADJCKPT1"
	ckptVersion    = 1
	ckptHeaderSize = 8 + 4 + 4 + 8 + 8
)

// checkpointName renders the canonical file name for a checkpoint
// covering seq.
func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%016x.ckpt", seq) }

// WriteCheckpoint writes a checkpoint through the real filesystem. See
// WriteCheckpointFS.
func WriteCheckpoint(dir string, seq uint64, payload []byte) (string, error) {
	return WriteCheckpointFS(iofault.OS, dir, seq, payload)
}

// WriteCheckpointFS atomically writes a checkpoint covering every WAL
// record with sequence number <= seq: temp file, fsync, rename into
// place, directory fsync. A crash at any point leaves either no new
// checkpoint or a complete one. On failure the temp file is reaped
// best-effort; ReapTempCheckpoints covers the cases where even the
// reap fails (disk errors, process death).
func WriteCheckpointFS(fsys iofault.FS, dir string, seq uint64, payload []byte) (string, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf := make([]byte, 0, ckptHeaderSize+len(payload))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC patched below
	bodyAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.Checksum(buf[bodyAt:], castagnoli))

	final := filepath.Join(dir, checkpointName(seq))
	tmp, err := fsys.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	tmpPath := tmp.Name()
	// Best-effort unwind of a temp file that was never published; the
	// write/sync error that triggered cleanup is the one returned.
	//adjlint:ignore syncerr error-path cleanup of unpublished temp file
	cleanup := func() { tmp.Close(); fsys.Remove(tmpPath) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpPath) //adjlint:ignore syncerr error-path cleanup of unpublished temp file
		return "", err
	}
	if err := fsys.Rename(tmpPath, final); err != nil {
		fsys.Remove(tmpPath) //adjlint:ignore syncerr error-path cleanup of unpublished temp file
		return "", err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// ReapTempCheckpoints removes leftover ckpt-*.tmp files — orphans from
// a checkpoint write that died (or whose own cleanup Remove faulted)
// between CreateTemp and rename. Called on open and after failed
// checkpoint writes; a temp file is never a recovery source, so
// removal is always safe.
func ReapTempCheckpoints(fsys iofault.FS, dir string) (removed int, err error) {
	ents, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if rerr := fsys.Remove(filepath.Join(dir, name)); rerr != nil {
			if err == nil {
				err = rerr
			}
			continue
		}
		removed++
	}
	return removed, err
}

// checkpointInfo is one discovered checkpoint file.
type checkpointInfo struct {
	path string
	seq  uint64
}

// listCheckpoints returns checkpoint files sorted newest (highest seq)
// first. Files whose names do not parse are ignored — they cannot be
// loaded by name anyway and must not block recovery from good ones.
func listCheckpoints(fsys iofault.FS, dir string) ([]checkpointInfo, error) {
	ents, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cks []checkpointInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		cks = append(cks, checkpointInfo{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].seq > cks[j].seq })
	return cks, nil
}

// readCheckpoint validates one checkpoint file and returns its payload.
func readCheckpoint(fsys iofault.FS, path string, wantSeq uint64) ([]byte, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < ckptHeaderSize {
		return nil, &CorruptError{Path: path, Reason: "short checkpoint header"}
	}
	if string(buf[:8]) != ckptMagic {
		return nil, &CorruptError{Path: path, Reason: "bad checkpoint magic"}
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != ckptVersion {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported checkpoint version %d", v)}
	}
	seq := binary.LittleEndian.Uint64(buf[16:])
	if seq != wantSeq {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("header seq %d does not match file name seq %d", seq, wantSeq)}
	}
	n := binary.LittleEndian.Uint64(buf[24:])
	if uint64(len(buf)) != ckptHeaderSize+n {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("checkpoint size %d does not match header length %d", len(buf), n)}
	}
	wantCRC := binary.LittleEndian.Uint32(buf[12:])
	if got := crc32.Checksum(buf[16:], castagnoli); got != wantCRC {
		return nil, &CorruptError{Path: path, Reason: "checkpoint checksum mismatch"}
	}
	return buf[ckptHeaderSize:], nil
}

// LoadCheckpoint loads from the real filesystem. See LoadCheckpointFS.
func LoadCheckpoint(dir string) (payload []byte, seq uint64, skipped []error, err error) {
	return LoadCheckpointFS(iofault.OS, dir)
}

// LoadCheckpointFS returns the newest checkpoint that passes
// validation, its covered seq, and the per-file errors of any newer
// checkpoints skipped on the way (stale checkpoint + longer WAL replay
// is the designed fallback). With no checkpoint files at all it
// returns seq 0 and a nil payload — an empty-state recovery, not an
// error. When checkpoint files exist but every one is invalid it fails
// with the newest file's *CorruptError: silently restarting empty
// would discard state that provably existed.
func LoadCheckpointFS(fsys iofault.FS, dir string) (payload []byte, seq uint64, skipped []error, err error) {
	cks, err := listCheckpoints(fsys, dir)
	if err != nil {
		return nil, 0, nil, err
	}
	for _, ck := range cks {
		p, rerr := readCheckpoint(fsys, ck.path, ck.seq)
		if rerr == nil {
			return p, ck.seq, skipped, nil
		}
		skipped = append(skipped, rerr)
	}
	if len(skipped) > 0 {
		return nil, 0, skipped, skipped[0]
	}
	return nil, 0, nil, nil
}

// RetireCheckpoints retires on the real filesystem. See
// RetireCheckpointsFS.
func RetireCheckpoints(dir string, keep int) (removed int, err error) {
	return RetireCheckpointsFS(iofault.OS, dir, keep)
}

// RetireCheckpointsFS deletes all but the keep newest checkpoint files.
func RetireCheckpointsFS(fsys iofault.FS, dir string, keep int) (removed int, err error) {
	if keep < 1 {
		keep = 1
	}
	cks, err := listCheckpoints(fsys, dir)
	if err != nil {
		return 0, err
	}
	for _, ck := range cks[min(keep, len(cks)):] {
		if err := fsys.Remove(ck.path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
