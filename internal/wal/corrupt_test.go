package wal

import (
	"adjarray/internal/iofault"

	"bytes"
	"errors"
	"os"
	"testing"
)

// recordBoundaries returns the byte offset of every record boundary in
// a segment file, including 0 and the file length.
func recordBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int64{0}
	var off int64
	for off < int64(len(buf)) {
		_, _, next, ok, err := parseRecord(path, buf, off)
		if err != nil || !ok {
			t.Fatalf("segment %s is not clean at offset %d (ok=%v err=%v)", path, off, ok, err)
		}
		off = next
		offs = append(offs, off)
	}
	return offs
}

// cloneLog copies every file of a log directory into a fresh temp dir
// so each table case mutates its own copy.
func cloneLog(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		buf, err := os.ReadFile(src + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst+"/"+e.Name(), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornTailAtEveryBoundary truncates the final segment at every
// record boundary and at every boundary+delta (mid-record) and asserts
// replay recovers exactly the surviving whole records, repairing the
// file so a second replay is clean.
func TestTornTailAtEveryBoundary(t *testing.T) {
	master := t.TempDir()
	const n = 40
	w := writeLog(t, master, n, Options{Policy: SyncNever, SegmentBytes: 1 << 20})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want single segment, got %d (err %v)", len(segs), err)
	}
	bounds := recordBoundaries(t, segs[0].path)
	if len(bounds) != n+1 {
		t.Fatalf("found %d boundaries, want %d", len(bounds), n+1)
	}
	for i, cut := range bounds {
		for _, delta := range []int64{0, 1, recordHeaderSize - 1, recordHeaderSize + 1} {
			at := cut + delta
			if at > bounds[len(bounds)-1] || (delta > 0 && i == len(bounds)-1) {
				continue
			}
			dir := cloneLog(t, master)
			csegs, _ := listSegments(iofault.OS, dir)
			if err := os.Truncate(csegs[0].path, at); err != nil {
				t.Fatal(err)
			}
			got, st, err := replayAll(t, dir, 0)
			if err != nil {
				t.Fatalf("truncate@%d: replay failed: %v", at, err)
			}
			// Whole records before the cut survive; nothing after does.
			want := i
			if delta > 0 {
				want = i // partial record i+1 is discarded
			}
			if len(got) != want {
				t.Fatalf("truncate@%d: recovered %d records, want %d", at, len(got), want)
			}
			for s := uint64(1); s <= uint64(want); s++ {
				if !bytes.Equal(got[s], payloadFor(s)) {
					t.Fatalf("truncate@%d: payload mismatch at seq %d", at, s)
				}
			}
			if delta > 0 && st.TornBytes == 0 {
				t.Fatalf("truncate@%d: mid-record cut not reported as torn", at)
			}
			// Repair must be idempotent: replay again, clean.
			got2, st2, err := replayAll(t, dir, 0)
			if err != nil || len(got2) != want || st2.TornBytes != 0 {
				t.Fatalf("truncate@%d: second replay not clean: %d records, %+v, %v", at, len(got2), st2, err)
			}
		}
	}
}

// TestBitFlipAtEveryRecord flips a byte inside each record in turn and
// asserts: damage to the FINAL record recovers by truncation; damage to
// any earlier record is a typed error. Never a silently wrong replay.
func TestBitFlipAtEveryRecord(t *testing.T) {
	master := t.TempDir()
	const n = 30
	w := writeLog(t, master, n, Options{Policy: SyncNever, SegmentBytes: 1 << 20})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	msegs, _ := listSegments(iofault.OS, master)
	bounds := recordBoundaries(t, msegs[0].path)

	for rec := 0; rec < n; rec++ {
		// Flip a payload byte and separately a header byte of record rec.
		for _, at := range []int64{bounds[rec] + recordHeaderSize, bounds[rec] + 9} {
			dir := cloneLog(t, master)
			csegs, _ := listSegments(iofault.OS, dir)
			buf, err := os.ReadFile(csegs[0].path)
			if err != nil {
				t.Fatal(err)
			}
			buf[at] ^= 0x40
			if err := os.WriteFile(csegs[0].path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			got, st, err := replayAll(t, dir, 0)
			if rec == n-1 {
				// Final record: indistinguishable from a torn last write.
				if err != nil {
					t.Fatalf("flip rec %d @%d: final-record damage should truncate, got %v", rec, at, err)
				}
				if len(got) != n-1 || st.TornBytes == 0 {
					t.Fatalf("flip rec %d @%d: recovered %d records, torn=%d", rec, at, len(got), st.TornBytes)
				}
			} else {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip rec %d @%d: mid-log damage gave err %v, want ErrCorrupt", rec, at, err)
				}
			}
			// In neither case may a record after the damage have been
			// delivered with wrong bytes.
			for s, p := range got {
				if !bytes.Equal(p, payloadFor(s)) {
					t.Fatalf("flip rec %d @%d: delivered corrupted payload for seq %d", rec, at, s)
				}
			}
		}
	}
}

// TestBitFlipLengthField corrupts a record's length field into an
// absurd value mid-file and asserts the typed error (framing is lost;
// no resynchronization is attempted).
func TestBitFlipLengthField(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 10, Options{Policy: SyncNever})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(iofault.OS, dir)
	bounds := recordBoundaries(t, segs[0].path)
	buf, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	buf[bounds[4]+3] = 0xff // record 5's length becomes > maxRecordPayload
	if err := os.WriteFile(segs[0].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayAll(t, dir, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd mid-file length gave err %v, want ErrCorrupt", err)
	}
}

// TestTornMiddleSegment truncates a NON-final segment and asserts the
// typed error — a torn middle means lost history, not a repairable tail.
func TestTornMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 120, Options{Policy: SyncNever, SegmentBytes: 512})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	mid := segs[len(segs)/2]
	fi, err := os.Stat(mid.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(mid.path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayAll(t, dir, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn middle segment gave err %v, want ErrCorrupt", err)
	}
}

// TestMissingMiddleSegment deletes a whole middle segment: the seq gap
// must be detected.
func TestMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	w := writeLog(t, dir, 120, Options{Policy: SyncNever, SegmentBytes: 512})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayAll(t, dir, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing middle segment gave err %v, want ErrCorrupt", err)
	}
}

// TestCheckpointCorruptionAtEveryBoundary damages a checkpoint file at
// each interesting offset (magic, version, CRC, seq, length, payload,
// truncation) and asserts LoadCheckpoint either falls back to an older
// valid checkpoint or fails typed — never returns damaged bytes.
func TestCheckpointCorruptionAtEveryBoundary(t *testing.T) {
	master := t.TempDir()
	if _, err := WriteCheckpoint(master, 7, payloadFor(7)); err != nil {
		t.Fatal(err)
	}
	newerPayload := payloadFor(9)
	newer, err := WriteCheckpoint(master, 9, newerPayload)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(newer)
	if err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0x01; return b }},
		{"version", func(b []byte) []byte { b[8] = 99; return b }},
		{"crc", func(b []byte) []byte { b[12] ^= 0x80; return b }},
		{"seq", func(b []byte) []byte { b[16] ^= 0x01; return b }},
		{"length", func(b []byte) []byte { b[24] ^= 0x01; return b }},
		{"payload-first", func(b []byte) []byte { b[ckptHeaderSize] ^= 0x01; return b }},
		{"payload-last", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"truncate-header", func(b []byte) []byte { return b[:ckptHeaderSize-1] }},
		{"truncate-payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"empty", func(b []byte) []byte { return b[:0] }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := cloneLog(t, master)
			path := dir + "/" + checkpointName(9)
			if err := os.WriteFile(path, m.mut(bytes.Clone(clean)), 0o644); err != nil {
				t.Fatal(err)
			}
			got, seq, skipped, err := LoadCheckpoint(dir)
			if err != nil {
				t.Fatalf("%s: no fallback despite older valid checkpoint: %v", m.name, err)
			}
			if seq != 7 || !bytes.Equal(got, payloadFor(7)) {
				t.Fatalf("%s: loaded seq %d — damaged checkpoint was served", m.name, seq)
			}
			if len(skipped) != 1 || !errors.Is(skipped[0], ErrCorrupt) {
				t.Fatalf("%s: skipped = %v, want one ErrCorrupt", m.name, skipped)
			}

			// With the older checkpoint also gone, the same damage must be
			// a typed error, not an empty-state restart.
			if err := os.Remove(dir + "/" + checkpointName(7)); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: sole damaged checkpoint gave err %v, want ErrCorrupt", m.name, err)
			}
		})
	}
}
