package keys

import "fmt"

// Growth entry points for append-only key logs and delta-batch merges.
//
// The batch constructors (New, FromSorted) re-sort or re-validate the
// whole key slice; a maintained adjacency view appends small key batches
// thousands of times, so these paths grow an existing Set without
// touching (or re-sorting) the keys already present.

// AppendSorted returns a Set holding s's keys followed by ks. ks must be
// strictly increasing and its first key must sort after s's last key, so
// the result is sorted without any re-sort — the append-only shape of a
// monotone edge-key log.
//
// The backing slice grows with append semantics: across a chain of
// AppendSorted calls the amortized cost is O(1) per key, and the prefix
// may be shared with s (which remains valid — Sets never expose their
// backing for mutation). Like Go's append, only the LATEST Set in a
// chain may be extended further; appending twice to the same base Set is
// undefined.
func (s *Set) AppendSorted(ks ...string) (*Set, error) {
	if len(ks) == 0 {
		return s, nil
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			return nil, fmt.Errorf("keys: AppendSorted batch not strictly sorted at %d: %q >= %q", i, ks[i-1], ks[i])
		}
	}
	if n := len(s.keys); n > 0 && s.keys[n-1] >= ks[0] {
		return nil, fmt.Errorf("keys: AppendSorted key %q does not sort after existing %q", ks[0], s.keys[n-1])
	}
	grown := s.keys
	if cap(grown)-len(grown) < len(ks) {
		// Double on growth: the built-in append backs off to ~1.25x for
		// large slices, which costs ~2.5x more copying across a log's
		// lifetime of appends.
		c := 2 * len(grown)
		if c < len(grown)+len(ks) {
			c = len(grown) + len(ks)
		}
		grown = make([]string, len(s.keys), c)
		copy(grown, s.keys)
	}
	return fromSortedUnique(append(grown, ks...)), nil
}

// UnionOffsets returns u = s ∪ t together with position maps into u:
// sPos[i] is the index in u of s.Key(i), tPos[j] the index in u of
// t.Key(j). A nil position map means the identity (that side's keys
// occupy the same indices in u) — the common steady-state case where a
// delta batch introduces no new keys, which costs only the subset check.
//
// The maps are strictly increasing, which is exactly what sparse.Embed
// needs to remap CSR coordinates without re-sorting rows.
func (s *Set) UnionOffsets(t *Set) (u *Set, sPos, tPos []int) {
	if t.Len() == 0 || s.Equal(t) {
		return s, nil, nil
	}
	if s.Len() == 0 {
		return t, nil, nil
	}
	// Subset fast paths: when one side's keys form a prefix-aligned
	// subset the union is the other side verbatim.
	if sub, pos := subsetPositions(t, s); sub {
		if identity(pos) {
			pos = nil
		}
		return s, nil, pos
	}
	if sub, pos := subsetPositions(s, t); sub {
		if identity(pos) {
			pos = nil
		}
		return t, pos, nil
	}
	out := make([]string, 0, len(s.keys)+len(t.keys))
	sPos = make([]int, len(s.keys))
	tPos = make([]int, len(t.keys))
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			sPos[i] = len(out)
			out = append(out, s.keys[i])
			i++
		case s.keys[i] > t.keys[j]:
			tPos[j] = len(out)
			out = append(out, t.keys[j])
			j++
		default:
			sPos[i] = len(out)
			tPos[j] = len(out)
			out = append(out, s.keys[i])
			i++
			j++
		}
	}
	for ; i < len(s.keys); i++ {
		sPos[i] = len(out)
		out = append(out, s.keys[i])
	}
	for ; j < len(t.keys); j++ {
		tPos[j] = len(out)
		out = append(out, t.keys[j])
	}
	if identity(sPos) {
		sPos = nil
	}
	return fromSortedUnique(out), sPos, tPos
}

// PositionsIn returns, for each key of s, its index in super — or
// ok=false if any key of s is absent. Positions are strictly increasing;
// nil positions with ok=true mean the identity (s equals super).
//
// Unlike UnionOffsets' merge sweep, this resolves through super's cached
// reverse index: O(len(s)) map hits after the first call on super. It is
// the steady-state path for delta batches resolving against a large,
// long-lived key set (the incidence log's vertex columns, a maintained
// adjacency's key space), where the super set object survives thousands
// of batches and the walk over its full length would dominate.
func (s *Set) PositionsIn(super *Set) ([]int, bool) {
	if s.Equal(super) {
		return nil, true
	}
	if s.Len() > super.Len() {
		return nil, false
	}
	pos := make([]int, len(s.keys))
	for i, k := range s.keys {
		j, ok := super.Index(k)
		if !ok {
			return nil, false
		}
		pos[i] = j
	}
	if identity(pos) {
		pos = nil
	}
	return pos, true
}

// subsetPositions reports whether every key of sub is present in super,
// and if so where: pos[i] is the index in super of sub.Key(i).
func subsetPositions(sub, super *Set) (bool, []int) {
	if sub.Len() > super.Len() {
		return false, nil
	}
	pos := make([]int, len(sub.keys))
	j := 0
	for i, k := range sub.keys {
		for j < len(super.keys) && super.keys[j] < k {
			j++
		}
		if j >= len(super.keys) || super.keys[j] != k {
			return false, nil
		}
		pos[i] = j
		j++
	}
	return true, pos
}

func identity(pos []int) bool {
	for i, p := range pos {
		if p != i {
			return false
		}
	}
	return true
}
