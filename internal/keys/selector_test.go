package keys

import (
	"reflect"
	"testing"
)

// Table-driven edge cases for the D4M selector parser: the malformed
// shapes users actually type (empty range sides, reversed bounds,
// unspaced colons) and the boundary behavior of prefixes containing
// '*', unicode, and 0xff bytes.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		expr    string
		wantErr bool
		want    Selector // nil to skip the shape check
	}{
		{name: "all", expr: ":", want: All{}},
		{name: "bare star is all", expr: "*", want: All{}},
		{name: "empty", expr: "", wantErr: true},
		{name: "whitespace only", expr: "   ", wantErr: true},
		// " : " trims to ":" before shape dispatch, so it reads as the
		// all-keys selector rather than a degenerate range.
		{name: "empty range both sides is all", expr: " : ", want: All{}},
		{name: "empty range lo", expr: " : z", wantErr: true},
		{name: "empty range hi", expr: "a : ", wantErr: true},
		{name: "reversed bounds", expr: "b : a", wantErr: true},
		{name: "reversed unicode bounds", expr: "Ω : A", wantErr: true},
		{name: "equal bounds", expr: "k : k", want: Range{Lo: "k", Hi: "k"}},
		{name: "unspaced colon", expr: "a:b", wantErr: true},
		{name: "half-spaced colon", expr: "a :b", wantErr: true},
		{name: "prefix", expr: "Writer|*", want: Prefix{P: "Writer|"}},
		{name: "star inside prefix", expr: "Wri*ter|*", want: Prefix{P: "Wri*ter|"}},
		{name: "star inside plain key", expr: "a*b", want: NewList("a*b")},
		{name: "unicode prefix", expr: "Genre|é*", want: Prefix{P: "Genre|é"}},
		{name: "unicode range", expr: "Genre|A : Genre|Ω", want: Range{Lo: "Genre|A", Hi: "Genre|Ω"}},
		{name: "list", expr: "k1,k2,k3", want: NewList("k1", "k2", "k3")},
		{name: "list with empties", expr: "a,,b", want: NewList("a", "", "b")},
		{name: "plain", expr: "plain", want: NewList("plain")},
		{name: "range with extra colon", expr: "a : b : c", want: Range{Lo: "a", Hi: "b : c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := Parse(tc.expr)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Parse(%q) accepted, want error (got %#v)", tc.expr, sel)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.expr, err)
			}
			if tc.want != nil && !reflect.DeepEqual(sel, tc.want) {
				t.Fatalf("Parse(%q) = %#v, want %#v", tc.expr, sel, tc.want)
			}
		})
	}
}

// Selection behavior at unicode and byte-value boundaries: prefixes
// whose upper bound requires carrying past 0xff bytes, prefix-colliding
// keys, and ranges that straddle multi-byte rune boundaries.
func TestSelectUnicodeBoundaries(t *testing.T) {
	set := New(
		"", "v", "v|", "v|x", "vv", "v\x00", "v\xff", "v\xffz",
		"é", "éa", "😀", "😀b", "\xff", "\xff\xff", "\xff\xffz",
	)
	cases := []struct {
		name string
		sel  Selector
		want []string
	}{
		{"prefix v catches NUL and 0xff suffixes", Prefix{P: "v"},
			[]string{"v", "v\x00", "vv", "v|", "v|x", "v\xff", "v\xffz"}},
		{"prefix v| excludes plain v", Prefix{P: "v|"}, []string{"v|", "v|x"}},
		{"prefix 0xff carries past the top byte", Prefix{P: "\xff"},
			[]string{"\xff", "\xff\xff", "\xff\xffz"}},
		{"prefix double-0xff", Prefix{P: "\xff\xff"}, []string{"\xff\xff", "\xff\xffz"}},
		{"prefix astral rune", Prefix{P: "😀"}, []string{"😀", "😀b"}},
		{"range across rune widths", Range{Lo: "v", Hi: "é"},
			[]string{"v", "v\x00", "vv", "v|", "v|x", "v\xff", "v\xffz", "é"}},
		{"range hi below all", Range{Lo: "", Hi: ""}, []string{""}},
		{"empty-string key matches empty range", Range{Lo: "", Hi: "\x00"}, []string{""}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub, idx := set.Select(tc.sel)
			got := sub.Keys()
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("selected %q, want %q", got, tc.want)
			}
			if len(idx) != len(got) {
				t.Fatalf("%d indices for %d keys", len(idx), len(got))
			}
			// The scan-window optimization must agree with plain Match.
			for i := 0; i < set.Len(); i++ {
				k := set.Key(i)
				in := false
				for _, g := range got {
					if g == k {
						in = true
					}
				}
				if tc.sel.Match(k) != in {
					t.Fatalf("window/Match disagree on %q", k)
				}
			}
		})
	}
}
