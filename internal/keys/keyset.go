// Package keys implements the finite totally-ordered key sets of the
// paper's Definition I.1 (associative arrays are maps K1×K2 → V with K1,
// K2 finite and totally ordered), together with D4M-style sub-key
// selection ("Matlab-style notation to denote ranges of keys", Figure 1).
//
// Keys are strings under lexicographic order; a Set stores them sorted
// and deduplicated with an O(1) reverse index. Sets are immutable after
// construction and safe for concurrent readers.
package keys

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a finite totally-ordered set of string keys.
type Set struct {
	keys  []string
	index map[string]int
}

// New builds a Set from arbitrary keys, sorting and deduplicating.
func New(ks ...string) *Set {
	sorted := make([]string, len(ks))
	copy(sorted, ks)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != sorted[i-1] {
			out = append(out, k)
		}
	}
	return fromSortedUnique(out)
}

// FromSorted wraps an already-sorted, duplicate-free slice, validating
// the invariant. The slice is retained (not copied): callers must not
// mutate it afterwards.
func FromSorted(ks []string) (*Set, error) {
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			return nil, fmt.Errorf("keys: slice not strictly sorted at %d: %q >= %q", i, ks[i-1], ks[i])
		}
	}
	return fromSortedUnique(ks), nil
}

func fromSortedUnique(ks []string) *Set {
	idx := make(map[string]int, len(ks))
	for i, k := range ks {
		idx[k] = i
	}
	return &Set{keys: ks, index: idx}
}

// Len returns the number of keys.
func (s *Set) Len() int { return len(s.keys) }

// Key returns the i-th key in order.
func (s *Set) Key(i int) string { return s.keys[i] }

// Keys returns a copy of the ordered key slice.
func (s *Set) Keys() []string {
	out := make([]string, len(s.keys))
	copy(out, s.keys)
	return out
}

// Index returns the position of k and whether it is present.
func (s *Set) Index(k string) (int, bool) {
	i, ok := s.index[k]
	return i, ok
}

// Contains reports membership.
func (s *Set) Contains(k string) bool {
	_, ok := s.index[k]
	return ok
}

// Equal reports whether two sets hold the same keys in the same order
// (which, both being sorted, is plain set equality).
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i, k := range s.keys {
		if t.keys[i] != k {
			return false
		}
	}
	return true
}

// Union returns the ordered union of two sets.
func (s *Set) Union(t *Set) *Set {
	out := make([]string, 0, len(s.keys)+len(t.keys))
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			out = append(out, s.keys[i])
			i++
		case s.keys[i] > t.keys[j]:
			out = append(out, t.keys[j])
			j++
		default:
			out = append(out, s.keys[i])
			i++
			j++
		}
	}
	out = append(out, s.keys[i:]...)
	out = append(out, t.keys[j:]...)
	return fromSortedUnique(out)
}

// Intersect returns the ordered intersection of two sets.
func (s *Set) Intersect(t *Set) *Set {
	small, large := s, t
	if small.Len() > large.Len() {
		small, large = large, small
	}
	var out []string
	for _, k := range small.keys {
		if large.Contains(k) {
			out = append(out, k)
		}
	}
	return fromSortedUnique(out)
}

// Select applies a Selector, returning the selected sub-Set and, for
// each selected key, its index in the original Set. The returned indices
// are strictly increasing.
func (s *Set) Select(sel Selector) (*Set, []int) {
	if sel == nil {
		sel = All{}
	}
	lo, hi, prefixed := sel.bounds()
	var picked []string
	var origin []int
	start := 0
	if prefixed {
		start = sort.SearchStrings(s.keys, lo)
	}
	for i := start; i < len(s.keys); i++ {
		k := s.keys[i]
		if prefixed && hi != "" && k >= hi {
			break
		}
		if sel.Match(k) {
			picked = append(picked, k)
			origin = append(origin, i)
		}
	}
	return fromSortedUnique(picked), origin
}

// String renders up to eight keys for debugging.
func (s *Set) String() string {
	const maxShow = 8
	shown := s.keys
	suffix := ""
	if len(shown) > maxShow {
		shown = shown[:maxShow]
		suffix = fmt.Sprintf(",…(%d)", s.Len())
	}
	return "[" + strings.Join(shown, ",") + suffix + "]"
}
