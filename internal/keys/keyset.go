// Package keys implements the finite totally-ordered key sets of the
// paper's Definition I.1 (associative arrays are maps K1×K2 → V with K1,
// K2 finite and totally ordered), together with D4M-style sub-key
// selection ("Matlab-style notation to denote ranges of keys", Figure 1).
//
// Keys are strings under lexicographic order; a Set stores them sorted
// and deduplicated with a lazily built O(1) reverse index. Sets are
// immutable after construction and safe for concurrent readers.
package keys

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Set is a finite totally-ordered set of string keys.
//
// The map-based reverse index is built lazily on the first Index call:
// most intermediate Sets (Union/Intersect/Select results flowing
// through multiplication alignment) are only ever iterated or compared,
// and building a map per intermediate Set dominated allocation on the
// construction path. Membership tests use binary search on the sorted
// key slice, which needs no index at all.
//
// A Set that originates from an Interner can instead be Bound to an
// InternIndex: Index then resolves through the interner's shared hash
// table and a flat id→position array, and the map[string]int — a second
// full copy of the key bytes' hash structure, which for huge universes
// doubled the key-set memory — is never built.
type Set struct {
	keys     []string
	idxOnce  sync.Once
	index    map[string]int
	interned atomic.Pointer[InternIndex]
}

// New builds a Set from arbitrary keys, sorting and deduplicating.
func New(ks ...string) *Set {
	sorted := make([]string, len(ks))
	copy(sorted, ks)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != sorted[i-1] {
			out = append(out, k)
		}
	}
	return fromSortedUnique(out)
}

// FromSorted wraps an already-sorted, duplicate-free slice, validating
// the invariant. The slice is retained (not copied): callers must not
// mutate it afterwards.
func FromSorted(ks []string) (*Set, error) {
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			return nil, fmt.Errorf("keys: slice not strictly sorted at %d: %q >= %q", i, ks[i-1], ks[i])
		}
	}
	return fromSortedUnique(ks), nil
}

func fromSortedUnique(ks []string) *Set {
	return &Set{keys: ks}
}

// ensureIndex builds the reverse index exactly once. Safe for
// concurrent readers: Sets are immutable apart from this memoization.
func (s *Set) ensureIndex() {
	s.idxOnce.Do(func() {
		idx := make(map[string]int, len(s.keys))
		for i, k := range s.keys {
			idx[k] = i
		}
		s.index = idx
	})
}

// Len returns the number of keys.
func (s *Set) Len() int { return len(s.keys) }

// Key returns the i-th key in order.
func (s *Set) Key(i int) string { return s.keys[i] }

// Keys returns a copy of the ordered key slice.
func (s *Set) Keys() []string {
	out := make([]string, len(s.keys))
	copy(out, s.keys)
	return out
}

// Bind attaches an interner-backed reverse index, replacing the lazy
// map[string]int for this Set. The binding must describe exactly this
// Set's keys (ix.Index(s.Key(i)) == i for all i, and misses for every
// other key); internal/stream maintains such bindings incrementally as
// its vertex universes grow. Binding is an atomic publish, so it is
// safe even when another goroutine is concurrently calling Index — but
// callers should bind before sharing the Set where possible.
func (s *Set) Bind(ix *InternIndex) {
	if ix != nil {
		s.interned.Store(ix)
	}
}

// Interned reports whether this Set resolves Index through an
// interner-backed binding (no per-Set map).
func (s *Set) Interned() bool { return s.interned.Load() != nil }

// Index returns the position of k and whether it is present. A Set
// bound to an interner resolves through the interner's hash table; the
// first call on an unbound Set builds its map reverse index. Repeated
// lookups are O(1) either way.
func (s *Set) Index(k string) (int, bool) {
	if ix := s.interned.Load(); ix != nil {
		return ix.Index(k)
	}
	s.ensureIndex()
	i, ok := s.index[k]
	return i, ok
}

// Contains reports membership by binary search — O(log n) without
// forcing the reverse index into existence.
func (s *Set) Contains(k string) bool {
	_, ok := s.IndexSorted(k)
	return ok
}

// IndexSorted returns the position of k by binary search — O(log n)
// without forcing the reverse index into existence; the right lookup for
// short-lived Sets (delta batches) indexed only a handful of times.
func (s *Set) IndexSorted(k string) (int, bool) {
	i := sort.SearchStrings(s.keys, k)
	return i, i < len(s.keys) && s.keys[i] == k
}

// Equal reports whether two sets hold the same keys in the same order
// (which, both being sorted, is plain set equality). Identical Sets and
// Sets sharing a backing slice (as returned by the Union/Intersect fast
// paths) compare in O(1).
func (s *Set) Equal(t *Set) bool {
	if s == t {
		return true
	}
	if s.Len() != t.Len() {
		return false
	}
	if len(s.keys) > 0 && &s.keys[0] == &t.keys[0] {
		return true
	}
	for i, k := range s.keys {
		if t.keys[i] != k {
			return false
		}
	}
	return true
}

// Union returns the ordered union of two sets. When one side is empty
// or the sets are equal, the other Set is returned as-is (Sets are
// immutable, so sharing is safe).
func (s *Set) Union(t *Set) *Set {
	if len(s.keys) == 0 {
		return t
	}
	if len(t.keys) == 0 || s.Equal(t) {
		return s
	}
	out := make([]string, 0, len(s.keys)+len(t.keys))
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			out = append(out, s.keys[i])
			i++
		case s.keys[i] > t.keys[j]:
			out = append(out, t.keys[j])
			j++
		default:
			out = append(out, s.keys[i])
			i++
			j++
		}
	}
	out = append(out, s.keys[i:]...)
	out = append(out, t.keys[j:]...)
	return fromSortedUnique(out)
}

// Intersect returns the ordered intersection of two sets by a sorted
// two-pointer merge — O(n+m) with no hashing. Equal sets (including
// shared-backing ones) intersect to themselves in O(1).
func (s *Set) Intersect(t *Set) *Set {
	if s.Equal(t) {
		return s
	}
	var out []string
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			i++
		case s.keys[i] > t.keys[j]:
			j++
		default:
			out = append(out, s.keys[i])
			i++
			j++
		}
	}
	return fromSortedUnique(out)
}

// Select applies a Selector, returning the selected sub-Set and, for
// each selected key, its index in the original Set. The returned indices
// are strictly increasing.
func (s *Set) Select(sel Selector) (*Set, []int) {
	if sel == nil {
		sel = All{}
	}
	lo, hi, prefixed := sel.bounds()
	var picked []string
	var origin []int
	start := 0
	if prefixed {
		start = sort.SearchStrings(s.keys, lo)
	}
	for i := start; i < len(s.keys); i++ {
		k := s.keys[i]
		if prefixed && hi != "" && k >= hi {
			break
		}
		if sel.Match(k) {
			picked = append(picked, k)
			origin = append(origin, i)
		}
	}
	return fromSortedUnique(picked), origin
}

// String renders up to eight keys for debugging.
func (s *Set) String() string {
	const maxShow = 8
	shown := s.keys
	suffix := ""
	if len(shown) > maxShow {
		shown = shown[:maxShow]
		suffix = fmt.Sprintf(",…(%d)", s.Len())
	}
	return "[" + strings.Join(shown, ",") + suffix + "]"
}
