package keys

import (
	"strings"
	"testing"
)

// FuzzParse hardens the D4M selector parser: no input may panic, and
// every accepted selector must behave consistently with its Match
// semantics on a fixed key set.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		":", "a : b", "Writer|*", "k1,k2", "plain", "", " : ", "x : ",
		"* : *", "a : b : c", "Genre|A : Genre|Z", ",", "a,,b", "*",
		"\x00", "a\xffb : z", strings.Repeat("k", 300),
	} {
		f.Add(seed)
	}
	keySet := New("Genre|Pop", "Genre|Rock", "Writer|Ann", "a", "b", "k1", "k2", "plain")
	f.Fuzz(func(t *testing.T, expr string) {
		sel, err := Parse(expr)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		sub, idx := keySet.Select(sel)
		if sub.Len() != len(idx) {
			t.Fatalf("Select size mismatch: %d keys, %d indices", sub.Len(), len(idx))
		}
		// Every selected key must Match; indices must be strictly
		// increasing and in range.
		for n := 0; n < sub.Len(); n++ {
			if !sel.Match(sub.Key(n)) {
				t.Fatalf("selected key %q does not Match", sub.Key(n))
			}
			if idx[n] < 0 || idx[n] >= keySet.Len() {
				t.Fatalf("origin index %d out of range", idx[n])
			}
			if n > 0 && idx[n-1] >= idx[n] {
				t.Fatalf("origin indices not increasing: %v", idx)
			}
		}
		// And no unselected key may Match (completeness).
		selected := map[string]bool{}
		for n := 0; n < sub.Len(); n++ {
			selected[sub.Key(n)] = true
		}
		for n := 0; n < keySet.Len(); n++ {
			k := keySet.Key(n)
			if sel.Match(k) && !selected[k] {
				t.Fatalf("key %q Matches but was not selected", k)
			}
		}
	})
}
