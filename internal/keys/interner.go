package keys

import (
	"hash/maphash"
	"math"
	"sort"
	"sync"
	"unsafe"
)

// Interner is a slab-backed string-key interner: every distinct key is
// stored once as raw bytes in one append-only slab and assigned a dense
// int32 id in insertion order. Resolution goes through an open-addressed
// hash table over the key BYTES — there are no per-key string header
// allocations, no map[string]int, and the hash treats keys as opaque
// byte strings (embedded NUL, 0xff, shared prefixes, and non-UTF-8
// sequences are all just bytes).
//
// Ids are STABLE: once assigned, an id never changes, regardless of how
// many keys are interned later — which is what lets a maintained
// adjacency view cache id→position maps across thousands of delta
// batches. Sorted order is a VIEW derived on demand (SortedView, or the
// incremental maps internal/stream maintains), never a property of the
// ids themselves.
//
// Concurrency: writes (Intern, InternBatch) are serialized by an
// internal mutex; reads (Lookup, Key, Len) take a read lock, so bound
// Sets handed to snapshot readers can resolve keys while ingest keeps
// interning. Batch entry points amortize the lock to one acquisition
// per batch.
type Interner struct {
	mu   sync.RWMutex
	seed maphash.Seed
	slab []byte   // all key bytes, back to back
	off  []uint32 // key i occupies slab[off[i]:off[i+1]]; len = n+1
	tab  []int32  // open-addressed table of ids; -1 = empty
	mask uint32   // len(tab)-1; len(tab) is a power of two
}

const internerMinTable = 64

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	in := &Interner{seed: maphash.MakeSeed(), off: make([]uint32, 1, 1024)}
	in.tab = newInternTable(internerMinTable)
	in.mask = internerMinTable - 1
	return in
}

func newInternTable(size int) []int32 {
	tab := make([]int32, size)
	for i := range tab {
		tab[i] = -1
	}
	return tab
}

// Len returns the number of interned keys (== the next id to be
// assigned).
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.off) - 1
}

// InternerStats is a point-in-time snapshot of an interner's memory
// footprint, cheap enough to poll from a metrics scrape.
type InternerStats struct {
	Keys      int // distinct keys interned
	SlabBytes int // cumulative key bytes in the append-only slab
	TableSlot int // open-addressed table capacity (power of two)
}

// Stats reports the interner's current size under one read lock.
func (in *Interner) Stats() InternerStats {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return InternerStats{
		Keys:      len(in.off) - 1,
		SlabBytes: len(in.slab),
		TableSlot: len(in.tab),
	}
}

// hashKey hashes the key bytes through hash/maphash with this
// interner's random per-instance seed — the same flooding protection
// Go's built-in map hash provides (an unseeded hash would let an
// attacker-controlled vertex vocabulary drive every probe chain to
// O(n) with precomputed collisions), byte-oriented so adversarial keys
// (NUL, 0xff, unicode, long shared prefixes) hash like any others.
func (in *Interner) hashKey(k string) uint64 {
	return maphash.String(in.seed, k)
}

// keyAt returns key id as a zero-copy string view into the slab. Slab
// bytes are immutable once written (appends may move the slab to a new
// backing array, but the old array keeps the valid prefix alive for any
// outstanding views), so the returned string is valid forever.
func (in *Interner) keyAt(id int32) string {
	lo, hi := in.off[id], in.off[id+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&in.slab[lo], int(hi-lo))
}

// Key returns the key with the given id. The string shares the slab's
// backing (zero-copy) and must be treated as immutable.
func (in *Interner) Key(id int32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.keyAt(id)
}

// lookupLocked probes for k; returns (id, true) when present, or the
// insertion slot and false.
func (in *Interner) lookupLocked(k string) (int32, uint32, bool) {
	slot := uint32(in.hashKey(k)) & in.mask
	for {
		id := in.tab[slot]
		if id < 0 {
			return 0, slot, false
		}
		if in.keyAt(id) == k {
			return id, slot, true
		}
		slot = (slot + 1) & in.mask
	}
}

// Lookup resolves k without interning it.
func (in *Interner) Lookup(k string) (int32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, _, ok := in.lookupLocked(k)
	return id, ok
}

// LookupBatch resolves each ks[i] into ids[i] under one lock
// acquisition, returning false as soon as any key is absent (ids
// contents are then unspecified). len(ids) must equal len(ks).
func (in *Interner) LookupBatch(ks []string, ids []int32) bool {
	in.mu.RLock()
	defer in.mu.RUnlock()
	for i, k := range ks {
		id, _, ok := in.lookupLocked(k)
		if !ok {
			return false
		}
		ids[i] = id
	}
	return true
}

// internLocked adds k (which must be absent, at the given free slot)
// and returns its new id.
func (in *Interner) internLocked(k string, slot uint32) int32 {
	if len(in.slab)+len(k) > math.MaxUint32 {
		// Offsets are uint32; wrapping would silently conflate distinct
		// keys (corrupted adjacency), so fail loudly at the 4 GiB
		// cumulative-key-bytes boundary instead.
		panic("keys: interner slab exceeds 4GiB of key bytes")
	}
	if len(in.off)-1 > math.MaxInt32 {
		panic("keys: interner exceeds 2^31 distinct keys")
	}
	id := int32(len(in.off) - 1)
	in.slab = append(in.slab, k...)
	in.off = append(in.off, uint32(len(in.slab)))
	in.tab[slot] = id
	// Grow at 2/3 load so probe chains stay short.
	if n := len(in.off) - 1; n*3 > len(in.tab)*2 {
		in.growLocked()
	}
	return id
}

func (in *Interner) growLocked() {
	tab := newInternTable(2 * len(in.tab))
	mask := uint32(len(tab) - 1)
	for _, id := range in.tab {
		if id < 0 {
			continue
		}
		slot := uint32(in.hashKey(in.keyAt(id))) & mask
		for tab[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		tab[slot] = id
	}
	in.tab, in.mask = tab, mask
}

// Intern resolves k, adding it with the next dense id if absent. The
// key bytes are copied into the slab; the caller's string is not
// retained.
func (in *Interner) Intern(k string) int32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	id, slot, ok := in.lookupLocked(k)
	if ok {
		return id
	}
	return in.internLocked(k, slot)
}

// InternBatch resolves each ks[i] into ids[i], interning absent keys,
// under one lock acquisition. It returns the interner's length BEFORE
// the batch: every ids[i] ≥ that length is a key this batch introduced.
func (in *Interner) InternBatch(ks []string, ids []int32) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	before := len(in.off) - 1
	for i, k := range ks {
		id, slot, ok := in.lookupLocked(k)
		if !ok {
			id = in.internLocked(k, slot)
		}
		ids[i] = id
	}
	return before
}

// SortedView returns the interner's current keys as a sorted Set bound
// back to this interner, plus the id→position map realizing the sort:
// pos[id] is the position of key id in the Set. This is the lazily
// computed sorted-order view — ids stay insertion-ordered; only the
// view is sorted. The returned Set resolves Index through the
// interner's hash table (no second map is ever built).
func (in *Interner) SortedView() (*Set, []int32) {
	in.mu.RLock()
	n := len(in.off) - 1
	ks := make([]string, n)
	for id := 0; id < n; id++ {
		ks[id] = in.keyAt(int32(id))
	}
	in.mu.RUnlock()
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool { return ks[ids[a]] < ks[ids[b]] })
	sorted := make([]string, n)
	pos := make([]int32, n)
	for p, id := range ids {
		sorted[p] = ks[id]
		pos[id] = int32(p)
	}
	set, err := FromSorted(sorted)
	if err != nil {
		panic("keys: interner holds duplicate keys: " + err.Error())
	}
	set.Bind(&InternIndex{In: in, Pos: pos})
	return set, pos
}

// InternIndex is an interner-backed reverse index for a Set: position
// lookups resolve through the interner's hash table plus a fixed
// id→position map, instead of the Set building its own map[string]int —
// which for a huge universe would double the key-set memory (the
// ensureIndex cost this replaces).
//
// Pos[id] is the position in the Set of the key with that id; ids ≥
// len(Pos) (interned after this Set was formed) and ids mapped to a
// negative position are not in the Set. An InternIndex is immutable
// after binding: universe growth builds a NEW map and binds it to the
// NEW Set (copy-on-write), so Sets already handed out keep resolving
// against the universe they describe.
type InternIndex struct {
	In  *Interner
	Pos []int32
}

// Index resolves k to its Set position.
func (ix *InternIndex) Index(k string) (int, bool) {
	id, ok := ix.In.Lookup(k)
	if !ok || int(id) >= len(ix.Pos) {
		return 0, false
	}
	p := ix.Pos[id]
	if p < 0 {
		return 0, false
	}
	return int(p), true
}
