package keys

import (
	"fmt"
	"testing"
)

func TestInternerBinaryRoundTrip(t *testing.T) {
	in := NewInterner()
	ks := []string{"", "a", "aa", "a\x00b", "\xff\xfe", "vertex-000017", "a"}
	ids := make([]int32, len(ks))
	in.InternBatch(ks, ids)
	for i := 0; i < 300; i++ {
		in.Intern(fmt.Sprintf("bulk-%04d", i))
	}

	buf := in.AppendBinary([]byte("prefix"))
	got, rest, err := InternerFromBinary(buf[len("prefix"):])
	if err != nil {
		t.Fatalf("InternerFromBinary: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(rest))
	}
	if got.Len() != in.Len() {
		t.Fatalf("decoded %d keys, want %d", got.Len(), in.Len())
	}
	// Ids must be preserved exactly: same key at every id, resolvable
	// through the rebuilt (fresh-seed) hash table.
	for id := int32(0); id < int32(in.Len()); id++ {
		k := in.Key(id)
		if got.Key(id) != k {
			t.Fatalf("id %d: key %q became %q", id, k, got.Key(id))
		}
		rid, ok := got.Lookup(k)
		if !ok || rid != id {
			t.Fatalf("lookup %q after decode: id %d ok=%v, want %d", k, rid, ok, id)
		}
	}
	// The decoded interner must keep working as a live interner.
	if id := got.Intern("new-after-decode"); id != int32(in.Len()) {
		t.Fatalf("post-decode Intern assigned id %d, want %d", id, in.Len())
	}
}

func TestInternerBinaryEmpty(t *testing.T) {
	got, rest, err := InternerFromBinary(NewInterner().AppendBinary(nil))
	if err != nil || got.Len() != 0 || len(rest) != 0 {
		t.Fatalf("empty round trip: len=%d rest=%d err=%v", got.Len(), len(rest), err)
	}
	if id := got.Intern("x"); id != 0 {
		t.Fatalf("first id after empty decode = %d", id)
	}
}

func TestInternerFromBinaryRejectsDamage(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 20; i++ {
		in.Intern(fmt.Sprintf("k%02d", i))
	}
	clean := in.AppendBinary(nil)

	cases := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:4] }},
		{"truncated-offsets", func(b []byte) []byte { return b[:8+3] }},
		{"truncated-slab", func(b []byte) []byte { return b[:len(b)-1] }},
		{"nonmonotone-offsets", func(b []byte) []byte { b[8] = 0xff; b[9] = 0xff; return b }},
		{"count-overflow", func(b []byte) []byte { b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mut(append([]byte(nil), clean...))
			if _, _, err := InternerFromBinary(buf); err == nil {
				t.Fatal("damaged interner dump decoded without error")
			}
		})
	}
}

func TestInternerFromBinaryRejectsDuplicateKeys(t *testing.T) {
	// Hand-build a dump whose slab holds the same key twice — a state a
	// real interner can never reach, so it must be flagged as corrupt.
	in := NewInterner()
	in.Intern("dup")
	buf := in.AppendBinary(nil)
	// n=2, slab "dupdup", offsets 3,6.
	var forged []byte
	forged = append(forged, 2, 0, 0, 0, 6, 0, 0, 0, 3, 0, 0, 0, 6, 0, 0, 0)
	forged = append(forged, "dupdup"...)
	_ = buf
	if _, _, err := InternerFromBinary(forged); err == nil {
		t.Fatal("duplicate-key slab decoded without error")
	}
}
