package keys

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New("c", "a", "b", "a", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := []string{"a", "b", "c"}
	for i, k := range want {
		if s.Key(i) != k {
			t.Errorf("Key(%d) = %q, want %q", i, s.Key(i), k)
		}
		if idx, ok := s.Index(k); !ok || idx != i {
			t.Errorf("Index(%q) = %d,%v", k, idx, ok)
		}
	}
	if s.Contains("z") {
		t.Error("Contains(z) should be false")
	}
}

func TestNewEmpty(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Errorf("empty set Len = %d", s.Len())
	}
	sub, idx := s.Select(All{})
	if sub.Len() != 0 || len(idx) != 0 {
		t.Error("selecting from empty set should be empty")
	}
}

func TestFromSortedValidates(t *testing.T) {
	if _, err := FromSorted([]string{"a", "b", "c"}); err != nil {
		t.Errorf("valid sorted slice rejected: %v", err)
	}
	if _, err := FromSorted([]string{"b", "a"}); err == nil {
		t.Error("unsorted slice accepted")
	}
	if _, err := FromSorted([]string{"a", "a"}); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestKeysReturnsCopy(t *testing.T) {
	s := New("a", "b")
	ks := s.Keys()
	ks[0] = "mutated"
	if s.Key(0) != "a" {
		t.Error("Keys() exposed internal storage")
	}
}

func TestUnionIntersect(t *testing.T) {
	a := New("a", "b", "c")
	b := New("b", "c", "d")
	if got := a.Union(b); !got.Equal(New("a", "b", "c", "d")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New("b", "c")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(New("z")); got.Len() != 0 {
		t.Errorf("disjoint Intersect = %v", got)
	}
	if !a.Union(New()).Equal(a) {
		t.Error("Union with empty should be identity")
	}
}

func TestEqual(t *testing.T) {
	if !New("a", "b").Equal(New("b", "a")) {
		t.Error("order of construction should not matter")
	}
	if New("a").Equal(New("a", "b")) || New("a").Equal(New("b")) {
		t.Error("unequal sets compared equal")
	}
}

func TestSelectRange(t *testing.T) {
	s := New("Artist|Kitten", "Genre|Electronic", "Genre|Pop", "Genre|Rock", "Writer|Chad Anderson")
	sub, idx := s.Select(Range{Lo: "Genre|A", Hi: "Genre|Z"})
	if !sub.Equal(New("Genre|Electronic", "Genre|Pop", "Genre|Rock")) {
		t.Errorf("range select = %v", sub)
	}
	wantIdx := []int{1, 2, 3}
	for i, w := range wantIdx {
		if idx[i] != w {
			t.Errorf("origin idx = %v, want %v", idx, wantIdx)
			break
		}
	}
}

func TestSelectPrefix(t *testing.T) {
	s := New("Genre|Pop", "Writer|Barrett Rich", "Writer|Chloe Chaidez", "Type|LP")
	sub, _ := s.Select(Prefix{P: "Writer|"})
	if sub.Len() != 2 || !strings.HasPrefix(sub.Key(0), "Writer|") {
		t.Errorf("prefix select = %v", sub)
	}
}

func TestSelectRangeInclusiveEndpoints(t *testing.T) {
	s := New("a", "b", "c")
	sub, _ := s.Select(Range{Lo: "a", Hi: "c"})
	if sub.Len() != 3 {
		t.Errorf("inclusive range dropped endpoints: %v", sub)
	}
	sub, _ = s.Select(Range{Lo: "b", Hi: "b"})
	if sub.Len() != 1 || sub.Key(0) != "b" {
		t.Errorf("singleton range = %v", sub)
	}
}

func TestSelectList(t *testing.T) {
	s := New("a", "b", "c", "d")
	sub, idx := s.Select(NewList("d", "b", "nope"))
	if !sub.Equal(New("b", "d")) {
		t.Errorf("list select = %v", sub)
	}
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Errorf("list origin = %v", idx)
	}
}

func TestSelectNilSelectorMeansAll(t *testing.T) {
	s := New("a", "b")
	sub, _ := s.Select(nil)
	if !sub.Equal(s) {
		t.Error("nil selector should select everything")
	}
}

func TestPrefixUpperBound(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Writer|", "Writer}"},
		{"a", "b"},
		{"a\xff", "b"},
		{"\xff\xff", ""},
	}
	for _, c := range cases {
		if got := prefixUpperBound(c.in); got != c.want {
			t.Errorf("prefixUpperBound(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	s := New("Genre|Electronic", "Genre|Pop", "Writer|Barrett Rich", "Type|LP")

	sel, err := Parse("Genre|A : Genre|Z")
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := s.Select(sel)
	if sub.Len() != 2 {
		t.Errorf("parsed range selected %v", sub)
	}

	sel, err = Parse("Writer|*")
	if err != nil {
		t.Fatal(err)
	}
	sub, _ = s.Select(sel)
	if sub.Len() != 1 {
		t.Errorf("parsed prefix selected %v", sub)
	}

	sel, err = Parse(":")
	if err != nil {
		t.Fatal(err)
	}
	sub, _ = s.Select(sel)
	if sub.Len() != s.Len() {
		t.Error("':' should select all")
	}

	sel, err = Parse("Type|LP,Genre|Pop")
	if err != nil {
		t.Fatal(err)
	}
	sub, _ = s.Select(sel)
	if sub.Len() != 2 {
		t.Errorf("parsed list selected %v", sub)
	}

	sel, err = Parse("Type|LP")
	if err != nil {
		t.Fatal(err)
	}
	sub, _ = s.Select(sel)
	if sub.Len() != 1 || sub.Key(0) != "Type|LP" {
		t.Errorf("parsed exact key selected %v", sub)
	}

	for _, bad := range []string{"", "b : a", "x : "} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}

	if sel, err := Parse("*"); err != nil {
		t.Errorf("bare * should parse: %v", err)
	} else if _, ok := sel.(All); !ok {
		t.Errorf("bare * should mean All, got %T", sel)
	}
}

// Property: Select with All returns the set itself; Union is
// commutative and associative; Intersect(s, s) == s.
func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	mk := func(ks []string) *Set { return New(ks...) }

	selfAll := func(ks []string) bool {
		s := mk(ks)
		sub, idx := s.Select(All{})
		if !sub.Equal(s) {
			return false
		}
		return sort.IntsAreSorted(idx)
	}
	if err := quick.Check(selfAll, cfg); err != nil {
		t.Error(err)
	}
	unionComm := func(x, y []string) bool {
		a, b := mk(x), mk(y)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(unionComm, cfg); err != nil {
		t.Error(err)
	}
	interIdem := func(x []string) bool {
		a := mk(x)
		return a.Intersect(a).Equal(a)
	}
	if err := quick.Check(interIdem, cfg); err != nil {
		t.Error(err)
	}
	// Range selection returns exactly the keys its Match accepts.
	rangeExact := func(x []string, lo, hi string) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		s := mk(x)
		sel := Range{Lo: lo, Hi: hi}
		sub, _ := s.Select(sel)
		want := 0
		for _, k := range s.Keys() {
			if sel.Match(k) {
				want++
			}
		}
		return sub.Len() == want
	}
	if err := quick.Check(rangeExact, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringTruncates(t *testing.T) {
	s := New("a", "b", "c", "d", "e", "f", "g", "h", "i", "j")
	str := s.String()
	if !strings.Contains(str, "…(10)") {
		t.Errorf("String should truncate long sets: %q", str)
	}
	if short := New("x").String(); short != "[x]" {
		t.Errorf("short String = %q", short)
	}
}

// The reverse index is lazy: Index must work (and be consistent with
// the key order) on Sets produced by every constructor and set
// operation, including concurrent first use.
func TestLazyIndexConsistency(t *testing.T) {
	sets := []*Set{
		New("d", "b", "a", "c"),
		New("a", "x").Union(New("b", "y")),
		New("a", "b", "c").Intersect(New("b", "c", "d")),
	}
	if sub, _ := New("p", "q", "r").Select(Prefix{P: "q"}); true {
		sets = append(sets, sub)
	}
	for n, s := range sets {
		done := make(chan bool)
		for w := 0; w < 4; w++ {
			go func() {
				ok := true
				for i := 0; i < s.Len(); i++ {
					idx, present := s.Index(s.Key(i))
					ok = ok && present && idx == i
				}
				done <- ok
			}()
		}
		for w := 0; w < 4; w++ {
			if !<-done {
				t.Fatalf("set %d: lazy index inconsistent with key order", n)
			}
		}
		if _, present := s.Index("zzz-missing"); present {
			t.Fatalf("set %d: phantom key", n)
		}
	}
}

// Union and Intersect fast paths may return a shared Set; the result
// must still be correct and Equal must recognise shared backing in O(1).
func TestSetSharingFastPaths(t *testing.T) {
	s := New("a", "b", "c")
	empty := New()
	if got := s.Union(empty); got != s {
		t.Error("Union with empty should return the set itself")
	}
	if got := empty.Union(s); got != s {
		t.Error("empty.Union(s) should return s")
	}
	if got := s.Intersect(s); got != s {
		t.Error("self-intersection should return the set itself")
	}
	twin := New("a", "b", "c")
	if !s.Equal(twin) || !twin.Equal(s) {
		t.Error("equal-content sets must compare equal")
	}
	if got := s.Union(twin); !got.Equal(s) {
		t.Error("union of equal sets wrong")
	}
	if got := s.Intersect(twin); !got.Equal(s) {
		t.Error("intersection of equal sets wrong")
	}
	if s.Contains("zz") || !s.Contains("b") {
		t.Error("binary-search Contains wrong")
	}
}
