package keys

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Interner slab serialization. The wire layout is the slab itself plus
// the offset array — the two arrays that define the id space:
//
//	uint32 LE  key count n
//	uint32 LE  slab length (== off[n])
//	[n]uint32  off[1..n] (off[0] is always 0 and is not stored)
//	[...]byte  slab bytes
//
// The hash table and seed are NOT serialized: maphash seeds are
// process-local by design, so loading rebuilds the table by re-hashing
// each key under a fresh seed. Ids are preserved because they are
// defined by slab order, not by the table.

// AppendBinary appends the interner's serialized form to dst.
func (in *Interner) AppendBinary(dst []byte) []byte {
	in.mu.RLock()
	defer in.mu.RUnlock()
	n := len(in.off) - 1
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(in.slab)))
	for _, o := range in.off[1:] {
		dst = binary.LittleEndian.AppendUint32(dst, o)
	}
	return append(dst, in.slab...)
}

// InternerFromBinary decodes an interner serialized by AppendBinary
// from the front of buf, returning the remaining bytes. The offset
// array is validated (monotone, ending exactly at the slab length) and
// the hash table is rebuilt under a fresh seed; a duplicate key in the
// slab — impossible in a well-formed dump — is reported as corruption.
func InternerFromBinary(buf []byte) (*Interner, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("keys: interner header truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	slabLen := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if n > math.MaxInt32 || int64(len(buf)) < int64(n)*4+int64(slabLen) {
		return nil, nil, fmt.Errorf("keys: interner body truncated (n=%d slab=%d have=%d)", n, slabLen, len(buf))
	}
	off := make([]uint32, n+1)
	for i := 1; i <= n; i++ {
		off[i] = binary.LittleEndian.Uint32(buf[(i-1)*4:])
		if off[i] < off[i-1] {
			return nil, nil, fmt.Errorf("keys: interner offsets not monotone at key %d", i)
		}
	}
	if int(off[n]) != slabLen {
		return nil, nil, fmt.Errorf("keys: interner offsets end at %d, slab is %d bytes", off[n], slabLen)
	}
	buf = buf[n*4:]
	in := NewInterner()
	in.slab = append(in.slab, buf[:slabLen]...)
	in.off = off
	size := internerMinTable
	for n*3 > size*2 {
		size *= 2
	}
	in.tab = newInternTable(size)
	in.mask = uint32(size - 1)
	for id := int32(0); id < int32(n); id++ {
		k := in.keyAt(id)
		_, slot, ok := in.lookupLocked(k)
		if ok {
			return nil, nil, fmt.Errorf("keys: interner slab holds duplicate key %q", k)
		}
		in.tab[slot] = id
	}
	return in, buf[slabLen:], nil
}
