package keys

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestAppendSorted(t *testing.T) {
	s := New("a", "c")
	grown, err := s.AppendSorted("d", "f")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grown.Keys(), []string{"a", "c", "d", "f"}) {
		t.Errorf("grown = %v", grown.Keys())
	}
	if !reflect.DeepEqual(s.Keys(), []string{"a", "c"}) {
		t.Errorf("base mutated: %v", s.Keys())
	}
	if same, err := grown.AppendSorted(); err != nil || same != grown {
		t.Errorf("empty append should return receiver unchanged")
	}
	if _, err := grown.AppendSorted("f"); err == nil {
		t.Error("non-increasing append accepted")
	}
	if _, err := grown.AppendSorted("z", "y"); err == nil {
		t.Error("unsorted batch accepted")
	}
	// Chained appends stay valid.
	g2, err := grown.AppendSorted("g")
	if err != nil {
		t.Fatal(err)
	}
	g3, err := g2.AppendSorted("h", "i")
	if err != nil {
		t.Fatal(err)
	}
	if g3.Len() != 7 || !g3.Contains("h") || !g3.Contains("a") {
		t.Errorf("chain broken: %v", g3.Keys())
	}
	// Append to the empty set works.
	e, err := New().AppendSorted("x")
	if err != nil || e.Len() != 1 {
		t.Errorf("append to empty: %v %v", e, err)
	}
}

func TestUnionOffsetsMatchesUnion(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	key := func(i int) string { return fmt.Sprintf("k%03d", i) }
	for trial := 0; trial < 200; trial++ {
		var sk, tk []string
		for i := 0; i < 30; i++ {
			if r.Intn(3) == 0 {
				sk = append(sk, key(i))
			}
			if r.Intn(3) == 0 {
				tk = append(tk, key(i))
			}
		}
		s, tt := New(sk...), New(tk...)
		u, sPos, tPos := s.UnionOffsets(tt)
		if !u.Equal(s.Union(tt)) {
			t.Fatalf("trial %d: union mismatch: %v vs %v", trial, u, s.Union(tt))
		}
		check := func(side *Set, pos []int, name string) {
			for i := 0; i < side.Len(); i++ {
				want := side.Key(i)
				ui := i
				if pos != nil {
					ui = pos[i]
				}
				if ui >= u.Len() || u.Key(ui) != want {
					t.Fatalf("trial %d: %s pos[%d]=%d maps %q to %q", trial, name, i, ui, want, u.Key(ui))
				}
			}
		}
		check(s, sPos, "s")
		check(tt, tPos, "t")
	}
}

func TestUnionOffsetsFastPaths(t *testing.T) {
	s := New("a", "b", "c")
	// Equal sets: identity both sides, u is s itself.
	u, sp, tp := s.UnionOffsets(New("a", "b", "c"))
	if u != s || sp != nil || tp != nil {
		t.Errorf("equal sets should share: %v %v %v", u, sp, tp)
	}
	// Subset of s: u is s, t mapped.
	u, sp, tp = s.UnionOffsets(New("a", "c"))
	if u != s || sp != nil || !reflect.DeepEqual(tp, []int{0, 2}) {
		t.Errorf("subset path: %v %v %v", u, sp, tp)
	}
	// Prefix subset with identity positions.
	u, sp, tp = s.UnionOffsets(New("a", "b"))
	if u != s || sp != nil || tp != nil {
		t.Errorf("prefix subset should be identity: %v %v %v", u, sp, tp)
	}
	// s subset of t.
	big := New("a", "b", "c", "d")
	u, sp, tp = s.UnionOffsets(big)
	if u != big || sp != nil || tp != nil {
		t.Errorf("s⊆t identity: %v %v %v", u, sp, tp)
	}
	// Pure suffix growth: s's positions stay the identity.
	u, sp, tp = s.UnionOffsets(New("x", "y"))
	if sp != nil || !reflect.DeepEqual(tp, []int{3, 4}) {
		t.Errorf("suffix growth: %v %v", sp, tp)
	}
	if !reflect.DeepEqual(u.Keys(), []string{"a", "b", "c", "x", "y"}) {
		t.Errorf("suffix union: %v", u.Keys())
	}
	// Empty sides.
	if u, _, _ := s.UnionOffsets(New()); u != s {
		t.Error("t empty should return s")
	}
	if u, _, _ := New().UnionOffsets(s); u != s {
		t.Error("s empty should return t")
	}
}

func TestPositionsIn(t *testing.T) {
	super := New("a", "c", "e", "g", "i")
	sub := New("c", "g")
	pos, ok := sub.PositionsIn(super)
	if !ok || len(pos) != 2 || pos[0] != 1 || pos[1] != 3 {
		t.Fatalf("positions %v ok=%v", pos, ok)
	}
	if pos, ok := super.PositionsIn(super); !ok || pos != nil {
		t.Errorf("identity should be nil positions, got %v ok=%v", pos, ok)
	}
	if _, ok := New("c", "x").PositionsIn(super); ok {
		t.Error("missing key resolved")
	}
	if _, ok := super.PositionsIn(sub); ok {
		t.Error("superset resolved into subset")
	}
	// Prefix-aligned subset is still non-identity when shorter.
	if pos, ok := New("a", "c").PositionsIn(super); !ok || pos != nil {
		t.Errorf("prefix subset: %v ok=%v", pos, ok)
	}
}

func TestIndexSortedAgreesWithIndex(t *testing.T) {
	s := New("b", "d", "f", "h")
	for _, k := range []string{"a", "b", "c", "d", "h", "z"} {
		i1, ok1 := s.Index(k)
		i2, ok2 := s.IndexSorted(k)
		if ok1 != ok2 || (ok1 && i1 != i2) {
			t.Errorf("key %q: Index (%d,%v) vs IndexSorted (%d,%v)", k, i1, ok1, i2, ok2)
		}
	}
}
