package keys

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// adversarialKeys is the key vocabulary the conformance generators use:
// the interner's byte-oriented hash must treat all of these as opaque,
// distinct byte strings.
var adversarialKeys = []string{
	"", "\x00", "\x00\x00", "\xff", "\xff\xff", "a\x00b", "a\xffb",
	"κ", "κλειδί", "🔑", "k", "ke", "key", "key1", "key10", "key100",
	"prefix", "prefix-a", "prefix-b", "prefix-aa", "prefix-ab",
	"\x00suffix", "�", "mixed\xff\x00κ🔑",
}

func TestInternerBasic(t *testing.T) {
	in := NewInterner()
	for i, k := range adversarialKeys {
		id := in.Intern(k)
		if int(id) != i {
			t.Fatalf("Intern(%q) = %d, want dense id %d", k, id, i)
		}
	}
	if in.Len() != len(adversarialKeys) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(adversarialKeys))
	}
	// Re-interning returns the same stable ids.
	for i, k := range adversarialKeys {
		if id := in.Intern(k); int(id) != i {
			t.Fatalf("re-Intern(%q) = %d, want %d", k, id, i)
		}
		if id, ok := in.Lookup(k); !ok || int(id) != i {
			t.Fatalf("Lookup(%q) = %d,%v, want %d,true", k, id, ok, i)
		}
		if got := in.Key(int32(i)); got != k {
			t.Fatalf("Key(%d) = %q, want %q", i, got, k)
		}
	}
	if _, ok := in.Lookup("absent"); ok {
		t.Fatal("Lookup of absent key succeeded")
	}
}

func TestInternerGrowthRehash(t *testing.T) {
	in := NewInterner()
	const n = 10_000 // forces many table growths past the 64-slot start
	for i := 0; i < n; i++ {
		if id := in.Intern(fmt.Sprintf("key-%06d", i)); int(id) != i {
			t.Fatalf("id %d for key %d", id, i)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		if id, ok := in.Lookup(k); !ok || int(id) != i {
			t.Fatalf("after growth Lookup(%q) = %d,%v", k, id, ok)
		}
	}
}

func TestInternBatchAndLookupBatch(t *testing.T) {
	in := NewInterner()
	in.Intern("pre")
	batch := []string{"b", "a", "b", "pre", "c"}
	ids := make([]int32, len(batch))
	before := in.InternBatch(batch, ids)
	if before != 1 {
		t.Fatalf("before = %d, want 1", before)
	}
	// "b"=1, "a"=2, "b"=1 again (dedup), "pre"=0, "c"=3.
	want := []int32{1, 2, 1, 0, 3}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("InternBatch ids = %v, want %v", ids, want)
		}
	}
	got := make([]int32, len(batch))
	if !in.LookupBatch(batch, got) {
		t.Fatal("LookupBatch failed on present keys")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("LookupBatch ids = %v, want %v", got, want)
		}
	}
	if in.LookupBatch([]string{"pre", "missing"}, make([]int32, 2)) {
		t.Fatal("LookupBatch succeeded with an absent key")
	}
}

func TestInternerKeyRoundTrip(t *testing.T) {
	in := NewInterner()
	for _, k := range []string{"x", "y", "z"} {
		in.Intern(k)
	}
	for i, k := range []string{"x", "y", "z"} {
		if got := in.Key(int32(i)); got != k {
			t.Fatalf("Key(%d) = %q, want %q", i, got, k)
		}
	}
}

func TestSortedViewAndBinding(t *testing.T) {
	in := NewInterner()
	ids := make([]int32, len(adversarialKeys))
	in.InternBatch(adversarialKeys, ids)
	set, pos := in.SortedView()

	want := append([]string(nil), adversarialKeys...)
	sort.Strings(want)
	if set.Len() != len(want) {
		t.Fatalf("SortedView size %d, want %d", set.Len(), len(want))
	}
	for i, k := range want {
		if set.Key(i) != k {
			t.Fatalf("SortedView[%d] = %q, want %q", i, set.Key(i), k)
		}
	}
	if !set.Interned() {
		t.Fatal("SortedView set is not interner-bound")
	}
	// pos realizes the sort: key id sits at position pos[id].
	for id, k := range adversarialKeys {
		if set.Key(int(pos[id])) != k {
			t.Fatalf("pos[%d]=%d does not map id back to %q", id, pos[id], k)
		}
	}
	// The bound Index agrees with binary search (the map-free oracle) on
	// present keys and misses on absent ones — including keys interned
	// AFTER the view was taken, which must stay invisible to it.
	in.Intern("later-key")
	for i := 0; i < set.Len(); i++ {
		k := set.Key(i)
		if p, ok := set.Index(k); !ok || p != i {
			t.Fatalf("bound Index(%q) = %d,%v, want %d,true", k, p, ok, i)
		}
	}
	for _, k := range []string{"absent", "later-key", "prefix-ac"} {
		if _, ok := set.Index(k); ok {
			t.Fatalf("bound Index(%q) succeeded, want miss", k)
		}
	}
}

// TestBoundSetMatchesMapIndex differentially checks the interner-backed
// Index against the map-backed Index of an identical unbound Set over a
// randomized key population.
func TestBoundSetMatchesMapIndex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := NewInterner()
	seen := map[string]bool{}
	var ks []string
	for len(ks) < 500 {
		k := fmt.Sprintf("%x-%d", r.Int63(), r.Intn(10))
		if !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	ids := make([]int32, len(ks))
	in.InternBatch(ks, ids)
	bound, _ := in.SortedView()
	unbound := New(ks...)
	probes := append([]string(nil), ks...)
	for i := 0; i < 200; i++ {
		probes = append(probes, fmt.Sprintf("probe-%d", i))
	}
	for _, k := range probes {
		bi, bok := bound.Index(k)
		ui, uok := unbound.Index(k)
		if bi != ui || bok != uok {
			t.Fatalf("Index(%q): bound %d,%v vs map %d,%v", k, bi, bok, ui, uok)
		}
	}
}

// TestInternerConcurrentReaders exercises the documented concurrency
// contract under -race: one writer interning new keys while readers
// resolve a bound snapshot Set. Keys the snapshot owns must always
// resolve; later keys must never become visible through it.
func TestInternerConcurrentReaders(t *testing.T) {
	in := NewInterner()
	base := make([]string, 512)
	for i := range base {
		base[i] = fmt.Sprintf("base-%04d", i)
	}
	ids := make([]int32, len(base))
	in.InternBatch(base, ids)
	snap, _ := in.SortedView()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: grows slab and rehashes the table concurrently
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			in.Intern(fmt.Sprintf("later-%05d", i))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := base[rng.Intn(len(base))]
				if p, ok := snap.Index(k); !ok || snap.Key(p) != k {
					t.Errorf("snapshot lost key %q (pos %d ok=%v)", k, p, ok)
					return
				}
				if _, ok := snap.Index(fmt.Sprintf("later-%05d", rng.Intn(5000))); ok {
					t.Error("later key leaked into snapshot set")
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
}
