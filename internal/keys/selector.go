package keys

import (
	"fmt"
	"strings"
)

// Selector picks a subset of a key set. Implementations also expose scan
// bounds so Set.Select can skip irrelevant prefixes of the sorted key
// slice.
type Selector interface {
	// Match reports whether key k is selected.
	Match(k string) bool
	// bounds returns an optional half-open scan window [lo, hi) and
	// whether the window is meaningful. hi == "" means "to the end".
	bounds() (lo, hi string, ok bool)
}

// All selects every key.
type All struct{}

// Match always reports true.
func (All) Match(string) bool              { return true }
func (All) bounds() (string, string, bool) { return "", "", false }

// Range selects keys in the inclusive lexicographic interval [Lo, Hi].
// This is the paper's 'Genre|A : Genre|Z' notation.
type Range struct {
	Lo, Hi string
}

// Match reports Lo ≤ k ≤ Hi.
func (r Range) Match(k string) bool { return k >= r.Lo && k <= r.Hi }

func (r Range) bounds() (string, string, bool) {
	// Hi is inclusive; extend by one NUL to get an exclusive bound.
	return r.Lo, r.Hi + "\x00", true
}

// Prefix selects keys beginning with P — D4M's StartsWith selection,
// the idiomatic way to pick one exploded column family like "Writer|".
type Prefix struct {
	P string
}

// Match reports strings.HasPrefix(k, P).
func (p Prefix) Match(k string) bool { return strings.HasPrefix(k, p.P) }

func (p Prefix) bounds() (string, string, bool) {
	return p.P, prefixUpperBound(p.P), true
}

// prefixUpperBound returns the smallest string greater than every string
// with the given prefix, or "" when no such string exists.
func prefixUpperBound(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// List selects an explicit set of keys (order and duplicates ignored).
type List struct {
	set map[string]struct{}
}

// NewList builds a List selector.
func NewList(ks ...string) List {
	m := make(map[string]struct{}, len(ks))
	for _, k := range ks {
		m[k] = struct{}{}
	}
	return List{set: m}
}

// Match reports membership in the list.
func (l List) Match(k string) bool {
	_, ok := l.set[k]
	return ok
}

func (l List) bounds() (string, string, bool) { return "", "", false }

// InSet selects exactly the keys present in another Set.
type InSet struct {
	Set *Set
}

// Match reports membership in the set.
func (s InSet) Match(k string) bool { return s.Set.Contains(k) }

func (s InSet) bounds() (string, string, bool) { return "", "", false }

// Parse understands the D4M-flavoured selector strings used by the CLIs
// and figures:
//
//	":"                     all keys
//	"a : b"                 inclusive range (spaces around ':' required)
//	"Writer|*"              prefix
//	"k1,k2,k3"              explicit list
//	"plain"                 single exact key
func Parse(expr string) (Selector, error) {
	expr = strings.TrimSpace(expr)
	switch {
	case expr == ":":
		return All{}, nil
	case strings.Contains(expr, " : "):
		parts := strings.SplitN(expr, " : ", 2)
		lo := strings.TrimSpace(parts[0])
		hi := strings.TrimSpace(parts[1])
		if lo == "" || hi == "" {
			return nil, fmt.Errorf("keys: malformed range %q", expr)
		}
		if lo > hi {
			return nil, fmt.Errorf("keys: inverted range %q", expr)
		}
		return Range{Lo: lo, Hi: hi}, nil
	case strings.HasSuffix(expr, "*"):
		p := strings.TrimSuffix(expr, "*")
		if p == "" {
			return All{}, nil
		}
		return Prefix{P: p}, nil
	case strings.Contains(expr, ","):
		parts := strings.Split(expr, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return NewList(parts...), nil
	case expr == "":
		return nil, fmt.Errorf("keys: empty selector")
	case strings.Contains(expr, ":"):
		return nil, fmt.Errorf("keys: malformed range %q (use \"lo : hi\" with spaced colon)", expr)
	default:
		return NewList(expr), nil
	}
}
