// Package value defines the value sets V that associative arrays range
// over, together with the zero conventions the paper's algebra needs.
//
// The paper (Jananthan, Dibert, Kepner 2017) treats an associative array
// as a map K1×K2 → V where V carries two binary operations ⊕ and ⊗ with
// identities 0 and 1. Different algebras use different elements of V as
// the sparse "zero" (missing entry): arithmetic uses 0, max-plus uses
// −∞, min-plus uses +∞, string algebras use "", set algebras use ∅.
// This package supplies the concrete value kinds used throughout the
// library plus ordering, equality, and formatting helpers shared by the
// semiring, sparse, and assoc packages.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the concrete value domains the library ships with.
// User code may define additional domains by instantiating the generic
// kernels directly; Kind exists so CLIs and the registry can name the
// built-in ones.
type Kind uint8

// Built-in value domains.
const (
	KindFloat64 Kind = iota // non-negative reals / reals with ±Inf
	KindInt64               // integers (ring non-examples)
	KindString              // totally ordered strings, "" is zero
	KindSet                 // finite string sets, ∅ is zero
	KindBool                // two-element Boolean algebra
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindFloat64:
		return "float64"
	case KindInt64:
		return "int64"
	case KindString:
		return "string"
	case KindSet:
		return "set"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NegInf and PosInf are the IEEE infinities used as the zero elements of
// the max-plus and min-plus algebras respectively.
var (
	NegInf = math.Inf(-1)
	PosInf = math.Inf(1)
)

// Float64Equal reports whether two float64 values are equal, treating
// NaN as equal to NaN so that arrays containing propagated NaNs still
// compare reproducibly in tests.
func Float64Equal(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// FormatFloat renders a float64 the way the paper's figures do: integral
// values print without a decimal point ("13", not "13.000000"), and the
// infinities print as -Inf/+Inf.
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsInf(v, 1):
		return "+Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ParseFloat parses the textual forms emitted by FormatFloat.
func ParseFloat(s string) (float64, error) {
	switch s {
	case "-Inf":
		return NegInf, nil
	case "+Inf", "Inf":
		return PosInf, nil
	}
	return strconv.ParseFloat(s, 64)
}

// CompareFloat is a total order on float64 placing NaN below -Inf so
// sorting is deterministic.
func CompareFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// CompareString is strings.Compare without the import, kept here so the
// keys and semiring packages share one definition of the string order.
func CompareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
