package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindFloat64, "float64"},
		{KindInt64, "int64"},
		{KindString, "string"},
		{KindSet, "set"},
		{KindBool, "bool"},
		{Kind(99), "kind(99)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestFloat64Equal(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 2, false},
		{nan, nan, true},
		{nan, 1, false},
		{1, nan, false},
		{NegInf, NegInf, true},
		{PosInf, NegInf, false},
		{0, math.Copysign(0, -1), true}, // -0 == +0
	}
	for _, c := range cases {
		if got := Float64Equal(c.a, c.b); got != c.want {
			t.Errorf("Float64Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{13, "13"},
		{0, "0"},
		{-3, "-3"},
		{2.5, "2.5"},
		{NegInf, "-Inf"},
		{PosInf, "+Inf"},
		{1e20, "1e+20"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -7, 3.25, NegInf, PosInf, 1e20} {
		s := FormatFloat(v)
		got, err := ParseFloat(s)
		if err != nil {
			t.Fatalf("ParseFloat(%q): %v", s, err)
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, s, got)
		}
	}
	if _, err := ParseFloat("not-a-number"); err == nil {
		t.Error("ParseFloat accepted garbage")
	}
	if v, err := ParseFloat("Inf"); err != nil || !math.IsInf(v, 1) {
		t.Errorf("ParseFloat(Inf) = %v, %v", v, err)
	}
}

func TestCompareFloatTotalOrder(t *testing.T) {
	nan := math.NaN()
	ordered := []float64{nan, NegInf, -1, 0, 1, PosInf}
	for i := range ordered {
		for j := range ordered {
			got := CompareFloat(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CompareFloat(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareString(t *testing.T) {
	if CompareString("a", "b") != -1 || CompareString("b", "a") != 1 || CompareString("x", "x") != 0 {
		t.Error("CompareString is not the lexicographic order")
	}
}

func TestNewSetCanonical(t *testing.T) {
	s := NewSet("b", "a", "b", "c", "a")
	if s.String() != "{a,b,c}" {
		t.Errorf("NewSet dedup/sort failed: %q", s.String())
	}
	if NewSet().String() != "" {
		t.Error("empty NewSet should render empty")
	}
}

func TestSetParseRoundTrip(t *testing.T) {
	cases := []string{"", "{}", "{a}", "{a,b}", " a , b ", "{x,y,z}"}
	for _, c := range cases {
		s := ParseSet(c)
		again := ParseSet(s.String())
		if !s.Equal(again) {
			t.Errorf("ParseSet round trip failed for %q: %v vs %v", c, s, again)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet("x", "y")
	b := NewSet("y", "z")
	if got := a.Union(b).String(); got != "{x,y,z}" {
		t.Errorf("Union = %q", got)
	}
	if got := a.Intersect(b).String(); got != "{y}" {
		t.Errorf("Intersect = %q", got)
	}
	if !a.Intersect(NewSet("q")).IsEmpty() {
		t.Error("disjoint Intersect should be empty")
	}
	if !a.Union(nil).Equal(a) || !Set(nil).Union(a).Equal(a) {
		t.Error("∅ is not the identity of Union")
	}
	if !a.Intersect(nil).IsEmpty() || !Set(nil).Intersect(a).IsEmpty() {
		t.Error("∅ does not annihilate Intersect")
	}
	if !a.Contains("x") || a.Contains("z") {
		t.Error("Contains is wrong")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

// Property: Union and Intersect are commutative, associative, idempotent,
// and Intersect distributes over Union — i.e. Sets form a distributive
// lattice. These are the structural facts Section III leans on.
func TestSetLatticeProperties(t *testing.T) {
	mk := func(raw []string) Set { return NewSet(raw...) }
	commut := func(x, y []string) bool {
		a, b := mk(x), mk(y)
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(commut, nil); err != nil {
		t.Error(err)
	}
	assoc := func(x, y, z []string) bool {
		a, b, c := mk(x), mk(y), mk(z)
		return a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) &&
			a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	distrib := func(x, y, z []string) bool {
		a, b, c := mk(x), mk(y), mk(z)
		return a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c)))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error(err)
	}
	idem := func(x []string) bool {
		a := mk(x)
		return a.Union(a).Equal(a) && a.Intersect(a).Equal(a)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
}

func TestSetImmutability(t *testing.T) {
	a := NewSet("a", "c")
	b := NewSet("b")
	_ = a.Union(b)
	_ = a.Intersect(b)
	if a.String() != "{a,c}" || b.String() != "{b}" {
		t.Error("set operations mutated their operands")
	}
}
