package value

import (
	"testing"
)

// FuzzParseSet hardens the set literal parser: no panic, and parsing is
// idempotent (parse → render → parse is a fixpoint).
func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{
		"", "{}", "{a}", "{a,b}", "a,b", "{a,,b}", "{ a , b }", "{{}}",
		"{a,b", "a}b", "\x00", "{,}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s := ParseSet(input)
		again := ParseSet(s.String())
		if !s.Equal(again) {
			t.Fatalf("parse not idempotent: %q -> %v -> %v", input, s, again)
		}
		// Canonical form: sorted, deduplicated.
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				t.Fatalf("non-canonical set from %q: %v", input, s)
			}
		}
	})
}

// FuzzParseFloat checks the float codec never panics and round-trips
// every value it accepts.
func FuzzParseFloat(f *testing.F) {
	for _, seed := range []string{"0", "-3", "2.5", "-Inf", "+Inf", "Inf", "NaN", "1e308", "x", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ParseFloat(input)
		if err != nil {
			return
		}
		back, err := ParseFloat(FormatFloat(v))
		if err != nil {
			t.Fatalf("FormatFloat produced unparseable %q", FormatFloat(v))
		}
		if !Float64Equal(v, back) {
			t.Fatalf("round trip %q: %v != %v", input, v, back)
		}
	})
}
