package value

import (
	"sort"
	"strings"
)

// Set is a finite set of strings, the value domain of the paper's
// Section III example (document arrays whose entries are sets of shared
// words, multiplied with ⊕ = ∪ and ⊗ = ∩). A Set is stored as a sorted,
// deduplicated slice so that equality, hashing, and rendering are
// canonical. The zero value (nil slice) is the empty set ∅, which serves
// as the algebraic 0 of the union/intersection pair.
//
// Sets are immutable by convention: operations return new Sets and never
// mutate their receivers, so Sets may be shared freely across goroutines.
type Set []string

// NewSet builds a canonical Set from arbitrary words (unsorted,
// possibly duplicated). The empty string is not a word — it is dropped,
// keeping every Set representable by its rendered form (where "" means
// ∅ and "{}"-style literals cannot express an empty-string element).
func NewSet(words ...string) Set {
	if len(words) == 0 {
		return nil
	}
	s := make(Set, 0, len(words))
	for _, w := range words {
		if w != "" {
			s = append(s, w)
		}
	}
	if len(s) == 0 {
		return nil
	}
	sort.Strings(s)
	out := s[:1]
	for _, w := range s[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// ParseSet parses the textual form produced by Set.String:
// "{a,b,c}" or a bare comma-separated list. The empty string and "{}"
// parse to the empty set.
func ParseSet(s string) Set {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return NewSet(parts...)
}

// IsEmpty reports whether s is ∅.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s) }

// Contains reports whether w ∈ s.
func (s Set) Contains(w string) bool {
	i := sort.SearchStrings(s, w)
	return i < len(s) && s[i] == w
}

// Union returns s ∪ t. Union is the ⊕ of the Section III algebra; its
// identity is ∅.
func (s Set) Union(t Set) Set {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t. Intersect is the ⊗ of the Section III
// algebra. Note that on the full power set this pair has zero divisors
// (disjoint non-empty sets intersect to ∅), which is exactly the paper's
// Boolean-algebra non-example; Section III shows structured incidence
// arrays avoid ever multiplying disjoint sets.
func (s Set) Intersect(t Set) Set {
	if len(s) == 0 || len(t) == 0 {
		return nil
	}
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders the set as "{a,b,c}"; the empty set renders as "".
// Rendering ∅ as the empty string makes set-valued arrays print with
// blank cells for structural zeros, matching the figures.
func (s Set) String() string {
	if len(s) == 0 {
		return ""
	}
	return "{" + strings.Join(s, ",") + "}"
}
