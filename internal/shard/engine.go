package shard

import (
	"fmt"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/sparse"
)

// Engine is the partial-product-and-⊕-merge machinery shared by the two
// drivers of edge-dimension decomposition:
//
//   - offline sharded construction (Construct in this package): the edge
//     set is partitioned up front, partials are computed concurrently and
//     ⊕-merged in ascending shard order;
//   - online delta application (internal/stream): edge batches arrive
//     over time, each batch is one partial, and the running adjacency is
//     the accumulator — A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:].
//
// Both are sound under the same hypothesis: the per-cell ⊕ fold is
// re-associated (batch boundaries group contributions), so the result
// equals the sequential Definition I.3 fold exactly when ⊕ is
// associative on the data. CheckAssociative verifies that hypothesis by
// sampling; the fold ORDER is preserved in both drivers (shards /
// batches are merged in ascending edge-key order), so commutativity is
// not required.
type Engine[V any] struct {
	// Ops is the operator pair ⊕.⊗.
	Ops semiring.Ops[V]
	// Mul tunes each partial-product multiplication.
	Mul assoc.MulOptions
}

// Partial computes one edge subset's contribution,
// Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:] — a full-shape adjacency array whose entries
// cover only the subset's edges.
func (e Engine[V]) Partial(eout, ein *assoc.Array[V]) (*assoc.Array[V], error) {
	if !eout.RowKeys().Equal(ein.RowKeys()) {
		return nil, fmt.Errorf("shard: partial incidence arrays disagree on edge keys")
	}
	return assoc.Correlate(eout, ein, e.Ops, e.Mul)
}

// Merge ⊕-folds a partial into the accumulator, accumulator entries on
// the left (they hold the earlier edge keys). A nil accumulator starts
// one. With inPlace the accumulator's storage may be mutated and
// returned (see assoc.AddInto); the caller must own it exclusively.
func (e Engine[V]) Merge(acc, partial *assoc.Array[V], inPlace bool) (*assoc.Array[V], error) {
	return e.MergeScratch(acc, partial, inPlace, nil)
}

// MergeScratch is Merge with recycled output backing for accumulator
// loops (see assoc.AddIntoScratch). When the engine's Mul options
// request parallelism, the ⊕-merge itself also runs span-parallel
// (assoc.AddIntoScratchWorkers) — the partial products and the
// accumulator folds scale together.
func (e Engine[V]) MergeScratch(acc, partial *assoc.Array[V], inPlace bool, scratch *sparse.MergeScratch[V]) (*assoc.Array[V], error) {
	if partial == nil {
		return acc, nil
	}
	if acc == nil {
		return partial, nil
	}
	return assoc.AddIntoScratchWorkers(acc, partial, e.Ops, inPlace, scratch, e.Mul.Workers)
}

// CheckAssociative samples ⊕ over triples of values stored in the given
// arrays and reports the first associativity violation — the hypothesis
// under which the re-associated merge equals the sequential fold.
func (e Engine[V]) CheckAssociative(arrays ...*assoc.Array[V]) error {
	return e.CheckAssociativeValues(sampleValues(arrays, 12))
}

// CheckAssociativeValues is CheckAssociative over an explicit value
// sample — the entry point for callers that hold raw batch values
// (internal/stream's fused ingest path) rather than arrays.
//
// Besides associativity it verifies that Zero is a two-sided ⊕-identity
// on the sample: partial products prune cells that fold to the
// algebra's Zero, and the merge treats the resulting absence as
// "contributes nothing" — sound only when v ⊕ 0 = 0 ⊕ v = v. An
// algebra with zero-divisor products and a non-identity Zero (max.+
// anchored at 0 over signed data, where 2 ⊗ −2 = 0 but
// max(−1, 0) ≠ −1) passes a pure associativity probe yet diverges;
// the cross-backend conformance harness caught exactly that gap.
func (e Engine[V]) CheckAssociativeValues(vals []V) error {
	if len(vals) > 12 {
		vals = vals[:12]
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				left := e.Ops.Add(e.Ops.Add(a, b), c)
				right := e.Ops.Add(a, e.Ops.Add(b, c))
				if !e.Ops.Equal(left, right) {
					return fmt.Errorf("shard: ⊕ is not associative on the data (%v,%v,%v); "+
						"re-associated merge would diverge from the sequential fold", a, b, c)
				}
			}
		}
	}
	for _, a := range vals {
		if !e.Ops.Equal(e.Ops.Add(a, e.Ops.Zero), a) || !e.Ops.Equal(e.Ops.Add(e.Ops.Zero, a), a) {
			return fmt.Errorf("shard: 0 is not a ⊕-identity on the data (%v); "+
				"pruned partial-product cells would diverge from the sequential fold", a)
		}
	}
	return nil
}

// sampleValues gathers up to max distinct stored values across the
// arrays — the values ⊕ actually folds during a merge.
func sampleValues[V any](arrays []*assoc.Array[V], max int) []V {
	var vals []V
	for _, a := range arrays {
		if a == nil {
			continue
		}
		a.Iterate(func(_, _ string, v V) {
			if len(vals) < max {
				vals = append(vals, v)
			}
		})
	}
	return vals
}
