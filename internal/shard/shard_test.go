package shard

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func eqF(a, b float64) bool { return value.Float64Equal(a, b) }

func incidenceFor(t *testing.T, g *graph.Graph, w float64) (eout, ein *assoc.Array[float64]) {
	t.Helper()
	wf := func(graph.Edge) float64 { return w }
	eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{Out: wf, In: wf})
	if err != nil {
		t.Fatal(err)
	}
	return eout, ein
}

// For associative ⊕ (all registry pairs), the sharded construction must
// equal the sequential kernel exactly, at every shard count.
func TestShardedMatchesSequentialAcrossPairsAndCounts(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := dataset.MultiEdge(r, 10, 40, 3) // parallel edges stress the merge
	eout, ein := incidenceFor(t, g, 1)
	for _, ops := range semiring.Figure3Pairs() {
		want, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantFull, err := want.Reindex(eout.ColKeys(), ein.ColKeys())
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 8, 1000} {
			got, err := Construct(eout, ein, ops, Options{Shards: shards, Workers: 4})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", ops.Name, shards, err)
			}
			if !got.Equal(wantFull, eqF) {
				t.Errorf("%s shards=%d: sharded result diverges", ops.Name, shards)
			}
		}
	}
}

func TestShardedMusicFigure3(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	got, err := Construct(e1, e2, semiring.PlusTimes(), Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Figure3Expected()["+.*"]
	aligned, err := got.Reindex(want.RowKeys(), want.ColKeys())
	if err == nil && want.Equal(aligned.SubRef(keys.InSet{Set: want.RowKeys()}, keys.InSet{Set: want.ColKeys()}), eqF) {
		return
	}
	// got has full key sets (e1 cols × e2 cols); compare on the
	// non-empty sub-pattern instead.
	sub := got.SubRef(keys.InSet{Set: want.RowKeys()}, keys.InSet{Set: want.ColKeys()})
	if !sub.Equal(want, eqF) {
		t.Errorf("sharded Figure 3 mismatch:\n%s", assoc.Format(sub, value.FormatFloat))
	}
}

func TestShardedRejectsMismatchedEdgeKeys(t *testing.T) {
	a := assoc.FromTriples([]assoc.Triple[float64]{{Row: "k1", Col: "x", Val: 1}}, nil)
	b := assoc.FromTriples([]assoc.Triple[float64]{{Row: "k2", Col: "y", Val: 1}}, nil)
	if _, err := Construct(a, b, semiring.PlusTimes(), Options{}); err == nil {
		t.Error("mismatched edge keys accepted")
	}
}

func TestShardedEmptyInput(t *testing.T) {
	empty := assoc.FromTriples[float64](nil, nil)
	got, err := Construct(empty, empty, semiring.PlusTimes(), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Error("empty construction produced entries")
	}
}

// The honest limitation: with a non-associative ⊕ the re-associated
// shard merge can genuinely diverge from the sequential fold — and the
// CheckAssociative guard catches it beforehand.
func TestShardedNonAssociativeDivergesAndIsGuarded(t *testing.T) {
	// ⊕ = "average" is commutative but NOT associative:
	// avg(avg(1,3),5) = 3.5 vs avg(1,avg(3,5)) = 2.5.
	avg := semiring.Ops[float64]{
		Name: "avg.*",
		Add:  func(a, b float64) float64 { return (a + b) / 2 },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0, One: 1,
		Equal: value.Float64Equal,
	}
	// Four parallel edges a→b with distinct weights.
	eout := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "k1", Col: "a", Val: 1}, {Row: "k2", Col: "a", Val: 3},
		{Row: "k3", Col: "a", Val: 5}, {Row: "k4", Col: "a", Val: 9},
	}, nil)
	ein := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "k1", Col: "b", Val: 1}, {Row: "k2", Col: "b", Val: 1},
		{Row: "k3", Col: "b", Val: 1}, {Row: "k4", Col: "b", Val: 1},
	}, nil)

	seq, err := assoc.Correlate(eout, ein, avg, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Construct(eout, ein, avg, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := seq.At("a", "b")
	gv, _ := sharded.At("a", "b")
	if sv == gv {
		t.Errorf("expected divergence for non-associative ⊕, both %v", sv)
	}

	// The guard refuses up front.
	_, err = Construct(eout, ein, avg, Options{Shards: 2, CheckAssociative: true})
	if err == nil || !strings.Contains(err.Error(), "not associative") {
		t.Errorf("guard missed non-associative ⊕: %v", err)
	}

	// And passes for an associative pair on the same data.
	if _, err := Construct(eout, ein, semiring.PlusTimes(), Options{Shards: 2, CheckAssociative: true}); err != nil {
		t.Errorf("guard rejected associative ⊕: %v", err)
	}
}

func TestPlan(t *testing.T) {
	ks := keys.New("e1", "e2", "e3", "e4", "e5")
	plan := Plan(ks, 2)
	if len(plan) != 2 {
		t.Fatalf("plan = %v", plan)
	}
	if !strings.Contains(plan[0], "e1") || !strings.Contains(plan[1], "e5") {
		t.Errorf("plan ranges wrong: %v", plan)
	}
	if Plan(keys.New(), 4) != nil {
		t.Error("empty plan should be nil")
	}
	if got := Plan(ks, 0); len(got) == 0 {
		t.Error("default shard count not applied")
	}
}

// The default shard count tracks the machine (GOMAXPROCS), clamped to
// the edge count, instead of a hardcoded constant.
func TestDefaultShardsFollowGOMAXPROCS(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	n := 3 * want
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("e%04d", i)
	}
	plan := Plan(keys.New(ks...), 0)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	per := (n + want - 1) / want
	wantShards := (n + per - 1) / per
	if len(plan) != wantShards {
		t.Errorf("default plan has %d shards, want %d (GOMAXPROCS=%d)", len(plan), wantShards, want)
	}
	// And Construct accepts the default without error.
	r := rand.New(rand.NewSource(3))
	g := dataset.MultiEdge(r, 6, 20, 2)
	eout, ein := incidenceFor(t, g, 1)
	seq, err := assoc.Correlate(eout, ein, semiring.PlusTimes(), assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Construct(eout, ein, semiring.PlusTimes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := got.SubRef(keys.InSet{Set: seq.RowKeys()}, keys.InSet{Set: seq.ColKeys()})
	if !sub.Equal(seq, eqF) {
		t.Error("default-option Construct diverges from sequential")
	}
}
