// Package shard implements the incidence-parallel decomposition of
// adjacency construction used by D4M-style parallel ingest: the edge
// set K is partitioned into P shards (stand-ins for the MPI ranks /
// database tablets of the paper's deployment environment), each shard
// computes the partial product over its edge subset,
//
//	A_p = Eout[K_p, :]ᵀ ⊕.⊗ Ein[K_p, :]
//
// and the partials are ⊕-merged into the final adjacency array.
//
// Unlike the row-blocked SpGEMM in internal/sparse — which partitions
// OUTPUT rows and preserves the per-cell fold order exactly — the
// shard decomposition partitions the INPUT reduction, so the per-cell
// ⊕ fold is re-associated: (v₁ ⊕ v₂) ⊕ (v₃ ⊕ v₄) instead of
// ((v₁ ⊕ v₂) ⊕ v₃) ⊕ v₄. The merge order is deterministic (shards are
// edge-key-contiguous and merged in ascending order), so the result is
// reproducible run-to-run; it equals the sequential Definition I.3
// fold exactly when ⊕ is associative — which every named pair in the
// registry is, but the paper's theorem does not require. Construct
// verifies this hypothesis when Options.CheckAssociative is set, and
// the package tests demonstrate the divergence for a non-associative ⊕.
//
// The partial-product-and-merge machinery itself lives in Engine and is
// shared with internal/stream, which drives the same identity
// incrementally: an appended edge batch K′ is exactly one shard.
package shard

import (
	"fmt"
	"runtime"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// Options tunes the sharded construction.
type Options struct {
	// Shards is the number of edge-key partitions; < 1 selects
	// GOMAXPROCS (one shard per available core).
	Shards int
	// Workers bounds concurrent shard evaluation; < 1 selects
	// GOMAXPROCS. Normalized with internal/parallel.Workers, so it is
	// also clamped to the shard count.
	Workers int
	// CheckAssociative, when set, samples ⊕ for associativity over the
	// incidence values before constructing and fails fast if the
	// re-associated merge could diverge from the sequential fold.
	CheckAssociative bool
	// Mul tunes the per-shard partial-product multiplication (kernel
	// selection; per-shard Workers are forced to 1 since shards already
	// run concurrently).
	Mul assoc.MulOptions
}

// Construct computes A = Eoutᵀ ⊕.⊗ Ein by edge-sharded partial
// products. Eout and Ein must share their edge-key row sets (as
// incidence arrays from one graph always do).
func Construct[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V], opt Options) (*assoc.Array[V], error) {
	if !eout.RowKeys().Equal(ein.RowKeys()) {
		return nil, fmt.Errorf("shard: incidence arrays disagree on edge keys")
	}
	if opt.Shards < 1 {
		opt.Shards = runtime.GOMAXPROCS(0)
	}
	shardMul := opt.Mul
	shardMul.Workers = 1 // shards already run concurrently
	eng := Engine[V]{Ops: ops, Mul: shardMul}
	if opt.CheckAssociative {
		if err := eng.CheckAssociative(eout, ein); err != nil {
			return nil, fmt.Errorf("%w — use the row-blocked kernel instead", err)
		}
	}
	edgeKeys := eout.RowKeys()
	n := edgeKeys.Len()
	if n == 0 {
		return assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	}
	shards := opt.Shards
	if shards > n {
		shards = n
	}
	workers := parallel.Workers(opt.Workers, shards)

	bounds := partition(n, shards)
	partials := make([]*assoc.Array[V], shards)
	errs := make([]error, shards)
	parallel.ForGrain(shards, workers, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			b := bounds[s]
			if b[0] >= b[1] {
				continue
			}
			sel := keys.Range{Lo: edgeKeys.Key(b[0]), Hi: edgeKeys.Key(b[1] - 1)}
			partials[s], errs[s] = eng.Partial(eout.SubRef(sel, nil), ein.SubRef(sel, nil))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic ascending-shard ⊕-merge through the shared engine.
	// Every partial already spans the full output key space (SubRef
	// keeps all columns), so the merges run on the aligned fast path;
	// in-place is safe because the accumulator is a locally owned
	// partial.
	var acc *assoc.Array[V]
	for _, p := range partials {
		var err error
		acc, err = eng.Merge(acc, p, true)
		if err != nil {
			return nil, err
		}
	}
	rows := eout.ColKeys()
	cols := ein.ColKeys()
	if acc == nil {
		acc, _ = assoc.FromTriples[V](nil, nil).Reindex(rows, cols)
		return acc, nil
	}
	if !acc.RowKeys().Equal(rows) || !acc.ColKeys().Equal(cols) {
		full, err := acc.EmbedInto(rows, cols)
		if err != nil {
			return nil, fmt.Errorf("shard: partial embed: %w", err)
		}
		acc = full
	}
	return acc, nil
}

// partition splits [0, n) into `shards` contiguous ranges so the shard
// merge order equals the ascending-key order.
func partition(n, shards int) [][2]int {
	bounds := make([][2]int, shards)
	per := (n + shards - 1) / shards
	for s := range bounds {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		bounds[s] = [2]int{lo, hi}
	}
	return bounds
}

// Plan describes how Construct would partition a given edge-key set —
// exposed for the CLI and tests.
func Plan(edgeKeys *keys.Set, shards int) []string {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := edgeKeys.Len()
	if shards > n {
		shards = n
	}
	if n == 0 {
		return nil
	}
	var out []string
	for s, b := range partition(n, shards) {
		if b[0] >= b[1] {
			break
		}
		out = append(out, fmt.Sprintf("shard %d: [%s … %s] (%d edges)",
			s, edgeKeys.Key(b[0]), edgeKeys.Key(b[1]-1), b[1]-b[0]))
	}
	return out
}
