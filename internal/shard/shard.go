// Package shard implements the incidence-parallel decomposition of
// adjacency construction used by D4M-style parallel ingest: the edge
// set K is partitioned into P shards (stand-ins for the MPI ranks /
// database tablets of the paper's deployment environment), each shard
// computes the partial product over its edge subset,
//
//	A_p = Eout[K_p, :]ᵀ ⊕.⊗ Ein[K_p, :]
//
// and the partials are ⊕-merged into the final adjacency array.
//
// Unlike the row-blocked SpGEMM in internal/sparse — which partitions
// OUTPUT rows and preserves the per-cell fold order exactly — the
// shard decomposition partitions the INPUT reduction, so the per-cell
// ⊕ fold is re-associated: (v₁ ⊕ v₂) ⊕ (v₃ ⊕ v₄) instead of
// ((v₁ ⊕ v₂) ⊕ v₃) ⊕ v₄. The merge order is deterministic (shards are
// edge-key-contiguous and merged in ascending order), so the result is
// reproducible run-to-run; it equals the sequential Definition I.3
// fold exactly when ⊕ is associative — which every named pair in the
// registry is, but the paper's theorem does not require. Construct
// verifies this hypothesis when Options.CheckAssociative is set, and
// the package tests demonstrate the divergence for a non-associative ⊕.
package shard

import (
	"fmt"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// Options tunes the sharded construction.
type Options struct {
	// Shards is the number of edge-key partitions; < 1 selects 4.
	Shards int
	// Workers bounds concurrent shard evaluation; < 1 selects
	// GOMAXPROCS.
	Workers int
	// CheckAssociative, when set, samples ⊕ for associativity over the
	// incidence values before constructing and fails fast if the
	// re-associated merge could diverge from the sequential fold.
	CheckAssociative bool
	// Mul tunes the per-shard partial-product multiplication (kernel
	// selection; per-shard Workers are forced to 1 since shards already
	// run concurrently).
	Mul assoc.MulOptions
}

// Construct computes A = Eoutᵀ ⊕.⊗ Ein by edge-sharded partial
// products. Eout and Ein must share their edge-key row sets (as
// incidence arrays from one graph always do).
func Construct[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V], opt Options) (*assoc.Array[V], error) {
	if !eout.RowKeys().Equal(ein.RowKeys()) {
		return nil, fmt.Errorf("shard: incidence arrays disagree on edge keys")
	}
	if opt.Shards < 1 {
		opt.Shards = 4
	}
	if opt.CheckAssociative {
		if err := checkAssociative(eout, ein, ops); err != nil {
			return nil, err
		}
	}
	edgeKeys := eout.RowKeys()
	n := edgeKeys.Len()
	if n == 0 {
		return assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	}
	shards := opt.Shards
	if shards > n {
		shards = n
	}

	// Partition the (sorted) edge keys into contiguous ranges so the
	// shard merge order equals the ascending-key order.
	bounds := make([][2]int, shards)
	per := (n + shards - 1) / shards
	for s := range bounds {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		bounds[s] = [2]int{lo, hi}
	}

	partials := make([]*assoc.Array[V], shards)
	errs := make([]error, shards)
	shardMul := opt.Mul
	shardMul.Workers = 1 // shards already run concurrently
	parallel.ForGrain(shards, opt.Workers, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			b := bounds[s]
			if b[0] >= b[1] {
				continue
			}
			sel := keys.Range{Lo: edgeKeys.Key(b[0]), Hi: edgeKeys.Key(b[1] - 1)}
			subOut := eout.SubRef(sel, nil)
			subIn := ein.SubRef(sel, nil)
			partials[s], errs[s] = assoc.Correlate(subOut, subIn, ops, shardMul)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic ascending-shard ⊕-merge. Reindex onto the full
	// output key space first so element-wise addition aligns.
	rows := eout.ColKeys()
	cols := ein.ColKeys()
	var acc *assoc.Array[V]
	for _, p := range partials {
		if p == nil {
			continue
		}
		full, err := p.Reindex(rows, cols)
		if err != nil {
			return nil, fmt.Errorf("shard: partial reindex: %w", err)
		}
		if acc == nil {
			acc = full
			continue
		}
		acc, err = assoc.Add(acc, full, ops)
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		acc, _ = assoc.FromTriples[V](nil, nil).Reindex(rows, cols)
	}
	return acc, nil
}

// checkAssociative samples ⊕ over triples of distinct values present in
// the incidence arrays (plus identities) and reports the first
// violation.
func checkAssociative[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V]) error {
	vals := sampleValues(eout, ein, 12)
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				left := ops.Add(ops.Add(a, b), c)
				right := ops.Add(a, ops.Add(b, c))
				if !ops.Equal(left, right) {
					return fmt.Errorf("shard: ⊕ is not associative on the data (%v,%v,%v); "+
						"sharded merge would diverge from the sequential fold — use the row-blocked kernel instead",
						a, b, c)
				}
			}
		}
	}
	return nil
}

// sampleValues gathers up to max distinct stored values from both
// arrays — the values ⊕ actually folds during the merge.
func sampleValues[V any](eout, ein *assoc.Array[V], max int) []V {
	var vals []V
	collect := func(a *assoc.Array[V]) {
		a.Iterate(func(_, _ string, v V) {
			if len(vals) < max {
				vals = append(vals, v)
			}
		})
	}
	collect(eout)
	collect(ein)
	return vals
}

// Plan describes how Construct would partition a given edge-key set —
// exposed for the CLI and tests.
func Plan(edgeKeys *keys.Set, shards int) []string {
	if shards < 1 {
		shards = 4
	}
	n := edgeKeys.Len()
	if shards > n {
		shards = n
	}
	if n == 0 {
		return nil
	}
	per := (n + shards - 1) / shards
	var out []string
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		out = append(out, fmt.Sprintf("shard %d: [%s … %s] (%d edges)",
			s, edgeKeys.Key(lo), edgeKeys.Key(hi-1), hi-lo))
	}
	return out
}
