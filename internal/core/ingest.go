package core

import (
	"fmt"

	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// Ingest is the ingest-side counterpart of Build: where Build constructs
// an adjacency array once from complete incidence arrays, Ingest
// accumulates edge triples as they arrive and feeds them in batches to a
// maintained stream.View — the paper's construction kept continuously up
// to date. It performs the same operator-pair resolution and Theorem
// II.1 condition analysis as Build, up front, so a pair that cannot
// guarantee an adjacency array is refused before any edge is accepted.
type Ingest struct {
	view  *stream.View[float64]
	batch []stream.Edge[float64]
	size  int
	ops   semiring.Ops[float64]
	rep   semiring.Report
}

// IngestOptions configures an Ingest accumulator.
type IngestOptions struct {
	// Semiring is the registry name of the operator pair, e.g. "+.*".
	Semiring string
	// BatchSize is how many edges buffer before an automatic flush into
	// the view; <= 0 selects 512. Larger batches amortize per-batch
	// costs, smaller ones shrink the window in which Add-ed edges are
	// not yet visible to Snapshot.
	BatchSize int
	// Stream tunes the underlying view (compaction, associativity
	// guard, pending budget).
	Stream stream.Options
	// SkipConditionCheck accepts operator pairs that fail the Theorem
	// II.1 conditions (the Report is still available via Report()).
	SkipConditionCheck bool
}

// NewIngest resolves the operator pair, runs the condition analysis, and
// returns an empty accumulator.
func NewIngest(opt IngestOptions) (*Ingest, error) {
	entry, ok := semiring.Lookup(opt.Semiring)
	if !ok {
		return nil, fmt.Errorf("core: unknown operator pair %q (known: %v)", opt.Semiring, semiring.Names())
	}
	report := semiring.Check(entry.Ops, entry.Sample, value.FormatFloat)
	if !report.TheoremII1() && !opt.SkipConditionCheck {
		return nil, fmt.Errorf("core: %s cannot guarantee an adjacency array: conditions fail on the sampled domain", entry.Ops.Name)
	}
	size := opt.BatchSize
	if size <= 0 {
		size = 512
	}
	return &Ingest{
		view:  stream.NewView(entry.Ops, opt.Stream),
		batch: make([]stream.Edge[float64], 0, size),
		size:  size,
		ops:   entry.Ops,
		rep:   report,
	}, nil
}

// Add buffers one edge; a full buffer flushes into the view. Edge keys
// must arrive in strictly increasing order across the whole ingest (or
// be left empty for auto-assignment — don't mix the two).
func (in *Ingest) Add(e stream.Edge[float64]) error {
	in.batch = append(in.batch, e)
	if len(in.batch) >= in.size {
		return in.Flush()
	}
	return nil
}

// Flush appends the buffered edges to the view as one delta batch. A
// batch the view rejects (key-discipline violation, failed
// associativity guard) is DROPPED with the returned error — the view
// applies batches atomically, so none of its edges were ingested, and
// keeping them buffered would wedge every subsequent Add on the same
// failure.
func (in *Ingest) Flush() error {
	if len(in.batch) == 0 {
		return nil
	}
	err := in.view.Append(in.batch)
	in.batch = in.batch[:0]
	return err
}

// Snapshot flushes and returns a consistent read view including every
// edge Add-ed so far.
func (in *Ingest) Snapshot() (stream.Snapshot[float64], error) {
	if err := in.Flush(); err != nil {
		return stream.Snapshot[float64]{}, err
	}
	return in.view.Snapshot()
}

// View exposes the maintained view (for Compact, Stats, or direct
// Append of pre-batched edges). Edges still buffered in the accumulator
// are not yet in the view; call Flush first when that matters.
func (in *Ingest) View() *stream.View[float64] { return in.view }

// Buffered reports how many Add-ed edges await the next flush.
func (in *Ingest) Buffered() int { return len(in.batch) }

// Ops returns the resolved operator pair.
func (in *Ingest) Ops() semiring.Ops[float64] { return in.ops }

// Report returns the Theorem II.1 condition analysis of the pair.
func (in *Ingest) Report() semiring.Report { return in.rep }
