package core

import (
	"fmt"

	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// Ingest is the ingest-side counterpart of Build: where Build constructs
// an adjacency array once from complete incidence arrays, Ingest
// accumulates edge triples as they arrive and feeds them in batches to a
// maintained stream.View — the paper's construction kept continuously up
// to date. It performs the same operator-pair resolution and Theorem
// II.1 condition analysis as Build, up front, so a pair that cannot
// guarantee an adjacency array is refused before any edge is accepted.
//
// With Shards > 1 the accumulator feeds a stream.ShardedView instead:
// batches scatter by source-vertex hash across per-shard views (each
// with its own lock and, when durable, its own WAL/checkpoint
// directory), and Snapshot gathers the per-shard adjacencies into one
// merged read view pinned at a consistent epoch vector.
type Ingest struct {
	view    *stream.View[float64]        // nil when sharded
	sharded *stream.ShardedView[float64] // nil for single-view ingests
	durable *stream.DurableView[float64] // nil for in-memory or sharded ingests
	batch   []stream.Edge[float64]
	size    int
	ops     semiring.Ops[float64]
	rep     semiring.Report
}

// IngestOptions configures an Ingest accumulator.
type IngestOptions struct {
	// Semiring is the registry name of the operator pair, e.g. "+.*".
	Semiring string
	// BatchSize is how many edges buffer before an automatic flush into
	// the view; <= 0 selects 512. Larger batches amortize per-batch
	// costs, smaller ones shrink the window in which Add-ed edges are
	// not yet visible to Snapshot.
	BatchSize int
	// Shards partitions the ingest across that many goroutine-shards
	// (route-by-hash on the source vertex). 0 or 1 keeps the classic
	// single view; < 0 selects GOMAXPROCS. With DataDir set, each shard
	// owns its own WAL/checkpoint subdirectory.
	Shards int
	// Stream tunes the underlying view(s) (compaction, associativity
	// guard, pending budget).
	Stream stream.Options
	// SkipConditionCheck accepts operator pairs that fail the Theorem
	// II.1 conditions (the Report is still available via Report()).
	SkipConditionCheck bool
	// DataDir, when set, makes the ingest durable: the view is recovered
	// from DataDir on open, every flushed batch is written ahead to the
	// WAL there before it is acknowledged, and Close takes a covering
	// checkpoint.
	DataDir string
	// Durable tunes the durability layer when DataDir is set (fsync
	// policy, checkpoint cadence, codec). Its View field is ignored —
	// Stream above configures the view either way.
	Durable stream.DurableOptions[float64]
}

// NewIngest resolves the operator pair, runs the condition analysis, and
// returns an empty accumulator.
func NewIngest(opt IngestOptions) (*Ingest, error) {
	entry, ok := semiring.Lookup(opt.Semiring)
	if !ok {
		return nil, fmt.Errorf("core: unknown operator pair %q (known: %v)", opt.Semiring, semiring.Names())
	}
	report := semiring.Check(entry.Ops, entry.Sample, value.FormatFloat)
	if !report.TheoremII1() && !opt.SkipConditionCheck {
		return nil, fmt.Errorf("core: %s cannot guarantee an adjacency array: conditions fail on the sampled domain", entry.Ops.Name)
	}
	size := opt.BatchSize
	if size <= 0 {
		size = 512
	}
	in := &Ingest{
		batch: make([]stream.Edge[float64], 0, size),
		size:  size,
		ops:   entry.Ops,
		rep:   report,
	}
	sharded := opt.Shards < 0 || opt.Shards > 1
	switch {
	case sharded && opt.DataDir != "":
		sopt := stream.ShardedOptions{Shards: opt.Shards, Stream: opt.Stream}
		sv, err := stream.OpenSharded(opt.DataDir, entry.Ops, sopt, opt.Durable)
		if err != nil {
			return nil, err
		}
		in.sharded = sv
	case sharded:
		in.sharded = stream.NewShardedView(entry.Ops, stream.ShardedOptions{Shards: opt.Shards, Stream: opt.Stream})
	case opt.DataDir != "":
		dopt := opt.Durable
		dopt.View = opt.Stream
		d, err := stream.Open(opt.DataDir, entry.Ops, dopt)
		if err != nil {
			return nil, err
		}
		in.durable = d
		in.view = d.View()
	default:
		in.view = stream.NewView(entry.Ops, opt.Stream)
	}
	return in, nil
}

// Add buffers one edge; a full buffer flushes into the view. Edge keys
// must arrive in strictly increasing order across the whole ingest (or
// be left empty for auto-assignment — don't mix the two).
func (in *Ingest) Add(e stream.Edge[float64]) error {
	in.batch = append(in.batch, e)
	if len(in.batch) >= in.size {
		return in.Flush()
	}
	return nil
}

// Flush appends the buffered edges to the view as one delta batch. A
// batch the view rejects (key-discipline violation, failed
// associativity guard) is DROPPED with the returned error — the view
// applies batches atomically, so none of its edges were ingested, and
// keeping them buffered would wedge every subsequent Add on the same
// failure. (A sharded flush is atomic per shard: the error names the
// shard that rejected its sub-batch.)
func (in *Ingest) Flush() error {
	if len(in.batch) == 0 {
		return nil
	}
	var err error
	switch {
	case in.sharded != nil:
		err = in.sharded.Append(in.batch)
	case in.durable != nil:
		err = in.durable.Append(in.batch)
	default:
		err = in.view.Append(in.batch)
	}
	in.batch = in.batch[:0]
	return err
}

// AppendBatch appends pre-batched edges directly to the underlying
// view, bypassing the Add/Flush accumulator. Unlike Add/Flush it is
// safe for concurrent use — the views serialize internally — which is
// what a network ingest endpoint needs. Edges buffered in the
// accumulator are unaffected; the usual key discipline applies across
// both paths. When the durable store is read-only (storage failure)
// the error matches stream.ErrReadOnly.
func (in *Ingest) AppendBatch(edges []stream.Edge[float64]) error {
	if len(edges) == 0 {
		return nil
	}
	switch {
	case in.sharded != nil:
		return in.sharded.Append(edges)
	case in.durable != nil:
		return in.durable.Append(edges)
	default:
		return in.view.Append(edges)
	}
}

// StorageHealth reports the storage-health aggregate (the worst shard,
// for sharded ingests) and the per-shard breakdown (nil unless sharded
// and durable). In-memory ingests are always ok.
func (in *Ingest) StorageHealth() (stream.StorageHealth, []stream.StorageHealth) {
	switch {
	case in.sharded != nil:
		return in.sharded.StorageHealth()
	case in.durable != nil:
		return in.durable.StorageHealth(), nil
	default:
		return stream.StorageHealth{}, nil
	}
}

// Snapshot flushes and returns a consistent read view including every
// edge Add-ed so far. For a sharded ingest this is the flattened
// scatter-gather snapshot: per-shard epochs pinned as one vector, the
// merged adjacency and incidence logs, and Epoch the sum of the vector;
// use Sharded().Snapshot() directly when the vector itself is needed.
func (in *Ingest) Snapshot() (stream.Snapshot[float64], error) {
	if err := in.Flush(); err != nil {
		return stream.Snapshot[float64]{}, err
	}
	if in.sharded != nil {
		ss, err := in.sharded.Snapshot()
		if err != nil {
			return stream.Snapshot[float64]{}, err
		}
		return ss.Merged()
	}
	return in.view.Snapshot()
}

// View exposes the maintained view (for Compact, Stats, or direct
// Append of pre-batched edges), nil for sharded ingests. Edges still
// buffered in the accumulator are not yet in the view; call Flush first
// when that matters.
func (in *Ingest) View() *stream.View[float64] { return in.view }

// Sharded exposes the sharded view, nil for single-view ingests.
func (in *Ingest) Sharded() *stream.ShardedView[float64] { return in.sharded }

// Durable exposes the single-view durability layer, nil for in-memory
// or sharded ingests (a sharded ingest's per-shard durability is
// reported by Sharded().Durability()).
func (in *Ingest) Durable() *stream.DurableView[float64] { return in.durable }

// Close flushes buffered edges, takes a final covering checkpoint, and
// releases the log(s). In-memory ingests are a no-op. The first error
// is reported, but the log is closed regardless — a failed checkpoint
// leaves recovery to the previous checkpoint plus the (complete) WAL.
func (in *Ingest) Close() error {
	if in.sharded != nil {
		if !in.sharded.Durable() {
			return nil
		}
		err := in.Flush()
		if cerr := in.sharded.Checkpoint(); err == nil {
			err = cerr
		}
		if cerr := in.sharded.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if in.durable == nil {
		return nil
	}
	err := in.Flush()
	if cerr := in.durable.Checkpoint(); err == nil {
		err = cerr
	}
	if cerr := in.durable.Close(); err == nil {
		err = cerr
	}
	return err
}

// Buffered reports how many Add-ed edges await the next flush.
func (in *Ingest) Buffered() int { return len(in.batch) }

// Ops returns the resolved operator pair.
func (in *Ingest) Ops() semiring.Ops[float64] { return in.ops }

// Report returns the Theorem II.1 condition analysis of the pair.
func (in *Ingest) Report() semiring.Report { return in.rep }
