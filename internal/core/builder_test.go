package core

import (
	"strings"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func eqF(a, b float64) bool { return value.Float64Equal(a, b) }

func musicRequest(backend Backend) Request {
	e1, e2 := dataset.MusicE1E2()
	return Request{Eout: e1, Ein: e2, Semiring: "+.*", Backend: backend}
}

func TestBuildMusicOnEveryBackend(t *testing.T) {
	want := dataset.Figure3Expected()["+.*"]
	for _, backend := range Backends() {
		res, err := Build(musicRequest(backend))
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		got := res.Adjacency
		if backend == BackendTStore {
			// The tstore backend derives key sets from surviving triples.
			var e error
			got, e = got.Reindex(want.RowKeys(), want.ColKeys())
			if e != nil {
				t.Fatalf("%s: %v", backend, e)
			}
		}
		if !got.Equal(want, eqF) {
			t.Errorf("%s: Figure 3 +.* mismatch", backend)
		}
		if !res.Report.TheoremII1() {
			t.Errorf("%s: +.* should pass the condition check", backend)
		}
		if res.Violation != nil {
			t.Errorf("%s: unexpected violation", backend)
		}
	}
}

func TestBuildDefaultsToCSR(t *testing.T) {
	req := musicRequest("")
	res, err := Build(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adjacency == nil || res.Elapsed < 0 {
		t.Error("default backend did not produce a result")
	}
}

func TestBuildAllSemiringsMatchFigures(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	for name, want := range dataset.Figure3Expected() {
		res, err := Build(Request{Eout: e1, Ein: e2, Semiring: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Adjacency.Equal(want, eqF) {
			t.Errorf("%s: mismatch with Figure 3", name)
		}
	}
}

func TestBuildRejectsNonCompliantAlgebra(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	res, err := Build(Request{Eout: e1, Ein: e2, Semiring: "max.+@0"})
	if err == nil {
		t.Fatal("non-compliant algebra accepted without SkipConditionCheck")
	}
	if !strings.Contains(err.Error(), "cannot guarantee") {
		t.Errorf("error text: %v", err)
	}
	if res == nil || res.Violation == nil {
		t.Fatal("refusal should carry the gadget violation")
	}
	if res.Violation.Lemma != "II.4" {
		t.Errorf("max.+@0 should fail via Lemma II.4, got %s", res.Violation.Lemma)
	}
}

func TestBuildSkipConditionCheckProceeds(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	res, err := Build(Request{Eout: e1, Ein: e2, Semiring: "max.+@0", SkipConditionCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adjacency == nil {
		t.Fatal("construction skipped")
	}
	if res.Violation == nil {
		t.Error("violation should still be reported")
	}
	// On this particular data (sparse kernel, no explicit zeros), the
	// pattern still comes out right — the theorem is about guarantees
	// over ALL graphs, which the violation gadget witnesses.
}

func TestBuildUnknownInputs(t *testing.T) {
	e1, e2 := dataset.MusicE1E2()
	if _, err := Build(Request{Eout: e1, Ein: e2, Semiring: "nope"}); err == nil {
		t.Error("unknown semiring accepted")
	}
	if _, err := Build(Request{Semiring: "+.*"}); err == nil {
		t.Error("nil incidence arrays accepted")
	}
	if _, err := Build(Request{Eout: e1, Ein: e2, Semiring: "+.*", Backend: "quantum"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestBuildValidateAgainstGraph(t *testing.T) {
	g := graph.MustNew([]graph.Edge{
		{Key: "k1", Src: "a", Dst: "b"},
		{Key: "k2", Src: "b", Dst: "c"},
		{Key: "k3", Src: "a", Dst: "c"},
	})
	eout, ein, err := graph.Incidence(g, semiring.PlusTimes(), graph.Weights[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(Request{Eout: eout, Ein: ein, Semiring: "+.*", Validate: true})
	if err != nil {
		t.Fatalf("validated build failed: %v", err)
	}
	if res.Adjacency.NNZ() != 3 {
		t.Errorf("adjacency nnz = %d", res.Adjacency.NNZ())
	}
}

func TestBuildValidateRejectsNonGraphIncidence(t *testing.T) {
	// An edge row with two sources is not graph-shaped.
	eout := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "k", Col: "a", Val: 1}, {Row: "k", Col: "b", Val: 1},
	}, nil)
	ein := assoc.FromTriples([]assoc.Triple[float64]{{Row: "k", Col: "c", Val: 1}}, nil)
	_, err := Build(Request{Eout: eout, Ein: ein, Semiring: "+.*", Validate: true})
	if err == nil || !strings.Contains(err.Error(), "not graph-shaped") {
		t.Errorf("expected graph-shape error, got %v", err)
	}
}

func TestBuildChecksDataValuesNotJustCanonicalSample(t *testing.T) {
	// +.* over non-negative reals is compliant, but if the DATA contains
	// negatives the effective domain is a ring and cancellation can
	// occur. The data-aware check must catch this.
	eout := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "k1", Col: "a", Val: 5}, {Row: "k2", Col: "a", Val: -5},
	}, nil)
	ein := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "k1", Col: "b", Val: 1}, {Row: "k2", Col: "b", Val: 1},
	}, nil)
	res, err := Build(Request{Eout: eout, Ein: ein, Semiring: "+.*"})
	if err == nil {
		t.Fatal("negative data under +.* should be refused (zero-sum risk)")
	}
	if res.Violation == nil || res.Violation.Condition != "zero-sum-free" {
		t.Errorf("expected a zero-sum-free violation, got %v", res.Violation)
	}
	// And indeed, forcing construction produces a non-adjacency result.
	res2, err := Build(Request{Eout: eout, Ein: ein, Semiring: "+.*", SkipConditionCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Adjacency.NNZ() != 0 {
		t.Error("cancellation should have emptied the product")
	}
}
