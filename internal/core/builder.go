// Package core is the end-to-end adjacency-construction service — the
// paper's primary contribution packaged as one operation. Given a pair
// of incidence arrays (from a database table, a TSV dump, or a graph),
// it resolves the requested ⊕.⊗ operator pair, checks the Theorem II.1
// conditions up front (refusing, or warning, when the algebra cannot
// guarantee an adjacency array), computes A = Eoutᵀ ⊕.⊗ Ein on the
// selected backend (serial CSR, parallel CSR, streaming triple store,
// or the dense Definition I.3 oracle), and optionally validates the
// result against Definition I.5.
package core

import (
	"fmt"
	"time"

	"adjarray/internal/assoc"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/tstore"
	"adjarray/internal/value"
)

// Backend selects the construction engine.
type Backend string

// Available backends.
const (
	BackendCSR      Backend = "csr"      // serial two-phase symbolic/numeric SpGEMM
	BackendParallel Backend = "parallel" // row-blocked parallel two-phase SpGEMM
	BackendTStore   Backend = "tstore"   // streaming server-side TableMult
	BackendDense    Backend = "dense"    // literal Definition I.3 (verification)
	BackendSharded  Backend = "sharded"  // edge-sharded partial products (requires associative ⊕)
)

// Request describes one construction.
type Request struct {
	// Eout and Ein are the source/target incidence arrays (rows = edge
	// keys, columns = vertices).
	Eout, Ein *assoc.Array[float64]
	// Semiring is the registry name of the operator pair, e.g. "+.*".
	Semiring string
	// Backend defaults to BackendCSR.
	Backend Backend
	// Workers tunes BackendParallel (<1 = GOMAXPROCS).
	Workers int
	// FlopFloor tunes BackendParallel's serial-fallback threshold: a
	// product whose symbolic flop count is below the floor runs the
	// serial two-phase kernel (identical result, no goroutine
	// overhead). 0 selects sparse.DefaultParallelFlopFloor; negative
	// disables the fallback (the ablation setting).
	FlopFloor int64
	// SkipConditionCheck constructs even when the algebra violates the
	// Theorem II.1 conditions (useful for demonstrations; the Result
	// then carries the violation).
	SkipConditionCheck bool
	// Validate reconstructs the graph from the incidence arrays and
	// checks Definition I.5 on the result. Requires well-formed
	// incidence arrays (exactly one source and target per edge row).
	Validate bool
}

// Result is the outcome of a construction.
type Result struct {
	// Adjacency is A = Eoutᵀ ⊕.⊗ Ein.
	Adjacency *assoc.Array[float64]
	// Ops is the resolved operator pair.
	Ops semiring.Ops[float64]
	// Report is the Theorem II.1 condition analysis on the pair's
	// canonical sample plus the distinct values present in the inputs.
	Report semiring.Report
	// Violation, when the conditions fail, demonstrates the failure on
	// a concrete gadget graph (nil otherwise).
	Violation *graph.Violation[float64]
	// Elapsed is the wall-clock construction time (excluding checks).
	Elapsed time.Duration
}

// Build runs the construction pipeline.
func Build(req Request) (*Result, error) {
	if req.Eout == nil || req.Ein == nil {
		return nil, fmt.Errorf("core: both incidence arrays are required")
	}
	entry, ok := semiring.Lookup(req.Semiring)
	if !ok {
		return nil, fmt.Errorf("core: unknown operator pair %q (known: %v)", req.Semiring, semiring.Names())
	}
	ops := entry.Ops

	// Condition analysis over the canonical domain sample extended with
	// the values actually present in the data.
	sample := append([]float64{}, entry.Sample...)
	sample = appendDataValues(sample, req.Eout, 64)
	sample = appendDataValues(sample, req.Ein, 64)
	report := semiring.Check(ops, sample, value.FormatFloat)

	res := &Result{Ops: ops, Report: report}
	if !report.TheoremII1() {
		res.Violation = graph.FindViolation(ops, sample)
		if !req.SkipConditionCheck {
			detail := "conditions fail on the sampled domain"
			if res.Violation != nil {
				detail = res.Violation.String()
			}
			return res, fmt.Errorf("core: %s cannot guarantee an adjacency array: %s", ops.Name, detail)
		}
	}

	start := time.Now()
	var a *assoc.Array[float64]
	var err error
	switch req.Backend {
	case BackendCSR, "":
		a, err = graph.Adjacency(req.Eout, req.Ein, ops, assoc.MulOptions{Kernel: "twophase"})
	case BackendParallel:
		a, err = graph.Adjacency(req.Eout, req.Ein, ops, assoc.MulOptions{Workers: workersOrAll(req.Workers), FlopFloor: req.FlopFloor})
	case BackendTStore:
		codec := tstore.Codec[float64]{Parse: value.ParseFloat, Format: value.FormatFloat}
		sOut := tstore.FromArray(req.Eout, value.FormatFloat, tstore.Options{})
		sIn := tstore.FromArray(req.Ein, value.FormatFloat, tstore.Options{})
		a, err = tstore.AdjacencyFromTables(sOut, sIn, ops, codec)
	case BackendDense:
		a, err = graph.AdjacencyDense(req.Eout, req.Ein, ops)
	case BackendSharded:
		shards := req.Workers * 4
		if shards < 4 {
			shards = 8
		}
		a, err = shard.Construct(req.Eout, req.Ein, ops, shard.Options{
			Shards: shards, Workers: req.Workers, CheckAssociative: true,
			Mul: assoc.MulOptions{Kernel: "twophase"},
		})
	default:
		return res, fmt.Errorf("core: unknown backend %q", req.Backend)
	}
	if err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Adjacency = a

	if req.Validate {
		g, err := graph.GraphFromIncidence(req.Eout, req.Ein)
		if err != nil {
			return res, fmt.Errorf("core: cannot validate — incidence arrays not graph-shaped: %w", err)
		}
		full, err := a.Reindex(g.OutVertices(), g.InVertices())
		if err != nil {
			return res, fmt.Errorf("core: result keys inconsistent with graph: %w", err)
		}
		if err := graph.IsAdjacencyOf(full, g, ops.IsZero); err != nil {
			return res, fmt.Errorf("core: validation failed: %w", err)
		}
	}
	return res, nil
}

// workersOrAll maps 0 to "all cores" for the parallel backend (a
// Request that says BackendParallel means parallelism even if Workers
// was left zero).
func workersOrAll(w int) int {
	if w == 0 {
		return -1
	}
	return w
}

// appendDataValues extends sample with up to max distinct values stored
// in a, so condition checks cover the data actually being multiplied.
func appendDataValues(sample []float64, a *assoc.Array[float64], max int) []float64 {
	seen := make(map[float64]bool, len(sample))
	for _, v := range sample {
		seen[v] = true
	}
	a.Iterate(func(_, _ string, v float64) {
		if len(seen) >= max || seen[v] {
			return
		}
		seen[v] = true
		sample = append(sample, v)
	})
	return sample
}

// Backends lists the available construction engines.
func Backends() []Backend {
	return []Backend{BackendCSR, BackendParallel, BackendTStore, BackendDense, BackendSharded}
}
