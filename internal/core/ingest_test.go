package core

import (
	"fmt"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/stream"
)

// Ingest-accumulated triples produce the same adjacency as a one-shot
// batch construction over the same edges.
func TestIngestMatchesBuild(t *testing.T) {
	ing, err := NewIngest(IngestOptions{Semiring: "+.*", BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	type edge struct{ src, dst string }
	edges := []edge{
		{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "a"}, {"a", "b"},
		{"b", "a"}, {"c", "b"}, {"a", "c"}, {"b", "c"}, {"c", "c"},
	}
	outT := make([]assoc.Triple[float64], len(edges))
	inT := make([]assoc.Triple[float64], len(edges))
	for i, e := range edges {
		key := fmt.Sprintf("e%03d", i)
		if err := ing.Add(stream.Edge[float64]{Key: key, Src: e.src, Dst: e.dst}); err != nil {
			t.Fatal(err)
		}
		outT[i] = assoc.Triple[float64]{Row: key, Col: e.src, Val: 1}
		inT[i] = assoc.Triple[float64]{Row: key, Col: e.dst, Val: 1}
	}
	if ing.Buffered() >= 7 {
		t.Fatalf("accumulator did not auto-flush: %d buffered", ing.Buffered())
	}
	snap, err := ing.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Edges != len(edges) {
		t.Fatalf("snapshot has %d edges, want %d", snap.Edges, len(edges))
	}
	res, err := Build(Request{Eout: assoc.FromTriples(outT, nil), Ein: assoc.FromTriples(inT, nil), Semiring: "+.*"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Adjacency.Equal(res.Adjacency, func(a, b float64) bool { return a == b }) {
		t.Error("ingest-maintained adjacency != batch Build")
	}
	if !ing.Report().TheoremII1() {
		t.Error("+.* should satisfy the Theorem II.1 conditions")
	}
}

func TestIngestRejectsUnknownPair(t *testing.T) {
	if _, err := NewIngest(IngestOptions{Semiring: "no.such"}); err == nil {
		t.Error("unknown pair accepted")
	}
}
