package conformance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"adjarray/internal/assoc"
	"adjarray/internal/value"
)

// Edge is one directed multigraph edge of a conformance instance: key k,
// endpoints, and the two incidence entry values Eout(k,Src) and
// Ein(k,Dst). Keys are unique and non-empty; values are non-Zero under
// the instance's operator pair (Definition I.4).
type Edge struct {
	Key, Src, Dst string
	Out, In       float64
}

// Instance is one differential-testing input: an edge list in ascending
// key order plus the batch split points the incremental path replays it
// with. The zero value is the empty instance.
type Instance struct {
	// Name identifies the generator arm that produced the instance.
	Name string
	// Edges is the edge list, sorted by strictly increasing Key.
	Edges []Edge
	// Splits are cut points in (0, len(Edges)): the stream path appends
	// Edges[0:s1), Edges[s1:s2), …, Edges[sn:len) as separate batches
	// with a snapshot between batches (maximal fold re-association).
	// Empty means one batch.
	Splits []int
}

// normalize sorts edges by key, drops duplicate keys (keeping the first),
// and clamps splits into strictly-increasing interior cut points.
func (in *Instance) normalize() {
	sort.SliceStable(in.Edges, func(i, j int) bool { return in.Edges[i].Key < in.Edges[j].Key })
	out := in.Edges[:0]
	for i, e := range in.Edges {
		if e.Key == "" {
			continue // the stream path would auto-assign a different key
		}
		if i > 0 && len(out) > 0 && e.Key == out[len(out)-1].Key {
			continue
		}
		out = append(out, e)
	}
	in.Edges = out
	in.Splits = clampSplits(in.Splits, len(in.Edges))
}

// clampSplits filters cut points to strictly-increasing values inside
// (0, n).
func clampSplits(splits []int, n int) []int {
	var out []int
	for _, s := range splits {
		if s > 0 && s < n && (len(out) == 0 || s > out[len(out)-1]) {
			out = append(out, s)
		}
	}
	return out
}

// NumTriples counts stored incidence entries: one Eout triple plus one
// Ein triple per edge. Shrinking minimizes this quantity.
func (in Instance) NumTriples() int { return 2 * len(in.Edges) }

// Incidence builds the instance's source and target incidence arrays
// (rows = edge keys, columns = vertices).
func (in Instance) Incidence() (eout, ein *assoc.Array[float64]) {
	outT := make([]assoc.Triple[float64], len(in.Edges))
	inT := make([]assoc.Triple[float64], len(in.Edges))
	for i, e := range in.Edges {
		outT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out}
		inT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In}
	}
	return assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil)
}

// Encode renders the instance as a line-oriented text artifact: one
// quoted tab-separated edge per line, preceded by name and splits
// headers. The format round-trips through DecodeInstance, so a CI
// artifact can be replayed locally.
func (in Instance) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", strconv.Quote(in.Name))
	if len(in.Splits) > 0 {
		b.WriteString("splits")
		for _, s := range in.Splits {
			fmt.Fprintf(&b, " %d", s)
		}
		b.WriteByte('\n')
	}
	for _, e := range in.Edges {
		fmt.Fprintf(&b, "edge %s %s %s %s %s\n",
			strconv.Quote(e.Key), strconv.Quote(e.Src), strconv.Quote(e.Dst),
			strconv.Quote(value.FormatFloat(e.Out)), strconv.Quote(value.FormatFloat(e.In)))
	}
	return []byte(b.String())
}

// DecodeInstance parses Encode's output. Lines starting with '#' are
// comments — writeArtifact prepends one carrying the divergence report,
// so a downloaded CI artifact replays without editing.
func DecodeInstance(data []byte) (Instance, error) {
	var in Instance
	for ln, line := range strings.Split(string(data), "\n") {
		if t := strings.TrimSpace(line); t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return Instance{}, fmt.Errorf("conformance: line %d: %w", ln+1, err)
		}
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return Instance{}, fmt.Errorf("conformance: line %d: malformed name", ln+1)
			}
			in.Name = fields[1]
		case "splits":
			for _, f := range fields[1:] {
				s, err := strconv.Atoi(f)
				if err != nil {
					return Instance{}, fmt.Errorf("conformance: line %d: split %q: %w", ln+1, f, err)
				}
				in.Splits = append(in.Splits, s)
			}
		case "edge":
			if len(fields) != 6 {
				return Instance{}, fmt.Errorf("conformance: line %d: edge wants 5 fields, got %d", ln+1, len(fields)-1)
			}
			out, err := value.ParseFloat(fields[4])
			if err != nil {
				return Instance{}, fmt.Errorf("conformance: line %d: out value: %w", ln+1, err)
			}
			iv, err := value.ParseFloat(fields[5])
			if err != nil {
				return Instance{}, fmt.Errorf("conformance: line %d: in value: %w", ln+1, err)
			}
			in.Edges = append(in.Edges, Edge{Key: fields[1], Src: fields[2], Dst: fields[3], Out: out, In: iv})
		default:
			return Instance{}, fmt.Errorf("conformance: line %d: unknown record %q", ln+1, fields[0])
		}
	}
	in.normalize()
	return in, nil
}

// splitQuoted tokenizes a record line: a bare head word followed by
// space-separated tokens, each either bare or Go-quoted.
func splitQuoted(line string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(line)
	for rest != "" {
		if rest[0] == '"' {
			// Find the closing quote, honoring escapes.
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", line)
			}
			tok, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted token: %w", err)
			}
			out = append(out, tok)
			rest = strings.TrimLeft(rest[end+1:], " ")
			continue
		}
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			out = append(out, rest)
			break
		}
		out = append(out, rest[:sp])
		rest = strings.TrimLeft(rest[sp+1:], " ")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty record")
	}
	return out, nil
}
