package conformance

import (
	"flag"
	"os"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
)

// -quick scales the random search: instances per registry pair fed
// through the differential executor. CI's tier-1 run uses the default;
// the nightly arm passes -quick=2000 or more.
var quickN = flag.Int("quick", 60, "random instances per registry operator pair")

// The headline property: every construction path agrees with the serial
// two-phase reference on every adversarial instance for every registry
// pair, and with the dense Definition I.3 oracle whenever the pair's
// Theorem II.1 conditions license it.
func TestDifferentialAllPathsAllPairs(t *testing.T) {
	divs := Run(Config{Seed: 1, Instances: *quickN, KeepGoing: true})
	for _, d := range divs {
		t.Errorf("%s\n%s", d.Error(), d.Instance.Encode())
	}
}

// A second seed with the paths listed explicitly, guarding against the
// registry accidentally shrinking to fewer than the five shipped paths.
func TestBuiltinPathRoster(t *testing.T) {
	want := map[string]bool{
		"csr-gustavson": false, "csr-twophase": false, "parallel": false,
		"sharded": false, "stream": false,
	}
	for _, name := range PathNames() {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("built-in path %q missing from the registry", name)
		}
	}
}

// mutantPath is a deliberately broken kernel: it keeps only the FIRST
// contribution to each adjacency cell, silently dropping ⊕ aggregation
// of parallel edges — the classic duplicate-handling bug.
func mutantPath() Path {
	return Path{
		Name: "mutant-first-wins",
		Build: func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], inst Instance) (*assoc.Array[float64], error) {
			ts := make([]assoc.Triple[float64], len(inst.Edges))
			for i, e := range inst.Edges {
				ts[i] = assoc.Triple[float64]{Row: e.Src, Col: e.Dst, Val: ops.Mul(e.Out, e.In)}
			}
			first := func(a, b float64) float64 { return a }
			return assoc.FromTriples(ts, first).Prune(ops.IsZero), nil
		},
	}
}

// Acceptance property: a seeded divergence — a mutated kernel injected
// into the path registry — is caught by the executor and shrunk to a
// counterexample of at most 4 incidence triples (two parallel edges).
func TestSeededDivergenceCaughtAndShrunk(t *testing.T) {
	entry, ok := semiring.Lookup("+.*")
	if !ok {
		t.Fatal("+.* not registered")
	}
	paths := append(Paths(), mutantPath())
	gen := NewGenerator(7)
	var caught *Divergence
	for i := 0; i < 400 && caught == nil; i++ {
		caught = Compare(gen.Instance(entry), entry, paths)
	}
	if caught == nil {
		t.Fatal("mutated kernel survived 400 instances undetected")
	}
	if caught.Path != "mutant-first-wins" {
		t.Fatalf("a healthy path diverged before the mutant: %s", caught.Error())
	}
	shrunk := Shrink(caught.Instance, func(in Instance) bool {
		d := Compare(in, entry, paths)
		return d != nil && d.Path == "mutant-first-wins"
	})
	if got := shrunk.NumTriples(); got > 4 {
		t.Errorf("shrunk counterexample has %d triples, want <= 4:\n%s", got, shrunk.Encode())
	}
	if d := Compare(shrunk, entry, paths); d == nil || d.Path != "mutant-first-wins" {
		t.Errorf("shrunk instance no longer reproduces the divergence")
	}
}

// Run wires catching, shrinking, and artifact persistence together: a
// registered mutant produces a divergence whose artifact file decodes
// back into a still-failing instance.
func TestRunShrinksAndWritesArtifact(t *testing.T) {
	entry, _ := semiring.Lookup("+.*")
	dir := t.TempDir()
	divs := Run(Config{
		Seed:        7,
		Instances:   200,
		Entries:     []semiring.Entry{entry},
		Paths:       append(Paths(), mutantPath()),
		ArtifactDir: dir,
	})
	if len(divs) == 0 {
		t.Fatal("Run missed the mutated kernel")
	}
	d := divs[0]
	if d.Path != "mutant-first-wins" {
		t.Fatalf("unexpected diverging path: %s", d.Error())
	}
	if got := d.Instance.NumTriples(); got > 4 {
		t.Errorf("Run reported a %d-triple counterexample, want shrunk <= 4", got)
	}
	if d.Artifact == "" {
		t.Fatal("no artifact written")
	}
	data, err := os.ReadFile(d.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	// The artifact replays as-is: its leading '#' report line is a
	// comment to the decoder.
	replay, err := DecodeInstance(data)
	if err != nil {
		t.Fatalf("artifact does not decode: %v\n%s", err, data)
	}
	if c := Compare(replay, entry, append(Paths(), mutantPath())); c == nil || c.Path != "mutant-first-wins" {
		t.Error("replayed artifact no longer reproduces the divergence")
	}
}

// Registering a correct additional backend extends coverage for free —
// and unregistering restores the roster.
func TestRegisterExtendsCoverage(t *testing.T) {
	alias := Path{
		Name: "alias-merge-kernel",
		Build: func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], _ Instance) (*assoc.Array[float64], error) {
			return assoc.Correlate(eout, ein, ops, assoc.MulOptions{Kernel: "merge"})
		},
	}
	if err := Register(alias); err != nil {
		t.Fatal(err)
	}
	defer Unregister("alias-merge-kernel")
	if err := Register(alias); err == nil {
		t.Error("duplicate registration accepted")
	}
	found := false
	for _, n := range PathNames() {
		if n == "alias-merge-kernel" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered path missing from PathNames")
	}
	if divs := Run(Config{Seed: 11, Instances: 15}); len(divs) > 0 {
		t.Errorf("merge-kernel alias diverged: %s", divs[0].Error())
	}
}

// The artifact encoding round-trips, so CI-uploaded counterexamples can
// be replayed locally with DecodeInstance.
func TestInstanceEncodeDecodeRoundTrip(t *testing.T) {
	gen := NewGenerator(5)
	entry, _ := semiring.Lookup("min.+")
	for i := 0; i < 25; i++ {
		in := gen.Instance(entry)
		back, err := DecodeInstance(in.Encode())
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, in.Encode())
		}
		if back.Name != in.Name || len(back.Edges) != len(in.Edges) {
			t.Fatalf("round trip changed shape: %q %d vs %q %d", back.Name, len(back.Edges), in.Name, len(in.Edges))
		}
		for j := range in.Edges {
			a, b := in.Edges[j], back.Edges[j]
			if a.Key != b.Key || a.Src != b.Src || a.Dst != b.Dst ||
				!entry.Ops.Equal(a.Out, b.Out) || !entry.Ops.Equal(a.In, b.In) {
				t.Fatalf("edge %d round trip: %+v vs %+v", j, a, b)
			}
		}
		if len(back.Splits) != len(in.Splits) {
			t.Fatalf("splits round trip: %v vs %v", back.Splits, in.Splits)
		}
	}
}

// Shrinking remaps split points consistently when edges are removed.
func TestShrinkRemapsSplits(t *testing.T) {
	inst := Instance{Name: "t", Edges: []Edge{
		{Key: "e0", Src: "a", Dst: "a", Out: 1, In: 1},
		{Key: "e1", Src: "a", Dst: "a", Out: 1, In: 1},
		{Key: "e2", Src: "b", Dst: "b", Out: 1, In: 1},
		{Key: "e3", Src: "a", Dst: "a", Out: 1, In: 1},
	}, Splits: []int{2, 3}}
	// Fails whenever at least two a→a edges survive.
	fails := func(in Instance) bool {
		n := 0
		for _, e := range in.Edges {
			if e.Src == "a" {
				n++
			}
		}
		return n >= 2
	}
	got := Shrink(inst, fails)
	if len(got.Edges) != 2 {
		t.Fatalf("shrunk to %d edges, want 2: %s", len(got.Edges), got.Encode())
	}
	if !fails(got) {
		t.Fatal("shrunk instance no longer fails")
	}
	for _, s := range got.Splits {
		if s <= 0 || s >= len(got.Edges) {
			t.Fatalf("split %d out of range after shrink: %s", s, got.Encode())
		}
	}
}
