package conformance

import (
	"fmt"
	"os"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// The native fuzz targets drive the same differential executor and laws
// as the quick-check tests, but from coverage-guided byte inputs, so the
// fuzzer can steer instance shapes toward unexplored kernel branches.
// Seed corpora live in testdata/fuzz/<Target>/ and run as ordinary test
// cases under plain `go test`; `go test -fuzz=<Target> -fuzztime=30s`
// explores beyond them.

// decodeEdges maps raw bytes onto an edge list: four bytes per edge
// select the endpoints (from the adversarial unicode vertex pool) and
// the two incidence values (from the pair's non-zero adversarial
// sample).
func decodeEdges(data []byte, weights []float64) []Edge {
	const maxEdges = 48
	n := len(data) / 4
	if n > maxEdges {
		n = maxEdges
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*4 : i*4+4]
		edges = append(edges, Edge{
			Key: fmt.Sprintf("e%03d", i),
			Src: unicodeVertexPool[int(b[0])%len(unicodeVertexPool)],
			Dst: unicodeVertexPool[int(b[1])%len(unicodeVertexPool)],
			Out: weights[int(b[2])%len(weights)],
			In:  weights[int(b[3])%len(weights)],
		})
	}
	return edges
}

// FuzzCorrelate feeds fuzzer-shaped instances through every registered
// construction path for a fuzzer-chosen registry pair. Any divergence
// between paths (or against the dense oracle where it applies) fails.
func FuzzCorrelate(f *testing.F) {
	f.Add(byte(0), byte(1), []byte{})
	f.Add(byte(0), byte(2), []byte{0, 0, 1, 1, 0, 0, 2, 2})
	f.Add(byte(3), byte(1), []byte{1, 2, 3, 4, 2, 1, 4, 3, 1, 1, 5, 5})
	f.Add(byte(7), byte(3), []byte{9, 9, 9, 9, 9, 9, 8, 8, 9, 9, 7, 7, 2, 9, 6, 6})
	f.Fuzz(func(t *testing.T, pair, splitEvery byte, data []byte) {
		entries := semiring.Registry()
		entry := entries[int(pair)%len(entries)]
		weights := nonZeroWeights(entry.AdversarialSample(), entry.Ops)
		inst := Instance{Name: "fuzz", Edges: decodeEdges(data, weights)}
		if k := 1 + int(splitEvery)%5; k < len(inst.Edges) {
			for s := k; s < len(inst.Edges); s += k {
				inst.Splits = append(inst.Splits, s)
			}
		}
		inst.normalize()
		if d := Compare(inst, entry, Paths()); d != nil {
			// Minimize and persist before failing, so a red CI fuzz run
			// ships a replayable shrunk counterexample, not a raw blob.
			d = shrinkDivergence(d, entry, Paths())
			d.Artifact = writeArtifact(os.Getenv("CONFORMANCE_ARTIFACT_DIR"), d)
			t.Fatalf("%s\n%s", d.Error(), d.Instance.Encode())
		}
	})
}

// FuzzStreamAppend drives an incremental view through fuzzer-chosen
// batch boundaries, snapshots and compactions, and checks the final
// state against the one-shot batch construction. Weights are exact
// dyadics, so ⊕ = + is exactly associative and equality MUST hold —
// including for a second guarded view, which must never reject.
func FuzzStreamAppend(f *testing.F) {
	f.Add([]byte{}, byte(1), byte(0))
	f.Add([]byte{0, 0, 1, 1, 0, 0}, byte(1), byte(0xaa))
	f.Add([]byte{1, 2, 0, 2, 1, 1, 3, 3, 2, 1, 2, 3}, byte(2), byte(0x0f))
	f.Fuzz(func(t *testing.T, data []byte, batchSize, opsMask byte) {
		ops := semiring.PlusTimes()
		weights := []float64{1, 2, 0.5, 1024}
		var edges []stream.Edge[float64]
		n := len(data) / 3
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			b := data[i*3 : i*3+3]
			edges = append(edges, stream.Weighted(
				fmt.Sprintf("e%03d", i),
				fmt.Sprintf("v%d", int(b[0])%8),
				fmt.Sprintf("v%d", int(b[1])%8),
				weights[int(b[2])%len(weights)],
				weights[int(b[2]/4)%len(weights)],
			))
		}
		plain := stream.NewView(ops, stream.Options{})
		guarded := stream.NewView(ops, stream.Options{CheckAssociative: true})
		k := 1 + int(batchSize)%5
		for lo, step := 0, 0; lo < len(edges); lo, step = lo+k, step+1 {
			hi := lo + k
			if hi > len(edges) {
				hi = len(edges)
			}
			if err := plain.Append(edges[lo:hi]); err != nil {
				t.Fatalf("append [%d,%d): %v", lo, hi, err)
			}
			if err := guarded.Append(edges[lo:hi]); err != nil {
				t.Fatalf("guard false positive on exact dyadic +: %v", err)
			}
			switch {
			case opsMask>>(step%8)&1 == 1:
				if err := plain.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
			case step%2 == 1:
				if _, err := plain.Snapshot(); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
			}
		}
		// One-shot oracle over the same edges.
		outT := make([]assoc.Triple[float64], len(edges))
		inT := make([]assoc.Triple[float64], len(edges))
		for i, e := range edges {
			outT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out}
			inT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In}
		}
		want, err := assoc.Correlate(assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil), ops, assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]*stream.View[float64]{"plain": plain, "guarded": guarded} {
			snap, err := v.Snapshot()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if snap.Edges != len(edges) {
				t.Fatalf("%s: %d edges ingested, want %d", name, snap.Edges, len(edges))
			}
			if diff := assoc.Diff(want, snap.Adjacency, ops.Equal, value.FormatFloat); diff != "" {
				t.Fatalf("%s view diverged from batch: %s", name, diff)
			}
		}
	})
}

// FuzzExplodeImplode checks the Figure 1 table round trip: exploding a
// dense table, imploding it back, and exploding again must be a
// fixpoint — Explode ∘ Implode is the identity on exploded arrays.
func FuzzExplodeImplode(f *testing.F) {
	f.Add([]byte{}, byte(1), byte(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6}, byte(2), byte(2))
	f.Add([]byte{0, 0, 0, 7, 7, 7, 3, 1, 4}, byte(3), byte(3))
	f.Fuzz(func(t *testing.T, data []byte, nr, nf byte) {
		values := []string{"", "a", "b", "ab", "é", "😀", "x0", "Ω", "a;b", "b;a;b"}
		rows := 1 + int(nr)%5
		fields := 1 + int(nf)%4
		tab := assoc.Table{
			Rows:   make([]string, rows),
			Fields: make([]string, fields),
			Cells:  make([][]string, rows),
		}
		for i := range tab.Rows {
			tab.Rows[i] = fmt.Sprintf("r%02d", i)
			tab.Cells[i] = make([]string, fields)
			for j := range tab.Cells[i] {
				if idx := i*fields + j; idx < len(data) {
					tab.Cells[i][j] = values[int(data[idx])%len(values)]
				}
			}
		}
		for j := range tab.Fields {
			tab.Fields[j] = fmt.Sprintf("F%d", j)
		}
		e1, err := assoc.Explode(tab, assoc.ExplodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		imploded, err := assoc.Implode(e1, "|", ";")
		if err != nil {
			t.Fatalf("implode: %v\n%v", err, tab)
		}
		e2, err := assoc.Explode(imploded, assoc.ExplodeOptions{})
		if err != nil {
			t.Fatalf("re-explode: %v\n%v", err, imploded)
		}
		if diff := assoc.Diff(e1, e2, func(a, b float64) bool { return a == b }, value.FormatFloat); diff != "" {
			t.Fatalf("explode/implode not a fixpoint: %s", diff)
		}
	})
}
