package conformance

import (
	"fmt"
	"math/rand"

	"adjarray/internal/semiring"
)

// Generator draws adversarial random instances. Deterministic given the
// seed, so every run of the differential executor is reproducible from
// (seed, instance index) alone.
type Generator struct {
	r *rand.Rand
}

// NewGenerator creates a Generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{r: rand.New(rand.NewSource(seed))}
}

// unicodeVertexPool holds vertex keys chosen to break naive key
// handling: prefix-colliding names, an embedded NUL, the separator
// characters the Explode convention uses, combining characters (two
// spellings of é that must stay distinct keys), 0xff bytes that stress
// prefix upper bounds, astral-plane runes, and the empty string.
var unicodeVertexPool = []string{
	"", "v", "v|", "v|x", "vv", "v\x00", "v\x00a", "v\xff", "v\xffz",
	"é", "é", "�", "😀", "😀b", "Ω", "Ωa",
}

// edgeKeyPrefixes are adversarial edge-key prefixes; a fixed-width
// numeric suffix keeps keys unique while the prefixes collide.
var edgeKeyPrefixes = []string{"e", "e|", "e\x00", "é", "😀", "e\xff"}

// arm is one generator strategy.
type arm struct {
	name        string
	adversarial bool // draw values from the adversarial sample (off-domain, NaN/Inf)
	build       func(g *Generator, weights []float64) []Edge
}

func arms() []arm {
	return []arm{
		{name: "empty", build: func(*Generator, []float64) []Edge { return nil }},
		{name: "single-vertex", build: singleVertex},
		{name: "parallel-edges", build: parallelEdges},
		{name: "rmat-skew", build: rmatSkew},
		{name: "unicode-keys", build: unicodeKeys},
		{name: "sparse-wide", build: sparseWide},
		{name: "special-values", adversarial: true, build: parallelEdges},
		{name: "special-skew", adversarial: true, build: rmatSkew},
	}
}

// Instance draws one instance for the given registry pair. Weights come
// from the pair's canonical sample (on-domain arms, oracle-eligible) or
// its AdversarialSample (off-domain arms, which the executor downgrades
// to cross-kernel agreement), always excluding the pair's Zero so the
// incidence arrays honor Definition I.4.
func (g *Generator) Instance(e semiring.Entry) Instance {
	as := arms()
	a := as[g.r.Intn(len(as))]
	pool := e.Sample
	if a.adversarial {
		pool = e.AdversarialSample()
	}
	weights := nonZeroWeights(pool, e.Ops)
	in := Instance{Name: a.name, Edges: a.build(g, weights)}
	// Random batch splits for the incremental path: none, halves, or a
	// handful of uneven cuts.
	if n := len(in.Edges); n > 1 {
		switch g.r.Intn(3) {
		case 1:
			in.Splits = []int{1 + g.r.Intn(n-1)}
		case 2:
			for c := 0; c < 3; c++ {
				in.Splits = append(in.Splits, 1+g.r.Intn(n-1))
			}
		}
	}
	in.normalize()
	return in
}

// nonZeroWeights filters a value pool down to legal incidence entries.
func nonZeroWeights(pool []float64, ops semiring.Ops[float64]) []float64 {
	var out []float64
	for _, v := range pool {
		if !ops.IsZero(v) {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []float64{ops.One}
	}
	return out
}

func (g *Generator) weight(weights []float64) float64 {
	return weights[g.r.Intn(len(weights))]
}

func (g *Generator) edgeKey(i int) string {
	return fmt.Sprintf("%s%04d", edgeKeyPrefixes[g.r.Intn(len(edgeKeyPrefixes))], i)
}

// singleVertex: one vertex, up to six parallel self-loops — the smallest
// universe in which ⊕ aggregation can go wrong.
func singleVertex(g *Generator, weights []float64) []Edge {
	n := 1 + g.r.Intn(6)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{Key: g.edgeKey(i), Src: "v", Dst: "v", Out: g.weight(weights), In: g.weight(weights)}
	}
	return edges
}

// parallelEdges: at most three vertices and many duplicate (src,dst)
// pairs, so most adjacency cells fold several contributions.
func parallelEdges(g *Generator, weights []float64) []Edge {
	vs := []string{"a", "b", "c"}[:1+g.r.Intn(3)]
	n := 4 + g.r.Intn(21)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{
			Key: g.edgeKey(i),
			Src: vs[g.r.Intn(len(vs))], Dst: vs[g.r.Intn(len(vs))],
			Out: g.weight(weights), In: g.weight(weights),
		}
	}
	return edges
}

// rmatSkew: a small recursive-matrix multigraph — power-law degree
// distribution, hub rows with long fold chains, plus isolated regions.
func rmatSkew(g *Generator, weights []float64) []Edge {
	scale := 3 + g.r.Intn(3) // 8..32 vertices
	n := 1 << scale
	m := (2 + g.r.Intn(3)) * (n / 2)
	edges := make([]Edge, m)
	for e := 0; e < m; e++ {
		src, dst := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			p := g.r.Float64()
			switch {
			case p < 0.57:
			case p < 0.76:
				dst += bit
			case p < 0.95:
				src += bit
			default:
				src += bit
				dst += bit
			}
		}
		edges[e] = Edge{
			Key: fmt.Sprintf("e%05d", e),
			Src: fmt.Sprintf("v%03d", src), Dst: fmt.Sprintf("v%03d", dst),
			Out: g.weight(weights), In: g.weight(weights),
		}
	}
	return edges
}

// unicodeKeys: endpoints drawn from the prefix-colliding unicode pool,
// adversarial edge-key prefixes included.
func unicodeKeys(g *Generator, weights []float64) []Edge {
	n := 2 + g.r.Intn(14)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{
			Key: g.edgeKey(i),
			Src: unicodeVertexPool[g.r.Intn(len(unicodeVertexPool))],
			Dst: unicodeVertexPool[g.r.Intn(len(unicodeVertexPool))],
			Out: g.weight(weights), In: g.weight(weights),
		}
	}
	return edges
}

// sparseWide: many vertices, few edges — adjacency arrays dominated by
// empty rows and columns, exercising key-set bookkeeping over values.
func sparseWide(g *Generator, weights []float64) []Edge {
	n := 2 + g.r.Intn(6)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{
			Key: g.edgeKey(i),
			Src: fmt.Sprintf("s%02d", g.r.Intn(24)), Dst: fmt.Sprintf("t%02d", g.r.Intn(24)),
			Out: g.weight(weights), In: g.weight(weights),
		}
	}
	return edges
}
