package conformance

import (
	"fmt"
	"os"
	"path/filepath"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/value"
)

// Divergence is one disagreement between a construction path and the
// reference (or between the reference and the dense oracle), pinned to
// the instance that produced it.
type Divergence struct {
	// Pair is the operator pair's registry name.
	Pair string
	// Path names the disagreeing construction path, "dense-oracle" for
	// an oracle-tier failure, or "reference" when the serial two-phase
	// reference itself errored.
	Path string
	// Detail is the first difference (assoc.Diff) or the error message.
	Detail string
	// Instance reproduces the failure (shrunk when found via Run).
	Instance Instance
	// Artifact is the file the instance was written to, when an
	// artifact directory was configured.
	Artifact string
}

// Error renders the divergence as a one-line report.
func (d *Divergence) Error() string {
	s := fmt.Sprintf("conformance: pair %s path %s on %q (%d edges): %s",
		d.Pair, d.Path, d.Instance.Name, len(d.Instance.Edges), d.Detail)
	if d.Artifact != "" {
		s += " [artifact: " + d.Artifact + "]"
	}
	return s
}

// Compare runs one instance through every path and reports the first
// divergence, or nil when all agree. The serial two-phase kernel is the
// reference; paths that re-associate the fold are skipped when ⊕ is not
// associative on the instance's value closure, and the dense oracle is
// consulted only when the pair passes the Theorem II.1 conditions (plus
// ⊕-identity) on its sample extended with the instance's values.
func Compare(inst Instance, entry semiring.Entry, paths []Path) *Divergence {
	ops := entry.Ops
	eout, ein := inst.Incidence()
	ref, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{Kernel: "twophase"})
	if err != nil {
		return &Divergence{Pair: entry.Name, Path: "reference", Detail: err.Error(), Instance: inst}
	}
	if err := ref.Validate(); err != nil {
		return &Divergence{Pair: entry.Name, Path: "reference", Detail: err.Error(), Instance: inst}
	}

	assocOK := deltaCompatibleOn(ops, valueClosure(ops, inst))
	for _, p := range paths {
		if p.ReAssociates && !assocOK {
			continue
		}
		got, err := p.Build(eout, ein, ops, inst)
		if err != nil {
			return &Divergence{Pair: entry.Name, Path: p.Name, Detail: err.Error(), Instance: inst}
		}
		if err := got.Validate(); err != nil {
			return &Divergence{Pair: entry.Name, Path: p.Name, Detail: "invalid structure: " + err.Error(), Instance: inst}
		}
		if diff := assoc.Diff(ref, got, ops.Equal, value.FormatFloat); diff != "" {
			return &Divergence{Pair: entry.Name, Path: p.Name, Detail: diff, Instance: inst}
		}
	}

	if oracleEligible(entry, inst) {
		oracle, err := assoc.MulDense(eout.Transpose(), ein, ops)
		if err != nil {
			return &Divergence{Pair: entry.Name, Path: "dense-oracle", Detail: err.Error(), Instance: inst}
		}
		if diff := assoc.Diff(oracle, ref, ops.Equal, value.FormatFloat); diff != "" {
			return &Divergence{Pair: entry.Name, Path: "dense-oracle", Detail: diff, Instance: inst}
		}
	}
	return nil
}

// valueClosure gathers the distinct values the merge machinery actually
// ⊕-folds for this instance: each edge's incidence entries plus their
// ⊗-product, capped for the cubic associativity probe.
func valueClosure(ops semiring.Ops[float64], inst Instance) []float64 {
	const maxVals = 12
	var vals []float64
	add := func(v float64) {
		for _, s := range vals {
			if value.Float64Equal(s, v) {
				return
			}
		}
		if len(vals) < maxVals {
			vals = append(vals, v)
		}
	}
	for _, e := range inst.Edges {
		add(e.Out)
		add(e.In)
		add(ops.Mul(e.Out, e.In))
		if len(vals) >= maxVals {
			break
		}
	}
	return vals
}

// deltaCompatibleOn probes the hypotheses under which re-associating
// merges (sharded, stream) equal the sequential fold: ⊕ associative on
// the sampled closure, and Zero a two-sided ⊕-identity on it. The
// identity half matters because partial products PRUNE cells that fold
// to Zero, and the merge then treats that absence as "contributes
// nothing" — sound only when v ⊕ 0 = 0 ⊕ v = v. (The conformance
// harness originally gated on associativity alone and promptly caught
// the gap on max.+@0 over signed data: 2 ⊗ −2 = 0 is a zero-divisor
// product whose pruning loses max(−1, 0) ≠ −1.)
//
// The probe IS the backends' own guard — shard.Engine's sampled check —
// so the executor's skip condition can never drift from what sharded
// construction and stream ingest actually verify.
func deltaCompatibleOn(ops semiring.Ops[float64], vals []float64) bool {
	return shard.Engine[float64]{Ops: ops}.CheckAssociativeValues(vals) == nil
}

// oracleEligible decides whether the dense Definition I.3 oracle is a
// valid reference for this (pair, instance): the Theorem II.1 conditions
// and the ⊕-identity law must hold on the pair's canonical sample
// extended with the instance's values. When they fail (NaN data breaking
// the annihilator, off-domain values breaking zero-sum-freeness), the
// sparse and dense products may legitimately differ — that is the
// paper's theorem — so the executor falls back to cross-kernel
// agreement only.
func oracleEligible(entry semiring.Entry, inst Instance) bool {
	sample := append([]float64{}, entry.Sample...)
	add := func(v float64) {
		for _, s := range sample {
			if value.Float64Equal(s, v) {
				return
			}
		}
		if len(sample) < 64 {
			sample = append(sample, v)
		}
	}
	for _, e := range inst.Edges {
		add(e.Out)
		add(e.In)
	}
	rep := semiring.Check(entry.Ops, sample, value.FormatFloat)
	return rep.TheoremII1() && rep.AddIdentity.Holds
}

// Config tunes a Run of the differential executor.
type Config struct {
	// Seed drives instance generation. Runs are reproducible from it.
	Seed int64
	// Instances is the number of random instances per operator pair
	// (default 100).
	Instances int
	// Entries are the operator pairs to cover (default: the full
	// registry, compliant pairs and non-examples alike).
	Entries []semiring.Entry
	// Paths are the construction paths (default: Paths()).
	Paths []Path
	// ArtifactDir, when non-empty, receives one Encode()d file per
	// shrunk divergence. Default: $CONFORMANCE_ARTIFACT_DIR.
	ArtifactDir string
	// KeepGoing collects every divergence instead of stopping at the
	// first.
	KeepGoing bool
}

func (c *Config) defaults() {
	if c.Instances <= 0 {
		c.Instances = 100
	}
	if len(c.Entries) == 0 {
		c.Entries = semiring.Registry()
	}
	if len(c.Paths) == 0 {
		c.Paths = Paths()
	}
	if c.ArtifactDir == "" {
		c.ArtifactDir = os.Getenv("CONFORMANCE_ARTIFACT_DIR")
	}
}

// Run draws Instances random instances per operator pair, feeds each
// through Compare, and shrinks every divergence before reporting it.
// Shrunk counterexamples are written to the artifact directory when one
// is configured.
func Run(cfg Config) []*Divergence {
	cfg.defaults()
	var divs []*Divergence
	gen := NewGenerator(cfg.Seed)
	for i := 0; i < cfg.Instances; i++ {
		for _, e := range cfg.Entries {
			inst := gen.Instance(e)
			d := Compare(inst, e, cfg.Paths)
			if d == nil {
				continue
			}
			d = shrinkDivergence(d, e, cfg.Paths)
			d.Artifact = writeArtifact(cfg.ArtifactDir, d)
			divs = append(divs, d)
			if !cfg.KeepGoing {
				return divs
			}
		}
	}
	return divs
}

// shrinkDivergence minimizes the divergence's instance while the SAME
// path keeps disagreeing, then re-runs Compare for an up-to-date detail.
func shrinkDivergence(d *Divergence, entry semiring.Entry, paths []Path) *Divergence {
	shrunk := Shrink(d.Instance, func(in Instance) bool {
		c := Compare(in, entry, paths)
		return c != nil && c.Path == d.Path
	})
	c := Compare(shrunk, entry, paths)
	if c == nil {
		return d // shrinking lost the failure (should not happen); keep the original
	}
	c.Instance = shrunk
	return c
}

// writeArtifact persists a shrunk counterexample; returns the path or
// "". Files are created with O_EXCL under a numbered suffix, so two
// divergences whose names sanitize identically (e.g. "+.*" and "∪.∩"
// both become "___") never overwrite each other and every reported
// Artifact path holds exactly the instance it claims to reproduce.
func writeArtifact(dir string, d *Divergence) string {
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	body := append([]byte(fmt.Sprintf("# %s\n", d.Error())), d.Instance.Encode()...)
	base := fmt.Sprintf("divergence-%s-%s", sanitize(d.Pair), sanitize(d.Path))
	for i := 0; i < 10000; i++ {
		name := base + ".txt"
		if i > 0 {
			name = fmt.Sprintf("%s-%d.txt", base, i)
		}
		path := filepath.Join(dir, name)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return ""
		}
		_, werr := f.Write(body)
		if cerr := f.Close(); werr != nil || cerr != nil {
			return ""
		}
		return path
	}
	return ""
}

// sanitize maps registry names like "+.*" onto filesystem-safe tokens.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// SelfCheck is the embeddable entry point: it runs the differential
// executor over every registry pair and registered path and returns the
// first (shrunk) divergence as an error, or nil when all paths agree on
// every instance. The adjarray facade re-exports it so applications can
// verify a deployment's construction paths at startup or in their own
// test suites.
func SelfCheck(seed int64, instances int) error {
	if divs := Run(Config{Seed: seed, Instances: instances}); len(divs) > 0 {
		return divs[0]
	}
	return nil
}
