package conformance

import "fmt"

// Shrink minimizes a failing instance: a ddmin-style pass removes edge
// chunks at doubling granularity while fails keeps reporting true, a
// split-simplification pass drops batch boundaries, and a final
// canonicalization renames the surviving keys to short stable names.
// The result is the smallest instance the search finds that still
// fails — typically a couple of edges — so divergence reports read like
// hand-written regression tests instead of 100-edge random blobs.
//
// fails must be deterministic. Shrink never returns an instance for
// which fails is false; if the input itself does not fail it is
// returned unchanged.
func Shrink(inst Instance, fails func(Instance) bool) Instance {
	if !fails(inst) {
		return inst
	}
	cur := inst

	// ddmin over the edge list: try removing contiguous chunks, halving
	// the chunk size whenever no removal sticks.
	chunk := (len(cur.Edges) + 1) / 2
	for chunk >= 1 && len(cur.Edges) > 1 {
		removed := false
		for start := 0; start < len(cur.Edges); {
			end := start + chunk
			if end > len(cur.Edges) {
				end = len(cur.Edges)
			}
			cand := cur.withoutRange(start, end)
			if fails(cand) {
				cur = cand
				removed = true
				// Do not advance: the next chunk now starts here.
			} else {
				start = end
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		} else if chunk > len(cur.Edges) {
			chunk = len(cur.Edges)
		}
	}

	// Fewer batch boundaries are simpler; a single batch is simplest.
	if len(cur.Splits) > 0 {
		cand := cur
		cand.Splits = nil
		if fails(cand) {
			cur = cand
		}
	}

	// Canonical names: edge keys e00…, vertices a, b, … in first-use
	// order. Adopted only when the failure is key-independent.
	if cand := canonical(cur); fails(cand) {
		cur = cand
	}
	return cur
}

// withoutRange copies the instance minus edges [lo, hi), remapping the
// batch split points into the reduced index space.
func (in Instance) withoutRange(lo, hi int) Instance {
	out := Instance{Name: in.Name}
	out.Edges = make([]Edge, 0, len(in.Edges)-(hi-lo))
	out.Edges = append(out.Edges, in.Edges[:lo]...)
	out.Edges = append(out.Edges, in.Edges[hi:]...)
	for _, s := range in.Splits {
		ns := s
		if s > hi {
			ns = s - (hi - lo)
		} else if s > lo {
			ns = lo
		}
		out.Splits = append(out.Splits, ns)
	}
	out.Splits = clampSplits(out.Splits, len(out.Edges))
	return out
}

// canonical renames the instance's keys to minimal stable names while
// preserving edge order, endpoint identity, and values.
func canonical(in Instance) Instance {
	names := map[string]string{}
	next := 0
	vertex := func(k string) string {
		if n, ok := names[k]; ok {
			return n
		}
		n := string(rune('a' + next%26))
		if next >= 26 {
			n = fmt.Sprintf("%s%d", n, next/26)
		}
		next++
		names[k] = n
		return n
	}
	out := Instance{Name: in.Name, Splits: append([]int{}, in.Splits...)}
	out.Edges = make([]Edge, len(in.Edges))
	for i, e := range in.Edges {
		out.Edges[i] = Edge{
			Key: fmt.Sprintf("e%02d", i),
			Src: vertex(e.Src), Dst: vertex(e.Dst),
			Out: e.Out, In: e.In,
		}
	}
	return out
}
