// Package conformance is the cross-backend verification subsystem: a
// reusable harness that checks every adjacency-construction path in the
// repository against the dense Definition I.3 oracle and against each
// other, on adversarial random instances, with automatic counterexample
// shrinking.
//
// The library now has five independently-written ways to compute
// A = Eoutᵀ ⊕.⊗ Ein — the serial Gustavson CSR kernel, the two-phase
// symbolic/numeric engine, the row-blocked parallel engine, edge-sharded
// partial products, and the incremental stream.View — and the paper's
// correctness claim (Theorem II.1 of the companion "Algebraic
// Conditions" work) is about the MATHEMATICAL product, not any one
// kernel. The harness separates those concerns into tiers:
//
//   - Bit-identity tier: every sparse path must produce an array Equal
//     to the serial two-phase reference on every instance, for every
//     registry operator pair — kernels fold contributions in ascending
//     edge-key order by contract, so even non-associative,
//     non-commutative ⊕ must agree bit-for-bit. Paths that re-associate
//     the per-cell fold (sharded, stream) are compared only when ⊕ is
//     associative on the instance's value closure, mirroring the guard
//     they ship with.
//
//   - Oracle tier: when the operator pair satisfies the Theorem II.1
//     conditions (checked on the pair's canonical sample extended with
//     the instance's values), the sparse result must equal the dense
//     oracle that folds over every shared key including structural
//     zeros. Instances carrying NaN, off-domain, or
//     annihilator-breaking values automatically downgrade to the
//     bit-identity tier — exactly the dichotomy the paper proves.
//
//   - Metamorphic tier (laws.go): transpose duality
//     A(Eout,Ein)ᵀ = A(Ein,Eout) for commutative ⊗, degree-sum
//     invariants under unit-weight +.*, sub-array selection commuting
//     with construction, and batch == incremental under arbitrary batch
//     splits.
//
// Instances come from adversarial generators (generate.go): duplicate
// parallel edges, single-vertex universes, unicode and prefix-colliding
// keys, RMAT-style skew, NaN/±Inf and off-domain values, and empty
// instances. A failing instance is minimized by ddmin-style shrinking
// (shrink.go) before being reported, and optionally written to
// CONFORMANCE_ARTIFACT_DIR for CI artifact upload.
//
// Future backends get all of this by registering one constructor with
// Register; `go test ./internal/conformance -quick=N` scales the random
// search, and the package's native fuzz targets (FuzzCorrelate,
// FuzzStreamAppend, FuzzExplodeImplode) drive the same executor from
// coverage-guided inputs.
package conformance
