package conformance

import (
	"testing"

	"adjarray/internal/keys"
	"adjarray/internal/semiring"
)

// Every registry pair, on adversarial instances, must satisfy the
// paper's metamorphic laws (each law self-gates on the algebraic
// property it needs, so non-examples run too).
func TestMetamorphicLaws(t *testing.T) {
	selectors := []struct {
		name           string
		rowSel, colSel keys.Selector
	}{
		{"all", keys.All{}, keys.All{}},
		{"prefix-v", keys.Prefix{P: "v"}, keys.All{}},
		{"range", keys.Range{Lo: "a", Hi: "s99"}, keys.Prefix{P: "t"}},
		{"empty-col", keys.All{}, keys.NewList("no-such-vertex")},
	}
	for _, entry := range semiring.Registry() {
		gen := NewGenerator(99)
		for i := 0; i < 20; i++ {
			inst := gen.Instance(entry)
			if err := CheckTransposeDuality(inst, entry); err != nil {
				t.Error(err)
			}
			if err := CheckDegreeSums(inst); err != nil {
				t.Error(err)
			}
			sel := selectors[i%len(selectors)]
			if err := CheckSubArraySelection(inst, entry, sel.rowSel, sel.colSel); err != nil {
				t.Errorf("selector %s: %v", sel.name, err)
			}
			// The instance's own splits, then a pathological every-edge split.
			if err := CheckBatchEqualsIncremental(inst, entry, nil); err != nil {
				t.Error(err)
			}
			everyEdge := make([]int, 0, len(inst.Edges))
			for s := 1; s < len(inst.Edges); s++ {
				everyEdge = append(everyEdge, s)
			}
			if err := CheckBatchEqualsIncremental(inst, entry, everyEdge); err != nil {
				t.Errorf("per-edge splits: %v", err)
			}
			// The sharded axis: arbitrary shard counts (including 1, a
			// degenerate sharded view, and counts exceeding the vertex
			// count) with the instance's own splits, plus per-edge splits
			// on a mid-size count.
			for _, shards := range []int{1, 2, 3, 5, 8} {
				if err := CheckShardedBatchEqualsIncremental(inst, entry, shards, nil); err != nil {
					t.Errorf("%d shards: %v", shards, err)
				}
			}
			if err := CheckShardedBatchEqualsIncremental(inst, entry, 4, everyEdge); err != nil {
				t.Errorf("4 shards per-edge splits: %v", err)
			}
		}
	}
}

// The duality law gates itself on ⊗ commutativity: for a pair whose ⊗
// is genuinely non-commutative the law must skip (nil) rather than
// report the inherent asymmetry as a violation. No registry float pair
// has a non-commutative ⊗ (first.* is non-commutative in ⊕, which the
// law does not need), so an ad-hoc pair exercises the gate.
func TestTransposeDualityGatesOnMulCommutativity(t *testing.T) {
	left := semiring.Entry{
		Name: "first.left",
		Ops: semiring.Ops[float64]{
			Name: "first.left",
			Add: func(a, b float64) float64 {
				if a != 0 {
					return a
				}
				return b
			},
			Mul:   func(a, b float64) float64 { return a }, // non-commutative ⊗
			Zero:  0,
			One:   1,
			Equal: func(a, b float64) bool { return a == b },
		},
		Sample: []float64{0, 1, 2, 3},
	}
	inst := Instance{Name: "asym", Edges: []Edge{
		{Key: "e0", Src: "a", Dst: "b", Out: 2, In: 3},
		{Key: "e1", Src: "b", Dst: "a", Out: 5, In: 7},
	}}
	inst.normalize()
	if err := CheckTransposeDuality(inst, left); err != nil {
		t.Errorf("non-commutative ⊗ must gate the law off, got: %v", err)
	}
}
