package conformance

import (
	"fmt"
	"os"
	"sync"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/stream"
	"adjarray/internal/wal"
)

// Path is one registered way of computing A = Eoutᵀ ⊕.⊗ Ein. Register a
// Path and the differential executor, the quick-check test, and the
// fuzz targets all cover the new backend with no further wiring.
type Path struct {
	// Name identifies the path in divergence reports.
	Name string
	// ReAssociates marks paths that regroup the per-cell ⊕ fold
	// (partial-product merges): the executor compares them only when ⊕
	// is associative on the instance's value closure, the same
	// hypothesis the backends themselves guard.
	ReAssociates bool
	// Build constructs the adjacency array from the instance's incidence
	// arrays. inst carries extra driving data some paths need (the
	// stream path replays inst.Splits as separate batches).
	Build func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], inst Instance) (*assoc.Array[float64], error)
}

// builtinPaths covers the construction paths the repository ships.
func builtinPaths() []Path {
	return []Path{
		{
			Name: "csr-gustavson",
			Build: func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], _ Instance) (*assoc.Array[float64], error) {
				return assoc.Correlate(eout, ein, ops, assoc.MulOptions{Kernel: "gustavson"})
			},
		},
		{
			Name: "csr-twophase",
			Build: func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], _ Instance) (*assoc.Array[float64], error) {
				return assoc.Correlate(eout, ein, ops, assoc.MulOptions{Kernel: "twophase"})
			},
		},
		{
			Name: "parallel",
			Build: func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], _ Instance) (*assoc.Array[float64], error) {
				// FlopFloor -1: conformance instances are tiny, and the
				// default serial-fallback floor would silently route every
				// one of them through the serial kernel — the parallel code
				// path must stay under differential test.
				return assoc.Correlate(eout, ein, ops, assoc.MulOptions{Workers: 2, FlopFloor: -1})
			},
		},
		{
			Name:         "sharded",
			ReAssociates: true,
			Build: func(eout, ein *assoc.Array[float64], ops semiring.Ops[float64], _ Instance) (*assoc.Array[float64], error) {
				return shard.Construct(eout, ein, ops, shard.Options{Shards: 3, Workers: 2})
			},
		},
		{
			Name:         "stream",
			ReAssociates: true,
			Build:        buildStream,
		},
		{
			// The interned ingest path under maximum pressure: a fold per
			// batch (PendingBudget 1) exercises the materialize machinery
			// at every split boundary, and Workers 2 with the flop floor
			// disabled routes every partial product, backlog fold, and
			// ⊕-merge through the span-parallel kernels and the pooled
			// scratch. Gates the interner's byte-hash (unicode, NUL, 0xff,
			// prefix-colliding keys from the adversarial generators) and
			// the parallel fold against the dense Definition I.3 oracle.
			Name:         "stream-interned-parallel",
			ReAssociates: true,
			Build:        buildStreamInternedParallel,
		},
		{
			// The goroutine-sharded ingest as a construction path: every
			// batch scatters by source-vertex hash across 3 per-shard views
			// (interleaved per-shard appends — a batch's edges land on
			// different shards in sub-batches), with a gathered snapshot
			// between batches so each boundary pins an epoch vector and
			// forces the per-shard folds. The final adjacency is the lazy
			// cross-shard ⊕-merge. Gates the routing/merge machinery —
			// including the adversarial keys from the generators (unicode,
			// NUL, prefix collisions) flowing through the FNV router —
			// against the dense Definition I.3 oracle.
			Name:         "stream-sharded",
			ReAssociates: true,
			Build:        buildStreamSharded,
		},
		{
			// The durability round trip as a construction path: every batch
			// goes through a WAL-backed view, the process "crashes" (Abort:
			// no final checkpoint, no final sync), and the adjacency is
			// materialized from the RECOVERED view — checkpoint load plus
			// WAL-tail replay. Gates the whole persistence stack (batch
			// codec, checkpoint codec, interner slabs, CSR encoding,
			// recovery sequencing) against the dense Definition I.3 oracle.
			Name:         "stream-durable-recovered",
			ReAssociates: true,
			Build:        buildStreamDurableRecovered,
		},
	}
}

// buildStream replays the instance through an incremental stream.View:
// one Append per split segment with a Snapshot between batches, so every
// batch boundary becomes a fold re-association point — the most
// adversarial grouping the incremental path can produce.
func buildStream(_, _ *assoc.Array[float64], ops semiring.Ops[float64], inst Instance) (*assoc.Array[float64], error) {
	return replayStream(ops, inst, stream.Options{})
}

func buildStreamInternedParallel(_, _ *assoc.Array[float64], ops semiring.Ops[float64], inst Instance) (*assoc.Array[float64], error) {
	return replayStream(ops, inst, stream.Options{
		Mul:           assoc.MulOptions{Workers: 2, FlopFloor: -1},
		PendingBudget: 1,
	})
}

// buildStreamDurableRecovered replays the instance through a durable
// view in a throwaway directory, aborts without the final checkpoint or
// sync, reopens, and materializes from the recovered state. One
// checkpoint is taken after the first batch so recovery exercises the
// checkpoint-plus-tail path, not just a cold replay.
func buildStreamDurableRecovered(_, _ *assoc.Array[float64], ops semiring.Ops[float64], inst Instance) (*assoc.Array[float64], error) {
	dir, err := os.MkdirTemp("", "adjarray-conformance-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	d, err := stream.Open(dir, ops, stream.DurableOptions[float64]{
		// No fsync: the simulated failure is a process exit, not a power
		// cut, so written-but-unsynced records must survive the reopen.
		WAL: wal.Options{Policy: wal.SyncNever},
	})
	if err != nil {
		return nil, err
	}
	prev, first := 0, true
	cuts := append(append([]int{}, inst.Splits...), len(inst.Edges))
	for _, cut := range cuts {
		if cut <= prev {
			continue
		}
		batch := make([]stream.Edge[float64], cut-prev)
		for i, e := range inst.Edges[prev:cut] {
			batch[i] = stream.Weighted(e.Key, e.Src, e.Dst, e.Out, e.In)
		}
		if err := d.Append(batch); err != nil {
			d.Abort()
			return nil, err
		}
		if first {
			if err := d.Checkpoint(); err != nil {
				d.Abort()
				return nil, err
			}
			first = false
		}
		prev = cut
	}
	d.Abort()
	re, err := stream.Open(dir, ops, stream.DurableOptions[float64]{})
	if err != nil {
		return nil, err
	}
	defer re.Close()
	snap, err := re.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Adjacency, nil
}

func buildStreamSharded(_, _ *assoc.Array[float64], ops semiring.Ops[float64], inst Instance) (*assoc.Array[float64], error) {
	return replayShardedStream(ops, inst, 3, stream.Options{
		// Route the cross-shard merges through the span-parallel kernels
		// (per-shard folds are forced serial by the sharded view itself —
		// the shards are already concurrent).
		Mul: assoc.MulOptions{Workers: 2, FlopFloor: -1},
	})
}

// replayShardedStream is replayStream over an N-shard view: identical
// batch boundaries, but each Append scatters its edges to per-shard
// sub-batches and each boundary Snapshot pins a full epoch vector.
func replayShardedStream(ops semiring.Ops[float64], inst Instance, shards int, opt stream.Options) (*assoc.Array[float64], error) {
	v := stream.NewShardedView(ops, stream.ShardedOptions{Shards: shards, Stream: opt})
	prev := 0
	cuts := append(append([]int{}, inst.Splits...), len(inst.Edges))
	for _, cut := range cuts {
		if cut <= prev {
			continue
		}
		batch := make([]stream.Edge[float64], cut-prev)
		for i, e := range inst.Edges[prev:cut] {
			batch[i] = stream.Weighted(e.Key, e.Src, e.Dst, e.Out, e.In)
		}
		if err := v.Append(batch); err != nil {
			return nil, err
		}
		if _, err := v.Snapshot(); err != nil {
			return nil, err
		}
		prev = cut
	}
	snap, err := v.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Adjacency()
}

func replayStream(ops semiring.Ops[float64], inst Instance, opt stream.Options) (*assoc.Array[float64], error) {
	v := stream.NewView(ops, opt)
	prev := 0
	cuts := append(append([]int{}, inst.Splits...), len(inst.Edges))
	for _, cut := range cuts {
		if cut <= prev {
			continue
		}
		batch := make([]stream.Edge[float64], cut-prev)
		for i, e := range inst.Edges[prev:cut] {
			batch[i] = stream.Weighted(e.Key, e.Src, e.Dst, e.Out, e.In)
		}
		if err := v.Append(batch); err != nil {
			return nil, err
		}
		// Force the pending backlog into the materialized level so the
		// next batch folds against already-folded state.
		if _, err := v.Snapshot(); err != nil {
			return nil, err
		}
		prev = cut
	}
	snap, err := v.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Adjacency, nil
}

var (
	pathMu     sync.Mutex
	registered []Path
)

// Register adds a construction path to the global registry. Names must
// be unique across built-ins and prior registrations.
func Register(p Path) error {
	if p.Name == "" || p.Build == nil {
		return fmt.Errorf("conformance: path needs a name and a Build function")
	}
	pathMu.Lock()
	defer pathMu.Unlock()
	for _, q := range builtinPaths() {
		if q.Name == p.Name {
			return fmt.Errorf("conformance: path %q already registered", p.Name)
		}
	}
	for _, q := range registered {
		if q.Name == p.Name {
			return fmt.Errorf("conformance: path %q already registered", p.Name)
		}
	}
	registered = append(registered, p)
	return nil
}

// Unregister removes a previously Registered path (built-ins cannot be
// removed). It reports whether the name was found.
func Unregister(name string) bool {
	pathMu.Lock()
	defer pathMu.Unlock()
	for i, q := range registered {
		if q.Name == name {
			registered = append(registered[:i], registered[i+1:]...)
			return true
		}
	}
	return false
}

// Paths returns the built-in construction paths plus every Registered
// one.
func Paths() []Path {
	pathMu.Lock()
	defer pathMu.Unlock()
	return append(builtinPaths(), registered...)
}

// PathNames returns the names of all current paths, built-ins first.
func PathNames() []string {
	ps := Paths()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
