package conformance

import (
	"fmt"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/stream"
	"adjarray/internal/value"
)

// The metamorphic laws: identities the paper guarantees about adjacency
// construction that hold without knowing the expected output, so every
// random instance doubles as a test case. Each Check function returns
// nil when the law holds or does not apply to the pair/instance, and a
// descriptive error pinned to the first difference otherwise.

// CheckTransposeDuality asserts A(Eout,Ein)ᵀ = A(Ein,Eout) — swapping
// the incidence operands transposes the adjacency array, because entry
// (a,b) folds eout(k,a) ⊗ ein(k,b) over the same ascending k order on
// both sides. The law requires ⊗ commutative (Corollary III.1
// territory); it is skipped (nil) when ⊗ is not commutative on the
// instance's value closure.
func CheckTransposeDuality(inst Instance, entry semiring.Entry) error {
	ops := entry.Ops
	vals := valueClosure(ops, inst)
	for _, a := range vals {
		for _, b := range vals {
			if !ops.Equal(ops.Mul(a, b), ops.Mul(b, a)) {
				return nil // ⊗ not commutative here; the law does not apply
			}
		}
	}
	eout, ein := inst.Incidence()
	fwd, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: transpose duality: forward: %w", err)
	}
	rev, err := assoc.Correlate(ein, eout, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: transpose duality: reverse: %w", err)
	}
	if diff := assoc.Diff(fwd.Transpose(), rev, ops.Equal, value.FormatFloat); diff != "" {
		return fmt.Errorf("conformance: transpose duality violated for %s on %q: %s", entry.Name, inst.Name, diff)
	}
	return nil
}

// CheckDegreeSums asserts the counting invariants of unit-weight +.*
// construction (Lemma II.2's bookkeeping): each adjacency row sums to
// the out-degree of its vertex, each column to the in-degree, and the
// whole array to the edge count — every edge contributes exactly one
// 1 ⊗ 1 product to exactly one cell. The instance's weights are
// replaced by 1 so the law applies regardless of the generating arm.
func CheckDegreeSums(inst Instance) error {
	unit := Instance{Name: inst.Name, Edges: append([]Edge{}, inst.Edges...)}
	outDeg := map[string]float64{}
	inDeg := map[string]float64{}
	for i := range unit.Edges {
		unit.Edges[i].Out, unit.Edges[i].In = 1, 1
		outDeg[unit.Edges[i].Src]++
		inDeg[unit.Edges[i].Dst]++
	}
	ops := semiring.PlusTimes()
	eout, ein := unit.Incidence()
	a, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: degree sums: %w", err)
	}
	rowSum := assoc.ReduceRows(a, ops.Add)
	for v, want := range outDeg {
		if got := rowSum[v]; got != want {
			return fmt.Errorf("conformance: degree sums on %q: row %q sums to %v, out-degree is %v", inst.Name, v, got, want)
		}
	}
	colSum := assoc.ReduceRows(a.Transpose(), ops.Add)
	for v, want := range inDeg {
		if got := colSum[v]; got != want {
			return fmt.Errorf("conformance: degree sums on %q: col %q sums to %v, in-degree is %v", inst.Name, v, got, want)
		}
	}
	total, _ := assoc.ReduceAll(a, ops.Add)
	if want := float64(len(unit.Edges)); total != want {
		return fmt.Errorf("conformance: degree sums on %q: total %v, edges %v", inst.Name, total, want)
	}
	return nil
}

// CheckSubArraySelection asserts that sub-array selection commutes with
// construction: A(Eout(:,S1), Ein(:,S2)) = A(Eout,Ein)(S1,S2) — the
// paper's Matlab-style sub-key notation applied before or after the
// multiply yields the same array, because restricting the vertex
// columns changes neither the edge-key fold order nor any surviving
// contribution. Holds for every pair, compliant or not.
func CheckSubArraySelection(inst Instance, entry semiring.Entry, rowSel, colSel keys.Selector) error {
	ops := entry.Ops
	eout, ein := inst.Incidence()
	full, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: sub-array selection: full: %w", err)
	}
	after := full.SubRef(rowSel, colSel)
	before, err := assoc.Correlate(eout.SubRef(keys.All{}, rowSel), ein.SubRef(keys.All{}, colSel), ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: sub-array selection: restricted: %w", err)
	}
	if diff := assoc.Diff(after, before, ops.Equal, value.FormatFloat); diff != "" {
		return fmt.Errorf("conformance: sub-array selection violated for %s on %q: %s", entry.Name, inst.Name, diff)
	}
	return nil
}

// CheckBatchEqualsIncremental asserts that replaying the instance
// through the incremental stream path — using the given batch split
// points (nil for the instance's own) — equals the one-shot batch
// construction. Skipped (nil) when ⊕ is not associative on the
// instance's value closure, the hypothesis the delta identity needs.
func CheckBatchEqualsIncremental(inst Instance, entry semiring.Entry, splits []int) error {
	ops := entry.Ops
	if !deltaCompatibleOn(ops, valueClosure(ops, inst)) {
		return nil
	}
	if splits != nil {
		inst.Splits = clampSplits(splits, len(inst.Edges))
	}
	eout, ein := inst.Incidence()
	want, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: batch==incremental: batch: %w", err)
	}
	got, err := buildStream(eout, ein, ops, inst)
	if err != nil {
		return fmt.Errorf("conformance: batch==incremental: stream: %w", err)
	}
	if diff := assoc.Diff(want, got, ops.Equal, value.FormatFloat); diff != "" {
		return fmt.Errorf("conformance: batch==incremental violated for %s on %q (splits %v): %s",
			entry.Name, inst.Name, inst.Splits, diff)
	}
	return nil
}

// CheckShardedBatchEqualsIncremental extends the batch==incremental law
// across the shard dimension: replaying the instance through an N-shard
// scatter-gather view — any N ≥ 1, any split points — must equal the
// one-shot batch construction. The sharding adds a second re-association
// axis on top of batching (edges of one source fold inside their shard,
// the shards ⊕-merge at gather time), but because shards own disjoint
// source-vertex row sets the merge never combines two values into one
// cell, so the law needs exactly the same hypothesis as the batched one:
// ⊕ associative on the instance's value closure. Skipped (nil)
// otherwise.
func CheckShardedBatchEqualsIncremental(inst Instance, entry semiring.Entry, shards int, splits []int) error {
	ops := entry.Ops
	if !deltaCompatibleOn(ops, valueClosure(ops, inst)) {
		return nil
	}
	if splits != nil {
		inst.Splits = clampSplits(splits, len(inst.Edges))
	}
	eout, ein := inst.Incidence()
	want, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		return fmt.Errorf("conformance: sharded batch==incremental: batch: %w", err)
	}
	got, err := replayShardedStream(ops, inst, shards, stream.Options{})
	if err != nil {
		return fmt.Errorf("conformance: sharded batch==incremental: %d shards: %w", shards, err)
	}
	if diff := assoc.Diff(want, got, ops.Equal, value.FormatFloat); diff != "" {
		return fmt.Errorf("conformance: sharded batch==incremental violated for %s on %q (%d shards, splits %v): %s",
			entry.Name, inst.Name, shards, inst.Splits, diff)
	}
	return nil
}
