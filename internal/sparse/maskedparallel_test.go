package sparse

import (
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// hubSkewedCSR builds a matrix where a handful of hub rows carry most of
// the entries — the adversarial shape for span scheduling: a naive
// rows/workers split serializes one worker on the hubs while the rest
// idle, and a masked product concentrates the numeric cost wherever the
// mask admits the hubs' columns.
func hubSkewedCSR(r *rand.Rand, rows, cols, hubs int, hubDensity, tailDensity float64) *CSR[float64] {
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		d := tailDensity
		if i < hubs {
			d = hubDensity
		}
		for j := 0; j < cols; j++ {
			if r.Float64() < d {
				v := float64(1 + r.Intn(5))
				if r.Intn(2) == 0 {
					v = -v
				}
				coo.MustAppend(i, j, v)
			}
		}
	}
	return coo.ToCSR(nil)
}

// The parallel masked kernel must be bit-identical to the serial
// MulMasked for every algebra the unmasked parallel kernel is held to:
// +.* (cancellation pruning), first.* (non-commutative ⊕), and a−b
// (non-commutative AND non-associative). flopFloor −1 forces the
// parallel path even on tiny products.
func TestMulMaskedParallelBitIdenticalToSerial(t *testing.T) {
	algebras := []semiring.Ops[float64]{
		semiring.PlusTimes(),
		semiring.LeftmostNonzero(),
		subtractOps(),
	}
	configs := [][2]int{{2, 0}, {4, 1}, {3, 7}, {8, 2}, {16, 0}, {-1, 3}}
	r := rand.New(rand.NewSource(321))
	for trial := 0; trial < 25; trial++ {
		rows, inner, cols := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		density := 0.05 + r.Float64()*0.4
		a := signedCSR(r, rows, inner, density)
		b := signedCSR(r, inner, cols, density)
		mask := signedCSR(r, rows, cols, 0.05+r.Float64()*0.5)
		for _, ops := range algebras {
			ref, err := MulMasked(a, b, mask, ops)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range configs {
				got, err := MulMaskedParallel(a, b, mask, ops, cfg[0], cfg[1], -1)
				if err != nil {
					t.Fatalf("trial %d %s w=%d g=%d: %v", trial, ops.Name, cfg[0], cfg[1], err)
				}
				if !Equal(ref, got, value.Float64Equal) {
					t.Fatalf("trial %d: w=%d g=%d differs from serial MulMasked under %s",
						trial, cfg[0], cfg[1], ops.Name)
				}
				if _, err := NewCSR(got.rows, got.cols, got.rowPtr, got.colIdx, got.val); err != nil {
					t.Fatalf("trial %d: w=%d g=%d produced invalid CSR under %s: %v",
						trial, cfg[0], cfg[1], ops.Name, err)
				}
			}
		}
	}
}

// Hub-skewed instances exercise the numeric re-balance: the masked
// flops concentrate in the hub rows, so the scan-flop spans and the
// scan+masked-flop spans genuinely differ. Run with -race this also
// sweeps the disjoint-write claim of the numeric pass.
func TestMulMaskedParallelHubSkew(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	a := hubSkewedCSR(r, 200, 150, 4, 0.7, 0.02)
	b := hubSkewedCSR(r, 150, 180, 3, 0.6, 0.03)
	masks := map[string]*CSR[float64]{
		"dense":    signedCSR(r, 200, 180, 0.6),
		"sparse":   signedCSR(r, 200, 180, 0.03),
		"empty":    Empty[float64](200, 180),
		"hub-only": hubSkewedCSR(r, 200, 180, 4, 0.9, 0.0),
	}
	for _, ops := range []semiring.Ops[float64]{semiring.PlusTimes(), semiring.MinPlus()} {
		for name, mask := range masks {
			ref, err := MulMasked(a, b, mask, ops)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range [][2]int{{2, 0}, {4, 8}, {8, 1}, {16, 5}} {
				got, err := MulMaskedParallel(a, b, mask, ops, cfg[0], cfg[1], -1)
				if err != nil {
					t.Fatal(err)
				}
				if !Equal(ref, got, value.Float64Equal) {
					t.Fatalf("%s mask %s: w=%d g=%d differs from serial", ops.Name, name, cfg[0], cfg[1])
				}
			}
		}
	}
}

// Below the flop floor (and for workers <= 1) the call must take the
// serial path and still agree; an explicit floor above the instance's
// scan flops exercises the fallback branch.
func TestMulMaskedParallelSerialFallback(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randomCSR(r, 12, 10, 0.3)
	b := randomCSR(r, 10, 14, 0.3)
	mask := randomCSR(r, 12, 14, 0.4)
	ops := semiring.PlusTimes()
	ref, err := MulMasked(a, b, mask, ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		workers int
		floor   int64
	}{
		{"workers1", 1, -1},
		{"workers0", 0, -1},
		{"floorDefault", 4, 0}, // tiny instance sits below DefaultParallelFlopFloor
		{"floorHuge", 4, 1 << 40},
	} {
		got, err := MulMaskedParallel(a, b, mask, ops, tc.workers, 0, tc.floor)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !Equal(ref, got, value.Float64Equal) {
			t.Fatalf("%s: fallback result differs from serial", tc.name)
		}
	}
}

func TestMulMaskedParallelDimChecks(t *testing.T) {
	a := Empty[float64](2, 3)
	b := Empty[float64](3, 4)
	if _, err := MulMaskedParallel(a, b, Empty[float64](2, 5), semiring.PlusTimes(), 4, 0, -1); err == nil {
		t.Error("mismatched mask accepted")
	}
	if _, err := MulMaskedParallel(a, Empty[float64](9, 4), Empty[float64](2, 4), semiring.PlusTimes(), 4, 0, -1); err == nil {
		t.Error("mismatched inner dims accepted")
	}
}

// Ablation benchmark: serial masked kernel vs the parallel one at 2 and
// 4 workers, on a hub-skewed instance under a half-dense mask — the
// shape where the numeric re-balance matters.
func BenchmarkMulMaskedParallel(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	a := hubSkewedCSR(r, 2000, 1500, 16, 0.4, 0.01)
	m2 := hubSkewedCSR(r, 1500, 1800, 12, 0.35, 0.012)
	mask := signedCSR(r, 2000, 1800, 0.12)
	ops := semiring.PlusTimes()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MulMasked(a, m2, mask, ops); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{2, 4} {
		b.Run(map[int]string{2: "par2", 4: "par4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MulMaskedParallel(a, m2, mask, ops, w, 0, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
