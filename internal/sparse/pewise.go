package sparse

import (
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// EWiseAddIntoParallel is EWiseAddInto with the per-row union merge run
// across row spans balanced by merge cost (dst's plus src's row entry
// counts — the work of the two-pointer sweep). Rows are independent and
// each row's dst-left fold order is unchanged, so the result is
// bit-identical to the serial merge for any ⊕.
//
// The in-place subset fast path is preserved: when src's pattern is a
// subset of dst's and inPlace is set, spans fold src into dst's value
// buffer directly (disjoint row ranges — no locking) and dst itself is
// returned, the zero-allocation steady state of delta maintenance.
//
// workers <= 1 (or a matrix too small to split) degrades to the serial
// kernel, so callers need no special-case.
//
//adjlint:cow-writer
func EWiseAddIntoParallel[V any](dst, src *CSR[V], ops semiring.Ops[V], inPlace bool, scratch *MergeScratch[V], workers int) (*CSR[V], error) {
	if err := sameShape(dst, src); err != nil {
		return nil, err
	}
	if len(src.colIdx) == 0 {
		return dst, nil
	}
	w := parallel.Workers(workers, dst.rows)
	if w <= 1 {
		return EWiseAddInto(dst, src, ops, inPlace, scratch)
	}

	// Load model: the union sweep of row i costs nnz(dst,i)+nnz(src,i).
	pb := getInt64(dst.rows + 1)
	prefix := pb.xs
	prefix[0] = 0
	for i := 0; i < dst.rows; i++ {
		prefix[i+1] = prefix[i] +
			int64(dst.rowPtr[i+1]-dst.rowPtr[i]) + int64(src.rowPtr[i+1]-src.rowPtr[i])
	}
	bounds := parallel.BalancedSpans(prefix, w)
	putInt64(pb)

	// Pass 1: per-row union counts (the exact output offsets pass 2
	// writes into) plus the pattern-subset check, span-parallel.
	rowPtr := make([]int, dst.rows+1)
	spanSubset := make([]bool, w)
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		subset := true
		for i := lo; i < hi; i++ {
			dc := dst.colIdx[dst.rowPtr[i]:dst.rowPtr[i+1]]
			sc := src.colIdx[src.rowPtr[i]:src.rowPtr[i+1]]
			p, q, n := 0, 0, 0
			for p < len(dc) && q < len(sc) {
				switch {
				case dc[p] < sc[q]:
					p++
				case dc[p] > sc[q]:
					subset = false
					q++
				default:
					p++
					q++
				}
				n++
			}
			if q < len(sc) {
				subset = false
			}
			rowPtr[i+1] = n + len(dc) - p + len(sc) - q
		}
		spanSubset[s] = subset
	})
	subset := true
	for s := 0; s < w; s++ {
		if bounds[s] < bounds[s+1] && !spanSubset[s] {
			subset = false
			break
		}
	}

	if inPlace && subset {
		zeros := make([]int, w)
		parallel.ForSpans(bounds, func(s, lo, hi int) {
			z := 0
			for i := lo; i < hi; i++ {
				rlo := dst.rowPtr[i]
				dc := dst.colIdx[rlo:dst.rowPtr[i+1]]
				p := 0
				for q := src.rowPtr[i]; q < src.rowPtr[i+1]; q++ {
					j := src.colIdx[q]
					for dc[p] < j {
						p++
					}
					sum := ops.Add(dst.val[rlo+p], src.val[q])
					if ops.IsZero(sum) {
						z++
					}
					dst.val[rlo+p] = sum
					p++
				}
			}
			zeros[s] = z
		})
		total := 0
		for _, z := range zeros {
			total += z
		}
		if total > 0 {
			return dst.Prune(ops.IsZero), nil
		}
		return dst, nil
	}

	for i := 0; i < dst.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	unionNNZ := rowPtr[dst.rows]
	var colIdx []int
	var val []V
	if scratch != nil {
		srowPtr, scol, sval := scratch.take(dst.rows)
		copy(srowPtr, rowPtr)
		rowPtr = srowPtr
		colIdx, val = scol, sval
	}
	colIdx = growTo(colIdx, unionNNZ, scratch != nil)
	val = growTo(val, unionNNZ, scratch != nil)

	// Pass 2: span-parallel union merge with zero-prune, each row
	// written into its disjoint [rowPtr[i], rowPtr[i+1]) range;
	// finalizeTwoPhase compacts the (rare) pruned rows leftward.
	rowLen := make([]int, dst.rows)
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		for i := lo; i < hi; i++ {
			base := rowPtr[i]
			n := 0
			p, q := dst.rowPtr[i], src.rowPtr[i]
			dhi, shi := dst.rowPtr[i+1], src.rowPtr[i+1]
			for p < dhi || q < shi {
				switch {
				case q >= shi || (p < dhi && dst.colIdx[p] < src.colIdx[q]):
					colIdx[base+n] = dst.colIdx[p]
					val[base+n] = dst.val[p]
					n++
					p++
				case p >= dhi || src.colIdx[q] < dst.colIdx[p]:
					colIdx[base+n] = src.colIdx[q]
					val[base+n] = src.val[q]
					n++
					q++
				default:
					sum := ops.Add(dst.val[p], src.val[q])
					if !ops.IsZero(sum) {
						colIdx[base+n] = dst.colIdx[p]
						val[base+n] = sum
						n++
					}
					p++
					q++
				}
			}
			rowLen[i] = n
		}
	})
	return finalizeTwoPhase(dst.rows, dst.cols, rowPtr, rowLen, colIdx, val), nil
}

// growTo returns s resized to length n. When headroom is set (scratch
// recycling: the buffer will be reused by a steadily growing
// accumulator) a reallocation over-provisions by half, so a merge
// sequence whose union grows a little every time doesn't reallocate on
// every call.
func growTo[T any](s []T, n int, headroom bool) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := n
	if headroom {
		c = n + n/2
	}
	out := make([]T, n, c)
	return out
}
