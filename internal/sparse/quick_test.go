package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// quick_test.go — property-based tests of the structural kernel
// invariants, driven by testing/quick over randomly generated matrices.

// genMatrix is a quick.Generator-compatible random CSR wrapper.
type genMatrix struct {
	m *CSR[float64]
}

// Generate implements quick.Generator: random shape up to 24×24 with
// random density and values 1..9.
func (genMatrix) Generate(r *rand.Rand, size int) reflect.Value {
	rows := 1 + r.Intn(24)
	cols := 1 + r.Intn(24)
	density := r.Float64() * 0.4
	return reflect.ValueOf(genMatrix{m: randomCSR(r, rows, cols, density)})
}

var quickCfg = &quick.Config{MaxCount: 60}

// Transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(g genMatrix) bool {
		return Equal(g.m, g.m.Transpose().Transpose(), value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Transpose preserves nnz and flips every coordinate.
func TestQuickTransposeCoordinates(t *testing.T) {
	f := func(g genMatrix) bool {
		tr := g.m.Transpose()
		if tr.NNZ() != g.m.NNZ() {
			return false
		}
		ok := true
		g.m.Iterate(func(i, j int, v float64) {
			got, present := tr.At(j, i)
			if !present || got != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Dense round trip is lossless.
func TestQuickDenseRoundTrip(t *testing.T) {
	f := func(g genMatrix) bool {
		back, err := FromDense(g.m.ToDense(0), g.m.Cols(), func(v float64) bool { return v == 0 })
		return err == nil && Equal(g.m, back, value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// EWiseAdd under +.* is commutative (because + is).
func TestQuickEWiseAddCommutative(t *testing.T) {
	f := func(g genMatrix, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		other := randomCSR(r, g.m.Rows(), g.m.Cols(), 0.3)
		ops := semiring.PlusTimes()
		ab, err1 := EWiseAdd(g.m, other, ops)
		ba, err2 := EWiseAdd(other, g.m, ops)
		return err1 == nil && err2 == nil && Equal(ab, ba, value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// EWiseAdd with an empty matrix is the identity; EWiseMul annihilates.
func TestQuickEWiseIdentityAnnihilator(t *testing.T) {
	f := func(g genMatrix) bool {
		empty := Empty[float64](g.m.Rows(), g.m.Cols())
		ops := semiring.PlusTimes()
		sum, err1 := EWiseAdd(g.m, empty, ops)
		prod, err2 := EWiseMul(g.m, empty, ops)
		return err1 == nil && err2 == nil &&
			Equal(sum, g.m, value.Float64Equal) && prod.NNZ() == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Matrix multiplication under +.* is associative (since +.* is a true
// semiring): (AB)C == A(BC).
func TestQuickMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 1+r.Intn(10), 1+r.Intn(10), 0.3)
		b := randomCSR(r, a.Cols(), 1+r.Intn(10), 0.3)
		c := randomCSR(r, b.Cols(), 1+r.Intn(10), 0.3)
		ops := semiring.PlusTimes()
		ab, _ := MulGustavson(a, b, ops)
		abc1, _ := MulGustavson(ab, c, ops)
		bc, _ := MulGustavson(b, c, ops)
		abc2, _ := MulGustavson(a, bc, ops)
		return Equal(abc1, abc2, value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// (AB)ᵀ == BᵀAᵀ under commutative ⊗ (+.*).
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 1+r.Intn(12), 1+r.Intn(12), 0.3)
		b := randomCSR(r, a.Cols(), 1+r.Intn(12), 0.3)
		ops := semiring.PlusTimes()
		ab, _ := MulGustavson(a, b, ops)
		btat, _ := MulGustavson(b.Transpose(), a.Transpose(), ops)
		return Equal(ab.Transpose(), btat, value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Mul distributes over EWiseAdd under +.*: A(B ⊕ C) == AB ⊕ AC.
func TestQuickMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 1+r.Intn(10), 1+r.Intn(10), 0.3)
		b := randomCSR(r, a.Cols(), 1+r.Intn(10), 0.3)
		c := randomCSR(r, b.Rows(), b.Cols(), 0.3)
		ops := semiring.PlusTimes()
		bc, _ := EWiseAdd(b, c, ops)
		left, _ := MulGustavson(a, bc, ops)
		ab, _ := MulGustavson(a, b, ops)
		ac, _ := MulGustavson(a, c, ops)
		right, _ := EWiseAdd(ab, ac, ops)
		return Equal(left, right, value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Masked multiply is always a sub-pattern of the mask and of the full
// product.
func TestQuickMaskedSubPattern(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 1+r.Intn(12), 1+r.Intn(12), 0.3)
		b := randomCSR(r, a.Cols(), 1+r.Intn(12), 0.3)
		mask := randomCSR(r, a.Rows(), b.Cols(), 0.4)
		ops := semiring.PlusTimes()
		got, err := MulMasked(a, b, mask, ops)
		if err != nil {
			return false
		}
		full, _ := MulGustavson(a, b, ops)
		ok := true
		got.Iterate(func(i, j int, v float64) {
			if _, inMask := mask.At(i, j); !inMask {
				ok = false
			}
			if fv, inFull := full.At(i, j); !inFull || fv != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Prune then pattern-check: pruning explicit zeros never grows nnz and
// removes exactly the zero entries.
func TestQuickPrune(t *testing.T) {
	f := func(g genMatrix, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Zero out ~30% of entries.
		m := g.m.Map(func(i, j int, v float64) float64 {
			if r.Float64() < 0.3 {
				return 0
			}
			return v
		})
		p := m.Prune(func(v float64) bool { return v == 0 })
		zeros := 0
		m.Iterate(func(i, j int, v float64) {
			if v == 0 {
				zeros++
			}
		})
		return p.NNZ() == m.NNZ()-zeros
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// ExtractRows of all rows is the identity; ExtractCols of all columns is
// the identity.
func TestQuickExtractIdentity(t *testing.T) {
	f := func(g genMatrix) bool {
		rows := make([]int, g.m.Rows())
		for i := range rows {
			rows[i] = i
		}
		cols := make([]int, g.m.Cols())
		for j := range cols {
			cols[j] = j
		}
		er, err1 := g.m.ExtractRows(rows)
		ec, err2 := g.m.ExtractCols(cols)
		return err1 == nil && err2 == nil &&
			Equal(er, g.m, value.Float64Equal) && Equal(ec, g.m, value.Float64Equal)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
