package sparse

import (
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// MulMaskedParallel is MulMasked on the flop-balanced span scheduler —
// the last serial-only kernel in this package brought onto the
// MulParallel machinery. Output rows are independent and each row's
// fold runs in exactly the serial kernel's order (A-scan outer, B-scan
// inner, first-hit assign then ⊕, emission in ascending column order
// with zero pruning), so the result is bit-identical to MulMasked for
// any ⊕, including non-commutative ones.
//
// Scheduling happens twice, because a masked product has two different
// cost models:
//
//   - The SYMBOLIC phase costs what any SpGEMM scan costs: row i scans
//     Σ_{k∈A(i,:)} nnz(B(k,:)) entries (mask lookups are O(1) stamps).
//     Its spans come from the same scan-flop prefix MulParallelOpt uses.
//   - The NUMERIC phase additionally pays ⊗/⊕ only at mask-admitted
//     positions. The symbolic pass counts those mask-restricted flops
//     per row as a byproduct of its stamping, and the numeric spans are
//     re-balanced on scan + masked flops — so a span dense in masked
//     hits does not serialize a worker while mostly-masked-out spans
//     finish early.
//
// workers < 1 selects GOMAXPROCS; grain caps span sizes as in
// MulParallel. flopFloor 0 selects DefaultParallelFlopFloor, negative
// disables the serial fallback; below the floor (measured on scan
// flops) the serial MulMasked runs instead.
func MulMaskedParallel[V, M any](a, b *CSR[V], mask *CSR[M], ops semiring.Ops[V], workers, grain int, flopFloor int64) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	if mask.rows != a.rows || mask.cols != b.cols {
		return nil, &ShapeError{ARows: a.rows, ACols: b.cols, BRows: mask.rows, BCols: mask.cols}
	}
	w := parallel.Workers(workers, a.rows)
	if w <= 1 || a.rows == 0 {
		return MulMasked(a, b, mask, ops)
	}
	if flopFloor == 0 {
		flopFloor = DefaultParallelFlopFloor
	}

	// Scan-flop prefix: the symbolic load model and serial-fallback
	// signal. O(nnz(A)).
	pb := getInt64(a.rows + 1)
	prefix := pb.xs
	prefix[0] = 0
	for i := 0; i < a.rows; i++ {
		f := int64(0)
		for _, k := range a.colIdx[a.rowPtr[i]:a.rowPtr[i+1]] {
			f += int64(b.rowPtr[k+1] - b.rowPtr[k])
		}
		prefix[i+1] = prefix[i] + f
	}
	if flopFloor > 0 && prefix[a.rows] < flopFloor {
		putInt64(pb)
		return MulMasked(a, b, mask, ops)
	}

	spans := w
	if grain >= 1 {
		if s := (a.rows + grain - 1) / grain; s > spans {
			spans = s
		}
		if lim := 16 * w; spans > lim {
			spans = lim
		}
	}
	bounds := parallel.BalancedSpans(prefix, spans)

	// Symbolic phase: per-row masked output counts into rowPtr slots,
	// plus the mask-restricted flop count per row (the numeric load
	// model). Two pooled stamp boxes per span: one holds the row's
	// admitted mask columns, one is the distinct-output SPA.
	rowPtr := make([]int, a.rows+1)
	mb := getInt64(a.rows + 1) // masked-flop prefix, filled per row then summed
	mflops := mb.xs
	mflops[0] = 0
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		ab := getStampBox(b.cols)
		sb := getStampBox(b.cols)
		sym := pooledSym(sb)
		for i := lo; i < hi; i++ {
			count, mf := maskedSymbolicRow(a, b, mask, i, ab, sym)
			rowPtr[i+1] = count
			mflops[i+1] = mf
		}
		sb.current = sym.current
		putStampBox(sb)
		putStampBox(ab)
	})
	for i := 0; i < a.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}

	// Numeric spans re-balanced on the measured cost: the scan the
	// numeric pass must repeat plus the masked flops it folds.
	for i := 0; i < a.rows; i++ {
		scan := prefix[i+1] - prefix[i]
		mflops[i+1] = mflops[i] + scan + mflops[i+1]
	}
	nbounds := parallel.BalancedSpans(mflops, spans)
	putInt64(pb)

	// Exact single allocation of the output storage.
	nnz := rowPtr[a.rows]
	colIdx := make([]int, nnz)
	val := make([]V, nnz)
	rowLen := make([]int, a.rows)

	pool := accPoolFor[V]()
	parallel.ForSpans(nbounds, func(s, lo, hi int) {
		ab := getStampBox(b.cols)
		sb := getStampBox(b.cols)
		vb := getAccBox[V](pool, b.cols)
		acc := pooledSPA(sb, vb)
		for i := lo; i < hi; i++ {
			rowLen[i] = maskedNumericRow(a, b, mask, ops, i, ab, acc, colIdx[rowPtr[i]:rowPtr[i+1]], val[rowPtr[i]:rowPtr[i+1]])
		}
		releaseKernelScratch(pool, sb, acc, vb)
		putStampBox(ab)
	})
	putInt64(mb)
	return finalizeTwoPhase(a.rows, b.cols, rowPtr, rowLen, colIdx, val), nil
}

// maskedSymbolicRow counts row i's distinct mask-admitted output
// columns and, as a byproduct of the same scan, the mask-restricted
// flops (B entries that pass the mask — each one ⊗ and possibly ⊕ in
// the numeric pass). ab stamps the row's admitted columns; s stamps
// distinct outputs.
func maskedSymbolicRow[V, M any](a, b *CSR[V], mask *CSR[M], i int, ab *stampBox, s *symbolicSPA) (count int, mflops int64) {
	ab.current++
	allowed, cur := ab.stamp, ab.current
	mCols, _ := mask.Row(i)
	for _, j := range mCols {
		allowed[j] = cur
	}
	s.current++
	stamp, scur := s.stamp, s.current
	for _, k := range a.colIdx[a.rowPtr[i]:a.rowPtr[i+1]] {
		for _, j := range b.colIdx[b.rowPtr[k]:b.rowPtr[k+1]] {
			if allowed[j] != cur {
				continue
			}
			mflops++
			if stamp[j] != scur {
				stamp[j] = scur
				count++
			}
		}
	}
	return count, mflops
}

// maskedNumericRow folds row i exactly as the serial MulMasked does and
// writes the surviving entries in ascending column order into
// dstCol/dstVal, returning how many were written.
func maskedNumericRow[V, M any](a, b *CSR[V], mask *CSR[M], ops semiring.Ops[V], i int, ab *stampBox, s *spa[V], dstCol []int, dstVal []V) int {
	ab.current++
	allowed, cur := ab.stamp, ab.current
	mCols, _ := mask.Row(i)
	for _, j := range mCols {
		allowed[j] = cur
	}
	s.reset()
	aCols, aVals := a.Row(i)
	for p, k := range aCols {
		av := aVals[p]
		bCols, bVals := b.Row(k)
		for q, j := range bCols {
			if allowed[j] != cur {
				continue
			}
			prod := ops.Mul(av, bVals[q])
			if s.stamp[j] != s.current {
				s.stamp[j] = s.current
				s.acc[j] = prod
				s.touched = append(s.touched, j)
			} else {
				s.acc[j] = ops.Add(s.acc[j], prod)
			}
		}
	}
	sortInts(s.touched)
	n := 0
	for _, j := range s.touched {
		if !ops.IsZero(s.acc[j]) {
			dstCol[n] = j
			dstVal[n] = s.acc[j]
			n++
		}
	}
	return n
}
