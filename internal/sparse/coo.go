package sparse

import (
	"fmt"
	"sort"
)

// Triple is one (row, column, value) coordinate entry.
type Triple[V any] struct {
	Row, Col int
	Val      V
}

// COO is an append-only coordinate-format builder. Triples may arrive in
// any order and may duplicate coordinates; ToCSR sorts and combines
// duplicates with a caller-supplied ⊕, folding duplicates in insertion
// order (the order data arrived, matching D4M's Assoc constructor
// semantics).
type COO[V any] struct {
	rows, cols int
	triples    []Triple[V]
}

// NewCOO creates an empty rows×cols builder.
func NewCOO[V any](rows, cols int) *COO[V] {
	return &COO[V]{rows: rows, cols: cols}
}

// Rows returns the row dimension.
func (c *COO[V]) Rows() int { return c.rows }

// Cols returns the column dimension.
func (c *COO[V]) Cols() int { return c.cols }

// Len returns the number of appended triples (duplicates included).
func (c *COO[V]) Len() int { return len(c.triples) }

// Append adds one entry, validating bounds.
func (c *COO[V]) Append(row, col int, v V) error {
	if row < 0 || row >= c.rows {
		return fmt.Errorf("sparse: COO row %d out of range [0,%d)", row, c.rows)
	}
	if col < 0 || col >= c.cols {
		return fmt.Errorf("sparse: COO col %d out of range [0,%d)", col, c.cols)
	}
	c.triples = append(c.triples, Triple[V]{Row: row, Col: col, Val: v})
	return nil
}

// MustAppend is Append for statically in-range coordinates; it panics on
// a bounds violation (a programmer error in generated data).
func (c *COO[V]) MustAppend(row, col int, v V) {
	if err := c.Append(row, col, v); err != nil {
		panic(err)
	}
}

// ToCSR sorts the triples row-major and combines duplicate coordinates
// with combine (nil combine keeps the last value, D4M overwrite
// semantics). Duplicates are folded left-to-right in insertion order.
func (c *COO[V]) ToCSR(combine func(V, V) V) *CSR[V] {
	ts := make([]Triple[V], len(c.triples))
	copy(ts, c.triples)
	// Stable keeps insertion order among equal coordinates so the
	// combine fold is deterministic for non-commutative ⊕.
	sort.SliceStable(ts, func(a, b int) bool {
		if ts[a].Row != ts[b].Row {
			return ts[a].Row < ts[b].Row
		}
		return ts[a].Col < ts[b].Col
	})
	rowPtr := make([]int, c.rows+1)
	colIdx := make([]int, 0, len(ts))
	val := make([]V, 0, len(ts))
	for i := 0; i < len(ts); {
		j := i + 1
		acc := ts[i].Val
		for j < len(ts) && ts[j].Row == ts[i].Row && ts[j].Col == ts[i].Col {
			if combine != nil {
				acc = combine(acc, ts[j].Val)
			} else {
				acc = ts[j].Val
			}
			j++
		}
		colIdx = append(colIdx, ts[i].Col)
		val = append(val, acc)
		rowPtr[ts[i].Row+1]++
		i = j
	}
	for i := 0; i < c.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR[V]{rows: c.rows, cols: c.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// FromDense builds a CSR from a dense matrix, storing entries for which
// isZero is false. Ragged input rows are an error.
func FromDense[V any](dense [][]V, cols int, isZero func(V) bool) (*CSR[V], error) {
	rows := len(dense)
	rowPtr := make([]int, rows+1)
	var colIdx []int
	var val []V
	for i, row := range dense {
		if len(row) != cols {
			return nil, fmt.Errorf("sparse: dense row %d has %d entries, want %d", i, len(row), cols)
		}
		for j, v := range row {
			if !isZero(v) {
				colIdx = append(colIdx, j)
				val = append(val, v)
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR[V]{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}
