package sparse

import (
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// MulParallel is the row-blocked parallel two-phase SpGEMM engine:
// both the symbolic and numeric phases are partitioned into grain-sized
// row tasks executed by a worker pool. After the parallel symbolic
// phase, the per-row counts are prefix-summed into rowPtr and the
// output arrays are allocated exactly once; numeric workers then write
// their rows directly into the disjoint [rowPtr[i], rowPtr[i+1))
// ranges — there is no stitch/copy step. Scratch accumulators are
// pooled per worker (not per grain-task) via ForGrainWorker. Because
// output rows are independent and each row's fold order is unchanged,
// the result is bit-identical to MulTwoPhase/MulGustavson for any ⊕,
// including non-commutative ones.
//
// workers < 1 selects GOMAXPROCS. grain < 1 selects an automatic grain
// of rows/(8·workers), clamped to at least 1 — small enough to balance
// skewed row costs, large enough to amortize task dispatch.
func MulParallel[V any](a, b *CSR[V], ops semiring.Ops[V], workers, grain int) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	w := parallel.Workers(workers, a.rows)
	if w <= 1 || a.rows == 0 {
		return MulTwoPhase(a, b, ops)
	}
	if grain < 1 {
		grain = a.rows / (8 * w)
		if grain < 1 {
			grain = 1
		}
	}

	// Symbolic phase: exact per-row output counts, one stamp SPA per
	// worker, rows written into disjoint rowPtr slots.
	rowPtr := make([]int, a.rows+1)
	syms := make([]*symbolicSPA, w)
	parallel.ForGrainWorker(a.rows, w, grain, func(worker, lo, hi int) {
		sym := syms[worker]
		if sym == nil {
			sym = newSymbolicSPA(b.cols)
			syms[worker] = sym
		}
		for i := lo; i < hi; i++ {
			rowPtr[i+1] = symbolicRow(a, b, i, sym)
		}
	})
	for i := 0; i < a.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}

	// Exact single allocation of the output storage.
	nnz := rowPtr[a.rows]
	colIdx := make([]int, nnz)
	val := make([]V, nnz)
	rowLen := make([]int, a.rows)

	// Numeric phase: workers fold values and write in place into their
	// rows' preallocated ranges, reusing the symbolic stamp arrays as
	// the SPA occupancy stamps.
	rowFn := numericRowFor(ops)
	spas := make([]*spa[V], w)
	parallel.ForGrainWorker(a.rows, w, grain, func(worker, lo, hi int) {
		s := spas[worker]
		if s == nil {
			s = &spa[V]{acc: make([]V, b.cols)}
			if sym := syms[worker]; sym != nil {
				s.stamp, s.current = sym.stamp, sym.current
			} else {
				s.stamp = make([]int, b.cols)
			}
			spas[worker] = s
		}
		for i := lo; i < hi; i++ {
			rowLen[i] = rowFn(a, b, ops, i, s, colIdx[rowPtr[i]:rowPtr[i+1]], val[rowPtr[i]:rowPtr[i+1]])
		}
	})
	return finalizeTwoPhase(a.rows, b.cols, rowPtr, rowLen, colIdx, val), nil
}

// TransposeParallel is Transpose with the scatter phase parallelized
// over source rows. Each output slot is written exactly once (the
// per-column cursor is claimed atomically via pre-partitioned counts),
// so no locking of the value array is needed.
func TransposeParallel[V any](m *CSR[V], workers int) *CSR[V] {
	w := parallel.Workers(workers, m.rows)
	if w <= 1 || m.NNZ() == 0 {
		return m.Transpose()
	}
	// Per-worker column counts, then prefix-sum to give every worker a
	// private cursor range per column — a textbook two-pass parallel
	// counting sort that keeps source-row order within each column.
	chunk := (m.rows + w - 1) / w
	counts := make([][]int, w)
	parallel.For(m.rows, w, func(lo, hi int) {
		c := make([]int, m.cols)
		for p := m.rowPtr[lo]; p < m.rowPtr[hi]; p++ {
			c[m.colIdx[p]]++
		}
		counts[lo/chunk] = c
	})
	rowPtr := make([]int, m.cols+1)
	for j := 0; j < m.cols; j++ {
		total := 0
		for b := 0; b < w; b++ {
			if counts[b] == nil {
				continue
			}
			t := counts[b][j]
			counts[b][j] = total // becomes the block's cursor base
			total += t
		}
		rowPtr[j+1] = total
	}
	for j := 0; j < m.cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, m.NNZ())
	val := make([]V, m.NNZ())
	parallel.For(m.rows, w, func(lo, hi int) {
		cursor := counts[lo/chunk]
		for i := lo; i < hi; i++ {
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				j := m.colIdx[p]
				q := rowPtr[j] + cursor[j]
				cursor[j]++
				colIdx[q] = i
				val[q] = m.val[p]
			}
		}
	})
	return &CSR[V]{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}
