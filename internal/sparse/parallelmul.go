package sparse

import (
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// MulParallel is row-blocked parallel Gustavson SpGEMM: output rows are
// partitioned into grain-sized tasks executed by a worker pool, each
// with its own sparse accumulator, then stitched into one CSR. Because
// output rows are independent and each row's fold order is unchanged,
// the result is bit-identical to MulGustavson for any ⊕, including
// non-commutative ones.
//
// workers < 1 selects GOMAXPROCS. grain < 1 selects an automatic grain
// of rows/(8·workers), clamped to at least 1 — small enough to balance
// skewed row costs, large enough to amortize task dispatch.
func MulParallel[V any](a, b *CSR[V], ops semiring.Ops[V], workers, grain int) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	w := parallel.Workers(workers, a.rows)
	if w <= 1 || a.rows == 0 {
		return MulGustavson(a, b, ops)
	}
	if grain < 1 {
		grain = a.rows / (8 * w)
		if grain < 1 {
			grain = 1
		}
	}
	tasks := (a.rows + grain - 1) / grain
	blocks := make([]*rowAppender[V], tasks)
	parallel.ForGrain(a.rows, w, grain, func(lo, hi int) {
		out := newRowAppender[V](hi-lo, b.cols)
		s := newSPA[V](b.cols)
		for i := lo; i < hi; i++ {
			gustavsonRow(a, b, ops, i, s, out)
		}
		blocks[lo/grain] = out
	})
	return stitch(a.rows, b.cols, blocks), nil
}

// stitch concatenates per-task row blocks into one CSR.
func stitch[V any](rows, cols int, blocks []*rowAppender[V]) *CSR[V] {
	nnz := 0
	for _, blk := range blocks {
		nnz += len(blk.colIdx)
	}
	rowPtr := make([]int, 1, rows+1)
	colIdx := make([]int, 0, nnz)
	val := make([]V, 0, nnz)
	for _, blk := range blocks {
		base := len(colIdx)
		colIdx = append(colIdx, blk.colIdx...)
		val = append(val, blk.val...)
		for _, p := range blk.rowPtr[1:] {
			rowPtr = append(rowPtr, base+p)
		}
	}
	for len(rowPtr) < rows+1 {
		rowPtr = append(rowPtr, len(colIdx))
	}
	return &CSR[V]{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// TransposeParallel is Transpose with the scatter phase parallelized
// over source rows. Each output slot is written exactly once (the
// per-column cursor is claimed atomically via pre-partitioned counts),
// so no locking of the value array is needed.
func TransposeParallel[V any](m *CSR[V], workers int) *CSR[V] {
	w := parallel.Workers(workers, m.rows)
	if w <= 1 || m.NNZ() == 0 {
		return m.Transpose()
	}
	// Per-worker column counts, then prefix-sum to give every worker a
	// private cursor range per column — a textbook two-pass parallel
	// counting sort that keeps source-row order within each column.
	chunk := (m.rows + w - 1) / w
	counts := make([][]int, w)
	parallel.For(m.rows, w, func(lo, hi int) {
		c := make([]int, m.cols)
		for p := m.rowPtr[lo]; p < m.rowPtr[hi]; p++ {
			c[m.colIdx[p]]++
		}
		counts[lo/chunk] = c
	})
	rowPtr := make([]int, m.cols+1)
	for j := 0; j < m.cols; j++ {
		total := 0
		for b := 0; b < w; b++ {
			if counts[b] == nil {
				continue
			}
			t := counts[b][j]
			counts[b][j] = total // becomes the block's cursor base
			total += t
		}
		rowPtr[j+1] = total
	}
	for j := 0; j < m.cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, m.NNZ())
	val := make([]V, m.NNZ())
	parallel.For(m.rows, w, func(lo, hi int) {
		cursor := counts[lo/chunk]
		for i := lo; i < hi; i++ {
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				j := m.colIdx[p]
				q := rowPtr[j] + cursor[j]
				cursor[j]++
				colIdx[q] = i
				val[q] = m.val[p]
			}
		}
	})
	return &CSR[V]{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}
