package sparse

import (
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
)

// MulParallel is the flop-balanced parallel two-phase SpGEMM engine.
//
// Scheduling: the work of output row i is its flop count
// Σ_{k∈A(i,:)} nnz(B(k,:)) — computable in one O(nnz(A)) sweep before
// any multiplication happens. Under R-MAT-style skew a handful of hub
// rows carry most of the flops, so splitting ROWS evenly (the previous
// scheme) leaves all but one worker idle; instead the per-row flop
// prefix sum is cut into equal-WORK spans by binary search
// (parallel.BalancedSpans) and each span runs on its own goroutine.
// The same spans drive both phases: the numeric pass costs the same
// flops the symbolic pass counted.
//
// After the parallel symbolic phase the per-row counts are prefix-summed
// into rowPtr and the output arrays are allocated exactly once; numeric
// workers then write their rows directly into the disjoint
// [rowPtr[i], rowPtr[i+1]) ranges — no stitch/copy step. Scratch
// accumulators come from sync.Pool (one stamp box + one value box per
// span), so steady-state repeated multiplications allocate only their
// exact output. Because output rows are independent and each row's fold
// order is unchanged, the result is bit-identical to
// MulTwoPhase/MulGustavson for any ⊕, including non-commutative ones.
//
// workers < 1 selects GOMAXPROCS. grain < 1 lets the scheduler pick
// (one span per worker); an explicit grain caps spans at ⌈rows/grain⌉,
// which only matters for tests that want many small spans.
func MulParallel[V any](a, b *CSR[V], ops semiring.Ops[V], workers, grain int) (*CSR[V], error) {
	return MulParallelOpt(a, b, ops, workers, grain, -1)
}

// DefaultParallelFlopFloor is the symbolic flop count below which
// MulParallelOpt runs the serial kernel instead: goroutine spawn and
// span scheduling cost a few microseconds, so a product whose whole
// flop budget is comparable finishes faster on one core. The BENCH
// ablation arm (BenchmarkParallelFlopFloor) calibrates this; it errs
// low so medium products still parallelize.
const DefaultParallelFlopFloor = 1 << 17

// MulParallelOpt is MulParallel with an explicit serial-fallback
// threshold: when the symbolic flop total is below flopFloor the serial
// two-phase kernel runs instead (identical result, no goroutines).
// flopFloor 0 selects DefaultParallelFlopFloor; negative disables the
// fallback (always parallel when workers allow).
func MulParallelOpt[V any](a, b *CSR[V], ops semiring.Ops[V], workers, grain int, flopFloor int64) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	w := parallel.Workers(workers, a.rows)
	if w <= 1 || a.rows == 0 {
		return MulTwoPhase(a, b, ops)
	}
	if flopFloor == 0 {
		flopFloor = DefaultParallelFlopFloor
	}

	// Per-row flop prefix: the load model for both phases, and the
	// serial-fallback signal. O(nnz(A)) — negligible next to the
	// multiplication it schedules.
	pb := getInt64(a.rows + 1)
	prefix := pb.xs
	prefix[0] = 0
	for i := 0; i < a.rows; i++ {
		f := int64(0)
		for _, k := range a.colIdx[a.rowPtr[i]:a.rowPtr[i+1]] {
			f += int64(b.rowPtr[k+1] - b.rowPtr[k])
		}
		prefix[i+1] = prefix[i] + f
	}
	if flopFloor > 0 && prefix[a.rows] < flopFloor {
		putInt64(pb)
		return MulTwoPhase(a, b, ops)
	}

	spans := w
	if grain >= 1 {
		if s := (a.rows + grain - 1) / grain; s > spans {
			spans = s
		}
		if lim := 16 * w; spans > lim {
			spans = lim
		}
	}
	bounds := parallel.BalancedSpans(prefix, spans)

	// Symbolic phase: exact per-row output counts, one pooled stamp box
	// per span, rows written into disjoint rowPtr slots.
	rowPtr := make([]int, a.rows+1)
	symBoxes := make([]*stampBox, spans)
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		sb := getStampBox(b.cols)
		sym := pooledSym(sb)
		for i := lo; i < hi; i++ {
			rowPtr[i+1] = symbolicRow(a, b, i, sym)
		}
		sb.current = sym.current
		symBoxes[s] = sb
	})
	putInt64(pb)
	for i := 0; i < a.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}

	// Exact single allocation of the output storage.
	nnz := rowPtr[a.rows]
	colIdx := make([]int, nnz)
	val := make([]V, nnz)
	rowLen := make([]int, a.rows)

	// Numeric phase: workers fold values and write in place into their
	// rows' preallocated ranges, continuing the span's stamp box (the
	// symbolic pass advanced its counter, so stale stamps stay stale).
	rowFn := numericRowFor(ops)
	pool := accPoolFor[V]()
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		sb := symBoxes[s]
		symBoxes[s] = nil
		vb := getAccBox[V](pool, b.cols)
		acc := pooledSPA(sb, vb)
		for i := lo; i < hi; i++ {
			rowLen[i] = rowFn(a, b, ops, i, acc, colIdx[rowPtr[i]:rowPtr[i+1]], val[rowPtr[i]:rowPtr[i+1]])
		}
		releaseKernelScratch(pool, sb, acc, vb)
	})
	return finalizeTwoPhase(a.rows, b.cols, rowPtr, rowLen, colIdx, val), nil
}

// TransposeParallel is Transpose with the scatter phase parallelized
// over source rows, split into nnz-balanced spans (the per-row scatter
// cost is its entry count, so hub-heavy rows get their own span instead
// of serializing one worker). Each output slot is written exactly once
// (the per-column cursor is claimed via pre-partitioned counts), so no
// locking of the value array is needed.
func TransposeParallel[V any](m *CSR[V], workers int) *CSR[V] {
	w := parallel.Workers(workers, m.rows)
	if w <= 1 || m.NNZ() == 0 {
		return m.Transpose()
	}
	pb := getInt64(m.rows + 1)
	prefix := pb.xs
	for i := 0; i <= m.rows; i++ {
		prefix[i] = int64(m.rowPtr[i])
	}
	bounds := parallel.BalancedSpans(prefix, w)
	putInt64(pb)
	// Per-span column counts, then prefix-sum to give every span a
	// private cursor range per column — a two-pass parallel counting
	// sort that keeps source-row order within each column.
	counts := make([][]int, w)
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		c := make([]int, m.cols)
		for p := m.rowPtr[lo]; p < m.rowPtr[hi]; p++ {
			c[m.colIdx[p]]++
		}
		counts[s] = c
	})
	rowPtr := make([]int, m.cols+1)
	for j := 0; j < m.cols; j++ {
		total := 0
		for b := 0; b < w; b++ {
			if counts[b] == nil {
				continue
			}
			t := counts[b][j]
			counts[b][j] = total // becomes the span's cursor base
			total += t
		}
		rowPtr[j+1] = total
	}
	for j := 0; j < m.cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, m.NNZ())
	val := make([]V, m.NNZ())
	parallel.ForSpans(bounds, func(s, lo, hi int) {
		cursor := counts[s]
		for i := lo; i < hi; i++ {
			for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
				j := m.colIdx[p]
				q := rowPtr[j] + cursor[j]
				cursor[j]++
				colIdx[q] = i
				val[q] = m.val[p]
			}
		}
	})
	return &CSR[V]{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}
