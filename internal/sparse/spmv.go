package sparse

// Sparse-vector × matrix kernels: the inner step of the GraphBLAS-style
// algorithm iterations (frontier' = frontier ⊕.⊗ A) run on integer ids
// over CSR storage, with no key-set or map work per step.
//
// Both kernels compute the same product y = x ⊕.⊗ m and produce
// identical results: per output j the contributions x(u) ⊗ m(u,j) fold
// in ascending u order — the Definition I.3 ordered ⊕ over the shared
// dimension, matching every SpGEMM variant in this package — and the
// fold seeds from the first contribution (FoldAdd semantics), not from
// an injected Zero. They differ only in traversal:
//
//   - SpMSpVPush scatters each frontier row outward (gather-free); cost
//     is proportional to the edges leaving the frontier, the right shape
//     for sparse frontiers.
//   - SpMVPull walks the TRANSPOSED matrix row by row, gathering each
//     output's in-contributions sequentially; cost is one scan of the
//     transpose, the right shape once the frontier is dense.
//
// Callers own the dense accumulator (acc), the per-step occupancy mask
// (hit), and the touched-id list, so steady-state iteration allocates
// nothing: clear hit via touched after merging, reuse the slices.

// SpMSpVPush accumulates y ⊕= x(u) ⊗ m(u,·) for every frontier entry
// (xIDs[i], xVals[i]), with xIDs strictly ascending row ids of m. acc
// and hit must have length m.Cols() with hit false everywhere touched is
// empty; ids newly occupied are appended to touched (unsorted) and
// returned.
func SpMSpVPush[V any](m *CSR[V], xIDs []int, xVals []V, add, mul func(V, V) V, acc []V, hit []bool, touched []int) []int {
	for i, u := range xIDs {
		xv := xVals[i]
		cols, vals := m.Row(u)
		for p, j := range cols {
			pv := mul(xv, vals[p])
			if !hit[j] {
				hit[j] = true
				acc[j] = pv
				touched = append(touched, j)
			} else {
				acc[j] = add(acc[j], pv)
			}
		}
	}
	return touched
}

// SpMVPull accumulates the same product from the transpose t = mᵀ: for
// each output j (a row of t), the stored (u, w) pairs are gathered in
// ascending u and folded where xMask[u] is set, reading values from the
// dense x. acc/hit/touched follow the SpMSpVPush contract (touched comes
// back ascending).
func SpMVPull[V any](t *CSR[V], x []V, xMask []bool, add, mul func(V, V) V, acc []V, hit []bool, touched []int) []int {
	for j := 0; j < t.rows; j++ {
		cols, vals := t.Row(j)
		for p, u := range cols {
			if !xMask[u] {
				continue
			}
			pv := mul(x[u], vals[p])
			if !hit[j] {
				hit[j] = true
				acc[j] = pv
				touched = append(touched, j)
			} else {
				acc[j] = add(acc[j], pv)
			}
		}
	}
	return touched
}
