package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func decodeF64(b []byte) (float64, int, error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("short float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), 8, nil
}

func testMatrix(t *testing.T) *CSR[float64] {
	t.Helper()
	m, err := NewCSR(4, 5,
		[]int{0, 2, 2, 5, 6},
		[]int{0, 3, 1, 2, 4, 0},
		[]float64{1.5, -2, 3, 0.25, 7, -0.5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCSRBinaryRoundTrip(t *testing.T) {
	for _, m := range []*CSR[float64]{testMatrix(t), Empty[float64](0, 0), Empty[float64](3, 7)} {
		buf := m.AppendBinary([]byte("hdr"), appendF64)
		got, rest, err := DecodeCSR(buf[3:], decodeF64)
		if err != nil {
			t.Fatalf("DecodeCSR: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !Equal(m, got, func(a, b float64) bool { return a == b }) {
			t.Fatalf("round trip changed the matrix (%d×%d nnz %d)", m.Rows(), m.Cols(), m.NNZ())
		}
	}
}

func TestDecodeCSRRejectsDamage(t *testing.T) {
	clean := testMatrix(t).AppendBinary(nil, appendF64)
	cases := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-index", func(b []byte) []byte { return b[:30] }},
		{"truncated-values", func(b []byte) []byte { return b[:len(b)-3] }},
		{"rowptr-over-nnz", func(b []byte) []byte { b[24] = 0xff; return b }},
		{"rowptr-nonmonotone", func(b []byte) []byte {
			// rowPtr[1]=2 → 3 while rowPtr[2] stays 2: monotonicity breaks.
			b[24+8] = 3
			return b
		}},
		{"colidx-out-of-range", func(b []byte) []byte { b[24+5*8] = 0xee; return b }},
		{"colidx-not-increasing", func(b []byte) []byte {
			// Row 2's columns are 1,2,4 at colIdx[2..4]; make the pair equal.
			b[24+5*8+3*8] = 1
			return b
		}},
		{"dims-absurd", func(b []byte) []byte { b[7] = 0xff; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mut(append([]byte(nil), clean...))
			if _, _, err := DecodeCSR(buf, decodeF64); err == nil {
				t.Fatal("damaged CSR dump decoded without error")
			}
		})
	}
}
