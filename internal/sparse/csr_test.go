package sparse

import (
	"testing"

	"adjarray/internal/value"
)

// small builds the running-example matrix
//
//	[ 1 0 2 ]
//	[ 0 0 0 ]
//	[ 3 4 0 ]
func small(t *testing.T) *CSR[float64] {
	t.Helper()
	m, err := NewCSR(3, 3, []int{0, 2, 2, 4}, []int{0, 2, 0, 1}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewCSRValidation(t *testing.T) {
	cases := []struct {
		name         string
		rows, cols   int
		rowPtr, cidx []int
		vals         []float64
	}{
		{"negative dims", -1, 3, []int{0}, nil, nil},
		{"short rowPtr", 2, 2, []int{0, 0}, nil, nil},
		{"rowPtr not starting at 0", 1, 1, []int{1, 1}, nil, nil},
		{"nnz mismatch", 1, 2, []int{0, 2}, []int{0}, []float64{1}},
		{"val mismatch", 1, 2, []int{0, 1}, []int{0}, []float64{1, 2}},
		{"non-monotone rowPtr", 2, 2, []int{0, 2, 1}, []int{0, 1}, []float64{1, 2}},
		{"col out of range", 1, 2, []int{0, 1}, []int{2}, []float64{1}},
		{"negative col", 1, 2, []int{0, 1}, []int{-1}, []float64{1}},
		{"duplicate col", 1, 3, []int{0, 2}, []int{1, 1}, []float64{1, 2}},
		{"decreasing cols", 1, 3, []int{0, 2}, []int{2, 0}, []float64{1, 2}},
	}
	for _, c := range cases {
		if _, err := NewCSR(c.rows, c.cols, c.rowPtr, c.cidx, c.vals); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewCSR(3, 3, []int{0, 2, 2, 4}, []int{0, 2, 0, 1}, []float64{1, 2, 3, 4}); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	m := small(t)
	if m.Rows() != 3 || m.Cols() != 3 || m.NNZ() != 4 {
		t.Fatalf("dims/nnz: %d×%d nnz=%d", m.Rows(), m.Cols(), m.NNZ())
	}
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 || m.RowNNZ(2) != 2 {
		t.Error("RowNNZ wrong")
	}
	if v, ok := m.At(0, 2); !ok || v != 2 {
		t.Errorf("At(0,2) = %v,%v", v, ok)
	}
	if _, ok := m.At(0, 1); ok {
		t.Error("At(0,1) should be absent")
	}
	if _, ok := m.At(-1, 0); ok {
		t.Error("out-of-range At should be absent")
	}
	if _, ok := m.At(0, 99); ok {
		t.Error("out-of-range At should be absent")
	}
	cols, vals := m.Row(2)
	if len(cols) != 2 || cols[0] != 0 || vals[1] != 4 {
		t.Errorf("Row(2) = %v %v", cols, vals)
	}
}

func TestEmpty(t *testing.T) {
	m := Empty[float64](2, 5)
	if m.Rows() != 2 || m.Cols() != 5 || m.NNZ() != 0 {
		t.Error("Empty wrong shape")
	}
	tr := m.Transpose()
	if tr.Rows() != 5 || tr.Cols() != 2 || tr.NNZ() != 0 {
		t.Error("transpose of empty wrong")
	}
}

func TestIterateOrder(t *testing.T) {
	m := small(t)
	var got [][3]float64
	m.Iterate(func(i, j int, v float64) {
		got = append(got, [3]float64{float64(i), float64(j), v})
	})
	want := [][3]float64{{0, 0, 1}, {0, 2, 2}, {2, 0, 3}, {2, 1, 4}}
	if len(got) != len(want) {
		t.Fatalf("Iterate visited %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := small(t)
	c := m.Clone()
	c.val[0] = 99
	if v, _ := m.At(0, 0); v != 1 {
		t.Error("Clone shares storage")
	}
	if !Equal(m, small(t), value.Float64Equal) {
		t.Error("original mutated")
	}
}

func TestMapPreservesPattern(t *testing.T) {
	m := small(t)
	dbl := m.Map(func(i, j int, v float64) float64 { return 2 * v })
	if !SamePattern(m, dbl) {
		t.Error("Map changed the pattern")
	}
	if v, _ := dbl.At(2, 1); v != 8 {
		t.Errorf("Map value = %v", v)
	}
}

func TestPrune(t *testing.T) {
	m := small(t).Map(func(i, j int, v float64) float64 {
		if v == 2 {
			return 0
		}
		return v
	})
	p := m.Prune(func(v float64) bool { return v == 0 })
	if p.NNZ() != 3 {
		t.Errorf("Prune kept %d entries", p.NNZ())
	}
	if _, ok := p.At(0, 2); ok {
		t.Error("pruned entry still present")
	}
	if v, ok := p.At(2, 1); !ok || v != 4 {
		t.Error("surviving entry lost")
	}
}

func TestTranspose(t *testing.T) {
	m := small(t)
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 3 {
		t.Fatal("transpose shape")
	}
	m.Iterate(func(i, j int, v float64) {
		if got, ok := tr.At(j, i); !ok || got != v {
			t.Errorf("Tᵀ(%d,%d) = %v,%v want %v", j, i, got, ok, v)
		}
	})
	if tr.NNZ() != m.NNZ() {
		t.Error("transpose changed nnz")
	}
	back := tr.Transpose()
	if !Equal(m, back, value.Float64Equal) {
		t.Error("double transpose is not identity")
	}
}

func TestExtractRows(t *testing.T) {
	m := small(t)
	sub, err := m.ExtractRows([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows() != 2 || sub.Cols() != 3 || sub.NNZ() != 4 {
		t.Fatal("ExtractRows shape")
	}
	if v, _ := sub.At(0, 1); v != 4 {
		t.Errorf("row order not honored: %v", v)
	}
	if v, _ := sub.At(1, 0); v != 1 {
		t.Errorf("second row wrong: %v", v)
	}
	if _, err := m.ExtractRows([]int{5}); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestExtractCols(t *testing.T) {
	m := small(t)
	sub, err := m.ExtractCols([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows() != 3 || sub.Cols() != 2 {
		t.Fatal("ExtractCols shape")
	}
	if v, ok := sub.At(0, 1); !ok || v != 2 {
		t.Errorf("column remap wrong: %v %v", v, ok)
	}
	if _, ok := sub.At(2, 1); ok {
		t.Error("dropped column leaked through")
	}
	if _, err := m.ExtractCols([]int{2, 0}); err == nil {
		t.Error("unsorted column indices accepted")
	}
	if _, err := m.ExtractCols([]int{9}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestEqualAndSamePattern(t *testing.T) {
	m := small(t)
	if !Equal(m, m.Clone(), value.Float64Equal) {
		t.Error("clone not Equal")
	}
	changed := m.Map(func(i, j int, v float64) float64 { return v + 1 })
	if Equal(m, changed, value.Float64Equal) {
		t.Error("different values compared Equal")
	}
	if !SamePattern(m, changed) {
		t.Error("Map should preserve pattern")
	}
	if SamePattern(m, Empty[float64](3, 3)) {
		t.Error("different patterns compared same")
	}
	if Equal(m, Empty[float64](3, 3), value.Float64Equal) {
		t.Error("empty compared Equal")
	}
	if Equal(m, Empty[float64](2, 3), value.Float64Equal) {
		t.Error("different shapes compared Equal")
	}
}

func TestToDense(t *testing.T) {
	m := small(t)
	d := m.ToDense(0)
	want := [][]float64{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("dense[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
	// Custom zero element (tropical −Inf).
	d2 := m.ToDense(value.NegInf)
	if d2[1][1] != value.NegInf {
		t.Error("custom zero not used")
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	m := small(t)
	back, err := FromDense(m.ToDense(0), 3, func(v float64) bool { return v == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, back, value.Float64Equal) {
		t.Error("dense round trip lost information")
	}
	if _, err := FromDense([][]float64{{1}, {1, 2}}, 1, func(v float64) bool { return v == 0 }); err == nil {
		t.Error("ragged dense accepted")
	}
}
