package sparse

// Kernel-level ablation benchmarks for the two-phase engine design
// choices. The repo-root bench_test.go measures the same kernels on
// graph-shaped workloads; these operate directly on random CSRs so the
// effects are isolated from incidence construction.

import (
	"fmt"
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
)

// benchMatrices builds an (n×n)·(n×n) multiplication workload with the
// given density.
func benchMatrices(n int, density float64) (*CSR[float64], *CSR[float64]) {
	r := rand.New(rand.NewSource(99))
	return randomCSR(r, n, n, density), randomCSR(r, n, n, density)
}

// mulLegacy delegates to the frozen seed kernel (see legacy.go).
func mulLegacy(a, b *CSR[float64], ops semiring.Ops[float64]) *CSR[float64] {
	out, err := MulLegacy(a, b, ops)
	if err != nil {
		panic(err)
	}
	return out
}

// incidenceWorkload builds the adjacency-construction multiplication
// shape Eoutᵀ·Ein without importing the dataset package (which would
// cycle): n vertices, n·ef edges with power-law-biased endpoints, Eoutᵀ
// as the n×(n·ef) left operand and Ein as the (n·ef)×n right operand
// whose rows hold exactly one entry each.
func incidenceWorkload(n, ef int) (*CSR[float64], *CSR[float64]) {
	r := rand.New(rand.NewSource(37))
	edges := n * ef
	pick := func() int { // quadratic bias toward low vertex ids
		f := r.Float64()
		return int(f * f * float64(n))
	}
	cooA := NewCOO[float64](n, edges)
	cooB := NewCOO[float64](edges, n)
	for e := 0; e < edges; e++ {
		cooA.MustAppend(pick(), e, 1)
		cooB.MustAppend(e, pick(), 1)
	}
	return cooA.ToCSR(nil), cooB.ToCSR(nil)
}

// Ablation — symbolic/numeric two-phase with exact preallocation vs the
// append-grown kernels: "legacy" is the seed kernel (append + sort
// always + closure ops), "append" is MulGustavson after this PR (append
// + adaptive emission), "twophase" is the production engine. legacy →
// twophase is the pre-change → post-change comparison, measured in one
// process so machine noise cancels. The "incidence" workloads are the
// adjacency-construction shape of the root BenchmarkConstructionScaling.
func BenchmarkSymbolicVsAppend(b *testing.B) {
	type workload struct {
		name string
		a, c *CSR[float64]
	}
	var ws []workload
	for _, n := range []int{256, 1024} {
		a, c := benchMatrices(n, 16.0/float64(n)) // ~16 nnz per row
		ws = append(ws, workload{fmt.Sprintf("n%d", n), a, c})
	}
	for _, scale := range []uint{10, 12} {
		a, c := incidenceWorkload(1<<scale, 8)
		ws = append(ws, workload{fmt.Sprintf("incidence-s%d", scale), a, c})
	}
	ops := semiring.PlusTimes()
	for _, w := range ws {
		b.Run(w.name+"/legacy", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mulLegacy(w.a, w.c, ops)
			}
		})
		b.Run(w.name+"/append", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MulGustavson(w.a, w.c, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/twophase", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MulTwoPhase(w.a, w.c, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation — adaptive dense flag-scan emission vs always sorting the
// touched list. adaptiveSpanFactor = 0 forces the sort path for every
// row, which is the pre-adaptive behaviour.
func BenchmarkAdaptiveVsSort(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		n       int
		density float64
	}{
		{"dense-rows", 512, 0.08},      // wide overlap: scan path wins
		{"hypersparse", 4096, 0.00049}, // ~2 nnz/row: sort path retained
	} {
		a, c := benchMatrices(cfg.n, cfg.density)
		ops := semiring.PlusTimes()
		b.Run(cfg.name+"/sort-always", func(b *testing.B) {
			old := adaptiveSpanFactor
			adaptiveSpanFactor = 0
			defer func() { adaptiveSpanFactor = old }()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MulTwoPhase(a, c, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/adaptive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MulTwoPhase(a, c, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelFlopFloor is the serial-fallback ablation: the same
// small product run with the fallback disabled (always-parallel, the
// pre-threshold behaviour) against the default floor, across sizes that
// straddle DefaultParallelFlopFloor. On any machine the sub-floor sizes
// should show floor≈serial and always-parallel paying goroutine
// overhead; that gap is what the threshold eliminates.
func BenchmarkParallelFlopFloor(b *testing.B) {
	ops := semiring.PlusTimes()
	for _, n := range []int{128, 512, 2048} {
		a, c := incidenceWorkload(n, 8)
		for _, cfg := range []struct {
			name  string
			floor int64
		}{{"always-parallel", -1}, {"default-floor", 0}, {"serial", 1 << 62}} {
			b.Run(fmt.Sprintf("n%d/%s", n, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := MulParallelOpt(a, c, ops, 4, 0, cfg.floor); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
