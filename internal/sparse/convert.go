package sparse

// Convert maps stored values through f, producing a matrix with the
// same pattern over a new value type. The structural arrays (rowPtr,
// colIdx) are shared with the source, which is safe because CSR
// matrices are immutable by convention.
func Convert[V, W any](m *CSR[V], f func(i, j int, v V) W) *CSR[W] {
	val := make([]W, len(m.val))
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			val[p] = f(i, m.colIdx[p], m.val[p])
		}
	}
	return &CSR[W]{rows: m.rows, cols: m.cols, rowPtr: m.rowPtr, colIdx: m.colIdx, val: val}
}

// ReduceRows folds each row's stored values with ⊕ in ascending column
// order, returning one value per row and a mask of rows that had at
// least one entry.
func ReduceRows[V any](m *CSR[V], add func(V, V) V) (vals []V, nonEmpty []bool) {
	vals = make([]V, m.rows)
	nonEmpty = make([]bool, m.rows)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if !nonEmpty[i] {
				vals[i] = m.val[p]
				nonEmpty[i] = true
			} else {
				vals[i] = add(vals[i], m.val[p])
			}
		}
	}
	return vals, nonEmpty
}
