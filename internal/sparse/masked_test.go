package sparse

import (
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func TestMulMaskedEqualsFilteredProduct(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(r, 20, 25, 0.2)
		b := randomCSR(r, 25, 15, 0.2)
		mask := randomCSR(r, 20, 15, 0.3)
		ops := semiring.PlusTimes()

		got, err := MulMasked(a, b, mask, ops)
		if err != nil {
			t.Fatal(err)
		}
		full, err := MulGustavson(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: full product filtered to the mask pattern.
		want := full.Prune(func(float64) bool { return false }) // clone via no-op prune
		keep := make(map[[2]int]bool)
		mask.Iterate(func(i, j int, _ float64) { keep[[2]int{i, j}] = true })
		filtered := newRowAppender[float64](full.Rows(), full.Cols())
		for i := 0; i < full.Rows(); i++ {
			cols, vals := full.Row(i)
			for p, j := range cols {
				if keep[[2]int{i, j}] {
					filtered.append(j, vals[p])
				}
			}
			filtered.endRow()
		}
		_ = want
		if !Equal(filtered.finish(), got, value.Float64Equal) {
			t.Fatalf("trial %d: masked product != filtered full product", trial)
		}
	}
}

func TestMulMaskedDimChecks(t *testing.T) {
	a := Empty[float64](2, 3)
	b := Empty[float64](3, 4)
	badMask := Empty[float64](2, 5)
	if _, err := MulMasked(a, b, badMask, semiring.PlusTimes()); err == nil {
		t.Error("mismatched mask accepted")
	}
	badB := Empty[float64](9, 4)
	if _, err := MulMasked(a, badB, Empty[float64](2, 4), semiring.PlusTimes()); err == nil {
		t.Error("mismatched inner dims accepted")
	}
}

func TestMulMaskedEmptyMaskGivesEmptyResult(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomCSR(r, 10, 10, 0.5)
	got, err := MulMasked(a, a, Empty[float64](10, 10), semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Errorf("empty mask produced %d entries", got.NNZ())
	}
}

func TestMulMaskedFoldOrderNonCommutative(t *testing.T) {
	// Same contract as the unmasked kernels: ascending-k fold.
	r := rand.New(rand.NewSource(6))
	a := randomCSR(r, 15, 20, 0.3)
	b := randomCSR(r, 20, 15, 0.3)
	mask := randomCSR(r, 15, 15, 0.5)
	ops := semiring.LeftmostNonzero()
	got, err := MulMasked(a, b, mask, ops)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MulMerge(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	got.Iterate(func(i, j int, v float64) {
		if fv, ok := full.At(i, j); !ok || fv != v {
			t.Errorf("masked (%d,%d)=%v differs from full %v", i, j, v, fv)
		}
	})
}

func TestSortInts(t *testing.T) {
	xs := []int{5, 1, 4, 1, 3}
	sortInts(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
	sortInts(nil) // must not panic
}
