package sparse

import (
	"adjarray/internal/semiring"
)

// MulMasked computes C = (A ⊕.⊗ B) ∘ pattern(M): the product restricted
// to positions where the mask M stores an entry — GraphBLAS's masked
// SpGEMM. Contributions to unmasked positions are never accumulated
// (not merely filtered afterwards), which for highly selective masks
// (e.g. triangle counting's C⟨A⟩ = A·A) avoids materializing the much
// denser full product.
//
// The per-cell ⊕ fold runs in ascending inner-key order, like every
// other kernel in this package. Dimensions of A·B and M must agree.
func MulMasked[V, M any](a, b *CSR[V], mask *CSR[M], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	if mask.rows != a.rows || mask.cols != b.cols {
		return nil, &ShapeError{ARows: a.rows, ACols: b.cols, BRows: mask.rows, BCols: mask.cols}
	}
	out := newRowAppender[V](a.rows, b.cols)
	s := newSPA[V](b.cols)
	allowed := make([]int, b.cols) // stamp: column j allowed in this row
	row := 0
	for i := 0; i < a.rows; i++ {
		row++
		mCols, _ := mask.Row(i)
		for _, j := range mCols {
			allowed[j] = row
		}
		s.reset()
		aCols, aVals := a.Row(i)
		for p, k := range aCols {
			av := aVals[p]
			bCols, bVals := b.Row(k)
			for q, j := range bCols {
				if allowed[j] != row {
					continue
				}
				prod := ops.Mul(av, bVals[q])
				if s.stamp[j] != s.current {
					s.stamp[j] = s.current
					s.acc[j] = prod
					s.touched = append(s.touched, j)
				} else {
					s.acc[j] = ops.Add(s.acc[j], prod)
				}
			}
		}
		// touched ⊆ mask columns, which arrive sorted; but insertion
		// order follows B's rows, so sort as usual.
		sortInts(s.touched)
		for _, j := range s.touched {
			if !ops.IsZero(s.acc[j]) {
				out.append(j, s.acc[j])
			}
		}
		out.endRow()
	}
	return out.finish(), nil
}

// sortInts is a small insertion sort: masked rows are typically short,
// where it beats sort.Ints' interface overhead.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
