package sparse

import (
	"fmt"

	"adjarray/internal/semiring"
)

// Element-wise operations: the ⊕- and ⊗-based merges of two matrices
// with the same shape, D4M's A+B and A.*B. EWiseAdd takes the pattern
// union (absent entries act as ⊕-identities); EWiseMul takes the pattern
// intersection (a single absent operand annihilates, which is sound
// exactly when the algebra satisfies the Theorem II.1 annihilator
// condition — the same implicit assumption SpGEMM makes).

// EWiseAdd returns c(i,j) = a(i,j) ⊕ b(i,j) over the union pattern.
// Where only one operand stores an entry, that value is kept unchanged
// (0 ⊕ v = v). Entries folding to zero are pruned (relevant for
// non-zero-sum-free algebras).
func EWiseAdd[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	out := newRowAppender[V](a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		p, q := 0, 0
		for p < len(ac) || q < len(bc) {
			switch {
			case q >= len(bc) || (p < len(ac) && ac[p] < bc[q]):
				out.append(ac[p], av[p])
				p++
			case p >= len(ac) || bc[q] < ac[p]:
				out.append(bc[q], bv[q])
				q++
			default:
				s := ops.Add(av[p], bv[q])
				if !ops.IsZero(s) {
					out.append(ac[p], s)
				}
				p++
				q++
			}
		}
		out.endRow()
	}
	return out.finish(), nil
}

// EWiseMul returns c(i,j) = a(i,j) ⊗ b(i,j) over the intersection
// pattern, pruning products equal to zero (relevant for algebras with
// zero divisors).
func EWiseMul[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	out := newRowAppender[V](a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		p, q := 0, 0
		for p < len(ac) && q < len(bc) {
			switch {
			case ac[p] < bc[q]:
				p++
			case bc[q] < ac[p]:
				q++
			default:
				prod := ops.Mul(av[p], bv[q])
				if !ops.IsZero(prod) {
					out.append(ac[p], prod)
				}
				p++
				q++
			}
		}
		out.endRow()
	}
	return out.finish(), nil
}

func sameShape[V any](a, b *CSR[V]) error {
	if a.rows != b.rows || a.cols != b.cols {
		return &ShapeError{ARows: a.rows, ACols: a.cols, BRows: b.rows, BCols: b.cols}
	}
	return nil
}

// ShapeError reports an element-wise shape mismatch.
type ShapeError struct {
	ARows, ACols, BRows, BCols int
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("sparse: shape mismatch %d×%d vs %d×%d", e.ARows, e.ACols, e.BRows, e.BCols)
}
