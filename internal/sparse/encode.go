package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
)

// CSR serialization — the flat layout checkpoints use:
//
//	uint64 LE    rows
//	uint64 LE    cols
//	uint64 LE    nnz
//	[rows+1]u64  rowPtr
//	[nnz]u64     colIdx
//	[nnz]byte*   values, each encoded by the caller's appendVal
//
// Indices are fixed-width so the layout stays mmap-friendly (every
// array is locatable from the header without scanning); values go
// through a codec because V is a type parameter.

// AppendBinary appends the matrix's serialized form to dst. appendVal
// encodes one value (e.g. 8 bytes of IEEE-754 for float64).
func (m *CSR[V]) AppendBinary(dst []byte, appendVal func(dst []byte, v V) []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.rows))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.cols))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(m.colIdx)))
	for _, p := range m.rowPtr {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p))
	}
	for _, j := range m.colIdx {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(j))
	}
	for _, v := range m.val {
		dst = appendVal(dst, v)
	}
	return dst
}

// DecodeCSR decodes a matrix serialized by AppendBinary from the front
// of buf, returning the remaining bytes. decodeVal decodes one value
// and returns how many bytes it consumed. The result passes through
// NewCSR, so every structural invariant (monotone rowPtr, in-bounds
// strictly-increasing columns) is re-validated — a bit flip in the
// index arrays is caught here even if an outer checksum was bypassed.
func DecodeCSR[V any](buf []byte, decodeVal func(b []byte) (V, int, error)) (*CSR[V], []byte, error) {
	if len(buf) < 24 {
		return nil, nil, fmt.Errorf("sparse: CSR header truncated")
	}
	rows := binary.LittleEndian.Uint64(buf)
	cols := binary.LittleEndian.Uint64(buf[8:])
	nnz := binary.LittleEndian.Uint64(buf[16:])
	buf = buf[24:]
	if rows > math.MaxInt32 || cols > math.MaxInt32 || nnz > math.MaxUint32 {
		return nil, nil, fmt.Errorf("sparse: CSR dimensions %d×%d nnz %d out of range", rows, cols, nnz)
	}
	need := (rows + 1 + nnz) * 8
	if uint64(len(buf)) < need {
		return nil, nil, fmt.Errorf("sparse: CSR body truncated (need %d index bytes, have %d)", need, len(buf))
	}
	rowPtr := make([]int, rows+1)
	for i := range rowPtr {
		p := binary.LittleEndian.Uint64(buf[i*8:])
		if p > nnz {
			return nil, nil, fmt.Errorf("sparse: rowPtr[%d]=%d exceeds nnz %d", i, p, nnz)
		}
		rowPtr[i] = int(p)
	}
	buf = buf[(rows+1)*8:]
	colIdx := make([]int, nnz)
	for i := range colIdx {
		j := binary.LittleEndian.Uint64(buf[i*8:])
		if j >= cols {
			return nil, nil, fmt.Errorf("sparse: colIdx[%d]=%d exceeds cols %d", i, j, cols)
		}
		colIdx[i] = int(j)
	}
	buf = buf[nnz*8:]
	val := make([]V, nnz)
	for i := range val {
		v, n, err := decodeVal(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("sparse: CSR value %d: %w", i, err)
		}
		val[i] = v
		buf = buf[n:]
	}
	m, err := NewCSR(int(rows), int(cols), rowPtr, colIdx, val)
	if err != nil {
		return nil, nil, err
	}
	return m, buf, nil
}
