package sparse

import (
	"fmt"
	"math/bits"
	"sort"

	"adjarray/internal/semiring"
)

// SpGEMM — sparse matrix × sparse matrix under an operator pair ⊕.⊗.
//
// Contract shared by every variant: the contributions to output entry
// C(i,j) = ⊕_k A(i,k) ⊗ B(k,j) are folded strictly in ascending k order,
// matching the ordered reduction of Definition I.3, so results agree
// across variants even for non-associative / non-commutative ⊕.
//
// Sparse multiplication inherently skips k where A(i,k) or B(k,j) is
// missing; this silently *assumes* the annihilator and ⊕-identity laws.
// MulDense below implements the literal Definition I.3 over every
// k (including zeros) and is the ground truth the theorem machinery
// compares against: Theorem II.1 is precisely the condition under which
// the sparse shortcut is sound for adjacency construction.

// Mul multiplies a (m×k) by b (k×n) with the default kernel — the
// two-phase symbolic/numeric engine — and prunes entries that fold to
// the algebra's zero.
func Mul[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	return MulTwoPhase(a, b, ops)
}

func checkDims[V any](a, b *CSR[V]) error {
	if a.cols != b.rows {
		return fmt.Errorf("sparse: dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols)
	}
	return nil
}

// MulGustavson is row-by-row SpGEMM with a dense scratch accumulator
// (SPA): O(rows·flops) time, O(cols) scratch. The classical kernel of
// Gustavson (1978) and the CSR workhorse in GraphBLAS implementations.
// Output storage is append-grown; MulTwoPhase is the exact-preallocation
// refinement and the production default.
func MulGustavson[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	out := newRowAppender[V](a.rows, b.cols)
	spa := newSPA[V](b.cols)
	for i := 0; i < a.rows; i++ {
		gustavsonRow(a, b, ops, i, spa, out)
	}
	return out.finish(), nil
}

// spa is a sparse accumulator: dense value scratch plus an occupancy
// stamp, reusable across rows without clearing. minJ/maxJ bound the
// touched column span so emission can choose between a dense flag-scan
// and sorting (see orderedTouched).
type spa[V any] struct {
	acc        []V
	stamp      []int
	current    int
	touched    []int
	minJ, maxJ int
}

func newSPA[V any](cols int) *spa[V] {
	return &spa[V]{acc: make([]V, cols), stamp: make([]int, cols)}
}

func (s *spa[V]) reset() {
	s.current++
	s.touched = s.touched[:0]
	s.minJ, s.maxJ = -1, -1
}

// accumulate folds row i of a·b into the SPA in ascending k order — the
// Definition I.3 fold order every kernel must preserve. The CSR arrays
// are indexed directly (rather than through Row) to keep the per-flop
// cost down to the two algebra calls.
func (s *spa[V]) accumulate(a, b *CSR[V], ops semiring.Ops[V], i int) {
	bPtr, bCol, bVal := b.rowPtr, b.colIdx, b.val
	acc, stamp, cur := s.acc, s.stamp, s.current
	touched := s.touched
	minJ, maxJ := s.minJ, s.maxJ
	for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ { // ascending k: Definition I.3 fold order
		k := a.colIdx[p]
		av := a.val[p]
		for q := bPtr[k]; q < bPtr[k+1]; q++ {
			j := bCol[q]
			prod := ops.Mul(av, bVal[q])
			if stamp[j] != cur {
				stamp[j] = cur
				acc[j] = prod
				touched = append(touched, j)
				if minJ < 0 || j < minJ {
					minJ = j
				}
				if j > maxJ {
					maxJ = j
				}
			} else {
				acc[j] = ops.Add(acc[j], prod)
			}
		}
	}
	s.touched = touched
	s.minJ, s.maxJ = minJ, maxJ
}

// adaptiveSpanFactor scales the sort-cost model behind the adaptive
// emission choice: a dense flag-scan of the touched span costs O(span)
// while sorting the touched list costs O(t·log t), so the scan is
// chosen when span ≤ factor·t·⌈log₂ t⌉. 0 disables the scan path
// entirely (every row sorts) — the pre-adaptive behaviour, kept as a
// package variable for the ablation benchmark.
var adaptiveSpanFactor = 2

// scanBeatsSort decides the adaptive emission strategy for a row with
// touched count t spanning span columns.
func scanBeatsSort(span, t int) bool {
	f := adaptiveSpanFactor
	return f > 0 && span <= f*t*bits.Len(uint(t))
}

// sortTouched sorts a touched list in place: straight insertion sort
// (sortInts, shared with the masked kernel) for short hypersparse rows
// — beating the general sort's pivot and partition machinery at that
// size — and sort.Ints beyond.
func sortTouched(xs []int) {
	if len(xs) <= 24 {
		sortInts(xs)
		return
	}
	sort.Ints(xs)
}

// orderedTouched returns the touched columns in ascending order,
// choosing adaptively between a dense flag-scan of [minJ, maxJ] (dense
// rows: linear in the span, no sort) and sorting (hypersparse rows:
// span much wider than the touched count). The choice only affects the
// order entries are *emitted* in — the per-entry ⊕ fold already happened
// in ascending-k order inside accumulate — so the non-commutative /
// non-associative ⊕ contract is preserved either way.
func (s *spa[V]) orderedTouched() []int {
	t := len(s.touched)
	if t <= 1 {
		return s.touched
	}
	if scanBeatsSort(s.maxJ-s.minJ+1, t) {
		// Rebuild the touched list in order by scanning the stamp over
		// the span; reuses the touched backing array, so no allocation.
		out := s.touched[:0]
		for j := s.minJ; j <= s.maxJ; j++ {
			if s.stamp[j] == s.current {
				out = append(out, j)
			}
		}
		s.touched = out
		return out
	}
	sortTouched(s.touched)
	return s.touched
}

// emit writes the accumulated row into dstCol/dstVal in ascending
// column order, pruning algebraic zeros; it returns the entry count.
// The scan strategy fuses ordering and emission into one pass over the
// span; the sort strategy orders touched then emits.
func (s *spa[V]) emit(ops semiring.Ops[V], dstCol []int, dstVal []V) int {
	t := len(s.touched)
	if t == 0 {
		return 0
	}
	n := 0
	if t > 1 && scanBeatsSort(s.maxJ-s.minJ+1, t) {
		for j := s.minJ; j <= s.maxJ; j++ {
			if s.stamp[j] == s.current {
				if v := s.acc[j]; !ops.IsZero(v) {
					dstCol[n] = j
					dstVal[n] = v
					n++
				}
			}
		}
		return n
	}
	sortTouched(s.touched)
	for _, j := range s.touched {
		if v := s.acc[j]; !ops.IsZero(v) {
			dstCol[n] = j
			dstVal[n] = v
			n++
		}
	}
	return n
}

// gustavsonRow computes one output row into out using the SPA.
func gustavsonRow[V any](a, b *CSR[V], ops semiring.Ops[V], i int, s *spa[V], out *rowAppender[V]) {
	s.reset()
	s.accumulate(a, b, ops, i)
	for _, j := range s.orderedTouched() {
		if !ops.IsZero(s.acc[j]) {
			out.append(j, s.acc[j])
		}
	}
	out.endRow()
}

// MulHash is SpGEMM with a per-row hash-map accumulator: no O(cols)
// scratch, better for hypersparse outputs; slower constants. Ablation
// partner of MulGustavson.
func MulHash[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	out := newRowAppender[V](a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		acc := make(map[int]V)
		aCols, aVals := a.Row(i)
		for p, k := range aCols {
			av := aVals[p]
			bCols, bVals := b.Row(k)
			for q, j := range bCols {
				prod := ops.Mul(av, bVals[q])
				if cur, ok := acc[j]; ok {
					acc[j] = ops.Add(cur, prod)
				} else {
					acc[j] = prod
				}
			}
		}
		js := make([]int, 0, len(acc))
		for j := range acc {
			js = append(js, j)
		}
		sort.Ints(js)
		for _, j := range js {
			if !ops.IsZero(acc[j]) {
				out.append(j, acc[j])
			}
		}
		out.endRow()
	}
	return out.finish(), nil
}

// MulMerge is SpGEMM by expansion and stable merge: gather every
// (j, product) contribution of the row in generation (ascending-k)
// order, stable-sort by j, then fold runs. Highest constant factor but
// the simplest to verify; used as the oracle in property tests.
func MulMerge[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	type contrib struct {
		j int
		v V
	}
	out := newRowAppender[V](a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		var cs []contrib
		aCols, aVals := a.Row(i)
		for p, k := range aCols {
			av := aVals[p]
			bCols, bVals := b.Row(k)
			for q, j := range bCols {
				cs = append(cs, contrib{j: j, v: ops.Mul(av, bVals[q])})
			}
		}
		// Stable: contributions to the same j stay in ascending-k order.
		sort.SliceStable(cs, func(x, y int) bool { return cs[x].j < cs[y].j })
		for x := 0; x < len(cs); {
			y := x + 1
			acc := cs[x].v
			for y < len(cs) && cs[y].j == cs[x].j {
				acc = ops.Add(acc, cs[y].v)
				y++
			}
			if !ops.IsZero(acc) {
				out.append(cs[x].j, acc)
			}
			x = y
		}
		out.endRow()
	}
	return out.finish(), nil
}

// MulDense evaluates Definition I.3 literally: for every output pair
// (i,j), fold A(i,k) ⊗ B(k,j) over EVERY k — including absent entries,
// which are materialized as the algebra's zero. This is the mathematical
// ground truth against which the sparse kernels' implicit use of the
// annihilator/identity laws is judged; it is O(rows·inner·cols) and
// meant for small verification instances only.
//
// The result keeps entries that are algebraically non-zero.
func MulDense[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	da := a.ToDense(ops.Zero)
	db := b.ToDense(ops.Zero)
	out := newRowAppender[V](a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var acc V
			for k := 0; k < a.cols; k++ {
				prod := ops.Mul(da[i][k], db[k][j])
				if k == 0 {
					acc = prod
				} else {
					acc = ops.Add(acc, prod)
				}
			}
			if a.cols == 0 {
				acc = ops.Zero
			}
			if !ops.IsZero(acc) {
				out.append(j, acc)
			}
		}
		out.endRow()
	}
	return out.finish(), nil
}

// rowAppender assembles a CSR row by row.
type rowAppender[V any] struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []V
}

func newRowAppender[V any](rows, cols int) *rowAppender[V] {
	return &rowAppender[V]{rows: rows, cols: cols, rowPtr: make([]int, 1, rows+1)}
}

func (r *rowAppender[V]) append(j int, v V) {
	r.colIdx = append(r.colIdx, j)
	r.val = append(r.val, v)
}

func (r *rowAppender[V]) endRow() {
	r.rowPtr = append(r.rowPtr, len(r.colIdx))
}

func (r *rowAppender[V]) finish() *CSR[V] {
	for len(r.rowPtr) < r.rows+1 {
		r.rowPtr = append(r.rowPtr, len(r.colIdx))
	}
	return &CSR[V]{rows: r.rows, cols: r.cols, rowPtr: r.rowPtr, colIdx: r.colIdx, val: r.val}
}
