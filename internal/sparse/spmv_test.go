package sparse

import (
	"math/rand"
	"sort"
	"testing"

	"adjarray/internal/semiring"
)

// randomVecMat draws a sparse 1×R vector (as ids+vals) and an R×C matrix.
func randomVecMat(r *rand.Rand, R, C int, vals []float64) ([]int, []float64, *CSR[float64]) {
	var ids []int
	var xv []float64
	for i := 0; i < R; i++ {
		if r.Intn(3) == 0 {
			ids = append(ids, i)
			xv = append(xv, vals[r.Intn(len(vals))])
		}
	}
	coo := NewCOO[float64](R, C)
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			if r.Intn(4) == 0 {
				coo.MustAppend(i, j, vals[r.Intn(len(vals))])
			}
		}
	}
	return ids, xv, coo.ToCSR(nil)
}

// vecCSR wraps the sparse vector as a 1×R CSR for the SpGEMM reference.
func vecCSR(R int, ids []int, vals []float64) *CSR[float64] {
	m, err := NewCSR(1, R, []int{0, len(ids)}, append([]int(nil), ids...), append([]float64(nil), vals...))
	if err != nil {
		panic(err)
	}
	return m
}

// Push and pull must agree with each other and with the two-phase SpGEMM
// engine on y = x ⊕.⊗ m, including for an order-sensitive ⊕ (the fold
// runs in ascending shared-id order in all three).
func TestSpMSpVMatchesSpGEMM(t *testing.T) {
	orderSensitive := semiring.Ops[float64]{
		Name: "ordercheck",
		Add:  func(a, b float64) float64 { return a + b/2 },
		Mul:  func(a, b float64) float64 { return a + b },
		Zero: 0, One: 0,
		Equal: func(a, b float64) bool { return a == b },
	}
	r := rand.New(rand.NewSource(11))
	for _, ops := range []semiring.Ops[float64]{semiring.PlusTimes(), semiring.MinPlus(), semiring.MaxMin(), orderSensitive} {
		for trial := 0; trial < 20; trial++ {
			R, C := 1+r.Intn(20), 1+r.Intn(20)
			ids, xv, m := randomVecMat(r, R, C, []float64{0.5, 1, 2, 3, 7})
			want, err := MulTwoPhase(vecCSR(R, ids, xv), m, ops)
			if err != nil {
				t.Fatal(err)
			}

			check := func(kind string, acc []float64, hit []bool, touched []int) {
				got := map[int]float64{}
				for _, j := range touched {
					if !ops.IsZero(acc[j]) { // the engine prunes Zero folds; kernels leave it to callers
						got[j] = acc[j]
					}
				}
				wc, wv := want.Row(0)
				if len(got) != len(wc) {
					t.Fatalf("%s %s trial %d: nnz %d, want %d", ops.Name, kind, trial, len(got), len(wc))
				}
				for p, j := range wc {
					if gv, ok := got[j]; !ok || !ops.Equal(gv, wv[p]) {
						t.Fatalf("%s %s trial %d: y[%d] = %v, want %v", ops.Name, kind, trial, j, gv, wv[p])
					}
				}
			}

			acc := make([]float64, C)
			hit := make([]bool, C)
			touched := SpMSpVPush(m, ids, xv, ops.Add, ops.Mul, acc, hit, nil)
			check("push", acc, hit, touched)

			xDense := make([]float64, R)
			xMask := make([]bool, R)
			for i, id := range ids {
				xDense[id], xMask[id] = xv[i], true
			}
			acc2 := make([]float64, C)
			hit2 := make([]bool, C)
			touched2 := SpMVPull(m.Transpose(), xDense, xMask, ops.Add, ops.Mul, acc2, hit2, nil)
			check("pull", acc2, hit2, touched2)
			if !sort.IntsAreSorted(touched2) {
				t.Fatalf("pull touched ids not ascending: %v", touched2)
			}
		}
	}
}
