package sparse

import (
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func fromTriples(t *testing.T, rows, cols int, ts [][3]float64) *CSR[float64] {
	t.Helper()
	coo := NewCOO[float64](rows, cols)
	for _, x := range ts {
		if err := coo.Append(int(x[0]), int(x[1]), x[2]); err != nil {
			t.Fatal(err)
		}
	}
	return coo.ToCSR(nil)
}

func TestCOOBasics(t *testing.T) {
	coo := NewCOO[float64](2, 3)
	if coo.Rows() != 2 || coo.Cols() != 3 || coo.Len() != 0 {
		t.Fatal("fresh COO wrong")
	}
	if err := coo.Append(2, 0, 1); err == nil {
		t.Error("row out of range accepted")
	}
	if err := coo.Append(0, 3, 1); err == nil {
		t.Error("col out of range accepted")
	}
	coo.MustAppend(1, 2, 5)
	if coo.Len() != 1 {
		t.Error("Append not recorded")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic out of range")
		}
	}()
	coo.MustAppend(9, 9, 1)
}

func TestCOODuplicateCombine(t *testing.T) {
	coo := NewCOO[float64](1, 1)
	coo.MustAppend(0, 0, 1)
	coo.MustAppend(0, 0, 2)
	coo.MustAppend(0, 0, 4)

	// nil combine keeps the last write (D4M overwrite semantics).
	last := coo.ToCSR(nil)
	if v, _ := last.At(0, 0); v != 4 {
		t.Errorf("overwrite semantics: got %v, want 4", v)
	}
	// additive combine folds in insertion order.
	sum := coo.ToCSR(func(a, b float64) float64 { return a + b })
	if v, _ := sum.At(0, 0); v != 7 {
		t.Errorf("sum combine: got %v, want 7", v)
	}
	// non-commutative combine: left fold 1→2→4 keeps first.
	first := coo.ToCSR(func(a, b float64) float64 { return a })
	if v, _ := first.At(0, 0); v != 1 {
		t.Errorf("first combine: got %v, want 1", v)
	}
}

func TestCOOUnsortedInput(t *testing.T) {
	m := fromTriples(t, 3, 3, [][3]float64{{2, 1, 4}, {0, 2, 2}, {2, 0, 3}, {0, 0, 1}})
	want := small(t)
	if !Equal(m, want, value.Float64Equal) {
		t.Error("COO did not sort triples into canonical CSR")
	}
}

func TestMulKnownProduct(t *testing.T) {
	// [1 2] [5 6]   [1*5+2*7  1*6+2*8]   [19 22]
	// [3 4] [7 8] = [3*5+4*7  3*6+4*8] = [43 50]
	a := fromTriples(t, 2, 2, [][3]float64{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	b := fromTriples(t, 2, 2, [][3]float64{{0, 0, 5}, {0, 1, 6}, {1, 0, 7}, {1, 1, 8}})
	c, err := Mul(a, b, semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	d := c.ToDense(0)
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := Empty[float64](2, 3)
	b := Empty[float64](4, 2)
	for _, mul := range []func(x, y *CSR[float64], o semiring.Ops[float64]) (*CSR[float64], error){
		MulGustavson[float64], MulHash[float64], MulMerge[float64], MulDense[float64],
	} {
		if _, err := mul(a, b, semiring.PlusTimes()); err == nil {
			t.Error("dimension mismatch accepted")
		}
	}
	if _, err := MulParallel(a, b, semiring.PlusTimes(), 4, 0); err == nil {
		t.Error("MulParallel accepted mismatch")
	}
}

func TestMulMinPlusShortestPath(t *testing.T) {
	// Two-hop distances: d2 = d ⊕.⊗ d under min.+.
	inf := value.PosInf
	_ = inf
	d := fromTriples(t, 3, 3, [][3]float64{
		{0, 1, 1}, {1, 2, 2}, {0, 2, 10},
	})
	ops := semiring.MinPlus()
	d2, err := Mul(d, d, ops)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d2.At(0, 2); !ok || v != 3 {
		t.Errorf("two-hop 0→2 = %v,%v; want 3 (1+2 beats 10 only via relax)", v, ok)
	}
}

func TestMulProducesSortedColumns(t *testing.T) {
	a := randomCSR(rand.New(rand.NewSource(1)), 30, 40, 0.2)
	b := randomCSR(rand.New(rand.NewSource(2)), 40, 25, 0.2)
	for name, mul := range map[string]func(x, y *CSR[float64], o semiring.Ops[float64]) (*CSR[float64], error){
		"gustavson": MulGustavson[float64], "hash": MulHash[float64], "merge": MulMerge[float64],
	} {
		c, err := mul(a, b, semiring.PlusTimes())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewCSR(c.rows, c.cols, c.rowPtr, c.colIdx, c.val); err != nil {
			t.Errorf("%s produced invalid CSR: %v", name, err)
		}
	}
}

// randomCSR generates a dense-ish random matrix with values in 1..9 so
// products cannot underflow to zero under +.*.
func randomCSR(r *rand.Rand, rows, cols int, density float64) *CSR[float64] {
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.MustAppend(i, j, float64(1+r.Intn(9)))
			}
		}
	}
	return coo.ToCSR(nil)
}

// All SpGEMM variants (and the parallel one at several worker/grain
// settings) must agree exactly — including with the dense Definition
// I.3 oracle, because +.* satisfies Theorem II.1.
func TestMulVariantsAgreeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		rows, inner, cols := 1+r.Intn(30), 1+r.Intn(30), 1+r.Intn(30)
		a := randomCSR(r, rows, inner, 0.15)
		b := randomCSR(r, inner, cols, 0.15)
		ops := semiring.PlusTimes()

		ref, err := MulMerge(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		others := map[string]*CSR[float64]{}
		others["gustavson"], _ = MulGustavson(a, b, ops)
		others["hash"], _ = MulHash(a, b, ops)
		others["dense"], _ = MulDense(a, b, ops)
		others["par2"], _ = MulParallel(a, b, ops, 2, 0)
		others["par8g1"], _ = MulParallel(a, b, ops, 8, 1)
		others["par3g7"], _ = MulParallel(a, b, ops, 3, 7)
		for name, got := range others {
			if !Equal(ref, got, value.Float64Equal) {
				t.Fatalf("trial %d: %s disagrees with merge oracle", trial, name)
			}
		}
	}
}

// The same agreement must hold for non-commutative ⊕ (first.*): this is
// what the ascending-k fold contract buys.
func TestMulVariantsAgreeNonCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ops := semiring.LeftmostNonzero()
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(r, 20, 25, 0.2)
		b := randomCSR(r, 25, 15, 0.2)
		ref, err := MulMerge(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := MulGustavson(a, b, ops)
		h, _ := MulHash(a, b, ops)
		d, _ := MulDense(a, b, ops)
		p, _ := MulParallel(a, b, ops, 4, 3)
		for name, got := range map[string]*CSR[float64]{"gustavson": g, "hash": h, "dense": d, "parallel": p} {
			if !Equal(ref, got, value.Float64Equal) {
				t.Fatalf("trial %d: %s disagrees under non-commutative ⊕", trial, name)
			}
		}
	}
}

// Under every Figure 3/5 operator pair, all kernels agree with the dense
// oracle on random non-negative matrices (these pairs satisfy
// Theorem II.1, so sparse == dense is exactly the theorem's content).
func TestMulSparseMatchesDenseForCompliantPairs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, ops := range semiring.Figure3Pairs() {
		a := randomCSR(r, 15, 12, 0.25)
		b := randomCSR(r, 12, 18, 0.25)
		s, err := MulGustavson(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		d, err := MulDense(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(s, d, value.Float64Equal) {
			t.Errorf("%s: sparse and dense products differ", ops.Name)
		}
	}
}

// Under a NON-compliant algebra the sparse shortcut and the dense
// Definition I.3 product genuinely diverge — the converse face of the
// theorem at the kernel level. max.+@0: dense folds in 0⊗v = v terms
// that sparse skips.
func TestMulSparseDivergesFromDenseForNonCompliantPair(t *testing.T) {
	ops := semiring.MaxPlusAtZero()
	a := fromTriples(t, 1, 2, [][3]float64{{0, 0, 5}}) // row [5 0]
	b := fromTriples(t, 2, 1, [][3]float64{{1, 0, 7}}) // col [0 7]ᵀ
	s, err := MulGustavson(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MulDense(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse: no overlapping k, so no entry. Dense: max(5⊗0, 0⊗7) =
	// max(5, 7) = 7 — a spurious "edge".
	if s.NNZ() != 0 {
		t.Errorf("sparse product should be empty, has %d entries", s.NNZ())
	}
	if v, ok := d.At(0, 0); !ok || v != 7 {
		t.Errorf("dense product = %v,%v; want spurious 7", v, ok)
	}
}

func TestMulEmptyOperands(t *testing.T) {
	a := Empty[float64](0, 0)
	c, err := Mul(a, a, semiring.PlusTimes())
	if err != nil || c.Rows() != 0 || c.Cols() != 0 {
		t.Errorf("0×0 product failed: %v", err)
	}
	b := Empty[float64](3, 4)
	d := Empty[float64](4, 2)
	c, err = Mul(b, d, semiring.PlusTimes())
	if err != nil || c.NNZ() != 0 || c.Rows() != 3 || c.Cols() != 2 {
		t.Errorf("empty product wrong: %v", err)
	}
	c, err = MulParallel(b, d, semiring.PlusTimes(), 4, 0)
	if err != nil || c.NNZ() != 0 {
		t.Errorf("parallel empty product wrong: %v", err)
	}
	c, err = MulDense(b, d, semiring.PlusTimes())
	if err != nil || c.NNZ() != 0 {
		t.Errorf("dense empty product wrong: %v", err)
	}
}

func TestTransposeParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(r, 1+r.Intn(50), 1+r.Intn(50), 0.2)
		want := m.Transpose()
		for _, w := range []int{1, 2, 4, 16} {
			got := TransposeParallel(m, w)
			if !Equal(want, got, value.Float64Equal) {
				t.Fatalf("trial %d workers %d: parallel transpose differs", trial, w)
			}
		}
	}
	empty := Empty[float64](4, 7)
	if got := TransposeParallel(empty, 8); got.Rows() != 7 || got.Cols() != 4 {
		t.Error("parallel transpose of empty wrong shape")
	}
}

func TestEWiseAdd(t *testing.T) {
	a := fromTriples(t, 2, 2, [][3]float64{{0, 0, 1}, {0, 1, 2}})
	b := fromTriples(t, 2, 2, [][3]float64{{0, 1, 3}, {1, 1, 4}})
	c, err := EWiseAdd(a, b, semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	d := c.ToDense(0)
	want := [][]float64{{1, 5}, {0, 4}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("add[%d][%d] = %v want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
	if _, err := EWiseAdd(a, Empty[float64](3, 3), semiring.PlusTimes()); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestEWiseMul(t *testing.T) {
	a := fromTriples(t, 2, 2, [][3]float64{{0, 0, 2}, {0, 1, 3}})
	b := fromTriples(t, 2, 2, [][3]float64{{0, 1, 4}, {1, 0, 5}})
	c, err := EWiseMul(a, b, semiring.PlusTimes())
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 {
		t.Fatalf("intersection nnz = %d", c.NNZ())
	}
	if v, _ := c.At(0, 1); v != 12 {
		t.Errorf("mul(0,1) = %v", v)
	}
	if _, err := EWiseMul(a, Empty[float64](1, 1), semiring.PlusTimes()); err == nil {
		t.Error("shape mismatch accepted")
	}
	var se *ShapeError
	_, err = EWiseMul(a, Empty[float64](1, 1), semiring.PlusTimes())
	if !asShapeError(err, &se) {
		t.Errorf("error should be *ShapeError, got %T", err)
	} else if se.Error() == "" {
		t.Error("empty error string")
	}
}

func asShapeError(err error, target **ShapeError) bool {
	if e, ok := err.(*ShapeError); ok {
		*target = e
		return true
	}
	return false
}

// EWiseAdd with a zero-sum-capable algebra prunes cancelled entries.
func TestEWiseAddPrunesCancellation(t *testing.T) {
	ring := semiring.PlusTimes().Rename("signed")
	a := fromTriples(t, 1, 1, [][3]float64{{0, 0, 5}})
	b := fromTriples(t, 1, 1, [][3]float64{{0, 0, -5}})
	c, err := EWiseAdd(a, b, ring)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Errorf("cancelled entry survived: nnz=%d", c.NNZ())
	}
}

// Union/intersection element-wise semantics over set values exercises
// the generic kernels with a non-numeric, slice-typed V.
func TestEWiseSetValues(t *testing.T) {
	ops := semiring.PowerSet(value.NewSet("a", "b", "c"))
	mk := func(entries map[[2]int]value.Set) *CSR[value.Set] {
		coo := NewCOO[value.Set](2, 2)
		for rc, s := range entries {
			coo.MustAppend(rc[0], rc[1], s)
		}
		return coo.ToCSR(nil)
	}
	a := mk(map[[2]int]value.Set{{0, 0}: value.NewSet("a"), {0, 1}: value.NewSet("a", "b")})
	b := mk(map[[2]int]value.Set{{0, 0}: value.NewSet("b"), {0, 1}: value.NewSet("b", "c")})
	u, err := EWiseAdd(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := u.At(0, 0); !v.Equal(value.NewSet("a", "b")) {
		t.Errorf("set union = %v", v)
	}
	x, err := EWiseMul(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := x.At(0, 1); !v.Equal(value.NewSet("b")) {
		t.Errorf("set intersection = %v", v)
	}
	if _, ok := x.At(0, 0); ok {
		t.Error("disjoint intersection should be pruned as zero")
	}
}
