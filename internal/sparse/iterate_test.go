package sparse

import "testing"

func iterateTestMatrix(t *testing.T) *CSR[float64] {
	t.Helper()
	coo := NewCOO[float64](3, 3)
	for _, e := range [][3]int{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5}} {
		coo.MustAppend(e[0], e[1], float64(e[2]))
	}
	return coo.ToCSR(nil)
}

func TestIterateUntilEarlyExit(t *testing.T) {
	m := iterateTestMatrix(t)
	visited := 0
	done := m.IterateUntil(func(i, j int, v float64) bool {
		visited++
		return visited < 2
	})
	if done {
		t.Fatal("IterateUntil reported completion after an early stop")
	}
	// The sweep stops at the first false: entry 2 returned false, and
	// entries 3..5 were never touched.
	if visited != 2 {
		t.Fatalf("visited %d entries, want 2", visited)
	}
}

func TestIterateUntilCompletes(t *testing.T) {
	m := iterateTestMatrix(t)
	var got []int
	done := m.IterateUntil(func(i, j int, v float64) bool {
		got = append(got, int(v))
		return true
	})
	if !done {
		t.Fatal("full sweep reported early stop")
	}
	// Row-major order, same as Iterate.
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
}
