package sparse

import (
	"sort"

	"adjarray/internal/semiring"
)

// MulLegacy is the seed repository's Gustavson kernel, frozen verbatim:
// append-grown output storage, an unconditional per-row sort of the
// touched list, and ⊕/⊗ reached through the Ops closure fields. It is
// retained as the pre-two-phase baseline arm of the ablation
// benchmarks (BenchmarkSpGEMMVariants/legacy and
// BenchmarkSymbolicVsAppend/*/legacy), so before/after numbers can be
// measured in one process where machine noise cancels. Do not optimize
// this function — its value is being frozen.
func MulLegacy[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	out := newRowAppender[V](a.rows, b.cols)
	acc := make([]V, b.cols)
	stamp := make([]int, b.cols)
	var touched []int
	current := 0
	for i := 0; i < a.rows; i++ {
		current++
		touched = touched[:0]
		aCols, aVals := a.Row(i)
		for p, k := range aCols {
			av := aVals[p]
			bCols, bVals := b.Row(k)
			for q, j := range bCols {
				prod := ops.Mul(av, bVals[q])
				if stamp[j] != current {
					stamp[j] = current
					acc[j] = prod
					touched = append(touched, j)
				} else {
					acc[j] = ops.Add(acc[j], prod)
				}
			}
		}
		sort.Ints(touched)
		for _, j := range touched {
			if !ops.IsZero(acc[j]) {
				out.append(j, acc[j])
			}
		}
		out.endRow()
	}
	return out.finish(), nil
}
