package sparse

import (
	"strings"
	"testing"
)

// Validate must accept everything the constructors build and reject
// every class of structural corruption. Corrupt matrices are assembled
// by poking unexported fields directly — NewCSR (correctly) refuses to
// build them.
func TestValidate(t *testing.T) {
	good, err := NewCSR(2, 3, []int{0, 2, 3}, []int{0, 2, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	if err := Empty[float64](4, 4).Validate(); err != nil {
		t.Errorf("empty matrix rejected: %v", err)
	}

	cases := []struct {
		name string
		m    CSR[float64]
		want string
	}{
		{
			name: "rowPtr length",
			m:    CSR[float64]{rows: 2, cols: 2, rowPtr: []int{0, 0}},
			want: "rowPtr length",
		},
		{
			name: "non-monotone rowPtr",
			m: CSR[float64]{rows: 2, cols: 2, rowPtr: []int{0, 2, 1},
				colIdx: []int{0}, val: []float64{1}},
			want: "not monotone",
		},
		{
			name: "column out of range",
			m: CSR[float64]{rows: 1, cols: 2, rowPtr: []int{0, 1},
				colIdx: []int{5}, val: []float64{1}},
			want: "out of range",
		},
		{
			name: "columns not increasing",
			m: CSR[float64]{rows: 1, cols: 3, rowPtr: []int{0, 2},
				colIdx: []int{1, 1}, val: []float64{1, 2}},
			want: "not strictly increasing",
		},
		{
			name: "val length mismatch",
			m: CSR[float64]{rows: 1, cols: 2, rowPtr: []int{0, 1},
				colIdx: []int{0}, val: nil},
			want: "inconsistent nnz",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
