package sparse

import (
	"adjarray/internal/semiring"
)

// Two-phase symbolic/numeric SpGEMM — the production multiplication
// engine. The GraphBLAS reference designs use this split because the
// append-grown output and per-row sorting of the classical Gustavson
// kernel dominate at scale:
//
//  1. Symbolic phase: a stamp-only SPA (no values, no ⊗/⊕ calls) counts
//     the exact number of distinct output columns per row.
//  2. The per-row counts are prefix-summed into rowPtr and colIdx/val
//     are allocated exactly once at their final size.
//  3. Numeric phase: the value fold runs row by row, writing each row's
//     entries directly into its disjoint [rowPtr[i], rowPtr[i+1]) range.
//
// Entries that fold to the algebra's zero are pruned at emission, so a
// row can end up shorter than its symbolic count; finalizeTwoPhase
// compacts storage leftward in that (rare — it requires ⊕ folding
// non-zeros to zero) case. The ascending-k fold order of Definition I.3
// is preserved exactly: the symbolic phase never touches values and the
// numeric phase folds identically to gustavsonRow.

// symbolicSPA is the stamp-only accumulator of the symbolic phase.
// Instances are views over pooled stamp boxes (see pool.go); the
// advanced stamp counter is saved back to the box between phases.
type symbolicSPA struct {
	stamp   []int
	current int
}

// symbolicRow counts the distinct output columns of row i of a·b using
// the stamp-only SPA. A row with a single inner key needs no stamping:
// its output pattern is exactly that one b row, whose columns are
// already distinct.
func symbolicRow[V any](a, b *CSR[V], i int, s *symbolicSPA) int {
	lo, hi := a.rowPtr[i], a.rowPtr[i+1]
	if hi-lo == 1 {
		k := a.colIdx[lo]
		return b.rowPtr[k+1] - b.rowPtr[k]
	}
	s.current++
	count := 0
	cur := s.current
	stamp := s.stamp
	for _, k := range a.colIdx[lo:hi] {
		for _, j := range b.colIdx[b.rowPtr[k]:b.rowPtr[k+1]] {
			if stamp[j] != cur {
				stamp[j] = cur
				count++
			}
		}
	}
	return count
}

// numericRow folds row i of a·b in the SPA and writes the surviving
// (non-zero) entries in ascending column order into dstCol/dstVal,
// returning how many were written. dst slices must have room for the
// row's symbolic count.
func numericRow[V any](a, b *CSR[V], ops semiring.Ops[V], i int, s *spa[V], dstCol []int, dstVal []V) int {
	lo, hi := a.rowPtr[i], a.rowPtr[i+1]
	if hi-lo == 1 {
		// Single inner key: the row is av ⊗ (row k of b), already in
		// ascending column order — no accumulator needed. Each entry is
		// the one-term fold of Definition I.3, exactly as the SPA path
		// would produce it.
		k := a.colIdx[lo]
		av := a.val[lo]
		n := 0
		for q := b.rowPtr[k]; q < b.rowPtr[k+1]; q++ {
			v := ops.Mul(av, b.val[q])
			if !ops.IsZero(v) {
				dstCol[n] = b.colIdx[q]
				dstVal[n] = v
				n++
			}
		}
		return n
	}
	s.reset()
	s.accumulate(a, b, ops, i)
	return s.emit(ops, dstCol, dstVal)
}

// finalizeTwoPhase assembles the CSR from the symbolically-sized
// storage. rowPtr holds the symbolic (pre-prune) offsets and rowLen the
// per-row counts actually written by the numeric phase. When no entry
// was pruned the storage is already exact and is adopted as-is; else
// rows are compacted leftward in place (each destination precedes its
// source, so a single forward pass is safe) and the slices resliced —
// still zero additional allocation.
func finalizeTwoPhase[V any](rows, cols int, rowPtr, rowLen, colIdx []int, val []V) *CSR[V] {
	pruned := false
	for i := 0; i < rows; i++ {
		if rowLen[i] != rowPtr[i+1]-rowPtr[i] {
			pruned = true
			break
		}
	}
	if !pruned {
		return &CSR[V]{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
	}
	dst := 0
	for i := 0; i < rows; i++ {
		src := rowPtr[i]
		n := rowLen[i]
		if dst != src {
			copy(colIdx[dst:dst+n], colIdx[src:src+n])
			copy(val[dst:dst+n], val[src:src+n])
		}
		rowPtr[i] = dst
		dst += n
	}
	rowPtr[rows] = dst
	return &CSR[V]{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx[:dst], val: val[:dst]}
}

// MulTwoPhase is the serial two-phase symbolic/numeric SpGEMM kernel:
// exact per-row counts, one exact allocation of the output arrays, then
// an in-place numeric pass. Scratch (stamp array + value accumulator)
// comes from the package pools, so repeated multiplications allocate
// only their exact output. Bit-identical to MulGustavson/MulMerge for
// every ⊕, including non-commutative and non-associative ones.
func MulTwoPhase[V any](a, b *CSR[V], ops semiring.Ops[V]) (*CSR[V], error) {
	if err := checkDims(a, b); err != nil {
		return nil, err
	}
	sb := getStampBox(b.cols)
	sym := pooledSym(sb)
	rowPtr := make([]int, a.rows+1)
	for i := 0; i < a.rows; i++ {
		rowPtr[i+1] = symbolicRow(a, b, i, sym)
	}
	sb.current = sym.current
	for i := 0; i < a.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	nnz := rowPtr[a.rows]
	colIdx := make([]int, nnz)
	val := make([]V, nnz)
	rowLen := make([]int, a.rows)
	rowFn := numericRowFor(ops)
	pool := accPoolFor[V]()
	vb := getAccBox[V](pool, b.cols)
	s := pooledSPA(sb, vb)
	for i := 0; i < a.rows; i++ {
		rowLen[i] = rowFn(a, b, ops, i, s, colIdx[rowPtr[i]:rowPtr[i+1]], val[rowPtr[i]:rowPtr[i+1]])
	}
	releaseKernelScratch(pool, sb, s, vb)
	return finalizeTwoPhase(a.rows, b.cols, rowPtr, rowLen, colIdx, val), nil
}
