package sparse

import (
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// twophase_test.go — property tests for the two-phase symbolic/numeric
// engine. The repo's defining correctness contract: every SpGEMM
// variant is bit-identical to the MulMerge oracle for every ⊕ —
// including non-commutative and non-associative ones — because all of
// them fold the contributions to an output entry in ascending inner-key
// order.

// signedCSR generates a random matrix with values in {-4..-1, 1..4} so
// +.* products can cancel to exactly zero, exercising the two-phase
// engine's post-prune compaction (a row's numeric count < its symbolic
// count).
func signedCSR(r *rand.Rand, rows, cols int, density float64) *CSR[float64] {
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				v := float64(1 + r.Intn(4))
				if r.Intn(2) == 0 {
					v = -v
				}
				coo.MustAppend(i, j, v)
			}
		}
	}
	return coo.ToCSR(nil)
}

// subtractOps is a deliberately pathological ⊕ = a−b: non-commutative,
// non-associative, and 0 is only a right identity. The ascending-k fold
// contract still pins down a unique result for every kernel.
func subtractOps() semiring.Ops[float64] {
	return semiring.Ops[float64]{
		Name: "sub.*",
		Add:  func(a, b float64) float64 { return a - b },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0, One: 1,
		Equal: value.Float64Equal,
	}
}

// mulVariants enumerates every SpGEMM variant under test, with the
// parallel engine at several worker/grain settings.
func mulVariants() map[string]func(a, b *CSR[float64], ops semiring.Ops[float64]) (*CSR[float64], error) {
	return map[string]func(a, b *CSR[float64], ops semiring.Ops[float64]) (*CSR[float64], error){
		"legacy":    MulLegacy[float64],
		"gustavson": MulGustavson[float64],
		"hash":      MulHash[float64],
		"twophase":  MulTwoPhase[float64],
		"par2": func(a, b *CSR[float64], o semiring.Ops[float64]) (*CSR[float64], error) {
			return MulParallel(a, b, o, 2, 0)
		},
		"par4g1": func(a, b *CSR[float64], o semiring.Ops[float64]) (*CSR[float64], error) {
			return MulParallel(a, b, o, 4, 1)
		},
		"par3g7": func(a, b *CSR[float64], o semiring.Ops[float64]) (*CSR[float64], error) {
			return MulParallel(a, b, o, 3, 7)
		},
		"par8g2": func(a, b *CSR[float64], o semiring.Ops[float64]) (*CSR[float64], error) {
			return MulParallel(a, b, o, 8, 2)
		},
	}
}

// All variants must be bit-identical to the merge oracle on random
// signed matrices under +.* (specialized kernel + cancellation pruning),
// first.* (non-commutative ⊕), and a−b (non-commutative AND
// non-associative, no left identity).
func TestTwoPhaseVariantsBitIdenticalToOracle(t *testing.T) {
	algebras := []semiring.Ops[float64]{
		semiring.PlusTimes(),
		semiring.LeftmostNonzero(),
		subtractOps(),
	}
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		rows, inner, cols := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		density := 0.05 + r.Float64()*0.4
		a := signedCSR(r, rows, inner, density)
		b := signedCSR(r, inner, cols, density)
		for _, ops := range algebras {
			ref, err := MulMerge(a, b, ops)
			if err != nil {
				t.Fatal(err)
			}
			for name, mul := range mulVariants() {
				got, err := mul(a, b, ops)
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, ops.Name, name, err)
				}
				if !Equal(ref, got, value.Float64Equal) {
					t.Fatalf("trial %d: %s disagrees with merge oracle under %s", trial, name, ops.Name)
				}
				if _, err := NewCSR(got.rows, got.cols, got.rowPtr, got.colIdx, got.val); err != nil {
					t.Fatalf("trial %d: %s produced structurally invalid CSR under %s: %v", trial, name, ops.Name, err)
				}
			}
		}
	}
}

// Cancellation stress: a matrix times its own negation-augmented
// partner produces many exact zeros, so the numeric pass writes fewer
// entries than the symbolic pass counted and finalizeTwoPhase must
// compact. The structural invariants and oracle equality must survive.
func TestTwoPhaseCompactsPrunedRows(t *testing.T) {
	// b has paired rows +v/−v so products against a's two-entry row
	// fold to exactly zero.
	cooA := NewCOO[float64](3, 2)
	cooA.MustAppend(0, 0, 1)
	cooA.MustAppend(0, 1, 1)
	cooA.MustAppend(1, 0, 2)
	cooA.MustAppend(2, 1, 3)
	a := cooA.ToCSR(nil)

	cooB := NewCOO[float64](2, 3)
	cooB.MustAppend(0, 0, 5)
	cooB.MustAppend(0, 2, 1)
	cooB.MustAppend(1, 0, -5) // cancels row 0, col 0
	cooB.MustAppend(1, 1, 7)
	b := cooB.ToCSR(nil)

	ops := semiring.PlusTimes()
	ref, err := MulMerge(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MulTwoPhase(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ref, got, value.Float64Equal) {
		t.Fatalf("compacted result differs from oracle:\nref %v\ngot %v", ref, got)
	}
	if _, ok := got.At(0, 0); ok {
		t.Error("cancelled entry (0,0) survived pruning")
	}
	par, err := MulParallel(a, b, ops, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ref, par, value.Float64Equal) {
		t.Error("parallel compaction differs from oracle")
	}
}

// The parallel numeric pass writes into disjoint preallocated ranges;
// run it with many workers and tiny grains over a larger product so the
// race detector (go test -race) sweeps the disjoint-write claim.
func TestMulParallelNumericPassRace(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := signedCSR(r, 300, 200, 0.08)
	b := signedCSR(r, 200, 250, 0.08)
	ops := semiring.PlusTimes()
	ref, err := MulTwoPhase(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range [][2]int{{2, 0}, {4, 1}, {8, 3}, {16, 0}, {3, 64}} {
		got, err := MulParallel(a, b, ops, cfg[0], cfg[1])
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ref, got, value.Float64Equal) {
			t.Fatalf("workers=%d grain=%d differs from serial two-phase", cfg[0], cfg[1])
		}
	}
}

// The adaptive emission must agree with the sort-always path entry for
// entry on workloads mixing dense and hypersparse rows.
func TestAdaptiveEmissionMatchesSortAlways(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ops := semiring.LeftmostNonzero()
	for trial := 0; trial < 10; trial++ {
		a := signedCSR(r, 40, 30, 0.3)
		b := signedCSR(r, 30, 500, 0.02+r.Float64()*0.2)
		adaptive, err := MulTwoPhase(a, b, ops)
		if err != nil {
			t.Fatal(err)
		}
		old := adaptiveSpanFactor
		adaptiveSpanFactor = 0 // force the sort path everywhere
		sorted, err := MulTwoPhase(a, b, ops)
		adaptiveSpanFactor = old
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(adaptive, sorted, value.Float64Equal) {
			t.Fatal("adaptive emission changed the result")
		}
	}
}
