package sparse

import (
	"fmt"

	"adjarray/internal/semiring"
)

// Growth kernels for incrementally maintained matrices: coordinate-space
// embedding, row appending, and an in-place-capable ⊕-merge. These are
// the storage layer of the delta-batch identity
//
//	A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:]
//
// where a small delta is folded into a large accumulator thousands of
// times. The batch kernels above rebuild whole matrices per call; the
// kernels here share or mutate existing backing wherever the caller can
// prove it safe.

// Embed maps m into a larger coordinate space: the result is
// newRows×newCols with row i of m living at rowPos[i] and column j
// renumbered colPos[j]. Position maps must be strictly increasing (the
// embedding preserves order, so no row needs re-sorting); nil means the
// identity. Rows not hit by rowPos are empty.
//
// Values are never copied: the result shares m's value slice, plus its
// column slice when colPos is nil. This is the integer-index counterpart
// of assoc.Reindex — O(rows+nnz) with no string hashing and no COO sort.
func Embed[V any](m *CSR[V], rowPos, colPos []int, newRows, newCols int) (*CSR[V], error) {
	if newRows < m.rows && rowPos == nil {
		return nil, fmt.Errorf("sparse: Embed shrinks rows %d -> %d", m.rows, newRows)
	}
	if newCols < m.cols && colPos == nil {
		return nil, fmt.Errorf("sparse: Embed shrinks cols %d -> %d", m.cols, newCols)
	}
	if rowPos != nil {
		if len(rowPos) != m.rows {
			return nil, fmt.Errorf("sparse: Embed rowPos length %d, want %d", len(rowPos), m.rows)
		}
		if err := checkMonotone(rowPos, newRows, "rowPos"); err != nil {
			return nil, err
		}
	}
	if colPos != nil {
		if len(colPos) != m.cols {
			return nil, fmt.Errorf("sparse: Embed colPos length %d, want %d", len(colPos), m.cols)
		}
		if err := checkMonotone(colPos, newCols, "colPos"); err != nil {
			return nil, err
		}
	}

	colIdx := m.colIdx
	if colPos != nil {
		colIdx = make([]int, len(m.colIdx))
		for p, j := range m.colIdx {
			colIdx[p] = colPos[j]
		}
	}
	rowPtr := m.rowPtr
	switch {
	case rowPos == nil && newRows == m.rows:
		// share rowPtr as-is
	case rowPos == nil:
		rowPtr = make([]int, newRows+1)
		copy(rowPtr, m.rowPtr)
		for i := m.rows + 1; i <= newRows; i++ {
			rowPtr[i] = m.rowPtr[m.rows]
		}
	default:
		rowPtr = make([]int, newRows+1)
		next := 0
		for i := 0; i < m.rows; i++ {
			for r := next; r <= rowPos[i]; r++ {
				rowPtr[r] = m.rowPtr[i]
			}
			next = rowPos[i] + 1
		}
		for r := next; r <= newRows; r++ {
			rowPtr[r] = m.rowPtr[m.rows]
		}
	}
	return &CSR[V]{rows: newRows, cols: newCols, rowPtr: rowPtr, colIdx: colIdx, val: m.val}, nil
}

func checkMonotone(pos []int, bound int, name string) error {
	for i, p := range pos {
		if p < 0 || p >= bound {
			return fmt.Errorf("sparse: Embed %s[%d]=%d out of range [0,%d)", name, i, p, bound)
		}
		if i > 0 && pos[i-1] >= p {
			return fmt.Errorf("sparse: Embed %s not strictly increasing at %d", name, i)
		}
	}
	return nil
}

// AppendRows stacks extra's rows below m's: the result is
// (m.Rows()+extra.Rows())×cols with m's rows first, unchanged. The
// column counts must match (widen with Embed first when a batch
// introduces new columns).
//
// When reuse is true the result grows m's backing slices with append
// semantics — amortized O(nnz(extra)) per call across an append chain,
// the storage shape of an append-only incidence log. Like Go's append,
// only the latest matrix of a chain may be extended further; earlier
// matrices in the chain stay valid reads (their prefixes are never
// rewritten). With reuse false the result is freshly allocated.
func AppendRows[V any](m, extra *CSR[V], reuse bool) (*CSR[V], error) {
	if m.cols != extra.cols {
		return nil, fmt.Errorf("sparse: AppendRows column mismatch %d vs %d", m.cols, extra.cols)
	}
	base := len(m.colIdx)
	var rowPtr []int
	var colIdx []int
	var val []V
	if reuse {
		rowPtr = grow(m.rowPtr, extra.rows)
		colIdx = grow(m.colIdx, len(extra.colIdx))
		val = grow(m.val, len(extra.val))
	} else {
		rowPtr = make([]int, m.rows+1, m.rows+extra.rows+1)
		copy(rowPtr, m.rowPtr)
		colIdx = make([]int, base, base+len(extra.colIdx))
		copy(colIdx, m.colIdx)
		val = make([]V, base, base+len(extra.val))
		copy(val, m.val)
	}
	for i := 1; i <= extra.rows; i++ {
		rowPtr = append(rowPtr, base+extra.rowPtr[i])
	}
	colIdx = append(colIdx, extra.colIdx...)
	val = append(val, extra.val...)
	return &CSR[V]{rows: m.rows + extra.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// AppendUnitRows appends n single-entry rows to m: row m.Rows()+i holds
// exactly one stored entry at column cols[i] with value vals[i] — the
// storage shape of an incidence log, where every edge row has one source
// (or target) entry (Definition I.4). It is the fused fast path of
// AppendRows for a batch whose columns are already resolved to positions:
// no delta CSR is built and nothing is validated beyond the column
// bounds.
//
// Reuse semantics match AppendRows: with reuse true m's backing grows
// with append semantics (only the latest matrix in a chain may be
// extended further; earlier matrices stay valid reads).
func AppendUnitRows[V any](m *CSR[V], cols []int, vals []V, reuse bool) (*CSR[V], error) {
	if len(cols) != len(vals) {
		return nil, fmt.Errorf("sparse: AppendUnitRows got %d columns, %d values", len(cols), len(vals))
	}
	for i, c := range cols {
		if c < 0 || c >= m.cols {
			return nil, fmt.Errorf("sparse: AppendUnitRows column %d at %d out of range [0,%d)", c, i, m.cols)
		}
	}
	n := len(cols)
	base := len(m.colIdx)
	var rowPtr, colIdx []int
	var val []V
	if reuse {
		rowPtr = grow(m.rowPtr, n)
		colIdx = grow(m.colIdx, n)
		val = grow(m.val, n)
	} else {
		rowPtr = make([]int, m.rows+1, m.rows+n+1)
		copy(rowPtr, m.rowPtr)
		colIdx = make([]int, base, base+n)
		copy(colIdx, m.colIdx)
		val = make([]V, base, base+n)
		copy(val, m.val)
	}
	for i := 0; i < n; i++ {
		rowPtr = append(rowPtr, base+i+1)
	}
	colIdx = append(colIdx, cols...)
	val = append(val, vals...)
	return &CSR[V]{rows: m.rows + n, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// grow returns s with capacity for at least n more elements, doubling
// on growth. Go's built-in append backs off to ~1.25x growth for large
// slices, which costs ~2.5x more copying across an append-only log's
// lifetime; an explicit doubling keeps the amortized copy at ~2 moves
// per element. (internal/keys uses the same policy for its key log.)
func grow[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	c := 2 * len(s)
	if c < len(s)+n {
		c = len(s) + n
	}
	out := make([]T, len(s), c)
	copy(out, s)
	return out
}

// MergeScratch recycles output backing across repeated EWiseAddInto
// calls — the double-buffer of an accumulator that is merged into
// thousands of times (internal/stream's overlay). A merge that cannot
// run in place steals the scratch slices for its result; Recycle
// donates a dead matrix's backing for the next merge. The zero value is
// ready to use.
type MergeScratch[V any] struct {
	rowPtr, colIdx []int
	val            []V
}

// Recycle donates m's backing to the scratch. The caller must own m
// exclusively — no snapshot, slice view, or append chain may still
// reference it — because the next merge will overwrite the storage.
func (s *MergeScratch[V]) Recycle(m *CSR[V]) {
	if m == nil {
		return
	}
	s.rowPtr = m.rowPtr[:0]
	s.colIdx = m.colIdx[:0]
	s.val = m.val[:0]
}

// take returns scratch-backed slices with the required row capacity,
// emptying the scratch (the result will own the backing).
func (s *MergeScratch[V]) take(rows int) (rowPtr, colIdx []int, val []V) {
	rowPtr, colIdx, val = s.rowPtr, s.colIdx[:0], s.val[:0]
	s.rowPtr, s.colIdx, s.val = nil, nil, nil
	if cap(rowPtr) < rows+1 {
		rowPtr = make([]int, rows+1)
	}
	rowPtr = rowPtr[:rows+1]
	rowPtr[0] = 0
	return rowPtr, colIdx, val
}

// EWiseAddInto computes dst ⊕= src over the union pattern, with dst's
// value on the left of every fold (dst holds the earlier contributions).
// Entries folding to the algebra's zero are pruned, matching EWiseAdd.
//
// When inPlace is true and src's pattern is a subset of dst's, the fold
// mutates dst's value buffer and returns dst itself — zero allocation,
// the steady-state path of delta maintenance where a delta touches only
// existing cells. Callers passing inPlace must own dst exclusively (no
// outstanding shared snapshots). In every other case a fresh exact-size
// matrix is returned and dst is left untouched; with a non-nil scratch
// the fresh matrix steals the scratch backing instead of allocating.
//
//adjlint:cow-writer
func EWiseAddInto[V any](dst, src *CSR[V], ops semiring.Ops[V], inPlace bool, scratch *MergeScratch[V]) (*CSR[V], error) {
	if err := sameShape(dst, src); err != nil {
		return nil, err
	}
	if len(src.colIdx) == 0 {
		return dst, nil
	}

	// Pass 1: union size and pattern-subset check in one merge sweep.
	subset := true
	unionNNZ := 0
	for i := 0; i < dst.rows; i++ {
		dc := dst.colIdx[dst.rowPtr[i]:dst.rowPtr[i+1]]
		sc := src.colIdx[src.rowPtr[i]:src.rowPtr[i+1]]
		p, q := 0, 0
		for p < len(dc) && q < len(sc) {
			switch {
			case dc[p] < sc[q]:
				p++
			case dc[p] > sc[q]:
				subset = false
				q++
			default:
				p++
				q++
			}
			unionNNZ++
		}
		if q < len(sc) {
			subset = false
		}
		unionNNZ += len(dc) - p + len(sc) - q
	}

	if inPlace && subset {
		zeros := 0
		for i := 0; i < dst.rows; i++ {
			lo := dst.rowPtr[i]
			dc := dst.colIdx[lo:dst.rowPtr[i+1]]
			p := 0
			for q := src.rowPtr[i]; q < src.rowPtr[i+1]; q++ {
				j := src.colIdx[q]
				for dc[p] < j {
					p++
				}
				s := ops.Add(dst.val[lo+p], src.val[q])
				if ops.IsZero(s) {
					zeros++
				}
				dst.val[lo+p] = s
				p++
			}
		}
		if zeros > 0 {
			return dst.Prune(ops.IsZero), nil
		}
		return dst, nil
	}

	var rowPtr, colIdx []int
	var val []V
	if scratch != nil {
		rowPtr, colIdx, val = scratch.take(dst.rows)
	} else {
		rowPtr = make([]int, dst.rows+1)
	}
	// growTo over-provisions recycled buffers by half (see pewise.go):
	// an accumulator's union size creeps up a little on almost every
	// merge, and exact-size reallocation turned every one of those
	// merges into a fresh allocation plus full copy.
	colIdx = growTo(colIdx, unionNNZ, scratch != nil)[:0]
	val = growTo(val, unionNNZ, scratch != nil)[:0]
	for i := 0; i < dst.rows; i++ {
		dlo, dhi := dst.rowPtr[i], dst.rowPtr[i+1]
		slo, shi := src.rowPtr[i], src.rowPtr[i+1]
		p, q := dlo, slo
		for p < dhi || q < shi {
			switch {
			case q >= shi || (p < dhi && dst.colIdx[p] < src.colIdx[q]):
				colIdx = append(colIdx, dst.colIdx[p])
				val = append(val, dst.val[p])
				p++
			case p >= dhi || src.colIdx[q] < dst.colIdx[p]:
				colIdx = append(colIdx, src.colIdx[q])
				val = append(val, src.val[q])
				q++
			default:
				s := ops.Add(dst.val[p], src.val[q])
				if !ops.IsZero(s) {
					colIdx = append(colIdx, dst.colIdx[p])
					val = append(val, s)
				}
				p++
				q++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR[V]{rows: dst.rows, cols: dst.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}
