package sparse

import (
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
)

func randomCSRFor(r *rand.Rand, rows, cols int, density float64) *CSR[float64] {
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.MustAppend(i, j, float64(r.Intn(9)-4)) // includes zero-sum material
			}
		}
	}
	return coo.ToCSR(nil)
}

func csrEqual(t *testing.T, got, want *CSR[float64], label string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() || got.NNZ() != want.NNZ() {
		t.Fatalf("%s: shape/nnz %dx%d/%d, want %dx%d/%d", label,
			got.Rows(), got.Cols(), got.NNZ(), want.Rows(), want.Cols(), want.NNZ())
	}
	for i := 0; i < want.Rows(); i++ {
		gc, gv := got.Row(i)
		wc, wv := want.Row(i)
		if len(gc) != len(wc) {
			t.Fatalf("%s: row %d length %d, want %d", label, i, len(gc), len(wc))
		}
		for p := range wc {
			if gc[p] != wc[p] || gv[p] != wv[p] {
				t.Fatalf("%s: row %d entry %d = (%d,%v), want (%d,%v)",
					label, i, p, gc[p], gv[p], wc[p], wv[p])
			}
		}
	}
}

// TestEWiseAddIntoParallelMatchesSerial differentially checks the
// span-parallel merge against the serial kernel over randomized
// operands, including value cancellations (2 + -2 prunes), skewed
// row masses, and the subset in-place path.
func TestEWiseAddIntoParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ops := semiring.PlusTimes()
	for trial := 0; trial < 60; trial++ {
		rows, cols := 1+r.Intn(40), 1+r.Intn(40)
		dst := randomCSRFor(r, rows, cols, 0.2)
		src := randomCSRFor(r, rows, cols, 0.15)
		want, err := EWiseAddInto(dst.Clone(), src, ops, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			got, err := EWiseAddIntoParallel(dst.Clone(), src, ops, false, nil, w)
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, got, want, "copy-merge")
		}
	}
}

func TestEWiseAddIntoParallelInPlaceSubset(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ops := semiring.PlusTimes()
	for trial := 0; trial < 40; trial++ {
		rows, cols := 1+r.Intn(30), 1+r.Intn(30)
		dst := randomCSRFor(r, rows, cols, 0.3)
		// src's pattern: random subset of dst's entries.
		coo := NewCOO[float64](rows, cols)
		dst.Iterate(func(i, j int, _ float64) {
			if r.Float64() < 0.5 {
				coo.MustAppend(i, j, float64(r.Intn(9)-4))
			}
		})
		src := coo.ToCSR(nil)
		want, err := EWiseAddInto(dst.Clone(), src, ops, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		in := dst.Clone()
		got, err := EWiseAddIntoParallel(in, src, ops, true, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		csrEqual(t, got, want, "in-place subset")
		if src.NNZ() > 0 && got.NNZ() == in.NNZ() && got != in && want.NNZ() == dst.NNZ() {
			t.Fatal("subset merge did not run in place")
		}
	}
}

// TestEWiseAddIntoParallelScratch checks the scratch-recycled path and
// that results never alias the inputs' storage when a copy is made.
func TestEWiseAddIntoParallelScratch(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ops := semiring.PlusTimes()
	var scratch MergeScratch[float64]
	acc := randomCSRFor(r, 50, 50, 0.1)
	for round := 0; round < 20; round++ {
		src := randomCSRFor(r, 50, 50, 0.05)
		want, err := EWiseAddInto(acc.Clone(), src, ops, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		next, err := EWiseAddIntoParallel(acc, src, ops, false, &scratch, 3)
		if err != nil {
			t.Fatal(err)
		}
		csrEqual(t, next, want, "scratch round")
		scratch.Recycle(acc)
		acc = next
	}
}

// TestMulParallelOptFloor verifies the serial-fallback threshold: a
// tiny product under the floor must produce the identical result
// through the serial kernel, and a disabled floor must too (both are
// differentially checked; the fallback itself is observable only as
// the absence of goroutine overhead, covered by the bench ablation).
func TestMulParallelOptFloor(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	ops := semiring.PlusTimes()
	a := randomCSRFor(r, 20, 20, 0.2)
	b := randomCSRFor(r, 20, 20, 0.2)
	want, err := MulTwoPhase(a, b, ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, floor := range []int64{0, -1, 1, 1 << 40} {
		got, err := MulParallelOpt(a, b, ops, 4, 0, floor)
		if err != nil {
			t.Fatal(err)
		}
		csrEqual(t, got, want, "flop floor")
	}
}
