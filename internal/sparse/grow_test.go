package sparse

import (
	"math/rand"
	"testing"

	"adjarray/internal/semiring"
)

func randomCSRGrow(r *rand.Rand, rows, cols int, density float64) *CSR[float64] {
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.MustAppend(i, j, float64(r.Intn(9)+1))
			}
		}
	}
	return coo.ToCSR(nil)
}

func TestEmbedIdentitySharing(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randomCSRGrow(r, 5, 7, 0.3)
	// Pure widening: same rows, more cols — shares everything.
	w, err := Embed(m, nil, nil, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 5 || w.Cols() != 12 || w.NNZ() != m.NNZ() {
		t.Fatalf("widen: %d×%d nnz %d", w.Rows(), w.Cols(), w.NNZ())
	}
	m.Iterate(func(i, j int, v float64) {
		if got, ok := w.At(i, j); !ok || got != v {
			t.Fatalf("widen lost (%d,%d)", i, j)
		}
	})
	// Row extension: new trailing empty rows.
	e, err := Embed(m, nil, nil, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 9 || e.RowNNZ(8) != 0 || e.NNZ() != m.NNZ() {
		t.Fatalf("extend: rows %d nnz %d", e.Rows(), e.NNZ())
	}
}

func TestEmbedScatterMatchesManual(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := randomCSRGrow(r, rows, cols, 0.4)
		newRows, newCols := rows+r.Intn(5), cols+r.Intn(5)
		rowPos := pickPositions(r, rows, newRows)
		colPos := pickPositions(r, cols, newCols)
		got, err := Embed(m, rowPos, colPos, newRows, newCols)
		if err != nil {
			t.Fatal(err)
		}
		want := NewCOO[float64](newRows, newCols)
		m.Iterate(func(i, j int, v float64) {
			want.MustAppend(rowPos[i], colPos[j], v)
		})
		if !Equal(got, want.ToCSR(nil), func(a, b float64) bool { return a == b }) {
			t.Fatalf("trial %d: scatter mismatch", trial)
		}
	}
}

// pickPositions draws a strictly increasing map [0,n) → [0,newN).
func pickPositions(r *rand.Rand, n, newN int) []int {
	perm := r.Perm(newN)[:n]
	pos := append([]int(nil), perm...)
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && pos[j-1] > pos[j]; j-- {
			pos[j-1], pos[j] = pos[j], pos[j-1]
		}
	}
	return pos
}

func TestEmbedRejectsBadPositions(t *testing.T) {
	m := randomCSRGrow(rand.New(rand.NewSource(3)), 3, 3, 0.5)
	if _, err := Embed(m, []int{0, 1}, nil, 4, 3); err == nil {
		t.Error("short rowPos accepted")
	}
	if _, err := Embed(m, []int{2, 1, 0}, nil, 4, 3); err == nil {
		t.Error("non-monotone rowPos accepted")
	}
	if _, err := Embed(m, []int{0, 1, 5}, nil, 4, 3); err == nil {
		t.Error("out-of-range rowPos accepted")
	}
	if _, err := Embed(m, nil, nil, 2, 3); err == nil {
		t.Error("row shrink accepted")
	}
}

func TestAppendRowsStacksAndChains(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	base := randomCSRGrow(r, 4, 6, 0.4)
	for _, reuse := range []bool{false, true} {
		m := base.Clone()
		snapshots := []*CSR[float64]{m}
		for step := 0; step < 5; step++ {
			extra := randomCSRGrow(r, 1+r.Intn(3), 6, 0.5)
			grown, err := AppendRows(m, extra, reuse)
			if err != nil {
				t.Fatal(err)
			}
			// Oracle: rebuild by concatenating triples.
			want := NewCOO[float64](m.Rows()+extra.Rows(), 6)
			m.Iterate(func(i, j int, v float64) { want.MustAppend(i, j, v) })
			extra.Iterate(func(i, j int, v float64) { want.MustAppend(m.Rows()+i, j, v) })
			if !Equal(grown, want.ToCSR(nil), func(a, b float64) bool { return a == b }) {
				t.Fatalf("reuse=%v step %d: append mismatch", reuse, step)
			}
			m = grown
			snapshots = append(snapshots, grown)
		}
		// Earlier matrices in the chain must still read their own prefix.
		for s, snap := range snapshots {
			snap.Iterate(func(i, j int, v float64) {
				if got, ok := m.At(i, j); !ok || got != v {
					t.Fatalf("reuse=%v: snapshot %d entry (%d,%d) diverged", reuse, s, i, j)
				}
			})
		}
	}
}

func TestAppendRowsRejectsColumnMismatch(t *testing.T) {
	a := Empty[float64](2, 3)
	b := Empty[float64](2, 4)
	if _, err := AppendRows(a, b, false); err == nil {
		t.Error("column mismatch accepted")
	}
}

func TestEWiseAddIntoMatchesEWiseAdd(t *testing.T) {
	ops := semiring.PlusTimes()
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		dst := randomCSRGrow(r, rows, cols, 0.3)
		src := randomCSRGrow(r, rows, cols, 0.2)
		want, err := EWiseAdd(dst, src, ops)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EWiseAddInto(dst.Clone(), src, ops, trial%2 == 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want, func(a, b float64) bool { return a == b }) {
			t.Fatalf("trial %d: merge mismatch", trial)
		}
	}
}

func TestEWiseAddIntoInPlaceSubset(t *testing.T) {
	ops := semiring.PlusTimes()
	// src pattern ⊆ dst pattern → in-place fold returns dst itself.
	dst := NewCOO[float64](2, 4)
	dst.MustAppend(0, 1, 1)
	dst.MustAppend(0, 3, 2)
	dst.MustAppend(1, 0, 3)
	d := dst.ToCSR(nil)
	src := NewCOO[float64](2, 4)
	src.MustAppend(0, 3, 10)
	s := src.ToCSR(nil)
	got, err := EWiseAddInto(d, s, ops, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Error("subset in-place merge should return dst")
	}
	if v, _ := got.At(0, 3); v != 12 {
		t.Errorf("fold = %v", v)
	}
	// Non-subset src must leave dst untouched even with inPlace.
	src2 := NewCOO[float64](2, 4)
	src2.MustAppend(1, 2, 5)
	before := d.Clone()
	got2, err := EWiseAddInto(d, src2.ToCSR(nil), ops, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got2 == d {
		t.Error("non-subset merge must allocate")
	}
	if !Equal(d, before, func(a, b float64) bool { return a == b }) {
		t.Error("dst mutated on the allocating path")
	}
	// Empty src returns dst unchanged.
	if got3, _ := EWiseAddInto(d, Empty[float64](2, 4), ops, false, nil); got3 != d {
		t.Error("empty src should return dst")
	}
}

func TestEWiseAddIntoPrunesZeroFolds(t *testing.T) {
	// Signed +.* : 2 ⊕ −2 folds to zero and must be pruned on both paths.
	ops := semiring.PlusTimes()
	mk := func() *CSR[float64] {
		c := NewCOO[float64](1, 3)
		c.MustAppend(0, 0, 2)
		c.MustAppend(0, 2, 1)
		return c.ToCSR(nil)
	}
	src := NewCOO[float64](1, 3)
	src.MustAppend(0, 0, -2)
	s := src.ToCSR(nil)
	for _, inPlace := range []bool{false, true} {
		got, err := EWiseAddInto(mk(), s, ops, inPlace, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != 1 {
			t.Errorf("inPlace=%v: zero fold kept, nnz=%d", inPlace, got.NNZ())
		}
		if _, ok := got.At(0, 0); ok {
			t.Errorf("inPlace=%v: pruned entry still present", inPlace)
		}
	}
}

func TestAppendUnitRowsMatchesAppendRows(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, reuse := range []bool{false, true} {
		m := randomCSRGrow(r, 4, 6, 0.4)
		oracle := m.Clone()
		for step := 0; step < 5; step++ {
			n := 1 + r.Intn(4)
			cols := make([]int, n)
			vals := make([]float64, n)
			rowPtr := make([]int, n+1)
			for i := 0; i < n; i++ {
				cols[i] = r.Intn(6)
				vals[i] = float64(r.Intn(9) + 1)
				rowPtr[i+1] = i + 1
			}
			grown, err := AppendUnitRows(m, cols, vals, reuse)
			if err != nil {
				t.Fatal(err)
			}
			// Oracle: the same rows stacked through the general path.
			extra, err := NewCSR(n, 6, rowPtr, cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			want, err := AppendRows(oracle, extra, false)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(grown, want, func(a, b float64) bool { return a == b }) {
				t.Fatalf("reuse=%v step %d: unit append mismatch", reuse, step)
			}
			m, oracle = grown, want
		}
	}
}

func TestAppendUnitRowsValidates(t *testing.T) {
	m := Empty[float64](2, 3)
	if _, err := AppendUnitRows(m, []int{0, 1}, []float64{1}, false); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AppendUnitRows(m, []int{3}, []float64{1}, false); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := AppendUnitRows(m, []int{-1}, []float64{1}, false); err == nil {
		t.Error("negative column accepted")
	}
}
