package sparse

import (
	"reflect"
	"sync"
)

// Kernel scratch pooling. The two-phase SpGEMM engine needs O(cols)
// scratch per worker — a stamp array for the symbolic pass, a value
// accumulator for the numeric pass. Allocating that per Mul call is
// invisible for one-shot batch construction but dominates steady-state
// allocation when multiplications run continuously (the stream
// materialize fold, per-batch partial products, bench loops). The
// pools here make repeated kernels allocation-free once warm.
//
// Safety: a pooled stamp array carries stale stamps from earlier calls,
// so each box carries its own monotone `current` counter — a stamp is
// only ever compared against the box's counter, never trusted
// absolutely, so stale contents are indistinguishable from zeroed ones.
// Value accumulators likewise hold stale values, which are only read
// at slots whose stamp matches the current row — the same invariant the
// non-pooled kernels already relied on between rows of one call.
// Boxes are returned to the pool only after the kernel's output has
// been fully written to its own storage, so no pooled buffer is ever
// reachable from a result.

// stampBox is the symbolic SPA scratch: type-independent, one shared
// pool for every value-type instantiation.
type stampBox struct {
	stamp   []int
	current int
	touched []int
}

var stampPool = sync.Pool{New: func() any { return new(stampBox) }}

// getStampBox returns a stamp box with room for `cols` columns. Growth
// resets current: a fresh array is all zeros, and starting current at 0
// with a pre-increment on first use keeps stamps strictly positive.
// Ownership transfers to the caller; releaseKernelScratch is the paired
// Put.
//
//adjlint:pool-transfer
func getStampBox(cols int) *stampBox {
	b := stampPool.Get().(*stampBox)
	if cap(b.stamp) < cols {
		b.stamp = make([]int, cols)
		b.current = 0
	}
	b.stamp = b.stamp[:cols]
	return b
}

func putStampBox(b *stampBox) {
	if b != nil {
		stampPool.Put(b)
	}
}

// accBox is the numeric accumulator scratch, pooled per value type via
// valuePools (package-level generic vars are impossible; a sync.Map
// keyed by reflect.Type costs one lookup per Mul call, amortized over
// the whole multiplication).
type accBox[V any] struct {
	acc []V
}

var valuePools sync.Map // reflect.Type → *sync.Pool of *accBox[V]

func accPoolFor[V any]() *sync.Pool {
	t := reflect.TypeOf((*V)(nil))
	if p, ok := valuePools.Load(t); ok {
		return p.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any { return new(accBox[V]) }}
	actual, _ := valuePools.LoadOrStore(t, p)
	return actual.(*sync.Pool)
}

// getAccBox hands the box to the caller; releaseKernelScratch returns
// it.
//
//adjlint:pool-transfer
func getAccBox[V any](pool *sync.Pool, cols int) *accBox[V] {
	b := pool.Get().(*accBox[V])
	if cap(b.acc) < cols {
		b.acc = make([]V, cols)
	}
	b.acc = b.acc[:cols]
	return b
}

// pooledSym assembles a symbolicSPA view over a pooled stamp box.
func pooledSym(b *stampBox) *symbolicSPA {
	return &symbolicSPA{stamp: b.stamp, current: b.current}
}

// pooledSPA assembles a numeric spa over a pooled stamp box and value
// box, continuing the box's stamp counter (the symbolic pass already
// advanced it; continuing rather than restarting keeps every stamp
// comparison unambiguous).
func pooledSPA[V any](sb *stampBox, vb *accBox[V]) *spa[V] {
	return &spa[V]{acc: vb.acc, stamp: sb.stamp, current: sb.current, touched: sb.touched[:0]}
}

// releaseKernelScratch returns the boxes to their pools, saving the
// advanced stamp counter and the touched backing for reuse.
func releaseKernelScratch[V any](pool *sync.Pool, sb *stampBox, s *spa[V], vb *accBox[V]) {
	if s != nil {
		sb.current = s.current
		sb.touched = s.touched[:0]
		if vb != nil {
			vb.acc = s.acc
		}
	}
	if vb != nil {
		pool.Put(vb)
	}
	putStampBox(sb)
}

// int64Box pools the per-row flop prefix arrays of the flop-balanced
// scheduler.
type int64Box struct{ xs []int64 }

var int64Pool = sync.Pool{New: func() any { return new(int64Box) }}

// getInt64 hands the box to the caller; putInt64 is the paired Put.
//
//adjlint:pool-transfer
func getInt64(n int) *int64Box {
	b := int64Pool.Get().(*int64Box)
	if cap(b.xs) < n {
		b.xs = make([]int64, n)
	}
	b.xs = b.xs[:n]
	return b
}

func putInt64(b *int64Box) { int64Pool.Put(b) }
