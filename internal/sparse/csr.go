// Package sparse provides the hand-rolled sparse-matrix kernels the
// library is built on: CSR storage generic over the value type, COO
// construction, transpose, sub-matrix extraction, element-wise merges,
// and several SpGEMM (sparse × sparse multiply) variants, serial and
// parallel.
//
// Go has no sparse linear-algebra ecosystem, so these kernels are
// written from scratch in the style of the GraphBLAS reference
// implementations. One departure from textbook SpGEMM matters for this
// paper: ⊕ is NOT assumed associative or commutative, so every variant
// folds the contributions to an output entry strictly in ascending
// inner-key (k) order — the ordered ⊕ over k ∈ K of Definition I.3.
// All variants therefore produce identical results even for
// order-sensitive ⊕ operations.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix over values of type V. Column
// indices within each row are strictly increasing. Stored entries are
// conventionally non-zero under the governing algebra, but CSR itself
// does not interpret values; use Prune to drop explicit zeros.
//
// The zero value is an empty 0×0 matrix. CSR values are immutable by
// convention once built; all methods return new matrices. Snapshot
// layers alias these slices, so in-place element writes are restricted
// to the annotated builder/merge writers.
//
//adjlint:cow
type CSR[V any] struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []V   // len nnz
}

// NewCSR assembles a CSR from raw components, validating the structural
// invariants (monotone rowPtr, in-bounds strictly-increasing columns).
// The slices are retained, not copied.
func NewCSR[V any](rows, cols int, rowPtr, colIdx []int, val []V) (*CSR[V], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %d×%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: rowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	m := &CSR[V]{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Empty returns an all-zero rows×cols matrix.
func Empty[V any](rows, cols int) *CSR[V] {
	return &CSR[V]{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
}

// Rows returns the number of rows.
func (m *CSR[V]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR[V]) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR[V]) NNZ() int { return len(m.colIdx) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR[V]) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// Row returns the column indices and values of row i as sub-slice views
// into the matrix storage. Callers must not mutate them.
func (m *CSR[V]) Row(i int) (cols []int, vals []V) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// At returns the stored value at (i, j) and whether an entry exists.
func (m *CSR[V]) At(i, j int) (V, bool) {
	var zero V
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return zero, false
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	p := sort.SearchInts(cols, j)
	if p < len(cols) && cols[p] == j {
		return m.val[lo+p], true
	}
	return zero, false
}

// Iterate calls fn for every stored entry in row-major order.
func (m *CSR[V]) Iterate(fn func(i, j int, v V)) {
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			fn(i, m.colIdx[p], m.val[p])
		}
	}
}

// IterateUntil visits stored entries in row-major order until fn
// returns false, and reports whether the sweep ran to completion.
// Unlike Iterate it never touches entries past the stop point, so a
// bounded scan over a large matrix is O(visited), not O(nnz).
func (m *CSR[V]) IterateUntil(fn func(i, j int, v V) bool) bool {
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if !fn(i, m.colIdx[p], m.val[p]) {
				return false
			}
		}
	}
	return true
}

// Clone deep-copies the matrix.
func (m *CSR[V]) Clone() *CSR[V] {
	out := &CSR[V]{rows: m.rows, cols: m.cols,
		rowPtr: make([]int, len(m.rowPtr)),
		colIdx: make([]int, len(m.colIdx)),
		val:    make([]V, len(m.val))}
	copy(out.rowPtr, m.rowPtr)
	copy(out.colIdx, m.colIdx)
	copy(out.val, m.val)
	return out
}

// Map applies fn to every stored value, preserving the pattern. The
// writes land on a fresh Clone, never the receiver.
//
//adjlint:cow-writer
func (m *CSR[V]) Map(fn func(i, j int, v V) V) *CSR[V] {
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		for p := out.rowPtr[i]; p < out.rowPtr[i+1]; p++ {
			out.val[p] = fn(i, out.colIdx[p], out.val[p])
		}
	}
	return out
}

// Prune drops stored entries for which isZero reports true, producing a
// matrix whose explicit pattern matches its algebraic support.
func (m *CSR[V]) Prune(isZero func(V) bool) *CSR[V] {
	rowPtr := make([]int, m.rows+1)
	colIdx := make([]int, 0, len(m.colIdx))
	val := make([]V, 0, len(m.val))
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if !isZero(m.val[p]) {
				colIdx = append(colIdx, m.colIdx[p])
				val = append(val, m.val[p])
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR[V]{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Transpose returns mᵀ using a counting sort over columns: O(nnz + cols).
// This is the paper's Definition I.2 at the storage level.
func (m *CSR[V]) Transpose() *CSR[V] {
	rowPtr := make([]int, m.cols+1)
	for _, j := range m.colIdx {
		rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, len(m.colIdx))
	val := make([]V, len(m.val))
	next := make([]int, m.cols)
	copy(next, rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := m.colIdx[p]
			q := next[j]
			next[j]++
			colIdx[q] = i
			val[q] = m.val[p]
		}
	}
	return &CSR[V]{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// ExtractRows returns the sub-matrix consisting of the given rows (in
// the given order, which need not be sorted). Row indices must be in
// range.
func (m *CSR[V]) ExtractRows(rows []int) (*CSR[V], error) {
	rowPtr := make([]int, len(rows)+1)
	nnz := 0
	for _, i := range rows {
		if i < 0 || i >= m.rows {
			return nil, fmt.Errorf("sparse: row %d out of range [0,%d)", i, m.rows)
		}
		nnz += m.RowNNZ(i)
	}
	colIdx := make([]int, 0, nnz)
	val := make([]V, 0, nnz)
	for r, i := range rows {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		colIdx = append(colIdx, m.colIdx[lo:hi]...)
		val = append(val, m.val[lo:hi]...)
		rowPtr[r+1] = len(colIdx)
	}
	return &CSR[V]{rows: len(rows), cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// ExtractCols returns the sub-matrix consisting of the given columns,
// renumbered 0..len(cols)-1 in the given order. cols must be strictly
// increasing (keeping per-row column order intact without a sort).
func (m *CSR[V]) ExtractCols(cols []int) (*CSR[V], error) {
	// Dense []int remap (-1 = dropped) instead of a hash map: the remap
	// sits on the key-alignment hot path and a flat array lookup per
	// stored entry is a constant-factor win over map access.
	remap := make([]int, m.cols)
	for j := range remap {
		remap[j] = -1
	}
	for n, j := range cols {
		if j < 0 || j >= m.cols {
			return nil, fmt.Errorf("sparse: column %d out of range [0,%d)", j, m.cols)
		}
		if n > 0 && cols[n-1] >= j {
			return nil, fmt.Errorf("sparse: ExtractCols indices must be strictly increasing")
		}
		remap[j] = n
	}
	rowPtr := make([]int, m.rows+1)
	var colIdx []int
	var val []V
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if n := remap[m.colIdx[p]]; n >= 0 {
				colIdx = append(colIdx, n)
				val = append(val, m.val[p])
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR[V]{rows: m.rows, cols: len(cols), rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// Equal reports whether two matrices have identical dimensions, pattern,
// and values under eq.
func Equal[V any](a, b *CSR[V], eq func(V, V) bool) bool {
	if a.rows != b.rows || a.cols != b.cols || len(a.colIdx) != len(b.colIdx) {
		return false
	}
	for i := 0; i <= a.rows; i++ {
		if a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for p := range a.colIdx {
		if a.colIdx[p] != b.colIdx[p] || !eq(a.val[p], b.val[p]) {
			return false
		}
	}
	return true
}

// SamePattern reports whether two matrices have identical dimensions and
// non-zero structure, ignoring values. This is the paper's observation
// that "the pattern of edges resulting from array multiplication is
// generally preserved for various semirings".
func SamePattern[V, W any](a *CSR[V], b *CSR[W]) bool {
	if a.rows != b.rows || a.cols != b.cols || len(a.colIdx) != len(b.colIdx) {
		return false
	}
	for i := 0; i <= a.rows; i++ {
		if a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for p := range a.colIdx {
		if a.colIdx[p] != b.colIdx[p] {
			return false
		}
	}
	return true
}

// ToDense expands the matrix into a dense row-major [][]V with zero for
// missing entries.
func (m *CSR[V]) ToDense(zero V) [][]V {
	out := make([][]V, m.rows)
	for i := range out {
		row := make([]V, m.cols)
		for j := range row {
			row[j] = zero
		}
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			row[m.colIdx[p]] = m.val[p]
		}
		out[i] = row
	}
	return out
}
