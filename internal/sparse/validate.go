package sparse

import "fmt"

// Validate re-checks the CSR structural invariants on an existing
// matrix: consistent slice lengths, monotone row pointers, and in-bounds
// strictly-increasing column indices per row. NewCSR enforces these at
// assembly time; Validate lets downstream consumers (the conformance
// harness, debug assertions) verify that a kernel's OUTPUT still honors
// them — a corrupted structure can make two matrices compare equal
// entry-wise while misbehaving under iteration or further multiplication.
func (m *CSR[V]) Validate() error {
	if m.rows < 0 || m.cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %d×%d", m.rows, m.cols)
	}
	if len(m.rowPtr) != m.rows+1 {
		return fmt.Errorf("sparse: rowPtr length %d, want %d", len(m.rowPtr), m.rows+1)
	}
	if m.rowPtr[0] != 0 || m.rowPtr[m.rows] != len(m.colIdx) || len(m.colIdx) != len(m.val) {
		return fmt.Errorf("sparse: inconsistent nnz: rowPtr[0]=%d rowPtr[end]=%d colIdx=%d val=%d",
			m.rowPtr[0], m.rowPtr[m.rows], len(m.colIdx), len(m.val))
	}
	// Monotonicity first, in full: the entry scan below indexes colIdx
	// through rowPtr windows, which is only safe once every window is
	// known to lie inside [0, nnz].
	for i := 0; i < m.rows; i++ {
		if m.rowPtr[i] > m.rowPtr[i+1] {
			return fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
	}
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if m.colIdx[p] < 0 || m.colIdx[p] >= m.cols {
				return fmt.Errorf("sparse: column %d out of range [0,%d) at row %d", m.colIdx[p], m.cols, i)
			}
			if p > m.rowPtr[i] && m.colIdx[p-1] >= m.colIdx[p] {
				return fmt.Errorf("sparse: columns not strictly increasing in row %d", i)
			}
		}
	}
	return nil
}
