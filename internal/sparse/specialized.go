package sparse

import (
	"adjarray/internal/semiring"
)

// Specialized monomorphic kernels for built-in scalar operator pairs.
//
// The generic kernels reach ⊕ and ⊗ through the closure fields of
// semiring.Ops — an indirect call per flop that Go cannot devirtualize
// (gcshape stenciling dispatches generic method calls through a
// dictionary, so a type-parameter "algebra" does not help either; this
// was measured, not assumed). For the canonical arithmetic pair +.*
// over float64 — the production default for adjacency construction —
// the numeric row below inlines the arithmetic, which speeds the whole
// multiplication up several-fold.
//
// Correctness contract: a specialized row must be BIT-IDENTICAL to the
// generic numericRow for its pair — same ascending-k fold order, same
// pruning rule. For +.*: Add is IEEE +, Mul is IEEE ×, and
// IsZero(v) = value.Float64Equal(v, 0) reduces to v == 0 (NaN is never
// equal to 0 and 0 is not NaN). The dispatch is keyed on the
// semiring.ScalarKernel hint, which only the semiring package's own
// constructors can set — never on the display name.
//
// The symbolic phase needs no specialization: it is value-free, so its
// float64 instantiation already contains no indirect calls.

// numericRowFunc is the per-row numeric-phase kernel signature shared
// by the generic and specialized implementations. Selecting the row
// function once per multiplication costs one indirect call per row —
// amortized over the row's flops — instead of two per flop.
type numericRowFunc[V any] func(a, b *CSR[V], ops semiring.Ops[V], i int, s *spa[V], dstCol []int, dstVal []V) int

// numericRowFor returns the numeric-phase row kernel for ops:
// a monomorphic specialization when the pair carries a kernel hint and
// V matches, the generic closure-calling row otherwise.
func numericRowFor[V any](ops semiring.Ops[V]) numericRowFunc[V] {
	if ops.Kernel() == semiring.KernelPlusTimesF64 {
		if fn, ok := any(numericRowFunc[float64](numericRowPlusTimesF64)).(numericRowFunc[V]); ok {
			return fn
		}
	}
	return numericRow[V]
}

// numericRowPlusTimesF64 is numericRow monomorphized for +.* over
// float64: acc[j] += av*bv with v != 0 pruning, arithmetic fully
// inlined. Fold order and emission are identical to the generic path.
func numericRowPlusTimesF64(a, b *CSR[float64], _ semiring.Ops[float64], i int, s *spa[float64], dstCol []int, dstVal []float64) int {
	if lo, hi := a.rowPtr[i], a.rowPtr[i+1]; hi-lo == 1 {
		// Single inner key: av × (row k of b), already column-sorted.
		k := a.colIdx[lo]
		av := a.val[lo]
		n := 0
		for q := b.rowPtr[k]; q < b.rowPtr[k+1]; q++ {
			if v := av * b.val[q]; v != 0 {
				dstCol[n] = b.colIdx[q]
				dstVal[n] = v
				n++
			}
		}
		return n
	}
	s.current++
	s.touched = s.touched[:0]
	bPtr, bCol, bVal := b.rowPtr, b.colIdx, b.val
	acc, stamp, cur := s.acc, s.stamp, s.current
	touched := s.touched
	minJ, maxJ := -1, -1
	for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ { // ascending k: Definition I.3 fold order
		k := a.colIdx[p]
		av := a.val[p]
		for q := bPtr[k]; q < bPtr[k+1]; q++ {
			j := bCol[q]
			prod := av * bVal[q]
			if stamp[j] != cur {
				stamp[j] = cur
				acc[j] = prod
				touched = append(touched, j)
				if minJ < 0 || j < minJ {
					minJ = j
				}
				if j > maxJ {
					maxJ = j
				}
			} else {
				acc[j] += prod
			}
		}
	}
	s.touched = touched
	t := len(touched)
	if t == 0 {
		return 0
	}
	n := 0
	if t > 1 && scanBeatsSort(maxJ-minJ+1, t) {
		for j := minJ; j <= maxJ; j++ {
			if stamp[j] == cur {
				if v := acc[j]; v != 0 {
					dstCol[n] = j
					dstVal[n] = v
					n++
				}
			}
		}
		return n
	}
	sortTouched(touched)
	for _, j := range touched {
		if v := acc[j]; v != 0 {
			dstCol[n] = j
			dstVal[n] = v
			n++
		}
	}
	return n
}
