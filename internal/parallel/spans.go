package parallel

import (
	"sort"
	"sync"
)

// Flop-balanced span scheduling. Splitting n rows evenly across workers
// loads each worker with the same number of ROWS, but SpGEMM work per
// row is its flop count — and under the R-MAT skew of real workloads a
// handful of hub rows carry most of the flops, so even-row splitting
// leaves all but one worker idle. BalancedSpans instead cuts the prefix
// sum of per-row work at equal-work targets, so every span carries
// roughly total/spans units regardless of how rows are skewed.

// BalancedSpans partitions [0, n) (n = len(prefix)-1) into at most
// `spans` contiguous spans of roughly equal weight. prefix is the
// inclusive prefix-sum of per-index weights: prefix[0] = 0 and
// prefix[i+1]-prefix[i] is the weight of index i (non-decreasing).
//
// The result b has len(b) = spans+1 with b[0] = 0 and b[spans] = n;
// span s covers [b[s], b[s+1]) (possibly empty when a single index
// outweighs the target — a span is never split mid-index). Boundary s
// is the smallest i with prefix[i] ≥ total·s/spans, found by binary
// search, so the whole partition costs O(spans·log n).
func BalancedSpans(prefix []int64, spans int) []int {
	n := len(prefix) - 1
	if spans < 1 {
		spans = 1
	}
	b := make([]int, spans+1)
	b[spans] = n
	if n <= 0 || spans == 1 {
		return b
	}
	total := prefix[n]
	if total <= 0 {
		// Zero total weight: fall back to even index split so callers
		// still get a valid (if arbitrary) partition.
		for s := 1; s < spans; s++ {
			b[s] = n * s / spans
		}
		return b
	}
	for s := 1; s < spans; s++ {
		// Target cumulative weight for the first s spans; computed as
		// total/spans·s with the division last to avoid overflow for
		// large totals (total ≤ 2^63/spans in any realistic workload).
		target := total / int64(spans) * int64(s)
		i := sort.Search(n, func(i int) bool { return prefix[i] >= target })
		if i < b[s-1] {
			i = b[s-1] // keep boundaries monotone
		}
		b[s] = i
	}
	return b
}

// ForSpans runs fn over the spans of a BalancedSpans partition, one
// goroutine per non-empty span, exposing the span index as a stable
// worker identity (each span is owned by exactly one goroutine, so fn
// may touch span-indexed state without locking). Blocks until all spans
// finish. With one non-empty span it degrades to a plain call.
func ForSpans(bounds []int, fn func(span, lo, hi int)) {
	live := 0
	lastS := -1
	for s := 0; s+1 < len(bounds); s++ {
		if bounds[s] < bounds[s+1] {
			live++
			lastS = s
		}
	}
	if live == 0 {
		return
	}
	if live == 1 {
		fn(lastS, bounds[lastS], bounds[lastS+1])
		return
	}
	var wg sync.WaitGroup
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}
