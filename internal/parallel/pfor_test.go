package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		req, n, want int
	}{
		{4, 100, 4},
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{8, 3, 3},
		{8, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.req, c.n); got != c.want {
			t.Errorf("Workers(%d,%d) = %d, want %d", c.req, c.n, got, c.want)
		}
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("For should not invoke fn for n <= 0")
	}
}

func TestForSequentialFallback(t *testing.T) {
	var calls int
	For(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("sequential path got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("sequential path called %d times", calls)
	}
}

func TestForGrainCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, grain := range []int{1, 3, 17, 1000, 5000} {
		n := 997 // prime, exercises ragged final chunk
		hits := make([]int32, n)
		ForGrain(n, 4, grain, func(lo, hi int) {
			if hi <= lo {
				t.Fatalf("empty range [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("grain=%d: index %d hit %d times", grain, i, h)
			}
		}
	}
}

func TestForGrainDegenerateInputs(t *testing.T) {
	ForGrain(0, 4, 10, func(lo, hi int) { t.Error("fn called for n=0") })
	hits := make([]int32, 5)
	ForGrain(5, 4, 0, func(lo, hi int) { // grain < 1 is clamped to 1
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

// Property: regardless of worker count and grain, the union of ranges
// is a partition of [0, n).
func TestPartitionProperty(t *testing.T) {
	f := func(nRaw uint16, wRaw, gRaw uint8) bool {
		n := int(nRaw % 2000)
		workers := int(wRaw%8) + 1
		grain := int(gRaw%64) + 1
		var total int64
		ForGrain(n, workers, grain, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(max(n, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ForGrainWorker: every index covered exactly once, worker ids stay in
// [0, workers), and each worker id is owned by a single goroutine at a
// time — the contract that lets kernels touch worker-indexed scratch
// without locking. Ownership is checked with per-worker in-flight
// counters: a task observing its worker id already in flight means two
// goroutines shared the id concurrently.
func TestForGrainWorkerCoverageAndOwnership(t *testing.T) {
	for _, cfg := range [][3]int{{100, 4, 3}, {7, 16, 1}, {1000, 3, 17}, {5, 1, 2}} {
		n, workers, grain := cfg[0], cfg[1], cfg[2]
		covered := make([]int32, n)
		inflight := make([]int32, workers)
		ForGrainWorker(n, workers, grain, func(worker, lo, hi int) {
			if worker < 0 || worker >= workers {
				t.Errorf("worker id %d out of range", worker)
				return
			}
			if atomic.AddInt32(&inflight[worker], 1) != 1 {
				t.Errorf("worker id %d entered concurrently by two goroutines", worker)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
			atomic.AddInt32(&inflight[worker], -1)
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d workers=%d grain=%d: index %d covered %d times", n, workers, grain, i, c)
			}
		}
	}
}
