package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func prefixOf(w []int64) []int64 {
	p := make([]int64, len(w)+1)
	for i, x := range w {
		p[i+1] = p[i] + x
	}
	return p
}

func checkPartition(t *testing.T, b []int, n, spans int) {
	t.Helper()
	if len(b) != spans+1 {
		t.Fatalf("len(bounds)=%d, want %d", len(b), spans+1)
	}
	if b[0] != 0 || b[spans] != n {
		t.Fatalf("bounds endpoints %d..%d, want 0..%d", b[0], b[spans], n)
	}
	for s := 1; s <= spans; s++ {
		if b[s] < b[s-1] {
			t.Fatalf("bounds not monotone at %d: %v", s, b)
		}
	}
}

func TestBalancedSpansUniform(t *testing.T) {
	w := make([]int64, 100)
	for i := range w {
		w[i] = 7
	}
	b := BalancedSpans(prefixOf(w), 4)
	checkPartition(t, b, 100, 4)
	for s := 0; s < 4; s++ {
		if size := b[s+1] - b[s]; size < 20 || size > 30 {
			t.Fatalf("uniform weights split unevenly: %v", b)
		}
	}
}

// TestBalancedSpansSkew is the R-MAT-shaped case even-row splitting
// loses: one hub row carries half the total work. The hub's span may be
// heavy (spans never split an index), but the REMAINING work must still
// spread across the other spans instead of piling onto the hub's
// neighbors.
func TestBalancedSpansSkew(t *testing.T) {
	w := make([]int64, 1000)
	for i := range w {
		w[i] = 1
	}
	w[0] = 1000 // hub first: everything after must split evenly
	p := prefixOf(w)
	b := BalancedSpans(p, 4)
	checkPartition(t, b, 1000, 4)
	// Spans 2..4 share the 999 unit rows (span 1 is the hub + change):
	// no span may be more than ~2x its fair share of the residue.
	for s := 1; s < 4; s++ {
		weight := p[b[s+1]] - p[b[s]]
		if weight > 2*2000/4 {
			t.Fatalf("span %d carries %d of 2000 total: %v", s, weight, b)
		}
	}
}

func TestBalancedSpansEdgeCases(t *testing.T) {
	// Empty input.
	b := BalancedSpans([]int64{0}, 4)
	checkPartition(t, b, 0, 4)
	// Zero weights fall back to an even split.
	b = BalancedSpans(prefixOf(make([]int64, 8)), 4)
	checkPartition(t, b, 8, 4)
	if b[2] != 4 {
		t.Fatalf("zero-weight split not even: %v", b)
	}
	// One span swallows everything.
	b = BalancedSpans(prefixOf([]int64{5, 5, 5}), 1)
	checkPartition(t, b, 3, 1)
	// More spans than indices: trailing spans are empty, coverage exact.
	b = BalancedSpans(prefixOf([]int64{1, 1}), 8)
	checkPartition(t, b, 2, 8)
}

func TestBalancedSpansRandomCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(50)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(20))
		}
		spans := 1 + r.Intn(8)
		checkPartition(t, BalancedSpans(prefixOf(w), spans), n, spans)
	}
}

func TestForSpansCoversEachIndexOnce(t *testing.T) {
	w := make([]int64, 97)
	for i := range w {
		w[i] = int64(i % 5)
	}
	b := BalancedSpans(prefixOf(w), 5)
	var hits [97]atomic.Int32
	ForSpans(b, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestForSpansEmpty(t *testing.T) {
	called := false
	ForSpans([]int{0, 0, 0}, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("fn called for empty spans")
	}
}
