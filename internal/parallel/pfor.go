// Package parallel provides the small shared-memory parallelism helpers
// the sparse kernels build on: bounded worker pools and chunked parallel
// loops with deterministic work assignment.
//
// Determinism matters here more than in typical HPC code: the paper's
// ⊕ is not assumed commutative or associative, so parallel reductions
// must preserve the sequential fold order. The helpers therefore only
// parallelize across independent output rows/chunks and never reorder
// reductions within a row.
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count: values < 1 select
// GOMAXPROCS, and the result never exceeds n (no point spawning idle
// goroutines for tiny inputs).
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// For runs fn over [0, n) split into contiguous chunks, one goroutine
// per worker. fn receives a half-open index range [lo, hi) and must not
// touch state owned by other ranges. For blocks until all chunks finish.
// With workers <= 1 (or tiny n) it degrades to a plain sequential call,
// so callers need no special single-threaded path.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForGrain is For with an explicit grain size: [0, n) is split into
// ⌈n/grain⌉ tasks executed by a pool of `workers` goroutines pulling
// from a shared counter. Small grains load-balance irregular rows
// (hypersparse matrices) at the cost of more synchronization; the
// BenchmarkParallelGrain ablation quantifies the trade-off.
func ForGrain(n, workers, grain int, fn func(lo, hi int)) {
	ForGrainWorker(n, workers, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// ForGrainWorker is ForGrain exposing the identity of the worker
// goroutine running each task as a stable index in [0, workers). Kernels
// use it to pool per-worker scratch state (sparse accumulators) across
// the many grain-tasks a worker executes, instead of allocating scratch
// per task. Each worker index is owned by exactly one goroutine for the
// whole call, so fn may touch worker-indexed state without locking.
func ForGrainWorker(n, workers, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	tasks := (n + grain - 1) / grain
	w := Workers(workers, tasks)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(tasks) {
			return 0, false
		}
		t := int(next)
		next++
		return t, true
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(worker int) {
			defer wg.Done()
			for {
				t, ok := take()
				if !ok {
					return
				}
				lo := t * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(i)
	}
	wg.Wait()
}
