package semiring

import (
	"fmt"
	"strings"
)

// Condition is the outcome of testing one algebraic law over a finite
// sample of values. Holds is true when no violation was found; when a
// violation exists, Witness holds a human-readable counterexample such
// as "3 ⊗ 2 = 0 with 3≠0, 2≠0".
type Condition struct {
	Name    string
	Holds   bool
	Witness string
}

// Report is the full property analysis of an operator pair over a
// sample. The first three conditions are exactly the Theorem II.1
// criteria; the remaining ones are diagnostics demonstrating the paper's
// observation that semiring laws are independent of adjacency-array
// correctness.
type Report struct {
	Name string

	// Theorem II.1 conditions.
	ZeroSumFree    Condition // a⊕b = 0 ⇒ a = b = 0
	NoZeroDivisors Condition // a⊗b = 0 ⇒ a = 0 or b = 0
	Annihilator    Condition // a⊗0 = 0⊗a = 0

	// Identity sanity.
	AddIdentity Condition
	MulIdentity Condition

	// Semiring diagnostics (informational only).
	AddAssociative Condition
	AddCommutative Condition
	MulAssociative Condition
	MulCommutative Condition
	Distributive   Condition // ⊗ over ⊕, both sides
}

// TheoremII1 reports whether all three of the paper's conditions hold on
// the sample, i.e. whether EoutᵀEin is guaranteed (on this sample's
// value domain) to be an adjacency array for every graph.
func (r Report) TheoremII1() bool {
	return r.ZeroSumFree.Holds && r.NoZeroDivisors.Holds && r.Annihilator.Holds
}

// Conditions returns all tested conditions in presentation order.
func (r Report) Conditions() []Condition {
	return []Condition{
		r.ZeroSumFree, r.NoZeroDivisors, r.Annihilator,
		r.AddIdentity, r.MulIdentity,
		r.AddAssociative, r.AddCommutative,
		r.MulAssociative, r.MulCommutative, r.Distributive,
	}
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "operator pair %s:\n", r.Name)
	for _, c := range r.Conditions() {
		mark := "ok"
		if !c.Holds {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  %-18s %-4s", c.Name, mark)
		if c.Witness != "" {
			fmt.Fprintf(&b, "  %s", c.Witness)
		}
		b.WriteByte('\n')
	}
	verdict := "=> Theorem II.1 satisfied: EoutT*Ein is always an adjacency array"
	if !r.TheoremII1() {
		verdict = "=> Theorem II.1 VIOLATED: some graph has a non-adjacency product"
	}
	b.WriteString(verdict)
	b.WriteByte('\n')
	return b.String()
}

// maxTripleSample bounds the O(n³) associativity/distributivity loops.
const maxTripleSample = 12

// Check analyses an operator pair over a finite sample of values.
// format renders values in witnesses; pass nil for %v formatting.
//
// The sample must represent the domain the algebra is intended for:
// conditions are verified exhaustively over the sample (quadratic for
// the theorem conditions, cubic over a truncated sample for the
// diagnostics), so a violation outside the sample is not detected, and
// conversely any reported witness is a genuine concrete violation.
func Check[V any](o Ops[V], sample []V, format func(V) string) Report {
	if format == nil {
		format = func(v V) string { return fmt.Sprintf("%v", v) }
	}
	r := Report{Name: o.Name}

	r.ZeroSumFree = Condition{Name: "zero-sum-free", Holds: true}
	r.NoZeroDivisors = Condition{Name: "no-zero-divisors", Holds: true}
	r.Annihilator = Condition{Name: "annihilator", Holds: true}
	r.AddIdentity = Condition{Name: "add-identity", Holds: true}
	r.MulIdentity = Condition{Name: "mul-identity", Holds: true}

	for _, a := range sample {
		if r.Annihilator.Holds {
			if !o.IsZero(o.Mul(a, o.Zero)) {
				r.Annihilator = Condition{Name: "annihilator", Holds: false,
					Witness: fmt.Sprintf("%s ⊗ 0 = %s ≠ 0", format(a), format(o.Mul(a, o.Zero)))}
			} else if !o.IsZero(o.Mul(o.Zero, a)) {
				r.Annihilator = Condition{Name: "annihilator", Holds: false,
					Witness: fmt.Sprintf("0 ⊗ %s = %s ≠ 0", format(a), format(o.Mul(o.Zero, a)))}
			}
		}
		if r.AddIdentity.Holds && (!o.Equal(o.Add(a, o.Zero), a) || !o.Equal(o.Add(o.Zero, a), a)) {
			r.AddIdentity = Condition{Name: "add-identity", Holds: false,
				Witness: fmt.Sprintf("%s ⊕ 0 ≠ %s", format(a), format(a))}
		}
		if r.MulIdentity.Holds && (!o.Equal(o.Mul(a, o.One), a) || !o.Equal(o.Mul(o.One, a), a)) {
			r.MulIdentity = Condition{Name: "mul-identity", Holds: false,
				Witness: fmt.Sprintf("%s ⊗ 1 ≠ %s", format(a), format(a))}
		}
		for _, b := range sample {
			if r.ZeroSumFree.Holds && o.IsZero(o.Add(a, b)) && !(o.IsZero(a) && o.IsZero(b)) {
				r.ZeroSumFree = Condition{Name: "zero-sum-free", Holds: false,
					Witness: fmt.Sprintf("%s ⊕ %s = 0 with operands not both 0", format(a), format(b))}
			}
			if r.NoZeroDivisors.Holds && o.IsZero(o.Mul(a, b)) && !o.IsZero(a) && !o.IsZero(b) {
				r.NoZeroDivisors = Condition{Name: "no-zero-divisors", Holds: false,
					Witness: fmt.Sprintf("%s ⊗ %s = 0 with %s≠0, %s≠0", format(a), format(b), format(a), format(b))}
			}
		}
	}

	tri := sample
	if len(tri) > maxTripleSample {
		tri = tri[:maxTripleSample]
	}
	r.AddAssociative = checkAssoc(o.Add, o.Equal, tri, "⊕", format)
	r.AddAssociative.Name = "add-associative"
	r.MulAssociative = checkAssoc(o.Mul, o.Equal, tri, "⊗", format)
	r.MulAssociative.Name = "mul-associative"
	r.AddCommutative = checkCommut(o.Add, o.Equal, tri, "⊕", format)
	r.AddCommutative.Name = "add-commutative"
	r.MulCommutative = checkCommut(o.Mul, o.Equal, tri, "⊗", format)
	r.MulCommutative.Name = "mul-commutative"
	r.Distributive = checkDistrib(o, tri, format)
	return r
}

func checkAssoc[V any](op func(V, V) V, eq func(V, V) bool, s []V, sym string, format func(V) string) Condition {
	for _, a := range s {
		for _, b := range s {
			for _, c := range s {
				if !eq(op(op(a, b), c), op(a, op(b, c))) {
					return Condition{Holds: false,
						Witness: fmt.Sprintf("(%s %s %s) %s %s ≠ %s %s (%s %s %s)",
							format(a), sym, format(b), sym, format(c),
							format(a), sym, format(b), sym, format(c))}
				}
			}
		}
	}
	return Condition{Holds: true}
}

func checkCommut[V any](op func(V, V) V, eq func(V, V) bool, s []V, sym string, format func(V) string) Condition {
	for _, a := range s {
		for _, b := range s {
			if !eq(op(a, b), op(b, a)) {
				return Condition{Holds: false,
					Witness: fmt.Sprintf("%s %s %s ≠ %s %s %s", format(a), sym, format(b), format(b), sym, format(a))}
			}
		}
	}
	return Condition{Holds: true}
}

func checkDistrib[V any](o Ops[V], s []V, format func(V) string) Condition {
	for _, a := range s {
		for _, b := range s {
			for _, c := range s {
				left := o.Mul(a, o.Add(b, c))
				right := o.Add(o.Mul(a, b), o.Mul(a, c))
				if !o.Equal(left, right) {
					return Condition{Name: "distributive", Holds: false,
						Witness: fmt.Sprintf("%s ⊗ (%s ⊕ %s) ≠ (%s⊗%s) ⊕ (%s⊗%s)",
							format(a), format(b), format(c), format(a), format(b), format(a), format(c))}
				}
				left = o.Mul(o.Add(b, c), a)
				right = o.Add(o.Mul(b, a), o.Mul(c, a))
				if !o.Equal(left, right) {
					return Condition{Name: "distributive", Holds: false,
						Witness: fmt.Sprintf("(%s ⊕ %s) ⊗ %s ≠ (%s⊗%s) ⊕ (%s⊗%s)",
							format(b), format(c), format(a), format(b), format(a), format(c), format(a))}
				}
			}
		}
	}
	return Condition{Name: "distributive", Holds: true}
}
