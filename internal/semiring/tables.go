package semiring

import (
	"fmt"
)

// FiniteAlgebra is an operator pair over a finite set of named
// elements, defined by explicit Cayley tables — the form the paper's
// Theorem II.1 quantifies over (arbitrary closed ⊕/⊗ with identities,
// no semiring laws assumed). Users can define algebras in data and have
// the checker and gadget machinery applied to them.
type FiniteAlgebra struct {
	// Elements in index order; Elements[0] must be the ⊕-identity (0)
	// and some element must serve as the ⊗-identity (1).
	Elements []string
	// ZeroName and OneName name the identities.
	ZeroName, OneName string
	// AddTable[i][j] is the index of Elements[i] ⊕ Elements[j];
	// MulTable likewise for ⊗.
	AddTable, MulTable [][]int

	index map[string]int
}

// NewFiniteAlgebra validates the tables: square, in-range, and the
// named identities actually behave as identities.
func NewFiniteAlgebra(elements []string, zeroName, oneName string, add, mul [][]int) (*FiniteAlgebra, error) {
	n := len(elements)
	if n == 0 {
		return nil, fmt.Errorf("semiring: empty element set")
	}
	idx := make(map[string]int, n)
	for i, e := range elements {
		if e == "" {
			return nil, fmt.Errorf("semiring: element %d has empty name", i)
		}
		if _, dup := idx[e]; dup {
			return nil, fmt.Errorf("semiring: duplicate element %q", e)
		}
		idx[e] = i
	}
	zi, ok := idx[zeroName]
	if !ok {
		return nil, fmt.Errorf("semiring: zero element %q not in set", zeroName)
	}
	oi, ok := idx[oneName]
	if !ok {
		return nil, fmt.Errorf("semiring: one element %q not in set", oneName)
	}
	check := func(name string, tbl [][]int) error {
		if len(tbl) != n {
			return fmt.Errorf("semiring: %s table has %d rows, want %d", name, len(tbl), n)
		}
		for i, row := range tbl {
			if len(row) != n {
				return fmt.Errorf("semiring: %s table row %d has %d entries, want %d", name, i, len(row), n)
			}
			for j, v := range row {
				if v < 0 || v >= n {
					return fmt.Errorf("semiring: %s[%d][%d] = %d out of range", name, i, j, v)
				}
			}
		}
		return nil
	}
	if err := check("add", add); err != nil {
		return nil, err
	}
	if err := check("mul", mul); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if add[i][zi] != i || add[zi][i] != i {
			return nil, fmt.Errorf("semiring: %q is not a ⊕-identity (fails at %q)", zeroName, elements[i])
		}
		if mul[i][oi] != i || mul[oi][i] != i {
			return nil, fmt.Errorf("semiring: %q is not a ⊗-identity (fails at %q)", oneName, elements[i])
		}
	}
	return &FiniteAlgebra{
		Elements: elements, ZeroName: zeroName, OneName: oneName,
		AddTable: add, MulTable: mul, index: idx,
	}, nil
}

// Ops exposes the algebra as an operator pair over element names.
// Unknown names passed to the operations map to the zero element (the
// sparse convention for absent entries).
func (f *FiniteAlgebra) Ops(name string) Ops[string] {
	look := func(s string) int {
		if i, ok := f.index[s]; ok {
			return i
		}
		return f.index[f.ZeroName]
	}
	return Ops[string]{
		Name: name,
		Add: func(a, b string) string {
			return f.Elements[f.AddTable[look(a)][look(b)]]
		},
		Mul: func(a, b string) string {
			return f.Elements[f.MulTable[look(a)][look(b)]]
		},
		Zero:  f.ZeroName,
		One:   f.OneName,
		Equal: func(a, b string) bool { return a == b },
	}
}

// Sample returns all element names — finite algebras admit exhaustive
// condition checking.
func (f *FiniteAlgebra) Sample() []string {
	out := make([]string, len(f.Elements))
	copy(out, f.Elements)
	return out
}
