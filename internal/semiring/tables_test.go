package semiring

import (
	"testing"
)

// boolAlgebraTables is {0,1} with ∨/∧ in table form.
func boolAlgebraTables(t *testing.T) *FiniteAlgebra {
	t.Helper()
	f, err := NewFiniteAlgebra(
		[]string{"0", "1"}, "0", "1",
		[][]int{{0, 1}, {1, 1}}, // ∨
		[][]int{{0, 0}, {0, 1}}, // ∧
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFiniteAlgebraBooleanComplies(t *testing.T) {
	f := boolAlgebraTables(t)
	ops := f.Ops("bool-tables")
	r := Check(ops, f.Sample(), nil)
	if !r.TheoremII1() {
		t.Errorf("table-defined Boolean algebra should comply:\n%s", r)
	}
	if got := ops.Add("1", "0"); got != "1" {
		t.Errorf("1 ∨ 0 = %q", got)
	}
	if got := ops.Mul("1", "1"); got != "1" {
		t.Errorf("1 ∧ 1 = %q", got)
	}
	// Unknown names behave as zero.
	if got := ops.Mul("??", "1"); got != "0" {
		t.Errorf("unknown ⊗ 1 = %q, want zero", got)
	}
}

func TestFiniteAlgebraZMod3(t *testing.T) {
	// ℤ/3ℤ in tables: a field, so no zero divisors, but 1 ⊕ 2 = 0 —
	// not zero-sum-free.
	f, err := NewFiniteAlgebra(
		[]string{"0", "1", "2"}, "0", "1",
		[][]int{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}},
		[][]int{{0, 0, 0}, {0, 1, 2}, {0, 2, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := Check(f.Ops("z3"), f.Sample(), nil)
	if r.ZeroSumFree.Holds {
		t.Error("ℤ/3ℤ should fail zero-sum-freeness")
	}
	if !r.NoZeroDivisors.Holds || !r.Annihilator.Holds {
		t.Error("ℤ/3ℤ should pass the other two conditions")
	}
}

func TestNewFiniteAlgebraValidation(t *testing.T) {
	add := [][]int{{0, 1}, {1, 1}}
	mul := [][]int{{0, 0}, {0, 1}}
	cases := []struct {
		name      string
		elems     []string
		zero, one string
		add, mul  [][]int
	}{
		{"empty set", nil, "0", "1", nil, nil},
		{"empty name", []string{"0", ""}, "0", "1", add, mul},
		{"duplicate", []string{"x", "x"}, "x", "x", add, mul},
		{"missing zero", []string{"0", "1"}, "z", "1", add, mul},
		{"missing one", []string{"0", "1"}, "0", "w", add, mul},
		{"short table", []string{"0", "1"}, "0", "1", [][]int{{0, 1}}, mul},
		{"ragged row", []string{"0", "1"}, "0", "1", [][]int{{0, 1}, {1}}, mul},
		{"out of range", []string{"0", "1"}, "0", "1", [][]int{{0, 9}, {1, 1}}, mul},
		{"bad zero", []string{"0", "1"}, "1", "1", add, mul},
		{"bad one", []string{"0", "1"}, "0", "0", add, mul},
	}
	for _, c := range cases {
		if _, err := NewFiniteAlgebra(c.elems, c.zero, c.one, c.add, c.mul); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFiniteAlgebraSampleIsCopy(t *testing.T) {
	f := boolAlgebraTables(t)
	s := f.Sample()
	s[0] = "mutated"
	if f.Elements[0] != "0" {
		t.Error("Sample exposed internal storage")
	}
}
