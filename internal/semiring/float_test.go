package semiring

import (
	"math"
	"testing"
	"testing/quick"

	"adjarray/internal/value"
)

func TestIdentitiesValidateOnDomains(t *testing.T) {
	for _, e := range Registry() {
		if e.Name == "max.+@0-signed" {
			continue // identities intentionally broken on the signed domain
		}
		if err := e.Ops.Validate(e.Sample); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestFigure3PairsOrder(t *testing.T) {
	want := []string{"+.*", "max.*", "min.*", "max.+", "min.+", "max.min", "min.max"}
	got := Figure3Pairs()
	if len(got) != len(want) {
		t.Fatalf("Figure3Pairs returned %d pairs, want %d", len(got), len(want))
	}
	for i, o := range got {
		if o.Name != want[i] {
			t.Errorf("pair %d = %s, want %s", i, o.Name, want[i])
		}
	}
}

func TestPlusTimesBasics(t *testing.T) {
	o := PlusTimes()
	if got := o.Add(6, 7); got != 13 {
		t.Errorf("6 ⊕ 7 = %v", got)
	}
	if got := o.Mul(2, 3); got != 6 {
		t.Errorf("2 ⊗ 3 = %v", got)
	}
	if !o.IsZero(0) || o.IsZero(1) {
		t.Error("IsZero wrong for +.*")
	}
}

// The paper's Figure 3 invariants: every ⊗ maps (0,1) and (1,0) to the
// pair's zero, and 1⊗1 = 1 except for +-based ⊗ where 1⊗1 = 1+1.
func TestFigure3OperatorProperties(t *testing.T) {
	for _, o := range Figure3Pairs() {
		if got := o.Mul(o.One, o.Zero); !o.IsZero(got) {
			t.Errorf("%s: 1 ⊗ 0 = %v, want zero (%v)", o.Name, got, o.Zero)
		}
		if got := o.Mul(o.Zero, o.One); !o.IsZero(got) {
			t.Errorf("%s: 0 ⊗ 1 = %v, want zero", o.Name, got)
		}
		got := o.Mul(o.One, o.One)
		if !o.Equal(got, o.One) {
			t.Errorf("%s: 1 ⊗ 1 = %v, want 1 (%v)", o.Name, got, o.One)
		}
	}
	// The exception the paper calls out: with numeric weights 1 (not the
	// algebra's One), +-based ⊗ gives 2 while the others give 1.
	weightResults := map[string]float64{
		"+.*": 1, "max.*": 1, "min.*": 1,
		"max.+": 2, "min.+": 2,
		"max.min": 1, "min.max": 1,
	}
	for _, o := range Figure3Pairs() {
		if got := o.Mul(1, 1); got != weightResults[o.Name] {
			t.Errorf("%s: weight 1 ⊗ 1 = %v, want %v", o.Name, got, weightResults[o.Name])
		}
	}
}

// Figure 5's arithmetic: how each ⊗ combines the re-weighted E1 values
// (2 for Pop, 3 for Rock) with E2's 1s.
func TestFigure5OperatorArithmetic(t *testing.T) {
	cases := []struct {
		ops        Ops[float64]
		two, three float64
	}{
		{PlusTimes(), 2, 3},
		{MaxTimes(), 2, 3},
		{MinTimes(), 2, 3},
		{MaxPlus(), 3, 4},
		{MinPlus(), 3, 4},
		{MaxMin(), 1, 1},
		{MinMax(), 2, 3},
	}
	for _, c := range cases {
		if got := c.ops.Mul(2, 1); got != c.two {
			t.Errorf("%s: 2 ⊗ 1 = %v, want %v", c.ops.Name, got, c.two)
		}
		if got := c.ops.Mul(3, 1); got != c.three {
			t.Errorf("%s: 3 ⊗ 1 = %v, want %v", c.ops.Name, got, c.three)
		}
	}
}

func TestTropicalAbsorption(t *testing.T) {
	mp := MaxPlus()
	if got := mp.Mul(value.NegInf, value.PosInf); !math.IsInf(got, -1) {
		t.Errorf("max.+: -Inf ⊗ +Inf = %v, want -Inf (annihilation over IEEE NaN)", got)
	}
	mnp := MinPlus()
	if got := mnp.Mul(value.PosInf, value.NegInf); !math.IsInf(got, 1) {
		t.Errorf("min.+: +Inf ⊗ -Inf = %v, want +Inf", got)
	}
	mnt := MinTimes()
	if got := mnt.Mul(value.PosInf, 0); !math.IsInf(got, 1) {
		t.Errorf("min.*: +Inf ⊗ 0 = %v, want +Inf", got)
	}
}

func TestFoldAddRespectsOrder(t *testing.T) {
	o := LeftmostNonzero()
	if got := o.FoldAdd([]float64{0, 5, 7}); got != 5 {
		t.Errorf("first.* fold = %v, want 5 (leftmost non-zero)", got)
	}
	if got := o.FoldAdd(nil); got != 0 {
		t.Errorf("empty fold = %v, want zero", got)
	}
	if got := PlusTimes().FoldAdd([]float64{1, 2, 3}); got != 6 {
		t.Errorf("+ fold = %v", got)
	}
}

func TestValidateRejectsNilOps(t *testing.T) {
	var o Ops[float64]
	o.Name = "broken"
	if err := o.Validate([]float64{1}); err == nil {
		t.Error("Validate accepted nil operations")
	}
}

func TestValidateCatchesWrongIdentity(t *testing.T) {
	o := PlusTimes()
	o.Zero = 1 // wrong on purpose
	if err := o.Validate([]float64{2}); err == nil {
		t.Error("Validate accepted a false ⊕-identity")
	}
	o = PlusTimes()
	o.One = 2
	if err := o.Validate([]float64{3}); err == nil {
		t.Error("Validate accepted a false ⊗-identity")
	}
}

// Property tests over random non-negative floats: the compliant pairs
// keep their Theorem II.1 conditions pointwise.
func TestTheoremConditionsPointwiseRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	norm := func(x float64) float64 {
		x = math.Abs(x)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 1
		}
		return math.Mod(x, 1000)
	}
	for _, o := range []Ops[float64]{PlusTimes(), MaxTimes(), MaxMin()} {
		o := o
		zsf := func(a, b float64) bool {
			a, b = norm(a), norm(b)
			if o.IsZero(o.Add(a, b)) {
				return o.IsZero(a) && o.IsZero(b)
			}
			return true
		}
		if err := quick.Check(zsf, cfg); err != nil {
			t.Errorf("%s zero-sum-free: %v", o.Name, err)
		}
		nzd := func(a, b float64) bool {
			a, b = norm(a), norm(b)
			if o.IsZero(o.Mul(a, b)) {
				return o.IsZero(a) || o.IsZero(b)
			}
			return true
		}
		if err := quick.Check(nzd, cfg); err != nil {
			t.Errorf("%s no-zero-divisors: %v", o.Name, err)
		}
		ann := func(a float64) bool {
			a = norm(a)
			return o.IsZero(o.Mul(a, o.Zero)) && o.IsZero(o.Mul(o.Zero, a))
		}
		if err := quick.Check(ann, cfg); err != nil {
			t.Errorf("%s annihilator: %v", o.Name, err)
		}
	}
}

func TestLeftmostNonzeroIsNonCommutativeButCompliant(t *testing.T) {
	o := LeftmostNonzero()
	if o.Add(1, 2) != 1 || o.Add(2, 1) != 2 {
		t.Fatal("first.* ⊕ should keep the leftmost non-zero operand")
	}
	r := Check(o, nonNegSample, value.FormatFloat)
	if !r.TheoremII1() {
		t.Errorf("first.* should satisfy Theorem II.1:\n%s", r)
	}
	if r.AddCommutative.Holds {
		t.Error("first.* ⊕ should be detected as non-commutative")
	}
}
