// Package semiring models the operator pairs ⊕.⊗ that drive array
// multiplication in the paper, together with a property checker for the
// three Theorem II.1 conditions (zero-sum-freeness, absence of zero
// divisors, 0 annihilating ⊗).
//
// Deliberately, an Ops value is *not* required to be a semiring: the
// paper's whole point is that associativity, commutativity and
// distributivity are unnecessary for EoutᵀEin to be an adjacency array,
// while the three conditions above are exactly necessary and sufficient.
// The Check function therefore reports each property independently.
package semiring

import "fmt"

// Ops bundles an operator pair ⊕.⊗ over a value set V with its
// identities. Zero is the identity of Add (⊕) and doubles as the sparse
// "missing entry" value; One is the identity of Mul (⊗). Equal decides
// value equality (needed because V may be float64-with-NaN, a slice
// type, etc.).
//
// Ops values are immutable after construction and safe for concurrent
// use provided the function fields are pure, which all built-in pairs
// are.
type Ops[V any] struct {
	// Name identifies the pair in reports and figure captions,
	// e.g. "+.*" or "max.min".
	Name string
	// Add is ⊕, the operation that aggregates contributions from
	// multiple edges between the same vertex pair.
	Add func(V, V) V
	// Mul is ⊗, the operation applied to Eoutᵀ(a,k) and Ein(k,b).
	Mul func(V, V) V
	// Zero is the ⊕-identity (0). Entries equal to Zero are treated
	// as structurally absent.
	Zero V
	// One is the ⊗-identity (1), the conventional weight for an
	// unweighted edge endpoint.
	One V
	// Equal reports value equality; it must at minimum recognise Zero.
	Equal func(V, V) bool
	// kernel names a specialized fused multiplication kernel for this
	// pair. Only this package's constructors can set it (the field is
	// unexported), so a specialized kernel is a sound promise about the
	// pair's exact arithmetic, not a guess keyed on the display name.
	kernel ScalarKernel
}

// ScalarKernel identifies a hand-monomorphized SpGEMM kernel for a
// built-in operator pair. Go's gcshape stenciling leaves the generic
// kernels calling ⊕/⊗ through closure fields — an indirect call per
// flop — so the hot built-in pairs get dedicated kernels with the
// arithmetic inlined. A specialized kernel must be bit-identical to the
// generic path (same fold order, same pruning); the sparse package's
// property tests enforce this.
type ScalarKernel uint8

// Available specialized kernels.
const (
	// KernelGeneric selects the generic closure-calling kernels.
	KernelGeneric ScalarKernel = iota
	// KernelPlusTimesF64 is the canonical arithmetic pair +.* over
	// float64 (Add = +, Mul = ×, Zero = 0).
	KernelPlusTimesF64
)

// Kernel returns the specialized-kernel hint for this pair
// (KernelGeneric when none applies).
func (o Ops[V]) Kernel() ScalarKernel { return o.kernel }

// IsZero reports whether v is the algebra's 0 element.
func (o Ops[V]) IsZero(v V) bool { return o.Equal(v, o.Zero) }

// Validate checks that the declared identities behave as identities on
// the provided sample values. It returns an error naming the first
// violation, or nil. This is a cheap structural sanity check used by
// constructors and tests; the full Theorem II.1 analysis lives in Check.
func (o Ops[V]) Validate(sample []V) error {
	if o.Add == nil || o.Mul == nil || o.Equal == nil {
		return fmt.Errorf("semiring %q: nil operation", o.Name)
	}
	for _, v := range sample {
		if !o.Equal(o.Add(v, o.Zero), v) || !o.Equal(o.Add(o.Zero, v), v) {
			return fmt.Errorf("semiring %q: Zero is not a ⊕-identity for %v", o.Name, v)
		}
		if !o.Equal(o.Mul(v, o.One), v) || !o.Equal(o.Mul(o.One, v), v) {
			return fmt.Errorf("semiring %q: One is not a ⊗-identity for %v", o.Name, v)
		}
	}
	return nil
}

// FoldAdd reduces vs with ⊕, returning Zero for an empty slice. The
// reduction is left-to-right because ⊕ is not assumed associative or
// commutative; callers that need a specific evaluation order (as the
// paper's Definition I.3 sum over k∈K does) get the key-order fold.
func (o Ops[V]) FoldAdd(vs []V) V {
	acc := o.Zero
	for i, v := range vs {
		if i == 0 {
			acc = v
			continue
		}
		acc = o.Add(acc, v)
	}
	if len(vs) == 0 {
		return o.Zero
	}
	return acc
}

// Rename returns a copy of o carrying a different display name. Useful
// when the same operation pair appears under several conventional
// spellings (e.g. "+.×" vs "+.*").
func (o Ops[V]) Rename(name string) Ops[V] {
	o.Name = name
	return o
}
