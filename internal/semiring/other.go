package semiring

import (
	"adjarray/internal/value"
)

// Algebras over non-numeric value sets: strings, the two-element Boolean
// algebra, power-set (union/intersection) algebras, and integer rings.
// The string and Boolean pairs are compliant examples from the paper's
// introduction and Section III; power sets and rings are the named
// non-examples.

// StringMaxMin is the introduction's alphanumeric-string algebra:
// ⊕ = lexicographic max with identity "" and ⊗ = lexicographic min.
// Because "" is the least string, min(v, "") = "" makes "" a true
// annihilator, and the pair satisfies all three Theorem II.1 conditions
// — the example the paper opens with.
func StringMaxMin() Ops[string] {
	return Ops[string]{
		Name: "smax.smin",
		Add: func(a, b string) string {
			if a >= b {
				return a
			}
			return b
		},
		Mul: func(a, b string) string {
			if a <= b {
				return a
			}
			return b
		},
		Zero:  "",
		One:   "￿", // above every alphanumeric string; acts as the ⊗-identity on the working domain
		Equal: func(a, b string) bool { return a == b },
	}
}

// BoolOrAnd is the two-element Boolean algebra ∨.∧ — the *trivial*
// Boolean algebra, which does satisfy the conditions (only non-trivial
// Boolean algebras fail, see PowerSet). It yields unweighted adjacency
// patterns.
func BoolOrAnd() Ops[bool] {
	return Ops[bool]{
		Name:  "or.and",
		Add:   func(a, b bool) bool { return a || b },
		Mul:   func(a, b bool) bool { return a && b },
		Zero:  false,
		One:   true,
		Equal: func(a, b bool) bool { return a == b },
	}
}

// PowerSet is the union/intersection pair ∪.∩ over finite string sets
// with ∅ as 0 and the given universe as 1. For any universe with at
// least two elements this is a non-trivial Boolean algebra and a paper
// non-example: two disjoint non-empty sets are zero divisors
// ({a} ∩ {b} = ∅). Section III shows that *structured* incidence arrays
// (entries of row k all drawn from a common word pool) never exercise
// the violation, which is why ∪.∩ is still useful in practice.
func PowerSet(universe value.Set) Ops[value.Set] {
	return Ops[value.Set]{
		Name:  "union.intersect",
		Add:   func(a, b value.Set) value.Set { return a.Union(b) },
		Mul:   func(a, b value.Set) value.Set { return a.Intersect(b) },
		Zero:  nil,
		One:   universe,
		Equal: func(a, b value.Set) bool { return a.Equal(b) },
	}
}

// IntRing is the ring (ℤ, +, ×), a paper non-example: rings other than
// the zero ring are never zero-sum-free because every element has an
// additive inverse (v ⊕ (−v) = 0), so two opposite-weight parallel edges
// cancel into a structural zero.
func IntRing() Ops[int64] {
	return Ops[int64]{
		Name:  "int+.int*",
		Add:   func(a, b int64) int64 { return a + b },
		Mul:   func(a, b int64) int64 { return a * b },
		Zero:  0,
		One:   1,
		Equal: func(a, b int64) bool { return a == b },
	}
}

// ZMod is the ring ℤ/nℤ, which for composite n also has zero divisors
// (e.g. 2 ⊗ 3 = 0 in ℤ/6ℤ), violating two conditions at once.
func ZMod(n int64) Ops[int64] {
	mod := func(a int64) int64 {
		a %= n
		if a < 0 {
			a += n
		}
		return a
	}
	return Ops[int64]{
		Name:  "zmod",
		Add:   func(a, b int64) int64 { return mod(a + b) },
		Mul:   func(a, b int64) int64 { return mod(a * b) },
		Zero:  0,
		One:   mod(1),
		Equal: func(a, b int64) bool { return a == b },
	}
}

// NatPlusTimes is (ℕ, +, ×) restricted to int64, the discrete compliant
// example named in Section III.
func NatPlusTimes() Ops[int64] {
	return Ops[int64]{
		Name:  "nat+.nat*",
		Add:   func(a, b int64) int64 { return a + b },
		Mul:   func(a, b int64) int64 { return a * b },
		Zero:  0,
		One:   1,
		Equal: func(a, b int64) bool { return a == b },
	}
}

// LeftmostNonzero is a deliberately non-commutative, non-associative
// compliant pair used in tests to exercise the paper's claim that
// commutativity/associativity/distributivity are NOT required:
// a ⊕ b keeps the left operand unless it is zero; a ⊗ b multiplies.
// It is zero-sum-free, has no zero divisors, and 0 annihilates, yet
// a ⊕ b ≠ b ⊕ a in general.
func LeftmostNonzero() Ops[float64] {
	return Ops[float64]{
		Name: "first.*",
		Add: func(a, b float64) float64 {
			if a != 0 {
				return a
			}
			return b
		},
		Mul:   mulF,
		Zero:  0,
		One:   1,
		Equal: value.Float64Equal,
	}
}
