package semiring

import (
	"strings"
	"testing"
)

const boolJSON = `{
  "name": "bool",
  "elements": ["0", "1"],
  "zero": "0",
  "one": "1",
  "add": [["0","1"],["1","1"]],
  "mul": [["0","0"],["0","1"]]
}`

func TestParseFiniteAlgebraJSON(t *testing.T) {
	alg, name, err := ParseFiniteAlgebraJSON(strings.NewReader(boolJSON))
	if err != nil {
		t.Fatal(err)
	}
	if name != "bool" {
		t.Errorf("name = %q", name)
	}
	r := Check(alg.Ops(name), alg.Sample(), nil)
	if !r.TheoremII1() {
		t.Error("JSON Boolean algebra should comply")
	}
}

func TestParseFiniteAlgebraJSONDefaultsName(t *testing.T) {
	in := strings.Replace(boolJSON, `"name": "bool",`, "", 1)
	_, name, err := ParseFiniteAlgebraJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if name != "custom" {
		t.Errorf("default name = %q", name)
	}
}

func TestParseFiniteAlgebraJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":         `not json`,
		"unknown field":   `{"elements":["0"],"zero":"0","one":"0","add":[["0"]],"mul":[["0"]],"extra":1}`,
		"unknown element": strings.Replace(boolJSON, `["0","1"],["1","1"]`, `["0","9"],["1","1"]`, 1),
		"bad identity":    strings.Replace(boolJSON, `"zero": "0"`, `"zero": "1"`, 1),
		"unknown mul el":  strings.Replace(boolJSON, `[["0","0"],["0","1"]]`, `[["0","0"],["0","q"]]`, 1),
	}
	for name, in := range cases {
		if _, _, err := ParseFiniteAlgebraJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
