package semiring

import (
	"fmt"
	"sort"

	"adjarray/internal/value"
)

// Entry describes a named float64 operator pair, its intended value
// domain, and a canonical sample of domain values used by the property
// checker and the CLIs.
type Entry struct {
	Name        string
	Aliases     []string
	Description string
	Ops         Ops[float64]
	Sample      []float64
}

// nonNegSample covers the domain of the pairs anchored at 0.
var nonNegSample = []float64{0, 0.5, 1, 2, 3, 7, 13}

// posSample excludes 0 for min.× (whose domain is positive reals) and
// includes the +Inf zero element.
var posSample = []float64{value.PosInf, 0.5, 1, 2, 3, 7, 13}

// tropicalMaxSample includes the −Inf zero of max.+.
var tropicalMaxSample = []float64{value.NegInf, -2, 0, 1, 3, 7}

// tropicalMinSample includes the +Inf zero of min.+ and min.max.
var tropicalMinSample = []float64{value.PosInf, -2, 0, 1, 3, 7}

// signedSample exposes additive inverses, demonstrating why rings fail.
var signedSample = []float64{0, 1, -1, 2, -2, 3}

// builtins lists every registered float64 pair in presentation order.
func builtins() []Entry {
	return []Entry{
		{
			Name: "+.*", Aliases: []string{"+.x", "plus.times"},
			Description: "sum of products of edge weights; aggregates all edges between two vertices",
			Ops:         PlusTimes(), Sample: nonNegSample,
		},
		{
			Name: "max.*", Aliases: []string{"max.x", "max.times"},
			Description: "maximum of products; selects the edge with the largest weighted product",
			Ops:         MaxTimes(), Sample: nonNegSample,
		},
		{
			Name: "min.*", Aliases: []string{"min.x", "min.times"},
			Description: "minimum of products; selects the edge with the smallest weighted product",
			Ops:         MinTimes(), Sample: posSample,
		},
		{
			Name: "max.+", Aliases: []string{"max.plus"},
			Description: "maximum of sums; selects the edge with the largest weighted sum",
			Ops:         MaxPlus(), Sample: tropicalMaxSample,
		},
		{
			Name: "min.+", Aliases: []string{"min.plus"},
			Description: "minimum of sums; selects the edge with the smallest weighted sum (shortest path)",
			Ops:         MinPlus(), Sample: tropicalMinSample,
		},
		{
			Name:        "max.min",
			Description: "maximum of minimums; the largest of all the shortest connections (widest path)",
			Ops:         MaxMin(), Sample: nonNegSample,
		},
		{
			Name:        "min.max",
			Description: "minimum of maximums; the smallest of all the largest connections",
			Ops:         MinMax(), Sample: tropicalMinSample,
		},
		{
			Name: "max.+@0", Aliases: []string{"maxplus0"},
			Description: "NON-EXAMPLE: max.+ anchored at the number 0; 0 fails to annihilate",
			Ops:         MaxPlusAtZero(), Sample: nonNegSample,
		},
		{
			Name:        "max.+@0-signed",
			Description: "NON-EXAMPLE: max.+ anchored at 0 over signed reals; zero-product property fails (v ⊗ −v = 0)",
			Ops:         MaxPlusAtZero().Rename("max.+@0-signed"), Sample: signedSample,
		},
		{
			Name: "real+.real*", Aliases: []string{"ring"},
			Description: "NON-EXAMPLE: the field of signed reals; additive inverses break zero-sum-freeness",
			Ops:         PlusTimes().Rename("real+.real*"), Sample: signedSample,
		},
		{
			Name:        "first.*",
			Description: "non-commutative compliant pair: keep the leftmost non-zero contribution",
			Ops:         LeftmostNonzero(), Sample: nonNegSample,
		},
	}
}

// Registry returns all registered float64 operator pairs.
func Registry() []Entry { return builtins() }

// Lookup resolves a pair by name or alias (case-sensitive).
func Lookup(name string) (Entry, bool) {
	for _, e := range builtins() {
		if e.Name == name {
			return e, true
		}
		for _, a := range e.Aliases {
			if a == name {
				return e, true
			}
		}
	}
	return Entry{}, false
}

// Names returns the sorted primary names of all registered pairs.
func Names() []string {
	bs := builtins()
	names := make([]string, len(bs))
	for i, e := range bs {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// ClassRow is one line of the Section III classification table: which
// algebraic structures comply with the Theorem II.1 criteria.
type ClassRow struct {
	Name           string
	Domain         string
	ZeroSumFree    bool
	NoZeroDivisors bool
	Annihilator    bool
	TheoremOK      bool
	Witness        string // first violation, if any
}

// Classify evaluates every built-in algebra — float64 pairs plus the
// string, Boolean, power-set and integer-ring algebras — on its
// canonical sample and reports compliance. This regenerates the paper's
// Section III classification (experiment E9).
func Classify() []ClassRow {
	var rows []ClassRow

	add := func(name, domain string, r Report) {
		w := ""
		for _, c := range []Condition{r.ZeroSumFree, r.NoZeroDivisors, r.Annihilator} {
			if !c.Holds {
				w = c.Name + ": " + c.Witness
				break
			}
		}
		rows = append(rows, ClassRow{
			Name: name, Domain: domain,
			ZeroSumFree:    r.ZeroSumFree.Holds,
			NoZeroDivisors: r.NoZeroDivisors.Holds,
			Annihilator:    r.Annihilator.Holds,
			TheoremOK:      r.TheoremII1(),
			Witness:        w,
		})
	}

	for _, e := range builtins() {
		add(e.Name, "float64", Check(e.Ops, e.Sample, value.FormatFloat))
	}

	add("nat+.nat*", "int64 (ℕ)", Check(NatPlusTimes(), []int64{0, 1, 2, 3, 7}, nil))
	add("int+.int*", "int64 (ℤ ring)", Check(IntRing(), []int64{0, 1, -1, 2, -2, 3, -3}, nil))
	add("zmod6", "ℤ/6ℤ", Check(ZMod(6), []int64{0, 1, 2, 3, 4, 5}, nil))
	add("or.and", "bool", Check(BoolOrAnd(), []bool{false, true}, nil))
	add("smax.smin", "string", Check(StringMaxMin(), []string{"", "a", "ab", "b", "z"}, func(s string) string { return fmt.Sprintf("%q", s) }))

	universe := value.NewSet("a", "b", "c")
	subsets := []value.Set{nil, value.NewSet("a"), value.NewSet("b"), value.NewSet("c"),
		value.NewSet("a", "b"), value.NewSet("a", "c"), value.NewSet("b", "c"), universe}
	add("union.intersect", "2^{a,b,c}", Check(PowerSet(universe), subsets, func(s value.Set) string {
		if s.IsEmpty() {
			return "∅"
		}
		return s.String()
	}))

	return rows
}
