package semiring

import (
	"strings"
	"testing"

	"adjarray/internal/value"
)

// expectVerdict asserts which of the three Theorem II.1 conditions hold.
func expectVerdict(t *testing.T, r Report, zsf, nzd, ann bool) {
	t.Helper()
	if r.ZeroSumFree.Holds != zsf {
		t.Errorf("%s zero-sum-free = %v (witness %q), want %v", r.Name, r.ZeroSumFree.Holds, r.ZeroSumFree.Witness, zsf)
	}
	if r.NoZeroDivisors.Holds != nzd {
		t.Errorf("%s no-zero-divisors = %v (witness %q), want %v", r.Name, r.NoZeroDivisors.Holds, r.NoZeroDivisors.Witness, nzd)
	}
	if r.Annihilator.Holds != ann {
		t.Errorf("%s annihilator = %v (witness %q), want %v", r.Name, r.Annihilator.Holds, r.Annihilator.Witness, ann)
	}
	if want := zsf && nzd && ann; r.TheoremII1() != want {
		t.Errorf("%s TheoremII1 = %v, want %v", r.Name, r.TheoremII1(), want)
	}
}

func TestCheckSevenPaperPairsComply(t *testing.T) {
	for _, name := range []string{"+.*", "max.*", "min.*", "max.+", "min.+", "max.min", "min.max"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("registry missing %s", name)
		}
		r := Check(e.Ops, e.Sample, value.FormatFloat)
		expectVerdict(t, r, true, true, true)
	}
}

func TestCheckMaxPlusAtZeroFailsAnnihilator(t *testing.T) {
	e, _ := Lookup("max.+@0")
	r := Check(e.Ops, e.Sample, value.FormatFloat)
	expectVerdict(t, r, true, true, false)
	if !strings.Contains(r.Annihilator.Witness, "≠ 0") {
		t.Errorf("witness should show the annihilation failure, got %q", r.Annihilator.Witness)
	}
}

func TestCheckSignedMaxPlusFailsZeroProduct(t *testing.T) {
	r := Check(MaxPlusAtZero(), []float64{0, 1, -1, 2, -2}, value.FormatFloat)
	if r.NoZeroDivisors.Holds {
		t.Error("signed max.+@0 should exhibit zero divisors (v ⊗ −v = 0)")
	}
	if r.TheoremII1() {
		t.Error("signed max.+@0 must violate Theorem II.1")
	}
}

func TestCheckRingFailsZeroSumFree(t *testing.T) {
	e, _ := Lookup("real+.real*")
	r := Check(e.Ops, e.Sample, value.FormatFloat)
	expectVerdict(t, r, false, true, true)
}

func TestCheckZMod6FailsBoth(t *testing.T) {
	r := Check(ZMod(6), []int64{0, 1, 2, 3, 4, 5}, nil)
	expectVerdict(t, r, false, false, true)
}

func TestCheckZMod5IsZeroDivisorFreeButNotZeroSumFree(t *testing.T) {
	// ℤ/5ℤ is a field: no zero divisors, but 1 ⊕ 4 = 0.
	r := Check(ZMod(5), []int64{0, 1, 2, 3, 4}, nil)
	expectVerdict(t, r, false, true, true)
}

func TestCheckPowerSetFailsZeroProduct(t *testing.T) {
	u := value.NewSet("a", "b")
	subsets := []value.Set{nil, value.NewSet("a"), value.NewSet("b"), u}
	r := Check(PowerSet(u), subsets, nil)
	expectVerdict(t, r, true, false, true)
}

func TestCheckTrivialBooleanAlgebraComplies(t *testing.T) {
	r := Check(BoolOrAnd(), []bool{false, true}, nil)
	expectVerdict(t, r, true, true, true)
	if !r.AddAssociative.Holds || !r.MulCommutative.Holds || !r.Distributive.Holds {
		t.Error("the two-element Boolean algebra should pass every diagnostic")
	}
}

func TestCheckStringMaxMinComplies(t *testing.T) {
	r := Check(StringMaxMin(), []string{"", "a", "ab", "b", "zz"}, nil)
	expectVerdict(t, r, true, true, true)
}

func TestCheckNatComplies(t *testing.T) {
	r := Check(NatPlusTimes(), []int64{0, 1, 2, 3, 7, 13}, nil)
	expectVerdict(t, r, true, true, true)
}

func TestCheckDiagnosticsIndependentOfTheorem(t *testing.T) {
	// first.* satisfies the theorem but is not ⊕-commutative: the paper's
	// point that semiring laws are orthogonal to adjacency correctness.
	r := Check(LeftmostNonzero(), []float64{0, 1, 2, 3}, value.FormatFloat)
	if !r.TheoremII1() {
		t.Fatal("first.* should satisfy Theorem II.1")
	}
	if r.AddCommutative.Holds {
		t.Error("first.* should fail ⊕-commutativity diagnostics")
	}
}

func TestReportStringFormat(t *testing.T) {
	e, _ := Lookup("+.*")
	s := Check(e.Ops, e.Sample, value.FormatFloat).String()
	for _, want := range []string{"operator pair +.*", "zero-sum-free", "no-zero-divisors", "annihilator", "Theorem II.1 satisfied"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	bad := Check(ZMod(6), []int64{0, 1, 2, 3, 4, 5}, nil).String()
	if !strings.Contains(bad, "VIOLATED") {
		t.Errorf("violating report should say VIOLATED:\n%s", bad)
	}
}

func TestCheckNilFormatterDefaults(t *testing.T) {
	r := Check(NatPlusTimes(), []int64{0, 1}, nil)
	if !r.TheoremII1() {
		t.Error("nil formatter should not affect the verdict")
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Lookup("+.*"); !ok {
		t.Error("+.* should resolve")
	}
	if _, ok := Lookup("plus.times"); !ok {
		t.Error("alias plus.times should resolve")
	}
	if _, ok := Lookup("no-such-pair"); ok {
		t.Error("bogus name resolved")
	}
	names := Names()
	if len(names) < 10 {
		t.Errorf("expected at least 10 registered pairs, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Error("Names() not sorted")
		}
	}
}

func TestClassifyMatchesPaperSectionIII(t *testing.T) {
	rows := Classify()
	byName := map[string]ClassRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	compliant := []string{"+.*", "max.*", "min.*", "max.+", "min.+", "max.min", "min.max",
		"nat+.nat*", "or.and", "smax.smin", "first.*"}
	for _, n := range compliant {
		r, ok := byName[n]
		if !ok {
			t.Errorf("classification missing %s", n)
			continue
		}
		if !r.TheoremOK {
			t.Errorf("%s should comply (witness: %s)", n, r.Witness)
		}
	}
	nonCompliant := []string{"max.+@0", "max.+@0-signed", "real+.real*", "zmod6", "union.intersect", "int+.int*"}
	for _, n := range nonCompliant {
		r, ok := byName[n]
		if !ok {
			t.Errorf("classification missing %s", n)
			continue
		}
		if r.TheoremOK {
			t.Errorf("%s should NOT comply", n)
		}
		if r.Witness == "" {
			t.Errorf("%s should carry a violation witness", n)
		}
	}
}
