package semiring

import (
	"encoding/json"
	"fmt"
	"io"
)

// algebraSpec is the JSON wire form of a FiniteAlgebra. Tables are
// written with element *names* for readability:
//
//	{
//	  "name": "bool",
//	  "elements": ["0", "1"],
//	  "zero": "0",
//	  "one": "1",
//	  "add": [["0","1"],["1","1"]],
//	  "mul": [["0","0"],["0","1"]]
//	}
type algebraSpec struct {
	Name     string     `json:"name"`
	Elements []string   `json:"elements"`
	Zero     string     `json:"zero"`
	One      string     `json:"one"`
	Add      [][]string `json:"add"`
	Mul      [][]string `json:"mul"`
}

// ParseFiniteAlgebraJSON reads a JSON algebra specification and returns
// the validated algebra plus its display name. This is the semiringlab
// -custom input format: define any finite ⊕.⊗ pair in data and run the
// Theorem II.1 analysis on it.
func ParseFiniteAlgebraJSON(r io.Reader) (*FiniteAlgebra, string, error) {
	var spec algebraSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, "", fmt.Errorf("semiring: parse algebra: %w", err)
	}
	if spec.Name == "" {
		spec.Name = "custom"
	}
	idx := make(map[string]int, len(spec.Elements))
	for i, e := range spec.Elements {
		idx[e] = i
	}
	toIdx := func(tblName string, tbl [][]string) ([][]int, error) {
		out := make([][]int, len(tbl))
		for i, row := range tbl {
			out[i] = make([]int, len(row))
			for j, name := range row {
				k, ok := idx[name]
				if !ok {
					return nil, fmt.Errorf("semiring: %s[%d][%d] references unknown element %q", tblName, i, j, name)
				}
				out[i][j] = k
			}
		}
		return out, nil
	}
	add, err := toIdx("add", spec.Add)
	if err != nil {
		return nil, "", err
	}
	mul, err := toIdx("mul", spec.Mul)
	if err != nil {
		return nil, "", err
	}
	f, err := NewFiniteAlgebra(spec.Elements, spec.Zero, spec.One, add, mul)
	if err != nil {
		return nil, "", err
	}
	return f, spec.Name, nil
}
