package semiring

import (
	"math"

	"adjarray/internal/value"
)

// AdversarialSample extends an entry's canonical domain sample with the
// float64 values that historically break sparse-kernel agreement: NaN
// (breaks the annihilator for +.* since 0 ⊗ NaN = NaN), both infinities
// (the Zero element of the tropical pairs, and an absorbing non-zero for
// others), signed zero, and exactly-representable dyadic magnitudes far
// apart enough to exercise absorption without introducing rounding —
// powers of two keep ⊕ = + exactly associative on sums of fewer than
// 2^10 terms, so the conformance harness's associativity gate reflects
// genuine algebra properties rather than float noise.
//
// The returned sample deliberately ventures OFF the pair's stated
// domain (negative values for max.*, zero for min.*): the conformance
// harness uses the Theorem II.1 condition check on the sample to decide
// whether the dense oracle applies, so off-domain values downgrade an
// instance to cross-kernel agreement checking instead of producing
// false oracle mismatches.
func (e Entry) AdversarialSample() []float64 {
	extras := []float64{
		math.NaN(),
		value.PosInf,
		value.NegInf,
		0,
		math.Copysign(0, -1),
		0.25, 0.5,
		-2,
		1024,
		1 << 20,
	}
	out := append([]float64{}, e.Sample...)
	for _, x := range extras {
		dup := false
		for _, s := range out {
			if value.Float64Equal(s, x) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}
