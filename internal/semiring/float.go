package semiring

import (
	"math"

	"adjarray/internal/value"
)

// The seven operator pairs evaluated in Figures 3 and 5, over float64.
// Each pair's Zero is the element the paper's figures use as that
// operator's "respective value of zero, be it 0, −∞, or ∞":
//
//	+.*      0 = 0     1 = 1
//	max.*    0 = 0     1 = 1   (domain: non-negative reals)
//	min.*    0 = +Inf  1 = 1   (domain: positive reals ∪ {+Inf})
//	max.+    0 = -Inf  1 = 0
//	min.+    0 = +Inf  1 = 0
//	max.min  0 = 0     1 = +Inf (domain: non-negative reals)
//	min.max  0 = +Inf  1 = -Inf
//
// All seven satisfy the Theorem II.1 conditions on their stated domains
// and therefore always produce adjacency arrays.

func addF(a, b float64) float64 { return a + b }
func mulF(a, b float64) float64 { return a * b }
func maxF(a, b float64) float64 { return math.Max(a, b) }
func minF(a, b float64) float64 { return math.Min(a, b) }

// PlusTimes is the conventional arithmetic semiring +.× over the
// non-negative reals: ⊕ aggregates all parallel edges, so adjacency
// entries count/sum edge-weight products.
func PlusTimes() Ops[float64] {
	return Ops[float64]{Name: "+.*", Add: addF, Mul: mulF, Zero: 0, One: 1, Equal: value.Float64Equal,
		kernel: KernelPlusTimesF64}
}

// MaxTimes is max.× over the non-negative reals: selects the edge with
// the largest weighted product among parallel edges.
func MaxTimes() Ops[float64] {
	return Ops[float64]{Name: "max.*", Add: maxF, Mul: mulF, Zero: 0, One: 1, Equal: value.Float64Equal}
}

// MinTimes is min.× over the positive reals with +Inf as 0: selects the
// edge with the smallest weighted product.
func MinTimes() Ops[float64] {
	return Ops[float64]{Name: "min.*", Add: minF, Mul: timesInfAbsorbing, Zero: value.PosInf, One: 1, Equal: value.Float64Equal}
}

// timesInfAbsorbing is ordinary multiplication except that the min.×
// zero element +Inf absorbs even against 0, avoiding the IEEE 0×Inf=NaN
// hole so the algebra's annihilator law holds on the whole float range.
func timesInfAbsorbing(a, b float64) float64 {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return value.PosInf
	}
	return a * b
}

// MaxPlus is the tropical max.+ pair with −Inf as 0 and 0 as 1: selects
// the edge with the largest weighted sum. With −Inf (rather than the
// number 0) as the zero element this pair satisfies all three
// Theorem II.1 conditions; contrast MaxPlusAtZero.
func MaxPlus() Ops[float64] {
	return Ops[float64]{Name: "max.+", Add: maxF, Mul: plusNegInfAbsorbing, Zero: value.NegInf, One: 0, Equal: value.Float64Equal}
}

// plusNegInfAbsorbing is ordinary addition except that −Inf absorbs even
// against +Inf (IEEE would give NaN), keeping 0 = −Inf a true annihilator.
func plusNegInfAbsorbing(a, b float64) float64 {
	if math.IsInf(a, -1) || math.IsInf(b, -1) {
		return value.NegInf
	}
	return a + b
}

// MinPlus is the tropical min.+ pair with +Inf as 0 and 0 as 1: selects
// the edge with the smallest weighted sum (the shortest-path algebra).
func MinPlus() Ops[float64] {
	return Ops[float64]{Name: "min.+", Add: minF, Mul: plusPosInfAbsorbing, Zero: value.PosInf, One: 0, Equal: value.Float64Equal}
}

func plusPosInfAbsorbing(a, b float64) float64 {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return value.PosInf
	}
	return a + b
}

// MaxMin is the bottleneck max.min pair over the non-negative reals with
// 0 as 0 and +Inf as 1: selects the largest of all the shortest
// connections (widest-path algebra).
func MaxMin() Ops[float64] {
	return Ops[float64]{Name: "max.min", Add: maxF, Mul: minF, Zero: 0, One: value.PosInf, Equal: value.Float64Equal}
}

// MinMax is the dual min.max pair with +Inf as 0 and −Inf as 1: selects
// the smallest of all the largest connections.
func MinMax() Ops[float64] {
	return Ops[float64]{Name: "min.max", Add: minF, Mul: maxF, Zero: value.PosInf, One: value.NegInf, Equal: value.Float64Equal}
}

// MaxPlusAtZero is the paper's Section III *non-example*: max.+ anchored
// at the number 0 over the non-negative reals. max still has identity 0,
// and + still has identity 0, but 0 fails to annihilate (0 ⊗ v = v ≠ 0),
// so a vertex pair with no connecting edge can still receive a non-zero
// adjacency entry. Check reports exactly that violation.
func MaxPlusAtZero() Ops[float64] {
	return Ops[float64]{Name: "max.+@0", Add: maxF, Mul: addF, Zero: 0, One: 0, Equal: value.Float64Equal}
}

// Figure3Pairs returns the seven operator pairs in the order the paper's
// Figure 3 and Figure 5 present them.
func Figure3Pairs() []Ops[float64] {
	return []Ops[float64]{
		PlusTimes(), MaxTimes(), MinTimes(), MaxPlus(), MinPlus(), MaxMin(), MinMax(),
	}
}
