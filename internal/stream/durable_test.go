package stream

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adjarray/internal/semiring"
	"adjarray/internal/wal"
)

// snapEqual asserts two snapshots are bit-identical: same counters and
// Equal adjacency and incidence arrays (key sets included).
func snapEqual(t *testing.T, got, want Snapshot[float64], label string) {
	t.Helper()
	// Exact is deliberately NOT compared: a checkpoint forces a fold
	// boundary a pure in-memory run may not have, and the flag is a
	// conservative proof marker, not part of the data.
	if got.Edges != want.Edges || got.Epoch != want.Epoch {
		t.Fatalf("%s: counters (edges %d epoch %d), want (%d %d)",
			label, got.Edges, got.Epoch, want.Edges, want.Epoch)
	}
	eq := func(a, b float64) bool { return a == b }
	if !got.Adjacency.Equal(want.Adjacency, eq) {
		t.Fatalf("%s: adjacency diverged", label)
	}
	if !got.Eout.Equal(want.Eout, eq) {
		t.Fatalf("%s: Eout diverged", label)
	}
	if !got.Ein.Equal(want.Ein, eq) {
		t.Fatalf("%s: Ein diverged", label)
	}
}

// durableBatches generates deterministic batches; batch b is derived
// only from (seed, b) so a control view can replay any prefix.
func durableBatches(seed int64, batches, perBatch int) [][]Edge[float64] {
	out := make([][]Edge[float64], batches)
	k := 0
	for b := range out {
		r := rand.New(rand.NewSource(seed + int64(b)))
		edges := make([]Edge[float64], perBatch)
		for i := range edges {
			edges[i] = Weighted(
				fmtKey(k),
				"v"+string(rune('a'+r.Intn(9))),
				"v"+string(rune('a'+r.Intn(9))),
				float64(r.Intn(7))+0.5,
				float64(r.Intn(7))+0.5,
			)
			k++
		}
		out[b] = edges
	}
	return out
}

func fmtKey(k int) string {
	const digits = "0123456789"
	buf := []byte("k0000000")
	for i := len(buf) - 1; k > 0 && i > 0; i-- {
		buf[i] = digits[k%10]
		k /= 10
	}
	return string(buf)
}

// controlView folds the first n batches into a plain in-memory view.
func controlView(t *testing.T, batches [][]Edge[float64], n int, ops semiring.Ops[float64]) Snapshot[float64] {
	t.Helper()
	v := NewView(ops, Options{})
	for _, b := range batches[:n] {
		if err := v.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return mustSnap(t, v)
}

func plusTimes(t *testing.T) semiring.Ops[float64] {
	t.Helper()
	e, ok := semiring.Lookup("+.*")
	if !ok {
		t.Fatal("+.* pair not registered")
	}
	return e.Ops
}

func TestDurableRoundTripCleanClose(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(1, 12, 7)

	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	for _, b := range batches {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Durability(); st.Epoch != 12 || st.DurableEpoch != 12 || st.WALLag != 0 {
		t.Fatalf("batch policy durability = %+v, want epoch==durable==12", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.Replayed != 12 || rec.CheckpointSeq != 0 || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want 12 replayed from empty checkpoint", rec)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, batches, 12, ops), "clean close")
}

func TestDurableCheckpointPlusTailReplay(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(2, 10, 5)

	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:6] {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[6:] {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	d.Abort() // unclean exit: no final checkpoint

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.CheckpointSeq != 6 || rec.Replayed != 4 {
		t.Fatalf("recovery = %+v, want checkpoint 6 + 4 replayed", rec)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, batches, 10, ops), "checkpoint+tail")

	// The recovered view must keep ingesting with the key discipline
	// intact (lastKey, autoSeq survived the round trip).
	extra := durableBatches(99, 1, 3)[0]
	for i := range extra {
		extra[i].Key = "z" + extra[i].Key
	}
	if err := d2.Append(extra); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestDurableAutoKeysReplayIdentically(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	// Auto-assigned keys: empty Key fields, regenerated on replay from
	// the checkpointed autoSeq/autoBase.
	mk := func(n int) []Edge[float64] {
		edges := make([]Edge[float64], n)
		for i := range edges {
			edges[i] = Edge[float64]{Src: "a", Dst: "b", Out: 2, In: 3, HasOut: true, HasIn: true}
		}
		return edges
	}
	if err := d.Append(mk(4)); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(mk(3)); err != nil {
		t.Fatal(err)
	}
	want, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d.Abort()

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, want, "auto keys")
}

func TestDurableTornTailRecoversPrefix(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(3, 8, 6)

	d, err := Open(dir, ops, DurableOptions[float64]{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	d.Abort()

	// Tear the final record: chop a few bytes off the last segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err %v)", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.TornBytes == 0 || rec.Replayed != 7 {
		t.Fatalf("recovery = %+v, want 7 replayed with a torn tail", rec)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, batches, 7, ops), "torn tail")
}

func TestDurableMidLogCorruptionIsTypedError(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(4, 6, 5)

	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	d.Abort()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err %v)", err)
	}
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[20] ^= 0x10 // inside the first record's payload
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, ops, DurableOptions[float64]{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("mid-log corruption: Open err = %v, want wal.ErrCorrupt", err)
	}
}

func TestDurableStaleCheckpointLongerWAL(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(5, 10, 4)

	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:5] {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[5:] {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Abort()

	// Damage the newest checkpoint: recovery must fall back to the
	// stale one and replay the longer WAL tail over it.
	cks, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(cks) != 2 {
		t.Fatalf("want 2 checkpoints, got %d (err %v)", len(cks), err)
	}
	newest := cks[len(cks)-1]
	if !strings.Contains(newest, "000a") {
		t.Fatalf("unexpected newest checkpoint %s", newest)
	}
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen with stale checkpoint: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.CheckpointSeq != 5 || rec.Replayed != 5 || rec.SkippedCheckpoints != 1 {
		t.Fatalf("recovery = %+v, want checkpoint 5 + 5 replayed + 1 skipped", rec)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, batches, 10, ops), "stale checkpoint")
}

func TestDurableCheckpointPayloadCorruptionFailsTyped(t *testing.T) {
	// A sole checkpoint whose payload is damaged under an intact CRC is
	// impossible; damaged WITH the CRC catching it and no fallback must
	// be the typed error. Damage that somehow passes the CRC layer is
	// simulated by corrupting payload THROUGH a rewritten checkpoint —
	// covered in decodeView validation tests elsewhere; here the
	// end-to-end path.
	ops := plusTimes(t)
	dir := t.TempDir()
	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(durableBatches(6, 1, 5)[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Abort()
	cks, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(cks) != 1 {
		t.Fatalf("want 1 checkpoint, got %d", len(cks))
	}
	buf, err := os.ReadFile(cks[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0x04
	if err := os.WriteFile(cks[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, ops, DurableOptions[float64]{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("sole damaged checkpoint: Open err = %v, want wal.ErrCorrupt", err)
	}
}

func TestDurableBackgroundCheckpoint(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	d, err := Open(dir, ops, DurableOptions[float64]{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range durableBatches(7, 5, 4) {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cks, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt")); len(cks) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.CheckpointSeq < 3 {
		t.Fatalf("recovery = %+v, want a checkpoint at seq >= 3", rec)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, durableBatches(7, 5, 4), 5, ops), "background checkpoint")
}

func TestDurableRejectedBatchTouchesNothing(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	good := durableBatches(8, 2, 5)
	if err := d.Append(good[0]); err != nil {
		t.Fatal(err)
	}
	// A batch violating the key discipline: its first key sorts before
	// the log's last key. The view rejects it; the WAL must not see it.
	bad := []Edge[float64]{Weighted("a-before-everything", "x", "y", 1.0, 1.0)}
	if err := d.Append(bad); err == nil {
		t.Fatal("out-of-order batch accepted")
	}
	if err := d.Append(good[1]); err != nil {
		t.Fatalf("append after rejection: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.Replayed != 2 {
		t.Fatalf("recovery replayed %d records, want 2 (rejected batch logged?)", rec.Replayed)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, good, 2, ops), "rejection")
}

func TestDurableWrongAlgebraRefused(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, plusTimes(t), DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(durableBatches(9, 1, 4)[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	e, ok := semiring.Lookup("min.+")
	if !ok {
		t.Fatal("min.+ pair not registered")
	}
	if _, err := Open(dir, e.Ops, DurableOptions[float64]{}); err == nil {
		t.Fatal("checkpoint written under +.* opened under min.+")
	}
}
