package stream

import (
	"fmt"
	"sync"
	"time"

	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/wal"
)

// DurableOptions tunes a durable view opened with Open.
type DurableOptions[V any] struct {
	// View tunes the in-memory view exactly as Options does for NewView.
	View Options
	// WAL selects the fsync policy and segment sizing (wal.Options
	// defaults apply).
	WAL wal.Options
	// Codec serializes V for the log and checkpoints. Zero selects the
	// built-in codec when V is float64; other value types must supply
	// one.
	Codec ValueCodec[V]
	// CheckpointEvery triggers a background checkpoint once this many
	// batches accumulate past the last checkpoint (0 disables the
	// batch-count trigger).
	CheckpointEvery int
	// CheckpointInterval triggers a background checkpoint on a timer
	// when batches arrived since the last one (0 disables the timer).
	CheckpointInterval time.Duration
	// KeepCheckpoints is how many checkpoint files to retain (the
	// newest is the recovery source, older ones are corruption
	// fallbacks). <= 0 selects 2.
	KeepCheckpoints int
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// CheckpointSeq is the WAL seq the loaded checkpoint covered (0:
	// started from the empty state).
	CheckpointSeq uint64
	// SkippedCheckpoints counts newer checkpoint files that failed
	// validation and were passed over for an older valid one.
	SkippedCheckpoints int
	// Replayed is how many WAL records were re-applied on top of the
	// checkpoint.
	Replayed int
	// TornBytes is how many trailing bytes were truncated from the log
	// as an interrupted final write (0: the log ended cleanly).
	TornBytes int64
}

// DurabilityStats reports a durable view's position for health
// endpoints.
type DurabilityStats struct {
	// Epoch is the number of batches applied to the in-memory view.
	Epoch uint64
	// DurableEpoch is the highest batch acknowledged durable (on
	// stable storage, by fsync or by a covering checkpoint).
	DurableEpoch uint64
	// WALLag = Epoch - DurableEpoch: batches that would be lost by a
	// crash right now.
	WALLag uint64
	// CheckpointSeq is the newest on-disk checkpoint's covered seq.
	CheckpointSeq uint64
	// Policy is the fsync policy's string form (batch/interval/off).
	Policy string
	// Recovery is what the last Open found.
	Recovery RecoveryInfo
}

// DurableView is a View whose appended batches survive process death:
// every Append is applied to the in-memory view and then written to a
// write-ahead log, and Open rebuilds the identical view from the last
// checkpoint plus the log tail. One WAL record holds one batch, and
// the record's sequence number equals the view's epoch after the
// batch, so "epoch" is the durability unit throughout.
//
// The append path is view-first: a batch the view rejects (key
// discipline, guard refusal, grow failure) never reaches the log, so
// recovery replays only batches that were accepted. The window the
// opposite order would open — a logged batch that fails on replay —
// cannot happen; the crash window that remains (accepted in memory,
// process dies before the log write) loses only a batch that was never
// acknowledged, which is exactly the contract.
//
// Reads go through Snapshot as on a plain View. Ingest must go through
// this type's Append — appending to the underlying View directly would
// desynchronize epoch and log.
type DurableView[V any] struct {
	mu    sync.Mutex
	v     *View[V]
	w     *wal.Writer
	dir   string
	codec ValueCodec[V]
	opt   DurableOptions[V]

	ckptSeq uint64 // newest on-disk checkpoint's covered seq
	buf     []byte // record encode scratch, reused under mu
	failed  error  // sticky: a WAL write failed after the view applied
	closed  bool

	recovery RecoveryInfo

	notify chan struct{} // batch-count checkpoint trigger
	done   chan struct{}
	bg     sync.WaitGroup
}

// Open recovers (or creates) a durable view in dir: it loads the
// newest valid checkpoint, replays the WAL records past it through the
// normal Append path, repairs a torn final record, and opens a fresh
// log segment for new batches. Mid-log corruption and
// every-checkpoint-invalid states fail with an error matching
// wal.ErrCorrupt — never a silently diverged view.
func Open[V any](dir string, ops semiring.Ops[V], opt DurableOptions[V]) (*DurableView[V], error) {
	codec := opt.Codec
	if codec.Append == nil || codec.Decode == nil {
		var ok bool
		if codec, ok = defaultCodec[V](); !ok {
			return nil, fmt.Errorf("stream: no value codec for this value type; set DurableOptions.Codec")
		}
	}
	if opt.KeepCheckpoints <= 0 {
		opt.KeepCheckpoints = 2
	}

	var rec RecoveryInfo
	payload, ckptSeq, skipped, err := wal.LoadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	rec.CheckpointSeq = ckptSeq
	rec.SkippedCheckpoints = len(skipped)
	var v *View[V]
	if payload != nil {
		v, err = decodeView(payload, ops, opt.View, codec)
		if err != nil {
			return nil, fmt.Errorf("stream: checkpoint seq %d: %w", ckptSeq, err)
		}
		if uint64(v.epoch) != ckptSeq {
			return nil, fmt.Errorf("stream: checkpoint seq %d holds view epoch %d", ckptSeq, v.epoch)
		}
	} else {
		v = NewView(ops, opt.View)
	}

	expect := ckptSeq
	st, err := wal.Replay(dir, ckptSeq, func(seq uint64, payload []byte) error {
		if seq != expect+1 {
			return fmt.Errorf("stream: replay reached seq %d at view epoch %d", seq, expect)
		}
		edges, err := decodeBatch(payload, codec)
		if err != nil {
			return fmt.Errorf("stream: wal record seq %d: %w", seq, err)
		}
		if err := v.Append(edges); err != nil {
			return fmt.Errorf("stream: replaying wal record seq %d: %w", seq, err)
		}
		expect = seq
		return nil
	})
	if err != nil {
		return nil, err
	}
	rec.Replayed = st.Records
	rec.TornBytes = st.TornBytes

	nextSeq := st.LastSeq + 1
	if ckptSeq+1 > nextSeq {
		nextSeq = ckptSeq + 1
	}
	w, err := wal.NewWriter(dir, nextSeq, opt.WAL)
	if err != nil {
		return nil, err
	}
	d := &DurableView[V]{
		v: v, w: w, dir: dir, codec: codec, opt: opt,
		ckptSeq: ckptSeq, recovery: rec,
		notify: make(chan struct{}, 1), done: make(chan struct{}),
	}
	if opt.CheckpointEvery > 0 || opt.CheckpointInterval > 0 {
		d.bg.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// checkpointLoop is the background checkpoint + retirement worker: it
// wakes on the batch-count trigger and/or the timer and checkpoints
// when the view advanced past the last checkpoint, bounding both
// replay time and log size.
func (d *DurableView[V]) checkpointLoop() {
	defer d.bg.Done()
	var tick <-chan time.Time
	if d.opt.CheckpointInterval > 0 {
		t := time.NewTicker(d.opt.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-d.done:
			return
		case <-d.notify:
		case <-tick:
		}
		d.mu.Lock()
		if !d.closed && d.failed == nil && d.epochLocked() > d.ckptSeq {
			// Errors here surface on the next explicit Checkpoint/Close;
			// the sticky failure marker keeps them from being lost.
			if err := d.checkpointLocked(); err != nil {
				d.failed = err
			}
		}
		d.mu.Unlock()
	}
}

func (d *DurableView[V]) epochLocked() uint64 {
	d.v.mu.Lock()
	e := uint64(d.v.epoch)
	d.v.mu.Unlock()
	return e
}

// Append ingests one batch durably: the view applies it first (a
// rejected batch touches nothing), then the batch is framed into the
// WAL under the configured fsync policy. When the policy is
// SyncEveryAppend the batch is durable when Append returns; otherwise
// durability trails by at most the sync interval (see DurableEpoch).
func (d *DurableView[V]) Append(edges []Edge[V]) error {
	if len(edges) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("stream: durable view is closed")
	}
	if d.failed != nil {
		return fmt.Errorf("stream: durable view failed: %w", d.failed)
	}
	d.buf = appendBatch(d.buf[:0], edges, d.codec)
	before := d.epochLocked()
	if err := d.v.Append(edges); err != nil {
		if d.epochLocked() == before {
			// The batch was rolled back; the view is unchanged and the
			// log must stay unchanged too.
			return err
		}
		// The batch committed but post-commit maintenance failed. The
		// epoch advanced, so the log record must still be written to
		// keep seq == epoch; the maintenance error is reported after.
		if _, werr := d.w.Append(d.buf); werr != nil {
			d.failed = werr
			return werr
		}
		return err
	}
	if _, err := d.w.Append(d.buf); err != nil {
		// The view is now ahead of the log; acknowledging further
		// batches would promise durability the log cannot deliver.
		d.failed = err
		return err
	}
	if d.opt.CheckpointEvery > 0 && d.epochLocked()-d.ckptSeq >= uint64(d.opt.CheckpointEvery) {
		select {
		case d.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// Sync forces the log to stable storage, advancing DurableEpoch to
// Epoch regardless of policy.
func (d *DurableView[V]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("stream: durable view is closed")
	}
	return d.w.Sync()
}

// Checkpoint writes a full-state checkpoint covering everything
// appended so far, then retires log segments and old checkpoints it
// supersedes.
func (d *DurableView[V]) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("stream: durable view is closed")
	}
	if d.failed != nil {
		return fmt.Errorf("stream: durable view failed: %w", d.failed)
	}
	return d.checkpointLocked()
}

func (d *DurableView[V]) checkpointLocked() error {
	v := d.v
	v.mu.Lock()
	err := v.flushLogLocked()
	if err == nil {
		err = v.materializeLocked()
	}
	if err == nil {
		err = v.embedMainLocked(v.eout.ColKeys(), v.ein.ColKeys())
	}
	if err != nil {
		v.mu.Unlock()
		return err
	}
	seq := uint64(v.epoch)
	payload := v.encodeViewLocked(nil, d.codec)
	v.mu.Unlock()
	if seq == d.ckptSeq {
		return nil
	}
	if _, err := wal.WriteCheckpoint(d.dir, seq, payload); err != nil {
		return err
	}
	d.ckptSeq = seq
	if _, err := wal.RetireCheckpoints(d.dir, d.opt.KeepCheckpoints); err != nil {
		return err
	}
	_, err = wal.RetireSegments(d.dir, seq)
	return err
}

// Snapshot returns an immutable read view, exactly as View.Snapshot.
func (d *DurableView[V]) Snapshot() (Snapshot[V], error) { return d.v.Snapshot() }

// View exposes the maintained in-memory view for reads (Snapshot,
// Stats, Compact, SubRef queries). Appending to it directly BYPASSES
// the log — such batches exist only until the process exits. Always
// append through the DurableView.
func (d *DurableView[V]) View() *View[V] { return d.v }

// Stats returns the in-memory view's counters.
func (d *DurableView[V]) Stats() Stats { return d.v.Stats() }

// InternerStats delegates to the wrapped view's interners.
func (d *DurableView[V]) InternerStats() (out, in keys.InternerStats) { return d.v.InternerStats() }

// Recovery reports what Open found on disk.
func (d *DurableView[V]) Recovery() RecoveryInfo { return d.recovery }

// Durability reports the view's durability position.
func (d *DurableView[V]) Durability() DurabilityStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	epoch := d.epochLocked()
	durable := d.ckptSeq
	if !d.closed {
		if ws := d.w.DurableSeq(); ws > durable {
			durable = ws
		}
	}
	lag := uint64(0)
	if epoch > durable {
		lag = epoch - durable
	}
	return DurabilityStats{
		Epoch:         epoch,
		DurableEpoch:  durable,
		WALLag:        lag,
		CheckpointSeq: d.ckptSeq,
		Policy:        d.opt.WAL.Policy.String(),
		Recovery:      d.recovery,
	}
}

// Close syncs the log and releases the view. It does NOT write a final
// checkpoint — callers wanting one (graceful shutdown) call Checkpoint
// first; recovery replays the log tail either way.
func (d *DurableView[V]) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.done)
	err := d.w.Close()
	if d.failed != nil && err == nil {
		err = d.failed
	}
	d.mu.Unlock()
	d.bg.Wait()
	return err
}

// Abort releases the view without the graceful-shutdown steps — no
// final checkpoint, no durability promise beyond what the fsync policy
// already delivered. Tests use it to simulate an unclean exit before
// reopening the directory.
func (d *DurableView[V]) Abort() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.done)
		d.w.Close() //adjlint:ignore syncerr deliberate crash simulation; losing unsynced bytes is the point
	}
	d.mu.Unlock()
	d.bg.Wait()
}
