package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adjarray/internal/iofault"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/wal"
)

// DurableOptions tunes a durable view opened with Open.
type DurableOptions[V any] struct {
	// View tunes the in-memory view exactly as Options does for NewView.
	View Options
	// WAL selects the fsync policy and segment sizing (wal.Options
	// defaults apply).
	WAL wal.Options
	// Codec serializes V for the log and checkpoints. Zero selects the
	// built-in codec when V is float64; other value types must supply
	// one.
	Codec ValueCodec[V]
	// CheckpointEvery triggers a background checkpoint once this many
	// batches accumulate past the last checkpoint (0 disables the
	// batch-count trigger).
	CheckpointEvery int
	// CheckpointInterval triggers a background checkpoint on a timer
	// when batches arrived since the last one (0 disables the timer).
	CheckpointInterval time.Duration
	// KeepCheckpoints is how many checkpoint files to retain (the
	// newest is the recovery source, older ones are corruption
	// fallbacks). <= 0 selects 2.
	KeepCheckpoints int
	// FS routes every durable byte — WAL segments, checkpoints,
	// directory fsyncs — through a filesystem seam; nil selects the
	// real filesystem. Tests and the crashtest harness install an
	// iofault.FaultFS here.
	FS iofault.FS
	// CheckpointRetries is how many extra attempts a failed checkpoint
	// write gets before the attempt is abandoned until the next
	// trigger (transient ENOSPC/EIO may clear). <= 0 selects 2.
	CheckpointRetries int
	// CheckpointBackoff is the delay before the first checkpoint
	// retry, doubling each retry. Appends stall for the backoff total
	// in the worst case, so it stays small. <= 0 selects 5ms.
	CheckpointBackoff time.Duration
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// CheckpointSeq is the WAL seq the loaded checkpoint covered (0:
	// started from the empty state).
	CheckpointSeq uint64
	// SkippedCheckpoints counts newer checkpoint files that failed
	// validation and were passed over for an older valid one.
	SkippedCheckpoints int
	// Replayed is how many WAL records were re-applied on top of the
	// checkpoint.
	Replayed int
	// TornBytes is how many trailing bytes were truncated from the log
	// as an interrupted final write (0: the log ended cleanly).
	TornBytes int64
	// ReapedTempFiles is how many orphaned checkpoint temp files
	// (ckpt-*.tmp, leftovers of a write that died mid-publish) Open
	// removed.
	ReapedTempFiles int
}

// StorageState is the storage-health state machine a durable view
// surfaces: ok → degraded → read-only.
type StorageState int

const (
	// StorageOK: the durable path is healthy.
	StorageOK StorageState = iota
	// StorageDegraded: the last checkpoint attempt failed (after
	// retries). Appends still work and remain durable through the WAL;
	// replay time and log size grow until a checkpoint succeeds. The
	// state clears on the next successful checkpoint.
	StorageDegraded
	// StorageReadOnly: a WAL write or fsync failed. The write path is
	// permanently wedged (see wal.WedgedError); appends are refused
	// with ErrReadOnly while reads keep serving the in-memory view.
	// Recovery is reopening the directory once the fault clears.
	StorageReadOnly
)

func (s StorageState) String() string {
	switch s {
	case StorageOK:
		return "ok"
	case StorageDegraded:
		return "degraded"
	case StorageReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("StorageState(%d)", int(s))
	}
}

// StorageHealth is one durable store's position in the state machine.
type StorageHealth struct {
	// State is ok, degraded, or read-only.
	State StorageState
	// Faults counts I/O faults observed on the durable path since
	// Open (failed WAL writes/fsyncs, failed checkpoint attempts).
	Faults uint64
	// Err is the sticky failure (read-only) or the last checkpoint
	// error (degraded); "" when ok.
	Err string
}

// ErrReadOnly matches the error a durable view's Append returns once a
// storage failure has wedged the write path:
// errors.Is(err, stream.ErrReadOnly). Reads stay available; serving
// layers map this to 503 + Retry-After.
var ErrReadOnly = errors.New("stream: storage is read-only")

// readOnlyError carries the underlying storage failure behind
// ErrReadOnly.
type readOnlyError struct{ err error }

func (e *readOnlyError) Error() string {
	return "stream: durable view is read-only (storage failed): " + e.err.Error()
}

func (e *readOnlyError) Unwrap() error { return e.err }

func (e *readOnlyError) Is(target error) bool { return target == ErrReadOnly }

// DurabilityStats reports a durable view's position for health
// endpoints.
type DurabilityStats struct {
	// Epoch is the number of batches applied to the in-memory view.
	Epoch uint64
	// DurableEpoch is the highest batch acknowledged durable (on
	// stable storage, by fsync or by a covering checkpoint).
	DurableEpoch uint64
	// WALLag = Epoch - DurableEpoch: batches that would be lost by a
	// crash right now.
	WALLag uint64
	// CheckpointSeq is the newest on-disk checkpoint's covered seq.
	CheckpointSeq uint64
	// Policy is the fsync policy's string form (batch/interval/off).
	Policy string
	// Recovery is what the last Open found.
	Recovery RecoveryInfo
	// Storage is the store's storage-health state.
	Storage StorageHealth
}

// DurableView is a View whose appended batches survive process death:
// every Append is applied to the in-memory view and then written to a
// write-ahead log, and Open rebuilds the identical view from the last
// checkpoint plus the log tail. One WAL record holds one batch, and
// the record's sequence number equals the view's epoch after the
// batch, so "epoch" is the durability unit throughout.
//
// The append path is view-first: a batch the view rejects (key
// discipline, guard refusal, grow failure) never reaches the log, so
// recovery replays only batches that were accepted. The window the
// opposite order would open — a logged batch that fails on replay —
// cannot happen; the crash window that remains (accepted in memory,
// process dies before the log write) loses only a batch that was never
// acknowledged, which is exactly the contract.
//
// Reads go through Snapshot as on a plain View. Ingest must go through
// this type's Append — appending to the underlying View directly would
// desynchronize epoch and log.
type DurableView[V any] struct {
	mu    sync.Mutex
	v     *View[V]
	w     *wal.Writer
	dir   string
	fs    iofault.FS
	codec ValueCodec[V]
	opt   DurableOptions[V]

	ckptSeq uint64 // newest on-disk checkpoint's covered seq
	buf     []byte // record encode scratch, reused under mu
	failed  error  // sticky: a WAL write failed after the view applied
	ckptErr error  // last checkpoint failure (degraded); nil after success
	faults  atomic.Uint64
	closed  bool

	recovery RecoveryInfo

	notify chan struct{} // batch-count checkpoint trigger
	done   chan struct{}
	bg     sync.WaitGroup
}

// Open recovers (or creates) a durable view in dir: it loads the
// newest valid checkpoint, replays the WAL records past it through the
// normal Append path, repairs a torn final record, reaps orphaned
// checkpoint temp files, and opens a fresh log segment for new
// batches. Mid-log corruption and every-checkpoint-invalid states fail
// with an error matching wal.ErrCorrupt — never a silently diverged
// view.
func Open[V any](dir string, ops semiring.Ops[V], opt DurableOptions[V]) (*DurableView[V], error) {
	codec := opt.Codec
	if codec.Append == nil || codec.Decode == nil {
		var ok bool
		if codec, ok = defaultCodec[V](); !ok {
			return nil, fmt.Errorf("stream: no value codec for this value type; set DurableOptions.Codec")
		}
	}
	if opt.KeepCheckpoints <= 0 {
		opt.KeepCheckpoints = 2
	}
	if opt.CheckpointRetries <= 0 {
		opt.CheckpointRetries = 2
	}
	if opt.CheckpointBackoff <= 0 {
		opt.CheckpointBackoff = 5 * time.Millisecond
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = iofault.OS
	}
	opt.WAL.FS = fsys

	var rec RecoveryInfo
	// A temp file is never a recovery source; reap orphans before
	// looking for checkpoints so they cannot accumulate across crashes.
	reaped, err := wal.ReapTempCheckpoints(fsys, dir)
	if err != nil {
		return nil, err
	}
	rec.ReapedTempFiles = reaped
	payload, ckptSeq, skipped, err := wal.LoadCheckpointFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	rec.CheckpointSeq = ckptSeq
	rec.SkippedCheckpoints = len(skipped)
	var v *View[V]
	if payload != nil {
		v, err = decodeView(payload, ops, opt.View, codec)
		if err != nil {
			return nil, fmt.Errorf("stream: checkpoint seq %d: %w", ckptSeq, err)
		}
		if uint64(v.epoch) != ckptSeq {
			return nil, fmt.Errorf("stream: checkpoint seq %d holds view epoch %d", ckptSeq, v.epoch)
		}
	} else {
		v = NewView(ops, opt.View)
	}

	expect := ckptSeq
	st, err := wal.ReplayFS(fsys, dir, ckptSeq, func(seq uint64, payload []byte) error {
		if seq != expect+1 {
			return fmt.Errorf("stream: replay reached seq %d at view epoch %d", seq, expect)
		}
		edges, err := decodeBatch(payload, codec)
		if err != nil {
			return fmt.Errorf("stream: wal record seq %d: %w", seq, err)
		}
		if err := v.Append(edges); err != nil {
			return fmt.Errorf("stream: replaying wal record seq %d: %w", seq, err)
		}
		expect = seq
		return nil
	})
	if err != nil {
		return nil, err
	}
	rec.Replayed = st.Records
	rec.TornBytes = st.TornBytes

	nextSeq := st.LastSeq + 1
	if ckptSeq+1 > nextSeq {
		nextSeq = ckptSeq + 1
	}
	w, err := wal.NewWriter(dir, nextSeq, opt.WAL)
	if err != nil {
		return nil, err
	}
	d := &DurableView[V]{
		v: v, w: w, dir: dir, fs: fsys, codec: codec, opt: opt,
		ckptSeq: ckptSeq, recovery: rec,
		notify: make(chan struct{}, 1), done: make(chan struct{}),
	}
	if opt.CheckpointEvery > 0 || opt.CheckpointInterval > 0 {
		d.bg.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// checkpointLoop is the background checkpoint + retirement worker: it
// wakes on the batch-count trigger and/or the timer and checkpoints
// when the view advanced past the last checkpoint, bounding both
// replay time and log size.
func (d *DurableView[V]) checkpointLoop() {
	defer d.bg.Done()
	var tick <-chan time.Time
	if d.opt.CheckpointInterval > 0 {
		t := time.NewTicker(d.opt.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-d.done:
			return
		case <-d.notify:
		case <-tick:
		}
		d.mu.Lock()
		if !d.closed && d.failed == nil && d.epochLocked() > d.ckptSeq {
			// A failed checkpoint degrades the store (d.ckptErr, set
			// inside) but must NOT wedge it: the batches are already
			// durable through the WAL, and the next trigger retries.
			d.checkpointLocked() //adjlint:ignore syncerr degraded state carries the error; the next trigger retries
		}
		d.mu.Unlock()
	}
}

func (d *DurableView[V]) epochLocked() uint64 {
	d.v.mu.Lock()
	e := uint64(d.v.epoch)
	d.v.mu.Unlock()
	return e
}

// Append ingests one batch durably: the view applies it first (a
// rejected batch touches nothing), then the batch is framed into the
// WAL under the configured fsync policy. When the policy is
// SyncEveryAppend the batch is durable when Append returns; otherwise
// durability trails by at most the sync interval (see DurableEpoch).
//
// Once a WAL write or fsync has failed the store is read-only: every
// further Append returns an error matching ErrReadOnly and the durable
// boundary never advances past the last successful fsync.
func (d *DurableView[V]) Append(edges []Edge[V]) error {
	if len(edges) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("stream: durable view is closed")
	}
	if d.failed != nil {
		return &readOnlyError{err: d.failed}
	}
	d.buf = appendBatch(d.buf[:0], edges, d.codec)
	before := d.epochLocked()
	if err := d.v.Append(edges); err != nil {
		if d.epochLocked() == before {
			// The batch was rolled back; the view is unchanged and the
			// log must stay unchanged too.
			return err
		}
		// The batch committed but post-commit maintenance failed. The
		// epoch advanced, so the log record must still be written to
		// keep seq == epoch; the maintenance error is reported after.
		if _, werr := d.w.Append(d.buf); werr != nil {
			return d.storageFailedLocked(werr)
		}
		return err
	}
	if _, err := d.w.Append(d.buf); err != nil {
		// The view is now ahead of the log; acknowledging further
		// batches would promise durability the log cannot deliver.
		return d.storageFailedLocked(err)
	}
	if d.opt.CheckpointEvery > 0 && d.epochLocked()-d.ckptSeq >= uint64(d.opt.CheckpointEvery) {
		select {
		case d.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// storageFailedLocked records the sticky WAL failure and returns it
// wrapped so it (and every subsequent refusal) matches ErrReadOnly.
func (d *DurableView[V]) storageFailedLocked(err error) error {
	if d.failed == nil {
		d.failed = err
		d.faults.Add(1)
	}
	return &readOnlyError{err: d.failed}
}

// Sync forces the log to stable storage, advancing DurableEpoch to
// Epoch regardless of policy.
func (d *DurableView[V]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("stream: durable view is closed")
	}
	if d.failed != nil {
		return &readOnlyError{err: d.failed}
	}
	if err := d.w.Sync(); err != nil {
		return d.storageFailedLocked(err)
	}
	return nil
}

// Checkpoint writes a full-state checkpoint covering everything
// appended so far, then retires log segments and old checkpoints it
// supersedes. Transient write faults are retried with capped backoff;
// a checkpoint that still fails leaves the store degraded (WAL
// durability is unaffected) until a later attempt succeeds.
func (d *DurableView[V]) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("stream: durable view is closed")
	}
	if d.failed != nil {
		return &readOnlyError{err: d.failed}
	}
	return d.checkpointLocked()
}

func (d *DurableView[V]) checkpointLocked() error {
	v := d.v
	v.mu.Lock()
	err := v.flushLogLocked()
	if err == nil {
		err = v.materializeLocked()
	}
	if err == nil {
		err = v.embedMainLocked(v.eout.ColKeys(), v.ein.ColKeys())
	}
	if err != nil {
		// A view-maintenance failure, not a storage fault: report it
		// without touching the storage-health state.
		v.mu.Unlock()
		return err
	}
	seq := uint64(v.epoch)
	payload := v.encodeViewLocked(nil, d.codec)
	v.mu.Unlock()
	if seq == d.ckptSeq {
		return nil
	}
	// The write phase retries: ENOSPC/EIO can be transient (space
	// freed, path remounted), and the temp-file dance is idempotent.
	// Appends stall on d.mu for the backoff total, so it stays capped.
	backoff := d.opt.CheckpointBackoff
	for attempt := 0; ; attempt++ {
		_, err = wal.WriteCheckpointFS(d.fs, d.dir, seq, payload)
		if err == nil {
			break
		}
		d.faults.Add(1)
		// The failed attempt may have orphaned its temp file (its own
		// cleanup can fault too); reap best-effort.
		wal.ReapTempCheckpoints(d.fs, d.dir) //adjlint:ignore syncerr best-effort reap; the write error is the one reported
		if attempt >= d.opt.CheckpointRetries {
			d.ckptErr = err
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	d.ckptSeq = seq
	d.ckptErr = nil
	if _, err := wal.RetireCheckpointsFS(d.fs, d.dir, d.opt.KeepCheckpoints); err != nil {
		// The checkpoint itself is durable; failed retirement only
		// leaves extra files behind. Degraded, not fatal.
		d.faults.Add(1)
		d.ckptErr = err
		return err
	}
	if _, err := wal.RetireSegmentsFS(d.fs, d.dir, seq); err != nil {
		d.faults.Add(1)
		d.ckptErr = err
		return err
	}
	return nil
}

// Snapshot returns an immutable read view, exactly as View.Snapshot.
func (d *DurableView[V]) Snapshot() (Snapshot[V], error) { return d.v.Snapshot() }

// View exposes the maintained in-memory view for reads (Snapshot,
// Stats, Compact, SubRef queries). Appending to it directly BYPASSES
// the log — such batches exist only until the process exits. Always
// append through the DurableView.
func (d *DurableView[V]) View() *View[V] { return d.v }

// Stats returns the in-memory view's counters.
func (d *DurableView[V]) Stats() Stats { return d.v.Stats() }

// InternerStats delegates to the wrapped view's interners.
func (d *DurableView[V]) InternerStats() (out, in keys.InternerStats) { return d.v.InternerStats() }

// Recovery reports what Open found on disk.
func (d *DurableView[V]) Recovery() RecoveryInfo { return d.recovery }

// StorageHealth reports the store's position in the ok → degraded →
// read-only state machine.
func (d *DurableView[V]) StorageHealth() StorageHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.storageHealthLocked()
}

func (d *DurableView[V]) storageHealthLocked() StorageHealth {
	h := StorageHealth{Faults: d.faults.Load()}
	switch {
	case d.failed != nil:
		h.State = StorageReadOnly
		h.Err = d.failed.Error()
	case d.ckptErr != nil:
		h.State = StorageDegraded
		h.Err = d.ckptErr.Error()
	}
	return h
}

// Durability reports the view's durability position.
func (d *DurableView[V]) Durability() DurabilityStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	epoch := d.epochLocked()
	durable := d.ckptSeq
	if !d.closed {
		if ws := d.w.DurableSeq(); ws > durable {
			durable = ws
		}
	}
	lag := uint64(0)
	if epoch > durable {
		lag = epoch - durable
	}
	return DurabilityStats{
		Epoch:         epoch,
		DurableEpoch:  durable,
		WALLag:        lag,
		CheckpointSeq: d.ckptSeq,
		Policy:        d.opt.WAL.Policy.String(),
		Recovery:      d.recovery,
		Storage:       d.storageHealthLocked(),
	}
}

// Close syncs the log and releases the view. It does NOT write a final
// checkpoint — callers wanting one (graceful shutdown) call Checkpoint
// first; recovery replays the log tail either way.
func (d *DurableView[V]) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.done)
	err := d.w.Close()
	if d.failed != nil && err == nil {
		err = d.failed
	}
	d.mu.Unlock()
	d.bg.Wait()
	return err
}

// Abort releases the view without the graceful-shutdown steps — no
// final checkpoint, no durability promise beyond what the fsync policy
// already delivered. Tests use it to simulate an unclean exit before
// reopening the directory.
func (d *DurableView[V]) Abort() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.done)
		d.w.Close() //adjlint:ignore syncerr deliberate crash simulation; losing unsynced bytes is the point
	}
	d.mu.Unlock()
	d.bg.Wait()
}
