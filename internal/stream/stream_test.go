package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

func eqF(a, b float64) bool { return value.Float64Equal(a, b) }

func mustSnap[V any](t *testing.T, v *View[V]) Snapshot[V] {
	t.Helper()
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// randomEdges draws a multigraph edge list with monotone keys and
// weights drawn from the pair's sample domain (so folds exercise real
// values, including infinities for the tropical pairs).
func randomEdges(r *rand.Rand, n, vertices int, weights []float64) []Edge[float64] {
	edges := make([]Edge[float64], n)
	for i := range edges {
		edges[i] = Weighted(
			fmt.Sprintf("e%06d", i),
			fmt.Sprintf("v%03d", r.Intn(vertices)),
			fmt.Sprintf("v%03d", r.Intn(vertices)),
			weights[r.Intn(len(weights))],
			weights[r.Intn(len(weights))],
		)
	}
	return edges
}

// oneShot builds the batch oracle: incidence arrays over the full edge
// list, then a single Correlate.
func oneShot(t *testing.T, edges []Edge[float64], ops semiring.Ops[float64]) *assoc.Array[float64] {
	t.Helper()
	outT := make([]assoc.Triple[float64], len(edges))
	inT := make([]assoc.Triple[float64], len(edges))
	for i, e := range edges {
		outT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out}
		inT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In}
	}
	want, err := assoc.Correlate(assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil), ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// The central property: Append batches in ANY split produce an array
// Equal to the one-shot Correlate, for every associative registry pair.
func TestIncrementalEqualsBatchAcrossPairsAndSplits(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, ops := range semiring.Figure3Pairs() {
		entry, ok := semiring.Lookup(ops.Name)
		if !ok {
			t.Fatalf("pair %q not registered", ops.Name)
		}
		weights := nonZero(entry.Sample, ops)
		for trial := 0; trial < 4; trial++ {
			edges := randomEdges(r, 60, 12, weights)
			want := oneShot(t, edges, ops)
			v := NewView(ops, Options{CheckAssociative: trial%2 == 0})
			for lo := 0; lo < len(edges); {
				hi := lo + 1 + r.Intn(17)
				if hi > len(edges) {
					hi = len(edges)
				}
				if err := v.Append(edges[lo:hi]); err != nil {
					t.Fatalf("%s trial %d: append [%d,%d): %v", ops.Name, trial, lo, hi, err)
				}
				lo = hi
			}
			got := mustSnap(t, v).Adjacency
			if !got.Equal(want, eqF) {
				t.Errorf("%s trial %d: incremental != batch", ops.Name, trial)
			}
		}
	}
}

// nonZero filters an algebra's sample down to usable incidence weights
// (Definition I.4 forbids zero entries).
func nonZero(sample []float64, ops semiring.Ops[float64]) []float64 {
	var out []float64
	for _, v := range sample {
		if !ops.IsZero(v) {
			out = append(out, v)
		}
	}
	return out
}

// Bootstrapping from batch-built incidence arrays and appending on top
// equals building everything one-shot.
func TestFromIncidencePlusAppend(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ops := semiring.PlusTimes()
	edges := randomEdges(r, 80, 10, []float64{1, 2, 3})
	split := 60
	outT := make([]assoc.Triple[float64], split)
	inT := make([]assoc.Triple[float64], split)
	for i, e := range edges[:split] {
		outT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out}
		inT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In}
	}
	v, err := FromIncidence(assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil), ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Append(edges[split:]); err != nil {
		t.Fatal(err)
	}
	if got, want := mustSnap(t, v).Adjacency, oneShot(t, edges, ops); !got.Equal(want, eqF) {
		t.Error("bootstrap + append != batch")
	}
}

// The honest limitation, and its escape hatch: a non-associative ⊕
// diverges under re-associated delta merges, and Compact() recovers the
// exact batch result.
func TestNonAssociativeDivergesAndCompactRecovers(t *testing.T) {
	avg := semiring.Ops[float64]{
		Name: "avg.*",
		Add:  func(a, b float64) float64 { return (a + b) / 2 },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0, One: 1,
		Equal: value.Float64Equal,
	}
	edges := []Edge[float64]{
		Weighted("k1", "a", "b", 1.0, 1),
		Weighted("k2", "a", "b", 3.0, 1),
		Weighted("k3", "a", "b", 5.0, 1),
	}
	want := oneShot(t, edges, avg) // ((1⊕3)⊕5) = 3.5 at (a,b)

	v := NewView(avg, Options{})
	// Split {k1} | {k2,k3} with a snapshot read in between: the read
	// folds {k1} into the materialized level, so the second batch's
	// contribution groups against already-folded state —
	// 1 ⊕ (3⊕5) = 2.5 instead of the sequential ((1⊕3)⊕5) = 3.5.
	// (Without the intermediate read the backlog folds flat and stays
	// exact; re-association happens only at materialize boundaries.)
	if err := v.Append(edges[:1]); err != nil {
		t.Fatal(err)
	}
	if early := mustSnap(t, v); !early.Exact {
		t.Error("single-batch state should be exact")
	}
	if err := v.Append(edges[1:]); err != nil {
		t.Fatal(err)
	}
	snap := mustSnap(t, v)
	if snap.Exact {
		t.Error("re-associated unverified merge still claims exactness")
	}
	gv, _ := snap.Adjacency.At("a", "b")
	wv, _ := want.At("a", "b")
	if gv == wv {
		t.Fatalf("expected divergence for non-associative ⊕, both %v", gv)
	}

	// Compact rebuilds the exact sequential fold from the log.
	if err := v.Compact(); err != nil {
		t.Fatal(err)
	}
	snap = mustSnap(t, v)
	if !snap.Exact {
		t.Error("compacted view should be exact")
	}
	if !snap.Adjacency.Equal(want, eqF) {
		t.Error("Compact did not recover the batch result")
	}

	// With the guard on the append is refused up front — at the FIRST
	// batch already, because avg's Zero is not a ⊕-identity
	// ((1 ⊕ 0)/2 = 0.5 ≠ 1), which breaks the guard's pruning
	// hypothesis before associativity even enters.
	g := NewView(avg, Options{CheckAssociative: true})
	if err := g.Append(edges[:1]); err == nil {
		t.Error("guard accepted a pair whose Zero is not a ⊕-identity")
	}
	if err := g.Append(edges[1:]); err == nil {
		t.Error("associativity guard missed a non-associative ⊕")
	}
}

// Auto-compaction bounds drift: with CompactEvery 1 every append is
// followed by a rebuild, so even a non-associative ⊕ tracks the batch
// result.
func TestAutoCompactTracksBatch(t *testing.T) {
	avg := semiring.Ops[float64]{
		Name: "avg.*",
		Add:  func(a, b float64) float64 { return (a + b) / 2 },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0, One: 1,
		Equal: value.Float64Equal,
	}
	r := rand.New(rand.NewSource(9))
	edges := randomEdges(r, 30, 5, []float64{1, 2, 4})
	want := oneShot(t, edges, avg)
	v := NewView(avg, Options{CompactEvery: 1})
	for lo := 0; lo < len(edges); lo += 5 {
		if err := v.Append(edges[lo : lo+5]); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnap(t, v)
	if !snap.Exact || !snap.Adjacency.Equal(want, eqF) {
		t.Error("auto-compacted view diverges from batch")
	}
}

// Copy-on-write: a snapshot taken before appends must not change as the
// view keeps ingesting — even though the live state reuses backing.
func TestSnapshotIsolation(t *testing.T) {
	ops := semiring.PlusTimes()
	r := rand.New(rand.NewSource(3))
	edges := randomEdges(r, 100, 8, []float64{1, 2})
	v := NewView(ops, Options{})
	if err := v.Append(edges[:50]); err != nil {
		t.Fatal(err)
	}
	snap := mustSnap(t, v)
	frozenAdj := snap.Adjacency.Triples()
	frozenOut := snap.Eout.Triples()
	for lo := 50; lo < 100; lo += 10 {
		if err := v.Append(edges[lo : lo+10]); err != nil {
			t.Fatal(err)
		}
	}
	if got := snap.Adjacency.Triples(); !tripleSlicesEqual(frozenAdj, got) {
		t.Error("snapshot adjacency mutated by later appends")
	}
	if got := snap.Eout.Triples(); !tripleSlicesEqual(frozenOut, got) {
		t.Error("snapshot incidence mutated by later appends")
	}
	// And the live view moved on.
	if live := mustSnap(t, v); live.Edges != 100 || live.Epoch <= snap.Epoch {
		t.Errorf("live view did not advance: %+v", live)
	}
}

func tripleSlicesEqual(a, b []assoc.Triple[float64]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Concurrent snapshot readers during ingest — the -race target.
func TestConcurrentReadersDuringIngest(t *testing.T) {
	ops := semiring.MaxPlus()
	r := rand.New(rand.NewSource(21))
	edges := randomEdges(r, 400, 20, []float64{0, 1, 3})
	v := NewView(ops, Options{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := v.Snapshot()
				if err != nil {
					panic(err)
				}
				sum := 0.0
				snap.Adjacency.Iterate(func(_, _ string, val float64) { sum += val })
				_ = snap.Eout.NNZ()
			}
		}()
	}
	for lo := 0; lo < len(edges); lo += 20 {
		if err := v.Append(edges[lo : lo+20]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got, want := mustSnap(t, v).Adjacency, oneShot(t, edges, ops); !got.Equal(want, eqF) {
		t.Error("concurrent ingest diverged from batch")
	}
}

// Key-discipline violations are rejected without corrupting the view.
func TestAppendKeyDiscipline(t *testing.T) {
	ops := semiring.PlusTimes()
	v := NewView(ops, Options{})
	if err := v.Append([]Edge[float64]{{Key: "e5", Src: "a", Dst: "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := v.Append([]Edge[float64]{{Key: "e3", Src: "a", Dst: "b"}}); err == nil {
		t.Error("stale key accepted")
	}
	if err := v.Append([]Edge[float64]{
		{Key: "e7", Src: "a", Dst: "b"}, {Key: "e6", Src: "a", Dst: "b"},
	}); err == nil {
		t.Error("unsorted batch accepted")
	}
	if err := v.Append([]Edge[float64]{
		{Key: "e8", Src: "a", Dst: "b"}, {Key: "e8", Src: "c", Dst: "d"},
	}); err == nil {
		t.Error("duplicate key accepted")
	}
	if st := v.Stats(); st.Edges != 1 {
		t.Errorf("rejected batches corrupted the log: %+v", st)
	}
	// Auto-keys and the unweighted default compose.
	auto := NewView(ops, Options{})
	if err := auto.Append([]Edge[float64]{{Src: "a", Dst: "b"}, {Src: "b", Dst: "c"}}); err != nil {
		t.Fatal(err)
	}
	if err := auto.Append([]Edge[float64]{{Src: "c", Dst: "a"}}); err != nil {
		t.Fatal(err)
	}
	snap := mustSnap(t, auto)
	if snap.Edges != 3 {
		t.Errorf("auto-keyed edges lost: %+v", snap)
	}
	if val, ok := snap.Adjacency.At("a", "b"); !ok || val != 1 {
		t.Errorf("unweighted default broken: %v %v", val, ok)
	}
}

// A realistic workload: RMAT ingest in batches matches core-style batch
// construction, and Stats stays coherent.
func TestRMATIngestMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := dataset.RMAT(r, 7, 4)
	ops := semiring.PlusTimes()
	eout, ein, err := graph.Incidence(g, ops, graph.Weights[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(ops, Options{})
	es := g.Edges()
	for lo := 0; lo < len(es); lo += 97 {
		hi := lo + 97
		if hi > len(es) {
			hi = len(es)
		}
		batch := make([]Edge[float64], hi-lo)
		for i, e := range es[lo:hi] {
			batch[i] = Edge[float64]{Key: e.Key, Src: e.Src, Dst: e.Dst}
		}
		if err := v.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	snap := mustSnap(t, v)
	if !snap.Adjacency.Equal(want, eqF) {
		t.Error("RMAT ingest != batch")
	}
	st := v.Stats()
	if st.Edges != g.NumEdges() || st.AdjNNZ != want.NNZ() {
		t.Errorf("stats incoherent: %+v", st)
	}
}

// Auto-assigned keys must sort after whatever the log already holds —
// including explicit keys from a FromIncidence bootstrap.
func TestAutoKeysAfterBootstrap(t *testing.T) {
	ops := semiring.PlusTimes()
	outT := []assoc.Triple[float64]{{Row: "e00000001", Col: "a", Val: 1}}
	inT := []assoc.Triple[float64]{{Row: "e00000001", Col: "b", Val: 1}}
	v, err := FromIncidence(assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil), ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Append([]Edge[float64]{{Src: "a", Dst: "c"}, {Src: "c", Dst: "b"}}); err != nil {
		t.Fatalf("auto-keyed append after bootstrap: %v", err)
	}
	if err := v.Append([]Edge[float64]{{Src: "b", Dst: "a"}}); err != nil {
		t.Fatalf("second auto-keyed append: %v", err)
	}
	snap := mustSnap(t, v)
	if snap.Edges != 4 {
		t.Fatalf("edges %d, want 4", snap.Edges)
	}
	if got, want := snap.Adjacency, oneShot(t, edgesOf(snap), ops); !got.Equal(want, eqF) {
		t.Error("auto-keyed incremental != batch")
	}
}

// edgesOf reconstructs the Edge list from a snapshot's incidence log
// (each log row has exactly one entry per side).
func edgesOf(s Snapshot[float64]) []Edge[float64] {
	bySide := func(a *assoc.Array[float64]) map[string][2]any {
		m := map[string][2]any{}
		a.Iterate(func(k, v string, val float64) { m[k] = [2]any{v, val} })
		return m
	}
	outs, ins := bySide(s.Eout), bySide(s.Ein)
	edges := make([]Edge[float64], 0, s.Edges)
	for i := 0; i < s.Eout.RowKeys().Len(); i++ {
		k := s.Eout.RowKeys().Key(i)
		o, n := outs[k], ins[k]
		edges = append(edges, Weighted(k, o[0].(string), n[0].(string), o[1].(float64), n[1].(float64)))
	}
	return edges
}
