package stream

import (
	"fmt"
	"sync"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// avgOps is the canonical non-associative ⊕ used across the stream
// tests: (a+b)/2 is neither associative nor is 0 a ⊕-identity, so the
// strengthened guard rejects it outright.
func avgOps() semiring.Ops[float64] {
	return semiring.Ops[float64]{
		Name: "avg.*",
		Add:  func(a, b float64) float64 { return (a + b) / 2 },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0, One: 1,
		Equal: value.Float64Equal,
	}
}

// After the associativity guard rejects a batch, the view must still be
// fully usable: the rejected batch leaves no trace, Compact() succeeds
// and restores the exact sequential fold over the ACCEPTED log, and
// further valid appends keep working.
func TestCompactAfterGuardRejection(t *testing.T) {
	v := NewView(avgOps(), Options{CheckAssociative: true})

	// A batch whose values are all equal passes the sampled guard: every
	// probe triple folds to the same value, and (v ⊕ 0) happens to need
	// no identity here because the batch is the first (nothing to merge
	// against)… except the guard is value-based, so it must reject 1s
	// too — (1 ⊕ 0)/2 = 0.5 ≠ 1 breaks the identity hypothesis.
	if err := v.Append([]Edge[float64]{Weighted("k1", "a", "b", 1.0, 1)}); err == nil {
		t.Fatal("guard accepted avg ⊕ despite its non-identity Zero")
	}
	if st := v.Stats(); st.Edges != 0 || st.Epoch != 0 {
		t.Fatalf("rejected batch left state behind: %+v", st)
	}

	// Compact on the untouched (empty) view must be a clean no-op.
	if err := v.Compact(); err != nil {
		t.Fatalf("Compact after rejection: %v", err)
	}
	if st := v.Stats(); !st.Exact || st.Edges != 0 {
		t.Fatalf("compacted empty view incoherent: %+v", st)
	}

	// The unguarded view ingests the same pair, diverges across a
	// materialize boundary, is rejected… then Compact recovers exactness
	// and the NEXT append still works.
	u := NewView(avgOps(), Options{})
	batches := [][]Edge[float64]{
		{Weighted("k1", "a", "b", 1.0, 1)},
		{Weighted("k2", "a", "b", 3.0, 1), Weighted("k3", "a", "b", 5.0, 1)},
	}
	for _, b := range batches {
		if err := u.Append(b); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Snapshot(); err != nil { // force a materialize boundary
			t.Fatal(err)
		}
	}
	snap, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Exact {
		t.Fatal("re-associated avg fold still claims exactness")
	}
	if err := u.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	snap, err = u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact {
		t.Fatal("Compact did not restore exactness")
	}
	// ((1 ⊕ 3) ⊕ 5) = ((1+3)/2 + 5)/2 = 3.5 — the sequential fold.
	if got, _ := snap.Adjacency.At("a", "b"); got != 3.5 {
		t.Fatalf("compacted fold = %v, want 3.5", got)
	}
	if err := u.Append([]Edge[float64]{Weighted("k4", "b", "a", 2.0, 1)}); err != nil {
		t.Fatalf("append after Compact: %v", err)
	}
	if st := u.Stats(); st.Edges != 4 {
		t.Fatalf("post-compact append lost edges: %+v", st)
	}
}

// Snapshot isolation under concurrent Append and Compact — run under
// -race. Snapshots captured mid-ingest are deep-frozen (their triples
// must not change no matter how much the view advances), and the final
// state equals the one-shot batch construction.
func TestSnapshotIsolationUnderConcurrentAppend(t *testing.T) {
	ops := semiring.PlusTimes()
	const edges, batch = 600, 20
	all := make([]Edge[float64], edges)
	for i := range all {
		all[i] = Weighted(
			fmt.Sprintf("e%06d", i),
			fmt.Sprintf("v%02d", (i*7)%16),
			fmt.Sprintf("v%02d", (i*13)%16),
			1, float64(1+i%3),
		)
	}
	v := NewView(ops, Options{})

	type frozen struct {
		epoch   int
		triples []assoc.Triple[float64]
		snap    Snapshot[float64]
	}
	var mu sync.Mutex
	var captured []frozen

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := v.Snapshot()
				if err != nil {
					panic(err)
				}
				mu.Lock()
				if len(captured) < 64 {
					captured = append(captured, frozen{
						epoch:   snap.Epoch,
						triples: snap.Adjacency.Triples(),
						snap:    snap,
					})
				}
				mu.Unlock()
			}
		}()
	}
	// A compactor races the readers and the writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := v.Compact(); err != nil {
				panic(err)
			}
		}
	}()
	for lo := 0; lo < edges; lo += batch {
		if err := v.Append(all[lo : lo+batch]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Every captured snapshot must still render exactly what it did at
	// capture time.
	for i, f := range captured {
		now := f.snap.Adjacency.Triples()
		if len(now) != len(f.triples) {
			t.Fatalf("snapshot %d (epoch %d) changed size: %d -> %d", i, f.epoch, len(f.triples), len(now))
		}
		for j := range now {
			if now[j] != f.triples[j] {
				t.Fatalf("snapshot %d (epoch %d) mutated at %d: %+v -> %+v", i, f.epoch, j, f.triples[j], now[j])
			}
		}
	}

	// And the live view equals the one-shot construction.
	outT := make([]assoc.Triple[float64], edges)
	inT := make([]assoc.Triple[float64], edges)
	for i, e := range all {
		outT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: e.Out}
		inT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: e.In}
	}
	want, err := assoc.Correlate(assoc.FromTriples(outT, nil), assoc.FromTriples(inT, nil), ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	final, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !final.Adjacency.Equal(want, func(a, b float64) bool { return value.Float64Equal(a, b) }) {
		t.Error("concurrent ingest + compaction diverged from the batch construction")
	}
}
