package stream

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/semiring"
	"adjarray/internal/wal"
)

func mustShardSnap[V any](t *testing.T, sv *ShardedView[V]) *ShardedSnapshot[V] {
	t.Helper()
	ss, err := sv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func mustAdj[V any](t *testing.T, ss *ShardedSnapshot[V]) *assoc.Array[V] {
	t.Helper()
	adj, err := ss.Adjacency()
	if err != nil {
		t.Fatal(err)
	}
	return adj
}

// The tentpole property: a sharded replay of any split sequence is
// bit-identical to the single-view replay AND the one-shot batch
// construction, for every associative registry pair and several shard
// counts (including 1, the degenerate routing).
func TestShardedEqualsSingleViewAcrossPairsAndSplits(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, ops := range semiring.Figure3Pairs() {
		entry, ok := semiring.Lookup(ops.Name)
		if !ok {
			t.Fatalf("pair %q not registered", ops.Name)
		}
		weights := nonZero(entry.Sample, ops)
		for _, shards := range []int{1, 2, 3, 5} {
			edges := randomEdges(r, 70, 11, weights)
			want := oneShot(t, edges, ops)

			single := NewView(ops, Options{})
			sv := NewShardedView(ops, ShardedOptions{Shards: shards})
			for lo := 0; lo < len(edges); {
				hi := lo + 1 + r.Intn(13)
				if hi > len(edges) {
					hi = len(edges)
				}
				if err := single.Append(edges[lo:hi]); err != nil {
					t.Fatalf("%s single append: %v", ops.Name, err)
				}
				batch := make([]Edge[float64], hi-lo)
				copy(batch, edges[lo:hi])
				if err := sv.Append(batch); err != nil {
					t.Fatalf("%s/%d shards append: %v", ops.Name, shards, err)
				}
				// Snapshot mid-stream too: pins per-shard epochs and
				// forces materialization at interior boundaries.
				if hi < len(edges) && r.Intn(3) == 0 {
					mustShardSnap(t, sv)
				}
				lo = hi
			}
			got := mustAdj(t, mustShardSnap(t, sv))
			ref := mustSnap(t, single).Adjacency
			if !got.Equal(want, eqF) {
				t.Errorf("%s/%d shards: sharded != one-shot batch", ops.Name, shards)
			}
			if !got.Equal(ref, eqF) {
				t.Errorf("%s/%d shards: sharded != single view", ops.Name, shards)
			}
		}
	}
}

// The gathered incidence logs span the union edge-key universe in
// ascending key order — exactly the single view's log layout.
func TestShardedLogsMatchSingleView(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ops := semiring.PlusTimes()
	edges := randomEdges(r, 90, 9, []float64{1, 2, 5})

	single := NewView(ops, Options{})
	sv := NewShardedView(ops, ShardedOptions{Shards: 4})
	if err := single.Append(edges); err != nil {
		t.Fatal(err)
	}
	if err := sv.Append(append([]Edge[float64](nil), edges...)); err != nil {
		t.Fatal(err)
	}
	ref := mustSnap(t, single)
	eout, ein, err := mustShardSnap(t, sv).Logs()
	if err != nil {
		t.Fatal(err)
	}
	if !eout.Equal(ref.Eout, eqF) {
		t.Error("merged Eout != single-view Eout")
	}
	if !ein.Equal(ref.Ein, eqF) {
		t.Error("merged Ein != single-view Ein")
	}
	merged, err := mustShardSnap(t, sv).Merged()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Edges != ref.Edges {
		t.Errorf("merged Edges = %d, want %d", merged.Edges, ref.Edges)
	}
	if !merged.Exact {
		t.Error("disjoint-row merge of exact shards should stay exact")
	}
}

// Concurrent producers with auto-assigned keys: the final adjacency
// must equal the one-shot construction over the edge multiset. The
// algebra is +.*, so the fold is order-independent and the only thing
// under test is routing, per-shard locking, and the gather. Run with
// -race to make the locking claims meaningful.
func TestShardedConcurrentAppendMatchesBatch(t *testing.T) {
	ops := semiring.PlusTimes()
	const producers, batches, per = 4, 12, 16
	sv := NewShardedView(ops, ShardedOptions{Shards: 3})

	all := make([][]Edge[float64], producers)
	for p := range all {
		r := rand.New(rand.NewSource(int64(100 + p)))
		for b := 0; b < batches; b++ {
			batch := make([]Edge[float64], per)
			for i := range batch {
				batch[i] = Weighted("", // auto key
					fmt.Sprintf("v%03d", r.Intn(17)),
					fmt.Sprintf("v%03d", r.Intn(17)), 1.0, 1.0)
			}
			all[p] = append(all[p], batch...)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Edge[float64], per)
				copy(batch, all[p][b*per:(b+1)*per])
				if err := sv.Append(batch); err != nil {
					errs[p] = err
					return
				}
				if b%5 == 0 {
					if _, err := sv.Snapshot(); err != nil {
						errs[p] = err
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("producer %d: %v", p, err)
		}
	}

	// Keys differ between arms (auto vs explicit), so compare the
	// adjacency, which never depends on edge keys.
	var flat []Edge[float64]
	for p := range all {
		flat = append(flat, all[p]...)
	}
	for i := range flat {
		flat[i].Key = fmt.Sprintf("e%06d", i)
	}
	want := oneShot(t, flat, ops)
	ss := mustShardSnap(t, sv)
	if ss.Edges != producers*batches*per {
		t.Fatalf("Edges = %d, want %d", ss.Edges, producers*batches*per)
	}
	if !mustAdj(t, ss).Equal(want, eqF) {
		t.Error("concurrent sharded ingest != one-shot batch")
	}
}

// Snapshots are cached per epoch vector: unchanged vector returns the
// same snapshot (sharing its lazily merged adjacency); an append to one
// shard bumps exactly that vector component.
func TestShardedSnapshotEpochVectorAndCaching(t *testing.T) {
	ops := semiring.PlusTimes()
	sv := NewShardedView(ops, ShardedOptions{Shards: 3})
	if err := sv.Append([]Edge[float64]{
		Weighted("e0", "a", "b", 1.0, 1.0),
		Weighted("e1", "b", "c", 1.0, 1.0),
		Weighted("e2", "c", "d", 1.0, 1.0),
	}); err != nil {
		t.Fatal(err)
	}
	s1 := mustShardSnap(t, sv)
	if len(s1.Epochs) != 3 {
		t.Fatalf("epoch vector length %d, want 3", len(s1.Epochs))
	}
	if s2 := mustShardSnap(t, sv); s2 != s1 {
		t.Error("unchanged epoch vector must return the cached snapshot")
	}

	target := sv.ShardFor("zz")
	if err := sv.Append([]Edge[float64]{Weighted("e3", "zz", "a", 1.0, 1.0)}); err != nil {
		t.Fatal(err)
	}
	s3 := mustShardSnap(t, sv)
	if s3 == s1 {
		t.Fatal("append must invalidate the cached snapshot")
	}
	for i := range s3.Epochs {
		want := s1.Epochs[i]
		if i == target {
			want++
		}
		if s3.Epochs[i] != want {
			t.Errorf("epoch[%d] = %d, want %d", i, s3.Epochs[i], want)
		}
	}
	// The older snapshot stays pinned at its vector.
	if got := mustAdj(t, s1).NNZ(); got != 3 {
		t.Errorf("pinned snapshot mutated: nnz %d, want 3", got)
	}
}

// Stats aggregates per-shard counters; edge totals and epoch vector
// agree with the snapshot.
func TestShardedStats(t *testing.T) {
	ops := semiring.PlusTimes()
	sv := NewShardedView(ops, ShardedOptions{Shards: 2})
	edges := randomEdges(rand.New(rand.NewSource(5)), 40, 8, []float64{1, 2})
	if err := sv.Append(edges); err != nil {
		t.Fatal(err)
	}
	ss := mustShardSnap(t, sv)
	st := sv.Stats()
	if st.Shards != 2 || st.Edges != 40 {
		t.Fatalf("Stats = %+v", st)
	}
	for i, e := range st.Epochs {
		if e != ss.Epochs[i] {
			t.Errorf("Stats.Epochs[%d] = %d, snapshot %d", i, e, ss.Epochs[i])
		}
	}
	if len(st.PerShard) != 2 || st.PerShard[0].Edges+st.PerShard[1].Edges != 40 {
		t.Errorf("per-shard breakdown inconsistent: %+v", st.PerShard)
	}
}

// Durable sharded views recover bit-identically: append across
// checkpoint and WAL-tail territory, abort (simulated crash), reopen
// with the recorded shard count, and compare against a single view.
// Auto keys must continue from the recovered per-shard sequences.
func TestShardedDurableRecoveryMatchesSingleView(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ops := semiring.PlusTimes()
	dir := t.TempDir()
	dopt := DurableOptions[float64]{WAL: wal.Options{Policy: wal.SyncNever}}

	sv, err := OpenSharded(filepath.Join(dir, "store"), ops, ShardedOptions{Shards: 3}, dopt)
	if err != nil {
		t.Fatal(err)
	}
	edges := randomEdges(r, 60, 10, []float64{1, 2, 3})
	single := NewView(ops, Options{})
	if err := single.Append(edges); err != nil {
		t.Fatal(err)
	}

	if err := sv.Append(append([]Edge[float64](nil), edges[:25]...)); err != nil {
		t.Fatal(err)
	}
	if err := sv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Append(append([]Edge[float64](nil), edges[25:]...)); err != nil {
		t.Fatal(err)
	}
	if err := sv.Sync(); err != nil {
		t.Fatal(err)
	}
	sv.Abort() // crash: checkpoint covers a prefix, WAL tails carry the rest

	// Shards <= 0 adopts the recorded count from the SHARDS meta file.
	rec, err := OpenSharded(filepath.Join(dir, "store"), ops, ShardedOptions{}, dopt)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Shards() != 3 {
		t.Fatalf("recovered %d shards, want 3", rec.Shards())
	}
	if got := mustAdj(t, mustShardSnap(t, rec)); !got.Equal(mustSnap(t, single).Adjacency, eqF) {
		t.Fatal("recovered sharded adjacency != single view")
	}
	replayed := 0
	for _, ri := range rec.Recovery() {
		replayed += ri.Replayed
	}
	if replayed == 0 {
		t.Error("expected WAL-tail replay on at least one shard")
	}

	// Auto keys after recovery must extend, not collide with, the
	// recovered per-shard sequences.
	more := make([]Edge[float64], 30)
	for i := range more {
		more[i] = Weighted("", fmt.Sprintf("v%03d", r.Intn(10)), fmt.Sprintf("v%03d", r.Intn(10)), 2.0, 3.0)
	}
	if err := rec.Append(more); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	withAuto := append(append([]Edge[float64](nil), edges...), more...)
	for i := range withAuto {
		withAuto[i].Key = fmt.Sprintf("e%06d", i)
	}
	if got := mustAdj(t, mustShardSnap(t, rec)); !got.Equal(oneShot(t, withAuto, ops), eqF) {
		t.Fatal("post-recovery appends diverge from batch oracle")
	}
}

// Auto-keyed durable ingest replays identically: keys are assigned
// BEFORE the WAL record is written, so recovery sees explicit keys and
// the regenerated sequences continue where the log ended.
func TestShardedDurableAutoKeysRecoverExactly(t *testing.T) {
	ops := semiring.PlusTimes()
	dir := filepath.Join(t.TempDir(), "store")
	dopt := DurableOptions[float64]{WAL: wal.Options{Policy: wal.SyncNever}}
	sv, err := OpenSharded(dir, ops, ShardedOptions{Shards: 2}, dopt)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	batch := make([]Edge[float64], 50)
	for i := range batch {
		batch[i] = Weighted("", fmt.Sprintf("v%02d", r.Intn(7)), fmt.Sprintf("v%02d", r.Intn(7)), 1.0, 2.0)
	}
	if err := sv.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := sv.Sync(); err != nil {
		t.Fatal(err)
	}
	want := mustAdj(t, mustShardSnap(t, sv))
	sv.Abort()

	rec, err := OpenSharded(dir, ops, ShardedOptions{}, dopt)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := mustAdj(t, mustShardSnap(t, rec)); !got.Equal(want, eqF) {
		t.Fatal("auto-keyed recovery diverged")
	}
	eout, _, err := mustShardSnap(t, rec).Logs()
	if err != nil {
		t.Fatal(err)
	}
	if eout.RowKeys().Len() != 50 {
		t.Fatalf("recovered %d log rows, want 50", eout.RowKeys().Len())
	}
}

// Reopening with an explicit mismatching shard count is refused — it
// would silently re-partition the vertex space.
func TestOpenShardedCountMismatchRefused(t *testing.T) {
	ops := semiring.PlusTimes()
	dir := filepath.Join(t.TempDir(), "store")
	dopt := DurableOptions[float64]{WAL: wal.Options{Policy: wal.SyncNever}}
	sv, err := OpenSharded(dir, ops, ShardedOptions{Shards: 2}, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, ops, ShardedOptions{Shards: 4}, dopt); err == nil {
		t.Fatal("shard-count mismatch must be refused")
	}
	if data, err := os.ReadFile(filepath.Join(dir, shardMetaFile)); err != nil || string(data) != "2\n" {
		t.Fatalf("SHARDS meta = %q, %v", data, err)
	}
}

// Routing is a fixed function of the source vertex: stable across view
// instances (unlike the interner's per-process maphash).
func TestShardRoutingDeterministic(t *testing.T) {
	a := NewShardedView(semiring.PlusTimes(), ShardedOptions{Shards: 4})
	b := NewShardedView(semiring.PlusTimes(), ShardedOptions{Shards: 4})
	for i := 0; i < 200; i++ {
		src := fmt.Sprintf("vertex-%d", i)
		if a.ShardFor(src) != b.ShardFor(src) {
			t.Fatalf("routing for %q differs across instances", src)
		}
	}
}
