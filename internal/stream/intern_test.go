package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// adversarialVertices stresses the interner's byte-oriented hash
// through the slow append path: unicode, embedded NUL, 0xff, empty
// string, and long shared prefixes.
var adversarialVertices = []string{
	"", "\x00", "\xff", "a\x00b", "κόμβος", "🔑", "v", "v1", "v10",
	"prefix-aaaaaaaaaaaaaaaa", "prefix-aaaaaaaaaaaaaaab",
}

// TestInternedSlowPathMatchesBatch drives growth through the interner
// slow path (every batch introduces vertices) and checks the
// incremental adjacency against a one-shot batch construction.
func TestInternedSlowPathMatchesBatch(t *testing.T) {
	ops := semiring.PlusTimes()
	v := NewView(ops, Options{})
	var all []Edge[float64]
	seq := 0
	addBatch := func(es ...Edge[float64]) {
		t.Helper()
		if err := v.Append(es); err != nil {
			t.Fatal(err)
		}
		all = append(all, es...)
	}
	// Round 1: adversarial vertices, pairwise.
	var batch []Edge[float64]
	for i := 0; i+1 < len(adversarialVertices); i++ {
		batch = append(batch, Weighted(fmt.Sprintf("e%06d", seq),
			adversarialVertices[i], adversarialVertices[i+1], float64(i+1), 2))
		seq++
	}
	addBatch(batch...)
	// Round 2: revisit known vertices (fast path) interleaved with new.
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 20; round++ {
		var b []Edge[float64]
		for i := 0; i < 7; i++ {
			src := adversarialVertices[r.Intn(len(adversarialVertices))]
			dst := fmt.Sprintf("new-%d-%d", round, i)
			if i%2 == 0 {
				src, dst = dst, src
			}
			b = append(b, Weighted(fmt.Sprintf("e%06d", seq), src, dst, 1, float64(i+1)))
			seq++
		}
		addBatch(b...)
	}
	snap, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// One-shot oracle from the log itself.
	oracle, err := assoc.Correlate(snap.Eout, snap.Ein, ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := assoc.Diff(oracle, snap.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
		t.Fatalf("interned incremental state diverges from batch: %s", diff)
	}
	// The universe sets must be interner-bound and resolve every vertex.
	for _, set := range []interface {
		Interned() bool
		Len() int
		Key(int) string
		Index(string) (int, bool)
	}{snap.Eout.ColKeys(), snap.Ein.ColKeys()} {
		if !set.Interned() {
			t.Fatal("universe key set not interner-bound")
		}
		for i := 0; i < set.Len(); i++ {
			if p, ok := set.Index(set.Key(i)); !ok || p != i {
				t.Fatalf("bound universe Index(%q) = %d,%v want %d", set.Key(i), p, ok, i)
			}
		}
	}
}

// TestParallelMaterializeMatchesSerial ingests the identical edge
// sequence into a serial view and a parallel one (workers=4, tiny
// budget so the parallel fold actually runs) and requires bit-identical
// snapshots at several epochs.
func TestParallelMaterializeMatchesSerial(t *testing.T) {
	ops := semiring.PlusTimes()
	r := rand.New(rand.NewSource(5))
	g := dataset.RMAT(r, 9, 8)
	es := g.Edges()
	serial := NewView(ops, Options{})
	par := NewView(ops, Options{
		Mul:           assoc.MulOptions{Workers: 4, FlopFloor: -1},
		PendingBudget: 1, // force a fold per batch
	})
	per := 200
	for lo := 0; lo < len(es); lo += per {
		hi := lo + per
		if hi > len(es) {
			hi = len(es)
		}
		batch := make([]Edge[float64], hi-lo)
		for j, e := range es[lo:hi] {
			batch[j] = Weighted(e.Key, e.Src, e.Dst, 1, float64(j%5)+1)
		}
		for _, v := range []*View[float64]{serial, par} {
			if err := v.Append(batch); err != nil {
				t.Fatal(err)
			}
		}
		ss, err := serial.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		ps, err := par.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if diff := assoc.Diff(ss.Adjacency, ps.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
			t.Fatalf("parallel materialize diverges at %d edges: %s", hi, diff)
		}
	}
}

// TestParallelMaterializeLargeFold exercises foldPendingParallel with a
// backlog above minParallelFold (the serial-vs-parallel routing
// threshold) and duplicate cells that must fold in arrival order.
func TestParallelMaterializeLargeFold(t *testing.T) {
	ops := semiring.MaxPlus()
	r := rand.New(rand.NewSource(9))
	mk := func(workers int) *View[float64] {
		return NewView(ops, Options{
			Mul:           assoc.MulOptions{Workers: workers, FlopFloor: -1},
			PendingBudget: 1 << 20, // let the backlog grow past minParallelFold
		})
	}
	serial, par := mk(0), mk(4)
	seq := 0
	verts := 40 // few vertices → heavy duplicate-cell folding
	var batch []Edge[float64]
	for i := 0; i < minParallelFold+3000; i++ {
		batch = append(batch, Weighted(fmt.Sprintf("e%07d", seq),
			fmt.Sprintf("v%02d", r.Intn(verts)), fmt.Sprintf("v%02d", r.Intn(verts)),
			float64(r.Intn(7))-3, float64(r.Intn(5))))
		seq++
		if len(batch) == 997 {
			for _, v := range []*View[float64]{serial, par} {
				if err := v.Append(batch); err != nil {
					t.Fatal(err)
				}
			}
			batch = batch[:0]
		}
	}
	for _, v := range []*View[float64]{serial, par} {
		if err := v.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := par.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if diff := assoc.Diff(ss.Adjacency, ps.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
		t.Fatalf("large parallel fold diverges: %s", diff)
	}
}

// TestScratchPoolAliasing is the pooled-buffer leak check: concurrent
// parallel multiplications (hammering the sync.Pool kernel scratch)
// race against a view's Append/Snapshot/Compact cycle (whose folds and
// partials use the same pools), under -race in CI. Every multiplication
// result is differentially checked against a serial reference computed
// AFTER the concurrency, so any cross-call buffer reuse that leaked
// state into a result is caught as a value difference.
func TestScratchPoolAliasing(t *testing.T) {
	ops := semiring.PlusTimes()
	r := rand.New(rand.NewSource(21))
	g := dataset.RMAT(r, 8, 8)
	es := g.Edges()

	// A static pair for the concurrent Muls.
	var outT, inT []assoc.Triple[float64]
	for _, e := range es[:2000] {
		outT = append(outT, assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: 1})
		inT = append(inT, assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: 2})
	}
	eout := assoc.FromTriples(outT, nil)
	ein := assoc.FromTriples(inT, nil)

	view := NewView(ops, Options{Mul: assoc.MulOptions{Workers: 2, FlopFloor: -1}, PendingBudget: 256})

	var wg sync.WaitGroup
	results := make([]*assoc.Array[float64], 8)
	for m := 0; m < 8; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			a, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{Workers: 3, FlopFloor: -1})
			if err != nil {
				t.Error(err)
				return
			}
			results[m] = a
		}(m)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := 0
		for round := 0; round < 30; round++ {
			batch := make([]Edge[float64], 100)
			for i := range batch {
				e := es[(seq+i)%len(es)]
				batch[i] = Weighted(fmt.Sprintf("s%07d", seq+i), e.Src, e.Dst, 1.0, 1)
			}
			seq += len(batch)
			if err := view.Append(batch); err != nil {
				t.Error(err)
				return
			}
			if round%5 == 1 {
				if _, err := view.Snapshot(); err != nil {
					t.Error(err)
					return
				}
			}
			if round%11 == 7 {
				if err := view.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// Serial reference, computed after all pooled activity.
	want, err := assoc.Correlate(eout, ein, ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for m, got := range results {
		if diff := assoc.Diff(want, got, value.Float64Equal, value.FormatFloat); diff != "" {
			t.Fatalf("concurrent Mul %d corrupted by pooled scratch: %s", m, diff)
		}
	}
	// The view's state must equal its own one-shot rebuild.
	snap, err := view.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := assoc.Correlate(snap.Eout, snap.Ein, ops, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := assoc.Diff(oracle, snap.Adjacency, value.Float64Equal, value.FormatFloat); diff != "" {
		t.Fatalf("view state corrupted by pooled scratch: %s", diff)
	}
}
