package stream

import (
	"encoding/binary"
	"fmt"
	"math"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/sparse"
)

// ValueCodec serializes the view's value type V for the WAL and
// checkpoint formats. Append encodes one value; Decode returns the
// value and how many bytes it consumed. Encodings may be
// variable-width but must be self-delimiting.
type ValueCodec[V any] struct {
	Append func(dst []byte, v V) []byte
	Decode func(b []byte) (V, int, error)
}

// Float64Codec is the fixed 8-byte IEEE-754 little-endian codec — the
// codec for the float64 views the commands serve.
func Float64Codec() ValueCodec[float64] {
	return ValueCodec[float64]{
		Append: func(dst []byte, v float64) []byte {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		},
		Decode: func(b []byte) (float64, int, error) {
			if len(b) < 8 {
				return 0, 0, fmt.Errorf("stream: truncated float64 value")
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(b)), 8, nil
		},
	}
}

// defaultCodec resolves the built-in codec for V when the caller did
// not supply one. Only float64 has a default.
func defaultCodec[V any]() (ValueCodec[V], bool) {
	var zero V
	if _, ok := any(zero).(float64); !ok {
		return ValueCodec[V]{}, false
	}
	f := Float64Codec()
	return ValueCodec[V]{
		Append: func(dst []byte, v V) []byte { return f.Append(dst, any(v).(float64)) },
		Decode: func(b []byte) (V, int, error) {
			x, n, err := f.Decode(b)
			if err != nil {
				var z V
				return z, 0, err
			}
			return any(x).(V), n, nil
		},
	}, true
}

// --- primitive helpers -------------------------------------------------

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeStr(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, fmt.Errorf("stream: truncated string")
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}

func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func decodeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("stream: truncated u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func appendI32s(dst []byte, xs []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(xs)))
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	}
	return dst
}

func decodeI32s(b []byte) ([]int32, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("stream: truncated i32 slice")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n > math.MaxInt32 || len(b) < n*4 {
		return nil, nil, fmt.Errorf("stream: truncated i32 slice body (n=%d)", n)
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return xs, b[n*4:], nil
}

func appendStrs(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendStr(dst, s)
	}
	return dst
}

func decodeStrs(b []byte) ([]string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("stream: truncated string slice")
	}
	b = b[w:]
	ss := make([]string, n)
	var err error
	for i := range ss {
		if ss[i], b, err = decodeStr(b); err != nil {
			return nil, nil, err
		}
	}
	return ss, b, nil
}

// --- WAL batch records -------------------------------------------------

// Edge flag bits in the WAL batch encoding.
const (
	edgeHasOut = 1 << 0
	edgeHasIn  = 1 << 1
)

// appendBatch encodes one edge batch as a WAL record payload. Edges
// are stored verbatim — including empty auto-assign keys, which replay
// re-derives identically because autoSeq/autoBase are checkpointed.
func appendBatch[V any](dst []byte, edges []Edge[V], codec ValueCodec[V]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	for _, e := range edges {
		var flags byte
		if e.HasOut {
			flags |= edgeHasOut
		}
		if e.HasIn {
			flags |= edgeHasIn
		}
		dst = append(dst, flags)
		dst = appendStr(dst, e.Key)
		dst = appendStr(dst, e.Src)
		dst = appendStr(dst, e.Dst)
		if e.HasOut {
			dst = codec.Append(dst, e.Out)
		}
		if e.HasIn {
			dst = codec.Append(dst, e.In)
		}
	}
	return dst
}

// decodeBatch decodes a WAL record payload back into an edge batch.
func decodeBatch[V any](b []byte, codec ValueCodec[V]) ([]Edge[V], error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)) {
		return nil, fmt.Errorf("stream: truncated batch header")
	}
	b = b[w:]
	edges := make([]Edge[V], n)
	var err error
	for i := range edges {
		if len(b) < 1 {
			return nil, fmt.Errorf("stream: truncated edge %d", i)
		}
		flags := b[0]
		b = b[1:]
		e := &edges[i]
		if e.Key, b, err = decodeStr(b); err != nil {
			return nil, err
		}
		if e.Src, b, err = decodeStr(b); err != nil {
			return nil, err
		}
		if e.Dst, b, err = decodeStr(b); err != nil {
			return nil, err
		}
		if flags&edgeHasOut != 0 {
			v, w, err := codec.Decode(b)
			if err != nil {
				return nil, err
			}
			e.Out, e.HasOut, b = v, true, b[w:]
		}
		if flags&edgeHasIn != 0 {
			v, w, err := codec.Decode(b)
			if err != nil {
				return nil, err
			}
			e.In, e.HasIn, b = v, true, b[w:]
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("stream: %d trailing bytes after batch", len(b))
	}
	return edges, nil
}

// --- checkpoint payloads -----------------------------------------------

// ckptFormat versions the stream-level checkpoint payload inside the
// wal checkpoint envelope (which has its own magic/version/CRC).
const ckptFormat = 1

// encodeViewLocked serializes the full view state. The caller holds
// v.mu and must have flushed, materialized, and embedded first
// (Snapshot's preamble), so the staged run and the pending backlog are
// empty and main spans the log's universe — none of them need to be in
// the format.
func (v *View[V]) encodeViewLocked(dst []byte, codec ValueCodec[V]) []byte {
	dst = append(dst, ckptFormat)
	dst = appendStr(dst, v.eng.Ops.Name)
	dst = appendU64(dst, uint64(v.edges))
	dst = appendU64(dst, uint64(v.appends))
	dst = appendU64(dst, uint64(v.epoch))
	dst = appendU64(dst, uint64(v.autoSeq))
	if v.exact {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendStr(dst, v.autoBase)
	dst = appendStr(dst, v.lastKey)
	dst = v.srcIn.AppendBinary(dst)
	dst = v.dstIn.AppendBinary(dst)
	dst = appendI32s(dst, v.srcPos)
	dst = appendI32s(dst, v.dstPos)
	rows := v.eout.RowKeys()
	edgeKeys := make([]string, rows.Len())
	for i := range edgeKeys {
		edgeKeys[i] = rows.Key(i)
	}
	dst = appendStrs(dst, edgeKeys)
	dst = v.eout.Matrix().AppendBinary(dst, codec.Append)
	dst = v.ein.Matrix().AppendBinary(dst, codec.Append)
	dst = v.main.Matrix().AppendBinary(dst, codec.Append)
	return dst
}

// sideFromPos inverts an id→position map into the sorted universe key
// Set it describes, validating that the positions are a bijection onto
// [0, count) and that the keys they order really are sorted (FromSorted
// re-checks strict ascent — the corruption detector for the key data).
func sideFromPos(in *keys.Interner, pos []int32) (*keys.Set, error) {
	if len(pos) != in.Len() {
		return nil, fmt.Errorf("stream: position map covers %d ids, interner holds %d", len(pos), in.Len())
	}
	count := 0
	for _, p := range pos {
		if p >= 0 {
			count++
		}
	}
	sorted := make([]string, count)
	seen := make([]bool, count)
	for id, p := range pos {
		if p < 0 {
			continue
		}
		if int(p) >= count || seen[p] {
			return nil, fmt.Errorf("stream: position map is not a bijection at id %d", id)
		}
		seen[p] = true
		sorted[p] = in.Key(int32(id))
	}
	set, err := keys.FromSorted(sorted)
	if err != nil {
		return nil, fmt.Errorf("stream: universe keys: %w", err)
	}
	set.Bind(&keys.InternIndex{In: in, Pos: pos})
	return set, nil
}

// decodeView reconstructs a View from a checkpoint payload. Every
// structural invariant is re-validated on the way in: interner offsets,
// position-map bijectivity, key-set sortedness, CSR shape (through
// NewCSR), and the cross-array dimension agreement — damaged bytes that
// beat the outer CRC still cannot become a silently wrong view.
func decodeView[V any](payload []byte, ops semiring.Ops[V], opt Options, codec ValueCodec[V]) (*View[V], error) {
	b := payload
	if len(b) < 1 || b[0] != ckptFormat {
		return nil, fmt.Errorf("stream: unsupported checkpoint payload format")
	}
	b = b[1:]
	name, b, err := decodeStr(b)
	if err != nil {
		return nil, err
	}
	if name != ops.Name {
		return nil, fmt.Errorf("stream: checkpoint was written under algebra %q, opened with %q", name, ops.Name)
	}
	var edges, appends, epoch, autoSeq uint64
	if edges, b, err = decodeU64(b); err != nil {
		return nil, err
	}
	if appends, b, err = decodeU64(b); err != nil {
		return nil, err
	}
	if epoch, b, err = decodeU64(b); err != nil {
		return nil, err
	}
	if autoSeq, b, err = decodeU64(b); err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("stream: truncated checkpoint flags")
	}
	exact := b[0] == 1
	b = b[1:]
	var autoBase, lastKey string
	if autoBase, b, err = decodeStr(b); err != nil {
		return nil, err
	}
	if lastKey, b, err = decodeStr(b); err != nil {
		return nil, err
	}
	srcIn, b, err := keys.InternerFromBinary(b)
	if err != nil {
		return nil, err
	}
	dstIn, b, err := keys.InternerFromBinary(b)
	if err != nil {
		return nil, err
	}
	srcPos, b, err := decodeI32s(b)
	if err != nil {
		return nil, err
	}
	dstPos, b, err := decodeI32s(b)
	if err != nil {
		return nil, err
	}
	edgeKeys, b, err := decodeStrs(b)
	if err != nil {
		return nil, err
	}
	eoutM, b, err := sparse.DecodeCSR(b, codec.Decode)
	if err != nil {
		return nil, err
	}
	einM, b, err := sparse.DecodeCSR(b, codec.Decode)
	if err != nil {
		return nil, err
	}
	mainM, b, err := sparse.DecodeCSR(b, codec.Decode)
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("stream: %d trailing bytes after checkpoint payload", len(b))
	}

	srcSet, err := sideFromPos(srcIn, srcPos)
	if err != nil {
		return nil, err
	}
	dstSet, err := sideFromPos(dstIn, dstPos)
	if err != nil {
		return nil, err
	}
	edgeSet, err := keys.FromSorted(edgeKeys)
	if err != nil {
		return nil, fmt.Errorf("stream: edge keys: %w", err)
	}
	if int(edges) != edgeSet.Len() {
		return nil, fmt.Errorf("stream: checkpoint counts %d edges, key set holds %d", edges, edgeSet.Len())
	}
	if edgeSet.Len() > 0 && edgeSet.Key(edgeSet.Len()-1) != lastKey {
		return nil, fmt.Errorf("stream: checkpoint last key %q disagrees with edge set", lastKey)
	}
	if eoutM.Rows() != edgeSet.Len() || eoutM.Cols() != srcSet.Len() {
		return nil, fmt.Errorf("stream: eout is %d×%d, want %d×%d", eoutM.Rows(), eoutM.Cols(), edgeSet.Len(), srcSet.Len())
	}
	if einM.Rows() != edgeSet.Len() || einM.Cols() != dstSet.Len() {
		return nil, fmt.Errorf("stream: ein is %d×%d, want %d×%d", einM.Rows(), einM.Cols(), edgeSet.Len(), dstSet.Len())
	}
	if mainM.Rows() != srcSet.Len() || mainM.Cols() != dstSet.Len() {
		return nil, fmt.Errorf("stream: adjacency is %d×%d, want %d×%d", mainM.Rows(), mainM.Cols(), srcSet.Len(), dstSet.Len())
	}
	eout, err := assoc.New(edgeSet, srcSet, eoutM)
	if err != nil {
		return nil, err
	}
	ein, err := assoc.New(edgeSet, dstSet, einM)
	if err != nil {
		return nil, err
	}
	main, err := assoc.New(srcSet, dstSet, mainM)
	if err != nil {
		return nil, err
	}
	v := &View[V]{
		eng:      shard.Engine[V]{Ops: ops, Mul: opt.Mul},
		opt:      opt,
		eout:     eout,
		ein:      ein,
		main:     main,
		srcIn:    srcIn,
		dstIn:    dstIn,
		srcPos:   srcPos,
		dstPos:   dstPos,
		edges:    int(edges),
		appends:  int(appends),
		epoch:    int(epoch),
		exact:    exact,
		autoSeq:  int(autoSeq),
		autoBase: autoBase,
		lastKey:  lastKey,
	}
	return v, nil
}
