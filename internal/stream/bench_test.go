package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/semiring"
)

// s12Workload builds the scaling-experiment graph (R-MAT scale 12, edge
// factor 8 — 4096 vertices, 32768 edges) split into a 99% base log and
// a stream of 1% delta batches with monotonically continuing edge keys.
func s12Workload(b *testing.B, deltas int) (baseOut, baseIn *assoc.Array[float64], batches [][]Edge[float64]) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	g := dataset.RMAT(r, 12, 8)
	es := g.Edges()
	per := len(es) / 100 // one percent
	base := es[:len(es)-per]
	delta := es[len(es)-per:]

	outT := make([]assoc.Triple[float64], len(base))
	inT := make([]assoc.Triple[float64], len(base))
	for i, e := range base {
		outT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Src, Val: 1}
		inT[i] = assoc.Triple[float64]{Row: e.Key, Col: e.Dst, Val: 1}
	}
	baseOut = assoc.FromTriples(outT, nil)
	baseIn = assoc.FromTriples(inT, nil)

	// Delta batches replay the held-out 1% with fresh keys continuing
	// past the log, re-sampling endpoints for batches beyond the first.
	batches = make([][]Edge[float64], deltas)
	seq := len(es)
	for d := range batches {
		batch := make([]Edge[float64], per)
		for i := range batch {
			var src, dst string
			if d == 0 {
				src, dst = delta[i].Src, delta[i].Dst
			} else {
				src, dst = delta[r.Intn(per)].Src, delta[r.Intn(per)].Dst
			}
			batch[i] = Weighted(fmt.Sprintf("e%08d", seq), src, dst, 1.0, 1)
			seq++
		}
		batches[d] = batch
	}
	return baseOut, baseIn, batches
}

// BenchmarkStreamAppendS12 measures one 1% delta-batch Append against a
// warm view of the s12 graph — the incremental arm of the acceptance
// criterion. The log grows across iterations (appends are destructive),
// which only makes the measured cost pessimistic.
func BenchmarkStreamAppendS12(b *testing.B) {
	baseOut, baseIn, batches := s12Workload(b, b.N)
	v, err := FromIncidence(baseOut, baseIn, semiring.PlusTimes(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Append(batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRebuildS12 is the batch arm: what serving the same delta
// would cost with a full Correlate rebuild per batch.
func BenchmarkFullRebuildS12(b *testing.B) {
	baseOut, baseIn, batches := s12Workload(b, 1)
	v, err := FromIncidence(baseOut, baseIn, semiring.PlusTimes(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := v.Append(batches[0]); err != nil {
		b.Fatal(err)
	}
	snap, err := v.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assoc.Correlate(snap.Eout, snap.Ein, semiring.PlusTimes(), assoc.MulOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot verifies the O(1) read-view claim.
func BenchmarkSnapshot(b *testing.B) {
	baseOut, baseIn, _ := s12Workload(b, 0)
	v, err := FromIncidence(baseOut, baseIn, semiring.PlusTimes(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s, err := v.Snapshot(); err != nil || s.Edges == 0 {
			b.Fatal("empty snapshot", err)
		}
	}
}

// BenchmarkIngestEndToEnd streams the whole s12 graph through Append in
// 1% batches, the sustained-ingest figure.
func BenchmarkIngestEndToEnd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := dataset.RMAT(r, 12, 8)
	es := g.Edges()
	per := len(es) / 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NewView(semiring.PlusTimes(), Options{})
		for lo := 0; lo < len(es); lo += per {
			hi := lo + per
			if hi > len(es) {
				hi = len(es)
			}
			batch := make([]Edge[float64], hi-lo)
			for j, e := range es[lo:hi] {
				batch[j] = Edge[float64]{Key: e.Key, Src: e.Src, Dst: e.Dst}
			}
			if err := v.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMaterializeFold measures one backlog fold of `deltas`
// batches into the main adjacency — the Snapshot-time cost — at
// several worker counts (the workers=1 arm is the serial fold; on
// multi-core hardware the span-parallel arms should beat it).
func BenchmarkMaterializeFold(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			baseOut, baseIn, batches := s12Workload(b, b.N*20)
			mul := assoc.MulOptions{}
			if workers > 1 {
				mul.Workers = workers
				mul.FlopFloor = -1
			}
			v, err := FromIncidence(baseOut, baseIn, semiring.PlusTimes(), Options{
				Mul: mul, PendingBudget: 1 << 30,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for d := 0; d < 20; d++ {
					if err := v.Append(batches[i*20+d]); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := v.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
