package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"

	"adjarray/internal/assoc"
	"adjarray/internal/iofault"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
)

// ShardedView partitions the ingested vertex space across N
// goroutine-shards, each owning its own View (and, when opened with
// OpenSharded, its own WAL/checkpoint directory), so concurrent appends
// that touch different shards never contend on one mutex.
//
// Routing is by source vertex: every edge lands on the shard that owns
// hash(Src), so each shard owns a DISJOINT set of adjacency ROWS. That
// choice makes the scatter-gather exact by construction: all
// contributions to row r — for every destination column — arrive at one
// shard in global arrival order, the per-shard View folds them exactly
// as the single-view path would, and the snapshot-time ⊕-merge of the
// per-shard adjacencies never combines two values into one cell (the
// row sets are disjoint). The merged adjacency is therefore
// bit-identical to the single-view construction regardless of ⊕ — the
// only re-association points are the per-shard batch boundaries, the
// same ones the single-view path has (shard.Engine's hypothesis, which
// Options.CheckAssociative samples per batch as usual).
//
// The routing hash is a fixed FNV-1a over the Src bytes — deliberately
// NOT the interner's per-process maphash seed, so routing is stable
// across restarts and a durable shard directory always receives the
// same vertices it held before recovery.
//
// Edge keys follow the same discipline as View: explicit keys must
// arrive so that each shard's subsequence stays strictly ascending (any
// globally ascending stream qualifies), and empty keys are
// auto-assigned from per-shard monotone sequences with a shard-unique
// prefix — safe under concurrent Append, where interleaving makes a
// single global sequence impossible to hand out in arrival order.
// Don't mix auto-assigned and explicit keys. Keys must be globally
// unique across the whole sharded ingest (ascending explicit streams
// and the auto prefixes both guarantee this).
//
// A multi-shard Append is atomic per shard, not across shards: shards
// are applied in ascending index order and an error reports the shard
// that rejected its sub-batch, with lower-indexed shards already
// committed. Callers that need all-or-nothing batches should route
// per-shard batches themselves.
type ShardedView[V any] struct {
	ops semiring.Ops[V]
	// eng drives the snapshot-time ⊕-merge of per-shard adjacencies;
	// its Mul carries the caller's Workers so the merge runs
	// span-parallel while the per-shard Views (already concurrent) run
	// their own multiplications serially.
	eng      shard.Engine[V]
	views    []*View[V]
	durables []*DurableView[V] // nil for in-memory sharded views

	// Per-shard append state: smu[i] serializes ShardedView appends to
	// shard i so auto-key reservation and the underlying Append are one
	// atomic step (two concurrent appends must not hand out keys in one
	// order and reach the view in the other). autoSeq/autoBase are
	// guarded by smu[i].
	smu      []sync.Mutex
	autoSeq  []int
	autoBase []string

	scatter sync.Pool // *shardScatter[V]

	// cmu guards the last ShardedSnapshot, reused while the epoch
	// vector is unchanged so repeated queries share one lazy merge.
	cmu    sync.Mutex
	cached *ShardedSnapshot[V]
}

// ShardedOptions tunes a ShardedView.
type ShardedOptions struct {
	// Shards is the number of vertex-space partitions; < 1 selects
	// GOMAXPROCS.
	Shards int
	// Stream tunes each per-shard View. With more than one shard the
	// per-shard Mul.Workers is forced to 1 (shards already run
	// concurrently); the requested Workers still drives the
	// snapshot-time ⊕-merge of the per-shard adjacencies.
	Stream Options
}

// shardScatter is the pooled per-Append routing buffer.
type shardScatter[V any] struct {
	sub [][]Edge[V]
}

// FNV-1a, fixed parameters: the routing hash must be identical across
// processes and restarts (the interner's maphash seed is per-process,
// which would re-partition a durable store on every reopen).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func routeHash(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// NewShardedView creates an empty in-memory sharded view.
func NewShardedView[V any](ops semiring.Ops[V], opt ShardedOptions) *ShardedView[V] {
	n := opt.Shards
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	sv := newShardedShell[V](ops, opt, n)
	per := perShardOptions(opt, n)
	for i := 0; i < n; i++ {
		sv.views[i] = NewView(ops, per)
		sv.seedAutoKeys(i)
	}
	return sv
}

// shardMetaFile records the shard count a durable directory was created
// with; reopening honors it (a different count would re-partition the
// vertex space and scatter a vertex's row across shards).
const shardMetaFile = "SHARDS"

// OpenSharded recovers (or creates) a durable sharded view rooted at
// dir: each shard owns its own WAL/checkpoint subdirectory
// ("shard-000", "shard-001", …) and recovers independently through
// Open. The shard count is recorded in dir/SHARDS on first open and
// honored afterwards — opt.Shards <= 0 adopts the recorded count, an
// explicit mismatching count is refused. dopt.View is ignored;
// opt.Stream configures the per-shard views (as in core's ingest
// options).
func OpenSharded[V any](dir string, ops semiring.Ops[V], opt ShardedOptions, dopt DurableOptions[V]) (*ShardedView[V], error) {
	n := opt.Shards
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	fsys := dopt.FS
	if fsys == nil {
		fsys = iofault.OS
	}
	metaPath := filepath.Join(dir, shardMetaFile)
	if data, err := fsys.ReadFile(metaPath); err == nil {
		rec, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil || rec < 1 {
			return nil, fmt.Errorf("stream: %s holds %q, not a shard count", metaPath, strings.TrimSpace(string(data)))
		}
		if opt.Shards > 0 && opt.Shards != rec {
			return nil, fmt.Errorf("stream: %s was created with %d shards; reopening with %d would re-partition the vertex space", dir, rec, opt.Shards)
		}
		n = rec
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := fsys.WriteFile(metaPath, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
			return nil, err
		}
	}
	sv := newShardedShell[V](ops, opt, n)
	sv.durables = make([]*DurableView[V], n)
	per := perShardOptions(opt, n)
	dopt.View = per
	for i := 0; i < n; i++ {
		d, err := Open(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), ops, dopt)
		if err != nil {
			for j := 0; j < i; j++ {
				sv.durables[j].Close() //adjlint:ignore syncerr sibling unwind on open failure; the Open error is the one returned
			}
			return nil, fmt.Errorf("stream: shard %d: %w", i, err)
		}
		sv.durables[i] = d
		sv.views[i] = d.View()
		sv.seedAutoKeys(i)
	}
	return sv, nil
}

func newShardedShell[V any](ops semiring.Ops[V], opt ShardedOptions, n int) *ShardedView[V] {
	sv := &ShardedView[V]{
		ops:      ops,
		eng:      shard.Engine[V]{Ops: ops, Mul: opt.Stream.Mul},
		views:    make([]*View[V], n),
		smu:      make([]sync.Mutex, n),
		autoSeq:  make([]int, n),
		autoBase: make([]string, n),
	}
	sv.scatter.New = func() any {
		return &shardScatter[V]{sub: make([][]Edge[V], n)}
	}
	return sv
}

func perShardOptions(opt ShardedOptions, n int) Options {
	per := opt.Stream
	if n > 1 {
		per.Mul.Workers = 1 // shards already run concurrently
	}
	return per
}

// seedAutoKeys initializes shard i's auto-key generator past whatever
// its (possibly recovered) view already holds, so generated keys keep
// the per-shard ascending discipline. Recovered auto keys carry the
// shard prefix and a fixed-width sequence number, which round-trips the
// counter; any other recovered tail (explicit keys sorting at or past
// the prefix) restarts the generator behind the log's last key, exactly
// as View's own generator seeds itself.
func (sv *ShardedView[V]) seedAutoKeys(i int) {
	v := sv.views[i]
	v.mu.Lock()
	lastKey, edges := v.lastKey, v.edges
	v.mu.Unlock()
	base := fmt.Sprintf("s%03d-", i)
	seq := 0
	if edges > 0 {
		if suf, ok := strings.CutPrefix(lastKey, base); ok {
			if n, err := strconv.Atoi(suf); err == nil && len(suf) == 12 && n >= 0 {
				seq = n + 1
			} else {
				base = lastKey + "+"
			}
		} else if lastKey >= base {
			base = lastKey + "+"
		}
	}
	sv.autoBase[i], sv.autoSeq[i] = base, seq
}

// Shards returns the shard count.
func (sv *ShardedView[V]) Shards() int { return len(sv.views) }

// ShardFor returns the shard that owns a source vertex — exposed for
// tests and benchmarks that construct per-shard workloads.
func (sv *ShardedView[V]) ShardFor(src string) int {
	return int(routeHash(src) % uint64(len(sv.views)))
}

// Durable reports whether the view persists through per-shard WALs.
func (sv *ShardedView[V]) Durable() bool { return sv.durables != nil }

// Append routes one edge batch to its owning shards and applies each
// sub-batch under that shard's lock only — appends touching disjoint
// shards proceed concurrently. See the type comment for the key
// discipline and the per-shard atomicity contract.
func (sv *ShardedView[V]) Append(edges []Edge[V]) error {
	if len(edges) == 0 {
		return nil
	}
	n := len(sv.views)
	if n == 1 {
		return sv.appendShard(0, edges)
	}
	sc := sv.scatter.Get().(*shardScatter[V])
	for i := range sc.sub {
		sc.sub[i] = sc.sub[i][:0]
	}
	for _, e := range edges {
		s := int(routeHash(e.Src) % uint64(n))
		sc.sub[s] = append(sc.sub[s], e)
	}
	var err error
	for s := 0; s < n && err == nil; s++ {
		if len(sc.sub[s]) == 0 {
			continue
		}
		if aerr := sv.appendShard(s, sc.sub[s]); aerr != nil {
			err = fmt.Errorf("stream: shard %d: %w", s, aerr)
		}
	}
	for i := range sc.sub {
		clear(sc.sub[i]) // don't retain edge strings past the append
		sc.sub[i] = sc.sub[i][:0]
	}
	sv.scatter.Put(sc)
	return err
}

// appendShard applies one shard's sub-batch under its append lock:
// auto keys are reserved and the view append runs as one atomic step,
// so concurrent ShardedView appends cannot hand keys out in one order
// and reach the shard in another. The sequence is never rolled back on
// error — gaps keep the ascending discipline, and a durable replay
// reproduces the log's explicit keys rather than the generator.
func (sv *ShardedView[V]) appendShard(i int, batch []Edge[V]) error {
	sv.smu[i].Lock()
	defer sv.smu[i].Unlock()
	for j := range batch {
		if batch[j].Key == "" {
			batch[j].Key = fmt.Sprintf("%s%012d", sv.autoBase[i], sv.autoSeq[i])
			sv.autoSeq[i]++
		}
	}
	if sv.durables != nil {
		return sv.durables[i].Append(batch)
	}
	return sv.views[i].Append(batch)
}

// Snapshot pins one consistent epoch per shard — the epoch vector —
// and returns a read view that lazily ⊕-merges the per-shard
// adjacencies on first use. Each per-shard snapshot is immutable and
// copy-on-write exactly as View.Snapshot; the vector is the
// consistency token query layers cache against (every response derived
// from one ShardedSnapshot reflects each shard at exactly its pinned
// epoch). While the vector is unchanged the same snapshot — and its
// already-merged adjacency — is returned again.
func (sv *ShardedView[V]) Snapshot() (*ShardedSnapshot[V], error) {
	n := len(sv.views)
	snaps := make([]Snapshot[V], n)
	epochs := make([]int, n)
	edges := 0
	exact := true
	for i, v := range sv.views {
		s, err := v.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("stream: shard %d: %w", i, err)
		}
		snaps[i] = s
		epochs[i] = s.Epoch
		edges += s.Edges
		// Disjoint row ownership means the cross-shard merge never
		// ⊕-combines two values, so merged exactness is exactly the
		// conjunction of the per-shard flags.
		exact = exact && s.Exact
	}
	sv.cmu.Lock()
	defer sv.cmu.Unlock()
	if sv.cached != nil && slices.Equal(sv.cached.Epochs, epochs) {
		return sv.cached, nil
	}
	sv.cached = &ShardedSnapshot[V]{
		Shards: snaps,
		Epochs: epochs,
		Edges:  edges,
		Exact:  exact,
		eng:    sv.eng,
	}
	return sv.cached, nil
}

// Compact rebuilds every shard's adjacency one-shot from its log.
func (sv *ShardedView[V]) Compact() error {
	for i, v := range sv.views {
		if err := v.Compact(); err != nil {
			return fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardedStats aggregates the per-shard counters.
type ShardedStats struct {
	Shards   int     // shard count
	Edges    int     // edges across all shard logs
	Epochs   []int   // per-shard batch epochs (the consistency vector)
	AdjNNZ   int     // stored adjacency entries across shards (rows are disjoint, so the sum is exact)
	Pending  int     // contribution entries awaiting per-shard folds
	Exact    bool    // every shard provably equals its one-shot construction
	PerShard []Stats // the full per-shard counters
}

// Stats returns aggregated counters plus the per-shard breakdown.
func (sv *ShardedView[V]) Stats() ShardedStats {
	st := ShardedStats{
		Shards:   len(sv.views),
		Epochs:   make([]int, len(sv.views)),
		Exact:    true,
		PerShard: make([]Stats, len(sv.views)),
	}
	for i, v := range sv.views {
		s := v.Stats()
		st.PerShard[i] = s
		st.Epochs[i] = s.Epoch
		st.Edges += s.Edges
		st.AdjNNZ += s.AdjNNZ
		st.Pending += s.PendingNNZ
		st.Exact = st.Exact && s.Exact
	}
	return st
}

// InternerStats sums the per-shard interner footprints. Each shard
// interns only the keys its rows own, so the sums are the store-wide
// slab bytes and table capacity; Keys may count a key once per shard
// side that sees it.
func (sv *ShardedView[V]) InternerStats() (out, in keys.InternerStats) {
	for _, v := range sv.views {
		o, i := v.InternerStats()
		out.Keys += o.Keys
		out.SlabBytes += o.SlabBytes
		out.TableSlot += o.TableSlot
		in.Keys += i.Keys
		in.SlabBytes += i.SlabBytes
		in.TableSlot += i.TableSlot
	}
	return out, in
}

// Durability returns each shard's durability position, nil for
// in-memory sharded views.
func (sv *ShardedView[V]) Durability() []DurabilityStats {
	if sv.durables == nil {
		return nil
	}
	out := make([]DurabilityStats, len(sv.durables))
	for i, d := range sv.durables {
		out[i] = d.Durability()
	}
	return out
}

// StorageHealth aggregates the per-shard storage states: the worst
// per-shard state (a single read-only shard makes the aggregate
// read-only — that slice of the vertex space is shedding writes), the
// summed fault count, and the first sick shard's error. per is the
// per-shard breakdown in shard order, nil for in-memory views. Note
// the append path stays per-shard: healthy siblings keep accepting
// their rows even while the aggregate reads read-only, so callers
// shedding on the aggregate alone over-shed; map per-append errors
// (ErrReadOnly) instead and use the aggregate for health reporting.
func (sv *ShardedView[V]) StorageHealth() (agg StorageHealth, per []StorageHealth) {
	if sv.durables == nil {
		return StorageHealth{}, nil
	}
	per = make([]StorageHealth, len(sv.durables))
	for i, d := range sv.durables {
		h := d.StorageHealth()
		per[i] = h
		agg.Faults += h.Faults
		if h.State > agg.State {
			agg.State = h.State
		}
		if agg.Err == "" && h.Err != "" {
			agg.Err = fmt.Sprintf("shard %d: %s", i, h.Err)
		}
	}
	return agg, per
}

// Recovery returns what each shard's Open found on disk, nil for
// in-memory sharded views.
func (sv *ShardedView[V]) Recovery() []RecoveryInfo {
	if sv.durables == nil {
		return nil
	}
	out := make([]RecoveryInfo, len(sv.durables))
	for i, d := range sv.durables {
		out[i] = d.Recovery()
	}
	return out
}

// Sync forces every shard's log to stable storage.
func (sv *ShardedView[V]) Sync() error {
	if sv.durables == nil {
		return nil
	}
	for i, d := range sv.durables {
		if err := d.Sync(); err != nil {
			return fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	return nil
}

// Checkpoint writes a covering checkpoint in every shard directory.
func (sv *ShardedView[V]) Checkpoint() error {
	if sv.durables == nil {
		return nil
	}
	for i, d := range sv.durables {
		if err := d.Checkpoint(); err != nil {
			return fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard's log (a no-op for in-memory views). All
// shards are closed regardless of errors; the first error is reported.
func (sv *ShardedView[V]) Close() error {
	if sv.durables == nil {
		return nil
	}
	var first error
	for i, d := range sv.durables {
		if err := d.Close(); err != nil && first == nil {
			first = fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	return first
}

// Abort releases every shard's log without the graceful-shutdown steps
// — the crash-simulation hook, mirroring DurableView.Abort.
func (sv *ShardedView[V]) Abort() {
	if sv.durables == nil {
		return
	}
	for _, d := range sv.durables {
		d.Abort()
	}
}

// ShardedSnapshot is an immutable scatter-gather read view: per-shard
// snapshots pinned at one epoch vector, with the merged adjacency (and
// merged incidence logs) computed lazily on first use and shared by
// every caller holding the same snapshot.
type ShardedSnapshot[V any] struct {
	// Shards holds each shard's pinned snapshot, ascending shard order.
	Shards []Snapshot[V]
	// Epochs is the pinned epoch vector, Epochs[i] = Shards[i].Epoch.
	Epochs []int
	// Edges is the edge count across all shard logs.
	Edges int
	// Exact reports whether the merged adjacency provably equals the
	// one-shot batch construction (see Snapshot.Exact; the cross-shard
	// merge itself is always exact because shards own disjoint rows).
	Exact bool

	eng shard.Engine[V]

	adjOnce sync.Once
	adj     *assoc.Array[V]
	adjErr  error

	logOnce sync.Once
	eout    *assoc.Array[V]
	ein     *assoc.Array[V]
	logErr  error
}

// EpochVector returns a copy of the pinned epoch vector.
func (s *ShardedSnapshot[V]) EpochVector() []int { return slices.Clone(s.Epochs) }

// Adjacency gathers the per-shard adjacencies into one array spanning
// the union vertex universe: each shard's array is embedded into the
// union key space and ⊕-merged in ascending shard order through the
// shared engine (span-parallel when the view's Mul options request
// workers). Because shards own disjoint row sets, the merge never
// ⊕-combines two stored values — the gather is exact for any ⊕. The
// merge runs once per snapshot and is cached.
func (s *ShardedSnapshot[V]) Adjacency() (*assoc.Array[V], error) {
	s.adjOnce.Do(func() { s.adj, s.adjErr = s.mergeAdjacency() })
	return s.adj, s.adjErr
}

func (s *ShardedSnapshot[V]) mergeAdjacency() (*assoc.Array[V], error) {
	if len(s.Shards) == 1 {
		return s.Shards[0].Adjacency, nil
	}
	var uRows, uCols *keys.Set
	for _, sn := range s.Shards {
		if uRows == nil {
			uRows, uCols = sn.Adjacency.RowKeys(), sn.Adjacency.ColKeys()
			continue
		}
		uRows = uRows.Union(sn.Adjacency.RowKeys())
		uCols = uCols.Union(sn.Adjacency.ColKeys())
	}
	var acc *assoc.Array[V]
	owned := false // acc storage is merge-allocated, safe to mutate
	for _, sn := range s.Shards {
		pe, err := sn.Adjacency.EmbedInto(uRows, uCols)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			// The first partial shares its shard snapshot's storage, so
			// the first real merge below must not run in place.
			acc = pe
			continue
		}
		acc, err = s.eng.MergeScratch(acc, pe, owned, nil)
		if err != nil {
			return nil, err
		}
		owned = true
	}
	if acc == nil {
		return assoc.FromTriples[V](nil, nil), nil
	}
	return acc, nil
}

// Logs gathers the per-shard incidence logs into one pair spanning the
// union edge-key and vertex universes. Edge keys are globally unique
// (ascending explicit streams; prefixed auto keys), so the row sets are
// disjoint and the gather — like the adjacency merge — never
// ⊕-combines entries. The merged log's row order is ascending key
// order, exactly the single-view log's order. Computed once per
// snapshot and cached.
func (s *ShardedSnapshot[V]) Logs() (eout, ein *assoc.Array[V], err error) {
	s.logOnce.Do(func() { s.eout, s.ein, s.logErr = s.mergeLogs() })
	return s.eout, s.ein, s.logErr
}

func (s *ShardedSnapshot[V]) mergeLogs() (*assoc.Array[V], *assoc.Array[V], error) {
	if len(s.Shards) == 1 {
		return s.Shards[0].Eout, s.Shards[0].Ein, nil
	}
	var eout, ein *assoc.Array[V]
	for _, sn := range s.Shards {
		if sn.Eout.RowKeys().Len() == 0 {
			continue
		}
		if eout == nil {
			eout, ein = sn.Eout, sn.Ein
			continue
		}
		var err error
		if eout, err = assoc.Add(eout, sn.Eout, s.eng.Ops); err != nil {
			return nil, nil, err
		}
		if ein, err = assoc.Add(ein, sn.Ein, s.eng.Ops); err != nil {
			return nil, nil, err
		}
	}
	if eout == nil {
		eout = assoc.FromTriples[V](nil, nil)
		ein = assoc.FromTriples[V](nil, nil)
	}
	return eout, ein, nil
}

// Merged flattens the sharded snapshot into a plain Snapshot: the
// gathered adjacency and incidence logs with Epoch the sum of the
// vector (one scalar for consumers that only order snapshots). Both
// gathers run lazily and are shared across calls.
func (s *ShardedSnapshot[V]) Merged() (Snapshot[V], error) {
	adj, err := s.Adjacency()
	if err != nil {
		return Snapshot[V]{}, err
	}
	eout, ein, err := s.Logs()
	if err != nil {
		return Snapshot[V]{}, err
	}
	epoch := 0
	for _, e := range s.Epochs {
		epoch += e
	}
	return Snapshot[V]{
		Adjacency: adj,
		Eout:      eout,
		Ein:       ein,
		Edges:     s.Edges,
		Epoch:     epoch,
		Exact:     s.Exact,
	}, nil
}
