// Package stream maintains an adjacency array under continuous edge
// ingest — the paper's construction A = Eoutᵀ ⊕.⊗ Ein turned from a
// batch computation into a served, incrementally updated state.
//
// The edge dimension is the reduction dimension of the construction, so
// an appended edge batch K′ contributes exactly one shard-style partial
// product:
//
//	A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:]
//
// (the delta identity). A View owns a pair of append-only incidence
// arrays — the edge log — plus the current adjacency array, and applies
// each batch through the shared partial-product engine in
// internal/shard instead of rebuilding from scratch.
//
// Vertex resolution goes through per-side slab-backed key interners
// (keys.Interner): every distinct endpoint string is stored once and
// mapped to a stable dense id, and the view maintains one flat id →
// column-position array per side. The hot Append path therefore
// resolves endpoints with two array reads per edge — no map[string]int,
// no binary search, no re-sorting of string slices — and a batch that
// introduces new vertices sorts only the NEW keys (typically a handful)
// before the merge-sweep union grows the universe. The universe key
// Sets are Bound to the interners, so every downstream lookup
// (EmbedInto, merge alignment, facade queries against snapshots)
// resolves through the same hash table instead of building per-Set
// maps.
//
// Soundness hypothesis: folding a delta into already-folded state
// re-associates the per-cell ⊕ fold — ((earlier edges) ⊕ (delta))
// instead of the flat left-to-right fold over all edge keys. Because
// edge keys are required to arrive in ascending order, the fold ORDER
// is preserved and only the grouping changes, so the incremental state
// equals the one-shot construction exactly when ⊕ is associative on the
// data (the same hypothesis internal/shard checks, per the paper's
// companion work on algebraic conditions). For a non-associative ⊕ the
// view still ingests — deterministically — but may diverge from the
// batch result; Compact rebuilds from the full log and recovers it.
// Options.CheckAssociative samples the hypothesis on every append and
// fails fast instead.
//
// Reads are served from Snapshots: immutable views that share CSR
// backing with the live state (copy-on-write — an append never mutates
// storage reachable from a handed-out snapshot), so taking one is O(1)
// and snapshot readers never block ingest.
package stream

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/parallel"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/sparse"
)

// Edge is one ingested edge: key k, source, destination, and the two
// incidence entry values Eout(k,Src) and Ein(k,Dst).
//
// Weight presence is EXPLICIT: Out is used only when HasOut is set (and
// In only when HasIn is set); an unset side selects the algebra's One —
// the unweighted convention of Figure 1. The flags replace an earlier
// Zero-value sentinel ("a value equal to the algebra's Zero selects
// One"), which was wrong for any algebra whose One is not Go's zero
// value — under min.* (One = 1) an omitted weight ingested as the
// number 0.0, and a genuine Zero-valued weight was unrepresentable
// (silently rewritten to One) under every pair. With the flags an
// explicit weight always round-trips, including explicit Zero, whose
// edge then contributes nothing to the adjacency (0 annihilates ⊗ under
// the Theorem II.1 conditions) — the algebraic spelling of "no edge".
type Edge[V any] struct {
	Key, Src, Dst string
	Out, In       V
	// HasOut and HasIn mark Out / In as explicitly provided. The zero
	// value (unset) means "unweighted": the side ingests as ops.One.
	HasOut, HasIn bool
}

// Weighted builds an edge with both incidence values explicitly set —
// the common literal for weighted ingest call sites.
func Weighted[V any](key, src, dst string, out, in V) Edge[V] {
	return Edge[V]{Key: key, Src: src, Dst: dst, Out: out, In: in, HasOut: true, HasIn: true}
}

// Options tunes a View.
type Options struct {
	// Mul tunes the per-batch partial products and Compact rebuilds.
	// Mul.Workers also drives the materialize fold: with parallelism
	// requested, the pending-backlog fold and the ⊕-merge into the main
	// adjacency run across flop-balanced row spans.
	Mul assoc.MulOptions
	// CompactEvery, when > 0, triggers an automatic Compact after that
	// many appends — bounding drift for non-associative ⊕ and re-packing
	// storage. 0 disables auto-compaction.
	CompactEvery int
	// CheckAssociative, when set, samples the delta-identity hypotheses
	// (⊕ associative, Zero a ⊕-identity) over each batch's values before
	// accepting it and fails the Append if the re-associated fold could
	// diverge (the shard.Engine guard).
	CheckAssociative bool
	// PendingBudget bounds the delta backlog: once this many pending
	// contribution entries accumulate they are folded into the main
	// adjacency. <= 0 selects max(4096, nnz(main)/4). Smaller budgets
	// fold more eagerly (cheaper snapshots, costlier appends).
	PendingBudget int
}

// View is a maintained adjacency array: an append-only incidence log
// and the current A = Eoutᵀ ⊕.⊗ Ein, updated per batch by the delta
// identity. All methods are safe for concurrent use; reads should go
// through Snapshot, which never blocks on ingest more than the O(1)
// bookkeeping under the lock (plus a pending fold when appends happened
// since the last read).
//
// The adjacency is held in two levels, LSM-style: `main`, the
// materialized array snapshots share, and a pending delta backlog —
// each appended edge's contribution out⊗in recorded as an integer cell
// coordinate plus value, in arrival order. An append therefore costs
// O(batch) — not O(nnz(main)) — and the backlog is folded into main (one
// sort + one ⊕-merge) only when it outgrows Options.PendingBudget or a
// snapshot needs the materialized state. Level order is fold order:
// main holds the earlier edge keys, so a fold re-associates but never
// reorders contributions.
//
// The hot Append path is allocation-lean by construction: batch
// vertices resolve through the per-side interners to integer positions
// (two flat array reads per edge), the log grows by single-entry CSR
// rows in place, and the pending backlog is two flat slices. A batch
// that introduces vertices unseen by the log sorts only the new keys
// and grows the universe by one merge sweep — cold ingest from an empty
// view stays amortized even though nearly every early batch lands
// there.
type View[V any] struct {
	mu  sync.Mutex
	eng shard.Engine[V]
	opt Options

	eout, ein *assoc.Array[V] // append-only incidence log (reified rows)

	// The fast path stages its unit rows here instead of growing the
	// log arrays per batch: reifying a batch into eout/ein costs five
	// small wrapper allocations (Set, two CSRs, two Arrays) every
	// append, while staging is five slice appends into view-owned
	// buffers. flushLogLocked reifies the whole run in one shot at the
	// next boundary that needs the arrays (Snapshot, Compact, a
	// universe-growing batch) — so between snapshots the hot path
	// allocates only on amortized slice growth. Column positions stay
	// valid while staged because only the slow path changes the
	// universe, and it flushes first. lastKey tracks the newest edge
	// key across reified AND staged rows (v.edges > 0 marks it valid).
	stageKeys           []string
	stageOut, stageIn   []int
	stageOutV, stageInV []V
	lastKey             string

	// srcIn/dstIn intern endpoint strings to stable dense ids; srcPos/
	// dstPos map each id to its column position in the current universe
	// (-1: interned but not, or no longer provisionally, in the
	// universe). The position arrays are REPLACED, never mutated, when
	// the universe grows, so the InternIndex bindings handed to older
	// Sets keep describing the universe those Sets froze.
	srcIn, dstIn *keys.Interner
	//adjlint:cow
	srcPos, dstPos []int32

	main       *assoc.Array[V] // materialized adjacency (snapshots share it); always spans the log's vertex universe
	pendCell   []int64         // pending contribution cells, row*C+col in universe coords, arrival order
	pendVal    []V             // pending contribution values, parallel to pendCell
	mainShared bool            // a Snapshot holds main's storage
	mainScr    sparse.MergeScratch[V]

	edges    int // rows in the log
	appends  int // batches since the last compact
	epoch    int // total batches ever applied
	exact    bool
	autoSeq  int    // generator for auto-assigned edge keys
	autoBase string // prefix for auto keys; seeded past the log's last key

	scr batchScratch[V] // per-append buffers, reused under mu

	// failpoint, when set (tests only), is consulted at named sites
	// inside the append paths; a non-nil return aborts the append there.
	// It exists to prove the rollback below restores the view exactly.
	failpoint func(site string) error
}

// fail triggers the test failpoint at a named site.
func (v *View[V]) fail(site string) error {
	if v.failpoint != nil {
		return v.failpoint(site)
	}
	return nil
}

// committedError marks an error raised AFTER a batch was fully
// committed (counters bumped, rows in the log) by follow-on
// maintenance — the backlog fold or an auto-compact. Rolling the batch
// back there would be wrong (the maintenance may have merged in place),
// so the append paths let it through without restoring.
type committedError struct{ err error }

func (e *committedError) Error() string { return e.err.Error() }
func (e *committedError) Unwrap() error { return e.err }

// appendRollback is the state an in-flight append may change, captured
// as slice headers and counters. Arrays are copy-on-write throughout
// the append paths (the backlog rebase included), so restoring the
// headers restores the view bit for bit: bytes past a restored length
// are garbage a future append overwrites before reading.
type appendRollback[V any] struct {
	eout, ein, main *assoc.Array[V]
	srcPos, dstPos  []int32
	pendCell        []int64
	pendVal         []V
	nStage          int
	mainShared      bool
	edges           int
	appends         int
	epoch           int
	exact           bool
	lastKey         string
}

func (v *View[V]) captureLocked() appendRollback[V] {
	return appendRollback[V]{
		eout: v.eout, ein: v.ein, main: v.main,
		srcPos: v.srcPos, dstPos: v.dstPos,
		pendCell: v.pendCell, pendVal: v.pendVal,
		nStage:     len(v.stageKeys),
		mainShared: v.mainShared,
		edges:      v.edges, appends: v.appends, epoch: v.epoch,
		exact: v.exact, lastKey: v.lastKey,
	}
}

func (v *View[V]) restoreLocked(rb appendRollback[V]) {
	v.eout, v.ein, v.main = rb.eout, rb.ein, rb.main
	v.srcPos, v.dstPos = rb.srcPos, rb.dstPos
	v.pendCell, v.pendVal = rb.pendCell, rb.pendVal
	v.stageKeys = v.stageKeys[:rb.nStage]
	v.stageOut, v.stageIn = v.stageOut[:rb.nStage], v.stageIn[:rb.nStage]
	v.stageOutV, v.stageInV = v.stageOutV[:rb.nStage], v.stageInV[:rb.nStage]
	v.mainShared = rb.mainShared
	v.edges, v.appends, v.epoch = rb.edges, rb.appends, rb.epoch
	v.exact, v.lastKey = rb.exact, rb.lastKey
	// Interner ids assigned for the failed batch stay behind as
	// orphans (id → position -1); growSideLocked is built to absorb
	// them on the next universe growth.
}

// batchScratch holds the fast path's per-append buffers. Append runs
// under the view lock, so one set per view suffices; in steady state the
// ingest path stops allocating.
type batchScratch[V any] struct {
	rowKeys        []string
	srcs, dsts     []string
	outs, ins      []V
	srcIDs, dstIDs []int32 // interner ids, parallel to srcs/dsts
	srcID          []int   // column positions, parallel to srcs
	dstID          []int
	newIDs         []int32  // slow path: ids of keys new to one universe
	newKeys        []string // slow path: their key strings, then sorted
	enc            []int64  // materialize: (cell, seq) encoding
	foldPtr        []int    // materialize: fold CSR row pointer
	foldCol        []int
	foldVal        []V
	tmpCol         []int   // parallel materialize: span-local fold staging
	tmpVal         []V     //
	wprefix        []int64 // parallel materialize: per-row weight prefix
	spanOf         []int   // parallel materialize: per-entry span index
}

// NewView creates an empty view for the given operator pair.
func NewView[V any](ops semiring.Ops[V], opt Options) *View[V] {
	// Each log line gets its own empty array: reuse-append chains grow
	// their receiver's backing, so eout and ein must never share one.
	return &View[V]{
		eng:   shard.Engine[V]{Ops: ops, Mul: opt.Mul},
		opt:   opt,
		eout:  assoc.FromTriples[V](nil, nil),
		ein:   assoc.FromTriples[V](nil, nil),
		main:  assoc.FromTriples[V](nil, nil),
		srcIn: keys.NewInterner(),
		dstIn: keys.NewInterner(),
		exact: true,
	}
}

// FromIncidence bootstraps a view from an existing batch-built pair of
// incidence arrays: the initial adjacency is constructed one-shot (the
// exact sequential fold), and subsequent Appends apply deltas on top.
func FromIncidence[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V], opt Options) (*View[V], error) {
	if !eout.RowKeys().Equal(ein.RowKeys()) {
		return nil, fmt.Errorf("stream: incidence arrays disagree on edge keys")
	}
	v := NewView(ops, opt)
	if eout.RowKeys().Len() == 0 {
		return v, nil
	}
	adj, err := v.eng.Partial(eout, ein)
	if err != nil {
		return nil, err
	}
	v.eout, v.ein, v.main = eout, ein, adj
	v.edges = eout.RowKeys().Len()
	v.lastKey = eout.RowKeys().Key(v.edges - 1)
	v.rebindLocked()
	return v, nil
}

// flushLogLocked reifies the staged fast-path rows into the log arrays
// — one AppendIncidencePair for the whole run since the last flush.
// Boundaries that read or reshape the log (Snapshot, Compact, the
// universe-growing append paths) flush first; between them the arrays'
// ROW dimension lags the staged run while the column universe stays
// exact (only flushed paths may grow it).
func (v *View[V]) flushLogLocked() error {
	if len(v.stageKeys) == 0 {
		return nil
	}
	eout, ein, err := assoc.AppendIncidencePair(v.eout, v.ein, v.stageKeys, v.stageOut, v.stageIn, v.stageOutV, v.stageInV)
	if err != nil {
		return err
	}
	v.eout, v.ein = eout, ein
	v.stageKeys = v.stageKeys[:0]
	v.stageOut, v.stageIn = v.stageOut[:0], v.stageIn[:0]
	v.stageOutV, v.stageInV = v.stageOutV[:0], v.stageInV[:0]
	return nil
}

// rebindLocked resynchronizes the interners with the log's column
// universes from scratch — the recovery path for batches that grow the
// universe outside the interner-aware route (AppendArrays, the packed-
// coordinate overflow fallback) and the FromIncidence bootstrap. It
// interns every universe key (existing ids are reused; ids never
// change) and rebuilds the id→position arrays, then binds the universe
// Sets so their Index resolves through the interner.
func (v *View[V]) rebindLocked() {
	v.srcPos = rebindSide(v.srcIn, v.eout.ColKeys())
	v.dstPos = rebindSide(v.dstIn, v.ein.ColKeys())
}

func rebindSide(in *keys.Interner, set *keys.Set) []int32 {
	n := set.Len()
	ids := make([]int32, n)
	for i := 0; i < n; i++ {
		ids[i] = in.Intern(set.Key(i))
	}
	pos := make([]int32, in.Len())
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range ids {
		pos[id] = int32(i)
	}
	set.Bind(&keys.InternIndex{In: in, Pos: pos})
	return pos
}

// Append ingests one edge batch. Edge keys must be strictly increasing
// within the batch and sort after every key already in the log (the
// append-only discipline that keeps fold order equal to arrival order);
// an empty Key is auto-assigned from a monotone sequence — don't mix
// auto-assigned and explicit keys. Duplicate keys are rejected.
func (v *View[V]) Append(edges []Edge[V]) error {
	if len(edges) == 0 {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ops := v.eng.Ops
	s := &v.scr
	s.rowKeys = s.rowKeys[:0]
	s.srcs, s.dsts = s.srcs[:0], s.dsts[:0]
	s.outs, s.ins = s.outs[:0], s.ins[:0]
	prev := ""
	for i, e := range edges {
		key := e.Key
		if key == "" {
			if v.autoBase == "" {
				// Seed the generator past whatever is already in the
				// log (e.g. a FromIncidence bootstrap with explicit
				// keys), so auto keys keep the ascending discipline.
				if v.edges > 0 {
					v.autoBase = v.lastKey + "+"
				} else {
					v.autoBase = "e"
				}
			}
			key = fmt.Sprintf("%s%012d", v.autoBase, v.autoSeq+i)
		}
		if i > 0 && key <= prev {
			return fmt.Errorf("stream: batch edge keys not strictly increasing at %d: %q <= %q", i, key, prev)
		}
		prev = key
		ov, iv := e.Out, e.In
		if !e.HasOut {
			ov = ops.One
		}
		if !e.HasIn {
			iv = ops.One
		}
		s.rowKeys = append(s.rowKeys, key)
		s.srcs = append(s.srcs, e.Src)
		s.dsts = append(s.dsts, e.Dst)
		s.outs = append(s.outs, ov)
		s.ins = append(s.ins, iv)
	}
	// Cross-batch key discipline, validated before anything is staged
	// or committed: the batch's first key must sort after everything in
	// the log, reified or staged.
	if v.edges > 0 && s.rowKeys[0] <= v.lastKey {
		return fmt.Errorf("stream: batch key %q does not sort after the log's last key %q", s.rowKeys[0], v.lastKey)
	}
	if err := v.appendResolvedLocked(); err != nil {
		return err
	}
	v.autoSeq += len(edges)
	return nil
}

// appendResolvedLocked applies the batch staged in v.scr: the fused fast
// path when every batch vertex resolves through the interners to a
// position in the current universe, the general grow route otherwise.
func (v *View[V]) appendResolvedLocked() error {
	s := &v.scr
	n := len(s.rowKeys)
	if cap(s.srcIDs) < n {
		s.srcIDs = make([]int32, 0, 2*n)
		s.dstIDs = make([]int32, 0, 2*n)
	}
	s.srcIDs, s.dstIDs = s.srcIDs[:n], s.dstIDs[:n]
	s.srcID = s.srcID[:0]
	s.dstID = s.dstID[:0]
	// One read-lock acquisition per side resolves the whole batch to
	// interner ids; ids then map to column positions with a flat array
	// read. No maps, no binary searches, no sorting.
	resolved := v.srcIn.LookupBatch(s.srcs, s.srcIDs) && v.dstIn.LookupBatch(s.dsts, s.dstIDs)
	if resolved {
		for i := 0; i < n; i++ {
			sid, did := s.srcIDs[i], s.dstIDs[i]
			if int(sid) >= len(v.srcPos) || v.srcPos[sid] < 0 ||
				int(did) >= len(v.dstPos) || v.dstPos[did] < 0 {
				resolved = false
				break
			}
			s.srcID = append(s.srcID, int(v.srcPos[sid]))
			s.dstID = append(s.dstID, int(v.dstPos[did]))
		}
	}
	C := int64(v.ein.ColKeys().Len())
	if resolved && (C == 0 || int64(v.eout.ColKeys().Len()) <= math.MaxInt64/C) {
		rb := v.captureLocked()
		if err := v.appendFastLocked(); err != nil {
			return v.rollbackLocked(rb, err)
		}
		return nil
	}
	// Reify the staged run before capturing: the flush commits PRIOR
	// batches (already accepted), not this one, so it must survive a
	// rollback of this batch.
	if err := v.flushLogLocked(); err != nil {
		return err
	}
	rb := v.captureLocked()
	if err := v.appendSlowLocked(); err != nil {
		return v.rollbackLocked(rb, err)
	}
	return nil
}

// rollbackLocked restores the captured state for a batch that failed
// before its commit point — unless err is a committedError, in which
// case the batch stays applied and only the maintenance error
// propagates.
func (v *View[V]) rollbackLocked(rb appendRollback[V], err error) error {
	if ce, ok := err.(*committedError); ok {
		return ce.err
	}
	v.restoreLocked(rb)
	return err
}

// appendSlowLocked handles a staged batch that introduces vertices
// unseen by the log. The batch endpoints are interned (new keys land in
// the slab and get fresh ids); only the keys NEW to each universe are
// sorted — a handful, not the whole batch — and the column universes
// grow by one merge-sweep union (GrowCols, no hashing, growth maps for
// free). The id→position arrays are rebuilt copy-on-write, the pending
// backlog's integer coordinates are rebased into the grown universe —
// O(backlog), no fold — and the batch's contributions queue raw exactly
// like the fast path's.
func (v *View[V]) appendSlowLocked() error {
	s := &v.scr
	n := len(s.rowKeys)
	if v.opt.CheckAssociative {
		if err := v.checkBatchAssociativeLocked(); err != nil {
			return err
		}
	}
	// The staged run was reified by the caller (appendResolvedLocked)
	// before the rollback capture: positions staged earlier refer to
	// the universe this batch is about to grow.
	v.srcIn.InternBatch(s.srcs, s.srcIDs)
	v.dstIn.InternBatch(s.dsts, s.dstIDs)
	srcPos, err := v.growSideLocked(v.srcIn, v.srcPos, s.srcIDs, true)
	if err != nil {
		return err
	}
	if err := v.fail("slow:grew-src"); err != nil {
		return err
	}
	dstPos, err := v.growSideLocked(v.dstIn, v.dstPos, s.dstIDs, false)
	if err != nil {
		return err
	}
	if err := v.fail("slow:grew-dst"); err != nil {
		return err
	}
	newC := int64(v.ein.ColKeys().Len())
	if newC > 0 && int64(v.eout.ColKeys().Len()) > math.MaxInt64/newC {
		// Cell coordinates no longer pack into an int64: fall back to
		// the array route (flush + direct merge), which never packs.
		// The universes have already grown consistently, so only the
		// log rows and the adjacency merge remain.
		dout, din, err := buildDelta(s.rowKeys, s.srcs, s.dsts, s.outs, s.ins)
		if err != nil {
			return err
		}
		return v.appendArraysLocked(dout, din, nil)
	}
	// Per-edge positions in the grown universes.
	s.srcID, s.dstID = s.srcID[:0], s.dstID[:0]
	for i := 0; i < n; i++ {
		s.srcID = append(s.srcID, int(srcPos[s.srcIDs[i]]))
		s.dstID = append(s.dstID, int(dstPos[s.dstIDs[i]]))
	}
	eout, ein, err := assoc.AppendIncidencePair(v.eout, v.ein, s.rowKeys, s.srcID, s.dstID, s.outs, s.ins)
	if err != nil {
		return err
	}
	v.eout, v.ein = eout, ein
	if err := v.fail("slow:appended-rows"); err != nil {
		return err
	}
	return v.commitBatchLocked(newC)
}

// growSideLocked grows one side's column universe to cover the batch
// ids in batchIDs, committing the grown array, the rebased backlog
// coordinates (the src side owns the row coordinate, the dst side the
// column), and the new id→position array. It returns the committed
// position array. When the batch introduces no new keys the existing
// position array is returned untouched.
func (v *View[V]) growSideLocked(in *keys.Interner, pos []int32, batchIDs []int32, isSrc bool) ([]int32, error) {
	s := &v.scr
	// Collect the distinct ids that are not (or not yet) in the
	// universe, in first-appearance order, using a grown copy of the
	// position array as the visited set (-2 marks "queued").
	total := in.Len()
	newPos := make([]int32, total)
	copy(newPos, pos)
	for i := len(pos); i < total; i++ {
		newPos[i] = -1
	}
	s.newIDs = s.newIDs[:0]
	for _, id := range batchIDs {
		if newPos[id] == -1 {
			newPos[id] = -2
			s.newIDs = append(s.newIDs, id)
		}
	}
	side := v.eout
	if !isSrc {
		side = v.ein
	}
	if len(s.newIDs) == 0 {
		// No growth on this side: keep the existing array and binding.
		if len(newPos) == len(pos) {
			return pos, nil
		}
		// Interner grew (orphans from an earlier failed batch) but this
		// universe did not; publish the extended map so ids stay in
		// bounds.
		side.ColKeys().Bind(&keys.InternIndex{In: in, Pos: newPos})
		if isSrc {
			v.srcPos = newPos
		} else {
			v.dstPos = newPos
		}
		return newPos, nil
	}
	// Sort ONLY the new keys — the interner already deduplicated them.
	s.newKeys = s.newKeys[:0]
	for _, id := range s.newIDs {
		s.newKeys = append(s.newKeys, in.Key(id))
	}
	order := make([]int, len(s.newIDs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return strings.Compare(s.newKeys[a], s.newKeys[b]) })
	sorted := make([]string, len(order))
	for j, oi := range order {
		sorted[j] = s.newKeys[oi]
	}
	extra, err := keys.FromSorted(sorted)
	if err != nil {
		return nil, fmt.Errorf("stream: batch keys: %w", err)
	}
	grown, oldPos, extraPos, err := side.GrowCols(extra)
	if err != nil {
		return nil, err
	}
	// Rebuild this side's id→position map copy-on-write: existing ids
	// remap through oldPos; new ids take their union positions.
	for id, p := range newPos {
		switch {
		case p >= 0 && oldPos != nil:
			newPos[id] = int32(oldPos[p])
		case p == -2:
			newPos[id] = -1 // filled from the sorted order below
		}
	}
	for j, oi := range order {
		up := j
		if extraPos != nil {
			up = extraPos[j]
		}
		newPos[s.newIDs[oi]] = int32(up)
	}
	// Rebase the backlog into the grown universe. The source side owns
	// the row coordinate, the destination side the column; the column
	// stride changes only when the dst side grows, and the caller grows
	// dst AFTER src, so rebasing per side in call order stays exact.
	// The rebase is copy-on-write — a later failure in this append must
	// be able to restore the pre-batch backlog by slice header alone.
	oldC := int64(v.ein.ColKeys().Len())
	if len(v.pendCell) > 0 && oldPos != nil {
		rebased := make([]int64, len(v.pendCell))
		if isSrc {
			for i, cell := range v.pendCell {
				r, c := cell/oldC, cell%oldC
				rebased[i] = int64(oldPos[r])*oldC + c
			}
		} else {
			newC := int64(grown.ColKeys().Len())
			for i, cell := range v.pendCell {
				r, c := cell/oldC, cell%oldC
				rebased[i] = r*newC + int64(oldPos[c])
			}
		}
		v.pendCell = rebased
	} else if !isSrc && len(v.pendCell) > 0 && oldC != int64(grown.ColKeys().Len()) {
		newC := int64(grown.ColKeys().Len())
		rebased := make([]int64, len(v.pendCell))
		for i, cell := range v.pendCell {
			r, c := cell/oldC, cell%oldC
			rebased[i] = r*newC + c
		}
		v.pendCell = rebased
	}
	grown.ColKeys().Bind(&keys.InternIndex{In: in, Pos: newPos})
	if isSrc {
		v.eout = grown
		v.srcPos = newPos
	} else {
		v.ein = grown
		v.dstPos = newPos
	}
	return newPos, nil
}

// appendFastLocked is the steady-state ingest path: all batch vertices
// resolved to positions in the (unchanged) universe, so the batch's
// unit rows are STAGED (five slice appends; reified in bulk at the next
// flush boundary) and its contributions queue as raw (cell, value)
// pairs — no delta arrays, no per-batch product, no key-set work, no
// wrapper allocations.
func (v *View[V]) appendFastLocked() error {
	s := &v.scr

	if v.opt.CheckAssociative {
		if err := v.checkBatchAssociativeLocked(); err != nil {
			return err
		}
	}
	v.stageKeys = append(v.stageKeys, s.rowKeys...)
	v.stageOut = append(v.stageOut, s.srcID...)
	v.stageIn = append(v.stageIn, s.dstID...)
	v.stageOutV = append(v.stageOutV, s.outs...)
	v.stageInV = append(v.stageInV, s.ins...)
	if err := v.fail("fast:staged"); err != nil {
		return err
	}
	return v.commitBatchLocked(int64(v.ein.ColKeys().Len()))
}

// commitBatchLocked is the shared tail of both append paths: it queues
// the staged batch's contributions as (cell, value) pairs against the
// committed universe (stride C), bumps the counters, and applies the
// budget/compaction policies. The caller must already have grown the
// log and assigned v.eout/v.ein.
func (v *View[V]) commitBatchLocked(C int64) error {
	s := &v.scr
	ops := v.eng.Ops
	if need := len(v.pendCell) + len(s.srcID); cap(v.pendCell) < need {
		// Grow by doubling (the built-in append backs off to ~1.25x for
		// large slices): the backlog fills toward the fold budget and
		// resets keeping its capacity, so growth stops after the first
		// fold cycle. Never pre-reserve the budget itself — it is a CAP,
		// and callers legitimately set it huge to defer folding.
		c := 2 * cap(v.pendCell)
		if c < need {
			c = need
		}
		pc := make([]int64, len(v.pendCell), c)
		pv := make([]V, len(v.pendVal), c)
		copy(pc, v.pendCell)
		copy(pv, v.pendVal)
		v.pendCell, v.pendVal = pc, pv
	}
	for i := range s.srcID {
		v.pendCell = append(v.pendCell, int64(s.srcID[i])*C+int64(s.dstID[i]))
		v.pendVal = append(v.pendVal, ops.Mul(s.outs[i], s.ins[i]))
	}
	v.edges += len(s.rowKeys)
	v.lastKey = s.rowKeys[len(s.rowKeys)-1]
	v.appends++
	v.epoch++
	if err := v.fail("commit:counted"); err != nil {
		return err
	}
	if len(v.pendVal) >= v.pendingBudget() {
		if err := v.materializeLocked(); err != nil {
			return &committedError{err}
		}
	}
	if v.opt.CompactEvery > 0 && v.appends >= v.opt.CompactEvery {
		if err := v.compactLocked(); err != nil {
			return &committedError{err}
		}
	}
	return nil
}

// checkBatchAssociativeLocked samples the associativity guard over the
// staged batch's values and their ⊗-products — the values the deferred
// fold will actually combine.
func (v *View[V]) checkBatchAssociativeLocked() error {
	s := &v.scr
	ops := v.eng.Ops
	sample := make([]V, 0, 12)
	for i := range s.outs {
		if len(sample) >= 12 {
			break
		}
		sample = append(sample, s.outs[i])
		if len(sample) < 12 {
			sample = append(sample, s.ins[i])
		}
		if len(sample) < 12 {
			sample = append(sample, ops.Mul(s.outs[i], s.ins[i]))
		}
	}
	if err := v.eng.CheckAssociativeValues(sample); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// buildDelta constructs a batch's delta incidence arrays in one
// map-free pass. Because an incidence row holds exactly one entry per
// side (Definition I.4), each side is a unit-diagonal-shaped CSR whose
// column indices come from one argsort of the batch's vertex keys; no
// hash maps are built.
//
// The returned arrays retain the callers' slices (rowKeys, outs, ins)
// — the view passes its per-append scratch here, so they must not
// outlive the append that built them. The log append copies everything
// it keeps.
func buildDelta[V any](rowKeys, srcs, dsts []string, outs, ins []V) (dout, din *assoc.Array[V], err error) {
	n := len(rowKeys)
	rows, err := keys.FromSorted(rowKeys)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: batch keys: %w", err)
	}
	srcSet, si := argsortUnique(srcs)
	dstSet, di := argsortUnique(dsts)
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
	}
	outM, err := sparse.NewCSR(n, srcSet.Len(), rowPtr, si, outs)
	if err != nil {
		return nil, nil, err
	}
	inM, err := sparse.NewCSR(n, dstSet.Len(), append([]int(nil), rowPtr...), di, ins)
	if err != nil {
		return nil, nil, err
	}
	dout, err = assoc.New(rows, srcSet, outM)
	if err != nil {
		return nil, nil, err
	}
	din, err = assoc.New(rows, dstSet, inM)
	if err != nil {
		return nil, nil, err
	}
	return dout, din, nil
}

// argsortUnique returns the sorted unique key Set of ks plus each
// element's position in it — one argsort instead of a set sort followed
// by per-element binary searches.
func argsortUnique(ks []string) (*keys.Set, []int) {
	idx := make([]int, len(ks))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return strings.Compare(ks[a], ks[b]) })
	uniq := make([]string, 0, len(ks))
	pos := make([]int, len(ks))
	for _, e := range idx {
		if len(uniq) == 0 || uniq[len(uniq)-1] != ks[e] {
			uniq = append(uniq, ks[e])
		}
		pos[e] = len(uniq) - 1
	}
	set, err := keys.FromSorted(uniq)
	if err != nil {
		panic("stream: argsortUnique produced unsorted keys: " + err.Error())
	}
	return set, pos
}

// AppendArrays ingests one batch given directly as a pair of delta
// incidence arrays sharing their edge-key row set — the entry point for
// ingest pipelines that already build arrays (internal/core's
// accumulator, replayed batch files). The same key discipline as Append
// applies.
func (v *View[V]) AppendArrays(dout, din *assoc.Array[V]) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.appendArraysLocked(dout, din, nil)
}

// appendArraysLocked applies one delta batch on the general array route:
// the batch's partial product (computed through the shared shard engine
// when not supplied) is ⊕-merged into the main adjacency directly. This
// path can grow the vertex universe outside the interner-aware route,
// so the pending backlog — encoded in the old universe's coordinates —
// is folded first, and the interners are resynchronized after.
func (v *View[V]) appendArraysLocked(dout, din, partial *assoc.Array[V]) error {
	if !dout.RowKeys().Equal(din.RowKeys()) {
		return fmt.Errorf("stream: delta incidence arrays disagree on edge keys")
	}
	if dout.RowKeys().Len() == 0 {
		return nil
	}
	if partial == nil {
		var err error
		partial, err = v.eng.Partial(dout, din)
		if err != nil {
			return err
		}
	}
	if v.opt.CheckAssociative {
		if err := v.eng.CheckAssociative(dout, din, partial); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	}
	// Reify staged rows and fold the backlog under the universe their
	// coordinates refer to, before the log append below can grow it.
	if err := v.flushLogLocked(); err != nil {
		return err
	}
	if err := v.materializeLocked(); err != nil {
		return err
	}
	// Grow the log next: AppendRows validates the key discipline, and
	// failing before the merge keeps log and adjacency consistent.
	oldSrcSet, oldDstSet := v.eout.ColKeys(), v.ein.ColKeys()
	eout, err := v.eout.AppendRows(dout, true)
	if err != nil {
		return err
	}
	ein, err := v.ein.AppendRows(din, true)
	if err != nil {
		return err
	}
	v.eout, v.ein = eout, ein
	// Resynchronize the interners only when the universe actually grew
	// (AppendRows returns the SAME column Set pointers otherwise, and a
	// same-pointer Set means every cached id→position entry is still
	// exact) — the steady-state array route stays O(batch), not
	// O(universe).
	if eout.ColKeys() != oldSrcSet || ein.ColKeys() != oldDstSet {
		v.rebindLocked()
	}
	uRows, uCols := eout.ColKeys(), ein.ColKeys()
	pe, err := partial.EmbedInto(uRows, uCols)
	if err != nil {
		return err
	}
	if err := v.embedMainLocked(uRows, uCols); err != nil {
		return err
	}
	if v.main.NNZ() > 0 && partial.NNZ() > 0 && !v.opt.CheckAssociative {
		// The merge groups this batch's folded contribution against
		// already-folded state under unverified ⊕.
		v.exact = false
	}
	main, err := v.eng.MergeScratch(v.main, pe, !v.mainShared, &v.mainScr)
	if err != nil {
		return err
	}
	if main != v.main {
		v.mainShared = false
	}
	v.main = main
	v.edges += dout.RowKeys().Len()
	v.lastKey = dout.RowKeys().Key(dout.RowKeys().Len() - 1)
	v.appends++
	v.epoch++
	if v.opt.CompactEvery > 0 && v.appends >= v.opt.CompactEvery {
		return v.compactLocked()
	}
	return nil
}

func (v *View[V]) pendingBudget() int {
	if v.opt.PendingBudget > 0 {
		return v.opt.PendingBudget
	}
	b := v.main.NNZ() / 4
	if b < 4096 {
		b = 4096
	}
	return b
}

// embedMainLocked grows main's key sets to the universe. EmbedInto
// shares main's storage (no value copy), so mainShared must stay as it
// is.
func (v *View[V]) embedMainLocked(uRows, uCols *keys.Set) error {
	if v.main.RowKeys().Equal(uRows) && v.main.ColKeys().Equal(uCols) {
		return nil
	}
	main, err := v.main.EmbedInto(uRows, uCols)
	if err != nil {
		return err
	}
	v.main = main
	return nil
}

// minParallelFold is the backlog size below which the materialize fold
// always runs serially: span scheduling costs a few microseconds, which
// a small sort+fold undercuts on one core.
const minParallelFold = 4096

// materializeLocked folds the pending backlog into the main adjacency:
// the contributions are grouped by cell while preserving arrival order
// within each cell, each cell's run is ⊕-folded (pruning folds equal to
// the algebra's zero, the kernels' contract), and the resulting delta
// array ⊕-merges into main with main's entries on the left. Level order
// is edge-key order, so only the fold's GROUPING changes, never its
// order — and the grouping changes only at this main-vs-backlog
// boundary, which is where a non-associative ⊕ can diverge (flagged via
// Exact unless the guard is on).
//
// With Options.Mul requesting parallelism and a backlog worth
// splitting, the fold runs across row spans balanced by pending-entry
// count (foldPendingParallel) and the subsequent ⊕-merge into main runs
// across merge-cost-balanced spans (the engine routes it through
// sparse.EWiseAddIntoParallel) — both bit-identical to the serial path.
func (v *View[V]) materializeLocked() error {
	n := len(v.pendVal)
	if n == 0 {
		return nil
	}
	s := &v.scr
	uRows, uCols := v.eout.ColKeys(), v.ein.ColKeys()
	R, C := uRows.Len(), uCols.Len()
	w := 1
	if mw := v.opt.Mul.Workers; (mw > 1 || mw < 0) && n >= minParallelFold {
		w = parallel.Workers(mw, R)
	}
	if w > 1 {
		v.foldPendingParallel(R, C, w)
	} else {
		v.foldPendingSerial(R, C)
	}
	v.pendCell = v.pendCell[:0]
	v.pendVal = v.pendVal[:0]
	if len(s.foldCol) == 0 {
		// Every fold pruned to the algebra's zero — nothing to merge.
		return nil
	}
	// The fold array only feeds the merge below — EWiseAddInto never
	// returns or retains its src backing — so handing it the scratch
	// slices directly is safe; the next materialize reuses them.
	fm, err := sparse.NewCSR(R, C, s.foldPtr[:R+1], s.foldCol, s.foldVal)
	if err != nil {
		return err
	}
	fold, err := assoc.New(uRows, uCols, fm)
	if err != nil {
		return err
	}
	if err := v.embedMainLocked(uRows, uCols); err != nil {
		return err
	}
	if v.main.NNZ() > 0 && !v.opt.CheckAssociative {
		// The merge below groups the backlog's folded contributions
		// against already-folded state under unverified ⊕.
		v.exact = false
	}
	main, err := v.eng.MergeScratch(v.main, fold, !v.mainShared, &v.mainScr)
	if err != nil {
		return err
	}
	if main != v.main {
		v.mainShared = false
	}
	v.main = main
	return nil
}

// foldPendingSerial is the single-threaded backlog fold: one integer
// sort groups the contributions by cell while preserving arrival order
// within each cell (the (cell, seq) packed encoding, or a stable
// argsort when the coordinate space is too large to pack), then a
// single pass ⊕-folds each cell's run into the fold CSR scratch.
func (v *View[V]) foldPendingSerial(R, C int) {
	s := &v.scr
	n := len(v.pendVal)
	maxCell := int64(R)*int64(C) - 1
	// Strict: cell*n + i with i < n must not wrap for cell = maxCell.
	packed := maxCell < math.MaxInt64/int64(n)
	s.enc = s.enc[:0]
	if cap(s.enc) < n {
		s.enc = make([]int64, 0, 2*n)
	}
	if packed {
		for i, cell := range v.pendCell {
			s.enc = append(s.enc, cell*int64(n)+int64(i))
		}
		slices.Sort(s.enc)
	} else {
		for i := range v.pendCell {
			s.enc = append(s.enc, int64(i))
		}
		slices.SortStableFunc(s.enc, func(a, b int64) int {
			ca, cb := v.pendCell[a], v.pendCell[b]
			switch {
			case ca < cb:
				return -1
			case ca > cb:
				return 1
			}
			return 0
		})
	}
	if cap(s.foldPtr) < R+1 {
		s.foldPtr = make([]int, R+1)
	}
	foldPtr := s.foldPtr[:R+1]
	foldCol := s.foldCol[:0]
	foldVal := s.foldVal[:0]
	ops := v.eng.Ops
	fillRow := 0
	emit := func(cell int64, acc V) {
		if ops.IsZero(acc) {
			return
		}
		r := int(cell / int64(C))
		for fillRow < r {
			foldPtr[fillRow+1] = len(foldCol)
			fillRow++
		}
		foldCol = append(foldCol, int(cell%int64(C)))
		foldVal = append(foldVal, acc)
	}
	foldPtr[0] = 0
	var acc V
	curCell := int64(-1)
	for _, e := range s.enc {
		var cell int64
		var i int
		if packed {
			cell = e / int64(n)
			i = int(e % int64(n))
		} else {
			i = int(e)
			cell = v.pendCell[i]
		}
		val := v.pendVal[i]
		if cell != curCell {
			if curCell >= 0 {
				emit(curCell, acc)
			}
			curCell = cell
			acc = val
		} else {
			acc = ops.Add(acc, val)
		}
	}
	if curCell >= 0 {
		emit(curCell, acc)
	}
	for fillRow < R {
		foldPtr[fillRow+1] = len(foldCol)
		fillRow++
	}
	s.foldCol, s.foldVal = foldCol, foldVal
}

// foldPendingParallel is the span-parallel backlog fold: rows are
// partitioned into spans balanced by pending-entry count (the fold's
// work unit), entries are scattered to their owning span in arrival
// order, each span independently sorts and ⊕-folds its rows into a
// staging area, and the per-span results are stitched into the fold CSR
// with one parallel copy. Per-row output is bit-identical to the serial
// fold: cells sort ascending within each span, spans cover ascending
// disjoint row ranges, and arrival order within a cell is preserved by
// the same (cell, seq) encoding.
func (v *View[V]) foldPendingParallel(R, C, w int) {
	s := &v.scr
	n := len(v.pendVal)
	ops := v.eng.Ops

	// Per-row pending counts → weight prefix → balanced spans.
	if cap(s.wprefix) < R+1 {
		s.wprefix = make([]int64, R+1)
	}
	wprefix := s.wprefix[:R+1]
	for i := range wprefix {
		wprefix[i] = 0
	}
	for _, cell := range v.pendCell {
		wprefix[cell/int64(C)+1]++
	}
	for i := 0; i < R; i++ {
		wprefix[i+1] += wprefix[i]
	}
	bounds := parallel.BalancedSpans(wprefix, w)

	// Scatter entries to spans, preserving arrival order within a span.
	maxCell := int64(R)*int64(C) - 1
	packed := maxCell < math.MaxInt64/int64(n)
	if cap(s.enc) < n {
		s.enc = make([]int64, 0, 2*n)
	}
	enc := s.enc[:n]
	if cap(s.spanOf) < w+1 {
		s.spanOf = make([]int, w+1)
	}
	offs := s.spanOf[:w+1]
	for i := range offs {
		offs[i] = 0
	}
	spanFor := func(r int) int {
		// bounds is short (≤ workers); binary search it.
		return sort.Search(len(bounds)-1, func(x int) bool { return bounds[x+1] > r })
	}
	for _, cell := range v.pendCell {
		offs[spanFor(int(cell/int64(C)))+1]++
	}
	for x := 0; x < w; x++ {
		offs[x+1] += offs[x]
	}
	spanStart := make([]int, w+1)
	copy(spanStart, offs)
	for i, cell := range v.pendCell {
		x := spanFor(int(cell / int64(C)))
		if packed {
			enc[offs[x]] = cell*int64(n) + int64(i)
		} else {
			enc[offs[x]] = int64(i)
		}
		offs[x]++
	}

	// Per-span sort + fold into the staging buffers; folded entries for
	// span x land at [spanStart[x], spanStart[x]+spanLen[x]) — the input
	// range bounds the output (folding only shrinks).
	if cap(s.foldPtr) < R+1 {
		s.foldPtr = make([]int, R+1)
	}
	foldPtr := s.foldPtr[:R+1]
	for i := range foldPtr {
		foldPtr[i] = 0
	}
	if cap(s.tmpCol) < n {
		s.tmpCol = make([]int, n)
	}
	if cap(s.tmpVal) < n {
		s.tmpVal = make([]V, n)
	}
	tmpCol, tmpVal := s.tmpCol[:n], s.tmpVal[:n]
	spanLen := make([]int, w)
	parallel.ForSpans(bounds, func(x, rLo, rHi int) {
		part := enc[spanStart[x]:spanStart[x+1]]
		if packed {
			slices.Sort(part)
		} else {
			slices.SortStableFunc(part, func(a, b int64) int {
				ca, cb := v.pendCell[a], v.pendCell[b]
				switch {
				case ca < cb:
					return -1
				case ca > cb:
					return 1
				}
				return 0
			})
		}
		out := 0
		base := spanStart[x]
		emit := func(cell int64, acc V) {
			if ops.IsZero(acc) {
				return
			}
			r := int(cell / int64(C))
			foldPtr[r+1]++
			tmpCol[base+out] = int(cell % int64(C))
			tmpVal[base+out] = acc
			out++
		}
		var acc V
		curCell := int64(-1)
		for _, e := range part {
			var cell int64
			var i int
			if packed {
				cell = e / int64(n)
				i = int(e % int64(n))
			} else {
				i = int(e)
				cell = v.pendCell[i]
			}
			val := v.pendVal[i]
			if cell != curCell {
				if curCell >= 0 {
					emit(curCell, acc)
				}
				curCell = cell
				acc = val
			} else {
				acc = ops.Add(acc, val)
			}
		}
		if curCell >= 0 {
			emit(curCell, acc)
		}
		spanLen[x] = out
	})

	// Stitch: prefix the per-row counts into foldPtr, then copy each
	// span's staged block to its final contiguous position (span rows
	// are contiguous, so one copy per span suffices).
	for i := 0; i < R; i++ {
		foldPtr[i+1] += foldPtr[i]
	}
	total := foldPtr[R]
	foldCol := s.foldCol[:0]
	if cap(foldCol) < total {
		foldCol = make([]int, 0, total+total/2)
	}
	foldCol = foldCol[:total]
	foldVal := s.foldVal[:0]
	if cap(foldVal) < total {
		foldVal = make([]V, 0, total+total/2)
	}
	foldVal = foldVal[:total]
	parallel.ForSpans(bounds, func(x, rLo, rHi int) {
		dst := foldPtr[rLo]
		copy(foldCol[dst:dst+spanLen[x]], tmpCol[spanStart[x]:spanStart[x]+spanLen[x]])
		copy(foldVal[dst:dst+spanLen[x]], tmpVal[spanStart[x]:spanStart[x]+spanLen[x]])
	})
	s.enc = enc
	s.foldCol, s.foldVal = foldCol, foldVal
}

// Snapshot returns an immutable read view of the current state: the
// adjacency array, both incidence arrays, and counters. The arrays
// share storage with the live state, and subsequent appends leave
// everything reachable from the snapshot untouched (copy-on-write), so
// a snapshot costs O(1) — except when appends happened since the last
// read, in which case the pending backlog is folded into the main
// adjacency first (amortized across those appends).
func (v *View[V]) Snapshot() (Snapshot[V], error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.flushLogLocked(); err != nil {
		return Snapshot[V]{}, err
	}
	if err := v.materializeLocked(); err != nil {
		return Snapshot[V]{}, err
	}
	if err := v.embedMainLocked(v.eout.ColKeys(), v.ein.ColKeys()); err != nil {
		return Snapshot[V]{}, err
	}
	v.mainShared = true
	return Snapshot[V]{
		Adjacency: v.main,
		Eout:      v.eout,
		Ein:       v.ein,
		Edges:     v.edges,
		Epoch:     v.epoch,
		Exact:     v.exact,
	}, nil
}

// Snapshot is an immutable view of a View's state at one epoch.
type Snapshot[V any] struct {
	// Adjacency is A = Eoutᵀ ⊕.⊗ Ein as maintained incrementally.
	Adjacency *assoc.Array[V]
	// Eout and Ein are the incidence log at this epoch.
	Eout, Ein *assoc.Array[V]
	// Edges is the number of edges in the log.
	Edges int
	// Epoch counts batches applied since the view was created.
	Epoch int
	// Exact reports whether Adjacency provably equals the one-shot
	// batch construction: true until a merge re-associates the ⊕ fold
	// without the associativity guard, and restored by Compact. (With
	// CheckAssociative set the guard is sampled, not proven — a
	// violation outside the sample can still slip through.)
	Exact bool
}

// Compact rebuilds the adjacency one-shot from the full incidence log —
// the escape hatch for algebras where the delta identity doesn't hold,
// and a periodic re-pack for long-lived views. The rebuilt state is the
// exact sequential Definition I.3 fold.
func (v *View[V]) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.compactLocked()
}

func (v *View[V]) compactLocked() error {
	if err := v.flushLogLocked(); err != nil {
		return err
	}
	v.pendCell = v.pendCell[:0]
	v.pendVal = v.pendVal[:0]
	if v.edges == 0 {
		v.appends = 0
		v.exact = true
		return nil
	}
	adj, err := v.eng.Partial(v.eout, v.ein)
	if err != nil {
		return err
	}
	if !v.mainShared {
		v.mainScr.Recycle(v.main.Matrix())
	}
	v.main = adj
	v.mainShared = false
	v.appends = 0
	v.exact = true
	return nil
}

// Stats summarizes the view without exposing its arrays. Taking stats
// never materializes: AdjNNZ counts the folded main level only, with
// PendingNNZ contribution entries still in the backlog (pre-fold, so
// several entries may later collapse into one stored cell).
type Stats struct {
	Edges       int  // edges in the log
	OutVertices int  // distinct source vertices
	InVertices  int  // distinct destination vertices
	AdjNNZ      int  // stored entries in the materialized main level
	PendingNNZ  int  // contribution entries awaiting the backlog fold
	Appends     int  // batches since the last compact
	Epoch       int  // batches ever applied
	Exact       bool // see Snapshot.Exact
}

// InternerStats reports the footprint of the out-side (source) and
// in-side (destination) key interners. The interner pointers are fixed
// at construction and the interners lock internally, so no view lock is
// taken — safe to poll from a metrics scrape at any ingest rate.
func (v *View[V]) InternerStats() (out, in keys.InternerStats) {
	return v.srcIn.Stats(), v.dstIn.Stats()
}

// Stats returns current counters.
func (v *View[V]) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{
		Edges:       v.edges,
		OutVertices: v.eout.ColKeys().Len(),
		InVertices:  v.ein.ColKeys().Len(),
		AdjNNZ:      v.main.NNZ(),
		PendingNNZ:  len(v.pendVal),
		Appends:     v.appends,
		Epoch:       v.epoch,
		Exact:       v.exact,
	}
}
