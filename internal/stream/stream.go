// Package stream maintains an adjacency array under continuous edge
// ingest — the paper's construction A = Eoutᵀ ⊕.⊗ Ein turned from a
// batch computation into a served, incrementally updated state.
//
// The edge dimension is the reduction dimension of the construction, so
// an appended edge batch K′ contributes exactly one shard-style partial
// product:
//
//	A ⊕= Eout[K′,:]ᵀ ⊕.⊗ Ein[K′,:]
//
// (the delta identity). A View owns a pair of append-only incidence
// arrays — the edge log — plus the current adjacency array, and applies
// each batch through the shared partial-product engine in
// internal/shard instead of rebuilding from scratch.
//
// Soundness hypothesis: folding a delta into already-folded state
// re-associates the per-cell ⊕ fold — ((earlier edges) ⊕ (delta))
// instead of the flat left-to-right fold over all edge keys. Because
// edge keys are required to arrive in ascending order, the fold ORDER
// is preserved and only the grouping changes, so the incremental state
// equals the one-shot construction exactly when ⊕ is associative on the
// data (the same hypothesis internal/shard checks, per the paper's
// companion work on algebraic conditions). For a non-associative ⊕ the
// view still ingests — deterministically — but may diverge from the
// batch result; Compact rebuilds from the full log and recovers it.
// Options.CheckAssociative samples the hypothesis on every append and
// fails fast instead.
//
// Reads are served from Snapshots: immutable views that share CSR
// backing with the live state (copy-on-write — an append never mutates
// storage reachable from a handed-out snapshot), so taking one is O(1)
// and snapshot readers never block ingest.
package stream

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"adjarray/internal/assoc"
	"adjarray/internal/keys"
	"adjarray/internal/semiring"
	"adjarray/internal/shard"
	"adjarray/internal/sparse"
)

// Edge is one ingested edge: key k, source, destination, and the two
// incidence entry values Eout(k,Src) and Ein(k,Dst).
//
// Weight presence is EXPLICIT: Out is used only when HasOut is set (and
// In only when HasIn is set); an unset side selects the algebra's One —
// the unweighted convention of Figure 1. The flags replace an earlier
// Zero-value sentinel ("a value equal to the algebra's Zero selects
// One"), which was wrong for any algebra whose One is not Go's zero
// value — under min.* (One = 1) an omitted weight ingested as the
// number 0.0, and a genuine Zero-valued weight was unrepresentable
// (silently rewritten to One) under every pair. With the flags an
// explicit weight always round-trips, including explicit Zero, whose
// edge then contributes nothing to the adjacency (0 annihilates ⊗ under
// the Theorem II.1 conditions) — the algebraic spelling of "no edge".
type Edge[V any] struct {
	Key, Src, Dst string
	Out, In       V
	// HasOut and HasIn mark Out / In as explicitly provided. The zero
	// value (unset) means "unweighted": the side ingests as ops.One.
	HasOut, HasIn bool
}

// Weighted builds an edge with both incidence values explicitly set —
// the common literal for weighted ingest call sites.
func Weighted[V any](key, src, dst string, out, in V) Edge[V] {
	return Edge[V]{Key: key, Src: src, Dst: dst, Out: out, In: in, HasOut: true, HasIn: true}
}

// Options tunes a View.
type Options struct {
	// Mul tunes the per-batch partial products and Compact rebuilds.
	Mul assoc.MulOptions
	// CompactEvery, when > 0, triggers an automatic Compact after that
	// many appends — bounding drift for non-associative ⊕ and re-packing
	// storage. 0 disables auto-compaction.
	CompactEvery int
	// CheckAssociative, when set, samples the delta-identity hypotheses
	// (⊕ associative, Zero a ⊕-identity) over each batch's values before
	// accepting it and fails the Append if the re-associated fold could
	// diverge (the shard.Engine guard).
	CheckAssociative bool
	// PendingBudget bounds the delta backlog: once this many pending
	// contribution entries accumulate they are folded into the main
	// adjacency. <= 0 selects max(4096, nnz(main)/4). Smaller budgets
	// fold more eagerly (cheaper snapshots, costlier appends).
	PendingBudget int
}

// View is a maintained adjacency array: an append-only incidence log
// and the current A = Eoutᵀ ⊕.⊗ Ein, updated per batch by the delta
// identity. All methods are safe for concurrent use; reads should go
// through Snapshot, which never blocks on ingest more than the O(1)
// bookkeeping under the lock (plus a pending fold when appends happened
// since the last read).
//
// The adjacency is held in two levels, LSM-style: `main`, the
// materialized array snapshots share, and a pending delta backlog —
// each appended edge's contribution out⊗in recorded as an integer cell
// coordinate plus value, in arrival order. An append therefore costs
// O(batch) — not O(nnz(main)) — and the backlog is folded into main (one
// sort + one ⊕-merge) only when it outgrows Options.PendingBudget or a
// snapshot needs the materialized state. Level order is fold order:
// main holds the earlier edge keys, so a fold re-associates but never
// reorders contributions.
//
// The hot Append path is allocation-lean by construction: batch
// vertices resolve against the log's cached reverse indexes to integer
// positions, the log grows by single-entry CSR rows in place, and the
// pending backlog is two flat slices. A batch that introduces vertices
// unseen by the log takes the general array route instead (build delta
// incidence arrays, engine partial product, ⊕-merge) — rare once a
// workload's vertex universe saturates.
type View[V any] struct {
	mu  sync.Mutex
	eng shard.Engine[V]
	opt Options

	eout, ein *assoc.Array[V] // append-only incidence log

	main       *assoc.Array[V] // materialized adjacency (snapshots share it); always spans the log's vertex universe
	pendCell   []int64         // pending contribution cells, row*C+col in universe coords, arrival order
	pendVal    []V             // pending contribution values, parallel to pendCell
	mainShared bool            // a Snapshot holds main's storage
	mainScr    sparse.MergeScratch[V]

	edges    int // rows in the log
	appends  int // batches since the last compact
	epoch    int // total batches ever applied
	exact    bool
	autoSeq  int    // generator for auto-assigned edge keys
	autoBase string // prefix for auto keys; seeded past the log's last key

	// lastSrc/lastDst are the column sets of the most recent fast
	// append — the signal that the universe has stabilized and the
	// sets' cached reverse indexes are worth building. While nil (after
	// a slow append grew the universe) resolution binary-searches
	// instead, so cold ingest never pays an O(universe) map build per
	// batch.
	lastSrc, lastDst *keys.Set

	scr batchScratch[V] // per-append buffers, reused under mu
}

// batchScratch holds the fast path's per-append buffers. Append runs
// under the view lock, so one set per view suffices; in steady state the
// ingest path stops allocating.
type batchScratch[V any] struct {
	rowKeys    []string
	srcs, dsts []string
	outs, ins  []V
	srcID      []int
	dstID      []int
	enc        []int64 // materialize: (cell, seq) encoding
	foldPtr    []int   // materialize: fold CSR row pointer
	foldCol    []int
	foldVal    []V
}

// NewView creates an empty view for the given operator pair.
func NewView[V any](ops semiring.Ops[V], opt Options) *View[V] {
	// Each log line gets its own empty array: reuse-append chains grow
	// their receiver's backing, so eout and ein must never share one.
	return &View[V]{
		eng:   shard.Engine[V]{Ops: ops, Mul: opt.Mul},
		opt:   opt,
		eout:  assoc.FromTriples[V](nil, nil),
		ein:   assoc.FromTriples[V](nil, nil),
		main:  assoc.FromTriples[V](nil, nil),
		exact: true,
	}
}

// FromIncidence bootstraps a view from an existing batch-built pair of
// incidence arrays: the initial adjacency is constructed one-shot (the
// exact sequential fold), and subsequent Appends apply deltas on top.
func FromIncidence[V any](eout, ein *assoc.Array[V], ops semiring.Ops[V], opt Options) (*View[V], error) {
	if !eout.RowKeys().Equal(ein.RowKeys()) {
		return nil, fmt.Errorf("stream: incidence arrays disagree on edge keys")
	}
	v := NewView(ops, opt)
	if eout.RowKeys().Len() == 0 {
		return v, nil
	}
	adj, err := v.eng.Partial(eout, ein)
	if err != nil {
		return nil, err
	}
	v.eout, v.ein, v.main = eout, ein, adj
	v.edges = eout.RowKeys().Len()
	return v, nil
}

// Append ingests one edge batch. Edge keys must be strictly increasing
// within the batch and sort after every key already in the log (the
// append-only discipline that keeps fold order equal to arrival order);
// an empty Key is auto-assigned from a monotone sequence — don't mix
// auto-assigned and explicit keys. Duplicate keys are rejected.
func (v *View[V]) Append(edges []Edge[V]) error {
	if len(edges) == 0 {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ops := v.eng.Ops
	s := &v.scr
	s.rowKeys = s.rowKeys[:0]
	s.srcs, s.dsts = s.srcs[:0], s.dsts[:0]
	s.outs, s.ins = s.outs[:0], s.ins[:0]
	prev := ""
	for i, e := range edges {
		key := e.Key
		if key == "" {
			if v.autoBase == "" {
				// Seed the generator past whatever is already in the
				// log (e.g. a FromIncidence bootstrap with explicit
				// keys), so auto keys keep the ascending discipline.
				if lk := v.eout.RowKeys(); lk.Len() > 0 {
					v.autoBase = lk.Key(lk.Len()-1) + "+"
				} else {
					v.autoBase = "e"
				}
			}
			key = fmt.Sprintf("%s%012d", v.autoBase, v.autoSeq+i)
		}
		if i > 0 && key <= prev {
			return fmt.Errorf("stream: batch edge keys not strictly increasing at %d: %q <= %q", i, key, prev)
		}
		prev = key
		ov, iv := e.Out, e.In
		if !e.HasOut {
			ov = ops.One
		}
		if !e.HasIn {
			iv = ops.One
		}
		s.rowKeys = append(s.rowKeys, key)
		s.srcs = append(s.srcs, e.Src)
		s.dsts = append(s.dsts, e.Dst)
		s.outs = append(s.outs, ov)
		s.ins = append(s.ins, iv)
	}
	if err := v.appendResolvedLocked(); err != nil {
		return err
	}
	v.autoSeq += len(edges)
	return nil
}

// appendResolvedLocked applies the batch staged in v.scr: the fused fast
// path when every batch vertex already exists in the log's column sets,
// the general array route otherwise.
func (v *View[V]) appendResolvedLocked() error {
	s := &v.scr
	srcSet, dstSet := v.eout.ColKeys(), v.ein.ColKeys()
	n := len(s.rowKeys)
	resolved := true
	s.srcID = s.srcID[:0]
	s.dstID = s.dstID[:0]
	if srcSet == v.lastSrc && dstSet == v.lastDst {
		// Universe stable since the last fast append: the sets' cached
		// reverse indexes amortize, so resolve through them.
		for i := 0; i < n && resolved; i++ {
			si, okS := srcSet.Index(s.srcs[i])
			di, okD := dstSet.Index(s.dsts[i])
			if !okS || !okD {
				resolved = false
				break
			}
			s.srcID = append(s.srcID, si)
			s.dstID = append(s.dstID, di)
		}
	} else {
		// Universe changed recently: binary-search instead — slower per
		// lookup, but never forces the O(universe) map build that would
		// otherwise recur on every batch while the universe still grows.
		for i := 0; i < n && resolved; i++ {
			si, okS := srcSet.IndexSorted(s.srcs[i])
			di, okD := dstSet.IndexSorted(s.dsts[i])
			if !okS || !okD {
				resolved = false
				break
			}
			s.srcID = append(s.srcID, si)
			s.dstID = append(s.dstID, di)
		}
	}
	C := int64(dstSet.Len())
	if resolved && (C == 0 || int64(srcSet.Len()) <= math.MaxInt64/C) {
		return v.appendFastLocked()
	}
	return v.appendSlowLocked()
}

// appendSlowLocked handles a staged batch that introduces vertices
// unseen by the log: the column universes grow by merge-sweep union
// (GrowCols — no hashing, and the growth maps come back for free), the
// pending backlog's integer coordinates are rebased into the grown
// universe — O(backlog), no fold — and the batch's contributions queue
// raw exactly like the fast path's. Cold ingest from an empty view
// therefore stays amortized even though nearly every early batch lands
// here.
func (v *View[V]) appendSlowLocked() error {
	s := &v.scr
	n := len(s.rowKeys)
	// Validate the cross-batch key discipline up front: everything past
	// this point mutates view state that is awkward to unwind.
	if last := v.eout.RowKeys(); last.Len() > 0 && s.rowKeys[0] <= last.Key(last.Len()-1) {
		return fmt.Errorf("stream: batch key %q does not sort after the log's last key %q", s.rowKeys[0], last.Key(last.Len()-1))
	}
	if v.opt.CheckAssociative {
		if err := v.checkBatchAssociativeLocked(); err != nil {
			return err
		}
	}
	srcSet, si := argsortUnique(s.srcs)
	dstSet, di := argsortUnique(s.dsts)
	eoutG, oldSrcPos, bSrcPos, err := v.eout.GrowCols(srcSet)
	if err != nil {
		return err
	}
	einG, oldDstPos, bDstPos, err := v.ein.GrowCols(dstSet)
	if err != nil {
		return err
	}
	newC := int64(einG.ColKeys().Len())
	if newC > 0 && int64(eoutG.ColKeys().Len()) > math.MaxInt64/newC {
		// Cell coordinates no longer pack into an int64: fall back to
		// the array route (flush + direct merge), which never packs.
		// Nothing observable has been mutated yet.
		dout, din, err := buildDelta(s.rowKeys, s.srcs, s.dsts, s.outs, s.ins)
		if err != nil {
			return err
		}
		return v.appendArraysLocked(dout, din, nil)
	}
	oldC := int64(v.ein.ColKeys().Len())
	// Per-edge positions in the grown universes, via the batch-set maps.
	s.srcID, s.dstID = s.srcID[:0], s.dstID[:0]
	for i := 0; i < n; i++ {
		gs, gd := si[i], di[i]
		if bSrcPos != nil {
			gs = bSrcPos[gs]
		}
		if bDstPos != nil {
			gd = bDstPos[gd]
		}
		s.srcID = append(s.srcID, gs)
		s.dstID = append(s.dstID, gd)
	}
	eout, ein, err := assoc.AppendIncidencePair(eoutG, einG, s.rowKeys, s.srcID, s.dstID, s.outs, s.ins)
	if err != nil {
		return err
	}
	// Rebase the backlog into the grown universe — only past this point
	// is the batch committed, so a failed append leaves coordinates
	// consistent with the (unchanged) view.
	if len(v.pendCell) > 0 && (oldSrcPos != nil || oldDstPos != nil || oldC != newC) {
		for i, cell := range v.pendCell {
			r, c := cell/oldC, cell%oldC
			if oldSrcPos != nil {
				r = int64(oldSrcPos[r])
			}
			if oldDstPos != nil {
				c = int64(oldDstPos[c])
			}
			v.pendCell[i] = r*newC + c
		}
	}
	v.lastSrc, v.lastDst = nil, nil
	v.eout, v.ein = eout, ein
	return v.commitBatchLocked(newC)
}

// appendFastLocked is the steady-state ingest path: all batch vertices
// resolved to positions in the (unchanged) universe, so the log grows by
// unit rows and the batch's contributions queue as raw (cell, value)
// pairs — no delta arrays, no per-batch product, no key-set work.
func (v *View[V]) appendFastLocked() error {
	s := &v.scr

	if v.opt.CheckAssociative {
		if err := v.checkBatchAssociativeLocked(); err != nil {
			return err
		}
	}
	eout, ein, err := assoc.AppendIncidencePair(v.eout, v.ein, s.rowKeys, s.srcID, s.dstID, s.outs, s.ins)
	if err != nil {
		return err
	}
	C := int64(v.ein.ColKeys().Len())
	v.lastSrc, v.lastDst = v.eout.ColKeys(), v.ein.ColKeys()
	v.eout, v.ein = eout, ein
	return v.commitBatchLocked(C)
}

// commitBatchLocked is the shared tail of both append paths: it queues
// the staged batch's contributions as (cell, value) pairs against the
// committed universe (stride C), bumps the counters, and applies the
// budget/compaction policies. The caller must already have grown the
// log and assigned v.eout/v.ein.
func (v *View[V]) commitBatchLocked(C int64) error {
	s := &v.scr
	ops := v.eng.Ops
	for i := range s.srcID {
		v.pendCell = append(v.pendCell, int64(s.srcID[i])*C+int64(s.dstID[i]))
		v.pendVal = append(v.pendVal, ops.Mul(s.outs[i], s.ins[i]))
	}
	v.edges += len(s.rowKeys)
	v.appends++
	v.epoch++
	if len(v.pendVal) >= v.pendingBudget() {
		if err := v.materializeLocked(); err != nil {
			return err
		}
	}
	if v.opt.CompactEvery > 0 && v.appends >= v.opt.CompactEvery {
		return v.compactLocked()
	}
	return nil
}

// checkBatchAssociativeLocked samples the associativity guard over the
// staged batch's values and their ⊗-products — the values the deferred
// fold will actually combine.
func (v *View[V]) checkBatchAssociativeLocked() error {
	s := &v.scr
	ops := v.eng.Ops
	sample := make([]V, 0, 12)
	for i := range s.outs {
		if len(sample) >= 12 {
			break
		}
		sample = append(sample, s.outs[i])
		if len(sample) < 12 {
			sample = append(sample, s.ins[i])
		}
		if len(sample) < 12 {
			sample = append(sample, ops.Mul(s.outs[i], s.ins[i]))
		}
	}
	if err := v.eng.CheckAssociativeValues(sample); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// buildDelta constructs a batch's delta incidence arrays in one
// map-free pass. Because an incidence row holds exactly one entry per
// side (Definition I.4), each side is a unit-diagonal-shaped CSR whose
// column indices come from one argsort of the batch's vertex keys; no
// hash maps are built.
//
// The returned arrays retain the callers' slices (rowKeys, outs, ins)
// — the view passes its per-append scratch here, so they must not
// outlive the append that built them. The log append copies everything
// it keeps.
func buildDelta[V any](rowKeys, srcs, dsts []string, outs, ins []V) (dout, din *assoc.Array[V], err error) {
	n := len(rowKeys)
	rows, err := keys.FromSorted(rowKeys)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: batch keys: %w", err)
	}
	srcSet, si := argsortUnique(srcs)
	dstSet, di := argsortUnique(dsts)
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
	}
	outM, err := sparse.NewCSR(n, srcSet.Len(), rowPtr, si, outs)
	if err != nil {
		return nil, nil, err
	}
	inM, err := sparse.NewCSR(n, dstSet.Len(), append([]int(nil), rowPtr...), di, ins)
	if err != nil {
		return nil, nil, err
	}
	dout, err = assoc.New(rows, srcSet, outM)
	if err != nil {
		return nil, nil, err
	}
	din, err = assoc.New(rows, dstSet, inM)
	if err != nil {
		return nil, nil, err
	}
	return dout, din, nil
}

// argsortUnique returns the sorted unique key Set of ks plus each
// element's position in it — one argsort instead of a set sort followed
// by per-element binary searches.
func argsortUnique(ks []string) (*keys.Set, []int) {
	idx := make([]int, len(ks))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return strings.Compare(ks[a], ks[b]) })
	uniq := make([]string, 0, len(ks))
	pos := make([]int, len(ks))
	for _, e := range idx {
		if len(uniq) == 0 || uniq[len(uniq)-1] != ks[e] {
			uniq = append(uniq, ks[e])
		}
		pos[e] = len(uniq) - 1
	}
	set, err := keys.FromSorted(uniq)
	if err != nil {
		panic("stream: argsortUnique produced unsorted keys: " + err.Error())
	}
	return set, pos
}

// AppendArrays ingests one batch given directly as a pair of delta
// incidence arrays sharing their edge-key row set — the entry point for
// ingest pipelines that already build arrays (internal/core's
// accumulator, replayed batch files). The same key discipline as Append
// applies.
func (v *View[V]) AppendArrays(dout, din *assoc.Array[V]) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.appendArraysLocked(dout, din, nil)
}

// appendArraysLocked applies one delta batch on the general array route:
// the batch's partial product (computed through the shared shard engine
// when not supplied) is ⊕-merged into the main adjacency directly. This
// is the only path that can grow the vertex universe, so the pending
// backlog — encoded in the old universe's coordinates — is folded first.
func (v *View[V]) appendArraysLocked(dout, din, partial *assoc.Array[V]) error {
	if !dout.RowKeys().Equal(din.RowKeys()) {
		return fmt.Errorf("stream: delta incidence arrays disagree on edge keys")
	}
	if dout.RowKeys().Len() == 0 {
		return nil
	}
	if partial == nil {
		var err error
		partial, err = v.eng.Partial(dout, din)
		if err != nil {
			return err
		}
	}
	if v.opt.CheckAssociative {
		if err := v.eng.CheckAssociative(dout, din, partial); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	}
	// Fold the backlog under the universe its coordinates refer to,
	// before the log append below can grow it.
	if err := v.materializeLocked(); err != nil {
		return err
	}
	// Grow the log next: AppendRows validates the key discipline, and
	// failing before the merge keeps log and adjacency consistent.
	eout, err := v.eout.AppendRows(dout, true)
	if err != nil {
		return err
	}
	ein, err := v.ein.AppendRows(din, true)
	if err != nil {
		return err
	}
	v.eout, v.ein = eout, ein
	uRows, uCols := eout.ColKeys(), ein.ColKeys()
	pe, err := partial.EmbedInto(uRows, uCols)
	if err != nil {
		return err
	}
	if err := v.embedMainLocked(uRows, uCols); err != nil {
		return err
	}
	if v.main.NNZ() > 0 && partial.NNZ() > 0 && !v.opt.CheckAssociative {
		// The merge groups this batch's folded contribution against
		// already-folded state under unverified ⊕.
		v.exact = false
	}
	main, err := v.eng.MergeScratch(v.main, pe, !v.mainShared, &v.mainScr)
	if err != nil {
		return err
	}
	if main != v.main {
		v.mainShared = false
	}
	v.main = main
	v.edges += dout.RowKeys().Len()
	v.appends++
	v.epoch++
	if v.opt.CompactEvery > 0 && v.appends >= v.opt.CompactEvery {
		return v.compactLocked()
	}
	return nil
}

func (v *View[V]) pendingBudget() int {
	if v.opt.PendingBudget > 0 {
		return v.opt.PendingBudget
	}
	b := v.main.NNZ() / 4
	if b < 4096 {
		b = 4096
	}
	return b
}

// embedMainLocked grows main's key sets to the universe. EmbedInto
// shares main's storage (no value copy), so mainShared must stay as it
// is.
func (v *View[V]) embedMainLocked(uRows, uCols *keys.Set) error {
	if v.main.RowKeys().Equal(uRows) && v.main.ColKeys().Equal(uCols) {
		return nil
	}
	main, err := v.main.EmbedInto(uRows, uCols)
	if err != nil {
		return err
	}
	v.main = main
	return nil
}

// materializeLocked folds the pending backlog into the main adjacency:
// one integer sort groups the contributions by cell while preserving
// arrival order within each cell, a single pass ⊕-folds each cell's run
// (pruning folds equal to the algebra's zero, the kernels' contract),
// and the resulting delta array ⊕-merges into main with main's entries
// on the left. Level order is edge-key order, so only the fold's
// GROUPING changes, never its order — and the grouping changes only at
// this main-vs-backlog boundary, which is where a non-associative ⊕ can
// diverge (flagged via Exact unless the guard is on).
func (v *View[V]) materializeLocked() error {
	n := len(v.pendVal)
	if n == 0 {
		return nil
	}
	s := &v.scr
	ops := v.eng.Ops
	uRows, uCols := v.eout.ColKeys(), v.ein.ColKeys()
	R, C := uRows.Len(), uCols.Len()
	maxCell := int64(R)*int64(C) - 1
	// Strict: cell*n + i with i < n must not wrap for cell = maxCell.
	packed := maxCell < math.MaxInt64/int64(n)
	s.enc = s.enc[:0]
	if cap(s.enc) < n {
		s.enc = make([]int64, 0, 2*n)
	}
	if packed {
		// (cell, seq) packed into one int64: sorting groups cells and
		// keeps arrival order within each cell.
		for i, cell := range v.pendCell {
			s.enc = append(s.enc, cell*int64(n)+int64(i))
		}
		slices.Sort(s.enc)
	} else {
		// Coordinate space too large to pack: stable argsort by cell
		// preserves arrival order without encoding.
		for i := range v.pendCell {
			s.enc = append(s.enc, int64(i))
		}
		slices.SortStableFunc(s.enc, func(a, b int64) int {
			ca, cb := v.pendCell[a], v.pendCell[b]
			switch {
			case ca < cb:
				return -1
			case ca > cb:
				return 1
			}
			return 0
		})
	}
	if cap(s.foldPtr) < R+1 {
		s.foldPtr = make([]int, R+1)
	}
	foldPtr := s.foldPtr[:R+1]
	foldCol := s.foldCol[:0]
	foldVal := s.foldVal[:0]
	fillRow := 0
	emit := func(cell int64, acc V) {
		if ops.IsZero(acc) {
			return
		}
		r := int(cell / int64(C))
		for fillRow < r {
			foldPtr[fillRow+1] = len(foldCol)
			fillRow++
		}
		foldCol = append(foldCol, int(cell%int64(C)))
		foldVal = append(foldVal, acc)
	}
	foldPtr[0] = 0
	var acc V
	curCell := int64(-1)
	for _, e := range s.enc {
		var cell int64
		var i int
		if packed {
			cell = e / int64(n)
			i = int(e % int64(n))
		} else {
			i = int(e)
			cell = v.pendCell[i]
		}
		val := v.pendVal[i]
		if cell != curCell {
			if curCell >= 0 {
				emit(curCell, acc)
			}
			curCell = cell
			acc = val
		} else {
			acc = ops.Add(acc, val)
		}
	}
	if curCell >= 0 {
		emit(curCell, acc)
	}
	for fillRow < R {
		foldPtr[fillRow+1] = len(foldCol)
		fillRow++
	}
	s.foldCol, s.foldVal = foldCol, foldVal
	v.pendCell = v.pendCell[:0]
	v.pendVal = v.pendVal[:0]
	if len(foldCol) == 0 {
		// Every fold pruned to the algebra's zero — nothing to merge.
		return nil
	}
	// The fold array only feeds the merge below — EWiseAddInto never
	// returns or retains its src backing — so handing it the scratch
	// slices directly is safe; the next materialize reuses them.
	fm, err := sparse.NewCSR(R, C, foldPtr, foldCol, foldVal)
	if err != nil {
		return err
	}
	fold, err := assoc.New(uRows, uCols, fm)
	if err != nil {
		return err
	}
	if err := v.embedMainLocked(uRows, uCols); err != nil {
		return err
	}
	if v.main.NNZ() > 0 && !v.opt.CheckAssociative {
		// The merge below groups the backlog's folded contributions
		// against already-folded state under unverified ⊕.
		v.exact = false
	}
	main, err := v.eng.MergeScratch(v.main, fold, !v.mainShared, &v.mainScr)
	if err != nil {
		return err
	}
	if main != v.main {
		v.mainShared = false
	}
	v.main = main
	return nil
}

// Snapshot returns an immutable read view of the current state: the
// adjacency array, both incidence arrays, and counters. The arrays
// share storage with the live state, and subsequent appends leave
// everything reachable from the snapshot untouched (copy-on-write), so
// a snapshot costs O(1) — except when appends happened since the last
// read, in which case the pending backlog is folded into the main
// adjacency first (amortized across those appends).
func (v *View[V]) Snapshot() (Snapshot[V], error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.materializeLocked(); err != nil {
		return Snapshot[V]{}, err
	}
	if err := v.embedMainLocked(v.eout.ColKeys(), v.ein.ColKeys()); err != nil {
		return Snapshot[V]{}, err
	}
	v.mainShared = true
	return Snapshot[V]{
		Adjacency: v.main,
		Eout:      v.eout,
		Ein:       v.ein,
		Edges:     v.edges,
		Epoch:     v.epoch,
		Exact:     v.exact,
	}, nil
}

// Snapshot is an immutable view of a View's state at one epoch.
type Snapshot[V any] struct {
	// Adjacency is A = Eoutᵀ ⊕.⊗ Ein as maintained incrementally.
	Adjacency *assoc.Array[V]
	// Eout and Ein are the incidence log at this epoch.
	Eout, Ein *assoc.Array[V]
	// Edges is the number of edges in the log.
	Edges int
	// Epoch counts batches applied since the view was created.
	Epoch int
	// Exact reports whether Adjacency provably equals the one-shot
	// batch construction: true until a merge re-associates the ⊕ fold
	// without the associativity guard, and restored by Compact. (With
	// CheckAssociative set the guard is sampled, not proven — a
	// violation outside the sample can still slip through.)
	Exact bool
}

// Compact rebuilds the adjacency one-shot from the full incidence log —
// the escape hatch for algebras where the delta identity doesn't hold,
// and a periodic re-pack for long-lived views. The rebuilt state is the
// exact sequential Definition I.3 fold.
func (v *View[V]) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.compactLocked()
}

func (v *View[V]) compactLocked() error {
	v.pendCell = v.pendCell[:0]
	v.pendVal = v.pendVal[:0]
	if v.edges == 0 {
		v.appends = 0
		v.exact = true
		return nil
	}
	adj, err := v.eng.Partial(v.eout, v.ein)
	if err != nil {
		return err
	}
	if !v.mainShared {
		v.mainScr.Recycle(v.main.Matrix())
	}
	v.main = adj
	v.mainShared = false
	v.appends = 0
	v.exact = true
	return nil
}

// Stats summarizes the view without exposing its arrays. Taking stats
// never materializes: AdjNNZ counts the folded main level only, with
// PendingNNZ contribution entries still in the backlog (pre-fold, so
// several entries may later collapse into one stored cell).
type Stats struct {
	Edges       int  // edges in the log
	OutVertices int  // distinct source vertices
	InVertices  int  // distinct destination vertices
	AdjNNZ      int  // stored entries in the materialized main level
	PendingNNZ  int  // contribution entries awaiting the backlog fold
	Appends     int  // batches since the last compact
	Epoch       int  // batches ever applied
	Exact       bool // see Snapshot.Exact
}

// Stats returns current counters.
func (v *View[V]) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{
		Edges:       v.edges,
		OutVertices: v.eout.ColKeys().Len(),
		InVertices:  v.ein.ColKeys().Len(),
		AdjNNZ:      v.main.NNZ(),
		PendingNNZ:  len(v.pendVal),
		Appends:     v.appends,
		Epoch:       v.epoch,
		Exact:       v.exact,
	}
}
