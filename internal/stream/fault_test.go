package stream

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"adjarray/internal/iofault"
	"adjarray/internal/wal"
)

// TestDurableFsyncFailureReadOnly is the stream-level fsyncgate
// regression: one injected fsync fault must flip the store to
// read-only, freeze the durable boundary at the last successful fsync,
// refuse all further appends with ErrReadOnly, and lose no
// acked-durable batch across reopen.
func TestDurableFsyncFailureReadOnly(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(31, 6, 5)
	inj := iofault.New()

	d, err := Open(dir, ops, DurableOptions[float64]{FS: iofault.Wrap(iofault.OS, inj)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := d.Append(batches[0]); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if h := d.StorageHealth(); h.State != StorageOK || h.Faults != 0 {
		t.Fatalf("healthy store reports %+v", h)
	}

	inj.Arm(iofault.Rule{Op: iofault.OpSync, Path: "wal-", Kind: iofault.EIO, Count: 1})
	err = d.Append(batches[1])
	if err == nil {
		t.Fatal("append over failed fsync must error")
	}
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, wal.ErrWedged) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want ErrReadOnly wrapping the wedged EIO, got %v", err)
	}
	if st := d.Durability(); st.DurableEpoch != 1 {
		t.Fatalf("failed fsync advanced DurableEpoch to %d; must stay 1", st.DurableEpoch)
	}
	if h := d.StorageHealth(); h.State != StorageReadOnly || h.Faults == 0 || h.Err == "" {
		t.Fatalf("after fsync failure health = %+v, want read-only with faults", h)
	}

	// The fault budget is spent — the disk is healthy again — but the
	// store stays read-only until reopen, and reads keep working.
	if err := d.Append(batches[2]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append after wedge: want ErrReadOnly, got %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("sync after wedge: want ErrReadOnly, got %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("checkpoint after wedge: want ErrReadOnly, got %v", err)
	}
	if st := d.Durability(); st.DurableEpoch != 1 || st.Storage.State != StorageReadOnly {
		t.Fatalf("post-wedge durability = %+v", st)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatalf("reads must keep serving in read-only state: %v", err)
	}
	// Batch 2 applied to the view before its WAL record's fsync failed,
	// so the in-memory epoch is 2; the durable boundary is 1.
	if snap.Epoch != 2 {
		t.Fatalf("snapshot epoch %d, want 2 (view-first append)", snap.Epoch)
	}

	inj.Clear()
	d.Abort() // the process dies; the fault condition has cleared

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen after fault cleared: %v", err)
	}
	defer d2.Close()
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The acked batch must survive; batch 2's record hit the file
	// before its failed fsync, so recovery may deliver it too —
	// recovering MORE than acked is fine, losing acked data is not.
	if got.Epoch < 1 {
		t.Fatalf("recovered epoch %d, lost the acked batch", got.Epoch)
	}
	snapEqual(t, got, controlView(t, batches, got.Epoch, ops), "recovered prefix")
}

// TestDurableCheckpointDegradedNotWedged: checkpoint failures must
// leave the store degraded — appends still durable through the WAL —
// and clear on the next successful checkpoint. A transient fault
// within the retry budget never even degrades.
func TestDurableCheckpointDegradedNotWedged(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(32, 8, 4)
	inj := iofault.New()

	d, err := Open(dir, ops, DurableOptions[float64]{
		FS:                iofault.Wrap(iofault.OS, inj),
		CheckpointRetries: 2,
		CheckpointBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	for _, b := range batches[:3] {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}

	// One transient fault, retry budget 2: the checkpoint succeeds on
	// the second attempt and the store never leaves ok.
	inj.Arm(iofault.Rule{Op: iofault.OpWrite, Path: ".tmp", Kind: iofault.ENOSPC, Count: 1})
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with one transient fault must retry and pass: %v", err)
	}
	if h := d.StorageHealth(); h.State != StorageOK || h.Faults != 1 {
		t.Fatalf("after retried checkpoint health = %+v, want ok with 1 fault", h)
	}

	// A persistent fault exhausts the budget: degraded, not read-only.
	inj.Arm(iofault.Rule{Op: iofault.OpWrite, Path: ".tmp", Kind: iofault.ENOSPC})
	if err := d.Append(batches[3]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("exhausted checkpoint retries: want ENOSPC, got %v", err)
	}
	if h := d.StorageHealth(); h.State != StorageDegraded || h.Err == "" {
		t.Fatalf("after failed checkpoint health = %+v, want degraded", h)
	}
	if n := countTmp(t, dir); n != 0 {
		t.Fatalf("failed checkpoint attempts left %d temp files", n)
	}

	// Appends keep working and stay durable while degraded.
	if err := d.Append(batches[4]); err != nil {
		t.Fatalf("degraded store must keep accepting appends: %v", err)
	}
	if st := d.Durability(); st.DurableEpoch != 5 {
		t.Fatalf("degraded durability = %+v, want DurableEpoch 5 via WAL", st)
	}

	// The condition clears; the next checkpoint succeeds and the state
	// machine returns to ok.
	inj.Clear()
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after faults cleared: %v", err)
	}
	if h := d.StorageHealth(); h.State != StorageOK {
		t.Fatalf("health after recovery = %+v, want ok", h)
	}
	if st := d.Durability(); st.CheckpointSeq != 5 {
		t.Fatalf("recovered checkpoint covers %d, want 5", st.CheckpointSeq)
	}
}

// TestDurableOpenReapsTempCheckpoints: orphaned ckpt-*.tmp files (a
// writer that died mid-publish, or whose cleanup Remove faulted) are
// reaped on open and counted in RecoveryInfo.
func TestDurableOpenReapsTempCheckpoints(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	batches := durableBatches(33, 3, 4)

	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ckpt-12345.tmp", "ckpt-orphan.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen over orphaned temps: %v", err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.ReapedTempFiles != 2 {
		t.Fatalf("recovery reaped %d temp files, want 2 (%+v)", rec.ReapedTempFiles, rec)
	}
	if n := countTmp(t, dir); n != 0 {
		t.Fatalf("%d temp files survived open", n)
	}
	got, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, batches, 3, ops), "recovery after reap")
}

// TestShardedDegradedSiblingIsolation faults one shard's directory
// while its siblings stay healthy: ingest routed to the sick shard
// sheds with ErrReadOnly, healthy shards keep accepting, reads gather
// every shard's last good epoch, and recovery after the fault clears
// is bit-identical to the acked history.
func TestShardedDegradedSiblingIsolation(t *testing.T) {
	ops := plusTimes(t)
	dir := t.TempDir()
	const shards = 3
	const sick = 1
	inj := iofault.New()

	sv, err := OpenSharded(dir, ops, ShardedOptions{Shards: shards},
		DurableOptions[float64]{FS: iofault.Wrap(iofault.OS, inj)})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}

	// Craft per-shard sub-batches with explicit ascending keys so a
	// control view can replay the exact acked history.
	srcFor := func(shard, n int) []string {
		var out []string
		for i := 0; len(out) < n; i++ {
			s := fmt.Sprintf("node%04d", i)
			if sv.ShardFor(s) == shard {
				out = append(out, s)
			}
		}
		return out
	}
	key := 0
	mkBatch := func(shard, n int) []Edge[float64] {
		srcs := srcFor(shard, n)
		edges := make([]Edge[float64], n)
		for i := range edges {
			edges[i] = Weighted(fmtKey(key), srcs[i], fmt.Sprintf("dst%02d", key%7), float64(key%5)+1, float64(key%3)+1)
			key++
		}
		return edges
	}
	var acked [][]Edge[float64]
	appendAcked := func(b []Edge[float64]) {
		t.Helper()
		if err := sv.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		acked = append(acked, b)
	}

	for s := 0; s < shards; s++ {
		appendAcked(mkBatch(s, 4))
	}

	// The sick shard's directory goes bad: every write to it fails
	// with ENOSPC. Siblings are untouched.
	inj.Arm(iofault.Rule{Op: iofault.OpWrite, Path: fmt.Sprintf("shard-%03d", sick), Kind: iofault.ENOSPC})

	err = sv.Append(mkBatch(sick, 3))
	if err == nil {
		t.Fatal("ingest to the sick shard must shed")
	}
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sick-shard append: want ErrReadOnly wrapping ENOSPC, got %v", err)
	}
	beforeEpochs := sv.Stats().Epochs

	// Healthy siblings keep accepting their rows.
	appendAcked(mkBatch(0, 3))
	appendAcked(mkBatch(2, 2))
	if err := sv.Append(mkBatch(sick, 2)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("sick shard must keep shedding, got %v", err)
	}

	agg, per := sv.StorageHealth()
	if agg.State != StorageReadOnly || agg.Faults == 0 {
		t.Fatalf("aggregate health = %+v, want read-only (worst shard)", agg)
	}
	if per[sick].State != StorageReadOnly {
		t.Fatalf("sick shard health = %+v, want read-only", per[sick])
	}
	for s := 0; s < shards; s++ {
		if s != sick && per[s].State != StorageOK {
			t.Fatalf("healthy shard %d reports %+v", s, per[s])
		}
	}

	// Reads still gather ALL shards at their last good epochs.
	snap, err := sv.Snapshot()
	if err != nil {
		t.Fatalf("scatter-gather read while one shard is sick: %v", err)
	}
	if snap.Epochs[sick] != beforeEpochs[sick] {
		t.Fatalf("sick shard pinned epoch %d, want its last good %d", snap.Epochs[sick], beforeEpochs[sick])
	}
	if _, err := snap.Adjacency(); err != nil {
		t.Fatalf("merged adjacency while sick: %v", err)
	}

	// The fault clears, the process restarts: recovery must be
	// bit-identical to the acked history (the sick shard's refused
	// batches never reached its log, so acked == recovered exactly).
	inj.Clear()
	sv.Abort()
	rv, err := OpenSharded(dir, ops, ShardedOptions{Shards: shards}, DurableOptions[float64]{})
	if err != nil {
		t.Fatalf("reopen after fault cleared: %v", err)
	}
	defer rv.Close()

	control := NewShardedView(ops, ShardedOptions{Shards: shards})
	for _, b := range acked {
		if err := control.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	gotSnap, err := rv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := control.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := gotSnap.Merged()
	if err != nil {
		t.Fatal(err)
	}
	want, err := wantSnap.Merged()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, want, "sharded recovery after sick shard cleared")
	if aggR, _ := rv.StorageHealth(); aggR.State != StorageOK {
		t.Fatalf("recovered store health = %+v, want ok", aggR)
	}
}

func countTmp(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}
