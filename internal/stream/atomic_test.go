package stream

import (
	"errors"
	"testing"

	"adjarray/internal/wal"
)

// The atomicity contract: a batch that fails mid-append leaves the view
// bit-identical to the state before the call, and the SAME batch (or
// any other valid one) still appends cleanly afterwards. Each failpoint
// site below aborts the append at a different depth — after one
// universe grew, after both, after the log rows landed, after staging,
// after the counters bumped — and every one must roll back completely.

// atomicSeed returns the base batches every subject/control pair starts
// from: one that grows both universes (slow path) and one entirely over
// known vertices (fast path).
func atomicSeed() [][]Edge[float64] {
	return [][]Edge[float64]{
		{
			Weighted("e01", "s1", "t1", 1.0, 2.0),
			Weighted("e02", "s2", "t2", 3.0, 4.0),
			Weighted("e03", "s3", "t1", 5.0, 6.0),
		},
		{
			Weighted("e04", "s1", "t2", 7.0, 8.0),
			Weighted("e05", "s3", "t3", 9.0, 1.0),
		},
	}
}

// stateFingerprint is the directly observable pre-append state a failed
// append must leave untouched.
type stateFingerprint struct {
	edges, appends, epoch int
	autoSeq               int
	exact                 bool
	lastKey               string
	nStage, nPend         int
}

func fingerprint(v *View[float64]) stateFingerprint {
	return stateFingerprint{
		edges: v.edges, appends: v.appends, epoch: v.epoch,
		autoSeq: v.autoSeq, exact: v.exact, lastKey: v.lastKey,
		nStage: len(v.stageKeys), nPend: len(v.pendCell),
	}
}

func TestAppendRollsBackAtEveryFailpoint(t *testing.T) {
	ops := plusTimes(t)
	// Poison batches: one per route. The fast batch reuses seeded
	// vertices; the slow batch introduces new ones on both sides.
	poisonFast := []Edge[float64]{
		Weighted("e06", "s2", "t1", 2.5, 3.5),
		Weighted("e07", "s3", "t2", 4.5, 5.5),
	}
	poisonSlow := []Edge[float64]{
		Weighted("e06", "s9", "t1", 2.5, 3.5),
		Weighted("e07", "s2", "t9", 4.5, 5.5),
	}
	follow := []Edge[float64]{
		Weighted("e08", "s1", "t3", 6.5, 7.5),
		Weighted("e09", "s9", "t9", 8.5, 9.5),
	}
	cases := []struct {
		site   string
		poison []Edge[float64]
	}{
		{"fast:staged", poisonFast},
		{"commit:counted", poisonFast},
		{"slow:grew-src", poisonSlow},
		{"slow:grew-dst", poisonSlow},
		{"slow:appended-rows", poisonSlow},
		{"commit:counted", poisonSlow},
	}
	for i, tc := range cases {
		subject := NewView(ops, Options{})
		control := NewView(ops, Options{})
		for _, b := range atomicSeed() {
			if err := subject.Append(b); err != nil {
				t.Fatal(err)
			}
			if err := control.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		before := fingerprint(subject)

		boom := errors.New("injected failure")
		fired := 0
		subject.failpoint = func(site string) error {
			if site == tc.site {
				fired++
				return boom
			}
			return nil
		}
		if err := subject.Append(tc.poison); !errors.Is(err, boom) {
			t.Fatalf("case %d (%s): Append error = %v, want the injected failure", i, tc.site, err)
		}
		if fired != 1 {
			t.Fatalf("case %d (%s): failpoint fired %d times — the batch did not take the intended path", i, tc.site, fired)
		}
		subject.failpoint = nil

		if got := fingerprint(subject); got != before {
			t.Fatalf("case %d (%s): state after failed append %+v, want %+v", i, tc.site, got, before)
		}

		// The identical batch must now succeed (interner orphans from the
		// rolled-back attempt included), and everything downstream must be
		// indistinguishable from a view that never saw the failure.
		for _, b := range [][]Edge[float64]{tc.poison, follow} {
			if err := subject.Append(b); err != nil {
				t.Fatalf("case %d (%s): retry after rollback: %v", i, tc.site, err)
			}
			if err := control.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		snapEqual(t, mustSnap(t, subject), mustSnap(t, control), tc.site)
	}
}

// A committedError reports a post-commit maintenance failure: the batch
// is already applied, so the rollback wrapper must NOT restore and must
// surface the inner error.
func TestRollbackSkipsCommittedError(t *testing.T) {
	v := NewView(plusTimes(t), Options{})
	rb := v.captureLocked()
	inner := errors.New("maintenance failed")

	v.epoch = 7
	if err := v.rollbackLocked(rb, &committedError{inner}); err != inner {
		t.Fatalf("committed error = %v, want the inner error", err)
	}
	if v.epoch != 7 {
		t.Fatal("rollback restored state for a committed batch")
	}

	if err := v.rollbackLocked(rb, inner); err != inner {
		t.Fatalf("plain error = %v, want it back verbatim", err)
	}
	if v.epoch != 0 {
		t.Fatal("rollback did not restore state for an uncommitted batch")
	}
}

// A mid-batch failure under the durable wrapper must keep the WAL
// aligned with the view: the rejected batch writes no record, the
// retried batch writes exactly one, and recovery replays to the same
// state as a run that never failed.
func TestDurableAppendRollbackKeepsLogAligned(t *testing.T) {
	ops := plusTimes(t)
	batches := durableBatches(77, 4, 5)
	dir := t.TempDir()

	d, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:2] {
		if err := d.Append(b); err != nil {
			t.Fatal(err)
		}
	}

	boom := errors.New("injected failure")
	d.v.failpoint = func(site string) error {
		if site == "commit:counted" {
			return boom
		}
		return nil
	}
	if err := d.Append(batches[2]); !errors.Is(err, boom) {
		t.Fatalf("durable Append error = %v, want the injected failure", err)
	}
	d.v.failpoint = nil

	st := d.Durability()
	if st.Epoch != 2 || st.DurableEpoch != 2 || st.WALLag != 0 {
		t.Fatalf("after rejected batch: epoch %d durable %d lag %d, want 2/2/0", st.Epoch, st.DurableEpoch, st.WALLag)
	}

	for _, b := range batches[2:] {
		if err := d.Append(b); err != nil {
			t.Fatalf("retry after rollback: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, ops, DurableOptions[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Recovery(); got.Replayed != 4 || got.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want 4 replayed records and a clean tail", got)
	}
	got, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapEqual(t, got, controlView(t, batches, 4, ops), "recovered after mid-run rollback")

	// The log itself must hold exactly one record per accepted batch.
	var seqs []uint64
	if _, err := wal.Replay(dir, 0, func(seq uint64, _ []byte) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("log holds %d records, want 4 (one per accepted batch): %v", len(seqs), seqs)
	}
}
