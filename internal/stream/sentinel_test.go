package stream

import (
	"math"
	"testing"

	"adjarray/internal/semiring"
)

// The unweighted-edge regression suite. The old convention inferred
// "weight omitted" from the value being the algebra's Zero, which is
// wrong in both directions: an omitted weight arrives as Go's zero
// value 0.0, which is NOT the Zero of min.* (+Inf) or min.max (+Inf) —
// so the edge silently ingested with literal weight 0 instead of One —
// and an explicitly provided weight equal to the algebra's Zero was
// indistinguishable from "omitted" and got rewritten to One. The
// HasOut/HasIn presence flags fix both; these tests fail against the
// sentinel behavior.

// An unweighted edge (flags unset) must ingest as One ⊗ One under every
// registered pair — most pointedly +Inf under max.min (the widest-path
// workload) and 1 under min.*, where the Go zero value is neither the
// algebra's Zero nor its One and the sentinel ingested weight 0.0.
func TestUnweightedEdgeSelectsOnePerAlgebra(t *testing.T) {
	for _, entry := range semiring.Registry() {
		ops := entry.Ops
		want := ops.Mul(ops.One, ops.One)
		v := NewView(ops, Options{})
		// First batch takes the slow (universe-growing) path, second the
		// resolved fast path; the convention must hold on both.
		if err := v.Append([]Edge[float64]{{Key: "k1", Src: "a", Dst: "b"}}); err != nil {
			t.Fatalf("%s: append: %v", ops.Name, err)
		}
		if err := v.Append([]Edge[float64]{{Key: "k2", Src: "b", Dst: "a"}}); err != nil {
			t.Fatalf("%s: fast append: %v", ops.Name, err)
		}
		snap := mustSnap(t, v)
		for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}} {
			got, ok := snap.Adjacency.At(pair[0], pair[1])
			if ops.IsZero(want) {
				// One ⊗ One folding to Zero would legitimately prune; no
				// registered pair does this, but keep the check honest.
				if ok {
					t.Errorf("%s: expected pruned entry, got %v", ops.Name, got)
				}
				continue
			}
			if !ok || !ops.Equal(got, want) {
				t.Errorf("%s: unweighted edge %v→%v ingested as %v (stored=%v), want One⊗One = %v",
					ops.Name, pair[0], pair[1], got, ok, want)
			}
		}
		// The log records the substituted One, so a Compact rebuild must
		// agree with the incremental state.
		if err := v.Compact(); err != nil {
			t.Fatalf("%s: compact: %v", ops.Name, err)
		}
		if got, ok := mustSnap(t, v).Adjacency.At("a", "b"); !ops.IsZero(want) && (!ok || !ops.Equal(got, want)) {
			t.Errorf("%s: compacted unweighted edge = %v (stored=%v), want %v", ops.Name, got, ok, want)
		}
	}
}

// The acceptance pin: under max.min an unweighted edge is a width-∞
// connection (One = +Inf), not width 0.
func TestUnweightedEdgeMaxMinIsPosInf(t *testing.T) {
	entry, ok := semiring.Lookup("max.min")
	if !ok {
		t.Fatal("max.min not registered")
	}
	v := NewView(entry.Ops, Options{})
	if err := v.Append([]Edge[float64]{{Key: "k1", Src: "s", Dst: "t"}}); err != nil {
		t.Fatal(err)
	}
	got, stored := mustSnap(t, v).Adjacency.At("s", "t")
	if !stored || !math.IsInf(got, 1) {
		t.Fatalf("max.min unweighted edge = %v (stored=%v), want +Inf", got, stored)
	}
}

// An explicitly Zero-valued weight must round-trip instead of being
// rewritten to One: the edge's contribution annihilates (Zero ⊗ v = 0)
// and the adjacency stays empty at that cell. Under the sentinel, +.*
// turned an explicit 0 into weight 1 and max.min turned an explicit 0
// into an infinite-width edge.
func TestExplicitZeroWeightRoundTrips(t *testing.T) {
	for _, name := range []string{"+.*", "max.min", "max.*"} {
		entry, ok := semiring.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		ops := entry.Ops
		v := NewView(ops, Options{})
		if err := v.Append([]Edge[float64]{Weighted("k1", "a", "b", ops.Zero, 5)}); err != nil {
			t.Fatalf("%s: append: %v", name, err)
		}
		snap := mustSnap(t, v)
		if got, stored := snap.Adjacency.At("a", "b"); stored {
			t.Errorf("%s: explicit Zero out-weight produced adjacency entry %v; want annihilated", name, got)
		}
		// The log keeps the literal value — the ingested weight is not
		// rewritten.
		if got, stored := snap.Eout.At("k1", "a"); !stored || !ops.Equal(got, ops.Zero) {
			t.Errorf("%s: log stored out-weight %v (stored=%v), want the explicit Zero %v", name, got, stored, ops.Zero)
		}
	}
}

// Mixed presence: an explicit out-weight with an omitted in-weight.
func TestMixedWeightPresence(t *testing.T) {
	entry, _ := semiring.Lookup("min.+")
	ops := entry.Ops // One = 0, Zero = +Inf
	v := NewView(ops, Options{})
	if err := v.Append([]Edge[float64]{{Key: "k1", Src: "a", Dst: "b", Out: 7, HasOut: true}}); err != nil {
		t.Fatal(err)
	}
	// 7 ⊗ One = 7 + 0 = 7.
	if got, ok := mustSnap(t, v).Adjacency.At("a", "b"); !ok || got != 7 {
		t.Fatalf("min.+ mixed presence: got %v (stored=%v), want 7", got, ok)
	}
}
