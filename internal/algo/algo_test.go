package algo

import (
	"math"
	"math/rand"
	"testing"

	"adjarray/internal/assoc"
	"adjarray/internal/dataset"
	"adjarray/internal/graph"
	"adjarray/internal/semiring"
	"adjarray/internal/value"
)

// chain builds a weighted path a→b→c→d plus a shortcut a→d.
func chain() *assoc.Array[float64] {
	return assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "a", Col: "b", Val: 1},
		{Row: "b", Col: "c", Val: 2},
		{Row: "c", Col: "d", Val: 3},
		{Row: "a", Col: "d", Val: 10},
	}, nil)
}

func TestRowVector(t *testing.T) {
	v := RowVector("r", map[string]float64{"x": 1, "y": 2})
	if v.RowKeys().Len() != 1 || v.ColKeys().Len() != 2 || v.NNZ() != 2 {
		t.Fatal("row vector shape wrong")
	}
	if got, _ := v.At("r", "y"); got != 2 {
		t.Error("entry wrong")
	}
}

func TestPattern(t *testing.T) {
	a := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "r", Col: "c", Val: 5}, {Row: "r", Col: "d", Val: 0},
	}, nil)
	p := Pattern(a, nil)
	if p.NNZ() != 2 {
		t.Error("nil isZero should keep all stored entries")
	}
	p2 := Pattern(a, func(v float64) bool { return v == 0 })
	if p2.NNZ() != 1 {
		t.Error("isZero should drop explicit zeros")
	}
}

func TestBFSLevels(t *testing.T) {
	levels, err := BFSLevels(chain(), "a")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 0, "b": 1, "c": 2, "d": 1}
	for v, l := range want {
		if levels[v] != l {
			t.Errorf("level[%s] = %d, want %d", v, levels[v], l)
		}
	}
	if len(levels) != len(want) {
		t.Errorf("levels = %v", levels)
	}
}

func TestBFSUnknownSource(t *testing.T) {
	if _, err := BFSLevels(chain(), "nope"); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestBFSUnreachable(t *testing.T) {
	a := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "a", Col: "b", Val: 1},
		{Row: "x", Col: "y", Val: 1},
	}, nil)
	levels, err := BFSLevels(a, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := levels["x"]; ok {
		t.Error("unreachable vertex in levels")
	}
	if _, ok := levels["y"]; ok {
		t.Error("unreachable vertex in levels")
	}
}

func TestSSSPRelaxesThroughCheaperPath(t *testing.T) {
	dist, err := SSSP(chain(), "a")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 0, "b": 1, "c": 3, "d": 6}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%s] = %v, want %v (shortcut a→d costs 10 > 6)", v, dist[v], d)
		}
	}
}

func TestSSSPUnknownSource(t *testing.T) {
	if _, err := SSSP(chain(), "zz"); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestSSSPMatchesDijkstraOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		g := dataset.ErdosRenyi(r, 24, 0.12)
		w := func(e graph.Edge) float64 { return float64(1 + len(e.Key)%7) }
		_, eout, ein, err := graph.BuildAdjacency(g, semiring.MinPlus(), graph.Weights[float64]{Out: w, In: func(graph.Edge) float64 { return 0 }}, assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Build a plain weighted adjacency (weight = out weight since the
		// in weight is the min.+ identity 0).
		a, err := assoc.Correlate(eout, ein, semiring.MinPlus(), assoc.MulOptions{})
		if err != nil {
			t.Fatal(err)
		}
		src := g.OutVertices().Key(0)
		got, err := SSSP(a, src)
		if err != nil {
			t.Fatal(err)
		}
		want := dijkstra(a, src)
		if len(got) != len(want) {
			t.Fatalf("trial %d: reach size %d vs %d", trial, len(got), len(want))
		}
		for v, d := range want {
			if !value.Float64Equal(got[v], d) {
				t.Errorf("trial %d: dist[%s] = %v, want %v", trial, v, got[v], d)
			}
		}
	}
}

// dijkstra is an independent oracle (naive O(V²) implementation).
func dijkstra(a *assoc.Array[float64], src string) map[string]float64 {
	dist := map[string]float64{src: 0}
	done := map[string]bool{}
	for {
		best, bestD := "", math.Inf(1)
		for v, d := range dist {
			if !done[v] && d < bestD {
				best, bestD = v, d
			}
		}
		if best == "" {
			return dist
		}
		done[best] = true
		if !a.RowKeys().Contains(best) {
			continue
		}
		for i := 0; i < a.ColKeys().Len(); i++ {
			w := a.ColKeys().Key(i)
			if ew, ok := a.At(best, w); ok {
				if nd := bestD + ew; nd < distOr(dist, w) {
					dist[w] = nd
				}
			}
		}
	}
}

func distOr(m map[string]float64, k string) float64 {
	if d, ok := m[k]; ok {
		return d
	}
	return math.Inf(1)
}

func TestWidestPath(t *testing.T) {
	// Two routes a→d: direct with width 10, or via b,c with bottleneck
	// min(1,2,3)... wait: widest path takes the max over routes.
	width, err := WidestPath(chain(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if width["d"] != 10 {
		t.Errorf("width[d] = %v, want 10 (direct edge beats bottleneck 1)", width["d"])
	}
	if width["c"] != 1 {
		t.Errorf("width[c] = %v, want 1 (min(1,2))", width["c"])
	}
	if !math.IsInf(width["a"], 1) {
		t.Errorf("width[a] = %v, want +Inf", width["a"])
	}
}

func TestComponents(t *testing.T) {
	a := assoc.FromTriples([]assoc.Triple[float64]{
		{Row: "b", Col: "a", Val: 1}, // component {a, b}
		{Row: "x", Col: "y", Val: 1}, // component {x, y, z}
		{Row: "y", Col: "z", Val: 1},
	}, nil)
	comp, err := Components(a)
	if err != nil {
		t.Fatal(err)
	}
	if comp["a"] != "a" || comp["b"] != "a" {
		t.Errorf("component of a/b = %s/%s, want a/a", comp["a"], comp["b"])
	}
	if comp["x"] != "x" || comp["y"] != "x" || comp["z"] != "x" {
		t.Errorf("component of x/y/z = %s/%s/%s, want x/x/x", comp["x"], comp["y"], comp["z"])
	}
}

func TestComponentsEmpty(t *testing.T) {
	comp, err := Components(assoc.FromTriples[float64](nil, nil))
	if err != nil || len(comp) != 0 {
		t.Errorf("empty graph components = %v, %v", comp, err)
	}
}

func TestTriangleCount(t *testing.T) {
	// A 4-clique (undirected, symmetric, no self-loops) has C(4,3) = 4
	// triangles.
	b := assoc.NewBuilder[float64](nil)
	verts := []string{"a", "b", "c", "d"}
	for _, u := range verts {
		for _, v := range verts {
			if u != v {
				b.Set(u, v, 1)
			}
		}
	}
	n, err := TriangleCount(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("triangles = %d, want 4", n)
	}
}

func TestTriangleCountRejectsAsymmetric(t *testing.T) {
	a := assoc.FromTriples([]assoc.Triple[float64]{{Row: "a", Col: "b", Val: 1}}, nil)
	if _, err := TriangleCount(a); err == nil {
		t.Error("asymmetric array accepted")
	}
}

func TestTriangleCountTriangleFree(t *testing.T) {
	// A 4-cycle is triangle-free.
	b := assoc.NewBuilder[float64](nil)
	cycle := []string{"a", "b", "c", "d"}
	for i, u := range cycle {
		v := cycle[(i+1)%4]
		b.Set(u, v, 1)
		b.Set(v, u, 1)
	}
	n, err := TriangleCount(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("triangles = %d, want 0", n)
	}
}

func TestTransitiveClosure(t *testing.T) {
	tc, err := TransitiveClosure(chain())
	if err != nil {
		t.Fatal(err)
	}
	// a reaches b, c, d; b reaches c, d; c reaches d.
	wantReach := map[string][]string{
		"a": {"b", "c", "d"},
		"b": {"c", "d"},
		"c": {"d"},
	}
	for src, dsts := range wantReach {
		for _, dst := range dsts {
			if v, ok := tc.At(src, dst); !ok || !v {
				t.Errorf("closure missing %s→%s", src, dst)
			}
		}
	}
	if _, ok := tc.At("b", "a"); ok {
		t.Error("closure invented b→a")
	}
}

func TestDegrees(t *testing.T) {
	a := chain()
	out := OutDegrees(a)
	if out["a"] != 2 || out["b"] != 1 || out["c"] != 1 {
		t.Errorf("out degrees = %v", out)
	}
	in := InDegrees(a)
	if in["d"] != 2 || in["b"] != 1 {
		t.Errorf("in degrees = %v", in)
	}
}

func TestPageRankProperties(t *testing.T) {
	// A directed cycle has the uniform stationary distribution.
	b := assoc.NewBuilder[float64](nil)
	cycle := []string{"a", "b", "c", "d", "e"}
	for i, u := range cycle {
		b.Set(u, cycle[(i+1)%len(cycle)], 1)
	}
	rank, iters, err := PageRank(b.Build(), 0.85, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Error("no iterations recorded")
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
	for v, r := range rank {
		if math.Abs(r-0.2) > 1e-6 {
			t.Errorf("rank[%s] = %v, want 0.2 (uniform on a cycle)", v, r)
		}
	}
}

func TestPageRankHubBeatsLeaf(t *testing.T) {
	// Star pointing into "hub": hub must outrank the leaves. "hub" is
	// dangling (no out-edges), exercising the dangling redistribution.
	b := assoc.NewBuilder[float64](nil)
	for _, leaf := range []string{"l1", "l2", "l3", "l4"} {
		b.Set(leaf, "hub", 1)
	}
	rank, _, err := PageRank(b.Build(), 0.85, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []string{"l1", "l2", "l3", "l4"} {
		if rank["hub"] <= rank[leaf] {
			t.Errorf("hub rank %v should exceed leaf rank %v", rank["hub"], rank[leaf])
		}
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestPageRankRejectsBadDamping(t *testing.T) {
	a := chain()
	if _, _, err := PageRank(a, 0, 1e-6, 10); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, _, err := PageRank(a, 1, 1e-6, 10); err == nil {
		t.Error("damping 1 accepted")
	}
}

// End-to-end: construct the adjacency array from incidence arrays per
// the paper, then run the algorithm suite on it — the full motivation
// of the paper's opening sentence.
func TestConstructionThenAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := dataset.ErdosRenyi(r, 30, 0.1)
	one := func(graph.Edge) float64 { return 1 }
	a, _, _, err := graph.BuildAdjacency(g, semiring.PlusTimes(), graph.Weights[float64]{Out: one, In: one}, assoc.MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := g.OutVertices().Key(0)
	levels, err := BFSLevels(a, src)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SSSP(a, src)
	if err != nil {
		t.Fatal(err)
	}
	// With unit weights, BFS level == min.+ distance on the common
	// support.
	for v, l := range levels {
		if d, ok := dist[v]; ok {
			if float64(l) != d {
				t.Errorf("unit-weight BFS level %d != distance %v at %s", l, d, v)
			}
		} else {
			t.Errorf("BFS reaches %s but SSSP does not", v)
		}
	}
	if _, err := Components(a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := PageRank(a, 0.85, 1e-8, 200); err != nil {
		t.Fatal(err)
	}
}
